// Movie night: the paper's §I motivating scenario. A group of people who
// rarely go out together (an "occasional group") wants a movie everyone
// enjoys. We train KGAG and a CF baseline on the same corpus and compare
// what each recommends for the same group, with KGAG's attention-based
// explanation — the interpretability story of RQ4.
//
//   ./build/examples/movie_night
#include <cstdio>

#include "baselines/mf.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/metrics.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

namespace {

void PrintTopK(const char* label, const std::vector<kgag::ItemId>& pool,
               const std::vector<double>& scores) {
  std::printf("%s top-5:", label);
  for (size_t idx : kgag::TopKIndices(scores, 5)) {
    std::printf(" v%d(%.3f)", pool[idx], scores[idx]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace kgag;

  GroupRecDataset dataset =
      MakeMovieLensRandDataset(/*seed=*/21, /*scale=*/0.3);
  std::printf(
      "movie-night corpus: %d users, %d movies, %d occasional groups of "
      "size %d\n\n",
      dataset.num_users, dataset.num_items, dataset.groups.num_groups(),
      dataset.group_size);

  // Train KGAG and the classic CF + least-misery strategy side by side.
  KgagConfig kgag_config;
  kgag_config.propagation.sample_size = 6;
  kgag_config.propagation.final_tanh = false;
  kgag_config.epochs = 8;
  auto kgag_model = KgagModel::Create(&dataset, kgag_config);
  if (!kgag_model.ok()) {
    std::printf("model error: %s\n", kgag_model.status().ToString().c_str());
    return 1;
  }
  (*kgag_model)->Fit();

  MfConfig mf_config;
  mf_config.epochs = 8;
  MfGroupRecommender cf(&dataset, mf_config, ScoreAggregation::kLeastMisery);
  cf.Fit();

  // Pick a test group and rank the test pool with both models.
  KGAG_CHECK(!dataset.split.test.empty());
  const GroupId group = dataset.split.test[0].row;
  const std::vector<ItemId> pool = dataset.TestItemPool();
  std::printf("tonight's group g%d:", group);
  for (UserId u : dataset.groups.MembersOf(group)) std::printf(" u%d", u);
  std::printf(" (%zu candidate movies)\n\n", pool.size());

  std::vector<double> kgag_scores = (*kgag_model)->ScoreGroup(group, pool);
  std::vector<double> cf_scores = cf.ScoreGroup(group, pool);
  PrintTopK("KGAG ", pool, kgag_scores);
  PrintTopK("CF+LM", pool, cf_scores);

  // Explain KGAG's pick.
  const ItemId pick = pool[TopKIndices(kgag_scores, 1)[0]];
  GroupExplanation ex = (*kgag_model)->ExplainGroup(group, pick);
  std::printf(
      "\nKGAG explanation for v%d (prediction %.3f) — who drove the "
      "decision:\n",
      pick, ex.prediction);
  for (size_t i = 0; i < ex.members.size(); ++i) {
    const int bars = static_cast<int>(ex.attention.alpha[i] * 40 + 0.5);
    std::printf("  u%-7d %-40s alpha=%.3f sp=%+.3f pi=%+.3f\n", ex.members[i],
                std::string(static_cast<size_t>(bars), '#').c_str(),
                ex.attention.alpha[i], ex.attention.sp[i],
                ex.attention.pi[i]);
  }

  // Per-member individual scores for the same movie, showing how group
  // aggregation differs from any one member's taste.
  std::printf("\nmember-level view of v%d via CF scores:\n", pick);
  const ItemId single[1] = {pick};
  for (UserId u : dataset.groups.MembersOf(group)) {
    std::printf("  u%-7d individual score %.3f\n", u,
                cf.ScoreUser(u, single)[0]);
  }

  // Which model ranks the group's actual held-out choices higher?
  RankingEvaluator eval(&dataset, 5);
  std::printf("\nheld-out test metrics:\n  KGAG : %s\n  CF+LM: %s\n",
              eval.EvaluateTest(kgag_model->get()).ToString().c_str(),
              eval.EvaluateTest(&cf).ToString().c_str());
  return 0;
}
