// Building a GroupRecDataset by hand: the integration path a downstream
// user takes when they have their own interaction logs and knowledge
// graph. Everything is tiny and hand-written so the structure is obvious.
//
//   ./build/examples/custom_dataset
#include <cstdio>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/kgag_model.h"

int main() {
  using namespace kgag;

  // A miniature movie world: 4 movies, 2 directors, 2 genres.
  // Entity ids: movies 0..3, director "hitchcock"=4, "kubrick"=5,
  // genre "thriller"=6, "scifi"=7.
  enum : EntityId {
    kPsycho = 0,
    kRearWindow = 1,
    kSpaceOdyssey = 2,
    kShining = 3,
    kHitchcock = 4,
    kKubrick = 5,
    kThriller = 6,
    kScifi = 7,
  };
  enum : RelationId { kDirectedBy = 0, kHasGenre = 1 };

  GroupRecDataset ds;
  ds.name = "hand-built";
  ds.num_users = 6;
  ds.num_items = 4;
  ds.num_entities = 8;
  ds.num_relations = 2;
  ds.relation_names = {"directed_by", "has_genre"};
  ds.kg_triples = {
      {kPsycho, kDirectedBy, kHitchcock},
      {kRearWindow, kDirectedBy, kHitchcock},
      {kSpaceOdyssey, kDirectedBy, kKubrick},
      {kShining, kDirectedBy, kKubrick},
      {kPsycho, kHasGenre, kThriller},
      {kRearWindow, kHasGenre, kThriller},
      {kShining, kHasGenre, kThriller},
      {kSpaceOdyssey, kHasGenre, kScifi},
  };
  ds.item_to_entity = {kPsycho, kRearWindow, kSpaceOdyssey, kShining};

  // Implicit feedback: users 0-2 are Hitchcock fans, 3-5 Kubrick fans.
  ds.user_item = InteractionMatrix::FromPairs(
      ds.num_users, ds.num_items,
      {{0, kPsycho}, {1, kPsycho}, {1, kRearWindow}, {2, kRearWindow},
       {3, kSpaceOdyssey}, {4, kShining}, {4, kSpaceOdyssey}, {5, kShining}});

  // Two groups: a Hitchcock trio and a Kubrick trio.
  ds.groups = GroupTable({{0, 1, 2}, {3, 4, 5}});
  ds.group_size = 3;
  ds.group_item = InteractionMatrix::FromPairs(
      2, ds.num_items,
      {{0, kPsycho}, {0, kRearWindow}, {1, kSpaceOdyssey}, {1, kShining}});

  // Train on one observed choice per group; hold the other out.
  ds.split.train = {{0, kPsycho}, {1, kSpaceOdyssey}};
  ds.split.test = {{0, kRearWindow}, {1, kShining}};

  Status st = ds.Validate();
  if (!st.ok()) {
    std::printf("invalid dataset: %s\n", st.ToString().c_str());
    return 1;
  }

  KgagConfig config;
  config.propagation.dim = 8;
  config.propagation.sample_size = 3;
  config.propagation.final_tanh = false;
  config.epochs = 30;
  config.batch_size = 2;
  config.select_by_validation = false;  // no validation split here
  auto model = KgagModel::Create(&ds, config);
  if (!model.ok()) {
    std::printf("model error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  (*model)->Fit();

  const char* movie_names[4] = {"Psycho", "Rear Window", "2001",
                                "The Shining"};
  const std::vector<ItemId> all_items = {0, 1, 2, 3};
  for (GroupId g = 0; g < 2; ++g) {
    std::vector<double> scores = (*model)->ScoreGroup(g, all_items);
    std::printf("group %d ranking:", g);
    for (size_t idx : TopKIndices(scores, 4)) {
      std::printf("  %s(%.2f)", movie_names[idx], scores[idx]);
    }
    std::printf("\n");
  }

  // The held-out movies share a director with each group's training
  // choice; the KG connectivity should push them to the top.
  std::vector<double> g0 = (*model)->ScoreGroup(0, all_items);
  std::vector<double> g1 = (*model)->ScoreGroup(1, all_items);
  const bool ok = TopKIndices(g0, 2)[0] == kRearWindow ||
                  TopKIndices(g0, 2)[1] == kRearWindow;
  const bool ok2 = TopKIndices(g1, 2)[0] == kShining ||
                   TopKIndices(g1, 2)[1] == kShining;
  std::printf(
      "\nheld-out movies in each group's top-2 (KG generalization): "
      "%s / %s\n",
      ok ? "yes" : "no", ok2 ? "yes" : "no");
  return 0;
}
