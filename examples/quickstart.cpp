// Quickstart: generate a small synthetic corpus, train KGAG, recommend
// items for a group, and explain the recommendation.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "data/synthetic/standard_datasets.h"
#include "eval/metrics.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

int main() {
  using namespace kgag;

  // 1. A corpus: users, items, groups, interactions and a knowledge graph.
  //    (Real deployments would fill a GroupRecDataset from their own data;
  //    see examples/custom_dataset.cpp.)
  GroupRecDataset dataset = MakeMovieLensRandDataset(/*seed=*/7, /*scale=*/0.25);
  std::printf("corpus: %d users, %d items, %d groups, %zu KG triples\n",
              dataset.num_users, dataset.num_items,
              dataset.groups.num_groups(), dataset.kg_triples.size());

  // 2. Configure and train KGAG.
  KgagConfig config;
  config.propagation.dim = 16;       // d
  config.propagation.depth = 2;      // H
  config.propagation.sample_size = 6;  // K
  config.propagation.final_tanh = false;
  config.epochs = 8;
  config.verbose = true;
  auto model = KgagModel::Create(&dataset, config);
  if (!model.ok()) {
    std::printf("failed to build model: %s\n",
                model.status().ToString().c_str());
    return 1;
  }
  (*model)->Fit();

  // 3. Rank candidate items for one group.
  const GroupId group = 0;
  std::vector<ItemId> candidates = dataset.TestItemPool();
  std::vector<double> scores = (*model)->ScoreGroup(group, candidates);
  std::vector<size_t> top = TopKIndices(scores, 5);

  std::printf("\ntop-5 recommendations for group %d (members:", group);
  for (UserId u : dataset.groups.MembersOf(group)) std::printf(" u%d", u);
  std::printf("):\n");
  for (size_t rank = 0; rank < top.size(); ++rank) {
    std::printf("  %zu. item v%d (score %.4f)\n", rank + 1,
                candidates[top[rank]], scores[top[rank]]);
  }

  // 4. Explain the top recommendation: which member drove the decision?
  GroupExplanation ex = (*model)->ExplainGroup(group, candidates[top[0]]);
  std::printf("\nwhy item v%d? member influences:\n", candidates[top[0]]);
  for (size_t i = 0; i < ex.members.size(); ++i) {
    std::printf("  u%-6d influence=%.3f (self-persistence %.3f, peer "
                "influence %.3f)\n",
                ex.members[i], ex.attention.alpha[i], ex.attention.sp[i],
                ex.attention.pi[i]);
  }

  // 5. Standard evaluation over the held-out test split.
  RankingEvaluator evaluator(&dataset, /*k=*/5);
  EvalResult result = evaluator.EvaluateTest(model->get());
  std::printf("\ntest metrics: %s\n", result.ToString().c_str());
  return 0;
}
