// Restaurant groups: the Yelp-style scenario — friend triangles choosing a
// business for a joint visit. Demonstrates the extreme group-interaction
// sparsity regime (one interaction per group) where the knowledge graph's
// side information carries most of the signal, and inspects whether the
// recommendations respect the locality structure (members' home city).
//
//   ./build/examples/restaurant_groups
#include <cstdio>
#include <map>

#include "data/synthetic/standard_datasets.h"
#include "data/synthetic/yelp_gen.h"
#include "eval/metrics.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

int main() {
  using namespace kgag;

  // Generate the Yelp world directly so we can inspect the diagnostics
  // (community / city assignments) next to the model outputs.
  Rng rng(31);
  YelpConfig yelp_config = ScaledYelpConfig(/*scale=*/0.4);
  YelpWorld world = GenerateYelpWorld(yelp_config, &rng);

  GroupRecDataset dataset = MakeYelpDataset(/*seed=*/31, /*scale=*/0.4);
  std::printf(
      "yelp corpus: %d users in %d-ish communities, %d businesses, %d "
      "friend-triangle groups (%.2f interactions/group)\n\n",
      dataset.num_users, yelp_config.num_communities, dataset.num_items,
      dataset.groups.num_groups(), dataset.group_item.MeanRowDegree());

  KgagConfig config;
  config.propagation.sample_size = 6;
  config.propagation.final_tanh = false;
  config.epochs = 10;
  auto model = KgagModel::Create(&dataset, config);
  if (!model.ok()) {
    std::printf("model error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  (*model)->Fit();

  // Walk a few test groups: recommend, then check the locality structure.
  const std::vector<ItemId> pool = dataset.TestItemPool();
  RankingEvaluator eval(&dataset, 5);
  std::printf("sample recommendations (+ = held-out true choice):\n");
  int shown = 0;
  int home_city_hits = 0, home_city_total = 0;
  for (const Interaction& held_out : dataset.split.test) {
    if (shown >= 5) break;
    ++shown;
    const GroupId g = held_out.row;
    std::vector<double> scores = (*model)->ScoreGroup(g, pool);
    std::vector<size_t> top = TopKIndices(scores, 5);

    const auto members = dataset.groups.MembersOf(g);
    std::printf("  group g%-4d members:", g);
    for (UserId u : members) {
      std::printf(" u%d(c%d)", u, world.user_community[u]);
    }
    std::printf("\n    picks:");
    for (size_t idx : top) {
      const ItemId b = pool[idx];
      std::printf(" b%d[city %d]%s", b, world.business_city[b],
                  b == held_out.item ? "+" : "");
      ++home_city_total;
      // A pick "respects locality" when it is in the city the group's
      // held-out choice was in (the group's actual stomping ground).
      if (world.business_city[b] == world.business_city[held_out.item]) {
        ++home_city_hits;
      }
    }
    std::printf("   (true: b%d[city %d])\n", held_out.item,
                world.business_city[held_out.item]);
  }
  if (home_city_total > 0) {
    std::printf(
        "\nlocality: %.0f%% of top-5 picks in the group's home city "
        "(random would be ~%.0f%%)\n",
        100.0 * home_city_hits / home_city_total,
        100.0 / yelp_config.num_cities);
  }

  EvalResult result = eval.EvaluateTest(model->get());
  std::printf("\ntest metrics: %s\n", result.ToString().c_str());
  std::printf(
      "note: with exactly one positive per group, rec@5 == hit@5 — the "
      "Yelp column of the paper's Table II shows the same identity.\n");
  return 0;
}
