#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4).

Reads an exposition payload (a file argument or stdin — e.g. piped from
`curl -s host:port/metrics`) and checks the grammar a scraper relies on:

  * every non-comment line is `name{labels} value [timestamp]` with a
    legal metric name, legal label names, quoted+escaped label values
    and a parseable float value;
  * `# TYPE` lines name a valid type and precede their metric's samples;
  * at most one TYPE declaration per metric family;
  * histogram families have cumulative, non-decreasing `_bucket` counts
    per label set and end in an `le="+Inf"` bucket matching `_count`;
  * summary quantile labels are floats in [0, 1].

Exit 0 when the payload parses clean; exit 1 with one line per problem
otherwise. Used by CI's introspection smoke job against a live
/metrics endpoint.

Usage: check_prom_format.py [metrics.txt]
"""

import math
import re
import sys

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
# Label values are double-quoted with \\, \" and \n escapes.
LABEL_VALUE = r'"(?:[^"\\\n]|\\[\\"n])*"'
LABEL_PAIR = rf"{LABEL_NAME}={LABEL_VALUE}"
LABELS = rf"\{{(?:{LABEL_PAIR}(?:,{LABEL_PAIR})*)?,?\}}"
# value and optional timestamp; value may be NaN/+Inf/-Inf.
VALUE = r"(?:[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|Inf|inf)|NaN|nan)"
SAMPLE_RE = re.compile(
    rf"^(?P<name>{METRIC_NAME})(?P<labels>{LABELS})?"
    rf"\s+(?P<value>{VALUE})(?:\s+(?P<ts>-?\d+))?$"
)
TYPE_RE = re.compile(
    rf"^# TYPE (?P<name>{METRIC_NAME}) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$"
)
HELP_RE = re.compile(rf"^# HELP (?P<name>{METRIC_NAME}) .*$")
LABEL_SPLIT_RE = re.compile(rf"({LABEL_NAME})=({LABEL_VALUE})")


def family_of(name, declared_types):
    """Maps a sample name to its TYPE family, folding histogram/summary
    series suffixes (_bucket/_sum/_count) onto the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in declared_types:
                return base
    return name


def parse_labels(text):
    if not text:
        return {}
    return {m.group(1): m.group(2)[1:-1]
            for m in LABEL_SPLIT_RE.finditer(text)}


def main():
    if len(sys.argv) > 2:
        sys.exit(__doc__)
    if len(sys.argv) == 2:
        with open(sys.argv[1]) as f:
            payload = f.read()
    else:
        payload = sys.stdin.read()

    errors = []
    declared_types = {}
    samples_seen = set()
    # histogram family -> label-set key -> [(le, count)]
    buckets = {}
    hist_counts = {}

    for lineno, line in enumerate(payload.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                    continue
                name = m.group("name")
                if name in declared_types:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {name}")
                if name in samples_seen:
                    errors.append(
                        f"line {lineno}: TYPE for {name} after its samples")
                declared_types[name] = m.group("type")
            elif line.startswith("# HELP "):
                if not HELP_RE.match(line):
                    errors.append(f"line {lineno}: malformed HELP: {line!r}")
            # other comments are legal and ignored
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels"))
        family = family_of(name, declared_types)
        samples_seen.add(family)
        ftype = declared_types.get(family)

        if ftype == "summary" and "quantile" in labels:
            try:
                q = float(labels["quantile"])
                if not (0.0 <= q <= 1.0):
                    raise ValueError
            except ValueError:
                errors.append(
                    f"line {lineno}: summary quantile "
                    f"{labels['quantile']!r} not in [0, 1]")
        if ftype == "histogram":
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label")
                    continue
                le_val = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(family, {}).setdefault(key, []).append(
                    (lineno, le_val, float(m.group("value"))))
            elif name.endswith("_count"):
                hist_counts.setdefault(family, {})[key] = float(
                    m.group("value"))

    for family, by_key in buckets.items():
        for key, rows in by_key.items():
            prev = -1.0
            for lineno, _, count in rows:  # exposition order is le-order
                if count < prev:
                    errors.append(
                        f"line {lineno}: {family} buckets not cumulative")
                prev = count
            if not math.isinf(rows[-1][1]):
                errors.append(
                    f"{family}{dict(key) or ''}: no le=\"+Inf\" bucket")
            elif family in hist_counts and key in hist_counts[family] and \
                    rows[-1][2] != hist_counts[family][key]:
                errors.append(
                    f"{family}{dict(key) or ''}: +Inf bucket "
                    f"{rows[-1][2]} != _count {hist_counts[family][key]}")

    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"FAIL: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    n_samples = len(payload.strip().split('\n'))
    print(f"OK: {len(declared_types)} metric families parse clean "
          f"({n_samples} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
