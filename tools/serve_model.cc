// serve_model: run a ServingEngine over a frozen artifact with the
// data-plane front-end (DESIGN.md §13) and the live introspection
// endpoint (DESIGN.md §12) attached.
//
// Loads the KGAGSRV1 artifact from --artifact, builds a
// continuous-batching ServingEngine with the default serving SLOs,
// enables request tracing, and serves /metrics, /healthz, /statusz and
// /tracez on --port plus the binary/HTTP data plane (net_server.h) on
// --data_port (both default 0 = ephemeral; the bound ports are printed
// either way, so scripts can scrape them). --max_queue bounds the
// scheduler's admission queue (0 = unbounded). --selftraffic=N submits
// N synthetic requests at startup — random groups against the
// artifact's own entity space — so every endpoint has real data to
// show without an external load generator. --duration_s=S exits after
// S seconds; 0 serves until SIGINT/SIGTERM.
//
// Zero-downtime artifact refresh (DESIGN.md §15) — three triggers, one
// path (LoadFrozenModelAuto + ServingEngine::SwapModel; in-flight
// batches drain on the old version, new admissions bind the new one):
//   --watch            poll the artifact path; reload when its
//                      (mtime, size) changes and holds stable for one
//                      interval (publishers rename atomically, so a
//                      change is a whole new artifact, never a partial)
//   SIGHUP             classic operator nudge: reload now
//   POST/GET /reload   introspection-port endpoint; returns the swap
//                      outcome as JSON
//
//   ./build/tools/freeze_model --out model.srv
//   ./build/tools/serve_model --artifact=model.srv --port=8080
//       --data_port=8081 --selftraffic=64 --watch
//   curl -s localhost:8080/statusz | python3 -m json.tool
//   curl -s -d 'members=1,2,3&k=10' localhost:8081/topk
//   curl -s localhost:8080/reload
//   ./build/bench/bench_serve --net --connect=127.0.0.1:8081
#include <sys/stat.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "obs/introspect.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/frozen_model.h"
#include "serve/net_server.h"
#include "serve/serving_engine.h"

namespace {

struct Flags {
  std::string artifact;
  int port = 0;
  int data_port = 0;
  int selftraffic = 0;
  double duration_s = 0.0;
  size_t max_batch = 16;
  size_t max_queue = 0;
  bool watch = false;
  int watch_interval_ms = 200;
};

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::string prefix = std::string(name) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = val("--artifact")) f.artifact = v;
    else if (const char* vp = val("--port")) f.port = std::atoi(vp);
    else if (const char* vn = val("--data_port"))
      f.data_port = std::atoi(vn);
    else if (const char* vt = val("--selftraffic"))
      f.selftraffic = std::atoi(vt);
    else if (const char* vd = val("--duration_s"))
      f.duration_s = std::atof(vd);
    else if (const char* vb = val("--max_batch"))
      f.max_batch = static_cast<size_t>(std::atoi(vb));
    else if (const char* vq = val("--max_queue"))
      f.max_queue = static_cast<size_t>(std::atoi(vq));
    else if (arg == "--watch")
      f.watch = true;
    else if (const char* vw = val("--watch_interval_ms"))
      f.watch_interval_ms = std::atoi(vw);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return f;
}

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

volatile std::sig_atomic_t g_reload = 0;
void HandleReloadSignal(int) { g_reload = 1; }

/// Exports the serve.artifact.* gauges for whichever model is live.
void ExportArtifactGauges(const kgag::serve::FrozenModel& model,
                          uint64_t load_micros) {
  KGAG_GAUGE_SET("serve.artifact.load_micros",
                 static_cast<double>(load_micros));
  KGAG_GAUGE_SET("serve.artifact.layout_version", model.is_mapped() ? 2 : 1);
  KGAG_GAUGE_SET("serve.artifact.mapped_bytes",
                 model.is_mapped()
                     ? static_cast<double>(model.mapping->mapped_bytes())
                     : 0);
  KGAG_GAUGE_SET("serve.artifact.resident_bytes",
                 model.is_mapped()
                     ? static_cast<double>(model.mapping->ResidentBytes())
                     : 0);
}

/// \brief Serializes reload triggers (watcher thread, /reload handler,
/// SIGHUP from the main loop) onto one load+swap path and keeps the
/// bookkeeping /statusz shows under "reload".
class Reloader {
 public:
  Reloader(std::string path, kgag::serve::ServingEngine* engine)
      : path_(std::move(path)), engine_(engine) {}

  /// Loads the artifact and swaps it in. Failure leaves the live model
  /// untouched — a bad artifact on disk must never take serving down.
  kgag::Status Reload(const char* trigger) {
    std::lock_guard<std::mutex> lock(mu_);
    kgag::Stopwatch watch;
    kgag::Result<kgag::serve::FrozenModel> loaded =
        kgag::serve::LoadFrozenModelAuto(path_);
    if (!loaded.ok()) {
      ++failures_;
      last_error_ = loaded.status().ToString();
      std::fprintf(stderr, "reload (%s): %s\n", trigger,
                   last_error_.c_str());
      return loaded.status();
    }
    const uint64_t load_micros = watch.ElapsedMicros();
    auto next = std::make_shared<const kgag::serve::FrozenModel>(
        std::move(*loaded));
    kgag::Status swapped = engine_->SwapModel(next);
    if (!swapped.ok()) {
      ++failures_;
      last_error_ = swapped.ToString();
      return swapped;
    }
    ++count_;
    last_error_.clear();
    ExportArtifactGauges(*next, load_micros);
    std::printf("reload (%s): %s -> %s (%d users x %d items, %s, %.1f ms)\n",
                trigger, path_.c_str(), engine_->model_version().c_str(),
                next->num_users, next->num_items,
                kgag::QuantTypeName(next->quant), load_micros / 1000.0);
    std::fflush(stdout);
    return kgag::Status::OK();
  }

  std::string StatusJson() {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"count\": " << count_ << ", \"failures\": " << failures_
       << ", \"watching\": " << (watching_ ? "true" : "false")
       << ", \"last_error\": \"" << last_error_ << "\"}";
    return os.str();
  }

  /// Polls (mtime, size) of the artifact; a change that holds stable for
  /// one further interval triggers a reload. Publishers rename
  /// atomically, so stability is a courtesy (coalesce bursts), not a
  /// correctness requirement.
  void WatchLoop(int interval_ms) {
    watching_ = true;
    auto signature = [&]() -> std::pair<int64_t, int64_t> {
      struct stat st;
      if (::stat(path_.c_str(), &st) != 0) return {-1, -1};
      return {static_cast<int64_t>(st.st_mtime),
              static_cast<int64_t>(st.st_size)};
    };
    std::pair<int64_t, int64_t> live = signature();
    std::pair<int64_t, int64_t> pending{-1, -1};
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      const auto now = signature();
      if (now.first < 0 || now == live) {
        pending = {-1, -1};
        continue;
      }
      if (now == pending) {
        if (Reload("watch").ok()) live = now;
        pending = {-1, -1};
      } else {
        pending = now;
      }
    }
  }

 private:
  const std::string path_;
  kgag::serve::ServingEngine* engine_;
  std::mutex mu_;
  uint64_t count_ = 0;
  uint64_t failures_ = 0;
  std::atomic<bool> watching_{false};
  std::string last_error_;
};

/// Submits `n` random-group requests through the micro-batch path and
/// waits for them all, so /metrics, /statusz and /tracez show a served
/// workload immediately.
void RunSelfTraffic(kgag::serve::ServingEngine* engine, int n) {
  using kgag::serve::TopKRequest;
  const int32_t num_users = engine->model()->num_users;
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int32_t> user(0, num_users - 1);
  std::uniform_int_distribution<int> size(1, 3);
  std::vector<std::future<kgag::Result<kgag::serve::TopKResult>>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TopKRequest req;
    const int members = size(rng);
    for (int m = 0; m < members; ++m) req.members.push_back(user(rng));
    req.k = 10;
    futures.push_back(engine->Submit(std::move(req)));
  }
  int failed = 0;
  for (auto& f : futures) {
    if (!f.get().ok()) ++failed;
  }
  std::printf("selftraffic: %d requests (%d failed), %llu batches\n", n,
              failed,
              static_cast<unsigned long long>(engine->batches_run()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgag;
  const Flags flags = Parse(argc, argv);
  if (flags.artifact.empty()) {
    std::fprintf(stderr,
                 "usage: serve_model --artifact=FILE [--port=N] "
                 "[--data_port=N] [--selftraffic=N] [--duration_s=S] "
                 "[--max_batch=N] [--max_queue=N] [--watch] "
                 "[--watch_interval_ms=MS]\n");
    return 2;
  }

  // Auto-detect the artifact layout from its magic: KGAGSRV2 mmaps
  // zero-copy, KGAGSRV1 decodes to heap (back-compat).
  Stopwatch load_watch;
  Result<serve::FrozenModel> loaded =
      serve::LoadFrozenModelAuto(flags.artifact);
  const uint64_t load_micros = load_watch.ElapsedMicros();
  if (!loaded.ok()) {
    std::fprintf(stderr, "artifact: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  // Shared ownership from the start: a hot swap retires this model only
  // once the last in-flight batch holding it drains.
  auto model =
      std::make_shared<const serve::FrozenModel>(std::move(*loaded));
  ExportArtifactGauges(*model, load_micros);
  std::printf(
      "loaded %s (%s): %d users x %d items, dim %d, precision %s, "
      "%.1f ms\n",
      flags.artifact.c_str(), model->is_mapped() ? "mmap" : "heap",
      model->num_users, model->num_items, model->dim,
      QuantTypeName(model->quant), load_micros / 1000.0);

  obs::TraceRecorder::Global().SetEnabled(true);

  serve::ServingEngine::Options engine_options;
  engine_options.max_batch = flags.max_batch;
  engine_options.max_queue = flags.max_queue;
  engine_options.slo_objectives = obs::DefaultServingObjectives();
  serve::ServingEngine engine(model, engine_options);
  model.reset();  // the engine's slot is the only owner now
  serve::NetServer data_plane(&engine, {.port = flags.data_port});
  Reloader reloader(flags.artifact, &engine);

  obs::IntrospectionServer server({.port = flags.port});
  obs::RegisterDefaultIntrospection(&server);
  server.AddStatusSource("artifact", [&] {
    return serve::ArtifactStatusJson(*engine.model_ref());
  });
  server.AddStatusSource("engine", [&] { return engine.StatusJson(); });
  server.AddStatusSource("net", [&] { return data_plane.StatusJson(); });
  server.AddStatusSource("reload", [&] { return reloader.StatusJson(); });
  server.Handle("/reload", [&] {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    Status st = reloader.Reload("http");
    if (st.ok()) {
      resp.body = "{\"ok\": true, \"version\": \"" +
                  engine.model_version() + "\"}\n";
    } else {
      resp.status = 500;
      resp.body =
          "{\"ok\": false, \"error\": \"" + st.ToString() + "\"}\n";
    }
    return resp;
  });
  // Refresh derived gauges on every scrape so /metrics never shows a
  // stale burn rate (or, for a mapping, stale residency — pages fault in
  // as queries touch them).
  server.SetRefresh([&] {
    if (engine.slo() != nullptr) engine.slo()->ExportGauges();
    const std::shared_ptr<const serve::FrozenModel> live = engine.model_ref();
    if (live->is_mapped()) {
      KGAG_GAUGE_SET("serve.artifact.resident_bytes",
                     live->mapping->ResidentBytes());
    }
  });
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "introspection: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  Status net_started = data_plane.Start();
  if (!net_started.ok()) {
    std::fprintf(stderr, "data plane: %s\n", net_started.ToString().c_str());
    return 1;
  }
  // Scripts parse these lines for the bound (possibly ephemeral) ports.
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::printf("data plane on 127.0.0.1:%d\n", data_plane.port());
  std::fflush(stdout);

  if (flags.selftraffic > 0) RunSelfTraffic(&engine, flags.selftraffic);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGHUP, HandleReloadSignal);
  std::thread watcher;
  if (flags.watch) {
    watcher = std::thread(
        [&] { reloader.WatchLoop(flags.watch_interval_ms); });
    std::printf("watching %s every %d ms\n", flags.artifact.c_str(),
                flags.watch_interval_ms);
    std::fflush(stdout);
  }
  const auto start = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      (void)reloader.Reload("sighup");
    }
    if (flags.duration_s > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= flags.duration_s) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  g_stop = 1;  // stops the watcher even on a --duration_s exit
  if (watcher.joinable()) watcher.join();

  data_plane.Stop();
  server.Stop();
  std::printf("served %llu requests; bye\n",
              static_cast<unsigned long long>(engine.requests_served()));
  return 0;
}
