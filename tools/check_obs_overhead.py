#!/usr/bin/env python3
"""Gate the observability overhead from A/B (obs-ON vs obs-OFF) benchmarks.

Reads JSON files produced by `bench_kernels --acceptance` (kernel path:
the 512x64x64 propagation-batch matmul, which crosses only the counter
increments in kernels::Gemm) and/or `bench_serve --overhead` (serving
path: the micro-batched request loop, which crosses counters, gauges,
HDR histograms and disabled trace spans). Each side may be given
SEVERAL runs of each benchmark; the gate compares the per-benchmark
MEDIANS, so one scheduler hiccup cannot flip the verdict the way a
single-run comparison can. Runs shorter than the --min-wall-ms floor
are rejected as too noisy to trust.

Medians do not protect against code-layout bias: the ON and OFF builds
place functions at different addresses, which skews the comparison by
a systematic few percent in either direction even when the hot loops
are instruction-identical (DESIGN.md section 12, "Overhead"). Build
both sides with -DKGAG_ALIGN_FUNCTIONS=ON so the measured delta is the
instrumentation, not the linker.

The check fails (exit 1) when, for any benchmark present on both
sides, the ON median is slower than the OFF median by more than
--budget percent.

Usage:
  check_obs_overhead.py --enabled on1.json on2.json ... \
      --disabled off1.json off2.json ... \
      [--budget 2.0] [--min-wall-ms 200] [--out BENCH_obs_overhead.json]
"""

import argparse
import json
import statistics
import sys

# bench name -> (ns-per-op field, how to compute the run's wall ms)
KINDS = {
    "bench_kernels_acceptance": (
        "blocked_ns",
        # min_secs * reps is the floor TimeBest enforces per measurement;
        # older files without the fields fall back to an optimistic 1s.
        lambda doc: 1e3 * float(doc.get("min_secs", 1.0))
        * float(doc.get("reps", 1)),
    ),
    "bench_serve_overhead": (
        "request_ns",
        lambda doc: float(doc["wall_ms"]),
    ),
}


def load(path, want_obs_enabled, min_wall_ms):
    with open(path) as f:
        doc = json.load(f)
    kind = doc.get("bench")
    if kind not in KINDS:
        sys.exit(f"{path}: bench={kind!r}, expected one of {sorted(KINDS)}")
    if doc.get("obs_enabled") != want_obs_enabled:
        sys.exit(
            f"{path}: obs_enabled={doc.get('obs_enabled')}, expected "
            f"{want_obs_enabled} — did you swap the two builds?"
        )
    if doc.get("smoke"):
        print(f"warning: {path} is a --smoke run; timings are noise",
              file=sys.stderr)
    metric_field, wall_ms_of = KINDS[kind]
    wall_ms = wall_ms_of(doc)
    if wall_ms < min_wall_ms and not doc.get("smoke"):
        sys.exit(
            f"{path}: measured for {wall_ms:.0f} ms, below the "
            f"{min_wall_ms:.0f} ms floor — rerun with a longer workload"
        )
    return kind, float(doc[metric_field])


def collect(paths, want_obs_enabled, min_wall_ms):
    by_kind = {}
    for path in paths:
        kind, ns = load(path, want_obs_enabled, min_wall_ms)
        by_kind.setdefault(kind, []).append(ns)
    return by_kind


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--enabled", required=True, nargs="+",
                    help="JSON file(s) from the obs-ON build")
    ap.add_argument("--disabled", required=True, nargs="+",
                    help="JSON file(s) from the obs-OFF build")
    ap.add_argument("--budget", type=float, default=2.0,
                    help="max allowed overhead in percent (default 2.0)")
    ap.add_argument("--min-wall-ms", type=float, default=200.0,
                    help="reject runs measured for less wall time than "
                         "this (default 200)")
    ap.add_argument("--out", default=None,
                    help="also write the verdict as a BENCH-style JSON")
    args = ap.parse_args()

    on = collect(args.enabled, True, args.min_wall_ms)
    off = collect(args.disabled, False, args.min_wall_ms)
    common = sorted(set(on) & set(off))
    if not common:
        sys.exit("no benchmark appears on both the ON and the OFF side")
    for kind in sorted(set(on) ^ set(off)):
        print(f"warning: {kind} appears on only one side; skipped",
              file=sys.stderr)

    results = {}
    ok = True
    for kind in common:
        on_ns = statistics.median(on[kind])
        off_ns = statistics.median(off[kind])
        overhead_pct = 100.0 * (on_ns - off_ns) / off_ns
        within = overhead_pct <= args.budget
        ok = ok and within
        results[kind] = {
            "obs_on_ns": on_ns,
            "obs_off_ns": off_ns,
            "runs_per_side": [len(on[kind]), len(off[kind])],
            "overhead_pct": round(overhead_pct, 3),
        }
        print(f"{kind}: ON {on_ns / 1e3:9.2f} us/op (median of "
              f"{len(on[kind])}), OFF {off_ns / 1e3:9.2f} us/op (median of "
              f"{len(off[kind])}), overhead {overhead_pct:+.2f}% "
              f"(budget {args.budget:.2f}%)"
              f"{'' if within else '  <-- OVER BUDGET'}")

    if args.out:
        doc = {
            "bench": "obs_overhead",
            "budget_pct": args.budget,
            "min_wall_ms": args.min_wall_ms,
            "benches": results,
            "overhead_pct": max(r["overhead_pct"] for r in results.values()),
            "ok": ok,
            "note": "median-of-N A/B: bench_kernels --acceptance and/or "
                    "bench_serve --overhead in KGAG_OBS_ENABLED=ON vs OFF "
                    "builds, both configured -DKGAG_ALIGN_FUNCTIONS=ON to "
                    "pin code layout; gate: tools/check_obs_overhead.py",
        }
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")

    if not ok:
        print("FAIL: observability overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
