#!/usr/bin/env python3
"""Gate the observability overhead on the acceptance GEMM shape.

Reads two JSON files produced by `bench_kernels --acceptance` — one from a
KGAG_OBS_ENABLED=ON build and one from an OFF build — and fails (exit 1)
when the enabled build is slower than the disabled build by more than
--budget percent. The acceptance shape (512x64x64 propagation-batch
matmul) crosses only the counter increments in kernels::Gemm, so this
bounds exactly the hot-path cost the obs layer is allowed to add.

Usage:
  check_obs_overhead.py --enabled on.json --disabled off.json [--budget 2.0]
"""

import argparse
import json
import sys


def load(path, want_obs_enabled):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "bench_kernels_acceptance":
        sys.exit(f"{path}: not a bench_kernels --acceptance result")
    if doc.get("obs_enabled") != want_obs_enabled:
        sys.exit(
            f"{path}: obs_enabled={doc.get('obs_enabled')}, expected "
            f"{want_obs_enabled} — did you swap the two builds?"
        )
    if doc.get("smoke"):
        print(f"warning: {path} is a --smoke run; timings are noise",
              file=sys.stderr)
    return float(doc["blocked_ns"])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--enabled", required=True,
                    help="acceptance JSON from the obs-ON build")
    ap.add_argument("--disabled", required=True,
                    help="acceptance JSON from the obs-OFF build")
    ap.add_argument("--budget", type=float, default=2.0,
                    help="max allowed overhead in percent (default 2.0)")
    args = ap.parse_args()

    on_ns = load(args.enabled, True)
    off_ns = load(args.disabled, False)
    overhead_pct = 100.0 * (on_ns - off_ns) / off_ns

    print(f"obs ON : {on_ns / 1e3:9.2f} us/call")
    print(f"obs OFF: {off_ns / 1e3:9.2f} us/call")
    print(f"overhead: {overhead_pct:+.2f}% (budget {args.budget:.2f}%)")

    if overhead_pct > args.budget:
        print("FAIL: observability overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
