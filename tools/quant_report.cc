// quant_report: the quantization accuracy gate (DESIGN.md §11).
//
// Trains a small KGAG model on the synthetic corpus (same recipe as
// freeze_model), freezes it at full precision, quantizes the frozen reps
// to fp32 / fp16 / int8, and measures what quantization does to the
// model's RANKINGS — the only thing serving exposes:
//
//   exact-overlap@K  mean |top-K(fp64) ∩ top-K(tier)| / K over every
//                    group, scoring the full catalog (order-insensitive)
//   hit@K / ndcg@K   paper eval protocol (RankingEvaluator on the test
//                    split) per tier, reported as deltas vs fp64
//
// Gates (exit 1 on violation, for CI):
//   int8        overlap >= 0.95,  |Δhit@K| <= 0.005
//   fp16, fp32  overlap >= 0.99,  |Δhit@K| <= 0.001
//
// The tolerances encode the design claim that convert-on-load float
// tiers are ranking-neutral for all practical purposes while int8 may
// flip a few near-ties, never enough to move the paper metrics.
//
//   ./build/tools/quant_report --out report.json
//   ./build/tools/quant_report --scale 0.4 --k 10 --quant-block 8
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/file_io.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/metrics.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "tensor/quant.h"

namespace {

struct Flags {
  std::string out;
  double scale = 0.25;
  int seed = 7;
  int epochs = 4;
  size_t k = 10;
  uint32_t quant_block = 0;
};

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
      return nullptr;
    };
    auto next = [&](const char* name) -> const char* {
      return arg == name && i + 1 < argc ? argv[++i] : nullptr;
    };
    if (const char* v = val("--out")) f.out = v;
    else if (const char* v2 = next("--out")) f.out = v2;
    else if (const char* vs = val("--scale")) f.scale = std::atof(vs);
    else if (const char* vs2 = next("--scale")) f.scale = std::atof(vs2);
    else if (const char* vn = val("--seed")) f.seed = std::atoi(vn);
    else if (const char* ve = val("--epochs")) f.epochs = std::atoi(ve);
    else if (const char* vk = val("--k")) {
      f.k = static_cast<size_t>(std::atoi(vk));
    } else if (const char* vb = val("--quant-block")) {
      f.quant_block = static_cast<uint32_t>(std::atoi(vb));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return f;
}

struct TierReport {
  const char* name = "";
  size_t rep_bytes = 0;
  double overlap = 0.0;
  double hit = 0.0;
  double ndcg = 0.0;
  double d_hit = 0.0;
  double d_ndcg = 0.0;
  double overlap_min = 0.0;  // gate
  double d_hit_max = 0.0;    // gate
  bool pass = true;
};

/// Mean top-K overlap with the fp64 catalog ranking across all groups.
double ExactOverlap(const kgag::serve::FrozenModel& base,
                    const kgag::serve::FrozenModel& quant,
                    const kgag::GroupTable& groups, size_t k) {
  using namespace kgag;
  double total = 0.0;
  size_t counted = 0;
  for (GroupId g = 0; g < groups.num_groups(); ++g) {
    auto members = groups.MembersOf(g);
    if (members.empty()) continue;
    Result<serve::GroupRep> rb = serve::BuildGroupRep(base, members);
    Result<serve::GroupRep> rq = serve::BuildGroupRep(quant, members);
    KGAG_CHECK(rb.ok() && rq.ok());
    const std::vector<double> sb = serve::ScoreAllItems(base, *rb);
    const std::vector<double> sq = serve::ScoreAllItems(quant, *rq);
    std::vector<size_t> tb = TopKIndices(std::span<const double>(sb), k);
    std::vector<size_t> tq = TopKIndices(std::span<const double>(sq), k);
    std::sort(tb.begin(), tb.end());
    std::sort(tq.begin(), tq.end());
    std::vector<size_t> common;
    std::set_intersection(tb.begin(), tb.end(), tq.begin(), tq.end(),
                          std::back_inserter(common));
    total += static_cast<double>(common.size()) /
             static_cast<double>(std::min(k, sb.size()));
    ++counted;
  }
  return counted == 0 ? 1.0 : total / static_cast<double>(counted);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgag;
  const Flags flags = Parse(argc, argv);

  GroupRecDataset dataset = MakeMovieLensRandDataset(
      static_cast<uint64_t>(flags.seed), flags.scale);
  KgagConfig config;
  config.propagation.dim = 16;
  config.propagation.depth = 2;
  config.propagation.sample_size = 6;
  config.propagation.final_tanh = false;
  config.epochs = flags.epochs;
  auto model = KgagModel::Create(&dataset, config);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("training %d epochs on %d groups / %d items...\n",
              flags.epochs, dataset.groups.num_groups(), dataset.num_items);
  (*model)->Fit();

  Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
  if (!frozen.ok()) {
    std::fprintf(stderr, "freeze: %s\n",
                 frozen.status().ToString().c_str());
    return 1;
  }

  RankingEvaluator evaluator(&dataset, flags.k);
  serve::FrozenGroupScorer base_scorer(&*frozen, &dataset.groups);
  const EvalResult base_eval = evaluator.EvaluateTest(&base_scorer);
  std::printf("fp64 baseline: %s\n", base_eval.ToString().c_str());

  const struct {
    QuantType type;
    double overlap_min;
    double d_hit_max;
  } kTiers[] = {
      {QuantType::kFp32, 0.99, 0.001},
      {QuantType::kFp16, 0.99, 0.001},
      {QuantType::kInt8, 0.95, 0.005},
  };

  std::vector<TierReport> reports;
  bool all_pass = true;
  for (const auto& tier : kTiers) {
    Result<serve::FrozenModel> q = serve::QuantizeFrozenModel(
        *frozen, tier.type,
        tier.type == QuantType::kInt8 ? flags.quant_block : 0);
    if (!q.ok()) {
      std::fprintf(stderr, "quantize %s: %s\n", QuantTypeName(tier.type),
                   q.status().ToString().c_str());
      return 1;
    }
    TierReport r;
    r.name = QuantTypeName(tier.type);
    r.rep_bytes = serve::RepBytesPerEntity(*q);
    r.overlap = ExactOverlap(*frozen, *q, dataset.groups, flags.k);
    serve::FrozenGroupScorer scorer(&*q, &dataset.groups);
    const EvalResult ev = evaluator.EvaluateTest(&scorer);
    r.hit = ev.hit_at_k;
    r.ndcg = ev.ndcg_at_k;
    r.d_hit = ev.hit_at_k - base_eval.hit_at_k;
    r.d_ndcg = ev.ndcg_at_k - base_eval.ndcg_at_k;
    r.overlap_min = tier.overlap_min;
    r.d_hit_max = tier.d_hit_max;
    r.pass = r.overlap >= tier.overlap_min &&
             std::abs(r.d_hit) <= tier.d_hit_max;
    all_pass = all_pass && r.pass;
    std::printf(
        "%s: overlap@%zu %.4f (>= %.2f), hit@%zu %.4f (Δ %+.4f, |Δ| <= "
        "%.3f), ndcg@%zu %.4f (Δ %+.4f), %zu rep bytes/entity -> %s\n",
        r.name, flags.k, r.overlap, r.overlap_min, flags.k, r.hit, r.d_hit,
        r.d_hit_max, flags.k, r.ndcg, r.d_ndcg, r.rep_bytes,
        r.pass ? "PASS" : "FAIL");
    reports.push_back(r);
  }

  if (!flags.out.empty()) {
    std::string json = "{\n";
    json += "  \"k\": " + std::to_string(flags.k) + ",\n";
    json += "  \"seed\": " + std::to_string(flags.seed) + ",\n";
    json += "  \"scale\": " + std::to_string(flags.scale) + ",\n";
    json += "  \"num_groups\": " +
            std::to_string(dataset.groups.num_groups()) + ",\n";
    json += "  \"eval_groups\": " +
            std::to_string(base_eval.num_groups) + ",\n";
    json += "  \"fp64\": {\"hit\": " + std::to_string(base_eval.hit_at_k) +
            ", \"ndcg\": " + std::to_string(base_eval.ndcg_at_k) + "},\n";
    json += "  \"tiers\": [\n";
    for (size_t i = 0; i < reports.size(); ++i) {
      const TierReport& r = reports[i];
      json += std::string("    {\"precision\": \"") + r.name + "\"," +
              " \"rep_bytes_per_entity\": " + std::to_string(r.rep_bytes) +
              ", \"exact_overlap\": " + std::to_string(r.overlap) +
              ", \"hit\": " + std::to_string(r.hit) +
              ", \"ndcg\": " + std::to_string(r.ndcg) +
              ", \"delta_hit\": " + std::to_string(r.d_hit) +
              ", \"delta_ndcg\": " + std::to_string(r.d_ndcg) +
              ", \"gate_overlap_min\": " + std::to_string(r.overlap_min) +
              ", \"gate_abs_delta_hit_max\": " +
              std::to_string(r.d_hit_max) +
              ", \"pass\": " + (r.pass ? "true" : "false") + "}" +
              (i + 1 < reports.size() ? "," : "") + "\n";
    }
    json += "  ],\n";
    json += std::string("  \"all_pass\": ") + (all_pass ? "true" : "false") +
            "\n}\n";
    Status s = AtomicWriteFile(flags.out, json);
    if (!s.ok()) {
      std::fprintf(stderr, "write %s: %s\n", flags.out.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.out.c_str());
  }

  if (!all_pass) {
    std::fprintf(stderr, "quantization accuracy gate FAILED\n");
    return 1;
  }
  std::printf("quantization accuracy gate passed\n");
  return 0;
}
