// freeze_model: turn a trained KGAG model into a serving artifact.
//
// Reconstructs the model architecture (synthetic corpus + config, both
// derived from --seed/--scale the same way the benches do), restores
// trained parameters from one of
//   --params=FILE           a SaveParametersToFile blob, or
//   --checkpoint_dir=DIR    the newest intact training checkpoint, or
//   --epochs=N              trains N epochs right here (default 4),
// then runs the propagation layers once per entity and writes the
// KGAGSRV1 artifact to --out (atomic write). The artifact is read back
// and re-encoded afterwards to prove the round trip is byte-stable.
//
// --precision={fp64,fp32,fp16,int8} quantizes the frozen rep tables at
// freeze time (DESIGN.md §11); --quant-block=B uses per-block int8
// scales (0 = per-row). The round-trip proof prints bytes-per-entity so
// the storage win is visible in the log.
//
// --layout={v1,mmap} picks the artifact format: v1 is the legacy chunked
// container (decode-to-heap at load), mmap is the KGAGSRV2 zero-copy
// layout (DESIGN.md §14) the server maps directly.
//
// --bigworld switches to the synthetic serving-scale world (no training):
// rep tables, attention, groups and KG all derive deterministically from
// --seed at --users/--items/--groups/--dim scale, and the artifact is
// STREAMED — generation and encode run in --chunk-rows-sized pieces, so
// a million-user artifact never exists in memory.
//
//   ./build/tools/freeze_model --out model.srv
//   ./build/tools/freeze_model --out model.srv --precision=int8
//   ./build/tools/freeze_model --out model.srv --checkpoint_dir runs/ckpt
//   ./build/tools/freeze_model --out world.srv2 --layout=mmap --bigworld
//       --users=1000000 --items=100000 --precision=fp16
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ckpt/checkpoint.h"
#include "common/file_io.h"
#include "common/stopwatch.h"
#include "data/synthetic/bigworld.h"
#include "data/synthetic/standard_datasets.h"
#include "models/kgag_model.h"
#include "serve/bigworld_freeze.h"
#include "serve/frozen_model.h"
#include "tensor/quant.h"
#include "tensor/serialization.h"

namespace {

struct Flags {
  std::string out;
  std::string params;
  std::string checkpoint_dir;
  double scale = 0.25;
  int seed = 7;
  int epochs = 4;
  kgag::QuantType precision = kgag::QuantType::kFp64;
  uint32_t quant_block = 0;
  bool mmap_layout = false;  ///< --layout=mmap -> KGAGSRV2
  bool bigworld = false;
  uint64_t users = 1'000'000;
  uint64_t items = 100'000;
  uint64_t groups = 100'000;
  uint32_t dim = 64;
  uint32_t group_size = 5;
  uint64_t chunk_rows = 8192;
};

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::string prefix = std::string(name) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = val("--out")) f.out = v;
    else if (const char* vp = val("--params")) f.params = vp;
    else if (const char* vd = val("--checkpoint_dir")) f.checkpoint_dir = vd;
    else if (const char* vs = val("--scale")) f.scale = std::atof(vs);
    else if (const char* vn = val("--seed")) f.seed = std::atoi(vn);
    else if (const char* ve = val("--epochs")) f.epochs = std::atoi(ve);
    else if (const char* vq = val("--precision")) {
      if (!kgag::ParseQuantType(vq, &f.precision)) {
        std::fprintf(stderr,
                     "bad --precision (want fp64|fp32|fp16|int8): %s\n", vq);
        std::exit(2);
      }
    } else if (const char* vb = val("--quant-block")) {
      f.quant_block = static_cast<uint32_t>(std::atoi(vb));
    } else if (const char* vb2 = val("--quant_block")) {
      f.quant_block = static_cast<uint32_t>(std::atoi(vb2));
    } else if (const char* vl = val("--layout")) {
      if (std::string(vl) == "mmap") {
        f.mmap_layout = true;
      } else if (std::string(vl) == "v1") {
        f.mmap_layout = false;
      } else {
        std::fprintf(stderr, "bad --layout (want v1|mmap): %s\n", vl);
        std::exit(2);
      }
    } else if (arg == "--bigworld") {
      f.bigworld = true;
    } else if (const char* vu = val("--users")) {
      f.users = std::strtoull(vu, nullptr, 10);
    } else if (const char* vi = val("--items")) {
      f.items = std::strtoull(vi, nullptr, 10);
    } else if (const char* vg = val("--groups")) {
      f.groups = std::strtoull(vg, nullptr, 10);
    } else if (const char* vdm = val("--dim")) {
      f.dim = static_cast<uint32_t>(std::atoi(vdm));
    } else if (const char* vgs = val("--group-size")) {
      f.group_size = static_cast<uint32_t>(std::atoi(vgs));
    } else if (const char* vc = val("--chunk-rows")) {
      f.chunk_rows = std::strtoull(vc, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return f;
}

/// Streamed big-world freeze: generate + encode chunk by chunk, then
/// map/load the artifact back with full CRC verification as the
/// round-trip proof.
int RunBigWorld(const Flags& flags) {
  using namespace kgag;
  synthetic::BigWorldSpec spec;
  spec.num_users = flags.users;
  spec.num_items = flags.items;
  spec.num_groups = flags.groups;
  spec.dim = flags.dim;
  spec.group_size = flags.group_size;
  spec.seed = static_cast<uint64_t>(flags.seed);
  const synthetic::BigWorldGen gen(spec);

  serve::BigWorldFreezeOptions opt;
  opt.quant = flags.precision;
  opt.quant_block = flags.quant_block;
  opt.chunk_rows = flags.chunk_rows;

  Stopwatch watch;
  const Status s = flags.mmap_layout
                       ? serve::FreezeBigWorldV2(gen, opt, flags.out)
                       : serve::FreezeBigWorldV1(gen, opt, flags.out);
  if (!s.ok()) {
    std::fprintf(stderr, "bigworld freeze: %s\n", s.ToString().c_str());
    return 1;
  }
  const double freeze_ms = watch.ElapsedMicros() / 1000.0;

  // Round-trip proof: the artifact must load (v2: header + every blob
  // CRC; v1: full decode) and agree with the spec's shape.
  watch.Restart();
  serve::MmapLoadOptions verify;
  verify.verify_crc = true;
  Result<serve::FrozenModel> loaded =
      flags.mmap_layout ? serve::LoadFrozenModelMmap(flags.out, verify)
                        : serve::LoadFrozenModel(flags.out);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bigworld verify: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const double verify_ms = watch.ElapsedMicros() / 1000.0;
  if (static_cast<uint64_t>(loaded->num_users) != spec.num_users ||
      static_cast<uint64_t>(loaded->num_items) != spec.num_items) {
    std::fprintf(stderr, "bigworld verify: shape mismatch\n");
    return 1;
  }

  std::printf(
      "wrote %s (%s layout): %llu users x %llu items, dim %u, group size "
      "%u, precision %s (%zu rep bytes/entity); freeze %.1f ms (streamed, "
      "chunk %llu rows), verify+CRC %.1f ms\n",
      flags.out.c_str(), flags.mmap_layout ? "mmap/KGAGSRV2" : "v1/KGAGSRV1",
      static_cast<unsigned long long>(spec.num_users),
      static_cast<unsigned long long>(spec.num_items), spec.dim,
      spec.group_size, QuantTypeName(flags.precision),
      serve::RepBytesPerEntity(*loaded), freeze_ms,
      static_cast<unsigned long long>(opt.chunk_rows), verify_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgag;
  const Flags flags = Parse(argc, argv);
  if (flags.out.empty()) {
    std::fprintf(stderr,
                 "usage: freeze_model --out=FILE [--layout=v1|mmap] "
                 "[--params=FILE | --checkpoint_dir=DIR | --epochs=N] "
                 "[--scale=S] [--seed=N] | --bigworld [--users=N --items=N "
                 "--groups=N --dim=D --group-size=L --chunk-rows=N]\n");
    return 2;
  }
  if (flags.bigworld) return RunBigWorld(flags);

  GroupRecDataset dataset = MakeMovieLensRandDataset(
      static_cast<uint64_t>(flags.seed), flags.scale);
  KgagConfig config;
  config.propagation.dim = 16;
  config.propagation.depth = 2;
  config.propagation.sample_size = 6;
  config.propagation.final_tanh = false;
  config.epochs = flags.epochs;
  auto model = KgagModel::Create(&dataset, config);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  if (!flags.params.empty()) {
    Status s = LoadParametersFromFile(flags.params, (*model)->params());
    if (!s.ok()) {
      std::fprintf(stderr, "params: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored parameters from %s\n", flags.params.c_str());
  } else if (!flags.checkpoint_dir.empty()) {
    ckpt::CheckpointManager mgr({.dir = flags.checkpoint_dir});
    Result<ckpt::TrainingState> state = mgr.LoadLatest();
    if (!state.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n",
                   state.status().ToString().c_str());
      return 1;
    }
    Status s = (*model)->RestoreTrainingState(*state, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "restore: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored checkpoint from %s (epoch %llu)\n",
                flags.checkpoint_dir.c_str(),
                static_cast<unsigned long long>(state->epoch));
  } else {
    std::printf("training %d epochs (no --params/--checkpoint_dir)...\n",
                flags.epochs);
    (*model)->Fit();
  }

  Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
  if (!frozen.ok()) {
    std::fprintf(stderr, "freeze: %s\n", frozen.status().ToString().c_str());
    return 1;
  }
  if (flags.precision != QuantType::kFp64) {
    frozen = serve::QuantizeFrozenModel(*frozen, flags.precision,
                                        flags.quant_block);
    if (!frozen.ok()) {
      std::fprintf(stderr, "quantize: %s\n",
                   frozen.status().ToString().c_str());
      return 1;
    }
  }
  Status s = flags.mmap_layout ? serve::SaveFrozenModelV2(*frozen, flags.out)
                               : serve::SaveFrozenModel(*frozen, flags.out);
  if (!s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }

  // Round-trip check: load the artifact back and re-encode (v1 through
  // the heap decoder, v2 through the mmap loader with every blob CRC
  // checked); the bytes must match what is on disk.
  std::string on_disk;
  Status read = ReadFileToString(flags.out, &on_disk);
  std::string re_encoded;
  Status enc;
  if (flags.mmap_layout) {
    serve::MmapLoadOptions verify;
    verify.verify_crc = true;
    Result<serve::FrozenModel> loaded =
        serve::LoadFrozenModelMmap(flags.out, verify);
    if (loaded.ok()) {
      const std::string tmp = flags.out + ".rt";
      enc = serve::SaveFrozenModelV2(*loaded, tmp);
      if (enc.ok()) enc = ReadFileToString(tmp, &re_encoded);
      std::remove(tmp.c_str());
    } else {
      enc = loaded.status();
    }
  } else {
    Result<serve::FrozenModel> loaded = serve::LoadFrozenModel(flags.out);
    enc = loaded.ok() ? serve::EncodeFrozenModel(*loaded, &re_encoded)
                      : loaded.status();
  }
  if (!read.ok() || !enc.ok() || re_encoded != on_disk) {
    std::fprintf(stderr, "round-trip verification FAILED\n");
    return 1;
  }

  std::printf(
      "wrote %s (%s layout): %zu bytes, %d users x %d items, dim %d, "
      "group size %d (sp=%d pi=%d), precision %s (%zu rep bytes/entity); "
      "round-trip byte-stable\n",
      flags.out.c_str(), flags.mmap_layout ? "mmap/KGAGSRV2" : "v1/KGAGSRV1",
      on_disk.size(), frozen->num_users, frozen->num_items, frozen->dim,
      frozen->group_size, frozen->use_sp ? 1 : 0, frozen->use_pi ? 1 : 0,
      QuantTypeName(frozen->quant), serve::RepBytesPerEntity(*frozen));
  return 0;
}
