// freeze_model: turn a trained KGAG model into a serving artifact.
//
// Reconstructs the model architecture (synthetic corpus + config, both
// derived from --seed/--scale the same way the benches do), restores
// trained parameters from one of
//   --params=FILE           a SaveParametersToFile blob, or
//   --checkpoint_dir=DIR    the newest intact training checkpoint, or
//   --epochs=N              trains N epochs right here (default 4),
// then runs the propagation layers once per entity and writes the
// KGAGSRV1 artifact to --out (atomic write). The artifact is read back
// and re-encoded afterwards to prove the round trip is byte-stable.
//
// --precision={fp64,fp32,fp16,int8} quantizes the frozen rep tables at
// freeze time (DESIGN.md §11); --quant-block=B uses per-block int8
// scales (0 = per-row). The round-trip proof prints bytes-per-entity so
// the storage win is visible in the log.
//
//   ./build/tools/freeze_model --out model.srv
//   ./build/tools/freeze_model --out model.srv --precision=int8
//   ./build/tools/freeze_model --out model.srv --checkpoint_dir runs/ckpt
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ckpt/checkpoint.h"
#include "common/file_io.h"
#include "data/synthetic/standard_datasets.h"
#include "models/kgag_model.h"
#include "serve/frozen_model.h"
#include "tensor/quant.h"
#include "tensor/serialization.h"

namespace {

struct Flags {
  std::string out;
  std::string params;
  std::string checkpoint_dir;
  double scale = 0.25;
  int seed = 7;
  int epochs = 4;
  kgag::QuantType precision = kgag::QuantType::kFp64;
  uint32_t quant_block = 0;
};

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::string prefix = std::string(name) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = val("--out")) f.out = v;
    else if (const char* vp = val("--params")) f.params = vp;
    else if (const char* vd = val("--checkpoint_dir")) f.checkpoint_dir = vd;
    else if (const char* vs = val("--scale")) f.scale = std::atof(vs);
    else if (const char* vn = val("--seed")) f.seed = std::atoi(vn);
    else if (const char* ve = val("--epochs")) f.epochs = std::atoi(ve);
    else if (const char* vq = val("--precision")) {
      if (!kgag::ParseQuantType(vq, &f.precision)) {
        std::fprintf(stderr,
                     "bad --precision (want fp64|fp32|fp16|int8): %s\n", vq);
        std::exit(2);
      }
    } else if (const char* vb = val("--quant-block")) {
      f.quant_block = static_cast<uint32_t>(std::atoi(vb));
    } else if (const char* vb2 = val("--quant_block")) {
      f.quant_block = static_cast<uint32_t>(std::atoi(vb2));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgag;
  const Flags flags = Parse(argc, argv);
  if (flags.out.empty()) {
    std::fprintf(stderr,
                 "usage: freeze_model --out=FILE [--params=FILE | "
                 "--checkpoint_dir=DIR | --epochs=N] [--scale=S] [--seed=N]\n");
    return 2;
  }

  GroupRecDataset dataset = MakeMovieLensRandDataset(
      static_cast<uint64_t>(flags.seed), flags.scale);
  KgagConfig config;
  config.propagation.dim = 16;
  config.propagation.depth = 2;
  config.propagation.sample_size = 6;
  config.propagation.final_tanh = false;
  config.epochs = flags.epochs;
  auto model = KgagModel::Create(&dataset, config);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  if (!flags.params.empty()) {
    Status s = LoadParametersFromFile(flags.params, (*model)->params());
    if (!s.ok()) {
      std::fprintf(stderr, "params: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored parameters from %s\n", flags.params.c_str());
  } else if (!flags.checkpoint_dir.empty()) {
    ckpt::CheckpointManager mgr({.dir = flags.checkpoint_dir});
    Result<ckpt::TrainingState> state = mgr.LoadLatest();
    if (!state.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n",
                   state.status().ToString().c_str());
      return 1;
    }
    Status s = (*model)->RestoreTrainingState(*state, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "restore: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored checkpoint from %s (epoch %llu)\n",
                flags.checkpoint_dir.c_str(),
                static_cast<unsigned long long>(state->epoch));
  } else {
    std::printf("training %d epochs (no --params/--checkpoint_dir)...\n",
                flags.epochs);
    (*model)->Fit();
  }

  Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
  if (!frozen.ok()) {
    std::fprintf(stderr, "freeze: %s\n", frozen.status().ToString().c_str());
    return 1;
  }
  if (flags.precision != QuantType::kFp64) {
    frozen = serve::QuantizeFrozenModel(*frozen, flags.precision,
                                        flags.quant_block);
    if (!frozen.ok()) {
      std::fprintf(stderr, "quantize: %s\n",
                   frozen.status().ToString().c_str());
      return 1;
    }
  }
  Status s = serve::SaveFrozenModel(*frozen, flags.out);
  if (!s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }

  // Round-trip check: load the artifact back and re-encode; the bytes
  // must match what is on disk.
  std::string on_disk;
  Status read = ReadFileToString(flags.out, &on_disk);
  Result<serve::FrozenModel> loaded = serve::LoadFrozenModel(flags.out);
  std::string re_encoded;
  Status enc = loaded.ok()
                   ? serve::EncodeFrozenModel(*loaded, &re_encoded)
                   : loaded.status();
  if (!read.ok() || !enc.ok() || re_encoded != on_disk) {
    std::fprintf(stderr, "round-trip verification FAILED\n");
    return 1;
  }

  std::printf(
      "wrote %s: %zu bytes, %d users x %d items, dim %d, group size %d "
      "(sp=%d pi=%d), precision %s (%zu rep bytes/entity); "
      "round-trip byte-stable\n",
      flags.out.c_str(), on_disk.size(), frozen->num_users,
      frozen->num_items, frozen->dim, frozen->group_size,
      frozen->use_sp ? 1 : 0, frozen->use_pi ? 1 : 0,
      QuantTypeName(frozen->quant), serve::RepBytesPerEntity(*frozen));
  return 0;
}
