// Checkpoint container + manager tests: format round-trips, rejection of
// every corruption class (bad magic, version, header CRC, truncated
// chunks, bit flips in each chunk type, trailing garbage), atomic write
// behavior, retention, and newest-intact-first load fallback.
#include "ckpt/checkpoint.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "gtest/gtest.h"

namespace kgag {
namespace ckpt {
namespace {

namespace fs = std::filesystem;

std::string TestTmpDir(const std::string& leaf) {
  const char* base = std::getenv("TEST_TMPDIR");
  fs::path dir = (base != nullptr ? fs::path(base)
                                  : fs::temp_directory_path()) /
                 leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadAll(const std::string& path) {
  std::string out;
  EXPECT_TRUE(ReadFileToString(path, &out).ok());
  return out;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

TrainingState SampleState() {
  TrainingState s;
  s.epoch = 4;
  s.mid_epoch = true;
  s.batches_done = 17;
  s.partial_loss = 3.25;
  s.epoch_losses = {0.9, 0.7, 0.55, 0.5};
  s.params = std::string("PARAM-BLOB\0with\0nuls", 20);
  s.optimizer = "ADAM-moments";
  s.rng = "rng-engine-streams";
  s.batcher = "orders+cursors";
  s.selector = "best-epoch-snapshot";
  return s;
}

void ExpectStatesEqual(const TrainingState& a, const TrainingState& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.mid_epoch, b.mid_epoch);
  EXPECT_EQ(a.batches_done, b.batches_done);
  EXPECT_EQ(a.partial_loss, b.partial_loss);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.optimizer, b.optimizer);
  EXPECT_EQ(a.rng, b.rng);
  EXPECT_EQ(a.batcher, b.batcher);
  EXPECT_EQ(a.selector, b.selector);
}

TEST(Container, RoundTripsChunks) {
  std::vector<Chunk> chunks = {
      {kTagMeta, "meta-bytes"},
      {kTagParams, std::string("\x00\x01\x02\xff", 4)},
      {kTagRng, ""},  // empty payloads are legal
  };
  std::string encoded;
  ASSERT_TRUE(EncodeContainer(chunks, &encoded).ok());

  std::vector<Chunk> decoded;
  ASSERT_TRUE(DecodeContainer(encoded, &decoded).ok());
  ASSERT_EQ(decoded.size(), chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(decoded[i].tag, chunks[i].tag);
    EXPECT_EQ(decoded[i].payload, chunks[i].payload);
  }
}

TEST(Container, RejectsBadMagic) {
  std::string encoded;
  ASSERT_TRUE(EncodeContainer({{kTagMeta, "x"}}, &encoded).ok());
  encoded[0] = 'X';
  std::vector<Chunk> out;
  EXPECT_TRUE(DecodeContainer(encoded, &out).IsInvalidArgument());
}

TEST(Container, RejectsHeaderCorruption) {
  std::string encoded;
  ASSERT_TRUE(EncodeContainer({{kTagMeta, "x"}}, &encoded).ok());
  encoded[9] ^= 0x40;  // flips a bit inside the version field
  std::vector<Chunk> out;
  EXPECT_FALSE(DecodeContainer(encoded, &out).ok());
}

TEST(Container, RejectsTruncationAtEveryLength) {
  std::string encoded;
  ASSERT_TRUE(
      EncodeContainer({{kTagMeta, "meta"}, {kTagParams, "params"}}, &encoded)
          .ok());
  for (size_t len = 0; len < encoded.size(); ++len) {
    std::vector<Chunk> out;
    EXPECT_FALSE(
        DecodeContainer(std::string_view(encoded.data(), len), &out).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(Container, RejectsTrailingGarbage) {
  std::string encoded;
  ASSERT_TRUE(EncodeContainer({{kTagMeta, "x"}}, &encoded).ok());
  encoded += "extra";
  std::vector<Chunk> out;
  EXPECT_FALSE(DecodeContainer(encoded, &out).ok());
}

TEST(Container, RejectsOversizedChunkLength) {
  std::string encoded;
  ASSERT_TRUE(EncodeContainer({{kTagMeta, "abcd"}}, &encoded).ok());
  // Overwrite the chunk's u64 length (after 20-byte header + 4-byte tag)
  // with a huge value; the decoder must bound it, not allocate.
  const uint64_t huge = ~0ull;
  encoded.replace(24, sizeof(huge),
                  reinterpret_cast<const char*>(&huge), sizeof(huge));
  std::vector<Chunk> out;
  EXPECT_FALSE(DecodeContainer(encoded, &out).ok());
}

TEST(TrainingState, RoundTrips) {
  const TrainingState state = SampleState();
  std::string encoded;
  ASSERT_TRUE(EncodeTrainingState(state, &encoded).ok());
  TrainingState decoded;
  ASSERT_TRUE(DecodeTrainingState(encoded, &decoded).ok());
  ExpectStatesEqual(state, decoded);
}

TEST(TrainingState, BitFlipAnywhereIsRejected) {
  // A single flipped bit in ANY byte — header, any chunk header, any
  // payload (META, LOSS, PARM, OPTM, RNGS, BTCH, VSEL), any CRC — must
  // make the decode fail; nothing in the file is unprotected.
  std::string encoded;
  ASSERT_TRUE(EncodeTrainingState(SampleState(), &encoded).ok());
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string corrupt = encoded;
    corrupt[i] ^= 0x01;
    TrainingState out;
    EXPECT_FALSE(DecodeTrainingState(corrupt, &out).ok())
        << "bit flip at byte " << i << " was accepted";
  }
}

TEST(TrainingState, MissingRequiredChunkIsRejected) {
  const TrainingState state = SampleState();
  std::string encoded;
  ASSERT_TRUE(EncodeTrainingState(state, &encoded).ok());
  std::vector<Chunk> chunks;
  ASSERT_TRUE(DecodeContainer(encoded, &chunks).ok());
  for (const uint32_t required :
       {kTagMeta, kTagParams, kTagOptimizer, kTagRng, kTagBatcher}) {
    std::vector<Chunk> pruned;
    for (const Chunk& c : chunks) {
      if (c.tag != required) pruned.push_back(c);
    }
    std::string reencoded;
    ASSERT_TRUE(EncodeContainer(pruned, &reencoded).ok());
    TrainingState out;
    EXPECT_FALSE(DecodeTrainingState(reencoded, &out).ok());
  }
}

TEST(TrainingState, UnknownChunkTypesAreSkipped) {
  std::string encoded;
  ASSERT_TRUE(EncodeTrainingState(SampleState(), &encoded).ok());
  std::vector<Chunk> chunks;
  ASSERT_TRUE(DecodeContainer(encoded, &chunks).ok());
  chunks.push_back(Chunk{MakeTag('F', 'U', 'T', 'R'), "from-a-newer-writer"});
  std::string reencoded;
  ASSERT_TRUE(EncodeContainer(chunks, &reencoded).ok());
  TrainingState out;
  ASSERT_TRUE(DecodeTrainingState(reencoded, &out).ok());
  ExpectStatesEqual(SampleState(), out);
}

TEST(AtomicWrite, ReplacesWithoutPartialStates) {
  const std::string dir = TestTmpDir("kgag_atomic_write");
  const std::string path = dir + "/file.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "first-version").ok());
  EXPECT_EQ(ReadAll(path), "first-version");
  ASSERT_TRUE(AtomicWriteFile(path, "second-version").ok());
  EXPECT_EQ(ReadAll(path), "second-version");
  // No temp files may survive a successful write.
  size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(Manager, SaveLoadRoundTrip) {
  CheckpointManager::Options opts;
  opts.dir = TestTmpDir("kgag_mgr_roundtrip");
  opts.fsync = false;
  CheckpointManager mgr(opts);

  const TrainingState state = SampleState();
  ASSERT_TRUE(mgr.Save(state).ok());
  Result<TrainingState> loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStatesEqual(state, *loaded);
}

TEST(Manager, EmptyDirIsNotFound) {
  CheckpointManager::Options opts;
  opts.dir = TestTmpDir("kgag_mgr_empty");
  CheckpointManager mgr(opts);
  Result<TrainingState> loaded = mgr.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(Manager, RetentionKeepsNewestN) {
  CheckpointManager::Options opts;
  opts.dir = TestTmpDir("kgag_mgr_retention");
  opts.keep_last = 2;
  opts.fsync = false;
  CheckpointManager mgr(opts);

  for (uint64_t e = 0; e < 5; ++e) {
    TrainingState s = SampleState();
    s.epoch = e;
    ASSERT_TRUE(mgr.Save(s).ok());
  }
  const std::vector<std::string> snaps = mgr.ListSnapshots();
  ASSERT_EQ(snaps.size(), 2u);
  Result<TrainingState> loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 4u);
}

TEST(Manager, FallsBackToNewestIntactSnapshot) {
  CheckpointManager::Options opts;
  opts.dir = TestTmpDir("kgag_mgr_fallback");
  opts.fsync = false;
  CheckpointManager mgr(opts);

  for (uint64_t e = 0; e < 3; ++e) {
    TrainingState s = SampleState();
    s.epoch = e;
    ASSERT_TRUE(mgr.Save(s).ok());
  }
  std::vector<std::string> snaps = mgr.ListSnapshots();
  ASSERT_EQ(snaps.size(), 3u);

  // Corrupt the newest (simulated torn write), truncate the middle one.
  std::string newest = ReadAll(snaps[2]);
  newest[newest.size() / 2] ^= 0xff;
  WriteAll(snaps[2], newest);
  WriteAll(snaps[1], ReadAll(snaps[1]).substr(0, 10));

  Result<TrainingState> loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 0u);  // the only intact snapshot
}

TEST(Manager, AllCorruptIsNotFound) {
  CheckpointManager::Options opts;
  opts.dir = TestTmpDir("kgag_mgr_all_corrupt");
  opts.fsync = false;
  CheckpointManager mgr(opts);
  ASSERT_TRUE(mgr.Save(SampleState()).ok());
  const std::vector<std::string> snaps = mgr.ListSnapshots();
  ASSERT_EQ(snaps.size(), 1u);
  WriteAll(snaps[0], "not a checkpoint at all");
  Result<TrainingState> loaded = mgr.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(Manager, SequenceNumbersContinueAcrossManagers) {
  CheckpointManager::Options opts;
  opts.dir = TestTmpDir("kgag_mgr_seq");
  opts.fsync = false;
  {
    CheckpointManager mgr(opts);
    ASSERT_TRUE(mgr.Save(SampleState()).ok());
    ASSERT_TRUE(mgr.Save(SampleState()).ok());
  }
  // A new manager (a resumed process) must not reuse sequence numbers —
  // an overwrite of an existing snapshot would defeat retention history.
  CheckpointManager mgr2(opts);
  TrainingState s = SampleState();
  s.epoch = 99;
  ASSERT_TRUE(mgr2.Save(s).ok());
  ASSERT_EQ(mgr2.ListSnapshots().size(), 3u);
  Result<TrainingState> loaded = mgr2.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 99u);
}

}  // namespace
}  // namespace ckpt
}  // namespace kgag
