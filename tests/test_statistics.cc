#include "eval/statistics.h"

#include <gtest/gtest.h>

namespace kgag {
namespace {

TEST(SummarizeTest, KnownValues) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  SummaryStats s = Summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_NEAR(s.stderr_mean, s.stddev / std::sqrt(8.0), 1e-12);
  EXPECT_EQ(s.n, 8u);
}

TEST(SummarizeTest, EmptyAndSingleton) {
  SummaryStats empty = Summarize({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);
  const double one[] = {3.5};
  SummaryStats s = Summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, ToStringReadable) {
  const double values[] = {1.0, 2.0, 3.0};
  const std::string s = Summarize(values).ToString(2);
  EXPECT_NE(s.find("2.00"), std::string::npos);
  EXPECT_NE(s.find("n=3"), std::string::npos);
}

TEST(ComparePairedTest, ClearWinner) {
  const double a[] = {0.55, 0.52, 0.58, 0.54};
  const double b[] = {0.50, 0.48, 0.51, 0.50};
  PairedComparison cmp = ComparePaired(a, b);
  EXPECT_NEAR(cmp.mean_diff, 0.05, 1e-9);
  EXPECT_EQ(cmp.wins, 4u);
  EXPECT_GT(cmp.t_statistic, 2.0);
}

TEST(ComparePairedTest, NoDifference) {
  const double a[] = {0.5, 0.6, 0.7};
  PairedComparison cmp = ComparePaired(a, a);
  EXPECT_DOUBLE_EQ(cmp.mean_diff, 0.0);
  EXPECT_EQ(cmp.wins, 0u);
  EXPECT_DOUBLE_EQ(cmp.t_statistic, 0.0);
}

TEST(ComparePairedTest, MixedResults) {
  const double a[] = {0.6, 0.4};
  const double b[] = {0.5, 0.5};
  PairedComparison cmp = ComparePaired(a, b);
  EXPECT_DOUBLE_EQ(cmp.mean_diff, 0.0);
  EXPECT_EQ(cmp.wins, 1u);
}

}  // namespace
}  // namespace kgag
