#include "kg/graph_stats.h"

#include <gtest/gtest.h>

#include "data/synthetic/standard_datasets.h"

namespace kgag {
namespace {

KnowledgeGraph Star(int leaves) {
  std::vector<Triple> t;
  for (int i = 1; i <= leaves; ++i) t.push_back({0, 0, i});
  auto g = KnowledgeGraph::Build(leaves + 2, 1, t);  // +1 isolated node
  KGAG_CHECK(g.ok());
  return std::move(*g);
}

TEST(DegreeStatsTest, StarGraph) {
  KnowledgeGraph g = Star(5);
  DegreeStats s = ComputeDegreeStats(g);
  // Center has degree 5; each leaf 1 (inverse edge); one isolated node.
  EXPECT_EQ(s.max, 5u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.isolated, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 10.0 / 7.0);
  EXPECT_EQ(s.p50, 1u);
}

TEST(DegreeStatsTest, EmptyGraph) {
  auto g = KnowledgeGraph::Build(0, 0, {});
  ASSERT_TRUE(g.ok());
  DegreeStats s = ComputeDegreeStats(*g);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(RelationUsageTest, CountsPerRelation) {
  std::vector<Triple> t = {{0, 0, 1}, {0, 0, 2}, {0, 1, 3}};
  auto g = KnowledgeGraph::Build(4, 2, t);
  ASSERT_TRUE(g.ok());
  std::vector<size_t> usage = RelationUsage(*g);
  ASSERT_EQ(usage.size(), 4u);  // 2 forward + 2 inverse
  EXPECT_EQ(usage[0], 2u);
  EXPECT_EQ(usage[1], 1u);
  EXPECT_EQ(usage[2], 2u);  // inverse of r0
  EXPECT_EQ(usage[3], 1u);
  size_t total = 0;
  for (size_t c : usage) total += c;
  EXPECT_EQ(total, g->num_edges());
}

TEST(UserProximityTest, ConnectedUsersHaveFiniteDistance) {
  // Two users who interacted with items sharing an attribute: distance 4.
  std::vector<Triple> kg = {{0, 0, 2}, {1, 0, 2}};
  auto ckg = BuildCollaborativeKg(kg, 3, 1, 2, {0, 1}, {{0, 0}, {1, 1}});
  ASSERT_TRUE(ckg.ok());
  Rng rng(1);
  UserProximityStats s = EstimateUserProximity(*ckg, 6, 50, &rng);
  EXPECT_EQ(s.pairs_sampled, 50u);
  EXPECT_DOUBLE_EQ(s.unreachable_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_distance, 4.0);
}

TEST(UserProximityTest, DisconnectedUsersUnreachable) {
  auto ckg = BuildCollaborativeKg({}, 2, 1, 2, {0, 1}, {});  // no edges
  ASSERT_TRUE(ckg.ok());
  Rng rng(2);
  UserProximityStats s = EstimateUserProximity(*ckg, 4, 20, &rng);
  EXPECT_DOUBLE_EQ(s.unreachable_fraction, 1.0);
}

TEST(UserProximityTest, YelpUsersMoreCentralizedThanRand) {
  // The §IV-E claim: Yelp members are concentrated in the KG. Community
  // structure should give Yelp users a smaller mean hop distance than the
  // MovieLens world's users at comparable scale.
  GroupRecDataset rand_ds = MakeMovieLensRandDataset(3, 0.15);
  GroupRecDataset yelp_ds = MakeYelpDataset(3, 0.2);
  auto make_ckg = [](const GroupRecDataset& ds) {
    std::vector<std::pair<int32_t, int32_t>> inter;
    for (const Interaction& it : ds.user_item.ToPairs()) {
      inter.emplace_back(it.row, it.item);
    }
    auto ckg = BuildCollaborativeKg(ds.kg_triples, ds.num_entities,
                                    ds.num_relations, ds.num_users,
                                    ds.item_to_entity, inter);
    KGAG_CHECK(ckg.ok());
    return std::move(*ckg);
  };
  CollaborativeKg rand_ckg = make_ckg(rand_ds);
  CollaborativeKg yelp_ckg = make_ckg(yelp_ds);
  Rng rng(4);
  UserProximityStats rs = EstimateUserProximity(rand_ckg, 8, 150, &rng);
  UserProximityStats ys = EstimateUserProximity(yelp_ckg, 8, 150, &rng);
  // Both worlds are connected through items; distances must be sane.
  EXPECT_GT(rs.mean_distance, 0.0);
  EXPECT_GT(ys.mean_distance, 0.0);
  EXPECT_LT(ys.mean_distance, 6.0);
}

TEST(DescribeGraphTest, MentionsCounts) {
  KnowledgeGraph g = Star(3);
  const std::string desc = DescribeGraph(g);
  EXPECT_NE(desc.find("5 entities"), std::string::npos);
  EXPECT_NE(desc.find("3 triples"), std::string::npos);
}

}  // namespace
}  // namespace kgag
