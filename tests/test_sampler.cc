#include "kg/neighbor_sampler.h"

#include <gtest/gtest.h>

#include <set>

namespace kgag {
namespace {

KnowledgeGraph StarGraph(int leaves) {
  // Node 0 connected to nodes 1..leaves by relation 0; plus isolated node.
  std::vector<Triple> triples;
  for (int i = 1; i <= leaves; ++i) {
    triples.push_back(Triple{0, 0, i});
  }
  auto g = KnowledgeGraph::Build(leaves + 2, 1, triples);
  KGAG_CHECK(g.ok());
  return std::move(*g);
}

TEST(NeighborSamplerTest, HighDegreeSampledWithoutReplacement) {
  KnowledgeGraph g = StarGraph(10);
  NeighborSampler sampler(&g, 4);
  Rng rng(1);
  std::vector<Edge> out;
  sampler.SampleNeighbors(0, &rng, &out);
  ASSERT_EQ(out.size(), 4u);
  std::set<EntityId> uniq;
  for (const Edge& e : out) {
    uniq.insert(e.neighbor);
    EXPECT_EQ(e.relation, 0);
    EXPECT_GE(e.neighbor, 1);
  }
  EXPECT_EQ(uniq.size(), 4u);  // distinct when degree >= K
}

TEST(NeighborSamplerTest, LowDegreePaddedWithReplacement) {
  KnowledgeGraph g = StarGraph(2);
  NeighborSampler sampler(&g, 5);
  Rng rng(2);
  std::vector<Edge> out;
  sampler.SampleNeighbors(0, &rng, &out);
  ASSERT_EQ(out.size(), 5u);
  std::set<EntityId> uniq;
  for (const Edge& e : out) uniq.insert(e.neighbor);
  EXPECT_EQ(uniq.size(), 2u);  // only two real neighbors exist
}

TEST(NeighborSamplerTest, IsolatedNodeGetsSelfLoops) {
  KnowledgeGraph g = StarGraph(3);
  NeighborSampler sampler(&g, 3);
  const EntityId isolated = 4;  // leaves+1
  ASSERT_EQ(g.Degree(isolated), 0u);
  Rng rng(3);
  std::vector<Edge> out;
  sampler.SampleNeighbors(isolated, &rng, &out);
  ASSERT_EQ(out.size(), 3u);
  for (const Edge& e : out) {
    EXPECT_EQ(e.neighbor, isolated);
    EXPECT_EQ(e.relation, sampler.self_loop_relation());
  }
}

TEST(NeighborSamplerTest, SelfLoopRelationIsOnePastVocab) {
  KnowledgeGraph g = StarGraph(3);
  NeighborSampler sampler(&g, 2);
  EXPECT_EQ(sampler.self_loop_relation(), g.relation_vocab_size());
}

TEST(NeighborSamplerTest, TreeShapeIsKAry) {
  KnowledgeGraph g = StarGraph(6);
  NeighborSampler sampler(&g, 3);
  Rng rng(4);
  SampledTree tree = sampler.SampleTree(0, 2, &rng);
  EXPECT_EQ(tree.depth(), 2);
  EXPECT_EQ(tree.root(), 0);
  ASSERT_EQ(tree.entities.size(), 3u);
  EXPECT_EQ(tree.entities[0].size(), 1u);
  EXPECT_EQ(tree.entities[1].size(), 3u);
  EXPECT_EQ(tree.entities[2].size(), 9u);
  EXPECT_EQ(tree.relations[0].size(), 3u);
  EXPECT_EQ(tree.relations[1].size(), 9u);
}

TEST(NeighborSamplerTest, TreeChildrenAreRealNeighbors) {
  KnowledgeGraph g = StarGraph(6);
  NeighborSampler sampler(&g, 3);
  Rng rng(5);
  SampledTree tree = sampler.SampleTree(0, 2, &rng);
  for (size_t i = 0; i < tree.entities[1].size(); ++i) {
    const EntityId child = tree.entities[1][i];
    const RelationId rel = tree.relations[0][i];
    if (rel == sampler.self_loop_relation()) {
      EXPECT_EQ(child, 0);
    } else {
      EXPECT_TRUE(g.HasEdge(0, rel, child));
    }
  }
}

TEST(NeighborSamplerTest, DepthZeroTreeIsJustRoot) {
  KnowledgeGraph g = StarGraph(3);
  NeighborSampler sampler(&g, 2);
  Rng rng(6);
  SampledTree tree = sampler.SampleTree(1, 0, &rng);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.entities.size(), 1u);
  EXPECT_EQ(tree.root(), 1);
}

TEST(NeighborSamplerTest, DeterministicGivenSeed) {
  KnowledgeGraph g = StarGraph(8);
  NeighborSampler sampler(&g, 3);
  Rng rng1(7), rng2(7);
  SampledTree a = sampler.SampleTree(0, 2, &rng1);
  SampledTree b = sampler.SampleTree(0, 2, &rng2);
  EXPECT_EQ(a.entities, b.entities);
  EXPECT_EQ(a.relations, b.relations);
}

}  // namespace
}  // namespace kgag
