// Randomized property tests: invariants that must hold for arbitrary
// (seeded) inputs, swept over seeds with TEST_P. These complement the
// example-based suites with breadth.
#include <gtest/gtest.h>

#include <numeric>

#include "data/synthetic/group_builder.h"
#include "data/synthetic/movielens_gen.h"
#include "eval/metrics.h"
#include "kg/neighbor_sampler.h"
#include "models/attention.h"
#include "models/losses.h"
#include "tensor/grad_check.h"
#include "tensor/tape.h"

namespace kgag {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }
};

// ---- Tape: random DAGs of ops must gradcheck -------------------------------

TEST_P(SeededProperty, RandomTapeGraphGradchecks) {
  Rng rng(seed());
  ParameterStore store;
  const size_t rows = static_cast<size_t>(rng.UniformInt(2, 5));
  const size_t cols = static_cast<size_t>(rng.UniformInt(2, 5));
  Parameter* a = store.Create("a", rows, cols, Init::kXavierUniform, &rng);
  Parameter* b = store.Create("b", cols, rows, Init::kXavierUniform, &rng);

  // A randomized composition: matmul + a random unary chain + reduction.
  // A fixed random weighting before the reduction keeps every composition
  // non-degenerate (Sum∘Softmax alone is constant with zero gradient).
  const int unary = static_cast<int>(rng.UniformInt(0, 3));
  const int reduction = static_cast<int>(rng.UniformInt(0, 2));
  Tensor weight(rows, rows);
  for (size_t i = 0; i < weight.size(); ++i) weight[i] = rng.Normal(0, 1);
  auto build = [&](Tape* tape) {
    Var x = tape->MatMul(tape->Leaf(a), tape->Leaf(b));  // rows x rows
    switch (unary) {
      case 0: x = tape->Sigmoid(x); break;
      case 1: x = tape->Tanh(x); break;
      case 2: x = tape->Softplus(x); break;
      default: x = tape->SoftmaxRows(x); break;
    }
    x = tape->Mul(x, tape->Constant(weight));
    switch (reduction) {
      case 0: return tape->Sum(x);
      case 1: return tape->Mean(x);
      default: return tape->Sum(tape->Mul(x, x));
    }
  };
  auto loss_fn = [&]() {
    Tape tape;
    return tape.value(build(&tape)).item();
  };
  auto backward_fn = [&]() {
    Tape tape;
    tape.Backward(build(&tape));
  };
  GradCheckReport report = CheckGradients(&store, loss_fn, backward_fn);
  EXPECT_TRUE(report.ok(1e-4)) << "seed " << seed() << " unary " << unary
                               << " reduction " << reduction << ": "
                               << report.worst_location;
}

// ---- Tape: softmax rows always form distributions --------------------------

TEST_P(SeededProperty, SoftmaxAlwaysDistribution) {
  Rng rng(seed());
  Tape tape;
  const size_t r = static_cast<size_t>(rng.UniformInt(1, 8));
  const size_t c = static_cast<size_t>(rng.UniformInt(1, 8));
  Tensor x(r, c);
  for (size_t i = 0; i < x.size(); ++i) x[i] = rng.Normal(0, 100.0);
  const Tensor y = tape.value(tape.SoftmaxRows(tape.Constant(x)));
  for (size_t i = 0; i < r; ++i) {
    Scalar sum = 0;
    for (size_t j = 0; j < c; ++j) {
      EXPECT_GE(y.at(i, j), 0.0);
      EXPECT_LE(y.at(i, j), 1.0);
      sum += y.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// ---- Losses: margin loss bounds and monotonicity ----------------------------

TEST_P(SeededProperty, MarginLossBounded) {
  Rng rng(seed());
  for (int i = 0; i < 20; ++i) {
    Tape tape;
    const double sp = rng.Normal(0, 3);
    const double sn = rng.Normal(0, 3);
    const double m = rng.Uniform(0.1, 0.9);
    Var loss = MarginPairLoss(&tape, tape.Constant(Tensor::Scalar1(sp)),
                              tape.Constant(Tensor::Scalar1(sn)), m);
    const double v = tape.value(loss).item();
    // 0 <= loss <= 1 + margin (sigmoid difference is in [-1, 1]).
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + m + 1e-12);
  }
}

TEST_P(SeededProperty, BprDecreasesWithSeparation) {
  Rng rng(seed());
  const double base = rng.Normal(0, 1);
  double prev = 1e300;
  for (double gap : {-1.0, 0.0, 0.5, 1.0, 2.0, 4.0}) {
    Tape tape;
    Var loss =
        BprPairLoss(&tape, tape.Constant(Tensor::Scalar1(base + gap)),
                    tape.Constant(Tensor::Scalar1(base)));
    const double v = tape.value(loss).item();
    EXPECT_LT(v, prev);
    prev = v;
  }
}

// ---- Metrics: consistency relations ----------------------------------------

TEST_P(SeededProperty, MetricsConsistency) {
  Rng rng(seed());
  // Random distinct ranking and random positive set.
  std::vector<ItemId> ranked(20);
  std::iota(ranked.begin(), ranked.end(), 0);
  rng.Shuffle(&ranked);
  std::unordered_set<ItemId> pos;
  const int npos = static_cast<int>(rng.UniformInt(1, 6));
  while (static_cast<int>(pos.size()) < npos) {
    pos.insert(static_cast<ItemId>(rng.UniformInt(0, 19)));
  }
  double prev_hit = 0, prev_rec = 0;
  for (size_t k = 1; k <= 20; ++k) {
    const double h = HitAtK(ranked, pos, k);
    const double r = RecallAtK(ranked, pos, k);
    const double n = NdcgAtK(ranked, pos, k);
    // Monotone non-decreasing in k.
    EXPECT_GE(h, prev_hit);
    EXPECT_GE(r, prev_rec);
    // hit@k >= recall@k always (hit is an indicator, recall a fraction).
    EXPECT_GE(h, r - 1e-12);
    EXPECT_GE(n, 0.0);
    EXPECT_LE(n, 1.0);
    prev_hit = h;
    prev_rec = r;
  }
  // At k = universe size, everything is found.
  EXPECT_DOUBLE_EQ(HitAtK(ranked, pos, 20), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, pos, 20), 1.0);
}

// ---- Sampler: trees always well-formed --------------------------------------

TEST_P(SeededProperty, SampledTreesWellFormed) {
  Rng rng(seed());
  // Random small graph.
  const int n = static_cast<int>(rng.UniformInt(4, 20));
  const int r = static_cast<int>(rng.UniformInt(1, 4));
  std::vector<Triple> triples;
  const int m = static_cast<int>(rng.UniformInt(0, 3 * n));
  for (int i = 0; i < m; ++i) {
    triples.push_back(Triple{
        static_cast<EntityId>(rng.UniformInt(0, n - 1)),
        static_cast<RelationId>(rng.UniformInt(0, r - 1)),
        static_cast<EntityId>(rng.UniformInt(0, n - 1))});
  }
  auto g = KnowledgeGraph::Build(n, r, triples);
  ASSERT_TRUE(g.ok());
  const int k = static_cast<int>(rng.UniformInt(1, 5));
  const int depth = static_cast<int>(rng.UniformInt(1, 3));
  NeighborSampler sampler(&*g, k);
  for (int root = 0; root < n; ++root) {
    SampledTree tree = sampler.SampleTree(root, depth, &rng);
    ASSERT_EQ(tree.depth(), depth);
    size_t expected = 1;
    for (int h = 0; h <= depth; ++h) {
      ASSERT_EQ(tree.entities[h].size(), expected);
      if (h < depth) {
        ASSERT_EQ(tree.relations[h].size(), expected * k);
      }
      expected *= static_cast<size_t>(k);
      for (EntityId e : tree.entities[h]) {
        ASSERT_GE(e, 0);
        ASSERT_LT(e, n);
      }
    }
    // Every child is a real neighbor of its parent (or a self-loop pad).
    for (size_t i = 0; i < tree.entities[1].size(); ++i) {
      const RelationId rel = tree.relations[0][i];
      if (rel == sampler.self_loop_relation()) {
        EXPECT_EQ(tree.entities[1][i], root);
      } else {
        EXPECT_TRUE(g->HasEdge(root, rel, tree.entities[1][i]));
      }
    }
  }
}

// ---- Attention: aggregation is always a convex combination -----------------

TEST_P(SeededProperty, AttentionConvexity) {
  Rng rng(seed());
  ParameterStore store;
  const int d = 4;
  const int l = static_cast<int>(rng.UniformInt(2, 6));
  PreferenceAggregator agg(d, l, rng.Bernoulli(0.5), rng.Bernoulli(0.5),
                           &store, &rng);
  Tensor members(l, d);
  for (size_t i = 0; i < members.size(); ++i) members[i] = rng.Normal(0, 2);
  Tensor item(1, d);
  for (size_t i = 0; i < item.size(); ++i) item[i] = rng.Normal(0, 2);

  AttentionBreakdown b = agg.Explain(members, item);
  const double sum =
      std::accumulate(b.alpha.begin(), b.alpha.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Group rep coordinates are bounded by the member extremes (convexity).
  Tape tape;
  Var g =
      agg.AggregateOnTape(&tape, tape.Constant(members), tape.Constant(item));
  const Tensor gv = tape.value(g);
  for (int c = 0; c < d; ++c) {
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < l; ++i) {
      lo = std::min(lo, members.at(i, c));
      hi = std::max(hi, members.at(i, c));
    }
    EXPECT_GE(gv.at(0, c), lo - 1e-9);
    EXPECT_LE(gv.at(0, c), hi + 1e-9);
  }
}

// ---- Group builder: structural invariants -----------------------------------

TEST_P(SeededProperty, GroupBuilderInvariants) {
  MovieLensConfig cfg;
  cfg.num_users = 50;
  cfg.num_movies = 40;
  cfg.num_directors = 8;
  cfg.num_actors = 20;
  cfg.num_genres = 6;
  cfg.num_years = 8;
  cfg.num_studios = 5;
  cfg.num_countries = 4;
  cfg.num_languages = 3;
  cfg.num_series = 4;
  Rng rng(seed());
  MovieLensWorld w = GenerateMovieLensWorld(cfg, &rng);
  GroupBuilderConfig gcfg;
  gcfg.group_size = static_cast<int>(rng.UniformInt(2, 5));
  gcfg.num_groups = 12;
  GroupBuildResult r = BuildRandomGroups(w.ratings, gcfg, &rng);
  for (GroupId g = 0; g < r.groups.num_groups(); ++g) {
    const auto members = r.groups.MembersOf(g);
    EXPECT_EQ(members.size(), static_cast<size_t>(gcfg.group_size));
    // Members sorted and distinct.
    for (size_t i = 1; i < members.size(); ++i) {
      EXPECT_LT(members[i - 1], members[i]);
    }
    // Every positive satisfies the decision rule.
    for (ItemId v : r.group_item.ItemsOf(g)) {
      for (UserId u : members) {
        const uint8_t rating = w.ratings.Get(u, v);
        EXPECT_NE(rating, 0);
        EXPECT_GE(rating, gcfg.veto_threshold);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace kgag
