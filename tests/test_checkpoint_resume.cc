// Crash-injection tests for checkpointed training: a run killed with
// SIGKILL mid-epoch and resumed from its newest snapshot must finish with
// parameters BYTE-IDENTICAL to a run that was never interrupted — the
// checkpoint captures the complete optimization trajectory (parameters,
// Adam moments, RNG streams, batcher shuffles/cursors, validation
// selection), so replay is exact, not approximate.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "models/kgag_model.h"
#include "models/validation.h"
#include "tensor/serialization.h"
#include "test_util.h"

namespace kgag {
namespace {

namespace fs = std::filesystem;

std::string TestTmpDir(const std::string& leaf) {
  const char* base = std::getenv("TEST_TMPDIR");
  fs::path dir = (base != nullptr ? fs::path(base)
                                  : fs::temp_directory_path()) /
                 leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Small-but-real training config: a few epochs with several batches each
/// so mid-epoch kills land between snapshots.
KgagConfig SmallConfig() {
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.depth = 1;
  cfg.propagation.sample_size = 3;
  cfg.epochs = 3;
  cfg.batch_size = 4;
  cfg.eval_tree_samples = 1;
  cfg.valid_max_interactions = 20;
  cfg.seed = 77;
  return cfg;
}

/// Trains to completion and returns the final parameter bytes.
std::string FinalParams(const GroupRecDataset& ds, const KgagConfig& cfg) {
  auto model = KgagModel::Create(&ds, cfg);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  (*model)->Fit();
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveParameters(*(*model)->params(), &out).ok());
  return out.str();
}

/// Forks a child that trains with `cfg` and SIGKILLs itself after batch
/// `kill_batch` of epoch `kill_epoch`; asserts the child actually died by
/// signal (i.e. the kill point was reached).
void RunAndCrash(const GroupRecDataset& ds, const KgagConfig& cfg,
                 int kill_epoch, uint64_t kill_batch) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    KgagConfig crash_cfg = cfg;
    crash_cfg.after_batch_hook = [kill_epoch, kill_batch](int epoch,
                                                         uint64_t batches) {
      if (epoch == kill_epoch && batches == kill_batch) raise(SIGKILL);
    };
    auto model = KgagModel::Create(&ds, crash_cfg);
    if (!model.ok()) _exit(2);
    (*model)->Fit();
    _exit(0);  // kill point never reached: reported below via exit status
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally (status " << WEXITSTATUS(status)
      << ") — the configured kill point was never reached";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(CheckpointResume, KillMidEpochThenResumeIsBitIdentical) {
  const GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = SmallConfig();
  cfg.checkpoint_dir = TestTmpDir("kgag_crash_mid_epoch");
  cfg.checkpoint_every_batches = 2;

  // Reference: same config, checkpointing off entirely — proves both that
  // resume is exact and that checkpointing itself never perturbs training.
  KgagConfig ref_cfg = cfg;
  ref_cfg.checkpoint_dir.clear();
  ref_cfg.checkpoint_every_batches = 0;
  const std::string ref_params = FinalParams(ds, ref_cfg);

  // Kill after batch 3 of epoch 1: the newest snapshot is mid-epoch
  // (epoch 1, batch 2), so the resumed run must replay batch 3 exactly.
  RunAndCrash(ds, cfg, /*kill_epoch=*/1, /*kill_batch=*/3);
  ASSERT_FALSE(fs::is_empty(cfg.checkpoint_dir))
      << "crashed run left no snapshot";

  KgagConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  const std::string resumed_params = FinalParams(ds, resume_cfg);

  ASSERT_EQ(ref_params.size(), resumed_params.size());
  EXPECT_TRUE(ref_params == resumed_params)
      << "resumed parameters differ from the uninterrupted run";
}

TEST(CheckpointResume, CorruptedNewestSnapshotFallsBackAndStaysIdentical) {
  const GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = SmallConfig();
  cfg.checkpoint_dir = TestTmpDir("kgag_crash_corrupt_newest");
  cfg.checkpoint_every_batches = 2;

  KgagConfig ref_cfg = cfg;
  ref_cfg.checkpoint_dir.clear();
  ref_cfg.checkpoint_every_batches = 0;
  const std::string ref_params = FinalParams(ds, ref_cfg);

  RunAndCrash(ds, cfg, /*kill_epoch=*/1, /*kill_batch=*/3);

  // Corrupt the newest snapshot (as a torn write would): resume must
  // reject it by checksum and fall back to the previous intact one —
  // replay from an older snapshot is longer but equally exact.
  ckpt::CheckpointManager::Options opts;
  opts.dir = cfg.checkpoint_dir;
  ckpt::CheckpointManager mgr(opts);
  const std::vector<std::string> snaps = mgr.ListSnapshots();
  ASSERT_GE(snaps.size(), 2u) << "need >= 2 snapshots to test fallback";
  {
    std::fstream f(snaps.back(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);  // inside the header: breaks the header CRC
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(12);
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
  }

  KgagConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  const std::string resumed_params = FinalParams(ds, resume_cfg);
  EXPECT_TRUE(ref_params == resumed_params)
      << "fallback-resumed parameters differ from the uninterrupted run";
}

TEST(CheckpointResume, KillAtEpochBoundaryResumesNextEpoch) {
  const GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = SmallConfig();
  cfg.checkpoint_dir = TestTmpDir("kgag_crash_boundary");
  // No mid-epoch cadence: only the per-epoch boundary snapshots exist, so
  // resume re-enters at the start of the epoch that was interrupted. This
  // exercises the epoch-boundary path where the batcher's restored
  // permutation (not a fresh one) must seed the next in-place reshuffle.
  cfg.checkpoint_every_batches = 0;

  KgagConfig ref_cfg = cfg;
  ref_cfg.checkpoint_dir.clear();
  const std::string ref_params = FinalParams(ds, ref_cfg);

  RunAndCrash(ds, cfg, /*kill_epoch=*/2, /*kill_batch=*/1);

  KgagConfig resume_cfg = cfg;
  resume_cfg.resume = true;
  const std::string resumed_params = FinalParams(ds, resume_cfg);
  EXPECT_TRUE(ref_params == resumed_params)
      << "boundary-resumed parameters differ from the uninterrupted run";
}

TEST(CheckpointResume, ResumeWithEmptyDirTrainsFromScratch) {
  const GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = SmallConfig();

  KgagConfig plain_cfg = cfg;
  const std::string plain_params = FinalParams(ds, plain_cfg);

  KgagConfig resume_cfg = cfg;
  resume_cfg.checkpoint_dir = TestTmpDir("kgag_resume_fresh");
  resume_cfg.resume = true;  // nothing to resume: NotFound -> fresh start
  const std::string resumed_params = FinalParams(ds, resume_cfg);
  EXPECT_TRUE(plain_params == resumed_params);
}

TEST(CheckpointResume, CompletedRunLeavesLoadableBoundarySnapshot) {
  const GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = SmallConfig();
  cfg.checkpoint_dir = TestTmpDir("kgag_completed_run");
  (void)FinalParams(ds, cfg);

  ckpt::CheckpointManager::Options opts;
  opts.dir = cfg.checkpoint_dir;
  ckpt::CheckpointManager mgr(opts);
  Result<ckpt::TrainingState> latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->epoch, static_cast<uint64_t>(cfg.epochs));
  EXPECT_FALSE(latest->mid_epoch);
  EXPECT_EQ(latest->epoch_losses.size(), static_cast<size_t>(cfg.epochs));
}

}  // namespace
}  // namespace kgag
