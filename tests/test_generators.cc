#include <gtest/gtest.h>

#include <set>

#include "data/synthetic/movielens_gen.h"
#include "data/synthetic/standard_datasets.h"
#include "data/synthetic/yelp_gen.h"

namespace kgag {
namespace {

MovieLensConfig TinyMlConfig() {
  MovieLensConfig cfg;
  cfg.num_users = 60;
  cfg.num_movies = 50;
  cfg.num_directors = 10;
  cfg.num_actors = 30;
  cfg.num_genres = 6;
  cfg.num_years = 10;
  cfg.num_studios = 5;
  cfg.num_countries = 4;
  cfg.num_languages = 3;
  cfg.num_series = 5;
  return cfg;
}

TEST(MovieLensGenTest, TriplesAreValid) {
  Rng rng(1);
  MovieLensWorld w = GenerateMovieLensWorld(TinyMlConfig(), &rng);
  EXPECT_EQ(w.num_relations, kNumMovieRelations);
  EXPECT_EQ(w.relation_names.size(), static_cast<size_t>(w.num_relations));
  for (const Triple& t : w.kg_triples) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, w.num_items);  // heads are movies
    EXPECT_GE(t.tail, w.num_items);  // tails are attribute entities
    EXPECT_LT(t.tail, w.num_entities);
    EXPECT_GE(t.relation, 0);
    EXPECT_LT(t.relation, w.num_relations);
  }
}

TEST(MovieLensGenTest, EveryMovieHasCoreAttributes) {
  Rng rng(2);
  MovieLensWorld w = GenerateMovieLensWorld(TinyMlConfig(), &rng);
  std::vector<int> directors(w.num_items, 0), genres(w.num_items, 0),
      years(w.num_items, 0);
  for (const Triple& t : w.kg_triples) {
    if (t.relation == kDirectedBy) ++directors[t.head];
    if (t.relation == kHasGenre) ++genres[t.head];
    if (t.relation == kReleasedIn) ++years[t.head];
  }
  for (ItemId m = 0; m < w.num_items; ++m) {
    EXPECT_EQ(directors[m], 1) << "movie " << m;
    EXPECT_GE(genres[m], 1) << "movie " << m;
    EXPECT_LE(genres[m], 3) << "movie " << m;
    EXPECT_EQ(years[m], 1) << "movie " << m;
  }
}

TEST(MovieLensGenTest, RatingsWithinBoundsAndDensity) {
  Rng rng(3);
  MovieLensConfig cfg = TinyMlConfig();
  MovieLensWorld w = GenerateMovieLensWorld(cfg, &rng);
  size_t rated = 0;
  for (UserId u = 0; u < w.num_users; ++u) {
    for (ItemId v = 0; v < w.num_items; ++v) {
      const uint8_t r = w.ratings.Get(u, v);
      EXPECT_LE(r, 5);
      rated += (r != 0);
    }
  }
  const double density =
      static_cast<double>(rated) / (w.num_users * w.num_items);
  EXPECT_GT(density, cfg.min_rating_density * 0.5);
  EXPECT_LT(density, cfg.max_rating_density * 1.3);
}

TEST(MovieLensGenTest, HighRatingsAreCommonButNotUniversal) {
  Rng rng(4);
  MovieLensWorld w = GenerateMovieLensWorld(TinyMlConfig(), &rng);
  const double p4 = static_cast<double>(w.ratings.CountAtLeast(4)) /
                    static_cast<double>(w.ratings.CountRated());
  EXPECT_GT(p4, 0.10);
  EXPECT_LT(p4, 0.80);
}

TEST(MovieLensGenTest, DeterministicGivenSeed) {
  Rng rng1(5), rng2(5);
  MovieLensWorld a = GenerateMovieLensWorld(TinyMlConfig(), &rng1);
  MovieLensWorld b = GenerateMovieLensWorld(TinyMlConfig(), &rng2);
  EXPECT_EQ(a.kg_triples.size(), b.kg_triples.size());
  for (size_t i = 0; i < a.kg_triples.size(); ++i) {
    EXPECT_EQ(a.kg_triples[i], b.kg_triples[i]);
  }
  for (UserId u = 0; u < a.num_users; ++u) {
    for (ItemId v = 0; v < a.num_items; ++v) {
      ASSERT_EQ(a.ratings.Get(u, v), b.ratings.Get(u, v));
    }
  }
}

TEST(MovieLensGenTest, KgCarriesPreferenceSignal) {
  // Movies sharing a genre should have higher latent similarity than
  // random pairs — the causal property the propagation block exploits.
  Rng rng(6);
  MovieLensWorld w = GenerateMovieLensWorld(TinyMlConfig(), &rng);
  std::vector<std::set<EntityId>> movie_genres(w.num_items);
  for (const Triple& t : w.kg_triples) {
    if (t.relation == kHasGenre) movie_genres[t.head].insert(t.tail);
  }
  auto dot = [&](ItemId a, ItemId b) {
    double s = 0;
    for (size_t i = 0; i < w.movie_latents[a].size(); ++i) {
      s += w.movie_latents[a][i] * w.movie_latents[b][i];
    }
    return s;
  };
  double shared_sum = 0, other_sum = 0;
  int shared_n = 0, other_n = 0;
  for (ItemId a = 0; a < w.num_items; ++a) {
    for (ItemId b = a + 1; b < w.num_items; ++b) {
      bool shares = false;
      for (EntityId g : movie_genres[a]) {
        if (movie_genres[b].count(g)) {
          shares = true;
          break;
        }
      }
      if (shares) {
        shared_sum += dot(a, b);
        ++shared_n;
      } else {
        other_sum += dot(a, b);
        ++other_n;
      }
    }
  }
  ASSERT_GT(shared_n, 0);
  ASSERT_GT(other_n, 0);
  EXPECT_GT(shared_sum / shared_n, other_sum / other_n + 0.05);
}

YelpConfig TinyYelpConfig() {
  YelpConfig cfg;
  cfg.num_users = 80;
  cfg.num_businesses = 40;
  cfg.num_communities = 6;
  cfg.num_cities = 4;
  cfg.num_neighborhoods = 8;
  cfg.num_categories = 6;
  cfg.num_groups = 60;
  return cfg;
}

TEST(YelpGenTest, TriplesValidAndSeventeenRelations) {
  Rng rng(7);
  YelpWorld w = GenerateYelpWorld(TinyYelpConfig(), &rng);
  EXPECT_EQ(w.num_relations, 17);
  EXPECT_EQ(w.relation_names.size(), 17u);
  std::set<RelationId> used;
  for (const Triple& t : w.kg_triples) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, w.num_items);
    EXPECT_GE(t.tail, w.num_items);
    EXPECT_LT(t.tail, w.num_entities);
    used.insert(t.relation);
  }
  EXPECT_EQ(used.size(), 17u);  // every relation type occurs
}

TEST(YelpGenTest, GroupsAreTrianglesOfDistinctUsers) {
  Rng rng(8);
  YelpWorld w = GenerateYelpWorld(TinyYelpConfig(), &rng);
  ASSERT_GT(w.groups.num_groups(), 0);
  for (GroupId g = 0; g < w.groups.num_groups(); ++g) {
    auto members = w.groups.MembersOf(g);
    ASSERT_EQ(members.size(), 3u);
    std::set<UserId> uniq(members.begin(), members.end());
    EXPECT_EQ(uniq.size(), 3u);
    // Friend triangles live inside one community.
    EXPECT_EQ(w.user_community[members[0]], w.user_community[members[1]]);
    EXPECT_EQ(w.user_community[members[1]], w.user_community[members[2]]);
  }
}

TEST(YelpGenTest, OneInteractionPerGroup) {
  // Table I: Yelp has Inter./group = 1.00, which is why rec@5 == hit@5.
  Rng rng(9);
  YelpWorld w = GenerateYelpWorld(TinyYelpConfig(), &rng);
  EXPECT_EQ(w.group_item.num_interactions(),
            static_cast<size_t>(w.groups.num_groups()));
  for (GroupId g = 0; g < w.groups.num_groups(); ++g) {
    EXPECT_EQ(w.group_item.RowDegree(g), 1u);
  }
}

TEST(YelpGenTest, VisitsNonEmptyForMostUsers) {
  Rng rng(10);
  YelpWorld w = GenerateYelpWorld(TinyYelpConfig(), &rng);
  int with_visits = 0;
  for (UserId u = 0; u < w.num_users; ++u) {
    if (w.visits.RowDegree(u) > 0) ++with_visits;
  }
  EXPECT_GT(with_visits, w.num_users * 9 / 10);
}

// Standard dataset assembly, across scales (property-style sweep).
class StandardDatasetTest : public ::testing::TestWithParam<double> {};

TEST_P(StandardDatasetTest, AllThreeDatasetsValidate) {
  const double scale = GetParam();
  for (auto make : {MakeMovieLensRandDataset, MakeMovieLensSimiDataset,
                    MakeYelpDataset}) {
    GroupRecDataset ds = make(/*seed=*/11, scale);
    EXPECT_TRUE(ds.Validate().ok()) << ds.name << ": "
                                    << ds.Validate().ToString();
    EXPECT_GT(ds.groups.num_groups(), 0) << ds.name;
    EXPECT_GT(ds.group_item.num_interactions(), 0u) << ds.name;
    EXPECT_GT(ds.user_item.num_interactions(), 0u) << ds.name;
    EXPECT_FALSE(ds.TestItemPool().empty()) << ds.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, StandardDatasetTest,
                         ::testing::Values(0.1, 0.2),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param == 0.1 ? "tenth" : "fifth";
                         });

TEST(StandardDatasetTest, GroupSizesMatchPaper) {
  EXPECT_EQ(MakeMovieLensRandDataset(1, 0.1).group_size, 8);
  EXPECT_EQ(MakeMovieLensSimiDataset(1, 0.1).group_size, 5);
  EXPECT_EQ(MakeYelpDataset(1, 0.1).group_size, 3);
}

TEST(StandardDatasetTest, SimiDenserThanRand) {
  // Table I: Inter./group is higher on Simi (11.19) than Rand (5.05).
  GroupRecDataset rand_ds = MakeMovieLensRandDataset(13, 0.15);
  GroupRecDataset simi_ds = MakeMovieLensSimiDataset(13, 0.15);
  EXPECT_GT(simi_ds.group_item.MeanRowDegree(),
            rand_ds.group_item.MeanRowDegree());
}

}  // namespace
}  // namespace kgag
