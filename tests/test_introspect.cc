// IntrospectionServer tests: real loopback HTTP against an ephemeral
// port — endpoint contracts (/metrics, /healthz, /tracez, /statusz),
// custom handlers and status sources, the per-request refresh hook,
// 404/405/HEAD semantics, and start/stop lifecycle.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace kgag {
namespace {

using obs::HttpResponse;
using obs::IntrospectionServer;
using obs::MetricsRegistry;

/// One-shot HTTP/1.0 request over loopback; returns the raw response
/// (status line + headers + body) or "" on connect/write failure.
std::string HttpRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(IntrospectTest, ServesCustomHandlerOnEphemeralPort) {
  IntrospectionServer server({});
  server.Handle("/custom", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "hello\n"};
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/custom");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 6"), std::string::npos);
  EXPECT_EQ(BodyOf(response), "hello\n");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectTest, DefaultEndpointsServeTheirContracts) {
  MetricsRegistry::Global().GetCounter("test.introspect_counter")->Add(5);
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  rec.Record("test.introspect_span", 1.0, 2.0, /*req=*/42);
  rec.SetEnabled(false);

  IntrospectionServer server({});
  obs::RegisterDefaultIntrospection(&server);
  server.AddStatusSource("extra", [] { return std::string("{\"n\":7}"); });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  const std::string health = Get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  const std::string metrics = Get(port, "/metrics");
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos)
      << "Prometheus exposition content type";
  EXPECT_NE(metrics.find("kgag_test_introspect_counter"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  const std::string tracez = BodyOf(Get(port, "/tracez"));
  EXPECT_NE(tracez.find("\"span_count\""), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"dropped_spans\""), std::string::npos);
  EXPECT_NE(tracez.find("\"test.introspect_span\""), std::string::npos);
  EXPECT_NE(tracez.find("\"req\":42"), std::string::npos)
      << "request-scoped spans must surface their id on /tracez";

  const std::string statusz = BodyOf(Get(port, "/statusz"));
  EXPECT_NE(statusz.find("\"build\""), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("\"extra\":{\"n\":7}"), std::string::npos)
      << "status sources render as named JSON fragments";

  server.Stop();
  rec.Clear();
}

TEST(IntrospectTest, FragmentedRequestLineStillParses) {
  // A slow client dribbling the request one byte per segment must parse
  // exactly like a single-recv request: the server loops until the
  // header terminator instead of assuming one recv == one request.
  IntrospectionServer server({});
  obs::RegisterDefaultIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string request = "GET /healthz HTTP/1.0\r\n\r\n";
  for (char c : request) {
    ASSERT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  EXPECT_EQ(BodyOf(response), "ok\n");
  server.Stop();
}

TEST(IntrospectTest, RefreshRunsBeforeEveryHandler) {
  int refreshed = 0;
  IntrospectionServer server({});
  server.Handle("/probe", [&refreshed] {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        std::to_string(refreshed) + "\n"};
  });
  server.SetRefresh([&refreshed] { ++refreshed; });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(BodyOf(Get(server.port(), "/probe")), "1\n");
  EXPECT_EQ(BodyOf(Get(server.port(), "/probe")), "2\n");
  server.Stop();
}

TEST(IntrospectTest, UnknownPathListsEndpointsAnd404s) {
  IntrospectionServer server({});
  obs::RegisterDefaultIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos) << response;
  // The 404 body is a directory of what IS served.
  for (const char* path : {"/metrics", "/healthz", "/tracez", "/statusz"}) {
    EXPECT_NE(BodyOf(response).find(path), std::string::npos) << path;
  }
  server.Stop();
}

TEST(IntrospectTest, NonGetMethodsAreRejected) {
  IntrospectionServer server({});
  obs::RegisterDefaultIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      HttpRequest(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos) << response;
  server.Stop();
}

TEST(IntrospectTest, HeadReturnsHeadersWithoutBody) {
  IntrospectionServer server({});
  obs::RegisterDefaultIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      HttpRequest(server.port(), "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  // Content-Length describes the GET body, but none is sent.
  EXPECT_NE(response.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(BodyOf(response), "");
  server.Stop();
}

TEST(IntrospectTest, QueryStringsAreIgnored) {
  IntrospectionServer server({});
  obs::RegisterDefaultIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/healthz?verbose=1");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  server.Stop();
}

TEST(IntrospectTest, StopIsIdempotentAndPortIsReusable) {
  IntrospectionServer first({});
  first.Handle("/x", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "x"};
  });
  ASSERT_TRUE(first.Start().ok());
  const int port = first.port();
  first.Stop();
  first.Stop();  // second Stop is a no-op
  EXPECT_FALSE(first.running());
  EXPECT_EQ(Get(port, "/x"), "") << "stopped server must not answer";

  // SO_REUSEADDR: a new server can bind the same port immediately.
  IntrospectionServer second({.bind_address = "127.0.0.1", .port = port});
  second.Handle("/x", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "y"};
  });
  ASSERT_TRUE(second.Start().ok());
  EXPECT_EQ(second.port(), port);
  EXPECT_EQ(BodyOf(Get(port, "/x")), "y");
  second.Stop();
}

TEST(IntrospectTest, BadBindAddressFailsStart) {
  IntrospectionServer server({.bind_address = "not-an-ip", .port = 0});
  const Status s = server.Start();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace kgag
