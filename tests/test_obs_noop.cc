// Compiles the instrumentation macros with observability forced OFF in
// this one TU (the rest of the binary keeps the build-wide setting) and
// proves the no-op expansions really are no-ops: arguments must not be
// evaluated and nothing may reach the global registry.
#define KGAG_OBS_FORCE_OFF 1
#include "obs/obs.h"

#include <gtest/gtest.h>

static_assert(KGAG_OBS_ACTIVE == 0,
              "KGAG_OBS_FORCE_OFF must disable the macros in this TU");

namespace kgag {
namespace {

TEST(ObsNoopTest, MacroArgumentsAreNotEvaluated) {
  int evaluations = 0;
  KGAG_TRACE_SPAN("noop.span");
  KGAG_COUNTER_ADD("noop.counter", ++evaluations);
  KGAG_GAUGE_SET("noop.gauge", ++evaluations);
  KGAG_HISTOGRAM_OBSERVE("noop.hist", ++evaluations,
                         std::vector<double>({1.0}));
  KGAG_OBS_SNAPSHOT("noop.snapshot");
  KGAG_OBS_ONLY(++evaluations;)
  EXPECT_EQ(evaluations, 0) << "no-op macros must not evaluate arguments";
}

TEST(ObsNoopTest, NothingReachesTheRegistry) {
  KGAG_COUNTER_ADD("noop.registry_probe", 1);
  KGAG_GAUGE_SET("noop.registry_probe_g", 1.0);
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.FindCounter("noop.registry_probe"), nullptr);
  EXPECT_EQ(reg.FindGauge("noop.registry_probe_g"), nullptr);
}

TEST(ObsNoopTest, DirectApiStaysAvailable) {
  // The classes themselves are not gated — only the macros are.
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("noop.direct_api");
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
}

}  // namespace
}  // namespace kgag
