#include "data/synthetic/ratings.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kgag {
namespace {

TEST(RatingTableTest, SetGetAndCounts) {
  RatingTable t(3, 4);
  EXPECT_EQ(t.Get(0, 0), 0);
  EXPECT_FALSE(t.IsRated(0, 0));
  t.Set(0, 1, 5);
  t.Set(2, 3, 3);
  EXPECT_TRUE(t.IsRated(0, 1));
  EXPECT_EQ(t.Get(0, 1), 5);
  EXPECT_EQ(t.CountRated(), 2u);
  EXPECT_EQ(t.CountAtLeast(4), 1u);
}

TEST(RatingTableTest, LikedItemsThreshold) {
  RatingTable t(1, 5);
  t.Set(0, 0, 5);
  t.Set(0, 1, 4);
  t.Set(0, 2, 3);
  t.Set(0, 4, 4);
  EXPECT_EQ(t.LikedItems(0, 4), (std::vector<ItemId>{0, 1, 4}));
  EXPECT_EQ(t.LikedItems(0, 5), (std::vector<ItemId>{0}));
}

TEST(RatingTableTest, ToImplicitMatchesLiked) {
  RatingTable t(2, 3);
  t.Set(0, 0, 4);
  t.Set(0, 1, 2);
  t.Set(1, 2, 5);
  InteractionMatrix m = t.ToImplicit(4);
  EXPECT_EQ(m.num_interactions(), 2u);
  EXPECT_TRUE(m.Contains(0, 0));
  EXPECT_FALSE(m.Contains(0, 1));
  EXPECT_TRUE(m.Contains(1, 2));
}

TEST(PccTest, PerfectPositiveCorrelation) {
  RatingTable t(2, 4);
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {2, 3, 4, 5};
  for (int v = 0; v < 4; ++v) {
    t.Set(0, v, a[v]);
    t.Set(1, v, b[v]);
  }
  EXPECT_NEAR(PearsonCorrelation(t, 0, 1), 1.0, 1e-12);
}

TEST(PccTest, PerfectNegativeCorrelation) {
  RatingTable t(2, 4);
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {5, 4, 3, 2};
  for (int v = 0; v < 4; ++v) {
    t.Set(0, v, a[v]);
    t.Set(1, v, b[v]);
  }
  EXPECT_NEAR(PearsonCorrelation(t, 0, 1), -1.0, 1e-12);
}

TEST(PccTest, SymmetricInArguments) {
  RatingTable t(2, 5);
  const uint8_t a[5] = {1, 5, 3, 2, 4};
  const uint8_t b[5] = {2, 4, 4, 1, 5};
  for (int v = 0; v < 5; ++v) {
    t.Set(0, v, a[v]);
    t.Set(1, v, b[v]);
  }
  EXPECT_DOUBLE_EQ(PearsonCorrelation(t, 0, 1), PearsonCorrelation(t, 1, 0));
}

TEST(PccTest, InsufficientOverlapGivesZero) {
  RatingTable t(2, 5);
  t.Set(0, 0, 5);
  t.Set(1, 0, 5);
  t.Set(0, 1, 4);
  t.Set(1, 1, 4);
  // Only two co-rated items < min_overlap of 3.
  EXPECT_EQ(PearsonCorrelation(t, 0, 1), 0.0);
}

TEST(PccTest, ZeroVarianceGivesZero) {
  RatingTable t(2, 4);
  for (int v = 0; v < 4; ++v) {
    t.Set(0, v, 3);  // constant rater
    t.Set(1, v, static_cast<uint8_t>(v + 1));
  }
  EXPECT_EQ(PearsonCorrelation(t, 0, 1), 0.0);
}

TEST(PccTest, UsesOnlyCoRatedItems) {
  RatingTable t(2, 6);
  // Co-rated on items 0..3 with perfect correlation; user 0 also rates
  // items 4,5, which must not affect the coefficient.
  const uint8_t a[4] = {1, 2, 3, 4};
  for (int v = 0; v < 4; ++v) {
    t.Set(0, v, a[v]);
    t.Set(1, v, a[v]);
  }
  t.Set(0, 4, 5);
  t.Set(0, 5, 1);
  EXPECT_NEAR(PearsonCorrelation(t, 0, 1), 1.0, 1e-12);
}

TEST(PccTest, BoundedInUnitInterval) {
  Rng rng(7);
  RatingTable t(6, 30);
  for (UserId u = 0; u < 6; ++u) {
    for (ItemId v = 0; v < 30; ++v) {
      if (rng.Bernoulli(0.7)) {
        t.Set(u, v, static_cast<uint8_t>(rng.UniformInt(1, 5)));
      }
    }
  }
  for (UserId a = 0; a < 6; ++a) {
    for (UserId b = 0; b < 6; ++b) {
      const double p = PearsonCorrelation(t, a, b);
      EXPECT_GE(p, -1.0 - 1e-9);
      EXPECT_LE(p, 1.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace kgag
