#include "tensor/grad_buffer.h"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/tape.h"

namespace kgag {
namespace {

// One training-example-shaped pass: dense leaf + gather with a repeated
// row, so both sink paths (AddDense / AddRows with duplicates) fire.
void RunExample(Tape* tape, Parameter* w, Parameter* table, size_t i) {
  tape->Clear();
  const size_t n = table->value.rows();
  const std::vector<size_t> rows = {i % n, (3 * i + 1) % n, (3 * i + 1) % n};
  Var g = tape->Gather(table, rows);
  Var y = tape->MatMul(g, tape->Leaf(w));
  tape->Backward(tape->Sum(tape->Tanh(y)));
}

class GradBufferTest : public ::testing::Test {
 protected:
  GradBufferTest() : rng_(11) {
    w_ = store_.Create("w", 4, 4, Init::kXavierUniform, &rng_);
    table_ = store_.Create("emb", 10, 4, Init::kXavierUniform, &rng_);
  }

  void ExpectGradsEqualBitwise(const Tensor& expect_w,
                               const Tensor& expect_table) {
    for (size_t i = 0; i < expect_w.size(); ++i) {
      EXPECT_EQ(expect_w[i], w_->grad[i]) << "w grad at " << i;
    }
    for (size_t i = 0; i < expect_table.size(); ++i) {
      EXPECT_EQ(expect_table[i], table_->grad[i]) << "table grad at " << i;
    }
  }

  Rng rng_;
  ParameterStore store_;
  Parameter* w_ = nullptr;
  Parameter* table_ = nullptr;
};

// The determinism cornerstone (DESIGN.md §9): accumulating a shard's
// examples in a GradBuffer and flushing once must produce the same bits
// as the direct sink, because Parameter::grad is exactly zero before the
// flush and addition with an exact zero is associative.
TEST_F(GradBufferTest, BufferedFlushMatchesDirectBitwise) {
  Tape direct;
  for (size_t i = 0; i < 6; ++i) RunExample(&direct, w_, table_, i);
  const Tensor direct_w = w_->grad;
  const Tensor direct_table = table_->grad;
  const auto direct_touched = table_->touched_rows;
  EXPECT_TRUE(w_->dense_touched);
  store_.ZeroGrads();

  GradBuffer buf(&store_);
  Tape buffered;
  buffered.set_grad_sink(&buf);
  for (size_t i = 0; i < 6; ++i) RunExample(&buffered, w_, table_, i);
  // Nothing reaches the parameters until the flush.
  EXPECT_FALSE(w_->dense_touched);
  EXPECT_TRUE(table_->touched_rows.empty());
  for (size_t i = 0; i < w_->grad.size(); ++i) {
    ASSERT_EQ(w_->grad[i], 0.0);
  }
  EXPECT_FALSE(buf.empty());

  buf.FlushInto();
  ExpectGradsEqualBitwise(direct_w, direct_table);
  EXPECT_TRUE(w_->dense_touched);
  EXPECT_EQ(direct_touched, table_->touched_rows);
}

// Reset() must clear contributions but keep the buffer reusable: a second
// batch through the same buffer matches a direct second batch bitwise.
TEST_F(GradBufferTest, ResetKeepsBufferReusable) {
  GradBuffer buf(&store_);
  Tape tape;
  tape.set_grad_sink(&buf);
  for (size_t i = 0; i < 4; ++i) RunExample(&tape, w_, table_, i);
  buf.FlushInto();
  buf.Reset();
  EXPECT_TRUE(buf.empty());
  store_.ZeroGrads();

  // Second batch, different examples.
  for (size_t i = 4; i < 9; ++i) RunExample(&tape, w_, table_, i);
  buf.FlushInto();
  const Tensor buffered_w = w_->grad;
  const Tensor buffered_table = table_->grad;
  store_.ZeroGrads();

  Tape direct;
  for (size_t i = 4; i < 9; ++i) RunExample(&direct, w_, table_, i);
  ExpectGradsEqualBitwise(buffered_w, buffered_table);
}

TEST_F(GradBufferTest, AddRowsDeduplicatesAndKeepsFirstTouchOrder) {
  GradBuffer buf(&store_);
  Tensor g(3, 4);
  for (size_t i = 0; i < g.size(); ++i) g[i] = static_cast<Scalar>(i + 1);
  const std::vector<size_t> rows = {5, 2, 5};
  buf.AddRows(table_, rows, g);
  buf.FlushInto();
  EXPECT_EQ(table_->touched_rows.size(), 2u);
  EXPECT_TRUE(table_->touched_rows.count(5));
  EXPECT_TRUE(table_->touched_rows.count(2));
  // Row 5 received slots 0 and 2 of g.
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(table_->grad.at(5, c), g.at(0, c) + g.at(2, c));
    EXPECT_EQ(table_->grad.at(2, c), g.at(1, c));
    EXPECT_EQ(table_->grad.at(0, c), 0.0);
  }
}

TEST_F(GradBufferTest, DirectSinkIsDefault) {
  Tape tape;
  EXPECT_EQ(tape.grad_sink(), DirectGradSink::Instance());
  GradBuffer buf(&store_);
  tape.set_grad_sink(&buf);
  EXPECT_EQ(tape.grad_sink(), &buf);
  tape.set_grad_sink(nullptr);  // restores the default
  EXPECT_EQ(tape.grad_sink(), DirectGradSink::Instance());
}

}  // namespace
}  // namespace kgag
