// End-to-end integration tests across all modules: dataset generation ->
// collaborative KG -> training -> ranking evaluation, for KGAG and the
// baseline grid, on all three corpus families.
#include <gtest/gtest.h>

#include "baselines/kgcn.h"
#include "baselines/mf.h"
#include "baselines/mosan.h"
#include "baselines/trivial.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"
#include "test_util.h"

namespace kgag {
namespace {

KgagConfig FastKgag() {
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.sample_size = 3;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.seed = 5;
  return cfg;
}

// KGAG must construct, train and produce sane metrics on every corpus
// family (parameterized smoke across datasets).
class AllDatasetsTest : public ::testing::TestWithParam<int> {};

TEST_P(AllDatasetsTest, KgagEndToEnd) {
  GroupRecDataset ds;
  switch (GetParam()) {
    case 0:
      ds = MakeMovieLensRandDataset(9, 0.08);
      break;
    case 1:
      ds = MakeMovieLensSimiDataset(9, 0.08);
      break;
    default:
      ds = MakeYelpDataset(9, 0.1);
      break;
  }
  ASSERT_TRUE(ds.Validate().ok()) << ds.Validate().ToString();
  auto model = KgagModel::Create(&ds, FastKgag());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  (*model)->Fit();
  RankingEvaluator eval(&ds, 5);
  EvalResult r = eval.EvaluateTest(model->get());
  EXPECT_GT(r.num_groups, 0u);
  EXPECT_GE(r.hit_at_k, 0.0);
  EXPECT_LE(r.hit_at_k, 1.0);
  EXPECT_LE(r.recall_at_k, r.hit_at_k + 1e-12)
      << "recall@k cannot exceed hit@k";
}

std::string CorpusName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "Rand";
    case 1:
      return "Simi";
    default:
      return "Yelp";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, AllDatasetsTest, ::testing::Values(0, 1, 2),
                         CorpusName);

TEST(IntegrationTest, FullBaselineGridRuns) {
  GroupRecDataset ds = testing_util::TinyRand();
  RankingEvaluator eval(&ds, 5);
  MfConfig mfc;
  mfc.dim = 8;
  mfc.epochs = 2;

  std::vector<std::unique_ptr<TrainableGroupRecommender>> models;
  for (auto agg : {ScoreAggregation::kAverage, ScoreAggregation::kLeastMisery,
                   ScoreAggregation::kMaxPleasure}) {
    models.push_back(std::make_unique<MfGroupRecommender>(&ds, mfc, agg));
    KgcnConfig kc;
    kc.base = mfc;
    kc.propagation.dim = 8;
    kc.propagation.sample_size = 2;
    auto kgcn = KgcnGroupRecommender::Create(&ds, kc, agg);
    ASSERT_TRUE(kgcn.ok());
    models.push_back(std::move(*kgcn));
  }
  models.push_back(std::make_unique<MosanGroupRecommender>(&ds, mfc));
  auto kgag = KgagModel::Create(&ds, FastKgag());
  ASSERT_TRUE(kgag.ok());
  models.push_back(std::move(*kgag));

  for (auto& model : models) {
    model->Fit();
    EvalResult r = eval.EvaluateTest(model.get());
    EXPECT_GE(r.hit_at_k, 0.0) << model->name();
    EXPECT_LE(r.hit_at_k, 1.0) << model->name();
    EXPECT_FALSE(model->name().empty());
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // Same seeds -> bitwise identical metrics, across the whole pipeline.
  auto run = [] {
    GroupRecDataset ds = MakeMovieLensRandDataset(13, 0.08);
    auto model = KgagModel::Create(&ds, FastKgag());
    KGAG_CHECK(model.ok());
    (*model)->Fit();
    RankingEvaluator eval(&ds, 5);
    return eval.EvaluateTest(model->get());
  };
  EvalResult a = run();
  EvalResult b = run();
  EXPECT_EQ(a.hit_at_k, b.hit_at_k);
  EXPECT_EQ(a.recall_at_k, b.recall_at_k);
  EXPECT_EQ(a.ndcg_at_k, b.ndcg_at_k);
}

TEST(IntegrationTest, KgagGeneralizesOnKgStructure) {
  // The custom-dataset scenario as an assertion: two taste communities,
  // held-out items share KG attributes with training choices; KGAG must
  // rank the held-out item of each group above the other community's.
  GroupRecDataset ds;
  ds.name = "two-communities";
  ds.num_users = 6;
  ds.num_items = 4;
  ds.num_entities = 8;
  ds.num_relations = 2;
  ds.kg_triples = {{0, 0, 4}, {1, 0, 4}, {2, 0, 5}, {3, 0, 5},
                   {0, 1, 6}, {1, 1, 6}, {2, 1, 7}, {3, 1, 7}};
  ds.item_to_entity = {0, 1, 2, 3};
  ds.user_item = InteractionMatrix::FromPairs(
      6, 4, {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {4, 3}, {5, 3}});
  ds.groups = GroupTable({{0, 1, 2}, {3, 4, 5}});
  ds.group_size = 3;
  ds.group_item = InteractionMatrix::FromPairs(2, 4, {{0, 0}, {0, 1},
                                                      {1, 2}, {1, 3}});
  ds.split.train = {{0, 0}, {1, 2}};
  ds.split.test = {{0, 1}, {1, 3}};
  ASSERT_TRUE(ds.Validate().ok());

  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.sample_size = 3;
  cfg.propagation.final_tanh = false;
  cfg.epochs = 40;
  cfg.batch_size = 2;
  cfg.select_by_validation = false;
  cfg.seed = 3;
  auto model = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(model.ok());
  (*model)->Fit();

  const std::vector<ItemId> items{1, 3};  // held-out item of each group
  auto s0 = (*model)->ScoreGroup(0, items);
  auto s1 = (*model)->ScoreGroup(1, items);
  EXPECT_GT(s0[0], s0[1]) << "group 0 must prefer its community's item";
  EXPECT_GT(s1[1], s1[0]) << "group 1 must prefer its community's item";
}

TEST(IntegrationTest, RecallEqualsHitOnYelp) {
  // Table II's Yelp identity: exactly one positive per group.
  GroupRecDataset ds = testing_util::TinyYelp();
  auto model = KgagModel::Create(&ds, FastKgag());
  ASSERT_TRUE(model.ok());
  (*model)->Fit();
  RankingEvaluator eval(&ds, 5);
  EvalResult r = eval.EvaluateTest(model->get());
  EXPECT_DOUBLE_EQ(r.hit_at_k, r.recall_at_k);
}

}  // namespace
}  // namespace kgag
