#include "kg/knowledge_graph.h"

#include <gtest/gtest.h>

#include "kg/collaborative_kg.h"

namespace kgag {
namespace {

// A small graph: 0-(r0)->1, 0-(r1)->2, 1-(r0)->3, entity 4 isolated.
std::vector<Triple> SmallTriples() {
  return {{0, 0, 1}, {0, 1, 2}, {1, 0, 3}};
}

TEST(KnowledgeGraphTest, BuildCountsAndDegrees) {
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_entities(), 5);
  EXPECT_EQ(g->num_relations(), 2);
  EXPECT_EQ(g->relation_vocab_size(), 4);  // inverses enabled
  EXPECT_EQ(g->num_triples(), 3u);
  EXPECT_EQ(g->num_edges(), 6u);  // bidirectional
  EXPECT_EQ(g->Degree(0), 2u);
  EXPECT_EQ(g->Degree(1), 2u);  // inverse from 0 + forward to 3
  EXPECT_EQ(g->Degree(4), 0u);
}

TEST(KnowledgeGraphTest, InverseEdgesUseShiftedRelationIds) {
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(0, 0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2, 0));  // inverse of r0 is r0 + 2
  EXPECT_FALSE(g->HasEdge(1, 0, 0));
}

TEST(KnowledgeGraphTest, NoInverseOption) {
  KnowledgeGraph::Options opts;
  opts.add_inverse_edges = false;
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples(), opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->relation_vocab_size(), 2);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->Degree(3), 0u);  // tail-only node has no outgoing edge
}

TEST(KnowledgeGraphTest, RejectsOutOfRangeIds) {
  EXPECT_FALSE(KnowledgeGraph::Build(2, 1, {{0, 0, 5}}).ok());
  EXPECT_FALSE(KnowledgeGraph::Build(2, 1, {{5, 0, 0}}).ok());
  EXPECT_FALSE(KnowledgeGraph::Build(2, 1, {{0, 3, 1}}).ok());
  EXPECT_FALSE(KnowledgeGraph::Build(-1, 1, {}).ok());
}

TEST(KnowledgeGraphTest, NeighborsSortedAndComplete) {
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples());
  ASSERT_TRUE(g.ok());
  auto n0 = g->Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_LE(n0[0].neighbor, n0[1].neighbor);
}

TEST(KnowledgeGraphTest, BfsDistances) {
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->BfsDistance(0, 0, 3), 0);
  EXPECT_EQ(g->BfsDistance(0, 1, 3), 1);
  EXPECT_EQ(g->BfsDistance(0, 3, 3), 2);
  EXPECT_EQ(g->BfsDistance(2, 3, 5), 3);  // 2 -> 0 -> 1 -> 3 via inverses
  EXPECT_EQ(g->BfsDistance(0, 4, 5), -1);
  EXPECT_EQ(g->BfsDistance(0, 3, 1), -1);  // depth-limited
}

TEST(KnowledgeGraphTest, NeighborhoodBfs) {
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples());
  ASSERT_TRUE(g.ok());
  auto hood0 = g->Neighborhood(0, 1);
  EXPECT_EQ(hood0, (std::vector<EntityId>{0, 1, 2}));
  auto hood_all = g->Neighborhood(0, 3);
  EXPECT_EQ(hood_all, (std::vector<EntityId>{0, 1, 2, 3}));
  auto isolated = g->Neighborhood(4, 2);
  EXPECT_EQ(isolated, (std::vector<EntityId>{4}));
}

TEST(KnowledgeGraphTest, MeanDegree) {
  auto g = KnowledgeGraph::Build(5, 2, SmallTriples());
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->MeanDegree(), 6.0 / 5.0);
}

TEST(CollaborativeKgTest, AddsUserNodesAndInteractEdges) {
  // 3 entities (items 0,1 map to entities 0,1), 1 relation, 2 users.
  std::vector<Triple> kg = {{0, 0, 2}, {1, 0, 2}};
  auto ckg = BuildCollaborativeKg(kg, 3, 1, 2, {0, 1},
                                  {{0, 0}, {0, 1}, {1, 1}});
  ASSERT_TRUE(ckg.ok()) << ckg.status().ToString();
  EXPECT_EQ(ckg->graph.num_entities(), 5);  // 3 entities + 2 users
  EXPECT_EQ(ckg->interact_relation, 1);
  EXPECT_EQ(ckg->UserNode(0), 3);
  EXPECT_EQ(ckg->UserNode(1), 4);
  EXPECT_TRUE(ckg->IsUserNode(3));
  EXPECT_FALSE(ckg->IsUserNode(2));
  EXPECT_EQ(ckg->NodeToUser(4), 1);
  // User 0 interacted with items 0 and 1.
  EXPECT_TRUE(ckg->graph.HasEdge(3, 1, 0));
  EXPECT_TRUE(ckg->graph.HasEdge(3, 1, 1));
  // Inverse Interact edge from the item entity back to the user:
  // inverse relation id = 1 + num_relations(2) = 3.
  EXPECT_TRUE(ckg->graph.HasEdge(1, 3, 3));
}

TEST(CollaborativeKgTest, UserUserConnectivityThroughItems) {
  // The motivating property (§I): two users who like items sharing an
  // attribute entity are close in the collaborative KG.
  std::vector<Triple> kg = {{0, 0, 2}, {1, 0, 2}};  // both movies share e2
  auto ckg = BuildCollaborativeKg(kg, 3, 1, 2, {0, 1}, {{0, 0}, {1, 1}});
  ASSERT_TRUE(ckg.ok());
  // user0 -> item0 -> e2 -> item1 -> user1: distance 4.
  EXPECT_EQ(ckg->graph.BfsDistance(ckg->UserNode(0), ckg->UserNode(1), 6), 4);
}

TEST(CollaborativeKgTest, RejectsNonInjectiveMapping) {
  auto ckg = BuildCollaborativeKg({}, 3, 1, 1, {0, 0}, {});
  EXPECT_FALSE(ckg.ok());
  EXPECT_TRUE(ckg.status().IsInvalidArgument());
}

TEST(CollaborativeKgTest, RejectsBadInteraction) {
  EXPECT_FALSE(BuildCollaborativeKg({}, 3, 1, 1, {0}, {{5, 0}}).ok());
  EXPECT_FALSE(BuildCollaborativeKg({}, 3, 1, 1, {0}, {{0, 5}}).ok());
}

}  // namespace
}  // namespace kgag
