#include "models/propagation.h"

#include <gtest/gtest.h>

#include "tensor/grad_check.h"

namespace kgag {
namespace {

// Small graph: 6 entities, 2 relations, a few edges.
KnowledgeGraph TestGraph() {
  std::vector<Triple> triples = {
      {0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {2, 1, 4}, {3, 0, 4}, {4, 1, 5}};
  auto g = KnowledgeGraph::Build(6, 2, triples);
  KGAG_CHECK(g.ok());
  return std::move(*g);
}

struct PropCase {
  const char* name;
  int depth;
  int sample_size;
  AggregatorKind aggregator;
};

class PropagationTest : public ::testing::TestWithParam<PropCase> {
 protected:
  PropagationTest()
      : graph_(TestGraph()),
        rng_(11),
        entity_table_(store_.Create("entities", 6, kDim, Init::kNormal01,
                                    &rng_)) {}

  static constexpr int kDim = 4;

  PropagationConfig MakeConfig() const {
    PropagationConfig cfg;
    cfg.depth = GetParam().depth;
    cfg.sample_size = GetParam().sample_size;
    cfg.dim = kDim;
    cfg.aggregator = GetParam().aggregator;
    return cfg;
  }

  KnowledgeGraph graph_;
  ParameterStore store_;
  Rng rng_;
  Parameter* entity_table_;
};

TEST_P(PropagationTest, TapeOutputShape) {
  PropagationEngine engine(&graph_, entity_table_, &store_, MakeConfig(),
                           &rng_);
  Rng tree_rng(3);
  SampledTree tree = engine.SampleTree(0, &tree_rng);
  Tape tape;
  Var query = tape.Constant(Tensor::Row({0.1, -0.2, 0.3, 0.4}));
  Var rep = engine.PropagateOnTape(&tape, tree, query);
  EXPECT_EQ(tape.value(rep).rows(), 1u);
  EXPECT_EQ(tape.value(rep).cols(), static_cast<size_t>(kDim));
  // tanh final layer bounds outputs.
  EXPECT_LE(tape.value(rep).AbsMax(), 1.0);
}

TEST_P(PropagationTest, BatchMatchesTapeForward) {
  // The inference path must agree with the differentiable path — this
  // pins the whole evaluator to the trained computation.
  PropagationEngine engine(&graph_, entity_table_, &store_, MakeConfig(),
                           &rng_);
  Rng tree_rng(5);
  SampledTree tree = engine.SampleTree(1, &tree_rng);

  Tensor queries{{0.1, -0.2, 0.3, 0.4},
                 {-0.5, 0.5, 0.0, 1.0},
                 {1.0, 1.0, -1.0, 0.2}};
  const Tensor batch = engine.PropagateBatch(tree, queries);
  ASSERT_EQ(batch.rows(), 3u);
  ASSERT_EQ(batch.cols(), static_cast<size_t>(kDim));

  for (size_t q = 0; q < queries.rows(); ++q) {
    Tape tape;
    Var query = tape.Constant(queries.RowAt(q));
    Var rep = engine.PropagateOnTape(&tape, tree, query);
    const Tensor single = tape.value(rep);
    for (int c = 0; c < kDim; ++c) {
      EXPECT_NEAR(batch.at(q, static_cast<size_t>(c)),
                  single.at(0, static_cast<size_t>(c)), 1e-10)
          << "query " << q << " dim " << c;
    }
  }
}

TEST_P(PropagationTest, GradientsMatchNumeric) {
  PropagationEngine engine(&graph_, entity_table_, &store_, MakeConfig(),
                           &rng_);
  Rng tree_rng(7);
  SampledTree tree = engine.SampleTree(0, &tree_rng);
  Tensor query_value = Tensor::Row({0.3, -0.1, 0.5, 0.2});

  auto build = [&](Tape* tape) {
    Var query = tape->Constant(query_value);
    Var rep = engine.PropagateOnTape(tape, tree, query);
    // Arbitrary scalar head over the representation.
    Var target = tape->Constant(Tensor::Row({1.0, -2.0, 0.5, 1.5}));
    return tape->Sum(tape->Mul(rep, target));
  };
  auto loss_fn = [&]() {
    Tape tape;
    return tape.value(build(&tape)).item();
  };
  auto backward_fn = [&]() {
    Tape tape;
    tape.Backward(build(&tape));
  };
  GradCheckReport report = CheckGradients(&store_, loss_fn, backward_fn);
  EXPECT_TRUE(report.ok(1e-4)) << report.worst_location
                               << " rel=" << report.max_rel_error;
}

TEST_P(PropagationTest, QueryGradientFlows) {
  // The query is itself an embedding; its gradient must flow (it trains
  // the candidate item / user embeddings through π).
  PropagationEngine engine(&graph_, entity_table_, &store_, MakeConfig(),
                           &rng_);
  Rng tree_rng(9);
  SampledTree tree = engine.SampleTree(2, &tree_rng);
  Tape tape;
  Var query = tape.Gather(entity_table_, {5});
  Var rep = engine.PropagateOnTape(&tape, tree, query);
  tape.Backward(tape.Sum(rep));
  EXPECT_TRUE(entity_table_->touched_rows.count(5) ||
              entity_table_->dense_touched);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PropagationTest,
    ::testing::Values(PropCase{"h1k2_gcn", 1, 2, AggregatorKind::kGcn},
                      PropCase{"h2k2_gcn", 2, 2, AggregatorKind::kGcn},
                      PropCase{"h2k3_gcn", 2, 3, AggregatorKind::kGcn},
                      PropCase{"h3k2_gcn", 3, 2, AggregatorKind::kGcn},
                      PropCase{"h2k2_sage", 2, 2,
                               AggregatorKind::kGraphSage},
                      PropCase{"h1k4_sage", 1, 4,
                               AggregatorKind::kGraphSage}),
    [](const ::testing::TestParamInfo<PropCase>& info) {
      return std::string(info.param.name);
    });

TEST(PropagationEngineTest, DifferentQueriesGiveDifferentReps) {
  // π is query-conditioned: two very different queries must weight
  // neighbors differently (this is what distinguishes the architecture
  // from a plain GCN).
  KnowledgeGraph graph = TestGraph();
  ParameterStore store;
  Rng rng(21);
  Parameter* table = store.Create("entities", 6, 4, Init::kNormal01, &rng);
  PropagationConfig cfg;
  cfg.depth = 2;
  cfg.sample_size = 2;
  cfg.dim = 4;
  PropagationEngine engine(&graph, table, &store, cfg, &rng);
  Rng tree_rng(23);
  SampledTree tree = engine.SampleTree(0, &tree_rng);
  Tensor queries{{2.0, -1.0, 0.5, 1.0}, {-2.0, 1.0, -0.5, -1.0}};
  Tensor reps = engine.PropagateBatch(tree, queries);
  double diff = 0;
  for (size_t c = 0; c < 4; ++c) {
    diff += std::abs(reps.at(0, c) - reps.at(1, c));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(PropagationEngineTest, RelationTableIncludesSelfLoopRow) {
  KnowledgeGraph graph = TestGraph();
  ParameterStore store;
  Rng rng(25);
  Parameter* table = store.Create("entities", 6, 4, Init::kNormal01, &rng);
  PropagationConfig cfg;
  cfg.depth = 1;
  cfg.sample_size = 2;
  cfg.dim = 4;
  PropagationEngine engine(&graph, table, &store, cfg, &rng);
  EXPECT_EQ(engine.relation_table()->value.rows(),
            static_cast<size_t>(graph.relation_vocab_size()) + 1);
}

}  // namespace
}  // namespace kgag
