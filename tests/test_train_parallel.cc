// Determinism contract of data-parallel training (DESIGN.md §9): for a
// fixed config, TrainEpoch must produce byte-identical training state —
// parameters, Adam moments, RNG snapshots, batcher cursors — for every
// train_threads value and for arena on/off. These tests are the gtest
// twin of bench_train --acceptance, kept small enough for the sanitizer
// jobs.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "data/synthetic/standard_datasets.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

struct Snapshot {
  std::string params;
  std::string optimizer;
  std::string rng;
  std::string batcher;
  double last_loss = 0.0;
};

class TrainParallelTest : public ::testing::Test {
 protected:
  TrainParallelTest() : ds_(MakeMovieLensRandDataset(13, /*scale=*/0.05)) {}

  KgagConfig BaseConfig() const {
    KgagConfig cfg;
    cfg.propagation.dim = 8;
    cfg.propagation.depth = 1;
    cfg.propagation.sample_size = 4;
    cfg.batch_size = 16;
    cfg.pairs_per_epoch = 64;
    cfg.select_by_validation = false;
    cfg.seed = 77;
    return cfg;
  }

  Snapshot TrainFor(const KgagConfig& cfg, int epochs) const {
    Result<std::unique_ptr<KgagModel>> model = KgagModel::Create(&ds_, cfg);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    Rng rng(cfg.seed + 1);
    Snapshot snap;
    for (int e = 0; e < epochs; ++e) {
      snap.last_loss = (*model)->TrainEpoch(&rng);
    }
    ckpt::TrainingState state = (*model)->CaptureTrainingState(
        static_cast<uint64_t>(epochs), /*mid_epoch=*/false,
        /*batches_done=*/0, /*partial_loss=*/0.0, /*selector=*/nullptr);
    snap.params = std::move(state.params);
    snap.optimizer = std::move(state.optimizer);
    snap.rng = std::move(state.rng);
    snap.batcher = std::move(state.batcher);
    return snap;
  }

  static void ExpectIdentical(const Snapshot& a, const Snapshot& b,
                              const char* what) {
    EXPECT_EQ(a.params, b.params) << what << ": parameter bytes differ";
    EXPECT_EQ(a.optimizer, b.optimizer)
        << what << ": Adam moment bytes differ";
    EXPECT_EQ(a.rng, b.rng) << what << ": rng snapshot differs";
    EXPECT_EQ(a.batcher, b.batcher) << what << ": batcher state differs";
    EXPECT_EQ(a.last_loss, b.last_loss) << what << ": epoch loss differs";
  }

  GroupRecDataset ds_;
};

TEST_F(TrainParallelTest, BitIdenticalAcrossThreadCounts) {
  KgagConfig cfg = BaseConfig();
  cfg.train_threads = 1;
  const Snapshot ref = TrainFor(cfg, /*epochs=*/3);

  cfg.train_threads = 2;
  ExpectIdentical(ref, TrainFor(cfg, 3), "2 threads vs 1");

  cfg.train_threads = 8;
  ExpectIdentical(ref, TrainFor(cfg, 3), "8 threads vs 1");
}

TEST_F(TrainParallelTest, BitIdenticalWithArenaDisabled) {
  KgagConfig cfg = BaseConfig();
  const Snapshot arena_on = TrainFor(cfg, /*epochs=*/2);
  cfg.tape_arena = false;
  ExpectIdentical(arena_on, TrainFor(cfg, 2), "heap tape vs arena tape");
}

// The shard size is part of the numeric contract (like batch_size): the
// parallel path must honor whatever value the config pins, at any thread
// count. Different shard sizes may legitimately produce different bits —
// what must hold is thread-count independence at each size.
TEST_F(TrainParallelTest, BitIdenticalAcrossThreadsForOddShardSize) {
  KgagConfig cfg = BaseConfig();
  cfg.train_shard_size = 5;  // does not divide the batch size
  cfg.train_threads = 1;
  const Snapshot ref = TrainFor(cfg, /*epochs=*/2);
  cfg.train_threads = 4;
  ExpectIdentical(ref, TrainFor(cfg, 2), "4 threads vs 1, shard_size=5");
}

// The paper-protocol metrics must be reachable from a parallel-trained
// model exactly as from a serial one (scoring shares the parameters).
TEST_F(TrainParallelTest, ParallelTrainedModelScoresDeterministically) {
  KgagConfig cfg = BaseConfig();
  cfg.train_threads = 4;
  Result<std::unique_ptr<KgagModel>> a = KgagModel::Create(&ds_, cfg);
  Result<std::unique_ptr<KgagModel>> b = KgagModel::Create(&ds_, cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng_a(cfg.seed + 1), rng_b(cfg.seed + 1);
  (*a)->TrainEpoch(&rng_a);
  (*b)->TrainEpoch(&rng_b);
  const ItemId items[3] = {0, 1, 2};
  const std::vector<double> sa = (*a)->ScoreGroup(0, items);
  const std::vector<double> sb = (*b)->ScoreGroup(0, items);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

}  // namespace
}  // namespace kgag
