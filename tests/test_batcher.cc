#include "data/batcher.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace kgag {
namespace {

TEST(NegativeSamplerTest, NeverReturnsPositives) {
  auto m = InteractionMatrix::FromPairs(2, 10, {{0, 1}, {0, 3}, {0, 5}});
  NegativeSampler sampler(&m);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    ItemId v = sampler.Sample(0, &rng);
    EXPECT_FALSE(m.Contains(0, v));
  }
}

TEST(NegativeSamplerTest, CoversNonPositives) {
  auto m = InteractionMatrix::FromPairs(1, 6, {{0, 0}});
  NegativeSampler sampler(&m);
  Rng rng(2);
  std::set<ItemId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(sampler.Sample(0, &rng));
  EXPECT_EQ(seen.size(), 5u);  // items 1..5
}

TEST(NegativeSamplerTest, DegenerateRowFallsBack) {
  // Row interacted with everything: sampler must still terminate.
  auto m = InteractionMatrix::FromPairs(1, 3, {{0, 0}, {0, 1}, {0, 2}});
  NegativeSampler sampler(&m);
  Rng rng(3);
  ItemId v = sampler.Sample(0, &rng);
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 3);
}

class BatcherTest : public ::testing::Test {
 protected:
  BatcherTest() : ds_(testing_util::TinyRand()) {}
  GroupRecDataset ds_;
};

TEST_F(BatcherTest, EpochCoversAllTrainPairs) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(4);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  std::multiset<std::pair<GroupId, ItemId>> seen;
  while (batcher.NextBatch(&rng, &batch)) {
    for (const GroupTriplet& t : batch.group_triplets) {
      seen.insert({t.group, t.positive});
    }
  }
  EXPECT_EQ(seen.size(), ds_.split.train.size());
  for (const Interaction& it : ds_.split.train) {
    EXPECT_EQ(seen.count({it.row, it.item}), 1u);
  }
}

TEST_F(BatcherTest, NegativesAreNotGroupPositives) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(5);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  while (batcher.NextBatch(&rng, &batch)) {
    for (const GroupTriplet& t : batch.group_triplets) {
      EXPECT_FALSE(ds_.group_item.Contains(t.group, t.negative));
    }
  }
}

TEST_F(BatcherTest, UserInstancesBalancedLabels) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(6);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&rng, &batch));
  size_t pos = 0, neg = 0;
  for (const UserInstance& ui : batch.user_instances) {
    if (ui.label == 1.0) {
      EXPECT_TRUE(ds_.user_item.Contains(ui.user, ui.item));
      ++pos;
    } else {
      EXPECT_FALSE(ds_.user_item.Contains(ui.user, ui.item));
      ++neg;
    }
  }
  EXPECT_EQ(pos, neg);  // one sampled negative per positive
  EXPECT_GT(pos, 0u);
}

TEST_F(BatcherTest, PairCapLimitsEpoch) {
  const size_t cap = 5;
  Batcher batcher(&ds_, {2, 0.0, cap});
  Rng rng(7);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  size_t total = 0;
  while (batcher.NextBatch(&rng, &batch)) {
    total += batch.group_triplets.size();
  }
  EXPECT_EQ(total, cap);
}

TEST_F(BatcherTest, PairCapRedrawsAcrossEpochs) {
  // With a cap, different epochs should visit different subsets
  // (re-drawn from the full training split, not a frozen prefix).
  const size_t cap = 4;
  Batcher batcher(&ds_, {4, 0.0, cap});
  Rng rng(8);
  std::set<std::pair<GroupId, ItemId>> all_seen;
  for (int epoch = 0; epoch < 12; ++epoch) {
    batcher.BeginEpoch(&rng);
    MiniBatch batch;
    while (batcher.NextBatch(&rng, &batch)) {
      for (const GroupTriplet& t : batch.group_triplets) {
        all_seen.insert({t.group, t.positive});
      }
    }
  }
  EXPECT_GT(all_seen.size(), cap) << "cap must rotate through the split";
}

TEST_F(BatcherTest, UserRatioZeroMeansNoUserInstances) {
  Batcher batcher(&ds_, {8, 0.0, 0});
  Rng rng(9);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  while (batcher.NextBatch(&rng, &batch)) {
    EXPECT_TRUE(batch.user_instances.empty());
  }
}

TEST_F(BatcherTest, BatchesPerEpochMatches) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(10);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  size_t batches = 0;
  while (batcher.NextBatch(&rng, &batch)) ++batches;
  EXPECT_EQ(batches, batcher.BatchesPerEpoch());
}

}  // namespace
}  // namespace kgag
