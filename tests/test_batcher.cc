#include "data/batcher.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "test_util.h"

namespace kgag {
namespace {

TEST(NegativeSamplerTest, NeverReturnsPositives) {
  auto m = InteractionMatrix::FromPairs(2, 10, {{0, 1}, {0, 3}, {0, 5}});
  NegativeSampler sampler(&m);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    ItemId v = sampler.Sample(0, &rng);
    EXPECT_FALSE(m.Contains(0, v));
  }
}

TEST(NegativeSamplerTest, CoversNonPositives) {
  auto m = InteractionMatrix::FromPairs(1, 6, {{0, 0}});
  NegativeSampler sampler(&m);
  Rng rng(2);
  std::set<ItemId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(sampler.Sample(0, &rng));
  EXPECT_EQ(seen.size(), 5u);  // items 1..5
}

TEST(NegativeSamplerTest, DegenerateRowFallsBack) {
  // Row interacted with everything: sampler must still terminate.
  auto m = InteractionMatrix::FromPairs(1, 3, {{0, 0}, {0, 1}, {0, 2}});
  NegativeSampler sampler(&m);
  Rng rng(3);
  ItemId v = sampler.Sample(0, &rng);
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 3);
}

TEST(NegativeSamplerTest, NearFullRowStillReturnsTrueNegative) {
  // Regression: with 999 of 1000 items positive, rejection sampling all
  // but always exhausts its attempts — the fallback must rank-select the
  // single remaining negative, never hand back a positive.
  const ItemId kHole = 517;
  std::vector<Interaction> pairs;
  for (ItemId v = 0; v < 1000; ++v) {
    if (v != kHole) pairs.push_back({0, v});
  }
  auto m = InteractionMatrix::FromPairs(1, 1000, pairs);
  NegativeSampler sampler(&m);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(sampler.Sample(0, &rng), kHole);
  }
}

TEST(NegativeSamplerTest, FallbackIsUniformOverNegatives) {
  // 46 of 50 items positive; the 4 holes must each be reachable and at
  // roughly equal frequency (the rank-select walk is exactly uniform).
  const std::set<ItemId> holes{3, 17, 30, 49};
  std::vector<Interaction> pairs;
  for (ItemId v = 0; v < 50; ++v) {
    if (holes.count(v) == 0) pairs.push_back({0, v});
  }
  auto m = InteractionMatrix::FromPairs(1, 50, pairs);
  NegativeSampler sampler(&m);
  Rng rng(13);
  std::map<ItemId, int> counts;
  const int n = 8000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(0, &rng)];
  ASSERT_EQ(counts.size(), holes.size());
  for (const auto& [v, c] : counts) {
    EXPECT_TRUE(holes.count(v) > 0) << "positive " << v << " returned";
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.05);
  }
}

TEST(NegativeSamplerTest, FirstItemsFreeRankSelectStartsAtZero) {
  // Holes at the very start of the id space: the walk over sorted
  // positives must not skip low ids.
  std::vector<Interaction> pairs;
  for (ItemId v = 2; v < 200; ++v) pairs.push_back({0, v});
  auto m = InteractionMatrix::FromPairs(1, 200, pairs);
  NegativeSampler sampler(&m);
  Rng rng(17);
  std::set<ItemId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(sampler.Sample(0, &rng));
  EXPECT_EQ(seen, (std::set<ItemId>{0, 1}));
}

class BatcherTest : public ::testing::Test {
 protected:
  BatcherTest() : ds_(testing_util::TinyRand()) {}
  GroupRecDataset ds_;
};

TEST_F(BatcherTest, EpochCoversAllTrainPairs) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(4);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  std::multiset<std::pair<GroupId, ItemId>> seen;
  while (batcher.NextBatch(&rng, &batch)) {
    for (const GroupTriplet& t : batch.group_triplets) {
      seen.insert({t.group, t.positive});
    }
  }
  EXPECT_EQ(seen.size(), ds_.split.train.size());
  for (const Interaction& it : ds_.split.train) {
    EXPECT_EQ(seen.count({it.row, it.item}), 1u);
  }
}

TEST_F(BatcherTest, NegativesAreNotGroupPositives) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(5);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  while (batcher.NextBatch(&rng, &batch)) {
    for (const GroupTriplet& t : batch.group_triplets) {
      EXPECT_FALSE(ds_.group_item.Contains(t.group, t.negative));
    }
  }
}

TEST_F(BatcherTest, UserInstancesBalancedLabels) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(6);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  ASSERT_TRUE(batcher.NextBatch(&rng, &batch));
  size_t pos = 0, neg = 0;
  for (const UserInstance& ui : batch.user_instances) {
    if (ui.label == 1.0) {
      EXPECT_TRUE(ds_.user_item.Contains(ui.user, ui.item));
      ++pos;
    } else {
      EXPECT_FALSE(ds_.user_item.Contains(ui.user, ui.item));
      ++neg;
    }
  }
  EXPECT_EQ(pos, neg);  // one sampled negative per positive
  EXPECT_GT(pos, 0u);
}

TEST_F(BatcherTest, PairCapLimitsEpoch) {
  const size_t cap = 5;
  Batcher batcher(&ds_, {2, 0.0, cap});
  Rng rng(7);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  size_t total = 0;
  while (batcher.NextBatch(&rng, &batch)) {
    total += batch.group_triplets.size();
  }
  EXPECT_EQ(total, cap);
}

TEST_F(BatcherTest, PairCapRedrawsAcrossEpochs) {
  // With a cap, different epochs should visit different subsets
  // (re-drawn from the full training split, not a frozen prefix).
  const size_t cap = 4;
  Batcher batcher(&ds_, {4, 0.0, cap});
  Rng rng(8);
  std::set<std::pair<GroupId, ItemId>> all_seen;
  for (int epoch = 0; epoch < 12; ++epoch) {
    batcher.BeginEpoch(&rng);
    MiniBatch batch;
    while (batcher.NextBatch(&rng, &batch)) {
      for (const GroupTriplet& t : batch.group_triplets) {
        all_seen.insert({t.group, t.positive});
      }
    }
  }
  EXPECT_GT(all_seen.size(), cap) << "cap must rotate through the split";
}

TEST_F(BatcherTest, UserRatioZeroMeansNoUserInstances) {
  Batcher batcher(&ds_, {8, 0.0, 0});
  Rng rng(9);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  while (batcher.NextBatch(&rng, &batch)) {
    EXPECT_TRUE(batch.user_instances.empty());
  }
}

TEST_F(BatcherTest, BatchesPerEpochMatches) {
  Batcher batcher(&ds_, {8, 1.0, 0});
  Rng rng(10);
  batcher.BeginEpoch(&rng);
  MiniBatch batch;
  size_t batches = 0;
  while (batcher.NextBatch(&rng, &batch)) ++batches;
  EXPECT_EQ(batches, batcher.BatchesPerEpoch());
}

std::string BatcherStateBytes(const Batcher& batcher) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(batcher.SaveState(&out).ok());
  return out.str();
}

TEST_F(BatcherTest, MidEpochStateRoundTripContinuesIdentically) {
  Batcher original(&ds_, {4, 1.0, 0});
  Rng rng(11);
  original.BeginEpoch(&rng);
  MiniBatch batch;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(original.NextBatch(&rng, &batch));

  const std::string state = BatcherStateBytes(original);
  const std::string rng_state = rng.SaveState();

  // A fresh batcher + rng restored from the snapshot must emit the exact
  // remaining batch sequence (BeginEpoch is a no-op after a mid-epoch
  // restore: no reshuffle, cursors kept).
  Batcher restored(&ds_, {4, 1.0, 0});
  std::istringstream in(state, std::ios::binary);
  ASSERT_TRUE(restored.LoadState(&in, /*resume_mid_epoch=*/true).ok());
  Rng rng2(0);
  ASSERT_TRUE(rng2.LoadState(rng_state));
  restored.BeginEpoch(&rng2);  // must not reshuffle

  MiniBatch a, b;
  while (true) {
    const bool more_a = original.NextBatch(&rng, &a);
    const bool more_b = restored.NextBatch(&rng2, &b);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) break;
    ASSERT_EQ(a.group_triplets.size(), b.group_triplets.size());
    for (size_t i = 0; i < a.group_triplets.size(); ++i) {
      EXPECT_EQ(a.group_triplets[i].group, b.group_triplets[i].group);
      EXPECT_EQ(a.group_triplets[i].positive, b.group_triplets[i].positive);
      EXPECT_EQ(a.group_triplets[i].negative, b.group_triplets[i].negative);
    }
    ASSERT_EQ(a.user_instances.size(), b.user_instances.size());
    for (size_t i = 0; i < a.user_instances.size(); ++i) {
      EXPECT_EQ(a.user_instances[i].user, b.user_instances[i].user);
      EXPECT_EQ(a.user_instances[i].item, b.user_instances[i].item);
      EXPECT_EQ(a.user_instances[i].label, b.user_instances[i].label);
    }
  }
}

TEST_F(BatcherTest, BoundaryStateRestoresPermutationForNextEpoch) {
  // BeginEpoch reshuffles the CURRENT permutation in place, so even an
  // epoch-boundary restore must carry the orders: two batchers with the
  // same restored state and rng must agree on the NEXT epoch's batches.
  Batcher original(&ds_, {4, 0.0, 0});
  Rng rng(12);
  original.BeginEpoch(&rng);
  MiniBatch batch;
  while (original.NextBatch(&rng, &batch)) {
  }
  const std::string state = BatcherStateBytes(original);
  const std::string rng_state = rng.SaveState();

  Batcher restored(&ds_, {4, 0.0, 0});
  std::istringstream in(state, std::ios::binary);
  ASSERT_TRUE(restored.LoadState(&in, /*resume_mid_epoch=*/false).ok());
  Rng rng2(0);
  ASSERT_TRUE(rng2.LoadState(rng_state));

  original.BeginEpoch(&rng);
  restored.BeginEpoch(&rng2);
  MiniBatch a, b;
  while (true) {
    const bool more_a = original.NextBatch(&rng, &a);
    const bool more_b = restored.NextBatch(&rng2, &b);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) break;
    ASSERT_EQ(a.group_triplets.size(), b.group_triplets.size());
    for (size_t i = 0; i < a.group_triplets.size(); ++i) {
      EXPECT_EQ(a.group_triplets[i].positive, b.group_triplets[i].positive);
      EXPECT_EQ(a.group_triplets[i].negative, b.group_triplets[i].negative);
    }
  }
}

TEST_F(BatcherTest, LoadStateRejectsGarbage) {
  Batcher batcher(&ds_, {4, 1.0, 0});
  std::istringstream in(std::string("definitely not a batcher"),
                        std::ios::binary);
  EXPECT_FALSE(batcher.LoadState(&in, false).ok());
}

}  // namespace
}  // namespace kgag
