// Online-world tests (DESIGN.md §15): stream determinism, the DeltaKg
// overlay's merged reads and its compaction-equals-cold-rebuild
// guarantee, the reserved cold-user world, warm-start resume in
// OnlineTrainer, the determinism of published artifacts, and the
// cold-start evaluation mechanics.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "gtest/gtest.h"
#include "models/kgag_model.h"
#include "online/cold_start.h"
#include "online/delta_kg.h"
#include "online/online_trainer.h"
#include "online/stream.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"

namespace kgag {
namespace online {
namespace {

namespace fs = std::filesystem;

std::string TestTmpDir(const std::string& leaf) {
  const char* base = std::getenv("TEST_TMPDIR");
  fs::path dir = (base != nullptr ? fs::path(base)
                                  : fs::temp_directory_path()) /
                 leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

constexpr uint64_t kSeed = 4242;
constexpr int32_t kColdUsers = 8;

GroupRecDataset SmallWorld() {
  return MakeOnlineWorld(kSeed, /*scale=*/0.12, kColdUsers);
}

KgagConfig SmallConfig() {
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.depth = 1;
  cfg.propagation.sample_size = 3;
  cfg.propagation.final_tanh = false;
  cfg.epochs = 2;
  cfg.batch_size = 4;
  cfg.pairs_per_epoch = 24;  // micro-epoch-sized training slices
  cfg.eval_tree_samples = 1;
  cfg.select_by_validation = false;
  cfg.seed = 99;
  return cfg;
}

// ---------------------------------------------------------------------------
// InteractionStream

TEST(InteractionStreamTest, EventsArePureFunctionsOfIndex) {
  const GroupRecDataset world = SmallWorld();
  const InteractionStream stream(StreamForWorld(world, kSeed, kColdUsers));
  // Random access, re-reads and an independent copy all agree.
  const InteractionStream copy(stream.spec());
  for (uint64_t i : {0ull, 1ull, 7ull, 999ull, 123456ull}) {
    const StreamEvent a = stream.Event(i);
    const StreamEvent b = copy.Event(i);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.item, b.item);
    EXPECT_EQ(a.index, i);
    EXPECT_GE(a.user, 0);
    EXPECT_LT(a.user, world.num_users);
    EXPECT_GE(a.item, 0);
    EXPECT_LT(a.item, world.num_items);
  }
}

TEST(InteractionStreamTest, ColdFractionShapesTheUserDraw) {
  const GroupRecDataset world = SmallWorld();
  StreamSpec spec = StreamForWorld(world, kSeed, kColdUsers,
                                   /*cold_fraction=*/0.25);
  const InteractionStream stream(spec);
  int cold = 0;
  const int n = 4000;
  for (uint64_t i = 0; i < n; ++i) {
    const StreamEvent ev = stream.Event(i);
    const bool is_cold = ev.user >= spec.cold_user_begin;
    EXPECT_EQ(is_cold, stream.IsColdEvent(i));
    cold += is_cold ? 1 : 0;
  }
  EXPECT_GT(cold, n / 8) << "cold tail starved";
  EXPECT_LT(cold, n / 2) << "cold tail dominates";

  // cold_fraction 0 never draws from the tail.
  spec.cold_fraction = 0.0;
  const InteractionStream warm_only(spec);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_FALSE(warm_only.IsColdEvent(i));
  }
}

TEST(OnlineWorldTest, ReservedColdUsersAreIsolated) {
  const GroupRecDataset world = SmallWorld();
  ASSERT_TRUE(world.Validate().ok());
  const int32_t cold_begin = world.num_users - kColdUsers;
  for (int32_t u = cold_begin; u < world.num_users; ++u) {
    EXPECT_EQ(world.user_item.ItemsOf(u).size(), 0u)
        << "cold user " << u << " has base interactions";
  }
  for (GroupId g = 0; g < world.groups.num_groups(); ++g) {
    for (UserId u : world.groups.MembersOf(g)) {
      EXPECT_LT(u, cold_begin) << "cold user in base group " << g;
    }
  }
}

// ---------------------------------------------------------------------------
// DeltaKg

TEST(DeltaKgTest, MergedReadsSeeOverlayWithoutRebuild) {
  const GroupRecDataset world = SmallWorld();
  auto model = KgagModel::Create(&world, SmallConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const CollaborativeKg& base = (*model)->ckg();
  DeltaKg delta(&base);

  const UserId cold_user = world.num_users - 1;  // isolated in the base
  const ItemId item = 3;
  const EntityId user_node = base.UserNode(cold_user);
  const EntityId item_entity = base.ItemEntity(item);
  const RelationId r = base.interact_relation;
  const RelationId r_inv = r + base.graph.num_relations();

  ASSERT_EQ(base.graph.Degree(user_node), 0u);
  EXPECT_FALSE(delta.HasEdge(user_node, r, item_entity));

  ASSERT_TRUE(delta.AddInteraction(cold_user, item));
  EXPECT_EQ(delta.Degree(user_node), 1u);
  EXPECT_EQ(delta.Degree(item_entity), base.graph.Degree(item_entity) + 1);
  EXPECT_TRUE(delta.HasEdge(user_node, r, item_entity));
  EXPECT_TRUE(delta.HasEdge(item_entity, r_inv, user_node));
  EXPECT_EQ(delta.overlay_edges(), 2u);

  // Base CSR untouched — the overlay is the only thing that grew.
  EXPECT_EQ(base.graph.Degree(user_node), 0u);

  int seen = 0;
  delta.ForEachNeighbor(user_node, [&](const Edge& e) {
    EXPECT_EQ(e.neighbor, item_entity);
    EXPECT_EQ(e.relation, r);
    ++seen;
  });
  EXPECT_EQ(seen, 1);

  // Duplicates (overlay and base) and out-of-range ids are rejected.
  EXPECT_FALSE(delta.AddInteraction(cold_user, item));
  const auto base_pair = world.user_item.ToPairs().front();
  EXPECT_FALSE(delta.AddInteraction(base_pair.row, base_pair.item));
  EXPECT_FALSE(delta.AddInteraction(-1, 0));
  EXPECT_FALSE(delta.AddInteraction(0, world.num_items));
  EXPECT_EQ(delta.overlay_edges(), 2u);
  EXPECT_EQ(delta.added().size(), 1u);
}

TEST(DeltaKgTest, CompactionBitIdenticalToColdRebuild) {
  const GroupRecDataset world = SmallWorld();
  auto model = KgagModel::Create(&world, SmallConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  DeltaKg delta(&(*model)->ckg());

  const InteractionStream stream(StreamForWorld(world, kSeed, kColdUsers));
  std::vector<std::pair<int32_t, int32_t>> base_pairs;
  for (const Interaction& it : world.user_item.ToPairs()) {
    base_pairs.emplace_back(it.row, it.item);
  }
  std::vector<Interaction> merged_raw = world.user_item.ToPairs();
  for (uint64_t i = 0; i < 200; ++i) {
    const StreamEvent ev = stream.Event(i);
    if (delta.AddInteraction(ev.user, ev.item)) {
      merged_raw.push_back(Interaction{ev.user, ev.item});
    }
  }
  ASSERT_GT(delta.added().size(), 0u);

  Result<CollaborativeKg> compacted =
      delta.Compact(world.kg_triples, world.num_entities,
                    world.num_relations, base_pairs);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();

  // Cold rebuild: a dataset that always contained the streamed pairs.
  const InteractionMatrix cold_matrix = InteractionMatrix::FromPairs(
      world.num_users, world.num_items, std::move(merged_raw));
  std::vector<std::pair<int32_t, int32_t>> cold_pairs;
  for (const Interaction& it : cold_matrix.ToPairs()) {
    cold_pairs.emplace_back(it.row, it.item);
  }
  Result<CollaborativeKg> cold = BuildCollaborativeKg(
      world.kg_triples, world.num_entities, world.num_relations,
      world.num_users, world.item_to_entity, cold_pairs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  ASSERT_EQ(compacted->graph.num_entities(), cold->graph.num_entities());
  ASSERT_EQ(compacted->graph.num_edges(), cold->graph.num_edges());
  for (EntityId e = 0; e < compacted->graph.num_entities(); ++e) {
    const std::span<const Edge> a = compacted->graph.Neighbors(e);
    const std::span<const Edge> b = cold->graph.Neighbors(e);
    ASSERT_EQ(a.size(), b.size()) << "degree mismatch at node " << e;
    for (size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j].neighbor, b[j].neighbor) << "node " << e << " edge " << j;
      ASSERT_EQ(a[j].relation, b[j].relation)
          << "node " << e << " edge " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// OnlineTrainer

TEST(OnlineTrainerTest, WarmStartsFromCheckpointAndPublishes) {
  const std::string dir = TestTmpDir("online_trainer");
  const GroupRecDataset world = SmallWorld();
  const KgagConfig cfg = SmallConfig();

  // Offline phase: a short training run leaves a checkpoint behind.
  {
    auto model = KgagModel::Create(&world, cfg);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    (*model)->FineTuneEpoch();
    ckpt::CheckpointManager mgr({.dir = dir + "/ckpt"});
    ASSERT_TRUE(mgr.Save((*model)->CaptureTrainingState(
                             1, /*mid_epoch=*/false, /*batches_done=*/0,
                             /*partial_loss=*/0.0, /*selector=*/nullptr))
                    .ok());
  }

  OnlineTrainer::Options options;
  options.config = cfg;
  options.checkpoint_dir = dir + "/ckpt";
  options.artifact_path = dir + "/live.srv";
  options.micro_epochs = 1;
  const InteractionStream stream(StreamForWorld(world, kSeed, kColdUsers));
  auto trainer = OnlineTrainer::Create(SmallWorld(), stream, options);
  ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();
  EXPECT_TRUE((*trainer)->resumed_from_checkpoint());

  const size_t accepted = (*trainer)->ApplyEvents(64);
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ((*trainer)->pending_events(), accepted);
  Result<RefreshReport> report = (*trainer)->Refresh();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->version, 1u);
  EXPECT_EQ(report->new_edges, 2 * accepted);
  ASSERT_EQ(report->micro_epoch_losses.size(), 1u);
  EXPECT_EQ((*trainer)->pending_events(), 0u);

  // The published artifact is loadable and covers the cold tail.
  Result<serve::FrozenModel> live =
      serve::LoadFrozenModelAuto(dir + "/live.srv");
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live->num_users, world.num_users);

  // A second refresh keeps consuming the stream where the first stopped.
  const uint64_t cursor = (*trainer)->next_event();
  EXPECT_EQ(cursor, 64u);
  (*trainer)->ApplyEvents(16);
  EXPECT_EQ((*trainer)->next_event(), 80u);
  Result<RefreshReport> second = (*trainer)->Refresh();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->version, 2u);
}

TEST(OnlineTrainerTest, RefreshesAreDeterministic) {
  const std::string dir = TestTmpDir("online_determinism");
  const GroupRecDataset world = SmallWorld();
  const KgagConfig cfg = SmallConfig();
  {
    auto model = KgagModel::Create(&world, cfg);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    (*model)->FineTuneEpoch();
    ckpt::CheckpointManager mgr({.dir = dir + "/ckpt"});
    ASSERT_TRUE(mgr.Save((*model)->CaptureTrainingState(
                             1, false, 0, 0.0, nullptr))
                    .ok());
  }

  const InteractionStream stream(StreamForWorld(world, kSeed, kColdUsers));
  auto run = [&](const std::string& artifact) {
    OnlineTrainer::Options options;
    options.config = cfg;
    options.checkpoint_dir = dir + "/ckpt";
    options.artifact_path = artifact;
    // Both runs must resume the SAME checkpoint: don't let the first
    // run's save advance the directory under the second.
    options.save_checkpoints = false;
    auto trainer = OnlineTrainer::Create(SmallWorld(), stream, options);
    ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();
    ASSERT_TRUE((*trainer)->resumed_from_checkpoint());
    (*trainer)->ApplyEvents(48);
    Result<RefreshReport> report = (*trainer)->Refresh();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  };
  run(dir + "/a.srv");
  run(dir + "/b.srv");
  const std::string a = ReadFileBytes(dir + "/a.srv");
  const std::string b = ReadFileBytes(dir + "/b.srv");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same checkpoint + same stream window must publish "
                     "byte-identical artifacts";
}

// ---------------------------------------------------------------------------
// Cold-start evaluation

TEST(ColdStartTest, ScenariosTargetColdUsersDeterministically) {
  const GroupRecDataset world = SmallWorld();
  const InteractionStream stream(StreamForWorld(world, kSeed, kColdUsers));
  const ColdStartScenarios scenarios =
      BuildColdStartScenarios(world, stream, 0, 400, /*max_cases=*/6);
  ASSERT_GT(scenarios.unseen_member.size(), 0u);
  ASSERT_GT(scenarios.adhoc_group.size(), 0u);
  const int32_t cold_begin = world.num_users - kColdUsers;
  std::set<UserId> cold_seen;
  for (const ColdStartCase& c : scenarios.unseen_member) {
    EXPECT_GE(c.cold_user, cold_begin);
    EXPECT_EQ(static_cast<int32_t>(c.members.size()), world.group_size + 1);
    cold_seen.insert(c.cold_user);
  }
  // One case per distinct cold user.
  EXPECT_EQ(cold_seen.size(), scenarios.unseen_member.size());
  for (const ColdStartCase& c : scenarios.adhoc_group) {
    EXPECT_GE(c.cold_user, cold_begin);
    EXPECT_GE(c.members.size(), 2u);
    EXPECT_GE(c.target, 0);
  }
  // Deterministic: a rebuild yields the same cases.
  const ColdStartScenarios again =
      BuildColdStartScenarios(world, stream, 0, 400, 6);
  ASSERT_EQ(again.adhoc_group.size(), scenarios.adhoc_group.size());
  for (size_t i = 0; i < again.adhoc_group.size(); ++i) {
    EXPECT_EQ(again.adhoc_group[i].members,
              scenarios.adhoc_group[i].members);
    EXPECT_EQ(again.adhoc_group[i].target, scenarios.adhoc_group[i].target);
  }
}

TEST(ColdStartTest, EvaluationRanksTargetsOnFrozenArtifacts) {
  const GroupRecDataset world = SmallWorld();
  auto model = KgagModel::Create(&world, SmallConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();

  const InteractionStream stream(StreamForWorld(world, kSeed, kColdUsers));
  const ColdStartScenarios scenarios =
      BuildColdStartScenarios(world, stream, 0, 400, 6);
  ASSERT_GT(scenarios.unseen_member.size(), 0u);

  const size_t k = 10;
  const ColdStartReport report =
      EvaluateColdStart(*frozen, scenarios.unseen_member, k);
  EXPECT_EQ(report.cases, scenarios.unseen_member.size());
  EXPECT_GE(report.mean_rank, 1.0);
  EXPECT_LE(report.mean_rank, static_cast<double>(world.num_items));
  EXPECT_GE(report.hit_at_k, 0.0);
  EXPECT_LE(report.hit_at_k, 1.0);
  EXPECT_GE(report.ndcg_at_k, 0.0);
  EXPECT_LE(report.ndcg_at_k, 1.0);

  const std::string json = ColdStartReportJson(report, k);
  EXPECT_NE(json.find("\"cases\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_at_k\""), std::string::npos);
}

}  // namespace
}  // namespace online
}  // namespace kgag
