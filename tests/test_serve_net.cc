// Data-plane front-end tests (DESIGN.md §13): wire-format round trips,
// binary request/response over real sockets with bit-identical scores,
// pipelining, malformed/oversized frame rejection, byte-at-a-time
// reassembly, the HTTP/1.1 POST fallback, and Stop() semantics.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic/standard_datasets.h"
#include "gtest/gtest.h"
#include "models/kgag_model.h"
#include "serve/frozen_model.h"
#include "serve/net_protocol.h"
#include "serve/net_server.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace serve {
namespace {

class NetTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    dataset_ = new GroupRecDataset(
        MakeMovieLensRandDataset(/*seed=*/11, /*scale=*/0.15));
    KgagConfig config;
    config.propagation.dim = 16;
    config.propagation.depth = 2;
    config.propagation.sample_size = 4;
    config.propagation.final_tanh = false;
    config.eval_tree_samples = 2;
    config.seed = 77;
    auto model = KgagModel::Create(dataset_, config);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    Result<FrozenModel> frozen = FreezeKgagModel(model->get());
    ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
    frozen_ = new FrozenModel(std::move(*frozen));
  }

  static void TearDownTestSuite() {
    delete frozen_;
    delete dataset_;
    frozen_ = nullptr;
    dataset_ = nullptr;
  }

  static const GroupRecDataset* dataset_;
  static const FrozenModel* frozen_;
};

const GroupRecDataset* NetTest::dataset_ = nullptr;
const FrozenModel* NetTest::frozen_ = nullptr;

std::vector<UserId> Members(GroupId g) {
  auto span = NetTest::dataset_->groups.MembersOf(g);
  return {span.begin(), span.end()};
}

/// Engine + server pair every test builds on; ephemeral port.
struct Harness {
  explicit Harness(ServingEngine::Options opts = {.max_batch = 4,
                                                  .batch_deadline_us = 200,
                                                  .cache_capacity = 8})
      : engine(NetTest::frozen_, opts), server(&engine, {.port = 0}) {
    Status st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ServingEngine engine;
  NetServer server;
};

int MustConnect(const Harness& h) {
  Result<int> fd = ConnectTcp("127.0.0.1", h.server.port());
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  return *fd;
}

/// One binary request/response exchange on an open connection.
Result<WireResponse> Exchange(int fd, const TopKRequest& request) {
  if (!WriteFrame(fd, EncodeTopKRequest(request))) {
    return Status::IoError("write failed");
  }
  std::vector<uint8_t> payload;
  if (!ReadFrame(fd, &payload)) return Status::IoError("read failed");
  return DecodeTopKResponse(payload.data(), payload.size());
}

/// Raw HTTP exchange: writes `request` verbatim, reads to EOF.
std::string HttpExchange(const Harness& h, const std::string& request) {
  const int fd = MustConnect(h);
  EXPECT_TRUE(WriteAll(fd, request.data(), request.size()));
  std::string out;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string PostBody(const std::string& body) {
  return "POST /topk HTTP/1.1\r\nHost: x\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// ---------------------------------------------------------------------------
// Wire format (no sockets)

TEST_F(NetTest, RequestEncodeDecodeRoundTrip) {
  TopKRequest request;
  request.members = {5, 1, 9};
  request.k = 7;
  request.exclude_seen = {2, 4};
  request.priority = RequestClass::kBatch;
  request.deadline_us = 1500;
  const std::vector<uint8_t> frame = EncodeTopKRequest(request);
  Result<TopKRequest> decoded = DecodeTopKRequest(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->members, request.members);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->exclude_seen, request.exclude_seen);
  EXPECT_EQ(decoded->priority, request.priority);
  EXPECT_EQ(decoded->deadline_us, request.deadline_us);
}

TEST_F(NetTest, ResponseEncodeDecodePreservesScoreBits) {
  TopKResult result;
  result.items = {3, 1, 4};
  // Awkward doubles: denormal, negative zero, and a full-precision value
  // must survive the wire bit-for-bit.
  result.scores = {5e-324, -0.0, 0.1234567890123456789};
  Result<WireResponse> decoded = [&] {
    const std::vector<uint8_t> frame = EncodeTopKResponse(result);
    return DecodeTopKResponse(frame.data(), frame.size());
  }();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status, WireStatus::kOk);
  EXPECT_EQ(decoded->items, result.items);
  ASSERT_EQ(decoded->scores.size(), result.scores.size());
  for (size_t i = 0; i < result.scores.size(); ++i) {
    EXPECT_EQ(std::memcmp(&decoded->scores[i], &result.scores[i],
                          sizeof(double)),
              0)
        << "score bits changed at " << i;
  }

  const std::vector<uint8_t> err =
      EncodeErrorResponse(WireStatus::kOverloaded, "queue full");
  Result<WireResponse> err_decoded = DecodeTopKResponse(err.data(), err.size());
  ASSERT_TRUE(err_decoded.ok());
  EXPECT_EQ(err_decoded->status, WireStatus::kOverloaded);
  EXPECT_EQ(err_decoded->message, "queue full");
}

TEST_F(NetTest, DecoderRejectsBadFrames) {
  TopKRequest request;
  request.members = {1, 2};
  const std::vector<uint8_t> good = EncodeTopKRequest(request);
  ASSERT_TRUE(DecodeTopKRequest(good.data(), good.size()).ok());

  // Truncations at every depth.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(DecodeTopKRequest(good.data(), len).ok()) << "len " << len;
  }
  // Trailing garbage.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeTopKRequest(padded.data(), padded.size()).ok());
  // Wrong version / non-zero flags / bogus priority.
  std::vector<uint8_t> bad = good;
  bad[0] = kWireVersion + 1;
  EXPECT_FALSE(DecodeTopKRequest(bad.data(), bad.size()).ok());
  bad = good;
  bad[2] = 1;
  EXPECT_FALSE(DecodeTopKRequest(bad.data(), bad.size()).ok());
  bad = good;
  bad[1] = 9;
  EXPECT_FALSE(DecodeTopKRequest(bad.data(), bad.size()).ok());
  // A member count that claims more than the payload carries.
  bad = good;
  bad[12] = 200;
  EXPECT_FALSE(DecodeTopKRequest(bad.data(), bad.size()).ok());
}

// ---------------------------------------------------------------------------
// Binary data plane over real sockets

TEST_F(NetTest, BinaryRoundTripBitIdenticalToEngine) {
  // The wire carries raw IEEE-754 bits, so a client can check the
  // serving bit-identity contract end to end: network scores == the
  // engine's in-process scores, exactly.
  ServingEngine reference(frozen_, {.max_batch = 1, .cache_capacity = 0});
  const Result<TopKResult> want = reference.TopK(Members(0), 6);
  ASSERT_TRUE(want.ok());

  Harness h;
  const int fd = MustConnect(h);
  TopKRequest request;
  request.members = Members(0);
  request.k = 6;
  Result<WireResponse> got = Exchange(fd, request);
  ::close(fd);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->status, WireStatus::kOk);
  EXPECT_EQ(got->items, want->items);
  EXPECT_EQ(got->scores, want->scores);  // bitwise
  EXPECT_EQ(h.server.requests_handled(), 1u);
  EXPECT_EQ(h.server.connections_accepted(), 1u);
}

TEST_F(NetTest, PipelinedRequestsAnswerInOrder) {
  Harness h;
  const int fd = MustConnect(h);
  // Three requests back-to-back before reading anything; responses must
  // come back in request order (distinguished by k).
  for (size_t k : {2u, 4u, 6u}) {
    TopKRequest request;
    request.members = Members(0);
    request.k = k;
    ASSERT_TRUE(WriteFrame(fd, EncodeTopKRequest(request)));
  }
  for (size_t k : {2u, 4u, 6u}) {
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(fd, &payload));
    Result<WireResponse> resp =
        DecodeTopKResponse(payload.data(), payload.size());
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status, WireStatus::kOk);
    EXPECT_EQ(resp->items.size(), k);
  }
  ::close(fd);
}

TEST_F(NetTest, ByteAtATimeFrameIsReassembled) {
  // A slow client dribbling one byte per write must still parse: the
  // server loops on partial reads instead of assuming one recv == one
  // frame.
  Harness h;
  const int fd = MustConnect(h);
  const std::vector<uint8_t> payload = EncodeTopKRequest(
      {.members = Members(1), .k = 3, .exclude_seen = {}});
  std::vector<uint8_t> wire;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  wire.insert(wire.end(), payload.begin(), payload.end());
  for (uint8_t byte : wire) {
    ASSERT_TRUE(WriteAll(fd, &byte, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::vector<uint8_t> reply;
  ASSERT_TRUE(ReadFrame(fd, &reply));
  Result<WireResponse> resp = DecodeTopKResponse(reply.data(), reply.size());
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, WireStatus::kOk);
  EXPECT_EQ(resp->items.size(), 3u);
  ::close(fd);
}

TEST_F(NetTest, MalformedFrameGetsErrorReplyThenClose) {
  Harness h;
  const int fd = MustConnect(h);
  // Valid length prefix, garbage payload (bad version byte).
  std::vector<uint8_t> junk(24, 0xff);
  ASSERT_TRUE(WriteFrame(fd, junk));
  std::vector<uint8_t> reply;
  ASSERT_TRUE(ReadFrame(fd, &reply));
  Result<WireResponse> resp = DecodeTopKResponse(reply.data(), reply.size());
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, WireStatus::kMalformed);
  // Framing is suspect after a decode failure: the server closes.
  std::vector<uint8_t> nothing;
  EXPECT_FALSE(ReadFrame(fd, &nothing));
  EXPECT_EQ(h.server.malformed_frames(), 1u);
  ::close(fd);
}

TEST_F(NetTest, OversizedFrameDisconnectsWithoutAllocating) {
  Harness h;
  const int fd = MustConnect(h);
  // Length prefix above the cap: connection drops with no reply at all.
  const uint32_t huge = kMaxFrameBytes + 1;
  uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<uint8_t>(huge >> (8 * i));
  ASSERT_TRUE(WriteAll(fd, prefix, sizeof(prefix)));
  std::vector<uint8_t> nothing;
  EXPECT_FALSE(ReadFrame(fd, &nothing));
  ::close(fd);
}

TEST_F(NetTest, EngineErrorsTravelAsWireErrors) {
  Harness h;
  const int fd = MustConnect(h);
  TopKRequest request;
  request.members = {-1};  // invalid member id
  Result<WireResponse> resp = Exchange(fd, request);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, WireStatus::kInvalidArgument);
  EXPECT_FALSE(resp->message.empty());
  // The connection survives engine-level (non-framing) errors.
  request.members = Members(0);
  request.k = 2;
  Result<WireResponse> ok = Exchange(fd, request);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, WireStatus::kOk);
  ::close(fd);
}

TEST_F(NetTest, StopDisconnectsIdleClientsAndIsIdempotent) {
  Harness h;
  const int fd = MustConnect(h);
  // Prove the connection is live first.
  TopKRequest request;
  request.members = Members(0);
  request.k = 2;
  ASSERT_EQ(Exchange(fd, request)->status, WireStatus::kOk);
  h.server.Stop();
  h.server.Stop();  // idempotent
  // The blocked read wakes with EOF instead of hanging.
  std::vector<uint8_t> nothing;
  EXPECT_FALSE(ReadFrame(fd, &nothing));
  ::close(fd);
  EXPECT_FALSE(h.server.running());
}

// ---------------------------------------------------------------------------
// HTTP/1.1 POST fallback

TEST_F(NetTest, HttpPostReturnsJsonMatchingEngine) {
  ServingEngine reference(frozen_, {.max_batch = 1, .cache_capacity = 0});
  const Result<TopKResult> want = reference.TopK(Members(0), 3);
  ASSERT_TRUE(want.ok());

  Harness h;
  std::string members;
  for (UserId u : Members(0)) {
    if (!members.empty()) members += ",";
    members += std::to_string(u);
  }
  const std::string reply =
      HttpExchange(h, PostBody("members=" + members + "&k=3"));
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos) << reply;
  EXPECT_NE(reply.find("application/json"), std::string::npos);
  // Items appear in rank order in the JSON body.
  std::string items = "\"items\":[";
  for (size_t i = 0; i < want->items.size(); ++i) {
    if (i > 0) items += ",";
    items += std::to_string(want->items[i]);
  }
  items += "]";
  EXPECT_NE(reply.find(items), std::string::npos) << reply;
}

TEST_F(NetTest, HttpAcceptsPriorityAndDeadlineFields) {
  Harness h;
  const std::string reply = HttpExchange(
      h, PostBody("members=0&k=2&priority=batch&deadline_us=100000"));
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos) << reply;
}

TEST_F(NetTest, HttpRejectsBadInput) {
  Harness h;
  // Missing members.
  EXPECT_NE(HttpExchange(h, PostBody("k=3")).find("HTTP/1.1 400"),
            std::string::npos);
  // Unknown field: loud failure, not silent acceptance.
  EXPECT_NE(
      HttpExchange(h, PostBody("members=0&bogus=1")).find("HTTP/1.1 400"),
      std::string::npos);
  // Non-numeric member list.
  EXPECT_NE(
      HttpExchange(h, PostBody("members=a,b")).find("HTTP/1.1 400"),
      std::string::npos);
  // GET is not part of the data plane.
  EXPECT_NE(HttpExchange(h, "GET /topk HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  // Engine-level errors map onto HTTP statuses.
  EXPECT_NE(HttpExchange(h, PostBody("members=-1")).find("HTTP/1.1 400"),
            std::string::npos);
}

TEST_F(NetTest, StatusJsonReportsFrontEndState) {
  Harness h;
  const int fd = MustConnect(h);
  TopKRequest request;
  request.members = Members(0);
  request.k = 2;
  ASSERT_EQ(Exchange(fd, request)->status, WireStatus::kOk);
  ::close(fd);
  const std::string json = h.server.StatusJson();
  EXPECT_NE(json.find("\"running\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"connections_accepted\":1"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace kgag
