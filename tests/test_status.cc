#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace kgag {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad dim");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_EQ(copy.message(), "boom");
}

Status FailingHelper() { return Status::OutOfRange("oops"); }

Status UsesReturnNotOk() {
  KGAG_RETURN_NOT_OK(Status::OK());
  KGAG_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status st = UsesReturnNotOk();
  EXPECT_TRUE(st.IsOutOfRange());
  EXPECT_EQ(st.message(), "oops");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Quarter(int x, int* out) {
  KGAG_ASSIGN_OR_RETURN(int h, Half(x));
  KGAG_ASSIGN_OR_RETURN(*out, Half(h));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  int out = 0;
  ASSERT_TRUE(Quarter(8, &out).ok());
  EXPECT_EQ(out, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status st = Quarter(6, &out);  // 6/2 = 3, then odd
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace kgag
