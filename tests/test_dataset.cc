#include "data/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace kgag {
namespace {

GroupRecDataset TinyDataset() {
  GroupRecDataset ds;
  ds.name = "tiny";
  ds.num_users = 4;
  ds.num_items = 3;
  ds.num_entities = 5;  // 3 items + 2 attributes
  ds.num_relations = 1;
  ds.kg_triples = {{0, 0, 3}, {1, 0, 3}, {2, 0, 4}};
  ds.item_to_entity = {0, 1, 2};
  ds.user_item = InteractionMatrix::FromPairs(
      4, 3, {{0, 0}, {1, 0}, {2, 1}, {3, 2}});
  ds.groups = GroupTable({{0, 1}, {2, 3}});
  ds.group_item = InteractionMatrix::FromPairs(
      2, 3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}});
  ds.group_size = 2;
  Rng rng(1);
  ds.split = SplitInteractions(ds.group_item, &rng);
  return ds;
}

TEST(DatasetTest, ValidatesCleanDataset) {
  auto ds = TinyDataset();
  EXPECT_TRUE(ds.Validate().ok()) << ds.Validate().ToString();
}

TEST(DatasetTest, SplitPartitionsInteractions) {
  auto ds = TinyDataset();
  std::set<std::pair<int32_t, ItemId>> seen;
  auto collect = [&](const std::vector<Interaction>& v) {
    for (const auto& it : v) {
      EXPECT_TRUE(seen.insert({it.row, it.item}).second)
          << "duplicate across splits";
    }
  };
  collect(ds.split.train);
  collect(ds.split.valid);
  collect(ds.split.test);
  EXPECT_EQ(seen.size(), ds.group_item.num_interactions());
}

TEST(DatasetTest, SplitRatiosRoughly602020) {
  InteractionMatrix m = InteractionMatrix::FromPairs(
      100, 10,
      [] {
        std::vector<Interaction> pairs;
        for (int32_t g = 0; g < 100; ++g) {
          for (ItemId v = 0; v < 10; ++v) pairs.push_back({g, v});
        }
        return pairs;
      }());
  Rng rng(2);
  GroupSplit split = SplitInteractions(m, &rng);
  EXPECT_EQ(split.train.size(), 600u);
  EXPECT_EQ(split.valid.size(), 200u);
  EXPECT_EQ(split.test.size(), 200u);
}

TEST(DatasetTest, SplitIsSeedDeterministic) {
  auto ds1 = TinyDataset();
  auto ds2 = TinyDataset();
  EXPECT_EQ(ds1.split.train, ds2.split.train);
  EXPECT_EQ(ds1.split.test, ds2.split.test);
}

TEST(DatasetTest, TestItemPoolIsSortedUnique) {
  auto ds = TinyDataset();
  auto pool = ds.TestItemPool();
  for (size_t i = 1; i < pool.size(); ++i) {
    EXPECT_LT(pool[i - 1], pool[i]);
  }
  std::set<ItemId> test_items;
  for (const auto& it : ds.split.test) test_items.insert(it.item);
  EXPECT_EQ(pool.size(), test_items.size());
}

TEST(DatasetTest, StatsMatchContents) {
  auto ds = TinyDataset();
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.total_groups, 2);
  EXPECT_EQ(s.total_items, 3);
  EXPECT_EQ(s.total_users, 4);
  EXPECT_EQ(s.group_size, 2);
  EXPECT_EQ(s.group_interactions, 4);
  EXPECT_DOUBLE_EQ(s.interactions_per_group, 2.0);
  EXPECT_EQ(s.kg_entities, 5);
  EXPECT_EQ(s.kg_triples, 3);
}

TEST(DatasetTest, ValidateCatchesBadMapping) {
  auto ds = TinyDataset();
  ds.item_to_entity = {0, 1, 99};
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesNonUniformGroup) {
  auto ds = TinyDataset();
  ds.groups = GroupTable({{0, 1}, {2}});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadTriple) {
  auto ds = TinyDataset();
  ds.kg_triples.push_back({0, 7, 1});
  EXPECT_FALSE(ds.Validate().ok());
}

}  // namespace
}  // namespace kgag
