#include "eval/ranking_evaluator.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"

namespace kgag {
namespace {

GroupRecDataset SmallDataset() {
  GroupRecDataset ds;
  ds.name = "eval-test";
  ds.num_users = 6;
  ds.num_items = 10;
  ds.num_entities = 10;
  ds.num_relations = 1;
  ds.item_to_entity.resize(10);
  for (int i = 0; i < 10; ++i) ds.item_to_entity[i] = i;
  ds.user_item = InteractionMatrix::FromPairs(6, 10, {{0, 0}});
  ds.groups = GroupTable({{0, 1}, {2, 3}, {4, 5}});
  ds.group_item = InteractionMatrix::FromPairs(
      3, 10, {{0, 0}, {0, 1}, {1, 2}, {1, 3}, {2, 4}});
  ds.group_size = 2;
  // Hand-made split: all interactions in test.
  ds.split.test = ds.group_item.ToPairs();
  return ds;
}

/// Oracle: knows the test positives and scores them 1, everything else 0.
class OracleScorer : public GroupScorer {
 public:
  explicit OracleScorer(const GroupRecDataset* ds) {
    for (const Interaction& it : ds->split.test) {
      positives_[it.row].insert(it.item);
    }
  }
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override {
    std::vector<double> out(items.size(), 0.0);
    auto it = positives_.find(g);
    for (size_t i = 0; i < items.size(); ++i) {
      if (it != positives_.end() && it->second.count(items[i])) out[i] = 1.0;
    }
    return out;
  }

 private:
  std::unordered_map<GroupId, std::unordered_set<ItemId>> positives_;
};

/// Anti-oracle: scores the positives lowest.
class AntiOracleScorer : public GroupScorer {
 public:
  explicit AntiOracleScorer(const GroupRecDataset* ds) : oracle_(ds) {}
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override {
    auto s = oracle_.ScoreGroup(g, items);
    for (double& x : s) x = -x;
    return s;
  }

 private:
  OracleScorer oracle_;
};

TEST(RankingEvaluatorTest, OracleGetsPerfectHit) {
  GroupRecDataset ds = SmallDataset();
  RankingEvaluator eval(&ds, 5);
  OracleScorer oracle(&ds);
  EvalResult r = eval.EvaluateTest(&oracle);
  EXPECT_EQ(r.num_groups, 3u);
  EXPECT_DOUBLE_EQ(r.hit_at_k, 1.0);
  EXPECT_DOUBLE_EQ(r.recall_at_k, 1.0);
  EXPECT_DOUBLE_EQ(r.ndcg_at_k, 1.0);
}

TEST(RankingEvaluatorTest, AntiOracleWithTightK) {
  // Pool = {0,1,2,3,4}; with k=2 the anti-oracle ranks positives last.
  GroupRecDataset ds = SmallDataset();
  RankingEvaluator eval(&ds, 2);
  AntiOracleScorer anti(&ds);
  EvalResult r = eval.EvaluateTest(&anti);
  // Group 0 has positives {0,1}; 3 non-positives fill the top-2 -> miss.
  // Groups 1 and 2 similarly miss.
  EXPECT_DOUBLE_EQ(r.hit_at_k, 0.0);
  EXPECT_DOUBLE_EQ(r.recall_at_k, 0.0);
}

TEST(RankingEvaluatorTest, KLargerThanPoolHitsEverything) {
  GroupRecDataset ds = SmallDataset();
  RankingEvaluator eval(&ds, 100);
  AntiOracleScorer anti(&ds);
  EvalResult r = eval.EvaluateTest(&anti);
  EXPECT_DOUBLE_EQ(r.hit_at_k, 1.0);
  EXPECT_DOUBLE_EQ(r.recall_at_k, 1.0);
}

TEST(RankingEvaluatorTest, EmptySliceGivesZeroGroups) {
  GroupRecDataset ds = SmallDataset();
  RankingEvaluator eval(&ds, 5);
  OracleScorer oracle(&ds);
  EvalResult r = eval.Evaluate(&oracle, {});
  EXPECT_EQ(r.num_groups, 0u);
  EXPECT_EQ(r.hit_at_k, 0.0);
}

TEST(RankingEvaluatorTest, PoolIsUnionOfSliceItems) {
  GroupRecDataset ds = SmallDataset();
  RankingEvaluator eval(&ds, 1);
  // Slice with a single interaction: pool = {4}, so even a zero scorer
  // hits for group 2.
  class ZeroScorer : public GroupScorer {
   public:
    std::vector<double> ScoreGroup(GroupId,
                                   std::span<const ItemId> items) override {
      return std::vector<double>(items.size(), 0.0);
    }
  } zero;
  EvalResult r = eval.Evaluate(&zero, {{2, 4}});
  EXPECT_EQ(r.num_groups, 1u);
  EXPECT_DOUBLE_EQ(r.hit_at_k, 1.0);
}

TEST(RankingEvaluatorTest, ParallelMatchesSerialBitExactly) {
  // The parallel path reduces per-group results in a fixed order, so its
  // metrics must be byte-identical to the serial path — including in the
  // default (obs-ON) build, where per-group counters fire from workers.
  GroupRecDataset ds = SmallDataset();
  OracleScorer oracle(&ds);
  AntiOracleScorer anti(&ds);
  for (size_t k : {1u, 2u, 5u, 100u}) {
    RankingEvaluator serial(&ds, k);
    RankingEvaluator parallel(&ds, k);
    ThreadPool pool(4);
    parallel.set_thread_pool(&pool);
    for (GroupScorer* scorer :
         std::initializer_list<GroupScorer*>{&oracle, &anti}) {
      const EvalResult a = serial.EvaluateTest(scorer);
      const EvalResult b = parallel.EvaluateTest(scorer);
      EXPECT_EQ(a.hit_at_k, b.hit_at_k) << "k=" << k;
      EXPECT_EQ(a.recall_at_k, b.recall_at_k) << "k=" << k;
      EXPECT_EQ(a.ndcg_at_k, b.ndcg_at_k) << "k=" << k;
      EXPECT_EQ(a.num_groups, b.num_groups) << "k=" << k;
    }
  }
}

TEST(EvalResultTest, ToStringContainsMetrics) {
  EvalResult r;
  r.k = 5;
  r.hit_at_k = 0.5;
  r.num_groups = 7;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("hit@5"), std::string::npos);
  EXPECT_NE(s.find("7 groups"), std::string::npos);
}

}  // namespace
}  // namespace kgag
