// Continuous-batching scheduler tests (DESIGN.md §13): late arrivals
// joining in-flight batches bit-identically, the head-anchored batch
// deadline, priority ordering under saturation, deadline/queue-full
// shedding, concurrent-Shutdown safety, and the bounded latency-sample
// buffer. Deterministic pausing uses the engine's BatchHook seam — no
// sleep-and-hope scheduling.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic/standard_datasets.h"
#include "gtest/gtest.h"
#include "models/kgag_model.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "serve/frozen_model.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

class SchedulerTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    dataset_ = new GroupRecDataset(
        MakeMovieLensRandDataset(/*seed=*/11, /*scale=*/0.15));
    KgagConfig config;
    config.propagation.dim = 16;
    config.propagation.depth = 2;
    config.propagation.sample_size = 4;
    config.propagation.final_tanh = false;
    config.eval_tree_samples = 2;
    config.seed = 77;
    auto model = KgagModel::Create(dataset_, config);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    Result<FrozenModel> frozen = FreezeKgagModel(model->get());
    ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
    frozen_ = new FrozenModel(std::move(*frozen));
  }

  static void TearDownTestSuite() {
    delete frozen_;
    delete dataset_;
    frozen_ = nullptr;
    dataset_ = nullptr;
  }

  static const GroupRecDataset* dataset_;
  static const FrozenModel* frozen_;
};

const GroupRecDataset* SchedulerTest::dataset_ = nullptr;
const FrozenModel* SchedulerTest::frozen_ = nullptr;

std::vector<UserId> Members(GroupId g) {
  auto span = SchedulerTest::dataset_->groups.MembersOf(g);
  return {span.begin(), span.end()};
}

uint64_t CounterValue(const char* name) {
  const obs::Counter* c = obs::MetricsRegistry::Global().FindCounter(name);
  return c != nullptr ? c->Value() : 0;
}

/// One-shot gate: the hook blocks the FIRST batch at "start" until the
/// test calls Release(); later batches pass straight through.
class FirstBatchGate {
 public:
  ServingEngine::BatchHook Hook() {
    return [this](const char* phase, const std::vector<uint64_t>&) {
      if (std::string_view(phase) != "start") return;
      std::unique_lock<std::mutex> lock(mu_);
      if (started_) return;  // only the first batch blocks
      started_ = true;
      started_cv_.notify_all();
      release_cv_.wait(lock, [&] { return released_; });
    };
  }
  /// Blocks until the first batch has entered the gate.
  void AwaitStarted() {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [&] { return started_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable started_cv_, release_cv_;
  bool started_ = false;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// Continuous admission (the tentpole contract)

TEST_F(SchedulerTest, LateArrivalJoinsInFlightBatchBitIdentically) {
  // Solo references first: the late-admitted request must score exactly
  // these bits even though it lands in a batch it didn't start in.
  ServingEngine solo(frozen_, {.max_batch = 1, .cache_capacity = 0});
  const Result<TopKResult> want_a = solo.TopK(Members(0), 5);
  const Result<TopKResult> want_b = solo.TopK(Members(1), 5);
  ASSERT_TRUE(want_a.ok());
  ASSERT_TRUE(want_b.ok());

  ServingEngine engine(frozen_, {.max_batch = 4,
                                 .batch_deadline_us = 0,
                                 .cache_capacity = 0});
  FirstBatchGate gate;
  engine.SetBatchHookForTest(gate.Hook());

  // A forms a batch alone (deadline 0 = no hold); the hook pauses that
  // batch after it left the queue. B arrives strictly AFTER formation.
  std::future<Result<TopKResult>> fa =
      engine.Submit({.members = Members(0), .k = 5, .exclude_seen = {}});
  gate.AwaitStarted();
  std::future<Result<TopKResult>> fb =
      engine.Submit({.members = Members(1), .k = 5, .exclude_seen = {}});
  gate.Release();

  const Result<TopKResult> got_a = fa.get();
  const Result<TopKResult> got_b = fb.get();
  ASSERT_TRUE(got_a.ok()) << got_a.status().ToString();
  ASSERT_TRUE(got_b.ok()) << got_b.status().ToString();

  // One batch ran: B was admitted into A's in-flight batch, not queued
  // for a second dispatch.
  EXPECT_EQ(engine.batches_run(), 1u);
  EXPECT_EQ(engine.late_admitted(), 1u);

  EXPECT_EQ(got_a->items, want_a->items);
  EXPECT_EQ(got_a->scores, want_a->scores);  // bitwise, no tolerance
  EXPECT_EQ(got_b->items, want_b->items);
  EXPECT_EQ(got_b->scores, want_b->scores);

  const std::string json = engine.StatusJson();
  EXPECT_NE(json.find("\"late_admitted\":1"), std::string::npos) << json;
}

TEST_F(SchedulerTest, ContinuousAdmissionOffRunsSeparateBatches) {
  ServingEngine engine(frozen_, {.max_batch = 4,
                                 .batch_deadline_us = 0,
                                 .cache_capacity = 0,
                                 .continuous_admission = false});
  FirstBatchGate gate;
  engine.SetBatchHookForTest(gate.Hook());
  std::future<Result<TopKResult>> fa =
      engine.Submit({.members = Members(0), .k = 5, .exclude_seen = {}});
  gate.AwaitStarted();
  std::future<Result<TopKResult>> fb =
      engine.Submit({.members = Members(1), .k = 5, .exclude_seen = {}});
  gate.Release();
  ASSERT_TRUE(fa.get().ok());
  ASSERT_TRUE(fb.get().ok());
  EXPECT_EQ(engine.batches_run(), 2u);
  EXPECT_EQ(engine.late_admitted(), 0u);
}

// ---------------------------------------------------------------------------
// Batch-deadline anchoring (bugfix: head request's enqueue time, not the
// dispatcher's wake-up time)

TEST_F(SchedulerTest, BatchDeadlineAnchorsToOldestEnqueueNotWakeup) {
  // continuous_admission=false so the gated first batch can NOT pull the
  // probe request in — the probe must wait for its own dispatch, which
  // is exactly the wait the anchor bug doubles.
  constexpr int64_t kDeadlineUs = 400 * 1000;
  ServingEngine engine(frozen_, {.max_batch = 4,
                                 .batch_deadline_us = kDeadlineUs,
                                 .cache_capacity = 0,
                                 .continuous_admission = false});
  FirstBatchGate gate;
  engine.SetBatchHookForTest(gate.Hook());

  std::future<Result<TopKResult>> fa =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}});
  gate.AwaitStarted();
  // The probe queues while the dispatcher is stuck in batch 1. By the
  // time the dispatcher wakes, the probe has been waiting longer than
  // the whole coalescing window.
  std::future<Result<TopKResult>> fb =
      engine.Submit({.members = Members(1), .k = 3, .exclude_seen = {}});
  std::this_thread::sleep_for(
      std::chrono::microseconds(kDeadlineUs + 100 * 1000));
  const Clock::time_point released = Clock::now();
  gate.Release();

  ASSERT_TRUE(fb.get().ok());
  const double waited_after_release_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          Clock::now() - released)
          .count();
  ASSERT_TRUE(fa.get().ok());
  // Anchored to the probe's enqueue time, its deadline already passed:
  // dispatch is immediate. The old Clock::now()-anchored wait would add
  // a fresh full window (~400ms) here.
  EXPECT_LT(waited_after_release_us, kDeadlineUs * 0.75)
      << "batch deadline re-armed at wake-up instead of staying anchored "
         "to the oldest request's enqueue time";
  EXPECT_EQ(engine.batches_run(), 2u);
}

// ---------------------------------------------------------------------------
// Deadlines and load shedding

TEST_F(SchedulerTest, ExpiredDeadlineIsShedWithSloError) {
  const uint64_t rejected_before = CounterValue("serve.requests.rejected");
  const uint64_t shed_before = CounterValue("serve.requests.shed.deadline");
  ServingEngine::Options opts;
  opts.max_batch = 4;
  opts.batch_deadline_us = 0;
  opts.cache_capacity = 0;
  opts.slo_objectives = {{"avail", /*target=*/0.5,
                          /*latency_threshold_us=*/0.0,
                          /*count_errors=*/true}};
  ServingEngine engine(frozen_, opts);
  FirstBatchGate gate;
  engine.SetBatchHookForTest(gate.Hook());

  std::future<Result<TopKResult>> fa =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}});
  gate.AwaitStarted();
  std::future<Result<TopKResult>> doomed =
      engine.Submit({.members = Members(1), .k = 3, .exclude_seen = {},
                     .deadline_us = 1000});
  // Let the 1ms deadline lapse while the batch is held, then release:
  // the scheduler reaches the request only after it expired.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.Release();

  ASSERT_TRUE(fa.get().ok());
  const Result<TopKResult> shed = doomed.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsDeadlineExceeded()) << shed.status().ToString();
  EXPECT_EQ(engine.shed_deadline(), 1u);
  // Shed requests never consume GEMM slots or count as served.
  EXPECT_EQ(engine.requests_served(), 1u);
#if KGAG_OBS_ACTIVE
  EXPECT_EQ(CounterValue("serve.requests.rejected") - rejected_before, 1u);
  EXPECT_EQ(CounterValue("serve.requests.shed.deadline") - shed_before, 1u);
#else
  (void)rejected_before;
  (void)shed_before;
#endif
  // ...but they burn SLO error budget.
  const auto states = engine.slo()->Evaluate();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_GE(states[0].short_window.bad, 1u);

  const std::string json = engine.StatusJson();
  EXPECT_NE(json.find("\"shed_deadline\":1"), std::string::npos) << json;
}

TEST_F(SchedulerTest, FullQueueShedsBatchClassAndDisplacesForInteractive) {
  ServingEngine engine(frozen_, {.max_batch = 1,
                                 .batch_deadline_us = 0,
                                 .cache_capacity = 0,
                                 .max_queue = 2,
                                 .continuous_admission = false});
  FirstBatchGate gate;
  engine.SetBatchHookForTest(gate.Hook());

  // Filler occupies the (single-slot) executing batch; the queue behind
  // it holds at most two.
  std::future<Result<TopKResult>> filler =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}});
  gate.AwaitStarted();
  auto submit = [&](GroupId g, RequestClass cls) {
    return engine.Submit({.members = Members(g), .k = 3, .exclude_seen = {},
                          .priority = cls});
  };
  std::future<Result<TopKResult>> b1 = submit(1, RequestClass::kBatch);
  std::future<Result<TopKResult>> b2 = submit(2, RequestClass::kBatch);
  // Queue is full: a batch-class arrival is shed outright...
  std::future<Result<TopKResult>> b3 = submit(3, RequestClass::kBatch);
  const Result<TopKResult> shed = b3.get();  // resolves without Release
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  // ...but an interactive arrival displaces the newest batch-class one.
  std::future<Result<TopKResult>> i1 = submit(4, RequestClass::kInteractive);
  const Result<TopKResult> displaced = b2.get();
  ASSERT_FALSE(displaced.ok());
  EXPECT_TRUE(displaced.status().IsResourceExhausted());
  EXPECT_EQ(engine.shed_queue_full(), 2u);

  gate.Release();
  EXPECT_TRUE(filler.get().ok());
  EXPECT_TRUE(b1.get().ok());
  EXPECT_TRUE(i1.get().ok());
}

TEST_F(SchedulerTest, InteractiveRunsBeforeEarlierBatchClassRequests) {
  ServingEngine engine(frozen_, {.max_batch = 1,
                                 .batch_deadline_us = 0,
                                 .cache_capacity = 0,
                                 .continuous_admission = false});
  FirstBatchGate gate;
  engine.SetBatchHookForTest(gate.Hook());

  std::future<Result<TopKResult>> filler =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}});
  gate.AwaitStarted();
  // Two batch-class requests queue FIRST, then one interactive. With
  // max_batch=1 each dispatch picks exactly one — the interactive
  // request must jump the line.
  std::future<Result<TopKResult>> b1 =
      engine.Submit({.members = Members(1), .k = 3, .exclude_seen = {},
                     .priority = RequestClass::kBatch});
  std::future<Result<TopKResult>> b2 =
      engine.Submit({.members = Members(2), .k = 3, .exclude_seen = {},
                     .priority = RequestClass::kBatch});
  std::future<Result<TopKResult>> i1 =
      engine.Submit({.members = Members(3), .k = 3, .exclude_seen = {},
                     .priority = RequestClass::kInteractive});
  gate.Release();

  const Result<TopKResult> rf = filler.get();
  const Result<TopKResult> r1 = b1.get();
  const Result<TopKResult> r2 = b2.get();
  const Result<TopKResult> ri = i1.get();
  ASSERT_TRUE(rf.ok() && r1.ok() && r2.ok() && ri.ok());
  // Completion order via the engine-wide sequence number.
  EXPECT_EQ(rf->sequence, 1u);
  EXPECT_EQ(ri->sequence, 2u) << "interactive did not jump the queue";
  EXPECT_EQ(r1->sequence, 3u);
  EXPECT_EQ(r2->sequence, 4u);
}

// ---------------------------------------------------------------------------
// Shutdown (bugfix: concurrent callers, no broken promises)

TEST_F(SchedulerTest, ConcurrentShutdownFulfillsEveryPromise) {
  for (int round = 0; round < 5; ++round) {
    ServingEngine engine(frozen_, {.max_batch = 4,
                                   .batch_deadline_us = 100,
                                   .cache_capacity = 8});
    std::mutex futures_mu;
    std::vector<std::future<Result<TopKResult>>> futures;
    std::atomic<bool> go{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < 25; ++i) {
          auto f = engine.Submit({.members = Members((t + i) % 4), .k = 3,
                                  .exclude_seen = {}});
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(f));
        }
      });
    }
    // Two racing Shutdown callers (destructor-vs-signal-handler shape),
    // landing mid-submission-storm.
    for (int s = 0; s < 2; ++s) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        engine.Shutdown();
      });
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();

    // Every future must resolve — served or rejected, never a
    // broken-promise future_error from an abandoned Pending.
    size_t served = 0, rejected = 0;
    for (auto& f : futures) {
      ASSERT_TRUE(f.valid());
      Result<TopKResult> r = Status::Internal("unresolved");
      ASSERT_NO_THROW(r = f.get()) << "broken promise after Shutdown";
      r.ok() ? ++served : ++rejected;
    }
    EXPECT_EQ(served + rejected, futures.size());
    EXPECT_EQ(engine.requests_served(), served);
  }
}

// ---------------------------------------------------------------------------
// Bounded latency samples (bugfix: unbounded growth)

TEST_F(SchedulerTest, LatencySampleBufferIsBounded) {
  const uint64_t dropped_before =
      CounterValue("serve.latency_samples.dropped");
  ServingEngine::Options opts;
  opts.max_batch = 1;
  opts.cache_capacity = 0;
  opts.record_latency = true;
  opts.latency_sample_capacity = 4;
  ServingEngine engine(frozen_, opts);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(engine.TopK(Members(0), 3).ok());
  }
  EXPECT_EQ(engine.TakeLatencySamples().size(), 4u);
  EXPECT_EQ(engine.latency_samples_dropped(), 3u);
#if KGAG_OBS_ACTIVE
  EXPECT_EQ(CounterValue("serve.latency_samples.dropped") - dropped_before,
            3u);
#else
  (void)dropped_before;
#endif
  // Draining frees capacity: recording resumes.
  ASSERT_TRUE(engine.TopK(Members(0), 3).ok());
  EXPECT_EQ(engine.TakeLatencySamples().size(), 1u);
  EXPECT_EQ(engine.latency_samples_dropped(), 3u);

  const std::string json = engine.StatusJson();
  EXPECT_NE(json.find("\"latency_samples_dropped\":3"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace serve
}  // namespace kgag
