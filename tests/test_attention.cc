#include "models/attention.h"

#include <gtest/gtest.h>

#include "tensor/grad_check.h"

namespace kgag {
namespace {

constexpr int kDim = 4;
constexpr int kGroupSize = 3;

struct AttnCase {
  const char* name;
  bool use_sp;
  bool use_pi;
};

class AttentionTest : public ::testing::TestWithParam<AttnCase> {
 protected:
  AttentionTest() : rng_(31) {}
  Rng rng_;
  ParameterStore store_;
};

TEST_P(AttentionTest, TapeOutputShapeAndConvexity) {
  PreferenceAggregator agg(kDim, kGroupSize, GetParam().use_sp,
                           GetParam().use_pi, &store_, &rng_);
  Tape tape;
  Tensor members{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}};
  Var m = tape.Constant(members);
  Var item = tape.Constant(Tensor::Row({0.5, 0.5, -0.5, 0.2}));
  Var g = agg.AggregateOnTape(&tape, m, item);
  const Tensor& gv = tape.value(g);
  EXPECT_EQ(gv.rows(), 1u);
  EXPECT_EQ(gv.cols(), static_cast<size_t>(kDim));
  // Convex combination of one-hot members: coordinates in [0,1], sum 1.
  double sum = 0;
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_GE(gv.at(0, c), 0.0);
    EXPECT_LE(gv.at(0, c), 1.0);
    sum += gv.at(0, c);
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(gv.at(0, 3), 0.0, 1e-12);
}

TEST_P(AttentionTest, BatchMatchesTape) {
  PreferenceAggregator agg(kDim, kGroupSize, GetParam().use_sp,
                           GetParam().use_pi, &store_, &rng_);
  Rng data_rng(5);
  const size_t p = 4;
  std::vector<Tensor> member_reps;
  for (int i = 0; i < kGroupSize; ++i) {
    Tensor t(p, kDim);
    for (size_t x = 0; x < t.size(); ++x) t[x] = data_rng.Normal(0, 1);
    member_reps.push_back(std::move(t));
  }
  Tensor item_reps(p, kDim);
  for (size_t x = 0; x < item_reps.size(); ++x) {
    item_reps[x] = data_rng.Normal(0, 1);
  }

  const Tensor batch = agg.AggregateBatch(member_reps, item_reps);
  ASSERT_EQ(batch.rows(), p);

  for (size_t q = 0; q < p; ++q) {
    Tape tape;
    Tensor members(kGroupSize, kDim);
    for (int i = 0; i < kGroupSize; ++i) {
      members.SetRow(i, member_reps[i].RowAt(q));
    }
    Var m = tape.Constant(members);
    Var item = tape.Constant(item_reps.RowAt(q));
    Var g = agg.AggregateOnTape(&tape, m, item);
    const Tensor& gv = tape.value(g);
    for (int c = 0; c < kDim; ++c) {
      EXPECT_NEAR(batch.at(q, static_cast<size_t>(c)),
                  gv.at(0, static_cast<size_t>(c)), 1e-10)
          << "candidate " << q << " dim " << c;
    }
  }
}

TEST_P(AttentionTest, GradientsMatchNumeric) {
  PreferenceAggregator agg(kDim, kGroupSize, GetParam().use_sp,
                           GetParam().use_pi, &store_, &rng_);
  // Extra parameter feeding member reps so we check both the attention
  // parameters and the gradients flowing to inputs.
  Parameter* input = store_.Create("input", kGroupSize, kDim,
                                   Init::kXavierUniform, &rng_);
  Parameter* item_param =
      store_.Create("item", 1, kDim, Init::kXavierUniform, &rng_);

  auto build = [&](Tape* tape) {
    Var m = tape->Leaf(input);
    Var item = tape->Leaf(item_param);
    Var g = agg.AggregateOnTape(tape, m, item);
    return tape->DotAll(g, item);
  };
  auto loss_fn = [&]() {
    Tape tape;
    return tape.value(build(&tape)).item();
  };
  auto backward_fn = [&]() {
    Tape tape;
    tape.Backward(build(&tape));
  };
  GradCheckReport report = CheckGradients(&store_, loss_fn, backward_fn);
  EXPECT_TRUE(report.ok(1e-4)) << report.worst_location
                               << " rel=" << report.max_rel_error;
}

TEST_P(AttentionTest, ExplainAlphaIsDistribution) {
  PreferenceAggregator agg(kDim, kGroupSize, GetParam().use_sp,
                           GetParam().use_pi, &store_, &rng_);
  Rng data_rng(7);
  Tensor members(kGroupSize, kDim);
  for (size_t x = 0; x < members.size(); ++x) {
    members[x] = data_rng.Normal(0, 1);
  }
  Tensor item(1, kDim);
  for (size_t x = 0; x < item.size(); ++x) item[x] = data_rng.Normal(0, 1);

  AttentionBreakdown b = agg.Explain(members, item);
  ASSERT_EQ(b.alpha.size(), static_cast<size_t>(kGroupSize));
  double sum = 0;
  for (double a : b.alpha) {
    EXPECT_GT(a, 0.0);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  if (!GetParam().use_sp) {
    for (double s : b.sp) EXPECT_EQ(s, 0.0);
  }
  if (!GetParam().use_pi) {
    for (double s : b.pi) EXPECT_EQ(s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, AttentionTest,
    ::testing::Values(AttnCase{"full", true, true},
                      AttnCase{"sp_only", true, false},
                      AttnCase{"pi_only", false, true},
                      AttnCase{"none", false, false}),
    [](const ::testing::TestParamInfo<AttnCase>& info) {
      return std::string(info.param.name);
    });

TEST(AttentionSpTest, SpPrefersAlignedMember) {
  // With SP only, a member whose representation matches the candidate
  // item must receive the largest influence — the paper's hypothesis that
  // interest in the candidate raises a member's voice.
  Rng rng(41);
  ParameterStore store;
  PreferenceAggregator agg(kDim, kGroupSize, /*use_sp=*/true,
                           /*use_pi=*/false, &store, &rng);
  Tensor members{{1, 0, 0, 0}, {0, 1, 0, 0}, {-1, 0, 0, 0}};
  Tensor item = Tensor::Row({1, 0, 0, 0});  // aligned with member 0
  AttentionBreakdown b = agg.Explain(members, item);
  EXPECT_GT(b.alpha[0], b.alpha[1]);
  EXPECT_GT(b.alpha[1], b.alpha[2]);
  EXPECT_GT(b.sp[0], b.sp[2]);
}

TEST(AttentionSizeTest, GroupSizeOneWorks) {
  Rng rng(43);
  ParameterStore store;
  PreferenceAggregator agg(kDim, /*group_size=*/1, true, true, &store, &rng);
  Tape tape;
  Var m = tape.Constant(Tensor{{1, 2, 3, 4}});
  Var item = tape.Constant(Tensor::Row({1, 0, 0, 0}));
  Var g = agg.AggregateOnTape(&tape, m, item);
  // Singleton group: the group rep IS the member rep.
  EXPECT_TRUE(AllClose(tape.value(g), Tensor{{1, 2, 3, 4}}));
}

TEST(AttentionSizeTest, LargerGroupSizes) {
  for (int l : {2, 5, 8}) {
    Rng rng(47 + l);
    ParameterStore store;
    PreferenceAggregator agg(kDim, l, true, true, &store, &rng);
    Tape tape;
    Tensor members(l, kDim);
    for (size_t x = 0; x < members.size(); ++x) {
      members[x] = rng.Normal(0, 1);
    }
    Var m = tape.Constant(members);
    Var item = tape.Constant(Tensor::Row({0.5, -0.5, 0.5, -0.5}));
    Var g = agg.AggregateOnTape(&tape, m, item);
    EXPECT_EQ(tape.value(g).cols(), static_cast<size_t>(kDim)) << l;
  }
}

}  // namespace
}  // namespace kgag
