#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace kgag {
namespace {

/// Deterministic dense fill with irrational values so kernel bugs are not
/// masked by zeros or small integers.
Tensor FilledTensor(size_t rows, size_t cols, double phase) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = std::sin(phase + 0.7 * static_cast<double>(i));
  }
  return t;
}

Tensor NaiveMatMulRef(bool trans_a, bool trans_b, const Tensor& a,
                      const Tensor& b) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t n = trans_b ? b.rows() : b.cols();
  Tensor out(m, n);
  kernels::GemmNaive(trans_a, trans_b, m, n, k, a.data(), a.cols(), b.data(),
                     b.cols(), out.data(), out.cols());
  return out;
}

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(TensorTest, InitializerList) {
  Tensor t{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.at(0, 2), 3.0);
  EXPECT_EQ(t.at(1, 0), 4.0);
}

TEST(TensorTest, RowFactoryAndScalar) {
  Tensor r = Tensor::Row({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Tensor s = Tensor::Scalar1(7.5);
  EXPECT_EQ(s.item(), 7.5);
}

TEST(TensorTest, Identity) {
  Tensor id = Tensor::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.at(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(TensorTest, AddAxpyScale) {
  Tensor a{{1, 2}, {3, 4}};
  Tensor b{{10, 20}, {30, 40}};
  a.Add(b);
  EXPECT_EQ(a.at(1, 1), 44.0);
  a.Axpy(0.5, b);
  EXPECT_EQ(a.at(0, 0), 16.0);
  a.Scale(2.0);
  EXPECT_EQ(a.at(0, 0), 32.0);
}

TEST(TensorTest, ApplySumNorms) {
  Tensor a{{-1, 2}, {-3, 4}};
  EXPECT_EQ(a.Sum(), 2.0);
  EXPECT_EQ(a.SquaredNorm(), 1 + 4 + 9 + 16);
  EXPECT_EQ(a.AbsMax(), 4.0);
  a.Apply([](Scalar x) { return x * x; });
  EXPECT_EQ(a.at(1, 0), 9.0);
}

TEST(TensorTest, RowOps) {
  Tensor a{{1, 2}, {3, 4}};
  Tensor r = a.RowAt(1);
  EXPECT_EQ(r.at(0, 0), 3.0);
  a.SetRow(0, Tensor::Row({9, 8}));
  EXPECT_EQ(a.at(0, 1), 8.0);
  a.AddToRow(0, Tensor::Row({1, 1}));
  EXPECT_EQ(a.at(0, 0), 10.0);
}

TEST(TensorTest, Transposed) {
  Tensor a{{1, 2, 3}, {4, 5, 6}};
  Tensor t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 1), 6.0);
}

TEST(TensorTest, MatMulKnownResult) {
  Tensor a{{1, 2}, {3, 4}};
  Tensor b{{5, 6}, {7, 8}};
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0);
  EXPECT_EQ(c.at(0, 1), 22.0);
  EXPECT_EQ(c.at(1, 0), 43.0);
  EXPECT_EQ(c.at(1, 1), 50.0);
}

TEST(TensorTest, MatMulIdentity) {
  Tensor a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Identity(3)), a));
}

TEST(TensorTest, MatMulTransVariantsAgree) {
  Tensor a{{1, 2, 3}, {4, 5, 6}};      // 2x3
  Tensor b{{1, 0}, {2, 1}, {0, 3}};    // 3x2
  Tensor ab = MatMul(a, b);            // 2x2
  EXPECT_TRUE(AllClose(MatMulTransA(a.Transposed(), b), ab));
  EXPECT_TRUE(AllClose(MatMulTransB(a, b.Transposed()), ab));
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a{{1, 2}};
  Tensor b{{3, 4}};
  EXPECT_TRUE(AllClose(Add(a, b), Tensor{{4, 6}}));
  EXPECT_TRUE(AllClose(Sub(a, b), Tensor{{-2, -2}}));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor{{3, 8}}));
  EXPECT_EQ(Dot(a, b), 11.0);
}

TEST(TensorTest, AllCloseTolerance) {
  Tensor a{{1.0}};
  Tensor b{{1.0 + 1e-10}};
  EXPECT_TRUE(AllClose(a, b));
  Tensor c{{1.1}};
  EXPECT_FALSE(AllClose(a, c));
  Tensor d(1, 2);
  EXPECT_FALSE(AllClose(a, d));  // shape mismatch
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor a{{1, 2}, {3, 4}};
  EXPECT_NE(a.ToString().find("2x2"), std::string::npos);
}

// Blocked kernels vs the preserved naive reference, on shapes chosen to
// exercise every fringe path: single row/col, prime dims smaller and larger
// than the register tiles, and multiples of the 128-row parallel panel.
TEST(TensorKernelTest, MatMulMatchesNaiveOnAwkwardShapes) {
  const size_t shapes[][3] = {{1, 1, 1},   {1, 64, 64},  {3, 5, 7},
                              {17, 13, 9}, {65, 31, 33}, {128, 64, 64},
                              {130, 257, 19}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    Tensor a = FilledTensor(m, k, 0.1);
    Tensor b = FilledTensor(k, n, 0.2);
    EXPECT_TRUE(AllClose(MatMul(a, b), NaiveMatMulRef(false, false, a, b)))
        << m << "x" << k << "x" << n;
  }
}

TEST(TensorKernelTest, MatMulTransAMatchesNaive) {
  const size_t shapes[][3] = {{1, 1, 1}, {5, 3, 7}, {64, 130, 31}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    Tensor a = FilledTensor(k, m, 0.3);  // stored (k, m); used as A^T
    Tensor b = FilledTensor(k, n, 0.4);
    EXPECT_TRUE(
        AllClose(MatMulTransA(a, b), NaiveMatMulRef(true, false, a, b)))
        << m << "x" << k << "x" << n;
  }
}

TEST(TensorKernelTest, MatMulTransBMatchesNaive) {
  const size_t shapes[][3] = {{1, 1, 1}, {5, 3, 7}, {33, 129, 66}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    Tensor a = FilledTensor(m, k, 0.5);
    Tensor b = FilledTensor(n, k, 0.6);  // stored (n, k); used as B^T
    EXPECT_TRUE(
        AllClose(MatMulTransB(a, b), NaiveMatMulRef(false, true, a, b)))
        << m << "x" << k << "x" << n;
  }
}

TEST(TensorKernelTest, ParallelGemmBitIdenticalToSerial) {
  // Big enough to clear the parallel-dispatch thresholds in kernels::Gemm
  // (m >= 256 rows, >= 2^22 madds); the fixed 128-row panel grid must make
  // the parallel result bitwise equal, not just close.
  Tensor a = FilledTensor(512, 64, 0.7);
  Tensor b = FilledTensor(64, 160, 0.8);
  Tensor serial = MatMul(a, b);

  ThreadPool pool(4);
  kernels::SetComputeThreadPool(&pool);
  Tensor parallel = MatMul(a, b);
  kernels::SetComputeThreadPool(nullptr);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace kgag
