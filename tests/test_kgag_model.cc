#include "models/kgag_model.h"

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/trivial.h"
#include "eval/ranking_evaluator.h"
#include "test_util.h"

namespace kgag {
namespace {

KgagConfig FastConfig() {
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.depth = 2;
  cfg.propagation.sample_size = 2;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.seed = 17;
  return cfg;
}

TEST(KgagModelTest, CreateRejectsNull) {
  auto r = KgagModel::Create(nullptr, FastConfig());
  EXPECT_FALSE(r.ok());
}

TEST(KgagModelTest, NamesReflectAblations) {
  KgagConfig cfg = FastConfig();
  EXPECT_EQ(cfg.Describe(), "KGAG");
  cfg.use_kg = false;
  EXPECT_EQ(cfg.Describe(), "KGAG-KG");
  cfg.use_kg = true;
  cfg.use_sp = false;
  EXPECT_EQ(cfg.Describe(), "KGAG-SP");
  cfg.use_sp = true;
  cfg.use_pi = false;
  EXPECT_EQ(cfg.Describe(), "KGAG-PI");
  cfg.use_pi = true;
  cfg.group_loss = GroupLossKind::kBpr;
  EXPECT_EQ(cfg.Describe(), "KGAG (BPR)");
}

TEST(KgagModelTest, ScoreGroupReturnsOnePerItem) {
  GroupRecDataset ds = testing_util::TinyRand();
  auto model = KgagModel::Create(&ds, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  std::vector<ItemId> items{0, 1, 2, 3, 4};
  auto scores = (*model)->ScoreGroup(0, items);
  EXPECT_EQ(scores.size(), items.size());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(KgagModelTest, ScoresAreDeterministicAcrossCalls) {
  GroupRecDataset ds = testing_util::TinyRand();
  auto model = KgagModel::Create(&ds, FastConfig());
  ASSERT_TRUE(model.ok());
  std::vector<ItemId> items{0, 1, 2};
  auto a = (*model)->ScoreGroup(1, items);
  auto b = (*model)->ScoreGroup(1, items);
  EXPECT_EQ(a, b);  // eval trees are cached, scoring is pure
}

TEST(KgagModelTest, TrainingReducesLoss) {
  GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = FastConfig();
  cfg.epochs = 6;
  auto model = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(model.ok());
  (*model)->Fit();
  const auto& losses = (*model)->epoch_losses();
  ASSERT_EQ(losses.size(), 6u);
  // The loss over the last two epochs must be below the first epoch.
  EXPECT_LT((losses[4] + losses[5]) / 2, losses[0]);
}

TEST(KgagModelTest, SameSeedSameTraining) {
  GroupRecDataset ds = testing_util::TinyRand();
  auto m1 = KgagModel::Create(&ds, FastConfig());
  auto m2 = KgagModel::Create(&ds, FastConfig());
  ASSERT_TRUE(m1.ok() && m2.ok());
  (*m1)->Fit();
  (*m2)->Fit();
  EXPECT_EQ((*m1)->epoch_losses(), (*m2)->epoch_losses());
  std::vector<ItemId> items{0, 1, 2, 3};
  EXPECT_EQ((*m1)->ScoreGroup(0, items), (*m2)->ScoreGroup(0, items));
}

TEST(KgagModelTest, TrainedModelBeatsRandomRanking) {
  // A slightly larger corpus than the smoke tests: ~20 test groups are
  // too noisy for a reliable trained-vs-random comparison.
  GroupRecDataset ds = MakeMovieLensRandDataset(7, 0.15);
  KgagConfig cfg = FastConfig();
  cfg.epochs = 10;
  cfg.propagation.sample_size = 4;
  cfg.propagation.final_tanh = false;
  auto model = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(model.ok());
  (*model)->Fit();

  RankingEvaluator eval(&ds, 5);
  EvalResult trained = eval.EvaluateTest(model->get());
  RandomRecommender random(99);
  EvalResult rnd = eval.EvaluateTest(&random);
  EXPECT_GT(trained.hit_at_k, rnd.hit_at_k);
}

TEST(KgagModelTest, AblationsConstructAndTrain) {
  GroupRecDataset ds = testing_util::TinyRand();
  for (int variant = 0; variant < 4; ++variant) {
    KgagConfig cfg = FastConfig();
    cfg.epochs = 1;
    switch (variant) {
      case 0: cfg.use_kg = false; break;
      case 1: cfg.use_sp = false; break;
      case 2: cfg.use_pi = false; break;
      case 3: cfg.group_loss = GroupLossKind::kBpr; break;
    }
    auto model = KgagModel::Create(&ds, cfg);
    ASSERT_TRUE(model.ok()) << variant;
    (*model)->Fit();
    std::vector<ItemId> items{0, 1, 2};
    auto scores = (*model)->ScoreGroup(0, items);
    for (double s : scores) EXPECT_TRUE(std::isfinite(s)) << variant;
  }
}

TEST(KgagModelTest, GraphSageAggregatorWorks) {
  GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg = FastConfig();
  cfg.propagation.aggregator = AggregatorKind::kGraphSage;
  cfg.epochs = 1;
  auto model = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(model.ok());
  (*model)->Fit();
  auto scores = (*model)->ScoreGroup(0, std::vector<ItemId>{0, 1});
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(KgagModelTest, ExplanationIsDistributionWithBreakdown) {
  GroupRecDataset ds = testing_util::TinyRand();
  auto model = KgagModel::Create(&ds, FastConfig());
  ASSERT_TRUE(model.ok());
  (*model)->Fit();
  GroupExplanation ex = (*model)->ExplainGroup(0, ds.split.test.empty()
                                                      ? 0
                                                      : ds.split.test[0].item);
  ASSERT_EQ(ex.members.size(), static_cast<size_t>(ds.group_size));
  ASSERT_EQ(ex.attention.alpha.size(), ex.members.size());
  double sum = std::accumulate(ex.attention.alpha.begin(),
                               ex.attention.alpha.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GE(ex.prediction, 0.0);
  EXPECT_LE(ex.prediction, 1.0);
}

TEST(KgagModelTest, PredictGroupItemMatchesScoreGroup) {
  GroupRecDataset ds = testing_util::TinyRand();
  auto model = KgagModel::Create(&ds, FastConfig());
  ASSERT_TRUE(model.ok());
  const double p = (*model)->PredictGroupItem(0, 1);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(KgagModelTest, CollaborativeKgHasUserNodes) {
  GroupRecDataset ds = testing_util::TinyRand();
  auto model = KgagModel::Create(&ds, FastConfig());
  ASSERT_TRUE(model.ok());
  const CollaborativeKg& ckg = (*model)->ckg();
  EXPECT_EQ(ckg.graph.num_entities(), ds.num_entities + ds.num_users);
  EXPECT_EQ(ckg.num_users, ds.num_users);
  // Users with interactions must not be isolated in the CKG.
  int connected = 0;
  for (UserId u = 0; u < ds.num_users; ++u) {
    if (ds.user_item.RowDegree(u) > 0 &&
        ckg.graph.Degree(ckg.UserNode(u)) > 0) {
      ++connected;
    }
  }
  EXPECT_GT(connected, 0);
}

}  // namespace
}  // namespace kgag
