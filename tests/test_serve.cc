// Serving subsystem tests: artifact round-trip + corruption rejection,
// the eval/serve bit-identity contract, batched-vs-solo GEMM bit
// identity, ad-hoc group handling (single member, duplicates, order
// independence, untrained sizes) and rank-time exclusion semantics.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/file_io.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/metrics.h"
#include "eval/ranking_evaluator.h"
#include "gtest/gtest.h"
#include "models/kgag_model.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "serve/serving_engine.h"
#include "tensor/kernels.h"

namespace kgag {
namespace serve {
namespace {

namespace fs = std::filesystem;

std::string TestTmpDir(const std::string& leaf) {
  const char* base = std::getenv("TEST_TMPDIR");
  fs::path dir = (base != nullptr ? fs::path(base)
                                  : fs::temp_directory_path()) /
                 leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Shared fixture state: one small corpus frozen once (propagation is the
/// slow part; every test reads the same immutable artifact).
class ServeTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    dataset_ = new GroupRecDataset(
        MakeMovieLensRandDataset(/*seed=*/11, /*scale=*/0.15));
    KgagConfig config;
    config.propagation.dim = 16;
    config.propagation.depth = 2;
    config.propagation.sample_size = 4;
    config.propagation.final_tanh = false;
    config.eval_tree_samples = 2;
    config.seed = 77;
    auto model = KgagModel::Create(dataset_, config);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    // Untrained (randomly initialized) weights are enough: the serving
    // contract is about scoring fidelity, not model quality.
    Result<FrozenModel> frozen = FreezeKgagModel(model->get());
    ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
    frozen_ = new FrozenModel(std::move(*frozen));
  }

  static void TearDownTestSuite() {
    delete frozen_;
    delete dataset_;
    frozen_ = nullptr;
    dataset_ = nullptr;
  }

  static const GroupRecDataset* dataset_;
  static const FrozenModel* frozen_;
};

const GroupRecDataset* ServeTest::dataset_ = nullptr;
const FrozenModel* ServeTest::frozen_ = nullptr;

std::vector<UserId> Members(GroupId g) {
  auto span = ServeTest::dataset_->groups.MembersOf(g);
  return {span.begin(), span.end()};
}

// ---------------------------------------------------------------------------
// Artifact format

TEST_F(ServeTest, EncodeDecodeRoundTripIsByteStable) {
  std::string bytes;
  ASSERT_TRUE(EncodeFrozenModel(*frozen_, &bytes).ok());
  Result<FrozenModel> decoded = DecodeFrozenModel(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  std::string re_encoded;
  ASSERT_TRUE(EncodeFrozenModel(*decoded, &re_encoded).ok());
  EXPECT_EQ(bytes, re_encoded);

  EXPECT_EQ(decoded->dim, frozen_->dim);
  EXPECT_EQ(decoded->group_size, frozen_->group_size);
  EXPECT_EQ(decoded->num_users, frozen_->num_users);
  EXPECT_EQ(decoded->num_items, frozen_->num_items);
}

TEST_F(ServeTest, SaveLoadFileRoundTrip) {
  const std::string dir = TestTmpDir("serve_artifact");
  const std::string path = dir + "/model.srv";
  ASSERT_TRUE(SaveFrozenModel(*frozen_, path).ok());
  Result<FrozenModel> loaded = LoadFrozenModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::string original, reloaded;
  ASSERT_TRUE(EncodeFrozenModel(*frozen_, &original).ok());
  ASSERT_TRUE(EncodeFrozenModel(*loaded, &reloaded).ok());
  EXPECT_EQ(original, reloaded);
}

TEST_F(ServeTest, CorruptionIsRejected) {
  std::string bytes;
  ASSERT_TRUE(EncodeFrozenModel(*frozen_, &bytes).ok());
  // Flip one bit in a sample of positions across every region (header,
  // each chunk, trailing CRCs); a stride keeps the test fast while still
  // touching all chunk types.
  for (size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    EXPECT_FALSE(DecodeFrozenModel(corrupt).ok())
        << "bit flip at byte " << pos << " was not detected";
  }
  // Truncations at several depths.
  for (size_t len : {size_t{0}, size_t{4}, size_t{11}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(DecodeFrozenModel(bytes.substr(0, len)).ok())
        << "truncation to " << len << " bytes was not detected";
  }
  // A checkpoint-magic file must not decode as an artifact.
  std::string wrong_magic = bytes;
  wrong_magic.replace(0, 8, "KGAGCKP1");
  EXPECT_FALSE(DecodeFrozenModel(wrong_magic).ok());
}

// ---------------------------------------------------------------------------
// Eval/serve bit identity (the shared-scoring-path contract)

TEST_F(ServeTest, ServingTopKBitIdenticalToRankingEvaluator) {
  // The evaluator's protocol: rank the test-item pool per group. Serving
  // ranks the full catalog, so excluding everything outside the pool must
  // reproduce the evaluator's ranked list bit for bit.
  const std::vector<ItemId> pool = dataset_->TestItemPool();
  ASSERT_FALSE(pool.empty());
  std::vector<ItemId> outside;
  for (ItemId v = 0; v < frozen_->num_items; ++v) {
    if (!std::binary_search(pool.begin(), pool.end(), v)) {
      outside.push_back(v);
    }
  }
  const size_t k = 5;

  FrozenGroupScorer scorer(frozen_, &dataset_->groups);
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 8});

  const int num_groups = dataset_->groups.num_groups();
  for (GroupId g = 0; g < std::min(num_groups, 12); ++g) {
    const std::vector<double> eval_scores = scorer.ScoreGroup(g, pool);
    const std::vector<ItemId> eval_ranked = TopKItems(eval_scores, pool, k);

    Result<TopKResult> serve_result = engine.TopK(Members(g), k, outside);
    ASSERT_TRUE(serve_result.ok()) << serve_result.status().ToString();

    ASSERT_EQ(serve_result->items.size(), eval_ranked.size()) << "group " << g;
    for (size_t i = 0; i < eval_ranked.size(); ++i) {
      EXPECT_EQ(serve_result->items[i], eval_ranked[i])
          << "group " << g << " rank " << i;
      // Bitwise score equality: same frozen parameters, same shared
      // scoring path, no tolerance.
      const auto it = std::lower_bound(pool.begin(), pool.end(),
                                       serve_result->items[i]);
      ASSERT_NE(it, pool.end());
      const size_t pool_idx = static_cast<size_t>(it - pool.begin());
      EXPECT_EQ(serve_result->scores[i], eval_scores[pool_idx])
          << "group " << g << " rank " << i;
    }
  }
}

TEST_F(ServeTest, SubsetScoresBitIdenticalToFullCatalog) {
  Result<GroupRep> rep = BuildGroupRep(*frozen_, Members(0));
  ASSERT_TRUE(rep.ok());
  const std::vector<double> full = ScoreAllItems(*frozen_, *rep);

  // An arbitrary strided subset: gathered-GEMM scores must equal the
  // full-matrix scores bit for bit (fixed k-order accumulation).
  std::vector<ItemId> subset;
  for (ItemId v = 1; v < frozen_->num_items; v += 3) subset.push_back(v);
  const std::vector<double> sub = ScoreItems(*frozen_, *rep, subset);
  ASSERT_EQ(sub.size(), subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    EXPECT_EQ(sub[i], full[static_cast<size_t>(subset[i])]) << "item "
                                                            << subset[i];
  }
}

TEST_F(ServeTest, BatchedSubmitBitIdenticalToSoloTopK) {
  // Solo reference results, one engine per mode so counters stay clean.
  ServingEngine solo(frozen_, {.max_batch = 1, .cache_capacity = 0});
  ThreadPool pool(2);
  ServingEngine batched(frozen_, {.max_batch = 8,
                                  .batch_deadline_us = 20000,
                                  .cache_capacity = 16,
                                  .pool = &pool});

  const int num_groups = dataset_->groups.num_groups();
  const size_t requests = std::min<size_t>(8, static_cast<size_t>(num_groups));
  std::vector<Result<TopKResult>> want;
  for (size_t i = 0; i < requests; ++i) {
    want.push_back(solo.TopK(Members(static_cast<GroupId>(i)), 7));
    ASSERT_TRUE(want.back().ok());
  }

  // Submit all requests before the deadline expires so they coalesce
  // into stacked GEMMs; row position within the batch must not change a
  // single score bit.
  std::vector<std::future<Result<TopKResult>>> futures;
  for (size_t i = 0; i < requests; ++i) {
    futures.push_back(batched.Submit(
        {.members = Members(static_cast<GroupId>(i)), .k = 7,
         .exclude_seen = {}}));
  }
  for (size_t i = 0; i < requests; ++i) {
    Result<TopKResult> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->items.size(), want[i]->items.size());
    for (size_t r = 0; r < got->items.size(); ++r) {
      EXPECT_EQ(got->items[r], want[i]->items[r]) << "req " << i;
      EXPECT_EQ(got->scores[r], want[i]->scores[r]) << "req " << i;
    }
  }
  EXPECT_EQ(batched.requests_served(), requests);
  // Coalescing must actually have happened (fewer batches than requests).
  EXPECT_LT(batched.batches_run(), requests);
}

TEST_F(ServeTest, DuplicateGroupsInOneBatchCoalesceBitIdentically) {
  ServingEngine solo(frozen_, {.max_batch = 1, .cache_capacity = 0});
  ServingEngine batched(frozen_, {.max_batch = 8,
                                  .batch_deadline_us = 20000,
                                  .cache_capacity = 0});

  // Same canonical group six times — permuted members and differing k /
  // exclusions must not defeat the dedup or change any score bit.
  std::vector<UserId> members = Members(1);
  const Result<TopKResult> want = solo.TopK(members, 6);
  ASSERT_TRUE(want.ok());

  std::vector<std::future<Result<TopKResult>>> futures;
  for (int i = 0; i < 6; ++i) {
    TopKRequest r;
    r.members = members;
    if (i % 2 == 1) std::reverse(r.members.begin(), r.members.end());
    r.k = 6;
    if (i == 5) r.exclude_seen = {want->items[0]};
    futures.push_back(batched.Submit(std::move(r)));
  }
  for (int i = 0; i < 6; ++i) {
    Result<TopKResult> got = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const size_t offset = i == 5 ? 1 : 0;  // excluded the top item
    ASSERT_GE(want->items.size(), got->items.size());
    for (size_t r = 0; r + offset < want->items.size(); ++r) {
      EXPECT_EQ(got->items[r], want->items[r + offset]) << "req " << i;
      EXPECT_EQ(got->scores[r], want->scores[r + offset]) << "req " << i;
    }
  }
  // All six shared one rep's GEMM rows and reduce.
  EXPECT_EQ(batched.batches_run(), 1u);
  EXPECT_EQ(batched.coalesced_requests(), 5u);
}

// ---------------------------------------------------------------------------
// Ad-hoc groups and edge cases serving exposes

TEST_F(ServeTest, MemberOrderAndDuplicatesDoNotChangeScores) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 0});
  std::vector<UserId> members = Members(1);
  Result<TopKResult> canonical = engine.TopK(members, 10);
  ASSERT_TRUE(canonical.ok());

  // Reversed order.
  std::vector<UserId> reversed(members.rbegin(), members.rend());
  Result<TopKResult> from_reversed = engine.TopK(reversed, 10);
  ASSERT_TRUE(from_reversed.ok());
  EXPECT_EQ(from_reversed->items, canonical->items);
  EXPECT_EQ(from_reversed->scores, canonical->scores);

  // Duplicated members.
  std::vector<UserId> dup = members;
  dup.insert(dup.end(), members.begin(), members.end());
  dup.push_back(members.front());
  Result<TopKResult> from_dup = engine.TopK(dup, 10);
  ASSERT_TRUE(from_dup.ok());
  EXPECT_EQ(from_dup->items, canonical->items);
  EXPECT_EQ(from_dup->scores, canonical->scores);
}

TEST_F(ServeTest, AdHocGroupsOfUntrainedSizesWork) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 4});
  // A never-seen member combination of a size != the trained group size:
  // the W2 peer term is dropped, the rest of the attention stays.
  ASSERT_GE(frozen_->num_users, 3);
  std::vector<UserId> trio = {0, static_cast<UserId>(frozen_->num_users / 2),
                              static_cast<UserId>(frozen_->num_users - 1)};
  ASSERT_NE(static_cast<int>(trio.size()), frozen_->group_size);
  Result<TopKResult> r = engine.TopK(trio, 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->items.size(), 5u);
}

TEST_F(ServeTest, SingleMemberGroupScoresAreDotProducts) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 0});
  const UserId u = 3;
  Result<TopKResult> r = engine.TopK(std::vector<UserId>{u}, 4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->items.size(), 4u);
  // Softmax over one member is exactly 1, so the score reduces to
  // <u_rep, v_rep>. The reference dot product goes through the same GEMM
  // kernel (1x1 call) because the dispatched ISA variant may contract
  // mul+add into FMA — a plain C++ loop here would differ by an ULP.
  const size_t d = static_cast<size_t>(frozen_->dim);
  for (size_t i = 0; i < r->items.size(); ++i) {
    double dot = 0.0;
    kernels::Gemm(false, true, 1, 1, d,
                  frozen_->user_emb.data() + static_cast<size_t>(u) * d, d,
                  frozen_->item_emb.data() +
                      static_cast<size_t>(r->items[i]) * d,
                  d, &dot, 1);
    EXPECT_EQ(r->scores[i], dot) << "rank " << i;
  }
}

TEST_F(ServeTest, KLargerThanCatalogReturnsEverythingRanked) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 0});
  const size_t huge_k = static_cast<size_t>(frozen_->num_items) * 10;
  Result<TopKResult> r = engine.TopK(Members(0), huge_k);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->items.size(), static_cast<size_t>(frozen_->num_items));
  for (size_t i = 1; i < r->scores.size(); ++i) {
    EXPECT_GE(r->scores[i - 1], r->scores[i]) << "not descending at " << i;
  }
}

TEST_F(ServeTest, ExclusionFiltersAtRankTimeWithoutChangingScores) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 4});
  const std::vector<UserId> members = Members(2);

  // Empty exclusion list is the baseline (and a valid input).
  Result<TopKResult> all = engine.TopK(members, 1000, {});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->items.size(), static_cast<size_t>(frozen_->num_items));

  // Exclude the current top 3: the new ranking must equal the old one
  // with those items deleted — same scores, same relative order.
  std::vector<ItemId> exclude(all->items.begin(), all->items.begin() + 3);
  Result<TopKResult> rest = engine.TopK(members, 1000, exclude);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->items.size(),
            static_cast<size_t>(frozen_->num_items) - exclude.size());
  size_t j = 0;
  for (size_t i = 0; i < all->items.size(); ++i) {
    if (i < 3) continue;  // the excluded prefix
    ASSERT_LT(j, rest->items.size());
    EXPECT_EQ(rest->items[j], all->items[i]);
    EXPECT_EQ(rest->scores[j], all->scores[i]);
    ++j;
  }
}

TEST_F(ServeTest, InvalidRequestsFailCleanly) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 0});
  EXPECT_FALSE(engine.TopK({}, 5).ok());
  EXPECT_FALSE(
      engine.TopK(std::vector<UserId>{frozen_->num_users}, 5).ok());
  EXPECT_FALSE(engine.TopK(std::vector<UserId>{-1}, 5).ok());

  // Through the batched path too: the future resolves with the error.
  Result<TopKResult> via_queue =
      engine.Submit({.members = {}, .k = 5, .exclude_seen = {}}).get();
  EXPECT_FALSE(via_queue.ok());
}

TEST_F(ServeTest, CacheHitsAreReportedAndBitIdentical) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 8});
  const std::vector<UserId> members = Members(3);
  Result<TopKResult> first = engine.TopK(members, 6);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);

  // Same set, different order: must hit (canonical key) and return the
  // same bits.
  std::vector<UserId> shuffled(members.rbegin(), members.rend());
  Result<TopKResult> second = engine.TopK(shuffled, 6);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->items, first->items);
  EXPECT_EQ(second->scores, first->scores);
  EXPECT_EQ(engine.cache()->hits(), 1u);
  EXPECT_EQ(engine.cache()->misses(), 1u);
}

// ---------------------------------------------------------------------------
// Freeze determinism

TEST_F(ServeTest, FreezingTwiceIsByteIdentical) {
  // A fresh model with the same seed/config freezes to the same bytes:
  // eval trees are seeded per node, so artifact content cannot depend on
  // scoring history or map iteration order.
  KgagConfig config;
  config.propagation.dim = 16;
  config.propagation.depth = 2;
  config.propagation.sample_size = 4;
  config.propagation.final_tanh = false;
  config.eval_tree_samples = 2;
  config.seed = 77;
  auto model = KgagModel::Create(dataset_, config);
  ASSERT_TRUE(model.ok());
  Result<FrozenModel> again = FreezeKgagModel(model->get());
  ASSERT_TRUE(again.ok());
  std::string bytes_a, bytes_b;
  ASSERT_TRUE(EncodeFrozenModel(*frozen_, &bytes_a).ok());
  ASSERT_TRUE(EncodeFrozenModel(*again, &bytes_b).ok());
  EXPECT_EQ(bytes_a, bytes_b);
}

// ---------------------------------------------------------------------------
// Quantized artifacts (DESIGN.md §11)

TEST_F(ServeTest, Fp64ArtifactCarriesNoQuantChunk) {
  // Backward compatibility both ways: full-precision artifacts encode
  // byte-identically to the pre-quantization format (no QNTM chunk), so
  // old readers keep working and fp32-era golden files keep matching.
  std::string bytes;
  ASSERT_TRUE(EncodeFrozenModel(*frozen_, &bytes).ok());
  EXPECT_EQ(bytes.find("QNTM"), std::string::npos);
  EXPECT_EQ(bytes.find("QUSR"), std::string::npos);
  EXPECT_NE(bytes.find("UEMB"), std::string::npos);
}

TEST_F(ServeTest, QuantizedArtifactsRoundTripByteStably) {
  for (QuantType type :
       {QuantType::kFp32, QuantType::kFp16, QuantType::kInt8}) {
    Result<FrozenModel> q = QuantizeFrozenModel(
        *frozen_, type, type == QuantType::kInt8 ? 8 : 0);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    std::string bytes;
    ASSERT_TRUE(EncodeFrozenModel(*q, &bytes).ok());
    EXPECT_NE(bytes.find("QNTM"), std::string::npos);
    Result<FrozenModel> decoded = DecodeFrozenModel(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->quant, type);
    EXPECT_EQ(decoded->q_user, q->q_user);
    EXPECT_EQ(decoded->q_item, q->q_item);
    std::string re_encoded;
    ASSERT_TRUE(EncodeFrozenModel(*decoded, &re_encoded).ok());
    EXPECT_EQ(bytes, re_encoded) << QuantTypeName(type);
  }
}

TEST_F(ServeTest, UnknownQuantTypeTagIsRejectedWithClearError) {
  Result<FrozenModel> q =
      QuantizeFrozenModel(*frozen_, QuantType::kInt8, 0);
  ASSERT_TRUE(q.ok());
  std::string bytes;
  ASSERT_TRUE(EncodeFrozenModel(*q, &bytes).ok());
  // Patch the QNTM payload's type byte through the chunk layer so the
  // CRCs stay valid — simulating an artifact written by a newer build
  // with a quant tier this reader does not know.
  std::vector<ckpt::Chunk> chunks;
  ASSERT_TRUE(ckpt::DecodeContainer("KGAGSRV1", bytes, &chunks).ok());
  bool patched = false;
  for (ckpt::Chunk& c : chunks) {
    if (c.tag == ckpt::MakeTag('Q', 'N', 'T', 'M')) {
      c.payload[0] = 42;
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  std::string evil;
  ASSERT_TRUE(ckpt::EncodeContainer("KGAGSRV1", chunks, &evil).ok());
  Result<FrozenModel> decoded = DecodeFrozenModel(evil);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("unknown quantization type"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST_F(ServeTest, QuantizedArtifactCorruptionIsRejected) {
  Result<FrozenModel> q =
      QuantizeFrozenModel(*frozen_, QuantType::kInt8, 0);
  ASSERT_TRUE(q.ok());
  std::string bytes;
  ASSERT_TRUE(EncodeFrozenModel(*q, &bytes).ok());
  for (size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    EXPECT_FALSE(DecodeFrozenModel(corrupt).ok())
        << "bit flip at byte " << pos << " was not detected";
  }
}

TEST_F(ServeTest, QuantizeFrozenModelValidatesInput) {
  // Only fp64 models quantize; re-quantizing and absurd blocks fail.
  Result<FrozenModel> q =
      QuantizeFrozenModel(*frozen_, QuantType::kInt8, 0);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(QuantizeFrozenModel(*q, QuantType::kFp16, 0).ok());
  EXPECT_FALSE(
      QuantizeFrozenModel(*frozen_,
                          QuantType::kInt8,
                          static_cast<uint32_t>(frozen_->dim) + 1)
          .ok());
  // kFp64 is the identity: same bytes out.
  Result<FrozenModel> same =
      QuantizeFrozenModel(*frozen_, QuantType::kFp64, 0);
  ASSERT_TRUE(same.ok());
  std::string a, b;
  ASSERT_TRUE(EncodeFrozenModel(*frozen_, &a).ok());
  ASSERT_TRUE(EncodeFrozenModel(*same, &b).ok());
  EXPECT_EQ(a, b);
}

TEST_F(ServeTest, QuantizedServingMatchesQuantizedEvalBitwise) {
  // The eval/serve shared-path contract holds per precision tier: the
  // ServingEngine and FrozenGroupScorer see identical scores on the SAME
  // quantized artifact (across-tier differences are expected and gated
  // by tools/quant_report instead).
  for (QuantType type :
       {QuantType::kFp32, QuantType::kFp16, QuantType::kInt8}) {
    Result<FrozenModel> q = QuantizeFrozenModel(*frozen_, type, 0);
    ASSERT_TRUE(q.ok());
    ServingEngine::Options opts;
    opts.max_batch = 4;
    ServingEngine engine(&*q, opts);
    const GroupId g = 1;
    Result<GroupRep> rep = BuildGroupRep(*q, Members(g));
    ASSERT_TRUE(rep.ok());
    const std::vector<double> all = ScoreAllItems(*q, *rep);
    // Subset scoring agrees with full-catalog scoring bit-for-bit.
    std::vector<ItemId> subset = {0, 3, 7, 11};
    const std::vector<double> sub = ScoreItems(*q, *rep, subset);
    for (size_t i = 0; i < subset.size(); ++i) {
      ASSERT_EQ(sub[i], all[static_cast<size_t>(subset[i])])
          << QuantTypeName(type);
    }
    // Engine TopK returns the catalog argmaxes of the same score vector.
    Result<TopKResult> resp = engine.TopK(Members(g), 5);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    const std::vector<size_t> want =
        TopKIndices(std::span<const double>(all), 5);
    ASSERT_EQ(resp->items.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(resp->items[i], static_cast<ItemId>(want[i]))
          << QuantTypeName(type);
      EXPECT_EQ(resp->scores[i], all[want[i]]) << QuantTypeName(type);
    }
  }
}

// ---------------------------------------------------------------------------
// Serving observability: failure counters, cache gauge, request-scoped
// spans, SLO wiring and the /statusz JSON (DESIGN.md §12).

uint64_t CounterValue(const char* name) {
  const obs::Counter* c = obs::MetricsRegistry::Global().FindCounter(name);
  return c != nullptr ? c->Value() : 0;
}

TEST_F(ServeTest, FailedRequestsCountButStayOutOfLatencyStats) {
  const uint64_t failed_before = CounterValue("serve.requests.failed");
  ServingEngine::Options opts;
  opts.max_batch = 4;
  opts.batch_deadline_us = 0;
  opts.cache_capacity = 0;
  opts.record_latency = true;
  opts.slo_objectives = {{"avail", /*target=*/0.5,
                          /*latency_threshold_us=*/0.0,
                          /*count_errors=*/true}};
  ServingEngine engine(frozen_, opts);
  ASSERT_NE(engine.slo(), nullptr);

  EXPECT_FALSE(engine.TopK({}, 5).ok());
  Result<TopKResult> via_queue =
      engine.Submit({.members = {}, .k = 5, .exclude_seen = {}}).get();
  EXPECT_FALSE(via_queue.ok());

  // Failed requests never count as served and never enter the latency
  // samples — a 2us rejection must not drag p50 down.
  EXPECT_EQ(engine.requests_served(), 0u);
  EXPECT_TRUE(engine.TakeLatencySamples().empty());
#if KGAG_OBS_ACTIVE
  EXPECT_EQ(CounterValue("serve.requests.failed") - failed_before, 2u);
#else
  (void)failed_before;
#endif
  // ...but they DO burn SLO error budget.
  const auto states = engine.slo()->Evaluate();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].short_window.bad, 2u);
  EXPECT_EQ(states[0].short_window.total, 2u);
}

TEST_F(ServeTest, ShutdownRejectsNewSubmissions) {
  ServingEngine engine(frozen_, {.max_batch = 4, .batch_deadline_us = 0,
                                 .cache_capacity = 4});
  Result<TopKResult> before_stop =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}})
          .get();
  ASSERT_TRUE(before_stop.ok()) << before_stop.status().ToString();

  const uint64_t rejected_before = CounterValue("serve.requests.rejected");
  engine.Shutdown();
  engine.Shutdown();  // idempotent
  Result<TopKResult> after_stop =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}})
          .get();
  EXPECT_FALSE(after_stop.ok());
#if KGAG_OBS_ACTIVE
  EXPECT_EQ(CounterValue("serve.requests.rejected") - rejected_before, 1u);
#else
  (void)rejected_before;
#endif
  // The synchronous path needs no dispatcher and keeps answering.
  EXPECT_TRUE(engine.TopK(Members(0), 3).ok());
  EXPECT_EQ(engine.requests_served(), 2u);
}

#if KGAG_OBS_ACTIVE

TEST_F(ServeTest, CacheSizeGaugeTracksOccupancy) {
  ServingEngine engine(frozen_, {.max_batch = 1, .cache_capacity = 4});
  // Three distinct single-member groups: three cache entries.
  for (UserId u : {UserId{0}, UserId{1}, UserId{2}}) {
    ASSERT_TRUE(engine.TopK(std::vector<UserId>{u}, 3).ok());
  }
  const obs::Gauge* size_gauge =
      obs::MetricsRegistry::Global().FindGauge("serve.cache.size");
  ASSERT_NE(size_gauge, nullptr);
  EXPECT_DOUBLE_EQ(size_gauge->Value(), 3.0);
  engine.cache()->Clear();
  EXPECT_DOUBLE_EQ(size_gauge->Value(), 0.0);
}

TEST_F(ServeTest, RequestScopedSpansShareOneIdAcrossThreads) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  ServingEngine engine(frozen_, {.max_batch = 4, .batch_deadline_us = 1000,
                                 .cache_capacity = 4});
  Result<TopKResult> r =
      engine.Submit({.members = Members(0), .k = 3, .exclude_seen = {}})
          .get();
  // .get() returns at set_value, but the dispatcher's serve.reply span
  // records at scope exit just after — join the dispatcher so every
  // span is flushed before collecting.
  engine.Shutdown();
  rec.SetEnabled(false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const std::vector<obs::TraceEvent> events = rec.Collect();
  // The submit span carries the request's id; every other span of that
  // request — including those recorded on the dispatcher thread — must
  // carry the same one.
  uint64_t req = 0;
  uint32_t submit_tid = 0;
  for (const obs::TraceEvent& e : events) {
    if (std::string_view(e.name) == "serve.submit") {
      req = e.req;
      submit_tid = e.tid;
    }
  }
  ASSERT_NE(req, 0u) << "serve.submit span missing or unlinked";

  std::unordered_set<std::string_view> linked_names;
  bool crossed_thread = false;
  for (const obs::TraceEvent& e : events) {
    if (e.req == req) {
      linked_names.insert(e.name);
      crossed_thread = crossed_thread || e.tid != submit_tid;
    }
  }
  for (const char* name : {"serve.submit", "serve.queue_wait",
                           "serve.rep_build", "serve.topk", "serve.reply"}) {
    EXPECT_TRUE(linked_names.count(name) > 0) << "missing span: " << name;
  }
  EXPECT_TRUE(crossed_thread)
      << "linked spans must span the submitter/dispatcher thread boundary";
  // The batch envelope is batch-scoped, not request-scoped.
  for (const obs::TraceEvent& e : events) {
    if (std::string_view(e.name) == "serve.batch") {
      EXPECT_EQ(e.req, 0u);
    }
  }
  rec.Clear();
}

#endif  // KGAG_OBS_ACTIVE

TEST_F(ServeTest, StatusJsonReportsEngineAndSloState) {
  ServingEngine::Options opts;
  opts.max_batch = 2;
  opts.cache_capacity = 8;
  opts.slo_objectives = obs::DefaultServingObjectives();
  ServingEngine engine(frozen_, opts);
  ASSERT_TRUE(engine.TopK(Members(0), 3).ok());

  const std::string json = engine.StatusJson();
  EXPECT_NE(json.find("\"requests_served\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_batch\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);

  // Without objectives there is no tracker and no slo section.
  ServingEngine plain(frozen_, {.max_batch = 1, .cache_capacity = 0});
  EXPECT_EQ(plain.slo(), nullptr);
  EXPECT_EQ(plain.StatusJson().find("\"slo\""), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace kgag
