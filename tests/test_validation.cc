#include "models/validation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace kgag {
namespace {

/// Scorer whose quality is dialed externally: quality q scores the true
/// positives q and everything else 0, so validation hit rises with q.
class DialScorer : public GroupScorer {
 public:
  explicit DialScorer(const GroupRecDataset* ds) {
    for (const Interaction& it : ds->split.valid) {
      positives_.insert((static_cast<int64_t>(it.row) << 32) | it.item);
    }
  }
  double quality = 0.0;
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override {
    std::vector<double> out(items.size(), 0.0);
    for (size_t i = 0; i < items.size(); ++i) {
      const int64_t key = (static_cast<int64_t>(g) << 32) | items[i];
      if (positives_.count(key)) out[i] = quality;
    }
    return out;
  }

 private:
  std::unordered_set<int64_t> positives_;
};

TEST(ValidationSelectorTest, TracksBestAndRestores) {
  GroupRecDataset ds = testing_util::TinyRand();
  Rng rng(3);
  ParameterStore store;
  Parameter* p = store.Create("w", 2, 2, Init::kNormal01, &rng);

  ValidationSelector selector(&ds, &store);
  DialScorer scorer(&ds);

  // Epoch 1: mediocre scorer, weights A.
  scorer.quality = 0.0;  // ties with non-positives -> low hit
  p->value = Tensor{{1, 1}, {1, 1}};
  const double h1 = selector.Observe(&scorer);

  // Epoch 2: perfect scorer, weights B — this must be the snapshot.
  scorer.quality = 1.0;
  p->value = Tensor{{2, 2}, {2, 2}};
  const double h2 = selector.Observe(&scorer);
  EXPECT_GT(h2, h1);

  // Epoch 3: scorer degrades again, weights C.
  scorer.quality = -1.0;
  p->value = Tensor{{3, 3}, {3, 3}};
  const double h3 = selector.Observe(&scorer);
  EXPECT_LT(h3, h2);

  selector.RestoreBest();
  EXPECT_EQ(p->value.at(0, 0), 2.0) << "best-epoch weights restored";
  EXPECT_DOUBLE_EQ(selector.best_hit(), h2);
  ASSERT_EQ(selector.history().size(), 3u);
}

TEST(ValidationSelectorTest, RestoreWithoutObserveIsNoop) {
  GroupRecDataset ds = testing_util::TinyRand();
  Rng rng(3);
  ParameterStore store;
  Parameter* p = store.Create("w", 1, 1, Init::kNormal01, &rng);
  const double before = p->value.item();
  ValidationSelector selector(&ds, &store);
  selector.RestoreBest();
  EXPECT_EQ(p->value.item(), before);
}

TEST(ValidationSelectorTest, FirstEpochAlwaysSnapshots) {
  GroupRecDataset ds = testing_util::TinyRand();
  Rng rng(3);
  ParameterStore store;
  Parameter* p = store.Create("w", 1, 1, Init::kNormal01, &rng);
  p->value = Tensor::Scalar1(7.0);
  ValidationSelector selector(&ds, &store);
  DialScorer scorer(&ds);
  scorer.quality = -5.0;  // terrible, but it's the only epoch
  selector.Observe(&scorer);
  p->value = Tensor::Scalar1(9.0);
  selector.RestoreBest();
  EXPECT_EQ(p->value.item(), 7.0);
}

TEST(ValidationSelectorTest, CapsValidationSlice) {
  GroupRecDataset ds = testing_util::TinyRand();
  Rng rng(3);
  ParameterStore store;
  store.Create("w", 1, 1, Init::kNormal01, &rng);
  // A cap of 1 interaction still works and evaluates exactly one group.
  ValidationSelector selector(&ds, &store, 5, 1);
  DialScorer scorer(&ds);
  scorer.quality = 1.0;
  const double hit = selector.Observe(&scorer);
  EXPECT_GE(hit, 0.0);
  EXPECT_LE(hit, 1.0);
}

}  // namespace
}  // namespace kgag
