#include <gtest/gtest.h>

#include "baselines/aggregation.h"
#include "baselines/kgcn.h"
#include "baselines/mf.h"
#include "baselines/mosan.h"
#include "baselines/trivial.h"
#include "eval/ranking_evaluator.h"
#include "test_util.h"

namespace kgag {
namespace {

MfConfig FastMfConfig() {
  MfConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.seed = 19;
  return cfg;
}

TEST(AggregationTest, StrategiesComputeCorrectly) {
  std::vector<double> scores{0.2, -0.5, 0.9};
  EXPECT_NEAR(AggregateScores(scores, ScoreAggregation::kAverage), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(AggregateScores(scores, ScoreAggregation::kLeastMisery),
                   -0.5);
  EXPECT_DOUBLE_EQ(AggregateScores(scores, ScoreAggregation::kMaxPleasure),
                   0.9);
}

TEST(AggregationTest, NamesAreStable) {
  EXPECT_STREQ(AggregationName(ScoreAggregation::kAverage), "AVG");
  EXPECT_STREQ(AggregationName(ScoreAggregation::kLeastMisery), "LM");
  EXPECT_STREQ(AggregationName(ScoreAggregation::kMaxPleasure), "MP");
}

TEST(AggregationTest, TapeVersionsMatchScalarVersions) {
  Tensor member_scores{{0.2}, {-0.5}, {0.9}};
  std::vector<double> plain{0.2, -0.5, 0.9};
  for (auto agg : {ScoreAggregation::kAverage, ScoreAggregation::kLeastMisery,
                   ScoreAggregation::kMaxPleasure}) {
    Tape tape;
    Var v = tape.Constant(member_scores);
    Var out = AggregateScoresOnTape(&tape, v, agg);
    EXPECT_NEAR(tape.value(out).item(), AggregateScores(plain, agg), 1e-12);
  }
}

class MfTest : public ::testing::TestWithParam<ScoreAggregation> {};

TEST_P(MfTest, TrainsAndScores) {
  GroupRecDataset ds = testing_util::TinyRand();
  MfGroupRecommender model(&ds, FastMfConfig(), GetParam());
  model.Fit();
  ASSERT_EQ(model.epoch_losses().size(), 4u);
  EXPECT_LT(model.epoch_losses().back(), model.epoch_losses().front() + 1e-9);
  std::vector<ItemId> items{0, 1, 2, 3};
  auto scores = model.ScoreGroup(0, items);
  EXPECT_EQ(scores.size(), 4u);
  auto user_scores = model.ScoreUser(0, items);
  EXPECT_EQ(user_scores.size(), 4u);
}

TEST_P(MfTest, GroupScoreIsAggregatedMemberScore) {
  GroupRecDataset ds = testing_util::TinyRand();
  MfGroupRecommender model(&ds, FastMfConfig(), GetParam());
  model.Fit();
  std::vector<ItemId> items{0, 1, 2};
  auto group_scores = model.ScoreGroup(0, items);
  auto members = ds.groups.MembersOf(0);
  for (size_t i = 0; i < items.size(); ++i) {
    std::vector<double> member_scores;
    for (UserId u : members) {
      member_scores.push_back(model.ScoreUser(u, {&items[i], 1})[0]);
    }
    EXPECT_NEAR(group_scores[i], AggregateScores(member_scores, GetParam()),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MfTest,
    ::testing::Values(ScoreAggregation::kAverage,
                      ScoreAggregation::kLeastMisery,
                      ScoreAggregation::kMaxPleasure),
    [](const ::testing::TestParamInfo<ScoreAggregation>& param_info) {
      return AggregationName(param_info.param);
    });

TEST(MfTest, NameIncludesStrategy) {
  GroupRecDataset ds = testing_util::TinyRand();
  MfGroupRecommender lm(&ds, FastMfConfig(), ScoreAggregation::kLeastMisery);
  EXPECT_EQ(lm.name(), "CF+LM");
}

TEST(KgcnTest, CreatesTrainsAndScores) {
  GroupRecDataset ds = testing_util::TinyRand();
  KgcnConfig cfg;
  cfg.base = FastMfConfig();
  cfg.base.epochs = 2;
  cfg.propagation.dim = 8;
  cfg.propagation.depth = 2;
  cfg.propagation.sample_size = 2;
  auto model =
      KgcnGroupRecommender::Create(&ds, cfg, ScoreAggregation::kAverage);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  (*model)->Fit();
  EXPECT_EQ((*model)->name(), "KGCN+AVG");
  std::vector<ItemId> items{0, 1, 2};
  auto scores = (*model)->ScoreGroup(0, items);
  EXPECT_EQ(scores.size(), 3u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
  auto user_scores = (*model)->ScoreUser(1, items);
  EXPECT_EQ(user_scores.size(), 3u);
}

TEST(KgcnTest, LossDecreases) {
  GroupRecDataset ds = testing_util::TinyRand();
  KgcnConfig cfg;
  cfg.base = FastMfConfig();
  cfg.base.epochs = 5;
  cfg.propagation.dim = 8;
  cfg.propagation.depth = 1;
  cfg.propagation.sample_size = 2;
  auto model =
      KgcnGroupRecommender::Create(&ds, cfg, ScoreAggregation::kLeastMisery);
  ASSERT_TRUE(model.ok());
  (*model)->Fit();
  const auto& losses = (*model)->epoch_losses();
  EXPECT_LT(losses.back(), losses.front());
}

TEST(MosanTest, TrainsAndScores) {
  GroupRecDataset ds = testing_util::TinyRand();
  MosanGroupRecommender model(&ds, FastMfConfig());
  model.Fit();
  EXPECT_EQ(model.name(), "MoSAN");
  EXPECT_LT(model.epoch_losses().back(), model.epoch_losses().front());
  std::vector<ItemId> items{0, 1, 2, 3, 4};
  auto scores = model.ScoreGroup(0, items);
  EXPECT_EQ(scores.size(), 5u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(MosanTest, GroupRepIndependentOfCandidate) {
  // MoSAN's structural limitation (motivates KGAG's SP): scores must be a
  // fixed linear functional of item embeddings, i.e. the same group rep
  // scores every candidate.
  GroupRecDataset ds = testing_util::TinyRand();
  MosanGroupRecommender model(&ds, FastMfConfig());
  model.Fit();
  std::vector<ItemId> ab{0, 1};
  std::vector<ItemId> ba{1, 0};
  auto s1 = model.ScoreGroup(2, ab);
  auto s2 = model.ScoreGroup(2, ba);
  EXPECT_DOUBLE_EQ(s1[0], s2[1]);
  EXPECT_DOUBLE_EQ(s1[1], s2[0]);
}

TEST(TrivialTest, PopularityPrefersFrequentItems) {
  GroupRecDataset ds = testing_util::TinyRand();
  PopularityRecommender pop(&ds);
  pop.Fit();
  // Count training interactions per item and check ordering agreement.
  std::vector<int> counts(ds.num_items, 0);
  for (const Interaction& it : ds.split.train) ++counts[it.item];
  ItemId most = 0, least = 0;
  for (ItemId v = 0; v < ds.num_items; ++v) {
    if (counts[v] > counts[most]) most = v;
    if (counts[v] < counts[least]) least = v;
  }
  std::vector<ItemId> items{most, least};
  auto scores = pop.ScoreGroup(0, items);
  EXPECT_GE(scores[0], scores[1]);
}

TEST(TrivialTest, RandomIsDeterministicPerSeed) {
  RandomRecommender a(5), b(5), c(6);
  std::vector<ItemId> items{0, 1, 2, 3};
  EXPECT_EQ(a.ScoreGroup(0, items), b.ScoreGroup(0, items));
  EXPECT_NE(a.ScoreGroup(0, items), c.ScoreGroup(0, items));
}

TEST(BaselineComparisonTest, TrainedMfBeatsRandom) {
  GroupRecDataset ds = testing_util::TinyRand();
  MfConfig cfg = FastMfConfig();
  cfg.epochs = 8;
  MfGroupRecommender mf(&ds, cfg, ScoreAggregation::kAverage);
  mf.Fit();
  RankingEvaluator eval(&ds, 5);
  RandomRecommender random(123);
  EXPECT_GT(eval.EvaluateTest(&mf).hit_at_k,
            eval.EvaluateTest(&random).hit_at_k);
}

}  // namespace
}  // namespace kgag
