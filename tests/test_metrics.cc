#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kgag {
namespace {

TEST(TopKTest, OrdersDescending) {
  std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
  auto top = TopKIndices(scores, 3);
  EXPECT_EQ(top, (std::vector<size_t>{1, 3, 2}));
}

TEST(TopKTest, KLargerThanInput) {
  std::vector<double> scores{0.2, 0.1};
  auto top = TopKIndices(scores, 10);
  EXPECT_EQ(top, (std::vector<size_t>{0, 1}));
}

TEST(TopKTest, TiesBreakTowardSmallerIndex) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  auto top = TopKIndices(scores, 2);
  EXPECT_EQ(top, (std::vector<size_t>{0, 1}));
}

TEST(HitAtKTest, HitAndMiss) {
  std::vector<ItemId> ranked{4, 7, 1, 9, 0};
  EXPECT_EQ(HitAtK(ranked, {1}, 5), 1.0);
  EXPECT_EQ(HitAtK(ranked, {1}, 2), 0.0);  // 1 is at rank 3
  EXPECT_EQ(HitAtK(ranked, {42}, 5), 0.0);
  EXPECT_EQ(HitAtK(ranked, {0, 42}, 5), 1.0);
}

TEST(RecallAtKTest, PartialRecall) {
  std::vector<ItemId> ranked{4, 7, 1, 9, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {4, 1, 33, 44}, 5), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {4, 7}, 2), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {9}, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {}, 5), 0.0);
}

TEST(RecallAtKTest, EqualsHitWithSinglePositive) {
  // The Yelp phenomenon of Table II: with exactly one positive per group,
  // rec@k == hit@k.
  std::vector<ItemId> ranked{4, 7, 1};
  for (ItemId pos : {4, 7, 1, 99}) {
    EXPECT_DOUBLE_EQ(RecallAtK(ranked, {pos}, 3), HitAtK(ranked, {pos}, 3));
  }
}

TEST(NdcgAtKTest, PerfectRankingIsOne) {
  std::vector<ItemId> ranked{1, 2, 3, 4, 5};
  EXPECT_NEAR(NdcgAtK(ranked, {1, 2}, 5), 1.0, 1e-12);
}

TEST(NdcgAtKTest, LowerForWorseRanking) {
  std::vector<ItemId> best{1, 9, 8, 7, 6};
  std::vector<ItemId> worse{9, 8, 7, 6, 1};
  EXPECT_GT(NdcgAtK(best, {1}, 5), NdcgAtK(worse, {1}, 5));
  EXPECT_EQ(NdcgAtK(worse, {1}, 4), 0.0);
}

TEST(NdcgAtKTest, KnownValue) {
  // Positive at rank 2 (0-indexed 1): DCG = 1/log2(3), IDCG = 1.
  std::vector<ItemId> ranked{5, 1};
  EXPECT_NEAR(NdcgAtK(ranked, {1}, 2), 1.0 / std::log2(3.0), 1e-12);
}

TEST(MetricsBoundsProperty, AllInUnitInterval) {
  std::vector<ItemId> ranked{3, 1, 4, 7, 5, 9, 2, 6};
  std::vector<std::unordered_set<ItemId>> positive_sets = {
      {3}, {9, 2}, {100}, {3, 1, 4, 5}, {6}};
  for (const auto& pos : positive_sets) {
    for (size_t k : {1u, 3u, 5u, 8u, 20u}) {
      for (double m : {HitAtK(ranked, pos, k), RecallAtK(ranked, pos, k),
                       NdcgAtK(ranked, pos, k)}) {
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace kgag
