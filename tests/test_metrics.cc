#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace kgag {
namespace {

TEST(TopKTest, OrdersDescending) {
  std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
  auto top = TopKIndices(scores, 3);
  EXPECT_EQ(top, (std::vector<size_t>{1, 3, 2}));
}

TEST(TopKTest, KLargerThanInput) {
  std::vector<double> scores{0.2, 0.1};
  auto top = TopKIndices(scores, 10);
  EXPECT_EQ(top, (std::vector<size_t>{0, 1}));
}

TEST(TopKTest, TiesBreakTowardSmallerIndex) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  auto top = TopKIndices(scores, 2);
  EXPECT_EQ(top, (std::vector<size_t>{0, 1}));
}

TEST(TopKTest, KZeroAndEmptyInput) {
  std::vector<double> scores{0.3, 0.1};
  EXPECT_TRUE(TopKIndices(scores, 0).empty());
  EXPECT_TRUE(TopKIndices(std::vector<double>{}, 5).empty());
}

/// The partial_sort formulation TopKIndices historically used; kept here
/// as the reference oracle for the bounded-heap implementation.
std::vector<size_t> TopKReference(const std::vector<double>& scores,
                                  size_t k) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](size_t a, size_t b) {
                      return scores[a] != scores[b] ? scores[a] > scores[b]
                                                    : a < b;
                    });
  idx.resize(k);
  return idx;
}

TEST(TopKTest, HeapMatchesPartialSortReferenceOnRandomData) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 200));
    std::vector<double> scores(n);
    for (double& s : scores) {
      // Coarse quantization forces plenty of exact ties.
      s = static_cast<double>(rng.UniformInt(0, 7));
    }
    for (size_t k : {size_t{1}, size_t{3}, n / 2, n, n + 7}) {
      EXPECT_EQ(TopKIndices(scores, k), TopKReference(scores, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(TopKTest, PredicateFiltersBeforeSelection) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.6, 0.5};
  // Drop the top two via the keep-predicate: selection happens among the
  // survivors only.
  auto top = TopKIndicesWhere(scores, 2, [](size_t i) { return i >= 2; });
  EXPECT_EQ(top, (std::vector<size_t>{2, 3}));
  // Nothing kept -> nothing returned.
  EXPECT_TRUE(
      TopKIndicesWhere(scores, 3, [](size_t) { return false; }).empty());
}

TEST(TopKItemsTest, MapsIndicesThroughThePool) {
  std::vector<double> scores{0.1, 0.9, 0.5};
  std::vector<ItemId> pool{10, 20, 30};
  EXPECT_EQ(TopKItems(scores, pool, 2), (std::vector<ItemId>{20, 30}));
  // k beyond the pool clamps.
  EXPECT_EQ(TopKItems(scores, pool, 9), (std::vector<ItemId>{20, 30, 10}));
}

TEST(HitAtKTest, HitAndMiss) {
  std::vector<ItemId> ranked{4, 7, 1, 9, 0};
  EXPECT_EQ(HitAtK(ranked, {1}, 5), 1.0);
  EXPECT_EQ(HitAtK(ranked, {1}, 2), 0.0);  // 1 is at rank 3
  EXPECT_EQ(HitAtK(ranked, {42}, 5), 0.0);
  EXPECT_EQ(HitAtK(ranked, {0, 42}, 5), 1.0);
}

TEST(RecallAtKTest, PartialRecall) {
  std::vector<ItemId> ranked{4, 7, 1, 9, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {4, 1, 33, 44}, 5), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {4, 7}, 2), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {9}, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {}, 5), 0.0);
}

TEST(RecallAtKTest, EqualsHitWithSinglePositive) {
  // The Yelp phenomenon of Table II: with exactly one positive per group,
  // rec@k == hit@k.
  std::vector<ItemId> ranked{4, 7, 1};
  for (ItemId pos : {4, 7, 1, 99}) {
    EXPECT_DOUBLE_EQ(RecallAtK(ranked, {pos}, 3), HitAtK(ranked, {pos}, 3));
  }
}

TEST(NdcgAtKTest, PerfectRankingIsOne) {
  std::vector<ItemId> ranked{1, 2, 3, 4, 5};
  EXPECT_NEAR(NdcgAtK(ranked, {1, 2}, 5), 1.0, 1e-12);
}

TEST(NdcgAtKTest, LowerForWorseRanking) {
  std::vector<ItemId> best{1, 9, 8, 7, 6};
  std::vector<ItemId> worse{9, 8, 7, 6, 1};
  EXPECT_GT(NdcgAtK(best, {1}, 5), NdcgAtK(worse, {1}, 5));
  EXPECT_EQ(NdcgAtK(worse, {1}, 4), 0.0);
}

TEST(NdcgAtKTest, KnownValue) {
  // Positive at rank 2 (0-indexed 1): DCG = 1/log2(3), IDCG = 1.
  std::vector<ItemId> ranked{5, 1};
  EXPECT_NEAR(NdcgAtK(ranked, {1}, 2), 1.0 / std::log2(3.0), 1e-12);
}

TEST(MetricsBoundsProperty, AllInUnitInterval) {
  std::vector<ItemId> ranked{3, 1, 4, 7, 5, 9, 2, 6};
  std::vector<std::unordered_set<ItemId>> positive_sets = {
      {3}, {9, 2}, {100}, {3, 1, 4, 5}, {6}};
  for (const auto& pos : positive_sets) {
    for (size_t k : {1u, 3u, 5u, 8u, 20u}) {
      for (double m : {HitAtK(ranked, pos, k), RecallAtK(ranked, pos, k),
                       NdcgAtK(ranked, pos, k)}) {
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace kgag
