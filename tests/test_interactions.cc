#include "data/interactions.h"

#include <gtest/gtest.h>

namespace kgag {
namespace {

TEST(InteractionMatrixTest, BasicBuildAndLookup) {
  auto m = InteractionMatrix::FromPairs(
      3, 5, {{0, 1}, {0, 3}, {2, 0}, {2, 4}, {2, 2}});
  EXPECT_EQ(m.num_rows(), 3);
  EXPECT_EQ(m.num_items(), 5);
  EXPECT_EQ(m.num_interactions(), 5u);
  EXPECT_TRUE(m.Contains(0, 1));
  EXPECT_TRUE(m.Contains(2, 4));
  EXPECT_FALSE(m.Contains(0, 0));
  EXPECT_FALSE(m.Contains(1, 1));
}

TEST(InteractionMatrixTest, RowsAreSorted) {
  auto m = InteractionMatrix::FromPairs(1, 10, {{0, 7}, {0, 2}, {0, 5}});
  auto items = m.ItemsOf(0);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], 2);
  EXPECT_EQ(items[1], 5);
  EXPECT_EQ(items[2], 7);
}

TEST(InteractionMatrixTest, DeduplicatesPairs) {
  auto m = InteractionMatrix::FromPairs(2, 3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(m.num_interactions(), 2u);
  EXPECT_EQ(m.RowDegree(0), 1u);
}

TEST(InteractionMatrixTest, EmptyRowsAllowed) {
  auto m = InteractionMatrix::FromPairs(4, 3, {{3, 0}});
  EXPECT_EQ(m.RowDegree(0), 0u);
  EXPECT_EQ(m.RowDegree(3), 1u);
  EXPECT_TRUE(m.ItemsOf(1).empty());
}

TEST(InteractionMatrixTest, ToPairsRoundTrips) {
  std::vector<Interaction> pairs = {{0, 1}, {1, 0}, {1, 2}};
  auto m = InteractionMatrix::FromPairs(2, 3, pairs);
  auto out = m.ToPairs();
  EXPECT_EQ(out, pairs);  // row-major sorted order matches input here
}

TEST(InteractionMatrixTest, MeanRowDegree) {
  auto m = InteractionMatrix::FromPairs(4, 3, {{0, 0}, {0, 1}, {1, 0}, {3, 2}});
  EXPECT_DOUBLE_EQ(m.MeanRowDegree(), 1.0);
}

TEST(InteractionMatrixTest, DefaultIsEmpty) {
  InteractionMatrix m;
  EXPECT_EQ(m.num_rows(), 0);
  EXPECT_EQ(m.num_interactions(), 0u);
}

TEST(GroupTableTest, MembershipAccess) {
  GroupTable t({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.num_groups(), 2);
  EXPECT_EQ(t.GroupSize(0), 3u);
  EXPECT_EQ(t.MembersOf(1)[2], 6);
}

TEST(GroupTableTest, AddGroupReturnsSequentialIds) {
  GroupTable t;
  EXPECT_EQ(t.AddGroup({0, 1}), 0);
  EXPECT_EQ(t.AddGroup({2, 3}), 1);
  EXPECT_EQ(t.num_groups(), 2);
}

}  // namespace
}  // namespace kgag
