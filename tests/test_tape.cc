#include "tensor/tape.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/grad_check.h"
#include "tensor/parameter.h"

namespace kgag {
namespace {

// ---- Forward-value tests ----------------------------------------------------

class TapeForwardTest : public ::testing::Test {
 protected:
  TapeForwardTest() : rng_(1) {}
  Rng rng_;
  ParameterStore store_;
  Tape tape_;
};

TEST_F(TapeForwardTest, ConstantHoldsValue) {
  Var c = tape_.Constant(Tensor{{1, 2}, {3, 4}});
  EXPECT_EQ(tape_.value(c).at(1, 0), 3.0);
}

TEST_F(TapeForwardTest, GatherSelectsRows) {
  Parameter* p = store_.CreateZeros("t", 4, 2);
  p->value = Tensor{{0, 1}, {10, 11}, {20, 21}, {30, 31}};
  Var g = tape_.Gather(p, {2, 0, 2});
  EXPECT_EQ(tape_.value(g).rows(), 3u);
  EXPECT_EQ(tape_.value(g).at(0, 1), 21.0);
  EXPECT_EQ(tape_.value(g).at(1, 0), 0.0);
  EXPECT_EQ(tape_.value(g).at(2, 0), 20.0);
}

TEST_F(TapeForwardTest, SoftmaxRowsSumToOne) {
  Var x = tape_.Constant(Tensor{{1, 2, 3}, {-1, 0, 5}});
  Var y = tape_.SoftmaxRows(x);
  const Tensor& v = tape_.value(y);
  for (size_t r = 0; r < 2; ++r) {
    Scalar sum = 0;
    for (size_t c = 0; c < 3; ++c) {
      sum += v.at(r, c);
      EXPECT_GT(v.at(r, c), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Monotone in the input.
  EXPECT_GT(v.at(0, 2), v.at(0, 0));
}

TEST_F(TapeForwardTest, SoftmaxIsShiftInvariantAndStable) {
  Var a = tape_.SoftmaxRows(tape_.Constant(Tensor{{1000.0, 1001.0}}));
  // Copy: value() references are invalidated by subsequent op creation.
  const Tensor v = tape_.value(a);
  EXPECT_FALSE(std::isnan(v.at(0, 0)));
  EXPECT_NEAR(v.at(0, 0) + v.at(0, 1), 1.0, 1e-12);
  Var b = tape_.SoftmaxRows(tape_.Constant(Tensor{{0.0, 1.0}}));
  EXPECT_NEAR(tape_.value(b).at(0, 1), v.at(0, 1), 1e-12);
}

TEST_F(TapeForwardTest, ReluSigmoidTanhSoftplusValues) {
  Var x = tape_.Constant(Tensor{{-2, 0, 2}});
  EXPECT_EQ(tape_.value(tape_.Relu(x)).at(0, 0), 0.0);
  EXPECT_EQ(tape_.value(tape_.Relu(x)).at(0, 2), 2.0);
  EXPECT_NEAR(tape_.value(tape_.Sigmoid(x)).at(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(tape_.value(tape_.Tanh(x)).at(0, 2), std::tanh(2.0), 1e-12);
  EXPECT_NEAR(tape_.value(tape_.Softplus(x)).at(0, 1), std::log(2.0), 1e-12);
}

TEST_F(TapeForwardTest, SoftplusStableForLargeInputs) {
  Var x = tape_.Constant(Tensor{{-800.0, 800.0}});
  const Tensor& y = tape_.value(tape_.Softplus(x));
  EXPECT_NEAR(y.at(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(y.at(0, 1), 800.0, 1e-9);
}

TEST_F(TapeForwardTest, ReductionsAndRowOps) {
  Var x = tape_.Constant(Tensor{{1, 2}, {3, 4}});
  EXPECT_EQ(tape_.value(tape_.Sum(x)).item(), 10.0);
  EXPECT_EQ(tape_.value(tape_.Mean(x)).item(), 2.5);
  EXPECT_TRUE(AllClose(tape_.value(tape_.SumRows(x)), Tensor{{4, 6}}));
  EXPECT_TRUE(AllClose(tape_.value(tape_.MeanRows(x)), Tensor{{2, 3}}));
  EXPECT_EQ(tape_.value(tape_.MinAll(x)).item(), 1.0);
  EXPECT_EQ(tape_.value(tape_.MaxAll(x)).item(), 4.0);
}

TEST_F(TapeForwardTest, RowDotComputesPerRow) {
  Var a = tape_.Constant(Tensor{{1, 2}, {3, 4}});
  Var b = tape_.Constant(Tensor{{5, 6}, {7, 8}});
  const Tensor& v = tape_.value(tape_.RowDot(a, b));
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_EQ(v.at(0, 0), 17.0);
  EXPECT_EQ(v.at(1, 0), 53.0);
}

TEST_F(TapeForwardTest, ConcatAndSlice) {
  Var a = tape_.Constant(Tensor{{1, 2}});
  Var b = tape_.Constant(Tensor{{3, 4, 5}});
  const Tensor& cat = tape_.value(tape_.ConcatCols({a, b}));
  EXPECT_EQ(cat.cols(), 5u);
  EXPECT_EQ(cat.at(0, 4), 5.0);

  Var c = tape_.Constant(Tensor{{1, 2}, {3, 4}});
  const Tensor& rows = tape_.value(tape_.ConcatRows({c, a}));
  EXPECT_EQ(rows.rows(), 3u);
  EXPECT_EQ(rows.at(2, 1), 2.0);

  EXPECT_TRUE(AllClose(tape_.value(tape_.SliceRow(c, 1)), Tensor{{3, 4}}));
}

TEST_F(TapeForwardTest, ReshapeAndRepeat) {
  Var x = tape_.Constant(Tensor{{1, 2, 3, 4}});
  const Tensor& r = tape_.value(tape_.Reshape(x, 2, 2));
  EXPECT_EQ(r.at(1, 0), 3.0);
  const Tensor& rep = tape_.value(tape_.RepeatRows(x, 3));
  EXPECT_EQ(rep.rows(), 3u);
  EXPECT_EQ(rep.at(2, 3), 4.0);
}

TEST_F(TapeForwardTest, SegmentWeightedSumRows) {
  // 2 segments of K=2 neighbors, d=2.
  Var w = tape_.Constant(Tensor{{0.25, 0.75}, {1.0, 0.0}});
  Var v = tape_.Constant(Tensor{{1, 0}, {0, 1}, {2, 2}, {3, 3}});
  const Tensor& out = tape_.value(tape_.SegmentWeightedSumRows(w, v));
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_NEAR(out.at(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(out.at(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(out.at(1, 0), 2.0, 1e-12);
}

TEST_F(TapeForwardTest, MatMulAgainstTensorHelper) {
  Parameter* a = store_.CreateZeros("a", 2, 3);
  Parameter* b = store_.CreateZeros("b", 3, 2);
  Initialize(&a->value, Init::kXavierUniform, &rng_);
  Initialize(&b->value, Init::kXavierUniform, &rng_);
  Var va = tape_.Leaf(a);
  Var vb = tape_.Leaf(b);
  EXPECT_TRUE(
      AllClose(tape_.value(tape_.MatMul(va, vb)), MatMul(a->value, b->value)));
}

// ---- Gradient checks ---------------------------------------------------------

// Each case builds a scalar loss from two generic parameter matrices; the
// numerical checker perturbs every weight.
struct GradCase {
  const char* name;
  // a: 3x4, b: 4x2 parameters.
  std::function<Var(Tape*, Parameter*, Parameter*)> build;
};

class TapeGradTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(TapeGradTest, AnalyticMatchesNumeric) {
  Rng rng(99);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 4, Init::kXavierUniform, &rng);
  Parameter* b = store.Create("b", 4, 2, Init::kXavierUniform, &rng);
  const auto& build = GetParam().build;

  auto loss_fn = [&]() {
    Tape tape;
    return tape.value(build(&tape, a, b)).item();
  };
  auto backward_fn = [&]() {
    Tape tape;
    tape.Backward(build(&tape, a, b));
  };
  GradCheckReport report = CheckGradients(&store, loss_fn, backward_fn);
  EXPECT_TRUE(report.ok(1e-4)) << GetParam().name << ": "
                               << report.worst_location
                               << " rel=" << report.max_rel_error;
}

const GradCase kGradCases[] = {
    {"matmul_sum",
     [](Tape* t, Parameter* a, Parameter* b) {
       return t->Sum(t->MatMul(t->Leaf(a), t->Leaf(b)));
     }},
    {"add_sub_mul",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->Leaf(a);
       Var y = t->MatMul(t->Leaf(a), t->Leaf(b));  // 3x2
       Var z = t->MatMul(y, t->Transpose(t->Leaf(b)));  // 3x4
       return t->Sum(t->Mul(t->Sub(t->Add(x, z), x), z));
     }},
    {"sigmoid_mean",
     [](Tape* t, Parameter* a, Parameter* b) {
       return t->Mean(t->Sigmoid(t->MatMul(t->Leaf(a), t->Leaf(b))));
     }},
    {"tanh_sum",
     [](Tape* t, Parameter* a, Parameter* b) {
       return t->Sum(t->Tanh(t->MatMul(t->Leaf(a), t->Leaf(b))));
     }},
    {"softplus",
     [](Tape* t, Parameter* a, Parameter* b) {
       return t->Sum(t->Softplus(t->MatMul(t->Leaf(a), t->Leaf(b))));
     }},
    {"softmax_weighted",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var scores = t->SoftmaxRows(t->MatMul(t->Leaf(a), t->Leaf(b)));
       Var w = t->Constant(Tensor{{1, -2}, {0.5, 1}, {2, 0}});
       return t->Sum(t->Mul(scores, w));
     }},
    {"rowdot",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->MatMul(t->Leaf(a), t->Leaf(b));  // 3x2
       Var y = t->MatMul(t->Leaf(a), t->Leaf(b));
       return t->Sum(t->RowDot(x, t->Sigmoid(y)));
     }},
    {"concat_cols",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->MatMul(t->Leaf(a), t->Leaf(b));       // 3x2
       Var cat = t->ConcatCols({x, t->Leaf(a)});        // 3x6
       return t->Mean(t->Tanh(cat));
     }},
    {"concat_rows_slice",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->MatMul(t->Leaf(a), t->Leaf(b));  // 3x2
       Var r0 = t->SliceRow(x, 0);
       Var r2 = t->SliceRow(x, 2);
       Var stack = t->ConcatRows({r0, r2, r0});
       return t->Sum(t->Sigmoid(stack));
     }},
    {"reshape_repeat",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->MatMul(t->Leaf(a), t->Leaf(b));   // 3x2
       Var flat = t->Reshape(x, 1, 6);
       Var rep = t->RepeatRows(flat, 4);            // 4x6
       return t->Mean(t->Mul(rep, rep));
     }},
    {"segment_weighted_sum",
     [](Tape* t, Parameter* a, Parameter* b) {
       // weights from a (3x4 -> softmax), values from gathered b rows.
       Var w = t->SoftmaxRows(t->Leaf(a));            // 3x4
       Var vals = t->ConcatRows({t->Leaf(b), t->Leaf(b), t->Leaf(b)});
       Var agg = t->SegmentWeightedSumRows(w, vals);  // 3x2
       return t->Sum(t->Tanh(agg));
     }},
    {"add_row_broadcast",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var bias = t->SliceRow(t->Transpose(t->Leaf(b)), 0);  // 1x4
       return t->Sum(t->Sigmoid(t->AddRowBroadcast(t->Leaf(a), bias)));
     }},
    {"relu_composite",
     [](Tape* t, Parameter* a, Parameter* b) {
       // Shift away from 0 so finite differences don't straddle the kink.
       Var x = t->AddScalar(t->MatMul(t->Leaf(a), t->Leaf(b)), 0.37);
       return t->Sum(t->Relu(x));
     }},
    {"log_of_sigmoid",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->Sigmoid(t->MatMul(t->Leaf(a), t->Leaf(b)));
       return t->Mean(t->Log(x));
     }},
    {"min_max",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->MatMul(t->Leaf(a), t->Leaf(b));
       return t->Add(t->MinAll(x), t->ScalarMul(t->MaxAll(x), 0.5));
     }},
    {"scalar_ops",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var x = t->MatMul(t->Leaf(a), t->Leaf(b));
       return t->Mean(t->AddScalar(t->ScalarMul(t->Neg(x), 1.7), 0.3));
     }},
    {"gather",
     [](Tape* t, Parameter* a, Parameter* b) {
       Var rows = t->Gather(a, {0, 2, 2});  // repeated row: grads must add
       return t->Sum(t->Sigmoid(t->MatMul(rows, t->Leaf(b))));
     }},
};

INSTANTIATE_TEST_SUITE_P(AllOps, TapeGradTest,
                         ::testing::ValuesIn(kGradCases),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                           return std::string(info.param.name);
                         });

TEST(TapeBackwardTest, GradAccumulatesOverMultiplePasses) {
  Rng rng(5);
  ParameterStore store;
  Parameter* p = store.Create("p", 2, 2, Init::kXavierUniform, &rng);
  {
    Tape tape;
    tape.Backward(tape.Sum(tape.Leaf(p)));
  }
  Tensor after_one = p->grad;
  {
    Tape tape;
    tape.Backward(tape.Sum(tape.Leaf(p)));
  }
  Tensor doubled = after_one;
  doubled.Scale(2.0);
  EXPECT_TRUE(AllClose(p->grad, doubled));
}

TEST(TapeBackwardTest, GatherMarksTouchedRowsOnly) {
  Rng rng(5);
  ParameterStore store;
  Parameter* p = store.Create("p", 5, 2, Init::kXavierUniform, &rng);
  Tape tape;
  tape.Backward(tape.Sum(tape.Gather(p, {1, 3})));
  EXPECT_FALSE(p->dense_touched);
  EXPECT_EQ(p->touched_rows.size(), 2u);
  EXPECT_TRUE(p->touched_rows.count(1));
  EXPECT_TRUE(p->touched_rows.count(3));
  EXPECT_EQ(p->grad.at(0, 0), 0.0);
  EXPECT_EQ(p->grad.at(1, 0), 1.0);
}

TEST(TapeBackwardTest, ClearInvalidatesAndReleases) {
  Tape tape;
  Var c = tape.Constant(Tensor::Scalar1(1.0));
  (void)c;
  EXPECT_GT(tape.num_nodes(), 0u);
  tape.Clear();
  EXPECT_EQ(tape.num_nodes(), 0u);
}

// SegmentWeightedSumRows at segment boundaries: the gather routes
// distinct table rows to the first and last slot of each segment, so a
// backward indexing bug (off-by-one on i*K or i*K+K-1) shows up as a
// finite-difference mismatch on those rows specifically.
TEST(TapeSegmentBoundaryTest, GradientsAtSegmentBoundaries) {
  Rng rng(17);
  ParameterStore store;
  Parameter* w = store.Create("w", 3, 4, Init::kXavierUniform, &rng);
  Parameter* table = store.Create("table", 4, 2, Init::kXavierUniform, &rng);
  // 3 segments x K=4 values; boundary slots (k=0, k=3) of each segment
  // pull different rows, and row 3 appears at both kinds of boundary.
  const std::vector<size_t> rows = {3, 0, 1, 2,   // segment 0
                                    0, 1, 2, 3,   // segment 1
                                    2, 3, 0, 1};  // segment 2

  auto build = [&](Tape* t) {
    Var weights = t->Leaf(w);  // raw weights: negative entries included
    Var values = t->Gather(table, rows);
    return t->Sum(t->Tanh(t->SegmentWeightedSumRows(weights, values)));
  };
  auto loss_fn = [&]() {
    Tape tape;
    return tape.value(build(&tape)).item();
  };
  auto backward_fn = [&]() {
    Tape tape;
    tape.Backward(build(&tape));
  };
  GradCheckReport report = CheckGradients(&store, loss_fn, backward_fn);
  EXPECT_TRUE(report.ok(1e-4))
      << report.worst_location << " rel=" << report.max_rel_error;
}

// ---- Arena behaviour --------------------------------------------------------

class TapeArenaTest : public ::testing::Test {
 protected:
  // One forward+backward pass with a size-dependent graph shape.
  static void BuildAndBackward(Tape* tape, Parameter* p, size_t rows) {
    std::vector<size_t> idx(rows);
    for (size_t i = 0; i < rows; ++i) idx[i] = (i * 7) % p->value.rows();
    Var g = tape->Gather(p, idx);
    Var h = tape->Sigmoid(tape->MatMul(g, tape->Transpose(g)));
    tape->Backward(tape->Sum(h));
  }
};

TEST_F(TapeArenaTest, ClearReusesCapacityAcrossVaryingShapes) {
  Rng rng(3);
  ParameterStore store;
  Parameter* p = store.Create("p", 32, 8, Init::kXavierUniform, &rng);
  Tape tape;
  // Warm up with the largest shape, then cycle smaller/odd-sized graphs:
  // the arena must serve them all from the retained block.
  BuildAndBackward(&tape, p, 24);
  store.ZeroGrads();
  tape.Clear();
  EXPECT_EQ(tape.arena().bytes_in_use(), 0u);
  const size_t warm_capacity = tape.arena().capacity();
  const size_t warm_blocks = tape.arena().block_count();
  for (int cycle = 0; cycle < 10; ++cycle) {
    BuildAndBackward(&tape, p, 4 + (static_cast<size_t>(cycle) * 7) % 21);
    store.ZeroGrads();
    tape.Clear();
    EXPECT_EQ(tape.arena().bytes_in_use(), 0u);
  }
  EXPECT_EQ(tape.arena().capacity(), warm_capacity);
  EXPECT_EQ(tape.arena().block_count(), warm_blocks);
}

TEST_F(TapeArenaTest, ArenaAndHeapTapesAgreeBitwise) {
  Rng rng(9);
  ParameterStore store;
  Parameter* p = store.Create("p", 16, 8, Init::kXavierUniform, &rng);

  Tape arena_tape(/*use_arena=*/true);
  BuildAndBackward(&arena_tape, p, 10);
  const Tensor arena_grad = p->grad;  // copy lands on the heap
  store.ZeroGrads();

  Tape heap_tape(/*use_arena=*/false);
  BuildAndBackward(&heap_tape, p, 10);
  ASSERT_EQ(arena_grad.rows(), p->grad.rows());
  for (size_t i = 0; i < arena_grad.size(); ++i) {
    EXPECT_EQ(arena_grad[i], p->grad[i]) << "at " << i;
  }
}

// A reused (warm) tape must produce the same bits as a fresh one: arena
// reuse may not leak state between examples.
TEST_F(TapeArenaTest, WarmTapeMatchesFreshTape) {
  Rng rng(21);
  ParameterStore store;
  Parameter* p = store.Create("p", 16, 8, Init::kXavierUniform, &rng);

  Tape warm;
  for (size_t rows = 3; rows <= 12; rows += 3) {
    BuildAndBackward(&warm, p, rows);
    store.ZeroGrads();
    warm.Clear();
  }
  BuildAndBackward(&warm, p, 7);
  const Tensor warm_grad = p->grad;
  store.ZeroGrads();

  Tape fresh;
  BuildAndBackward(&fresh, p, 7);
  for (size_t i = 0; i < warm_grad.size(); ++i) {
    EXPECT_EQ(warm_grad[i], p->grad[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace kgag
