// Hot-swap tests (DESIGN.md §15): post-swap responses bit-identical to a
// cold load of the new artifact, the cache-epoch coherence invariant (no
// response ever mixes group reps from two model versions), in-flight
// batches draining on the version they captured, zero downtime under
// concurrent load with swaps, and the serve.swap.* surface.
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/synthetic/standard_datasets.h"
#include "gtest/gtest.h"
#include "models/kgag_model.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace serve {
namespace {

/// Two artifacts over the SAME corpus with different parameter draws —
/// the refresh shape: identical id spaces, different scores.
class HotSwapTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    dataset_ = new GroupRecDataset(
        MakeMovieLensRandDataset(/*seed=*/13, /*scale=*/0.12));
    model_a_ = Freeze(/*param_seed=*/101);
    model_b_ = Freeze(/*param_seed=*/202);
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    model_a_.reset();
    model_b_.reset();
  }

  static std::shared_ptr<const FrozenModel> Freeze(uint64_t param_seed) {
    KgagConfig config;
    config.propagation.dim = 8;
    config.propagation.depth = 1;
    config.propagation.sample_size = 3;
    config.propagation.final_tanh = false;
    config.eval_tree_samples = 1;
    config.seed = param_seed;
    auto model = KgagModel::Create(dataset_, config);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    Result<FrozenModel> frozen = FreezeKgagModel(model->get());
    EXPECT_TRUE(frozen.ok()) << frozen.status().ToString();
    return std::make_shared<const FrozenModel>(std::move(*frozen));
  }

  static std::vector<UserId> Members(GroupId g) {
    auto span = dataset_->groups.MembersOf(g);
    return {span.begin(), span.end()};
  }

  /// Ground truth for one group on one artifact through the synchronous
  /// path of a fresh single-model engine (no cache interference).
  static TopKResult Expected(const std::shared_ptr<const FrozenModel>& m,
                             const std::vector<UserId>& members, size_t k) {
    ServingEngine::Options options;
    options.cache_capacity = 0;
    ServingEngine engine(m, options);
    Result<TopKResult> r = engine.TopK(members, k);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  static const GroupRecDataset* dataset_;
  static std::shared_ptr<const FrozenModel> model_a_;
  static std::shared_ptr<const FrozenModel> model_b_;
};

const GroupRecDataset* HotSwapTest::dataset_ = nullptr;
std::shared_ptr<const FrozenModel> HotSwapTest::model_a_;
std::shared_ptr<const FrozenModel> HotSwapTest::model_b_;

TEST_F(HotSwapTest, SwapIsBitIdenticalToColdLoadOfNewArtifact) {
  ServingEngine engine(model_a_, {});
  EXPECT_EQ(engine.model_epoch(), 0u);
  EXPECT_EQ(engine.model_version(), "v0");
  const std::vector<UserId> members = Members(0);
  const size_t k = 12;

  const TopKResult before = *engine.TopK(members, k);
  const TopKResult want_a = Expected(model_a_, members, k);
  ASSERT_EQ(before.items, want_a.items);
  ASSERT_EQ(before.scores, want_a.scores);

  ASSERT_TRUE(engine.SwapModel(model_b_, "release-2").ok());
  EXPECT_EQ(engine.model_epoch(), 1u);
  EXPECT_EQ(engine.model_version(), "release-2");
  EXPECT_EQ(engine.swaps(), 1u);
  EXPECT_EQ(engine.model(), model_b_.get());

  const TopKResult after = *engine.TopK(members, k);
  const TopKResult want_b = Expected(model_b_, members, k);
  EXPECT_EQ(after.items, want_b.items);
  EXPECT_EQ(after.scores, want_b.scores)
      << "post-swap response differs from a cold load of the new artifact";
  // The artifacts genuinely disagree, so the comparison above is load-
  // bearing.
  EXPECT_NE(want_a.scores, want_b.scores);

  EXPECT_FALSE(engine.SwapModel(nullptr).ok());
  EXPECT_EQ(engine.swaps(), 1u);
}

TEST_F(HotSwapTest, CacheEntriesFromOldEpochAreNeverServed) {
  ServingEngine::Options options;
  options.cache_capacity = 64;
  ServingEngine engine(model_a_, options);
  const std::vector<UserId> members = Members(1);
  const size_t k = 8;

  // Populate the epoch-0 cache entry, then prove it hits.
  (void)*engine.TopK(members, k);
  const TopKResult hit = *engine.TopK(members, k);
  EXPECT_TRUE(hit.cache_hit);

  ASSERT_TRUE(engine.SwapModel(model_b_).ok());
  const uint64_t stale_before = engine.cache()->epoch_evictions();
  const TopKResult after = *engine.TopK(members, k);
  EXPECT_FALSE(after.cache_hit)
      << "epoch-0 rep served on the epoch-1 model";
  EXPECT_EQ(engine.cache()->epoch_evictions(), stale_before + 1);
  const TopKResult want_b = Expected(model_b_, members, k);
  EXPECT_EQ(after.items, want_b.items);
  EXPECT_EQ(after.scores, want_b.scores);

  // The rebuilt rep is cached under the new epoch and hits again.
  const TopKResult rehit = *engine.TopK(members, k);
  EXPECT_TRUE(rehit.cache_hit);
  EXPECT_EQ(rehit.scores, want_b.scores);
}

TEST_F(HotSwapTest, InFlightBatchDrainsOnItsCapturedVersion) {
  ServingEngine::Options options;
  options.batch_deadline_us = 0;
  options.cache_capacity = 0;
  ServingEngine engine(model_a_, options);
  const std::vector<UserId> members = Members(2);
  const size_t k = 8;

  std::promise<void> batch_started;
  std::promise<void> resume;
  std::shared_future<void> resume_f = resume.get_future().share();
  std::atomic<bool> first{true};
  engine.SetBatchHookForTest(
      [&](const char* phase, const std::vector<uint64_t>&) {
        if (std::string_view(phase) != "start") return;
        if (!first.exchange(false)) return;
        batch_started.set_value();
        resume_f.wait();  // the batch holds its captured slot here
      });

  TopKRequest req;
  req.members = members;
  req.k = k;
  std::future<Result<TopKResult>> inflight = engine.Submit(req);
  batch_started.get_future().wait();
  // The batch captured epoch 0 and is paused mid-execution; publish the
  // new model NOW.
  ASSERT_TRUE(engine.SwapModel(model_b_).ok());
  resume.set_value();

  Result<TopKResult> drained = inflight.get();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  const TopKResult want_a = Expected(model_a_, members, k);
  EXPECT_EQ(drained->items, want_a.items);
  EXPECT_EQ(drained->scores, want_a.scores)
      << "in-flight batch re-bound to the new model mid-execution";

  // The next admission binds the new version.
  std::future<Result<TopKResult>> next = engine.Submit(std::move(req));
  Result<TopKResult> fresh = next.get();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  const TopKResult want_b = Expected(model_b_, members, k);
  EXPECT_EQ(fresh->scores, want_b.scores);
}

TEST_F(HotSwapTest, ZeroDowntimeAndNoVersionMixingUnderConcurrentLoad) {
  ServingEngine::Options options;
  options.max_batch = 4;
  options.batch_deadline_us = 50;
  options.cache_capacity = 32;
  ServingEngine engine(model_a_, options);

  const size_t k = 10;
  const int kGroups = 4;
  std::vector<std::vector<UserId>> groups;
  std::vector<TopKResult> want_a, want_b;
  for (GroupId g = 0; g < kGroups; ++g) {
    groups.push_back(Members(g));
    want_a.push_back(Expected(model_a_, groups.back(), k));
    want_b.push_back(Expected(model_b_, groups.back(), k));
    ASSERT_NE(want_a.back().scores, want_b.back().scores)
        << "group " << g << " can't distinguish the versions";
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> mixed{0};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t g = (t + i++) % groups.size();
        TopKRequest req;
        req.members = groups[g];
        req.k = k;
        Result<TopKResult> r = engine.Submit(std::move(req)).get();
        if (!r.ok()) {
          ++failed;
          continue;
        }
        // Every response must be EXACTLY version A or version B — any
        // other byte pattern means reps and scores mixed versions.
        if (r->scores != want_a[g].scores &&
            r->scores != want_b[g].scores) {
          ++mixed;
        }
        ++completed;
      }
    });
  }

  // Swap back and forth under load.
  const int kSwaps = 20;
  for (int s = 0; s < kSwaps; ++s) {
    ASSERT_TRUE(engine.SwapModel(s % 2 == 0 ? model_b_ : model_a_).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  for (std::thread& th : clients) th.join();

  EXPECT_EQ(failed.load(), 0u) << "a swap failed or shed a request";
  EXPECT_EQ(mixed.load(), 0u) << "a response mixed model versions";
  EXPECT_GT(completed.load(), 0u);
  EXPECT_EQ(engine.swaps(), static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(engine.model_epoch(), static_cast<uint64_t>(kSwaps));
}

TEST_F(HotSwapTest, StatusJsonExposesModelVersionAndSwaps) {
  ServingEngine engine(model_a_, {});
  ASSERT_TRUE(engine.SwapModel(model_b_, "canary").ok());
  const std::string json = engine.StatusJson();
  EXPECT_NE(json.find("\"version\":\"canary\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"swaps\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace serve
}  // namespace kgag
