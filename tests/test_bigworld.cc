// Big-world generator + streaming freeze tests (DESIGN.md §14): the
// counter-based generator must be chunk-invariant and deterministic (two
// processes with the same spec must agree on every byte of the world),
// group/KG structure must satisfy its documented invariants, and the
// streamed freeze must produce the same artifact regardless of chunk
// size, loadable and score-consistent across both layouts.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "data/synthetic/bigworld.h"
#include "gtest/gtest.h"
#include "serve/bigworld_freeze.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "tensor/quant.h"

namespace kgag {
namespace {

namespace fs = std::filesystem;

std::string TestTmpDir(const std::string& leaf) {
  const char* base = std::getenv("TEST_TMPDIR");
  fs::path dir = (base != nullptr ? fs::path(base)
                                  : fs::temp_directory_path()) /
                 leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

synthetic::BigWorldSpec SmallSpec() {
  synthetic::BigWorldSpec spec;
  spec.num_users = 300;
  spec.num_items = 120;
  spec.num_groups = 40;
  spec.dim = 16;
  spec.group_size = 4;
  spec.num_kg_attrs = 50;
  spec.kg_triples_per_item = 3;
  return spec;
}

TEST(BigWorldGen, RowGenerationIsChunkInvariant) {
  const synthetic::BigWorldGen gen(SmallSpec());
  const uint64_t n = gen.spec().num_users;
  const uint32_t d = gen.spec().dim;
  std::vector<double> whole(n * d);
  gen.UserRows(0, n, whole.data());

  // Any split — including pathological 1-row and prime-sized chunks —
  // must reproduce the same bytes.
  for (uint64_t chunk : {uint64_t{1}, uint64_t{7}, uint64_t{64}, n}) {
    std::vector<double> pieced(n * d);
    for (uint64_t start = 0; start < n; start += chunk) {
      const uint64_t count = std::min(chunk, n - start);
      gen.UserRows(start, count, pieced.data() + start * d);
    }
    EXPECT_EQ(std::memcmp(whole.data(), pieced.data(),
                          whole.size() * sizeof(double)),
              0)
        << "chunk " << chunk;
  }

  // An interior window equals the corresponding slice of the whole.
  std::vector<double> window(10 * d);
  gen.ItemRows(33, 10, window.data());
  std::vector<double> items(gen.spec().num_items * d);
  gen.ItemRows(0, gen.spec().num_items, items.data());
  EXPECT_EQ(std::memcmp(window.data(), items.data() + 33 * d,
                        window.size() * sizeof(double)),
            0);
}

TEST(BigWorldGen, DeterministicPerSpecAndDistinctPerSeed) {
  const synthetic::BigWorldSpec spec = SmallSpec();
  const synthetic::BigWorldGen a(spec);
  const synthetic::BigWorldGen b(spec);
  synthetic::BigWorldSpec other = spec;
  other.seed += 1;
  const synthetic::BigWorldGen c(other);

  std::vector<double> ra(8 * spec.dim), rb(8 * spec.dim), rc(8 * spec.dim);
  a.UserRows(100, 8, ra.data());
  b.UserRows(100, 8, rb.data());
  c.UserRows(100, 8, rc.data());
  EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)), 0);
  EXPECT_NE(std::memcmp(ra.data(), rc.data(), ra.size() * sizeof(double)), 0);

  EXPECT_EQ(a.GroupMembers(7), b.GroupMembers(7));
  std::vector<Triple> ta(6), tb(6);
  a.KgTriples(10, 6, ta.data());
  b.KgTriples(10, 6, tb.data());
  EXPECT_EQ(std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(Triple)), 0);
}

TEST(BigWorldGen, GroupMembersAreCanonical) {
  const synthetic::BigWorldGen gen(SmallSpec());
  for (uint64_t g = 0; g < gen.spec().num_groups; ++g) {
    const std::vector<UserId> members = gen.GroupMembers(g);
    ASSERT_EQ(members.size(), gen.spec().group_size);
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_GE(members[i], 0);
      EXPECT_LT(static_cast<uint64_t>(members[i]), gen.spec().num_users);
      // Sorted strictly ascending = sorted + distinct.
      if (i > 0) EXPECT_LT(members[i - 1], members[i]);
    }
  }
}

TEST(BigWorldGen, KgTriplesRespectEntityPartition) {
  const synthetic::BigWorldGen gen(SmallSpec());
  const synthetic::BigWorldSpec& spec = gen.spec();
  const uint64_t total = spec.NumKgTriples();
  std::vector<Triple> triples(total);
  gen.KgTriples(0, total, triples.data());
  for (uint64_t t = 0; t < total; ++t) {
    // Heads are item entities, tails attribute entities, in order: each
    // item emits its kg_triples_per_item facts consecutively.
    EXPECT_EQ(static_cast<uint64_t>(triples[t].head),
              t / spec.kg_triples_per_item);
    EXPECT_GE(static_cast<uint64_t>(triples[t].tail), spec.num_items);
    EXPECT_LT(static_cast<uint64_t>(triples[t].tail), spec.NumKgEntities());
    EXPECT_GE(triples[t].relation, 0);
    EXPECT_LT(static_cast<uint32_t>(triples[t].relation),
              spec.num_kg_relations);
  }
}

TEST(BigWorldFreeze, ChunkSizeDoesNotChangeTheArtifact) {
  const std::string dir = TestTmpDir("bigworld_chunks");
  const synthetic::BigWorldGen gen(SmallSpec());
  for (QuantType q : {QuantType::kFp16, QuantType::kInt8}) {
    std::string first;
    for (uint64_t chunk : {uint64_t{7}, uint64_t{64}, uint64_t{100000}}) {
      serve::BigWorldFreezeOptions opts;
      opts.quant = q;
      opts.chunk_rows = chunk;
      const std::string path = dir + "/w.srv2";
      ASSERT_TRUE(serve::FreezeBigWorldV2(gen, opts, path).ok());
      std::string bytes;
      ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
      if (first.empty()) {
        first = bytes;
      } else {
        EXPECT_EQ(bytes, first)
            << "chunk " << chunk << " tier " << QuantTypeName(q);
      }
    }
  }
}

TEST(BigWorldFreeze, StreamedArtifactsLoadAndAgreeAcrossLayouts) {
  const std::string dir = TestTmpDir("bigworld_layouts");
  const synthetic::BigWorldGen gen(SmallSpec());
  for (QuantType q : {QuantType::kFp64, QuantType::kFp16, QuantType::kInt8}) {
    serve::BigWorldFreezeOptions opts;
    opts.quant = q;
    opts.chunk_rows = 33;  // force several chunks per table
    const std::string v2 = dir + "/w.srv2";
    const std::string v1 = dir + "/w.srv1";
    ASSERT_TRUE(serve::FreezeBigWorldV2(gen, opts, v2).ok());
    ASSERT_TRUE(serve::FreezeBigWorldV1(gen, opts, v1).ok());

    serve::MmapLoadOptions verify;
    verify.verify_crc = true;
    Result<serve::FrozenModel> mapped = serve::LoadFrozenModelMmap(v2, verify);
    Result<serve::FrozenModel> heap = serve::LoadFrozenModelAuto(v1);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    EXPECT_TRUE(mapped->is_mapped());
    EXPECT_FALSE(heap->is_mapped());
    EXPECT_EQ(mapped->num_users,
              static_cast<int32_t>(gen.spec().num_users));
    EXPECT_EQ(mapped->num_items,
              static_cast<int32_t>(gen.spec().num_items));
    EXPECT_EQ(mapped->dim, static_cast<int32_t>(gen.spec().dim));
    EXPECT_EQ(mapped->quant, q);

    // The world's own groups score bit-identically through either
    // layout: same blobs, same kernels.
    for (uint64_t g = 0; g < 5; ++g) {
      const std::vector<UserId> members = gen.GroupMembers(g);
      Result<serve::GroupRep> rm = serve::BuildGroupRep(*mapped, members);
      Result<serve::GroupRep> rh = serve::BuildGroupRep(*heap, members);
      ASSERT_TRUE(rm.ok() && rh.ok());
      const std::vector<double> sm = serve::ScoreAllItems(*mapped, *rm);
      const std::vector<double> sh = serve::ScoreAllItems(*heap, *rh);
      ASSERT_EQ(sm.size(), sh.size());
      EXPECT_EQ(
          std::memcmp(sm.data(), sh.data(), sm.size() * sizeof(double)), 0)
          << "tier " << QuantTypeName(q) << " group " << g;
    }
  }
}

}  // namespace
}  // namespace kgag
