#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "common/csv_writer.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace kgag {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxxxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string out = t.ToString();
  // Every data line has the same width.
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    const size_t len = nl - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxxxx"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.5497), "0.5497");
  EXPECT_EQ(TablePrinter::Num(1.0, 2), "1.00");
  EXPECT_EQ(TablePrinter::Num(0.123456, 3), "0.123");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only_one"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("only_one"), std::string::npos);
}

TEST(CsvWriterTest, WritesAndEscapes) {
  const std::string path = "/tmp/kgag_csv_test.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path, {"col1", "col2"}).ok());
  ASSERT_TRUE(w.WriteRow({"plain", "has,comma"}).ok());
  ASSERT_TRUE(w.WriteRow({"has\"quote", "x"}).ok());
  ASSERT_TRUE(w.Close().ok());

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "col1,col2");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  CsvWriter w;
  EXPECT_FALSE(w.Open("/nonexistent_dir_xyz/file.csv", {"a"}).ok());
}

TEST(CsvWriterTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_FALSE(w.WriteRow({"a"}).ok());
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 5000.0);
}

}  // namespace
}  // namespace kgag
