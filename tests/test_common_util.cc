#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common/csv_writer.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace kgag {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxxxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string out = t.ToString();
  // Every data line has the same width.
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    const size_t len = nl - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxxxx"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.5497), "0.5497");
  EXPECT_EQ(TablePrinter::Num(1.0, 2), "1.00");
  EXPECT_EQ(TablePrinter::Num(0.123456, 3), "0.123");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only_one"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("only_one"), std::string::npos);
}

TEST(CsvWriterTest, WritesAndEscapes) {
  const std::string path = "/tmp/kgag_csv_test.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path, {"col1", "col2"}).ok());
  ASSERT_TRUE(w.WriteRow({"plain", "has,comma"}).ok());
  ASSERT_TRUE(w.WriteRow({"has\"quote", "x"}).ok());
  ASSERT_TRUE(w.Close().ok());

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "col1,col2");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  CsvWriter w;
  EXPECT_FALSE(w.Open("/nonexistent_dir_xyz/file.csv", {"a"}).ok());
}

TEST(CsvWriterTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_FALSE(w.WriteRow({"a"}).ok());
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 5000.0);
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double s = sw.ElapsedSeconds();
  const double us = sw.ElapsedMicros();
  EXPECT_GT(us, 1000.0);  // slept at least 1ms
  EXPECT_NEAR(us, s * 1e6, 1e5);  // reads taken microseconds apart
}

TEST(StopwatchTest, TickMeasuresLapsNotTotal) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double lap1 = sw.Tick();
  const double lap2 = sw.Tick();  // immediate: a fresh, near-empty lap
  EXPECT_GT(lap1, 1000.0);
  EXPECT_GE(lap2, 0.0);
  EXPECT_LT(lap2, lap1);
  // Laps cover disjoint intervals, so their sum stays under the total.
  EXPECT_LE(lap1 + lap2, sw.ElapsedMicros() + 1.0);
}

TEST(StopwatchTest, RestartResetsLap) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sw.Restart();
  EXPECT_LT(sw.Tick(), 2000.0);
}

TEST(LoggingTest, SinkReceivesFormattedLine) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  LogSink previous = SetLogSink(
      [&captured](LogLevel level, const std::string& line) {
        captured.emplace_back(level, line);
      });
  KGAG_LOG(Warning) << "sink test payload";
  SetLogSink(std::move(previous));

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  const std::string& line = captured[0].second;
  EXPECT_NE(line.find("sink test payload"), std::string::npos) << line;
  EXPECT_NE(line.find("WARN"), std::string::npos) << line;
  EXPECT_NE(line.find("test_common_util.cc"), std::string::npos) << line;
  // ISO-8601 UTC timestamp: [2026-...T...Z and a thread id tag.
  EXPECT_NE(line.find("T"), std::string::npos);
  EXPECT_NE(line.find("Z "), std::string::npos) << line;
  EXPECT_NE(line.find(" t"), std::string::npos) << line;
}

TEST(LoggingTest, SinkRestoreReturnsPrevious) {
  int first_count = 0;
  LogSink original = SetLogSink(
      [&first_count](LogLevel, const std::string&) { ++first_count; });
  // Install a second sink; the first must come back out.
  LogSink first = SetLogSink({});
  ASSERT_TRUE(first);
  first(LogLevel::kInfo, "direct");
  EXPECT_EQ(first_count, 1);
  SetLogSink(std::move(original));
}

TEST(LoggingTest, ThreadIdsAreSmallAndStable) {
  const int id0 = LogThreadId();
  EXPECT_EQ(id0, LogThreadId());  // stable within a thread
  int other = -1;
  std::thread t([&other] { other = LogThreadId(); });
  t.join();
  EXPECT_NE(other, -1);
  EXPECT_NE(other, id0);
}

}  // namespace
}  // namespace kgag
