#include "data/synthetic/group_builder.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic/movielens_gen.h"

namespace kgag {
namespace {

MovieLensWorld SmallWorld(uint64_t seed) {
  MovieLensConfig cfg;
  cfg.num_users = 80;
  cfg.num_movies = 60;
  cfg.num_directors = 10;
  cfg.num_actors = 30;
  cfg.num_genres = 6;
  cfg.num_years = 10;
  cfg.num_studios = 5;
  cfg.num_countries = 4;
  cfg.num_languages = 3;
  cfg.num_series = 5;
  Rng rng(seed);
  return GenerateMovieLensWorld(cfg, &rng);
}

TEST(GroupPositivesTest, ExactDefinition) {
  RatingTable t(3, 4);
  // Item 0: all three rate >= 4 -> positive.
  t.Set(0, 0, 4);
  t.Set(1, 0, 5);
  t.Set(2, 0, 4);
  // Item 1: one member rates 3 -> not positive.
  t.Set(0, 1, 4);
  t.Set(1, 1, 3);
  t.Set(2, 1, 5);
  // Item 2: one member unrated -> not positive.
  t.Set(0, 2, 5);
  t.Set(1, 2, 5);
  // Item 3: all rate 5 -> positive.
  t.Set(0, 3, 5);
  t.Set(1, 3, 5);
  t.Set(2, 3, 5);
  const UserId members[3] = {0, 1, 2};
  // Strict conjunction: veto == mean threshold == 4, lambda 0.
  EXPECT_EQ(GroupPositives(t, members, 4.0, 4, 0.0),
            (std::vector<ItemId>{0, 3}));
  EXPECT_EQ(GroupPositives(t, members, 5.0, 5, 0.0),
            (std::vector<ItemId>{3}));
  // Plain consensus (lambda 0): mean >= 4 with veto floor 3 admits item 1
  // (ratings 4,3,5: mean 4, no veto).
  EXPECT_EQ(GroupPositives(t, members, 4.0, 3, 0.0),
            (std::vector<ItemId>{0, 1, 3}));
  // Enthusiast weighting keeps item 1 comfortably positive (the rating-5
  // member dominates) even at a slightly higher bar that plain mean
  // misses.
  EXPECT_EQ(GroupPositives(t, members, 4.2, 3, 1.0),
            (std::vector<ItemId>{0, 1, 3}));
}

TEST(RandomGroupsTest, SizesAndMembership) {
  MovieLensWorld w = SmallWorld(1);
  GroupBuilderConfig cfg;
  cfg.group_size = 4;
  cfg.num_groups = 30;
  Rng rng(2);
  GroupBuildResult r = BuildRandomGroups(w.ratings, cfg, &rng);
  ASSERT_GT(r.groups.num_groups(), 0);
  for (GroupId g = 0; g < r.groups.num_groups(); ++g) {
    auto members = r.groups.MembersOf(g);
    ASSERT_EQ(members.size(), 4u);
    std::set<UserId> uniq(members.begin(), members.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (UserId u : members) {
      EXPECT_GE(u, 0);
      EXPECT_LT(u, w.num_users);
    }
  }
}

TEST(RandomGroupsTest, EveryGroupHasAtLeastOnePositive) {
  // The anchor-item construction guarantees a non-empty positive set.
  MovieLensWorld w = SmallWorld(3);
  GroupBuilderConfig cfg;
  cfg.group_size = 4;
  cfg.num_groups = 25;
  Rng rng(4);
  GroupBuildResult r = BuildRandomGroups(w.ratings, cfg, &rng);
  for (GroupId g = 0; g < r.groups.num_groups(); ++g) {
    EXPECT_GE(r.group_item.RowDegree(g), 1u) << "group " << g;
  }
}

TEST(RandomGroupsTest, PositivesMatchDefinition) {
  MovieLensWorld w = SmallWorld(5);
  GroupBuilderConfig cfg;
  cfg.group_size = 3;
  cfg.num_groups = 15;
  Rng rng(6);
  GroupBuildResult r = BuildRandomGroups(w.ratings, cfg, &rng);
  for (GroupId g = 0; g < r.groups.num_groups(); ++g) {
    auto expected =
        GroupPositives(w.ratings, r.groups.MembersOf(g), cfg.mean_threshold,
                       cfg.veto_threshold, cfg.enthusiasm_lambda);
    auto actual = r.group_item.ItemsOf(g);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]);
    }
  }
}

TEST(SimilarGroupsTest, PairwisePccAboveThreshold) {
  MovieLensWorld w = SmallWorld(7);
  GroupBuilderConfig cfg;
  cfg.group_size = 3;
  cfg.num_groups = 15;
  cfg.pcc_threshold = 0.75;
  Rng rng(8);
  GroupBuildResult r = BuildSimilarGroups(w.ratings, cfg, &rng);
  ASSERT_GT(r.groups.num_groups(), 0);
  for (GroupId g = 0; g < r.groups.num_groups(); ++g) {
    auto members = r.groups.MembersOf(g);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_GE(PearsonCorrelation(w.ratings, members[i], members[j]),
                  cfg.pcc_threshold)
            << "group " << g;
      }
    }
  }
}

TEST(SimilarGroupsTest, SimiGroupsMoreSimilarThanRand) {
  // The paper's Rand-vs-Simi contrast: mean intra-group PCC must be
  // clearly higher under the similarity constraint.
  MovieLensWorld w = SmallWorld(9);
  GroupBuilderConfig cfg;
  cfg.group_size = 3;
  cfg.num_groups = 20;
  // Must sit above the high baseline correlation of random co-likers in
  // this quality-driven world for the constraint to bind.
  cfg.pcc_threshold = 0.75;
  Rng rng1(10), rng2(10);
  GroupBuildResult rand_r = BuildRandomGroups(w.ratings, cfg, &rng1);
  GroupBuildResult simi_r = BuildSimilarGroups(w.ratings, cfg, &rng2);
  ASSERT_GT(rand_r.groups.num_groups(), 0);
  ASSERT_GT(simi_r.groups.num_groups(), 0);
  const double rand_pcc = MeanIntraGroupPcc(w.ratings, rand_r.groups);
  const double simi_pcc = MeanIntraGroupPcc(w.ratings, simi_r.groups);
  EXPECT_GT(simi_pcc, rand_pcc + 0.03);
  EXPECT_GE(simi_pcc, 0.70);
}

TEST(SimilarGroupsTest, DeterministicGivenSeed) {
  MovieLensWorld w = SmallWorld(11);
  GroupBuilderConfig cfg;
  cfg.group_size = 3;
  cfg.num_groups = 10;
  Rng rng1(12), rng2(12);
  GroupBuildResult a = BuildSimilarGroups(w.ratings, cfg, &rng1);
  GroupBuildResult b = BuildSimilarGroups(w.ratings, cfg, &rng2);
  ASSERT_EQ(a.groups.num_groups(), b.groups.num_groups());
  for (GroupId g = 0; g < a.groups.num_groups(); ++g) {
    auto ma = a.groups.MembersOf(g);
    auto mb = b.groups.MembersOf(g);
    ASSERT_EQ(ma.size(), mb.size());
    for (size_t i = 0; i < ma.size(); ++i) EXPECT_EQ(ma[i], mb[i]);
  }
}

TEST(GroupBuilderTest, GracefulWhenCorpusTooSmall) {
  // A corpus where no item has enough likers returns zero groups rather
  // than looping forever.
  RatingTable t(2, 3);
  t.Set(0, 0, 5);
  GroupBuilderConfig cfg;
  cfg.group_size = 5;
  cfg.num_groups = 4;
  Rng rng(13);
  GroupBuildResult r = BuildRandomGroups(t, cfg, &rng);
  EXPECT_EQ(r.groups.num_groups(), 0);
}

}  // namespace
}  // namespace kgag
