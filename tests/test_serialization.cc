#include "tensor/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "models/kgag_model.h"
#include "test_util.h"

namespace kgag {
namespace {

ParameterStore* MakeStore(std::unique_ptr<ParameterStore>* holder,
                          uint64_t seed) {
  *holder = std::make_unique<ParameterStore>();
  Rng rng(seed);
  (*holder)->Create("emb", 10, 4, Init::kNormal01, &rng);
  (*holder)->Create("w", 4, 4, Init::kXavierUniform, &rng);
  (*holder)->CreateZeros("b", 1, 4);
  return holder->get();
}

TEST(SerializationTest, RoundTripThroughStream) {
  std::unique_ptr<ParameterStore> h1, h2;
  ParameterStore* a = MakeStore(&h1, 1);
  ParameterStore* b = MakeStore(&h2, 2);  // different values, same shapes
  ASSERT_FALSE(AllClose(a->at(0)->value, b->at(0)->value));

  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(*a, &buf).ok());
  ASSERT_TRUE(LoadParameters(&buf, b).ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(AllClose(a->at(i)->value, b->at(i)->value)) << i;
  }
}

TEST(SerializationTest, RoundTripThroughFile) {
  const std::string path = "/tmp/kgag_params_test.bin";
  std::unique_ptr<ParameterStore> h1, h2;
  ParameterStore* a = MakeStore(&h1, 3);
  ParameterStore* b = MakeStore(&h2, 4);
  ASSERT_TRUE(SaveParametersToFile(*a, path).ok());
  ASSERT_TRUE(LoadParametersFromFile(path, b).ok());
  EXPECT_TRUE(AllClose(a->at(1)->value, b->at(1)->value));
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsBadMagic) {
  std::unique_ptr<ParameterStore> h;
  ParameterStore* store = MakeStore(&h, 5);
  std::stringstream buf("definitely not a parameter file");
  Status st = LoadParameters(&buf, store);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(SerializationTest, RejectsCountMismatch) {
  std::unique_ptr<ParameterStore> h1, h2;
  ParameterStore* a = MakeStore(&h1, 6);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(*a, &buf).ok());

  auto small = std::make_unique<ParameterStore>();
  Rng rng(7);
  small->Create("emb", 10, 4, Init::kNormal01, &rng);
  Status st = LoadParameters(&buf, small.get());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("count mismatch"), std::string::npos);
}

TEST(SerializationTest, RejectsNameMismatch) {
  std::unique_ptr<ParameterStore> h1;
  ParameterStore* a = MakeStore(&h1, 8);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(*a, &buf).ok());

  auto renamed = std::make_unique<ParameterStore>();
  Rng rng(9);
  renamed->Create("other_name", 10, 4, Init::kNormal01, &rng);
  renamed->Create("w", 4, 4, Init::kXavierUniform, &rng);
  renamed->CreateZeros("b", 1, 4);
  Status st = LoadParameters(&buf, renamed.get());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("name mismatch"), std::string::npos);
}

TEST(SerializationTest, RejectsShapeMismatch) {
  std::unique_ptr<ParameterStore> h1;
  ParameterStore* a = MakeStore(&h1, 10);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(*a, &buf).ok());

  auto reshaped = std::make_unique<ParameterStore>();
  Rng rng(11);
  reshaped->Create("emb", 10, 8, Init::kNormal01, &rng);  // wrong cols
  reshaped->Create("w", 4, 4, Init::kXavierUniform, &rng);
  reshaped->CreateZeros("b", 1, 4);
  EXPECT_TRUE(LoadParameters(&buf, reshaped.get()).IsInvalidArgument());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  std::unique_ptr<ParameterStore> h1;
  ParameterStore* a = MakeStore(&h1, 12);
  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(*a, &buf).ok());
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  std::unique_ptr<ParameterStore> h2;
  ParameterStore* b = MakeStore(&h2, 13);
  EXPECT_FALSE(LoadParameters(&half, b).ok());
}

TEST(SerializationTest, RejectsHugeNameLength) {
  // A corrupt/hostile name-length prefix must be rejected BEFORE it sizes
  // an allocation: magic + matching count, then name_len = 0xffffffff.
  std::unique_ptr<ParameterStore> h;
  ParameterStore* store = MakeStore(&h, 20);
  std::stringstream buf;
  buf.write("KGAGPS01", 8);
  const uint64_t count = store->params().size();
  buf.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint32_t huge_len = 0xffffffffu;
  buf.write(reinterpret_cast<const char*>(&huge_len), sizeof(huge_len));
  Status st = LoadParameters(&buf, store);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("name length"), std::string::npos);
}

TEST(SerializationTest, FailedFileSaveKeepsPreviousFileIntact) {
  // SaveParametersToFile writes atomically: after overwriting an existing
  // good file, the content is the new version in full — and a save to an
  // unwritable location reports an error without touching anything.
  const std::string path = "/tmp/kgag_params_atomic_test.bin";
  std::unique_ptr<ParameterStore> h1, h2;
  ParameterStore* a = MakeStore(&h1, 21);
  ASSERT_TRUE(SaveParametersToFile(*a, path).ok());

  ParameterStore* b = MakeStore(&h2, 22);
  ASSERT_TRUE(SaveParametersToFile(*b, path).ok());
  std::unique_ptr<ParameterStore> h3;
  ParameterStore* loaded = MakeStore(&h3, 23);
  ASSERT_TRUE(LoadParametersFromFile(path, loaded).ok());
  EXPECT_TRUE(AllClose(b->at(0)->value, loaded->at(0)->value));
  std::remove(path.c_str());

  Status st =
      SaveParametersToFile(*a, "/nonexistent_dir_kgag/params.bin");
  EXPECT_FALSE(st.ok());
}

TEST(SerializationTest, TrainedKgagModelRoundTrips) {
  // Save a trained model, reload into a freshly-constructed one, and
  // verify identical scores — the save/load adoption workflow.
  GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.sample_size = 3;
  cfg.epochs = 2;
  cfg.seed = 99;
  auto trained = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(trained.ok());
  (*trained)->Fit();

  std::stringstream buf;
  ASSERT_TRUE(SaveParameters(*(*trained)->params(), &buf).ok());

  auto fresh = KgagModel::Create(&ds, cfg);  // same architecture, untrained
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(LoadParameters(&buf, (*fresh)->params()).ok());

  std::vector<ItemId> items{0, 1, 2, 3, 4};
  EXPECT_EQ((*trained)->ScoreGroup(0, items), (*fresh)->ScoreGroup(0, items));
}

}  // namespace
}  // namespace kgag
