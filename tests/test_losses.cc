#include "models/losses.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/grad_check.h"

namespace kgag {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

TEST(MarginLossTest, ZeroWhenMarginSatisfied) {
  Tape tape;
  // σ(3) − σ(−3) ≈ 0.905 > 0.4 margin: loss must clamp at 0.
  Var pos = tape.Constant(Tensor::Scalar1(3.0));
  Var neg = tape.Constant(Tensor::Scalar1(-3.0));
  Var loss = MarginPairLoss(&tape, pos, neg, 0.4);
  EXPECT_DOUBLE_EQ(tape.value(loss).item(), 0.0);
}

TEST(MarginLossTest, PositiveWhenViolated) {
  Tape tape;
  Var pos = tape.Constant(Tensor::Scalar1(0.0));
  Var neg = tape.Constant(Tensor::Scalar1(0.0));
  Var loss = MarginPairLoss(&tape, pos, neg, 0.4);
  // σ equal -> difference 0 -> loss = margin.
  EXPECT_NEAR(tape.value(loss).item(), 0.4, 1e-12);
}

TEST(MarginLossTest, ExactValue) {
  Tape tape;
  Var pos = tape.Constant(Tensor::Scalar1(0.5));
  Var neg = tape.Constant(Tensor::Scalar1(1.0));
  Var loss = MarginPairLoss(&tape, pos, neg, 0.3);
  const double expected = Sigmoid(1.0) - Sigmoid(0.5) + 0.3;
  EXPECT_NEAR(tape.value(loss).item(), expected, 1e-12);
}

TEST(MarginLossTest, LargerMarginHarder) {
  // Same scores, growing margin -> non-decreasing loss (Fig. 4 intuition).
  double prev = -1;
  for (double m : {0.2, 0.3, 0.4, 0.5, 0.6}) {
    Tape tape;
    Var pos = tape.Constant(Tensor::Scalar1(0.8));
    Var neg = tape.Constant(Tensor::Scalar1(0.1));
    Var loss = MarginPairLoss(&tape, pos, neg, m);
    const double v = tape.value(loss).item();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(BprLossTest, ValueMatchesFormula) {
  Tape tape;
  Var pos = tape.Constant(Tensor::Scalar1(1.2));
  Var neg = tape.Constant(Tensor::Scalar1(0.4));
  Var loss = BprPairLoss(&tape, pos, neg);
  EXPECT_NEAR(tape.value(loss).item(), -std::log(Sigmoid(0.8)), 1e-12);
}

TEST(BprLossTest, NeverExactlyZero) {
  // Unlike the margin loss, BPR keeps pushing even when well separated.
  Tape tape;
  Var pos = tape.Constant(Tensor::Scalar1(10.0));
  Var neg = tape.Constant(Tensor::Scalar1(-10.0));
  Var loss = BprPairLoss(&tape, pos, neg);
  EXPECT_GT(tape.value(loss).item(), 0.0);
}

TEST(LogisticLossTest, MatchesCrossEntropy) {
  for (double x : {-2.0, -0.5, 0.0, 0.7, 3.0}) {
    for (double y : {0.0, 1.0}) {
      Tape tape;
      Var logit = tape.Constant(Tensor::Scalar1(x));
      Var loss = LogisticLoss(&tape, logit, y);
      const double p = Sigmoid(x);
      const double expected = -y * std::log(p) - (1 - y) * std::log(1 - p);
      EXPECT_NEAR(tape.value(loss).item(), expected, 1e-10)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(LogisticLossTest, StableAtExtremeLogits) {
  Tape tape;
  Var big = tape.Constant(Tensor::Scalar1(500.0));
  EXPECT_NEAR(tape.value(LogisticLoss(&tape, big, 1.0)).item(), 0.0, 1e-9);
  Var small = tape.Constant(Tensor::Scalar1(-500.0));
  EXPECT_NEAR(tape.value(LogisticLoss(&tape, small, 0.0)).item(), 0.0, 1e-9);
  Var worst = tape.Constant(Tensor::Scalar1(-500.0));
  const double v = tape.value(LogisticLoss(&tape, worst, 1.0)).item();
  EXPECT_NEAR(v, 500.0, 1e-6);
  EXPECT_FALSE(std::isinf(v));
}

TEST(LossGradTest, AllLossesGradCheck) {
  Rng rng(3);
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 2, Init::kXavierUniform, &rng);

  for (int which = 0; which < 3; ++which) {
    auto build = [&](Tape* tape) {
      Var leaf = tape->Leaf(w);
      Var pos = tape->SliceRow(tape->Transpose(leaf), 0);
      Var neg = tape->SliceRow(tape->Transpose(leaf), 1);
      switch (which) {
        case 0:
          // Shift so the margin hinge is active but not at the kink.
          return MarginPairLoss(tape, pos, tape->AddScalar(neg, 0.9), 0.45);
        case 1:
          return BprPairLoss(tape, pos, neg);
        default:
          return LogisticLoss(tape, pos, 1.0);
      }
    };
    auto loss_fn = [&]() {
      Tape tape;
      return tape.value(build(&tape)).item();
    };
    auto backward_fn = [&]() {
      Tape tape;
      tape.Backward(build(&tape));
    };
    GradCheckReport report = CheckGradients(&store, loss_fn, backward_fn);
    EXPECT_TRUE(report.ok(1e-4))
        << "loss " << which << ": " << report.worst_location;
  }
}

}  // namespace
}  // namespace kgag
