#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "eval/ranking_evaluator.h"

namespace kgag {
namespace {

TEST(ThreadPoolTest, ConcurrencySmoke) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 128; ++i) {
    futs.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 128);
}

TEST(ThreadPoolTest, ParallelForGrainCoversEachIndexOnce) {
  ThreadPool pool(3);
  for (size_t grain : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(101);
    pool.ParallelFor(hits.size(), grain,
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelForGrainZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 16, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, InWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  bool seen_in_worker = false;
  pool.Submit([&seen_in_worker] {
        seen_in_worker = ThreadPool::InWorkerThread();
      })
      .get();
  EXPECT_TRUE(seen_in_worker);
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  // Every worker is occupied by the outer loop; an inner ParallelFor
  // issued from a worker must run inline instead of waiting on tasks no
  // free worker can ever pick up.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.Submit([&] {
        pool.ParallelFor(hits.size(), 4,
                         [&](size_t i) { hits[i].fetch_add(1); });
      })
      .get();
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, CallerMakesProgressWhenWorkersAreBusy) {
  // Jam the single worker with a task that spins until every loop index
  // has run: the loop can only finish if the caller drains the chunks
  // itself, i.e. caller participation is what unblocks this test.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  auto blocker = pool.Submit([&done] {
    while (done.load() < 16) std::this_thread::yield();
  });
  std::vector<std::atomic<int>> hits(16);
  pool.ParallelFor(hits.size(), 1, [&](size_t i) {
    hits[i].fetch_add(1);
    done.fetch_add(1);
  });
  blocker.get();
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor joins after the queue drains; nothing should throw.
  }
  EXPECT_EQ(count.load(), 32);
}

/// Deterministic, read-only (thread-safe) scorer with dense irrational
/// scores, so any accumulation-order change between the serial and
/// parallel evaluator paths would show up in the last mantissa bits.
class SinScorer : public GroupScorer {
 public:
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override {
    std::vector<double> out(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = std::sin(0.37 * static_cast<double>(g) +
                        1.13 * static_cast<double>(items[i]));
    }
    return out;
  }
};

TEST(ThreadPoolTest, ParallelEvaluatorBitIdenticalToSerial) {
  GroupRecDataset ds;
  ds.name = "pool-test";
  std::vector<Interaction> interactions;
  for (int32_t g = 0; g < 37; ++g) {
    for (int32_t j = 0; j < 4; ++j) {
      interactions.push_back({g, (g * 13 + j * 29) % 97});
    }
  }
  SinScorer scorer;
  RankingEvaluator serial_eval(&ds, 5);
  const EvalResult serial = serial_eval.Evaluate(&scorer, interactions);

  ThreadPool pool(4);
  RankingEvaluator parallel_eval(&ds, 5);
  parallel_eval.set_thread_pool(&pool);
  for (int rep = 0; rep < 5; ++rep) {
    const EvalResult parallel = parallel_eval.Evaluate(&scorer, interactions);
    EXPECT_EQ(serial.num_groups, parallel.num_groups);
    EXPECT_EQ(serial.hit_at_k, parallel.hit_at_k);
    EXPECT_EQ(serial.recall_at_k, parallel.recall_at_k);
    EXPECT_EQ(serial.ndcg_at_k, parallel.ndcg_at_k);
  }
}

}  // namespace
}  // namespace kgag
