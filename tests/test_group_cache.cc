// GroupRepCache tests: hit/miss accounting, LRU eviction order, refresh
// on re-Put, the disabled (capacity 0) mode, and concurrent access.
#include "serve/group_cache.h"

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace kgag {
namespace serve {
namespace {

std::shared_ptr<const GroupRep> MakeRep(std::vector<UserId> members) {
  GroupRep rep;
  rep.members = std::move(members);
  return std::make_shared<const GroupRep>(std::move(rep));
}

TEST(GroupRepCacheTest, MissThenHit) {
  GroupRepCache cache(4);
  const std::vector<UserId> key = {1, 2, 3};
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Put(key, MakeRep(key));
  std::shared_ptr<const GroupRep> rep = cache.Get(key);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->members, key);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GroupRepCacheTest, EvictsLeastRecentlyUsed) {
  GroupRepCache cache(2);
  const std::vector<UserId> a = {1}, b = {2}, c = {3};
  cache.Put(a, MakeRep(a));
  cache.Put(b, MakeRep(b));
  // Touch `a` so `b` becomes the LRU entry, then insert `c`.
  EXPECT_NE(cache.Get(a), nullptr);
  cache.Put(c, MakeRep(c));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get(a), nullptr) << "recently-used entry was evicted";
  EXPECT_EQ(cache.Get(b), nullptr) << "LRU entry survived past capacity";
  EXPECT_NE(cache.Get(c), nullptr);
}

TEST(GroupRepCacheTest, PutRefreshesExistingKey) {
  GroupRepCache cache(2);
  const std::vector<UserId> a = {1}, b = {2}, c = {3};
  cache.Put(a, MakeRep(a));
  cache.Put(b, MakeRep(b));
  // Re-Put `a` (now most recent); inserting `c` must evict `b`.
  cache.Put(a, MakeRep({1}));
  cache.Put(c, MakeRep(c));
  EXPECT_NE(cache.Get(a), nullptr);
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(GroupRepCacheTest, DistinctKeysDoNotCollide) {
  GroupRepCache cache(8);
  const std::vector<UserId> a = {1, 2}, b = {1, 3}, c = {1};
  cache.Put(a, MakeRep(a));
  cache.Put(b, MakeRep(b));
  cache.Put(c, MakeRep(c));
  EXPECT_EQ(cache.Get(a)->members, a);
  EXPECT_EQ(cache.Get(b)->members, b);
  EXPECT_EQ(cache.Get(c)->members, c);
}

TEST(GroupRepCacheTest, ZeroCapacityDisablesCaching) {
  GroupRepCache cache(0);
  const std::vector<UserId> key = {1, 2};
  cache.Put(key, MakeRep(key));
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(GroupRepCacheTest, HitRateIsZeroBeforeAnyLookup) {
  GroupRepCache cache(4);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
}

TEST(GroupRepCacheTest, SharedPtrEntriesSurviveEviction) {
  GroupRepCache cache(1);
  const std::vector<UserId> a = {1}, b = {2};
  cache.Put(a, MakeRep(a));
  std::shared_ptr<const GroupRep> held = cache.Get(a);
  ASSERT_NE(held, nullptr);
  cache.Put(b, MakeRep(b));  // evicts `a`
  EXPECT_EQ(cache.Get(a), nullptr);
  // The borrowed pointer stays valid for the in-flight request.
  EXPECT_EQ(held->members, a);
}

TEST(GroupRepCacheTest, ConcurrentGetsAndPutsAreSafe) {
  GroupRepCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::vector<UserId> key = {static_cast<UserId>((t + i) % 32)};
        if (cache.Get(key) == nullptr) cache.Put(key, MakeRep(key));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(), 2000u);
  EXPECT_LE(cache.size(), 16u);
}

// ---------------------------------------------------------------------------
// Byte bound

std::shared_ptr<const GroupRep> MakeSizedRep(std::vector<UserId> members,
                                             int dim) {
  GroupRep rep;
  rep.member_emb = Tensor(static_cast<int>(members.size()), dim);
  rep.pi.assign(members.size(), 0.0);
  rep.members = std::move(members);
  return std::make_shared<const GroupRep>(std::move(rep));
}

TEST(GroupRepCacheTest, ByteBoundEvictsBeforeCapacityDoes) {
  // Each 4-member dim-64 rep is ~2.3 KB; a 6 KB bound holds two of them
  // even though the entry capacity (64) never binds.
  const size_t entry = GroupRepCache::ApproxEntryBytes(
      {1, 2, 3, 4}, *MakeSizedRep({1, 2, 3, 4}, 64));
  GroupRepCache cache(64, /*max_bytes=*/2 * entry + entry / 2);
  for (UserId base = 0; base < 40; base += 4) {
    const std::vector<UserId> key = {base, base + 1, base + 2, base + 3};
    cache.Put(key, MakeSizedRep(key, 64));
    EXPECT_LE(cache.bytes(), cache.max_bytes());
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 8u);
  // Newest entries survive, LRU order within the byte budget.
  EXPECT_NE(cache.Get({36, 37, 38, 39}), nullptr);
  EXPECT_NE(cache.Get({32, 33, 34, 35}), nullptr);
  EXPECT_EQ(cache.Get({0, 1, 2, 3}), nullptr);
}

TEST(GroupRepCacheTest, ByteBoundNeverEvictsTheOnlyEntry) {
  // One oversized rep exceeds the bound by itself; the cache keeps it
  // (an always-empty cache helps nobody) instead of thrash-evicting.
  GroupRepCache cache(8, /*max_bytes=*/64);
  const std::vector<UserId> key = {1, 2, 3, 4};
  cache.Put(key, MakeSizedRep(key, 64));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.bytes(), cache.max_bytes());
  EXPECT_NE(cache.Get(key), nullptr);
  // A second entry still triggers eviction back down to one.
  const std::vector<UserId> other = {5, 6, 7, 8};
  cache.Put(other, MakeSizedRep(other, 64));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get(other), nullptr);
}

TEST(GroupRepCacheTest, RefreshingAKeyAdjustsBytesNotSize) {
  GroupRepCache cache(4, /*max_bytes=*/1 << 20);
  const std::vector<UserId> key = {1, 2};
  cache.Put(key, MakeSizedRep(key, 16));
  const size_t small = cache.bytes();
  cache.Put(key, MakeSizedRep(key, 128));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.bytes(), small);
  cache.Put(key, MakeSizedRep(key, 16));
  EXPECT_EQ(cache.bytes(), small);
}

// ---------------------------------------------------------------------------
// Epoch tags (hot-swap coherence)

TEST(GroupRepCacheTest, EpochMismatchIsAMissAndEvictsTheStaleEntry) {
  GroupRepCache cache(4);
  const std::vector<UserId> key = {1, 2, 3};
  cache.Put(key, MakeRep(key), /*epoch=*/0);
  ASSERT_NE(cache.Get(key, 0), nullptr);

  // The same key read under the next model epoch must NOT return the
  // epoch-0 rep — that would mix model versions inside one response.
  EXPECT_EQ(cache.Get(key, 1), nullptr);
  EXPECT_EQ(cache.epoch_evictions(), 1u);
  EXPECT_EQ(cache.size(), 0u) << "stale entry lingered after the miss";

  // Re-populated under epoch 1, it hits for epoch-1 readers only.
  cache.Put(key, MakeRep(key), 1);
  EXPECT_NE(cache.Get(key, 1), nullptr);
  EXPECT_EQ(cache.Get(key, 2), nullptr);
}

TEST(GroupRepCacheTest, DrainingOldEpochReaderCannotResurrectStaleRep) {
  GroupRepCache cache(4);
  const std::vector<UserId> key = {7};
  cache.Put(key, MakeRep(key), /*epoch=*/1);
  // A batch still draining on epoch 0 asks for the key: the epoch-1
  // entry is not valid for it either — epochs must match exactly.
  EXPECT_EQ(cache.Get(key, 0), nullptr);
  EXPECT_EQ(cache.epoch_evictions(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace kgag
