// GroupRepCache tests: hit/miss accounting, LRU eviction order, refresh
// on re-Put, the disabled (capacity 0) mode, and concurrent access.
#include "serve/group_cache.h"

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace kgag {
namespace serve {
namespace {

std::shared_ptr<const GroupRep> MakeRep(std::vector<UserId> members) {
  GroupRep rep;
  rep.members = std::move(members);
  return std::make_shared<const GroupRep>(std::move(rep));
}

TEST(GroupRepCacheTest, MissThenHit) {
  GroupRepCache cache(4);
  const std::vector<UserId> key = {1, 2, 3};
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Put(key, MakeRep(key));
  std::shared_ptr<const GroupRep> rep = cache.Get(key);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->members, key);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GroupRepCacheTest, EvictsLeastRecentlyUsed) {
  GroupRepCache cache(2);
  const std::vector<UserId> a = {1}, b = {2}, c = {3};
  cache.Put(a, MakeRep(a));
  cache.Put(b, MakeRep(b));
  // Touch `a` so `b` becomes the LRU entry, then insert `c`.
  EXPECT_NE(cache.Get(a), nullptr);
  cache.Put(c, MakeRep(c));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get(a), nullptr) << "recently-used entry was evicted";
  EXPECT_EQ(cache.Get(b), nullptr) << "LRU entry survived past capacity";
  EXPECT_NE(cache.Get(c), nullptr);
}

TEST(GroupRepCacheTest, PutRefreshesExistingKey) {
  GroupRepCache cache(2);
  const std::vector<UserId> a = {1}, b = {2}, c = {3};
  cache.Put(a, MakeRep(a));
  cache.Put(b, MakeRep(b));
  // Re-Put `a` (now most recent); inserting `c` must evict `b`.
  cache.Put(a, MakeRep({1}));
  cache.Put(c, MakeRep(c));
  EXPECT_NE(cache.Get(a), nullptr);
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(GroupRepCacheTest, DistinctKeysDoNotCollide) {
  GroupRepCache cache(8);
  const std::vector<UserId> a = {1, 2}, b = {1, 3}, c = {1};
  cache.Put(a, MakeRep(a));
  cache.Put(b, MakeRep(b));
  cache.Put(c, MakeRep(c));
  EXPECT_EQ(cache.Get(a)->members, a);
  EXPECT_EQ(cache.Get(b)->members, b);
  EXPECT_EQ(cache.Get(c)->members, c);
}

TEST(GroupRepCacheTest, ZeroCapacityDisablesCaching) {
  GroupRepCache cache(0);
  const std::vector<UserId> key = {1, 2};
  cache.Put(key, MakeRep(key));
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(GroupRepCacheTest, HitRateIsZeroBeforeAnyLookup) {
  GroupRepCache cache(4);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
}

TEST(GroupRepCacheTest, SharedPtrEntriesSurviveEviction) {
  GroupRepCache cache(1);
  const std::vector<UserId> a = {1}, b = {2};
  cache.Put(a, MakeRep(a));
  std::shared_ptr<const GroupRep> held = cache.Get(a);
  ASSERT_NE(held, nullptr);
  cache.Put(b, MakeRep(b));  // evicts `a`
  EXPECT_EQ(cache.Get(a), nullptr);
  // The borrowed pointer stays valid for the in-flight request.
  EXPECT_EQ(held->members, a);
}

TEST(GroupRepCacheTest, ConcurrentGetsAndPutsAreSafe) {
  GroupRepCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::vector<UserId> key = {static_cast<UserId>((t + i) % 32)};
        if (cache.Get(key) == nullptr) cache.Put(key, MakeRep(key));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(), 2000u);
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace serve
}  // namespace kgag
