// Quantized storage and kernel tests (DESIGN.md §11): half conversions,
// quantization error bounds, serialization robustness, and — load-bearing
// for the serving bit-identity guarantee — property tests that the
// dispatched QGemm*/SoftmaxScoreReduce tiers match their scalar
// references EXACTLY on this machine's selected ISA tier.
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace kgag {
namespace {

TEST(HalfConversion, ExactValuesRoundTrip) {
  // Everything a half can represent survives float -> half -> float.
  const float exact[] = {0.0f, -0.0f, 1.0f,  -1.0f,   0.5f,
                         2.0f, 65504.0f, -65504.0f, 6.103515625e-5f,
                         1.5f, 0.0999755859375f};
  for (float f : exact) {
    const float back = HalfToFloat(FloatToHalf(f));
    EXPECT_EQ(back, f) << f;
  }
  // Signed zero keeps its sign bit.
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000u);
  EXPECT_EQ(FloatToHalf(0.0f), 0x0000u);
}

TEST(HalfConversion, RoundsToNearestEven) {
  // Near 1.0 a half ULP is 2^-10; 1 + 2^-11 is exactly halfway between
  // 1.0 and 1 + 2^-10, and ties-to-even rounds down to 1.0 (even
  // mantissa).
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 4.8828125e-4f)), 1.0f);
  // Just above the halfway point rounds up to the next half.
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 4.9e-4f)), 1.0009765625f);
}

TEST(HalfConversion, OverflowAndSpecials) {
  EXPECT_EQ(HalfToFloat(FloatToHalf(1e6f)),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(HalfToFloat(FloatToHalf(-1e6f)),
            -std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isnan(HalfToFloat(
      FloatToHalf(std::numeric_limits<float>::quiet_NaN()))));
  // Subnormal halves survive the round trip too.
  const float tiny = 5.960464477539063e-8f;  // smallest subnormal half
  EXPECT_EQ(HalfToFloat(FloatToHalf(tiny)), tiny);
}

TEST(HalfConversion, AgreesWithDoubleRounding) {
  // Cross-check the bit algorithm against the obvious (but slow)
  // reference: round via the value grid.
  Rng rng(11);
  for (int t = 0; t < 2000; ++t) {
    const float f = static_cast<float>(rng.Uniform(-70000.0, 70000.0));
    const uint16_t h = FloatToHalf(f);
    const float v = HalfToFloat(h);
    if (std::abs(f) <= 65504.0f) {
      // |f - v| must be at most half a ULP of v's binade.
      const float next = HalfToFloat(static_cast<uint16_t>(
          (h & 0x7fffu) == 0x7bffu ? h : h + 1));
      EXPECT_LE(std::abs(f - v), std::abs(next - v))
          << "f=" << f << " v=" << v;
    }
  }
}

TEST(Quantize, Int8ErrorBoundedByHalfScale) {
  Rng rng(5);
  Tensor t(17, 23);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.Uniform(-3.0, 3.0);
  }
  for (uint32_t block : {0u, 1u, 5u, 8u, 23u, 64u}) {
    const QuantizedMatrix q = QuantizeMatrix(t, QuantType::kInt8, block);
    const Tensor back = DequantizeMatrix(q);
    const size_t spr = q.ScalesPerRow();
    const size_t bs = block == 0 ? 23 : block;
    for (size_t r = 0; r < 17; ++r) {
      for (size_t c = 0; c < 23; ++c) {
        const double scale =
            static_cast<double>(q.RowScales(r)[block == 0 ? 0 : c / bs]);
        EXPECT_LE(std::abs(back.at(r, c) - t.at(r, c)), scale * 0.5 + 1e-12)
            << "block=" << block << " r=" << r << " c=" << c;
      }
    }
    ASSERT_EQ(spr, block == 0 ? 1u : (23 + block - 1) / block);
  }
}

TEST(Quantize, Int8ZeroRowHasZeroScale) {
  Tensor t(2, 4);
  t.at(1, 2) = 0.5;  // row 0 stays all-zero
  const QuantizedMatrix q = QuantizeMatrix(t, QuantType::kInt8, 0);
  EXPECT_EQ(q.RowScales(0)[0], 0.0f);
  const Tensor back = DequantizeMatrix(q);
  for (size_t c = 0; c < 4; ++c) EXPECT_EQ(back.at(0, c), 0.0);
  // The row max always maps to code ±127: it reconstructs to
  // 127 * float(|max| / 127), within one float rounding of the input.
  EXPECT_EQ(q.data[1 * 4 + 2], static_cast<uint8_t>(127));
  EXPECT_NEAR(back.at(1, 2), 0.5, 1e-7);
}

TEST(Quantize, Fp16AndFp32MatchScalarNarrowing) {
  Rng rng(6);
  Tensor t(5, 9);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.Uniform(-2.0, 2.0);
  }
  const QuantizedMatrix q32 = QuantizeMatrix(t, QuantType::kFp32);
  const QuantizedMatrix q16 = QuantizeMatrix(t, QuantType::kFp16);
  const Tensor b32 = DequantizeMatrix(q32);
  const Tensor b16 = DequantizeMatrix(q16);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 9; ++c) {
      EXPECT_EQ(b32.at(r, c),
                static_cast<double>(static_cast<float>(t.at(r, c))));
      EXPECT_EQ(b16.at(r, c),
                static_cast<double>(HalfToFloat(
                    FloatToHalf(static_cast<float>(t.at(r, c))))));
    }
  }
}

TEST(QuantSerialization, RoundTripsAllTypes) {
  Rng rng(9);
  Tensor t(7, 13);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.Uniform(-1.0, 1.0);
  }
  for (QuantType type :
       {QuantType::kFp32, QuantType::kFp16, QuantType::kInt8}) {
    const QuantizedMatrix q =
        QuantizeMatrix(t, type, type == QuantType::kInt8 ? 4 : 0);
    std::ostringstream os;
    ASSERT_TRUE(WriteQuantizedMatrix(&os, q).ok());
    std::istringstream is(os.str());
    QuantizedMatrix back;
    ASSERT_TRUE(ReadQuantizedMatrix(&is, &back).ok());
    EXPECT_EQ(q, back) << QuantTypeName(type);
  }
}

TEST(QuantSerialization, RejectsUnknownTypeTagAndTruncation) {
  const QuantizedMatrix q = QuantizeMatrix(Tensor(3, 3), QuantType::kInt8);
  std::ostringstream os;
  ASSERT_TRUE(WriteQuantizedMatrix(&os, q).ok());
  std::string bytes = os.str();

  std::string bad = bytes;
  bad[0] = 42;  // type tag is the first byte
  std::istringstream is_bad(bad);
  QuantizedMatrix out;
  const Status s = ReadQuantizedMatrix(&is_bad, &out);
  EXPECT_FALSE(s.ok());

  for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream is_cut(bytes.substr(0, cut));
    QuantizedMatrix out2;
    EXPECT_FALSE(ReadQuantizedMatrix(&is_cut, &out2).ok()) << cut;
  }
}

TEST(FastExp, ExactAtZeroAndCloseToLibmEverywhere) {
  EXPECT_EQ(kernels::FastExp(0.0), 1.0);
  Rng rng(17);
  double worst = 0.0;
  for (int t = 0; t < 20000; ++t) {
    const double x = rng.Uniform(-700.0, 700.0);
    const double want = std::exp(x);
    const double got = kernels::FastExp(x);
    const double rel = std::abs(got - want) / want;
    worst = std::max(worst, rel);
  }
  // Softmax logit gaps the ranking depends on are >> 1e-12.
  EXPECT_LT(worst, 1e-12);
  // The clamp rails stay finite/normal.
  EXPECT_GT(kernels::FastExp(-1000.0), 0.0);
  EXPECT_TRUE(std::isfinite(kernels::FastExp(1000.0)));
}

// --- dispatch-vs-reference exactness (the bit-identity contract) -------

struct QuantCase {
  size_t m, n, k;
  uint32_t block;
};

std::vector<QuantCase> RandomCases(Rng* rng) {
  std::vector<QuantCase> cases;
  // Deliberately ragged shapes: k straddling the 16/32-code SIMD strides,
  // m straddling the 4-row int8 tile, n straddling the 4/8-lane softmax
  // width.
  for (int t = 0; t < 25; ++t) {
    QuantCase c;
    c.m = static_cast<size_t>(rng->UniformInt(1, 9));
    c.n = static_cast<size_t>(rng->UniformInt(1, 70));
    c.k = static_cast<size_t>(rng->UniformInt(1, 100));
    const int bsel = static_cast<int>(rng->UniformInt(0, 3));
    c.block = bsel == 0 ? 0
              : bsel == 1
                  ? 8
                  : static_cast<uint32_t>(rng->UniformInt(
                        1, static_cast<int64_t>(c.k)));
    cases.push_back(c);
  }
  cases.push_back({1, 1, 1, 0});
  cases.push_back({4, 64, 64, 0});
  cases.push_back({5, 33, 65, 0});
  return cases;
}

TEST(QGemmDispatch, Int8MatchesScalarReferenceExactly) {
  Rng rng(23);
  for (const QuantCase& c : RandomCases(&rng)) {
    Tensor a(c.m, c.k), b(c.n, c.k);
    for (size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = rng.Uniform(-1.0, 1.0);
    }
    for (size_t i = 0; i < b.size(); ++i) {
      b.data()[i] = rng.Uniform(-1.0, 1.0);
    }
    const QuantizedMatrix qa = QuantizeMatrix(a, QuantType::kInt8, c.block);
    const QuantizedMatrix qb = QuantizeMatrix(b, QuantType::kInt8, c.block);
    std::vector<double> got(c.m * c.n, -1), want(c.m * c.n, -2);
    kernels::QGemmInt8(c.m, c.n, c.k, c.block,
                       reinterpret_cast<const int8_t*>(qa.data.data()),
                       qa.scales.data(),
                       reinterpret_cast<const int8_t*>(qb.data.data()),
                       qb.scales.data(), got.data(), c.n);
    kernels::QGemmInt8Ref(c.m, c.n, c.k, c.block,
                          reinterpret_cast<const int8_t*>(qa.data.data()),
                          qa.scales.data(),
                          reinterpret_cast<const int8_t*>(qb.data.data()),
                          qb.scales.data(), want.data(), c.n);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "m=" << c.m << " n=" << c.n << " k=" << c.k
          << " block=" << c.block << " i=" << i
          << " (ISA level " << kernels::QuantIsaLevel() << ")";
    }
  }
}

template <typename Code, QuantType kType>
void FloatDispatchCase(Rng* rng, const QuantCase& c) {
  Tensor a(c.m, c.k), b(c.n, c.k);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = rng->Uniform(-1.0, 1.0);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = rng->Uniform(-1.0, 1.0);
  }
  const QuantizedMatrix qa = QuantizeMatrix(a, kType);
  const QuantizedMatrix qb = QuantizeMatrix(b, kType);
  std::vector<double> got(c.m * c.n, -1), want(c.m * c.n, -2);
  const Code* pa = reinterpret_cast<const Code*>(qa.data.data());
  const Code* pb = reinterpret_cast<const Code*>(qb.data.data());
  if constexpr (kType == QuantType::kFp16) {
    kernels::QGemmFp16(c.m, c.n, c.k, pa, pb, got.data(), c.n);
    kernels::QGemmFp16Ref(c.m, c.n, c.k, pa, pb, want.data(), c.n);
  } else {
    kernels::QGemmFp32(c.m, c.n, c.k, pa, pb, got.data(), c.n);
    kernels::QGemmFp32Ref(c.m, c.n, c.k, pa, pb, want.data(), c.n);
  }
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i])
        << "m=" << c.m << " n=" << c.n << " k=" << c.k << " i=" << i
        << " (ISA level " << kernels::QuantIsaLevel() << ")";
  }
}

TEST(QGemmDispatch, Fp16MatchesScalarReferenceExactly) {
  Rng rng(29);
  for (const QuantCase& c : RandomCases(&rng)) {
    FloatDispatchCase<uint16_t, QuantType::kFp16>(&rng, c);
  }
}

TEST(QGemmDispatch, Fp32MatchesScalarReferenceExactly) {
  Rng rng(31);
  for (const QuantCase& c : RandomCases(&rng)) {
    FloatDispatchCase<float, QuantType::kFp32>(&rng, c);
  }
}

TEST(SoftmaxReduceDispatch, MatchesScalarReferenceExactly) {
  Rng rng(37);
  for (int t = 0; t < 40; ++t) {
    const size_t l = static_cast<size_t>(rng.UniformInt(1, 6));
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 67));
    const bool use_sp = rng.UniformInt(0, 1) == 1;
    const size_t ld = n + static_cast<size_t>(rng.UniformInt(0, 3));
    std::vector<double> sp(l * ld), pi(l);
    for (double& v : sp) v = rng.Uniform(-8.0, 8.0);
    for (double& v : pi) v = rng.Uniform(-4.0, 4.0);
    std::vector<double> got(n, -1), want(n, -2);
    kernels::SoftmaxScoreReduce(l, n, use_sp, sp.data(), ld, pi.data(),
                                got.data());
    kernels::SoftmaxScoreReduceRef(l, n, use_sp, sp.data(), ld, pi.data(),
                                   want.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], want[i])
          << "l=" << l << " n=" << n << " use_sp=" << use_sp << " i=" << i
          << " (ISA level " << kernels::QuantIsaLevel() << ")";
    }
  }
}

}  // namespace
}  // namespace kgag
