// Shared fixtures for model tests: tiny deterministic corpora that train
// in well under a second.
#ifndef KGAG_TESTS_TEST_UTIL_H_
#define KGAG_TESTS_TEST_UTIL_H_

#include "data/dataset.h"
#include "data/synthetic/standard_datasets.h"

namespace kgag {
namespace testing_util {

/// Tiny MovieLens-Rand-style dataset (~40 users / 30 items).
inline GroupRecDataset TinyRand(uint64_t seed = 7) {
  return MakeMovieLensRandDataset(seed, /*scale=*/0.08);
}

/// Tiny Yelp-style dataset.
inline GroupRecDataset TinyYelp(uint64_t seed = 7) {
  return MakeYelpDataset(seed, /*scale=*/0.1);
}

}  // namespace testing_util
}  // namespace kgag

#endif  // KGAG_TESTS_TEST_UTIL_H_
