#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace kgag {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t x : sample) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementCoversDomain) {
  // Over many draws of 3-of-20, every index should eventually appear.
  Rng rng(23);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) {
    for (size_t x : rng.SampleWithoutReplacement(20, 3)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(41);
  (void)b.UniformInt(0, 1 << 30);  // advance like Fork did
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 5);
}

TEST(RngTest, SaveLoadStateReplaysExactStream) {
  Rng a(97);
  for (int i = 0; i < 37; ++i) (void)a.UniformInt(0, 1000);  // mid-stream
  const std::string state = a.SaveState();
  Rng b(0);  // different seed: the state must fully define the stream
  ASSERT_TRUE(b.LoadState(state));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 20), b.UniformInt(0, 1 << 20));
  }
}

TEST(RngTest, SaveLoadStateReplaysRealAndNormalDraws) {
  Rng a(101);
  (void)a.Normal(0.0, 1.0);
  const std::string state = a.SaveState();
  Rng b(0);
  ASSERT_TRUE(b.LoadState(state));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, LoadStateRejectsGarbageAndKeepsEngine) {
  Rng a(103);
  const int64_t before_a = a.UniformInt(0, 1 << 30);
  Rng b(103);
  const int64_t before_b = b.UniformInt(0, 1 << 30);
  ASSERT_EQ(before_a, before_b);
  EXPECT_FALSE(b.LoadState("not an mt19937_64 state"));
  // Failed load must leave the engine untouched: both continue in sync.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  }
}

TEST(ZipfSamplerTest, LowerRanksMoreFrequent) {
  Rng rng(43);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

TEST(ZipfSamplerTest, AlphaZeroIsUniformish) {
  Rng rng(47);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfSamplerTest, InRange) {
  Rng rng(53);
  ZipfSampler zipf(7, 1.5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

}  // namespace
}  // namespace kgag
