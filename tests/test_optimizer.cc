#include "tensor/optimizer.h"

#include <gtest/gtest.h>

#include "tensor/tape.h"

namespace kgag {
namespace {

// Minimizes ||W - T||^2 for a fixed target T with the given optimizer.
double OptimizeQuadratic(Optimizer* opt, int steps) {
  Rng rng(3);
  ParameterStore store;
  Parameter* w = store.Create("w", 3, 3, Init::kXavierUniform, &rng);
  Tensor target{{1, 0, -1}, {0.5, 2, 0}, {-1, 0, 1}};
  double final_loss = 0;
  for (int s = 0; s < steps; ++s) {
    Tape tape;
    Var diff = tape.Sub(tape.Leaf(w), tape.Constant(target));
    Var loss = tape.Sum(tape.Mul(diff, diff));
    final_loss = tape.value(loss).item();
    tape.Backward(loss);
    opt->Step(&store, 0.0);
  }
  return final_loss;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd sgd(0.1);
  EXPECT_LT(OptimizeQuadratic(&sgd, 100), 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam adam(0.05);
  EXPECT_LT(OptimizeQuadratic(&adam, 300), 1e-4);
}

TEST(SgdTest, SingleStepMatchesFormula) {
  ParameterStore store;
  Parameter* w = store.CreateZeros("w", 1, 2);
  w->value = Tensor{{1.0, 2.0}};
  w->grad = Tensor{{0.5, -1.0}};
  w->dense_touched = true;
  Sgd sgd(0.1);
  sgd.Step(&store, 0.0);
  EXPECT_NEAR(w->value.at(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
  EXPECT_NEAR(w->value.at(0, 1), 2.0 + 0.1, 1e-12);
  // Gradients must be cleared by Step.
  EXPECT_EQ(w->grad.at(0, 0), 0.0);
  EXPECT_FALSE(w->dense_touched);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  ParameterStore store;
  Parameter* w = store.CreateZeros("w", 1, 1);
  w->value = Tensor{{2.0}};
  w->grad = Tensor{{0.0}};
  w->dense_touched = true;
  Sgd sgd(0.1);
  sgd.Step(&store, 0.5);  // grad += 0.5 * 2 = 1; w -= 0.1
  EXPECT_NEAR(w->value.item(), 1.9, 1e-12);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, Adam's first update is ~lr * sign(grad).
  ParameterStore store;
  Parameter* w = store.CreateZeros("w", 1, 2);
  w->value = Tensor{{0.0, 0.0}};
  w->grad = Tensor{{3.0, -0.001}};
  w->dense_touched = true;
  Adam adam(0.01);
  adam.Step(&store, 0.0);
  EXPECT_NEAR(w->value.at(0, 0), -0.01, 1e-4);
  EXPECT_NEAR(w->value.at(0, 1), 0.01, 1e-4);
}

TEST(AdamTest, SparseRowsOnlyTouchedRowsMove) {
  ParameterStore store;
  Parameter* table = store.CreateZeros("emb", 4, 2);
  table->value = Tensor{{1, 1}, {1, 1}, {1, 1}, {1, 1}};
  table->grad.at(2, 0) = 1.0;
  table->grad.at(2, 1) = -1.0;
  table->touched_rows = {2};
  Adam adam(0.1);
  adam.Step(&store, 0.0);
  for (size_t r = 0; r < 4; ++r) {
    if (r == 2) {
      EXPECT_NE(table->value.at(r, 0), 1.0);
      EXPECT_NE(table->value.at(r, 1), 1.0);
    } else {
      EXPECT_EQ(table->value.at(r, 0), 1.0);
      EXPECT_EQ(table->value.at(r, 1), 1.0);
    }
  }
}

TEST(AdamTest, LazyBiasCorrectionPerRow) {
  // A row touched for the first time at step 10 must get the step-1 bias
  // correction, not step-10 (otherwise its first update is tiny).
  ParameterStore store;
  Parameter* table = store.CreateZeros("emb", 2, 1);
  Adam adam(0.01);
  for (int s = 0; s < 9; ++s) {
    table->grad.at(0, 0) = 1.0;
    table->touched_rows = {0};
    adam.Step(&store, 0.0);
  }
  const double row0_after9 = table->value.at(0, 0);
  EXPECT_LT(row0_after9, -0.05);  // ~ -0.09
  table->grad.at(1, 0) = 1.0;
  table->touched_rows = {1};
  adam.Step(&store, 0.0);
  EXPECT_NEAR(table->value.at(1, 0), -0.01, 1e-3);
}

TEST(ParameterStoreTest, ZeroGradsRespectsSparseTracking) {
  ParameterStore store;
  Parameter* p = store.CreateZeros("p", 3, 1);
  p->grad.at(1, 0) = 5.0;
  p->touched_rows = {1};
  store.ZeroGrads();
  EXPECT_EQ(p->grad.at(1, 0), 0.0);
  EXPECT_TRUE(p->touched_rows.empty());
}

TEST(ParameterStoreTest, TotalWeightsAndNorm) {
  Rng rng(1);
  ParameterStore store;
  store.Create("a", 2, 3, Init::kNormal01, &rng);
  store.Create("b", 4, 1, Init::kNormal01, &rng);
  EXPECT_EQ(store.TotalWeights(), 10u);
  EXPECT_GT(store.SquaredNorm(), 0.0);
}

TEST(InitializerTest, XavierBoundsRespected) {
  Rng rng(2);
  Tensor t(50, 50);
  Initialize(&t, Init::kXavierUniform, &rng);
  const double bound = std::sqrt(6.0 / 100.0);
  EXPECT_LE(t.AbsMax(), bound + 1e-12);
  EXPECT_GT(t.AbsMax(), bound * 0.5);  // actually fills the range
}

TEST(InitializerTest, ZerosAreZero) {
  Rng rng(2);
  Tensor t(3, 3, 9.0);
  Initialize(&t, Init::kZeros, &rng);
  EXPECT_EQ(t.SquaredNorm(), 0.0);
}

}  // namespace
}  // namespace kgag
