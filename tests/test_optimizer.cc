#include "tensor/optimizer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tensor/tape.h"

namespace kgag {
namespace {

// Minimizes ||W - T||^2 for a fixed target T with the given optimizer.
double OptimizeQuadratic(Optimizer* opt, int steps) {
  Rng rng(3);
  ParameterStore store;
  Parameter* w = store.Create("w", 3, 3, Init::kXavierUniform, &rng);
  Tensor target{{1, 0, -1}, {0.5, 2, 0}, {-1, 0, 1}};
  double final_loss = 0;
  for (int s = 0; s < steps; ++s) {
    Tape tape;
    Var diff = tape.Sub(tape.Leaf(w), tape.Constant(target));
    Var loss = tape.Sum(tape.Mul(diff, diff));
    final_loss = tape.value(loss).item();
    tape.Backward(loss);
    opt->Step(&store, 0.0);
  }
  return final_loss;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd sgd(0.1);
  EXPECT_LT(OptimizeQuadratic(&sgd, 100), 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam adam(0.05);
  EXPECT_LT(OptimizeQuadratic(&adam, 300), 1e-4);
}

TEST(SgdTest, SingleStepMatchesFormula) {
  ParameterStore store;
  Parameter* w = store.CreateZeros("w", 1, 2);
  w->value = Tensor{{1.0, 2.0}};
  w->grad = Tensor{{0.5, -1.0}};
  w->dense_touched = true;
  Sgd sgd(0.1);
  sgd.Step(&store, 0.0);
  EXPECT_NEAR(w->value.at(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
  EXPECT_NEAR(w->value.at(0, 1), 2.0 + 0.1, 1e-12);
  // Gradients must be cleared by Step.
  EXPECT_EQ(w->grad.at(0, 0), 0.0);
  EXPECT_FALSE(w->dense_touched);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  ParameterStore store;
  Parameter* w = store.CreateZeros("w", 1, 1);
  w->value = Tensor{{2.0}};
  w->grad = Tensor{{0.0}};
  w->dense_touched = true;
  Sgd sgd(0.1);
  sgd.Step(&store, 0.5);  // grad += 0.5 * 2 = 1; w -= 0.1
  EXPECT_NEAR(w->value.item(), 1.9, 1e-12);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, Adam's first update is ~lr * sign(grad).
  ParameterStore store;
  Parameter* w = store.CreateZeros("w", 1, 2);
  w->value = Tensor{{0.0, 0.0}};
  w->grad = Tensor{{3.0, -0.001}};
  w->dense_touched = true;
  Adam adam(0.01);
  adam.Step(&store, 0.0);
  EXPECT_NEAR(w->value.at(0, 0), -0.01, 1e-4);
  EXPECT_NEAR(w->value.at(0, 1), 0.01, 1e-4);
}

TEST(AdamTest, SparseRowsOnlyTouchedRowsMove) {
  ParameterStore store;
  Parameter* table = store.CreateZeros("emb", 4, 2);
  table->value = Tensor{{1, 1}, {1, 1}, {1, 1}, {1, 1}};
  table->grad.at(2, 0) = 1.0;
  table->grad.at(2, 1) = -1.0;
  table->touched_rows = {2};
  Adam adam(0.1);
  adam.Step(&store, 0.0);
  for (size_t r = 0; r < 4; ++r) {
    if (r == 2) {
      EXPECT_NE(table->value.at(r, 0), 1.0);
      EXPECT_NE(table->value.at(r, 1), 1.0);
    } else {
      EXPECT_EQ(table->value.at(r, 0), 1.0);
      EXPECT_EQ(table->value.at(r, 1), 1.0);
    }
  }
}

TEST(AdamTest, LazyBiasCorrectionPerRow) {
  // A row touched for the first time at step 10 must get the step-1 bias
  // correction, not step-10 (otherwise its first update is tiny).
  ParameterStore store;
  Parameter* table = store.CreateZeros("emb", 2, 1);
  Adam adam(0.01);
  for (int s = 0; s < 9; ++s) {
    table->grad.at(0, 0) = 1.0;
    table->touched_rows = {0};
    adam.Step(&store, 0.0);
  }
  const double row0_after9 = table->value.at(0, 0);
  EXPECT_LT(row0_after9, -0.05);  // ~ -0.09
  table->grad.at(1, 0) = 1.0;
  table->touched_rows = {1};
  adam.Step(&store, 0.0);
  EXPECT_NEAR(table->value.at(1, 0), -0.01, 1e-3);
}

TEST(AdamTest, StateRoundTripContinuesBitIdentically) {
  // Serialize Adam mid-run (moments, per-row step counts, global step),
  // restore into a fresh optimizer, and verify the next steps produce
  // bit-identical weights — required for exact checkpoint resume.
  Rng rng(5);
  ParameterStore store_a;
  Parameter* wa = store_a.Create("w", 4, 2, Init::kNormal01, &rng);
  Parameter* ta = store_a.CreateZeros("emb", 6, 2);
  Adam adam_a(0.01);
  for (int s = 0; s < 7; ++s) {
    wa->grad = Tensor(4, 2, 0.25 * (s + 1));
    wa->dense_touched = true;
    ta->grad.at(s % 6, 0) = 1.0;
    ta->touched_rows = {s % 6};  // rows at different lazy step counts
    adam_a.Step(&store_a, 1e-4);
  }

  std::ostringstream state(std::ios::binary);
  ASSERT_TRUE(adam_a.SaveState(&state).ok());

  ParameterStore store_b;
  Parameter* wb = store_b.CreateZeros("w", 4, 2);
  Parameter* tb = store_b.CreateZeros("emb", 6, 2);
  wb->value = wa->value;
  tb->value = ta->value;
  Adam adam_b(0.01);
  std::istringstream in(state.str(), std::ios::binary);
  ASSERT_TRUE(adam_b.LoadState(&in, store_b).ok());

  for (int s = 0; s < 5; ++s) {
    for (Parameter* w : {wa, wb}) {
      w->grad = Tensor(4, 2, -0.5);
      w->dense_touched = true;
    }
    for (Parameter* t : {ta, tb}) {
      t->grad.at(1, 1) = 2.0;
      t->touched_rows = {1};
    }
    adam_a.Step(&store_a, 1e-4);
    adam_b.Step(&store_b, 1e-4);
  }
  for (size_t i = 0; i < wa->value.size(); ++i) {
    ASSERT_EQ(wa->value.data()[i], wb->value.data()[i]) << i;
  }
  for (size_t i = 0; i < ta->value.size(); ++i) {
    ASSERT_EQ(ta->value.data()[i], tb->value.data()[i]) << i;
  }
}

TEST(AdamTest, LoadStateRejectsWrongShapesAndGarbage) {
  Rng rng(6);
  ParameterStore store;
  store.Create("w", 3, 3, Init::kNormal01, &rng);
  Adam adam(0.01);
  {
    Tape tape;
    Var loss = tape.Sum(tape.Leaf(store.at(0)));
    tape.Backward(loss);
    adam.Step(&store, 0.0);
  }
  std::ostringstream state(std::ios::binary);
  ASSERT_TRUE(adam.SaveState(&state).ok());

  // Same state against a differently-shaped store must be rejected.
  ParameterStore other;
  other.Create("w", 5, 5, Init::kNormal01, &rng);
  Adam adam2(0.01);
  std::istringstream in(state.str(), std::ios::binary);
  EXPECT_FALSE(adam2.LoadState(&in, other).ok());

  std::istringstream garbage(std::string("not an optimizer state"),
                             std::ios::binary);
  EXPECT_FALSE(adam2.LoadState(&garbage, store).ok());
}

TEST(SgdTest, StateRoundTripIsTagOnly) {
  // SGD is stateless; its Save/LoadState still validate the stream tag so
  // an Adam blob can't be silently fed to an SGD run.
  ParameterStore store;
  store.CreateZeros("w", 1, 1);
  Sgd sgd(0.1);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(sgd.SaveState(&out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_TRUE(sgd.LoadState(&in, store).ok());

  Adam adam(0.1);
  std::ostringstream adam_out(std::ios::binary);
  ASSERT_TRUE(adam.SaveState(&adam_out).ok());
  std::istringstream cross(adam_out.str(), std::ios::binary);
  EXPECT_FALSE(sgd.LoadState(&cross, store).ok());
}

TEST(ParameterStoreTest, ZeroGradsRespectsSparseTracking) {
  ParameterStore store;
  Parameter* p = store.CreateZeros("p", 3, 1);
  p->grad.at(1, 0) = 5.0;
  p->touched_rows = {1};
  store.ZeroGrads();
  EXPECT_EQ(p->grad.at(1, 0), 0.0);
  EXPECT_TRUE(p->touched_rows.empty());
}

TEST(ParameterStoreTest, TotalWeightsAndNorm) {
  Rng rng(1);
  ParameterStore store;
  store.Create("a", 2, 3, Init::kNormal01, &rng);
  store.Create("b", 4, 1, Init::kNormal01, &rng);
  EXPECT_EQ(store.TotalWeights(), 10u);
  EXPECT_GT(store.SquaredNorm(), 0.0);
}

TEST(InitializerTest, XavierBoundsRespected) {
  Rng rng(2);
  Tensor t(50, 50);
  Initialize(&t, Init::kXavierUniform, &rng);
  const double bound = std::sqrt(6.0 / 100.0);
  EXPECT_LE(t.AbsMax(), bound + 1e-12);
  EXPECT_GT(t.AbsMax(), bound * 0.5);  // actually fills the range
}

TEST(InitializerTest, ZerosAreZero) {
  Rng rng(2);
  Tensor t(3, 3, 9.0);
  Initialize(&t, Init::kZeros, &rng);
  EXPECT_EQ(t.SquaredNorm(), 0.0);
}

}  // namespace
}  // namespace kgag
