// Observability layer tests: metric shard merging under real ThreadPool
// concurrency, trace span nesting and ring wrap-around, the JSONL /
// Prometheus / chrome://tracing exporters, and an end-to-end check that a
// tiny KGAG train+eval run publishes the metrics the dashboards key on.
//
// Counters in the global registry are process-wide and monotonic, and
// every test in this binary shares them, so assertions use before/after
// deltas, never absolute values.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"
#include "obs/obs.h"
#include "test_util.h"

namespace kgag {
namespace {

using obs::MetricsRegistry;
using obs::TraceRecorder;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

size_t CountLines(const std::string& text) {
  size_t n = 0;
  for (char c : text) n += (c == '\n');
  return n;
}

TEST(MetricsTest, CounterMergesAcrossPoolThreads) {
  obs::Counter* c =
      MetricsRegistry::Global().GetCounter("test.counter_merge");
  const uint64_t before = c->Value();
  ThreadPool pool(4);
  // 1000 items x 7 each, incremented from whichever worker gets the item:
  // the merged value must be exact regardless of stripe assignment.
  pool.ParallelFor(1000, /*grain=*/8, [&](size_t) { c->Add(7); });
  EXPECT_EQ(c->Value() - before, 7000u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  obs::Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->Value(), -3.25);
}

TEST(MetricsTest, HistogramBucketSemantics) {
  obs::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist_buckets", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // <= 1       -> bucket 0
  h->Observe(1.0);    // <= 1       -> bucket 0 (le semantics)
  h->Observe(5.0);    // <= 10      -> bucket 1
  h->Observe(100.0);  // <= 100     -> bucket 2
  h->Observe(1e9);    // > 100      -> overflow
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->TotalCount(), 5u);
  EXPECT_NEAR(h->Sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e9, 1e-6);
}

TEST(MetricsTest, HistogramMergesAcrossPoolThreads) {
  obs::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist_merge", {10.0, 100.0});
  const uint64_t before = h->TotalCount();
  const double sum_before = h->Sum();
  ThreadPool pool(4);
  pool.ParallelFor(500, /*grain=*/4,
                   [&](size_t i) { h->Observe(static_cast<double>(i)); });
  EXPECT_EQ(h->TotalCount() - before, 500u);
  // sum 0..499 = 124750, accumulated from concurrent shards.
  EXPECT_NEAR(h->Sum() - sum_before, 124750.0, 1e-6);
}

TEST(MetricsTest, ApproxQuantilePicksCoveringBucket) {
  obs::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist_quantile", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h->Observe(1.5);  // bucket le=2
  for (int i = 0; i < 10; ++i) h->Observe(6.0);  // bucket le=8
  EXPECT_DOUBLE_EQ(h->ApproxQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h->ApproxQuantile(0.99), 8.0);
}

TEST(MetricsTest, FindReturnsNullForUnknownNames) {
  EXPECT_EQ(MetricsRegistry::Global().FindCounter("test.never_created"),
            nullptr);
  EXPECT_EQ(MetricsRegistry::Global().FindGauge("test.never_created"),
            nullptr);
  EXPECT_EQ(MetricsRegistry::Global().FindHistogram("test.never_created"),
            nullptr);
}

TEST(MetricsTest, JsonSnapshotAndPrometheusContainMetrics) {
  MetricsRegistry::Global().GetCounter("test.export_counter")->Add(3);
  MetricsRegistry::Global().GetGauge("test.export_gauge")->Set(2.5);
  const std::string json =
      MetricsRegistry::Global().JsonSnapshot("unit-test");
  EXPECT_NE(json.find("\"label\":\"unit-test\""), std::string::npos) << json;
  EXPECT_NE(json.find("test.export_counter"), std::string::npos);
  EXPECT_NE(json.find("test.export_gauge"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "snapshot must be 1 line";

  const std::string prom = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(prom.find("kgag_test_export_counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("kgag_test_export_gauge"), std::string::npos);
}

TEST(MetricsTest, JsonlSinkWritesOneLinePerSnapshot) {
  const std::string path = ::testing::TempDir() + "/obs_sink_test.jsonl";
  ASSERT_TRUE(obs::OpenMetricsJsonl(path).ok());
  EXPECT_TRUE(obs::MetricsJsonlOpen());
  MetricsRegistry::Global().GetCounter("test.sink_counter")->Increment();
  obs::SnapshotMetrics("first");
  obs::SnapshotMetrics("second");
  obs::CloseMetricsJsonl();
  EXPECT_FALSE(obs::MetricsJsonlOpen());

  const std::string text = ReadFile(path);
  EXPECT_EQ(CountLines(text), 2u) << text;
  EXPECT_NE(text.find("\"label\":\"first\""), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"second\""), std::string::npos);
  EXPECT_NE(text.find("test.sink_counter"), std::string::npos);
}

TEST(TraceTest, SpansNestByTimeContainment) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    obs::TraceSpan outer("test.outer");
    {
      obs::TraceSpan inner("test.inner");
    }
  }
  rec.SetEnabled(false);

  const std::vector<obs::TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 2u);
  // Collect() sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Containment is what chrome://tracing uses to draw the flame graph.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  rec.Clear();
}

TEST(TraceTest, DisabledSpanRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(false);
  {
    obs::TraceSpan span("test.disabled");
  }
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceTest, RingWrapDropsOldestAndCounts) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  const size_t total = TraceRecorder::kRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    rec.Record("test.wrap", static_cast<double>(i), 1.0);
  }
  rec.SetEnabled(false);
  EXPECT_EQ(rec.size(), TraceRecorder::kRingCapacity);
  EXPECT_GE(rec.dropped(), 100u);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceTest, ChromeTracingExportIsLoadableJson) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    obs::TraceSpan span("test.export_span");
  }
  rec.SetEnabled(false);

  const std::string json = rec.ChromeTracingJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "spans must be complete events";

  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(rec.ExportChromeTracing(path).ok());
  EXPECT_EQ(ReadFile(path), json);
  rec.Clear();
}

#if KGAG_OBS_ACTIVE

TEST(ObsMacrosTest, MacrosPublishToGlobalRegistry) {
  const obs::Counter* before_probe =
      MetricsRegistry::Global().FindCounter("test.macro_counter");
  const uint64_t before = before_probe ? before_probe->Value() : 0;
  for (int i = 0; i < 5; ++i) {
    KGAG_COUNTER_ADD("test.macro_counter", 2);
  }
  KGAG_GAUGE_SET("test.macro_gauge", 42);
  KGAG_HISTOGRAM_OBSERVE("test.macro_hist", 3.0,
                         std::vector<double>({1.0, 10.0}));

  const obs::Counter* c =
      MetricsRegistry::Global().FindCounter("test.macro_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value() - before, 10u);
  const obs::Gauge* g =
      MetricsRegistry::Global().FindGauge("test.macro_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->Value(), 42.0);
  const obs::Histogram* h =
      MetricsRegistry::Global().FindHistogram("test.macro_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->TotalCount(), 1u);
}

TEST(ObsMacrosTest, ThreadPoolInstrumentationPublishes) {
  obs::InstallDefaultInstrumentation();
  const obs::Counter* calls_probe = MetricsRegistry::Global().FindCounter(
      "threadpool.parallel_for.calls");
  const uint64_t calls_before = calls_probe ? calls_probe->Value() : 0;

  ThreadPool pool(2);
  std::atomic<size_t> touched{0};
  pool.ParallelFor(64, /*grain=*/4,
                   [&](size_t) { touched.fetch_add(1); });
  EXPECT_EQ(touched.load(), 64u);

  const obs::Counter* calls = MetricsRegistry::Global().FindCounter(
      "threadpool.parallel_for.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_GE(calls->Value(), calls_before + 1);
  const obs::Histogram* run = MetricsRegistry::Global().FindHistogram(
      "threadpool.task_run_us");
  ASSERT_NE(run, nullptr);
  EXPECT_GT(run->TotalCount(), 0u);
}

// The acceptance-criteria check: a real (tiny) train + eval run must leave
// behind the metrics and spans the observability docs promise.
TEST(ObsEndToEndTest, TrainAndEvalPublishMetricsAndSpans) {
  const std::string jsonl_path =
      ::testing::TempDir() + "/obs_e2e_metrics.jsonl";
  const std::string trace_path =
      ::testing::TempDir() + "/obs_e2e_trace.json";
  ASSERT_TRUE(obs::OpenMetricsJsonl(jsonl_path).ok());
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);

  GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.sample_size = 3;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.seed = 5;
  auto model = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  (*model)->Fit();
  RankingEvaluator eval(&ds, 5);
  const EvalResult r = eval.EvaluateTest(model->get());
  EXPECT_GT(r.num_groups, 0u);

  obs::SnapshotMetrics("final");
  rec.SetEnabled(false);
  ASSERT_TRUE(rec.ExportChromeTracing(trace_path).ok());
  obs::CloseMetricsJsonl();

  // One snapshot per epoch (written by Fit) + the explicit final one.
  const std::string jsonl = ReadFile(jsonl_path);
  EXPECT_EQ(CountLines(jsonl), 3u) << jsonl;
  for (const char* key :
       {"train.loss", "train.examples", "train.grad_norm",
        "train.examples_per_sec", "gemm.flops", "gemm.calls",
        "negsampler.samples", "propagation.forward.calls",
        "attention.aggregate.calls"}) {
    EXPECT_NE(jsonl.find(key), std::string::npos) << "missing " << key;
  }
  // Eval gauges only exist in the post-eval snapshot.
  const std::string final_line = jsonl.substr(jsonl.rfind("{\"label\""));
  for (const char* key : {"eval.hit_at_k", "eval.ndcg_at_k",
                          "eval.group_latency_us"}) {
    EXPECT_NE(final_line.find(key), std::string::npos) << "missing " << key;
  }

  const std::string trace = ReadFile(trace_path);
  for (const char* span :
       {"train.epoch", "train.batch", "train.backward",
        "train.optimizer_step", "propagation.forward", "propagation.iter0",
        "attention.aggregate", "eval.evaluate", "eval.group"}) {
    EXPECT_NE(trace.find(span), std::string::npos) << "missing " << span;
  }
  rec.Clear();
}

#endif  // KGAG_OBS_ACTIVE

}  // namespace
}  // namespace kgag
