// Observability layer tests: metric shard merging under real ThreadPool
// concurrency, trace span nesting and ring wrap-around, the JSONL /
// Prometheus / chrome://tracing exporters, and an end-to-end check that a
// tiny KGAG train+eval run publishes the metrics the dashboards key on.
//
// Counters in the global registry are process-wide and monotonic, and
// every test in this binary shares them, so assertions use before/after
// deltas, never absolute values.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"
#include "obs/hdr_histogram.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "test_util.h"

namespace kgag {
namespace {

using obs::MetricsRegistry;
using obs::TraceRecorder;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

size_t CountLines(const std::string& text) {
  size_t n = 0;
  for (char c : text) n += (c == '\n');
  return n;
}

TEST(MetricsTest, CounterMergesAcrossPoolThreads) {
  obs::Counter* c =
      MetricsRegistry::Global().GetCounter("test.counter_merge");
  const uint64_t before = c->Value();
  ThreadPool pool(4);
  // 1000 items x 7 each, incremented from whichever worker gets the item:
  // the merged value must be exact regardless of stripe assignment.
  pool.ParallelFor(1000, /*grain=*/8, [&](size_t) { c->Add(7); });
  EXPECT_EQ(c->Value() - before, 7000u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  obs::Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->Value(), -3.25);
}

TEST(MetricsTest, HistogramBucketSemantics) {
  obs::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist_buckets", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // <= 1       -> bucket 0
  h->Observe(1.0);    // <= 1       -> bucket 0 (le semantics)
  h->Observe(5.0);    // <= 10      -> bucket 1
  h->Observe(100.0);  // <= 100     -> bucket 2
  h->Observe(1e9);    // > 100      -> overflow
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->TotalCount(), 5u);
  EXPECT_NEAR(h->Sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e9, 1e-6);
}

TEST(MetricsTest, HistogramMergesAcrossPoolThreads) {
  obs::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist_merge", {10.0, 100.0});
  const uint64_t before = h->TotalCount();
  const double sum_before = h->Sum();
  ThreadPool pool(4);
  pool.ParallelFor(500, /*grain=*/4,
                   [&](size_t i) { h->Observe(static_cast<double>(i)); });
  EXPECT_EQ(h->TotalCount() - before, 500u);
  // sum 0..499 = 124750, accumulated from concurrent shards.
  EXPECT_NEAR(h->Sum() - sum_before, 124750.0, 1e-6);
}

TEST(MetricsTest, ApproxQuantilePicksCoveringBucket) {
  obs::Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist_quantile", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h->Observe(1.5);  // bucket le=2
  for (int i = 0; i < 10; ++i) h->Observe(6.0);  // bucket le=8
  EXPECT_DOUBLE_EQ(h->ApproxQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h->ApproxQuantile(0.99), 8.0);
}

TEST(MetricsTest, FindReturnsNullForUnknownNames) {
  EXPECT_EQ(MetricsRegistry::Global().FindCounter("test.never_created"),
            nullptr);
  EXPECT_EQ(MetricsRegistry::Global().FindGauge("test.never_created"),
            nullptr);
  EXPECT_EQ(MetricsRegistry::Global().FindHistogram("test.never_created"),
            nullptr);
}

TEST(MetricsTest, JsonSnapshotAndPrometheusContainMetrics) {
  MetricsRegistry::Global().GetCounter("test.export_counter")->Add(3);
  MetricsRegistry::Global().GetGauge("test.export_gauge")->Set(2.5);
  const std::string json =
      MetricsRegistry::Global().JsonSnapshot("unit-test");
  EXPECT_NE(json.find("\"label\":\"unit-test\""), std::string::npos) << json;
  EXPECT_NE(json.find("test.export_counter"), std::string::npos);
  EXPECT_NE(json.find("test.export_gauge"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "snapshot must be 1 line";

  const std::string prom = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(prom.find("kgag_test_export_counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("kgag_test_export_gauge"), std::string::npos);
}

TEST(MetricsTest, JsonlSinkWritesOneLinePerSnapshot) {
  const std::string path = ::testing::TempDir() + "/obs_sink_test.jsonl";
  ASSERT_TRUE(obs::OpenMetricsJsonl(path).ok());
  EXPECT_TRUE(obs::MetricsJsonlOpen());
  MetricsRegistry::Global().GetCounter("test.sink_counter")->Increment();
  obs::SnapshotMetrics("first");
  obs::SnapshotMetrics("second");
  obs::CloseMetricsJsonl();
  EXPECT_FALSE(obs::MetricsJsonlOpen());

  const std::string text = ReadFile(path);
  EXPECT_EQ(CountLines(text), 2u) << text;
  EXPECT_NE(text.find("\"label\":\"first\""), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"second\""), std::string::npos);
  EXPECT_NE(text.find("test.sink_counter"), std::string::npos);
}

TEST(TraceTest, SpansNestByTimeContainment) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    obs::TraceSpan outer("test.outer");
    {
      obs::TraceSpan inner("test.inner");
    }
  }
  rec.SetEnabled(false);

  const std::vector<obs::TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 2u);
  // Collect() sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Containment is what chrome://tracing uses to draw the flame graph.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  rec.Clear();
}

TEST(TraceTest, DisabledSpanRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(false);
  {
    obs::TraceSpan span("test.disabled");
  }
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceTest, RingWrapDropsOldestAndCounts) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  const obs::Counter* dropped_probe =
      MetricsRegistry::Global().FindCounter("obs.trace.dropped_spans");
  const uint64_t dropped_before = dropped_probe ? dropped_probe->Value() : 0;
  const size_t total = TraceRecorder::kRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    rec.Record("test.wrap", static_cast<double>(i), 1.0);
  }
  rec.SetEnabled(false);
  EXPECT_EQ(rec.size(), TraceRecorder::kRingCapacity);
  EXPECT_GE(rec.dropped(), 100u);
  // Wrap-around is also surfaced as a counter (visible on /metrics and
  // /tracez), not only via dropped().
  const obs::Counter* dropped_counter =
      MetricsRegistry::Global().FindCounter("obs.trace.dropped_spans");
  ASSERT_NE(dropped_counter, nullptr);
  EXPECT_GE(dropped_counter->Value() - dropped_before, 100u);
  // The exported JSON carries the same count in its metadata block.
  EXPECT_NE(rec.ChromeTracingJson().find("\"dropped_spans\""),
            std::string::npos);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceTest, RequestIdLinksSpansAcrossThreadsAndExports) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    obs::TraceSpan span("test.req_span", /*req=*/77);
  }
  // Same request id recorded from another thread (the serving engine does
  // exactly this for serve.queue_wait: submitter clock, dispatcher record).
  std::thread other(
      [&rec] { rec.Record("test.req_span_other_thread", 10.0, 2.0, 77); });
  other.join();
  {
    obs::TraceSpan unlinked("test.no_req_span");
  }
  rec.SetEnabled(false);

  const std::vector<obs::TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 3u);
  int linked = 0;
  uint32_t first_tid = 0, second_tid = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.req == 77) {
      if (linked == 0) first_tid = e.tid; else second_tid = e.tid;
      ++linked;
    } else {
      EXPECT_EQ(e.req, 0u);
      EXPECT_STREQ(e.name, "test.no_req_span");
    }
  }
  EXPECT_EQ(linked, 2);
  EXPECT_NE(first_tid, second_tid)
      << "the two linked spans must come from different threads";

  // chrome://tracing export annotates linked spans with the request id
  // and leaves unlinked spans without an args block.
  const std::string json = rec.ChromeTracingJson();
  EXPECT_NE(json.find("\"args\":{\"req\":77}"), std::string::npos) << json;
  rec.Clear();
}

TEST(TraceTest, ChromeTracingExportIsLoadableJson) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    obs::TraceSpan span("test.export_span");
  }
  rec.SetEnabled(false);

  const std::string json = rec.ChromeTracingJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "spans must be complete events";

  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(rec.ExportChromeTracing(path).ok());
  EXPECT_EQ(ReadFile(path), json);
  rec.Clear();
}

// ---------------------------------------------------------------------------
// HdrHistogram: log-bucketed exact-count quantiles.

/// Nearest-rank quantile over raw samples — the same rank rule
/// HdrSnapshot::Quantile applies to bucket counts (and the same rule
/// bench_serve applies to its raw latency samples).
double NearestRank(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<size_t>(
      std::llround(p * static_cast<double>(samples.size() - 1)));
  return samples[rank];
}

/// Width of the bucket holding `v`. The +1 covers the integer floor of
/// the sub-32 unit buckets (a raw 31.7 lands in the [31, 31] bucket).
double BucketWidthAt(double v) {
  const size_t b = obs::HdrHistogram::BucketFor(v);
  return obs::HdrHistogram::BucketUpperEdge(b) -
         obs::HdrHistogram::BucketLowerEdge(b) + 1.0;
}

TEST(HdrHistogramTest, BucketEdgesContainTheirValues) {
  for (double v : {0.0, 1.0, 7.5, 31.0, 31.9, 32.0, 33.0, 100.0, 12345.678,
                   1e6, 4.2e9, 3.9e12}) {
    const size_t b = obs::HdrHistogram::BucketFor(v);
    ASSERT_LT(b, obs::HdrHistogram::kNumBuckets) << v;
    EXPECT_LE(obs::HdrHistogram::BucketLowerEdge(b), v) << v;
    EXPECT_LT(v, obs::HdrHistogram::BucketUpperEdge(b) + 1.0) << v;
  }
  // Bucket index is monotone in the value, and every bucket is at most
  // ~2^-5 wide relative to its lower edge once past the unit-bucket zone.
  size_t prev = 0;
  for (double v = 1.0; v < 1e12; v *= 1.37) {
    const size_t b = obs::HdrHistogram::BucketFor(v);
    EXPECT_GE(b, prev) << v;
    prev = b;
    if (v >= 32.0) {
      const double lo = obs::HdrHistogram::BucketLowerEdge(b);
      const double hi = obs::HdrHistogram::BucketUpperEdge(b);
      EXPECT_LE((hi - lo) / lo, 1.0 / 32.0 + 1e-9) << v;
    }
  }
}

TEST(HdrHistogramTest, QuantilesMatchSortedReferenceOnAdversarialShapes) {
  struct Case {
    const char* name;
    std::vector<double> samples;
  };
  std::vector<Case> cases;
  // Point mass: every quantile is the same bucket.
  cases.push_back({"point_mass", std::vector<double>(10000, 12345.678)});
  // Bimodal with a 5-decade gap: the median sits exactly on the cliff
  // between the modes, where a one-off rank error would be ~1e6 wrong.
  {
    std::vector<double> s(5000, 3.0);
    s.insert(s.end(), 5000, 1e6);
    cases.push_back({"bimodal", std::move(s)});
  }
  // Heavy tail: exponentially spread over ~9 decades, so p999 lives in a
  // region with almost no mass.
  {
    std::vector<double> s;
    s.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      s.push_back(10.0 * std::exp(0.002 * i));
    }
    cases.push_back({"heavy_tail", std::move(s)});
  }

  int case_idx = 0;
  for (const Case& c : cases) {
    obs::HdrHistogram* h = MetricsRegistry::Global().GetHdrHistogram(
        std::string("test.hdr_adversarial_") + c.name);
    for (double v : c.samples) h->Observe(v);
    const obs::HdrSnapshot snap = h->Snapshot();
    ASSERT_EQ(snap.total, c.samples.size()) << c.name;
    for (double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      const double raw = NearestRank(c.samples, p);
      EXPECT_NEAR(snap.Quantile(p), raw, BucketWidthAt(raw))
          << c.name << " p=" << p;
    }
    ++case_idx;
  }
  EXPECT_EQ(case_idx, 3);
}

TEST(HdrHistogramTest, EmptySnapshotQuantileIsZero) {
  obs::HdrHistogram* h =
      MetricsRegistry::Global().GetHdrHistogram("test.hdr_empty");
  const obs::HdrSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HdrHistogramTest, MergeIsAssociativeAndSubtractInverts) {
  obs::HdrHistogram* ha =
      MetricsRegistry::Global().GetHdrHistogram("test.hdr_merge_a");
  obs::HdrHistogram* hb =
      MetricsRegistry::Global().GetHdrHistogram("test.hdr_merge_b");
  obs::HdrHistogram* hc =
      MetricsRegistry::Global().GetHdrHistogram("test.hdr_merge_c");
  for (int i = 0; i < 100; ++i) ha->Observe(10.0 + i);
  for (int i = 0; i < 50; ++i) hb->Observe(1e5 + 13.0 * i);
  for (int i = 0; i < 25; ++i) hc->Observe(0.5);
  const obs::HdrSnapshot a = ha->Snapshot();
  const obs::HdrSnapshot b = hb->Snapshot();
  const obs::HdrSnapshot c = hc->Snapshot();

  // (a + b) + c == a + (b + c): shard aggregation order cannot matter.
  obs::HdrSnapshot left = a;
  left.Merge(b);
  left.Merge(c);
  obs::HdrSnapshot bc = b;
  bc.Merge(c);
  obs::HdrSnapshot right = a;
  right.Merge(bc);
  EXPECT_EQ(left.counts, right.counts);
  EXPECT_EQ(left.total, right.total);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_EQ(left.total, a.total + b.total + c.total);

  // Subtract undoes Merge: the window-delta identity bench_serve's HDR
  // cross-check and the per-phase stats rely on.
  obs::HdrSnapshot delta = left;
  delta.Subtract(a);
  delta.Subtract(c);
  EXPECT_EQ(delta.counts, b.counts);
  EXPECT_EQ(delta.total, b.total);
  EXPECT_NEAR(delta.sum, b.sum, 1e-6 * b.sum);
}

TEST(HdrHistogramTest, ConcurrentObserveIsExactAcrossStripes) {
  obs::HdrHistogram* h =
      MetricsRegistry::Global().GetHdrHistogram("test.hdr_concurrent");
  ThreadPool pool(4);
  // Values 0..15 land in 16 distinct unit buckets; each must count
  // exactly 625 regardless of which stripe each worker hit.
  pool.ParallelFor(10000, /*grain=*/8, [&](size_t i) {
    h->Observe(static_cast<double>(i % 16));
  });
  const obs::HdrSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.total, 10000u);
  EXPECT_NEAR(snap.sum, 625.0 * (15.0 * 16.0 / 2.0), 1e-6);
  for (int v = 0; v < 16; ++v) {
    EXPECT_EQ(snap.counts[obs::HdrHistogram::BucketFor(v)], 625u) << v;
  }
}

// ---------------------------------------------------------------------------
// SloTracker: sliding-window burn rates with injected time.

TEST(SloTest, DefaultServingObjectivesShape) {
  const std::vector<obs::SloObjective> objs = obs::DefaultServingObjectives();
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].name, "latency_p99");
  EXPECT_DOUBLE_EQ(objs[0].target, 0.99);
  EXPECT_GT(objs[0].latency_threshold_us, 0.0);
  EXPECT_EQ(objs[1].name, "availability");
  EXPECT_DOUBLE_EQ(objs[1].target, 0.999);
  EXPECT_EQ(objs[1].latency_threshold_us, 0.0);
  EXPECT_TRUE(objs[1].count_errors);
}

TEST(SloTest, WindowMathFromInjectedTime) {
  obs::SloTracker tracker(
      {{"lat", /*target=*/0.9, /*latency_threshold_us=*/100.0,
        /*count_errors=*/false}});
  // 90 good + 10 slow requests in one bucket: bad_rate = 0.1 = exactly
  // the error budget, so burn rate 1.0 in both windows.
  for (int i = 0; i < 90; ++i) {
    tracker.RecordRequestAtTime(50.0, /*error=*/false, /*now_s=*/5.0);
  }
  for (int i = 0; i < 10; ++i) {
    tracker.RecordRequestAtTime(200.0, /*error=*/false, /*now_s=*/5.0);
  }
  // count_errors=false: an errored-but-fast request is NOT bad for a
  // latency-only objective.
  tracker.RecordRequestAtTime(50.0, /*error=*/true, /*now_s=*/5.0);

  const std::vector<obs::SloTracker::ObjectiveState> states =
      tracker.EvaluateAtTime(5.0);
  ASSERT_EQ(states.size(), 1u);
  const obs::SloTracker::ObjectiveState& s = states[0];
  EXPECT_EQ(s.short_window.total, 101u);
  EXPECT_EQ(s.short_window.bad, 10u);
  EXPECT_NEAR(s.short_window.bad_rate, 10.0 / 101.0, 1e-12);
  EXPECT_NEAR(s.short_window.burn_rate, (10.0 / 101.0) / 0.1, 1e-9);
  EXPECT_EQ(s.long_window.total, 101u);
  EXPECT_EQ(s.long_window.bad, 10u);
  EXPECT_FALSE(s.burning) << "burn ~1.0 is below the 2.0 alert threshold";
}

TEST(SloTest, BurningRequiresBothWindowsOverThreshold) {
  const obs::SloObjective avail{"avail", /*target=*/0.99,
                                /*latency_threshold_us=*/0.0,
                                /*count_errors=*/true};
  // Case A: a long quiet stretch then a 10s bad burst. The short window
  // burns hot but the long window says the budget spend is immaterial —
  // no alert.
  obs::SloTracker burst({avail});
  for (int t = 10; t < 580; ++t) {
    for (int i = 0; i < 10; ++i) {
      burst.RecordRequestAtTime(100.0, /*error=*/false, t);
    }
  }
  for (int t = 590; t < 600; ++t) {
    for (int i = 0; i < 5; ++i) {
      burst.RecordRequestAtTime(100.0, /*error=*/false, t);
      burst.RecordRequestAtTime(100.0, /*error=*/true, t);
    }
  }
  {
    const auto states = burst.EvaluateAtTime(599.5);
    ASSERT_EQ(states.size(), 1u);
    EXPECT_EQ(states[0].long_window.bad, 50u);
    EXPECT_GE(states[0].long_window.total, 5000u);
    EXPECT_GT(states[0].short_window.burn_rate, 2.0);
    EXPECT_LT(states[0].long_window.burn_rate, 2.0);
    EXPECT_FALSE(states[0].burning)
        << "short-window burst alone must not alert";
  }

  // Case B: 10% errors sustained across the whole long window — both
  // windows burn at ~10x and the alert fires.
  obs::SloTracker sustained({avail});
  for (int t = 0; t < 600; t += 10) {
    for (int i = 0; i < 9; ++i) {
      sustained.RecordRequestAtTime(100.0, /*error=*/false, t);
    }
    sustained.RecordRequestAtTime(100.0, /*error=*/true, t);
  }
  {
    const auto states = sustained.EvaluateAtTime(599.5);
    ASSERT_EQ(states.size(), 1u);
    EXPECT_GT(states[0].short_window.burn_rate, 2.0);
    EXPECT_GT(states[0].long_window.burn_rate, 2.0);
    EXPECT_TRUE(states[0].burning);
  }
}

TEST(SloTest, BucketRingRecyclesPastTheLongWindow) {
  obs::SloTracker tracker({{"avail", 0.99, 0.0, true}});
  for (int i = 0; i < 100; ++i) {
    tracker.RecordRequestAtTime(100.0, /*error=*/true, /*now_s=*/5.0);
  }
  EXPECT_TRUE(tracker.EvaluateAtTime(5.0)[0].burning);
  // 700s later both windows have slid past the burst: the ring must not
  // resurrect the stale bucket.
  {
    const auto states = tracker.EvaluateAtTime(705.0);
    EXPECT_EQ(states[0].long_window.total, 0u);
    EXPECT_DOUBLE_EQ(states[0].long_window.bad_rate, 0.0);
    EXPECT_FALSE(states[0].burning);
  }
  // Recording after the wrap reuses recycled buckets cleanly.
  tracker.RecordRequestAtTime(100.0, /*error=*/false, /*now_s=*/710.0);
  const auto states = tracker.EvaluateAtTime(710.0);
  EXPECT_EQ(states[0].short_window.total, 1u);
  EXPECT_EQ(states[0].short_window.bad, 0u);
}

TEST(SloTest, ExportGaugesAndStateJsonPublish) {
  obs::SloTracker tracker({{"test_export", 0.99, 0.0, true}});
  tracker.RecordRequest(/*latency_us=*/80.0, /*error=*/false);
  tracker.ExportGauges();
  for (const char* name :
       {"slo.test_export.bad_rate", "slo.test_export.burn_rate_short",
        "slo.test_export.burn_rate_long", "slo.test_export.burning"}) {
    EXPECT_NE(MetricsRegistry::Global().FindGauge(name), nullptr) << name;
  }
  const std::string json = tracker.StateJson();
  EXPECT_NE(json.find("\"test_export\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"burn_rate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"burning\""), std::string::npos) << json;
}

#if KGAG_OBS_ACTIVE

TEST(ObsMacrosTest, MacrosPublishToGlobalRegistry) {
  const obs::Counter* before_probe =
      MetricsRegistry::Global().FindCounter("test.macro_counter");
  const uint64_t before = before_probe ? before_probe->Value() : 0;
  for (int i = 0; i < 5; ++i) {
    KGAG_COUNTER_ADD("test.macro_counter", 2);
  }
  KGAG_GAUGE_SET("test.macro_gauge", 42);
  KGAG_HISTOGRAM_OBSERVE("test.macro_hist", 3.0,
                         std::vector<double>({1.0, 10.0}));

  const obs::Counter* c =
      MetricsRegistry::Global().FindCounter("test.macro_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value() - before, 10u);
  const obs::Gauge* g =
      MetricsRegistry::Global().FindGauge("test.macro_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->Value(), 42.0);
  const obs::Histogram* h =
      MetricsRegistry::Global().FindHistogram("test.macro_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->TotalCount(), 1u);
}

TEST(ObsMacrosTest, HdrObserveMacroPublishes) {
  const obs::HdrHistogram* probe =
      MetricsRegistry::Global().FindHdrHistogram("test.macro_hdr");
  const uint64_t before = probe ? probe->Snapshot().total : 0;
  for (int i = 0; i < 8; ++i) {
    KGAG_HDR_OBSERVE("test.macro_hdr", 100.0 + i);
  }
  const obs::HdrHistogram* h =
      MetricsRegistry::Global().FindHdrHistogram("test.macro_hdr");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Snapshot().total - before, 8u);
  // HDR series export as Prometheus summaries with quantile labels.
  const std::string prom = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(prom.find("kgag_test_macro_hdr{quantile=\"0.99\"}"),
            std::string::npos)
      << prom;
}

TEST(ObsMacrosTest, ThreadPoolInstrumentationPublishes) {
  obs::InstallDefaultInstrumentation();
  const obs::Counter* calls_probe = MetricsRegistry::Global().FindCounter(
      "threadpool.parallel_for.calls");
  const uint64_t calls_before = calls_probe ? calls_probe->Value() : 0;

  ThreadPool pool(2);
  std::atomic<size_t> touched{0};
  pool.ParallelFor(64, /*grain=*/4,
                   [&](size_t) { touched.fetch_add(1); });
  EXPECT_EQ(touched.load(), 64u);

  const obs::Counter* calls = MetricsRegistry::Global().FindCounter(
      "threadpool.parallel_for.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_GE(calls->Value(), calls_before + 1);
  const obs::Histogram* run = MetricsRegistry::Global().FindHistogram(
      "threadpool.task_run_us");
  ASSERT_NE(run, nullptr);
  EXPECT_GT(run->TotalCount(), 0u);
}

// The acceptance-criteria check: a real (tiny) train + eval run must leave
// behind the metrics and spans the observability docs promise.
TEST(ObsEndToEndTest, TrainAndEvalPublishMetricsAndSpans) {
  const std::string jsonl_path =
      ::testing::TempDir() + "/obs_e2e_metrics.jsonl";
  const std::string trace_path =
      ::testing::TempDir() + "/obs_e2e_trace.json";
  ASSERT_TRUE(obs::OpenMetricsJsonl(jsonl_path).ok());
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);

  GroupRecDataset ds = testing_util::TinyRand();
  KgagConfig cfg;
  cfg.propagation.dim = 8;
  cfg.propagation.sample_size = 3;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.seed = 5;
  auto model = KgagModel::Create(&ds, cfg);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  (*model)->Fit();
  RankingEvaluator eval(&ds, 5);
  const EvalResult r = eval.EvaluateTest(model->get());
  EXPECT_GT(r.num_groups, 0u);

  obs::SnapshotMetrics("final");
  rec.SetEnabled(false);
  ASSERT_TRUE(rec.ExportChromeTracing(trace_path).ok());
  obs::CloseMetricsJsonl();

  // One snapshot per epoch (written by Fit) + the explicit final one.
  const std::string jsonl = ReadFile(jsonl_path);
  EXPECT_EQ(CountLines(jsonl), 3u) << jsonl;
  for (const char* key :
       {"train.loss", "train.examples", "train.grad_norm",
        "train.examples_per_sec", "gemm.flops", "gemm.calls",
        "negsampler.samples", "propagation.forward.calls",
        "attention.aggregate.calls"}) {
    EXPECT_NE(jsonl.find(key), std::string::npos) << "missing " << key;
  }
  // Eval gauges only exist in the post-eval snapshot.
  const std::string final_line = jsonl.substr(jsonl.rfind("{\"label\""));
  for (const char* key : {"eval.hit_at_k", "eval.ndcg_at_k",
                          "eval.group_latency_us"}) {
    EXPECT_NE(final_line.find(key), std::string::npos) << "missing " << key;
  }

  const std::string trace = ReadFile(trace_path);
  for (const char* span :
       {"train.epoch", "train.batch", "train.backward",
        "train.optimizer_step", "propagation.forward", "propagation.iter0",
        "attention.aggregate", "eval.evaluate", "eval.group"}) {
    EXPECT_NE(trace.find(span), std::string::npos) << "missing " << span;
  }
  rec.Clear();
}

#endif  // KGAG_OBS_ACTIVE

}  // namespace
}  // namespace kgag
