// KGAGSRV2 mmap artifact tests (DESIGN.md §14): corruption rejection
// (truncation, bit flips, misaligned offsets), the mmap-vs-heap score
// bit-identity contract across every quantization tier, v1 back-compat
// through the auto loader, and the pin that the streaming v1 writer
// produces byte-identical output to the in-memory encoder.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/file_io.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/artifact_mmap.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "tensor/quant.h"

namespace kgag {
namespace serve {
namespace {

namespace fs = std::filesystem;

// The fixed header is 39 bytes (magic 8 + version 4 + dim 4 + group_size
// 4 + use_sp 1 + use_pi 1 + users 4 + items 4 + quant 1 + block 4 +
// blob_count 4) and each index entry 41 (tag 4 + dtype 1 + rows 8 +
// cols 8 + offset 8 + nbytes 8 + crc 4). Tests that surgically corrupt
// specific fields rely on these being pinned — changing them is a format
// break and must bump kArtifactV2Version.
constexpr size_t kFixedHeaderBytes = 39;
constexpr size_t kEntryBytes = 41;

std::string TestTmpDir(const std::string& leaf) {
  const char* base = std::getenv("TEST_TMPDIR");
  fs::path dir = (base != nullptr ? fs::path(base)
                                  : fs::temp_directory_path()) /
                 leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A small random frozen model — serving fidelity is about bytes and
/// shapes, not training.
FrozenModel MakeModel(int num_users = 61, int num_items = 47, int dim = 16,
                      int group_size = 4) {
  Rng rng(321);
  FrozenModel m;
  m.dim = dim;
  m.group_size = group_size;
  m.use_sp = true;
  m.use_pi = true;
  m.num_users = num_users;
  m.num_items = num_items;
  auto fill = [&rng](Tensor* t, double lo, double hi) {
    for (size_t i = 0; i < t->size(); ++i) t->data()[i] = rng.Uniform(lo, hi);
  };
  m.user_emb = Tensor(num_users, dim);
  m.item_emb = Tensor(num_items, dim);
  fill(&m.user_emb, -0.4, 0.4);
  fill(&m.item_emb, -0.4, 0.4);
  m.w1 = Tensor(dim, dim);
  m.w2 = Tensor(dim * (group_size - 1), dim);
  m.bias = Tensor(1, dim);
  m.vc = Tensor(dim, 1);
  fill(&m.w1, -0.1, 0.1);
  fill(&m.w2, -0.05, 0.05);
  fill(&m.bias, -0.1, 0.1);
  fill(&m.vc, -0.2, 0.2);
  return m;
}

std::vector<std::vector<UserId>> SampleGroups(int num_users) {
  Rng rng(99);
  std::vector<std::vector<UserId>> groups;
  for (int g = 0; g < 6; ++g) {
    std::vector<UserId> members;
    const int len = 1 + static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < len; ++i) {
      members.push_back(static_cast<UserId>(rng.UniformInt(0, num_users - 1)));
    }
    groups.push_back(std::move(members));
  }
  return groups;
}

/// Scores every sample group through both models and demands bitwise
/// equality.
void ExpectBitIdenticalScores(const FrozenModel& a, const FrozenModel& b) {
  for (const std::vector<UserId>& members : SampleGroups(a.num_users)) {
    Result<GroupRep> ra = BuildGroupRep(a, members);
    Result<GroupRep> rb = BuildGroupRep(b, members);
    ASSERT_TRUE(ra.ok() && rb.ok());
    const std::vector<double> sa = ScoreAllItems(a, *ra);
    const std::vector<double> sb = ScoreAllItems(b, *rb);
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_EQ(
        std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(double)), 0);
  }
}

TEST(ArtifactV2, MmapScoresBitIdenticalToHeapAcrossTiers) {
  const std::string dir = TestTmpDir("artifact_v2_tiers");
  const FrozenModel base = MakeModel();
  struct Tier {
    QuantType q;
    uint32_t block;
  };
  const Tier tiers[] = {{QuantType::kFp64, 0},
                        {QuantType::kFp32, 0},
                        {QuantType::kFp16, 0},
                        {QuantType::kInt8, 0},
                        {QuantType::kInt8, 8}};
  for (const Tier& tier : tiers) {
    Result<FrozenModel> heap = QuantizeFrozenModel(base, tier.q, tier.block);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    const std::string path =
        dir + "/m" + std::to_string(static_cast<int>(tier.q)) + "_" +
        std::to_string(tier.block) + ".srv2";
    ASSERT_TRUE(SaveFrozenModelV2(*heap, path).ok());

    MmapLoadOptions opts;
    opts.verify_crc = true;  // also exercises the eager CRC path
    Result<FrozenModel> mapped = LoadFrozenModelMmap(path, opts);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->is_mapped());
    EXPECT_EQ(mapped->quant, tier.q);
    EXPECT_EQ(mapped->quant_block, tier.block);
    EXPECT_EQ(mapped->num_users, heap->num_users);
    EXPECT_EQ(mapped->num_items, heap->num_items);
    ExpectBitIdenticalScores(*heap, *mapped);
  }
}

TEST(ArtifactV2, SaveFromMappedModelIsByteStable) {
  const std::string dir = TestTmpDir("artifact_v2_restable");
  const FrozenModel base = MakeModel();
  Result<FrozenModel> heap =
      QuantizeFrozenModel(base, QuantType::kInt8, /*block=*/4);
  ASSERT_TRUE(heap.ok());
  const std::string path = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(*heap, path).ok());
  Result<FrozenModel> mapped = LoadFrozenModelMmap(path);
  ASSERT_TRUE(mapped.ok());
  // Re-encoding straight from the mapping must reproduce the file.
  const std::string again = dir + "/again.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(*mapped, again).ok());
  std::string b1, b2;
  ASSERT_TRUE(ReadFileToString(path, &b1).ok());
  ASSERT_TRUE(ReadFileToString(again, &b2).ok());
  EXPECT_EQ(b1, b2);
}

TEST(ArtifactV2, AutoLoaderDispatchesOnMagic) {
  const std::string dir = TestTmpDir("artifact_v2_auto");
  const FrozenModel base = MakeModel();
  const std::string v1 = dir + "/m.srv";
  const std::string v2 = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModel(base, v1).ok());
  ASSERT_TRUE(SaveFrozenModelV2(base, v2).ok());

  Result<FrozenModel> heap = LoadFrozenModelAuto(v1);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_FALSE(heap->is_mapped());
  Result<FrozenModel> mapped = LoadFrozenModelAuto(v2);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->is_mapped());
  // And the v1 back-compat regression: both loads score identically to
  // the in-memory source model.
  ExpectBitIdenticalScores(base, *heap);
  ExpectBitIdenticalScores(base, *mapped);
}

TEST(ArtifactV2, TruncatedFilesRejected) {
  const std::string dir = TestTmpDir("artifact_v2_trunc");
  const std::string path = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(MakeModel(), path).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());

  // Cut inside the magic, inside the index, and inside the last blob.
  for (size_t cut : {size_t{4}, kFixedHeaderBytes + 10, bytes.size() - 3}) {
    const std::string t = dir + "/t.srv2";
    ASSERT_TRUE(AtomicWriteFile(t, bytes.substr(0, cut)).ok());
    Result<std::shared_ptr<MappedArtifact>> m = MappedArtifact::Map(t);
    EXPECT_FALSE(m.ok()) << "cut at " << cut;
  }
  // An empty file is rejected too (not a crash).
  ASSERT_TRUE(AtomicWriteFile(dir + "/e.srv2", "").ok());
  EXPECT_FALSE(MappedArtifact::Map(dir + "/e.srv2").ok());
}

TEST(ArtifactV2, HeaderBitFlipRejected) {
  const std::string dir = TestTmpDir("artifact_v2_flip_hdr");
  const std::string path = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(MakeModel(), path).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  // Flip one bit of the dim field; the header CRC must catch it.
  bytes[12] ^= 0x01;
  const std::string t = dir + "/t.srv2";
  ASSERT_TRUE(AtomicWriteFile(t, bytes).ok());
  Result<std::shared_ptr<MappedArtifact>> m = MappedArtifact::Map(t);
  EXPECT_FALSE(m.ok());
}

TEST(ArtifactV2, BlobBitFlipCaughtByCrc) {
  const std::string dir = TestTmpDir("artifact_v2_flip_blob");
  const std::string path = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(MakeModel(), path).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  // Flip a byte deep in the payload region (past header + index).
  bytes[bytes.size() - 9] ^= 0x40;
  const std::string t = dir + "/t.srv2";
  ASSERT_TRUE(AtomicWriteFile(t, bytes).ok());

  // Lazy map succeeds (the header is intact)…
  Result<std::shared_ptr<MappedArtifact>> lazy = MappedArtifact::Map(t);
  ASSERT_TRUE(lazy.ok());
  // …but both the on-demand check and the eager load reject the payload.
  EXPECT_FALSE((*lazy)->VerifyBlobs().ok());
  MmapLoadOptions eager;
  eager.verify_crc = true;
  EXPECT_FALSE(MappedArtifact::Map(t, eager).ok());
  EXPECT_FALSE(LoadFrozenModelMmap(t, eager).ok());
}

TEST(ArtifactV2, MisalignedBlobOffsetRejected) {
  const std::string dir = TestTmpDir("artifact_v2_align");
  const std::string path = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(MakeModel(), path).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());

  // Nudge entry 0's offset field off the 64-byte grid and re-sign the
  // header so ONLY the alignment check can reject it.
  const uint32_t blob_count = static_cast<uint32_t>(
      static_cast<uint8_t>(bytes[kFixedHeaderBytes - 4]) |
      static_cast<uint8_t>(bytes[kFixedHeaderBytes - 3]) << 8 |
      static_cast<uint8_t>(bytes[kFixedHeaderBytes - 2]) << 16 |
      static_cast<uint8_t>(bytes[kFixedHeaderBytes - 1]) << 24);
  ASSERT_GT(blob_count, 0u);
  const size_t offset_field = kFixedHeaderBytes + 4 + 1 + 8 + 8;
  bytes[offset_field] = static_cast<char>(bytes[offset_field] + 1);
  const size_t crc_pos = kFixedHeaderBytes + blob_count * kEntryBytes;
  const uint32_t crc = Crc32(bytes.data(), crc_pos);
  std::memcpy(&bytes[crc_pos], &crc, sizeof(crc));

  const std::string t = dir + "/t.srv2";
  ASSERT_TRUE(AtomicWriteFile(t, bytes).ok());
  Result<std::shared_ptr<MappedArtifact>> m = MappedArtifact::Map(t);
  EXPECT_FALSE(m.ok());
}

TEST(ArtifactV2, MappedModelsRejectedByV1Encoders) {
  const std::string dir = TestTmpDir("artifact_v2_reject");
  const std::string path = dir + "/m.srv2";
  ASSERT_TRUE(SaveFrozenModelV2(MakeModel(), path).ok());
  Result<FrozenModel> mapped = LoadFrozenModelMmap(path);
  ASSERT_TRUE(mapped.ok());
  std::string encoded;
  EXPECT_FALSE(EncodeFrozenModel(*mapped, &encoded).ok());
  EXPECT_FALSE(SaveFrozenModel(*mapped, dir + "/m.srv").ok());
  EXPECT_FALSE(QuantizeFrozenModel(*mapped, QuantType::kFp16, 0).ok());
}

TEST(ArtifactV2, WriterEnforcesDeclarationOrderAndSizes) {
  const std::string dir = TestTmpDir("artifact_v2_writer");
  ArtifactV2Meta meta;
  meta.dim = 2;
  meta.group_size = 2;
  meta.num_users = 2;
  meta.num_items = 1;
  const std::vector<BlobSpec> specs = {
      {kBlobUserRep, static_cast<uint8_t>(QuantType::kFp64), 2, 2},
      {kBlobItemRep, static_cast<uint8_t>(QuantType::kFp64), 1, 2},
  };

  // Out-of-order BeginBlob fails.
  {
    ArtifactV2Writer w;
    ASSERT_TRUE(w.Open(dir + "/a.srv2", meta, specs).ok());
    EXPECT_FALSE(w.BeginBlob(kBlobItemRep).ok());
    w.Abandon();
  }
  // Finishing with a short payload fails.
  {
    ArtifactV2Writer w;
    ASSERT_TRUE(w.Open(dir + "/b.srv2", meta, specs).ok());
    ASSERT_TRUE(w.BeginBlob(kBlobUserRep).ok());
    const double rows[2] = {1.0, 2.0};
    ASSERT_TRUE(w.Append(rows, sizeof(rows)).ok());
    EXPECT_FALSE(w.EndBlob().ok());  // declared 4 doubles, wrote 2
    w.Abandon();
  }
  // Finishing before every declared blob is written fails.
  {
    ArtifactV2Writer w;
    ASSERT_TRUE(w.Open(dir + "/c.srv2", meta, specs).ok());
    const double rows[4] = {1.0, 2.0, 3.0, 4.0};
    ASSERT_TRUE(w.AddBlob(kBlobUserRep, rows, sizeof(rows)).ok());
    EXPECT_FALSE(w.Finish().ok());
    w.Abandon();
  }
}

TEST(StreamedSave, MatchesInMemoryEncoderByteForByte) {
  const std::string dir = TestTmpDir("streamed_save_pin");
  const FrozenModel base = MakeModel();
  const QuantType tiers[] = {QuantType::kFp64, QuantType::kFp32,
                             QuantType::kFp16, QuantType::kInt8};
  for (QuantType q : tiers) {
    Result<FrozenModel> m = QuantizeFrozenModel(base, q, /*block=*/0);
    ASSERT_TRUE(m.ok());
    std::string encoded;
    ASSERT_TRUE(EncodeFrozenModel(*m, &encoded).ok());
    const std::string path =
        dir + "/m" + std::to_string(static_cast<int>(q)) + ".srv";
    ASSERT_TRUE(SaveFrozenModel(*m, path).ok());
    std::string streamed;
    ASSERT_TRUE(ReadFileToString(path, &streamed).ok());
    EXPECT_EQ(streamed, encoded) << QuantTypeName(q);
  }
}

// ---------------------------------------------------------------------------
// Degenerate files and crash injection

TEST(AutoLoader, EmptyAndShortFilesGetClearInvalidArgument) {
  const std::string dir = TestTmpDir("short_artifacts");
  const struct {
    const char* leaf;
    const char* bytes;
  } cases[] = {
      {"empty.srv", ""},
      {"three.srv", "KGA"},
  };
  for (const auto& c : cases) {
    const std::string path = dir + "/" + c.leaf;
    ASSERT_TRUE(AtomicWriteFile(path, c.bytes).ok());
    Result<FrozenModel> loaded = LoadFrozenModelAuto(path);
    ASSERT_FALSE(loaded.ok()) << c.leaf;
    const std::string msg = loaded.status().ToString();
    EXPECT_TRUE(loaded.status().IsInvalidArgument()) << msg;
    // The message must name the offending path — "truncated read" alone
    // is useless when a watcher reloads dozens of artifacts.
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("too short"), std::string::npos) << msg;
  }
}

// Crash injection around the atomic publish contract: a writer killed at
// ANY instant must never leave a partial artifact at the target path —
// the path either doesn't exist, or holds a complete, loadable artifact
// (temp + fsync + rename). This is the invariant the serve_model --watch
// reloader and the OnlineTrainer publisher both lean on.
TEST(CrashInjection, KilledWriterNeverExposesPartialArtifact) {
  const std::string dir = TestTmpDir("crash_publish");
  const std::string target = dir + "/live.srv2";
  // Big enough that a write is interruptible mid-stream.
  const FrozenModel model =
      MakeModel(/*num_users=*/512, /*num_items=*/512, /*dim=*/64);

  for (int round = 0; round < 4; ++round) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: republish in a tight loop until killed. _exit on any
      // error so a failure can't masquerade as a successful run.
      for (;;) {
        if (!SaveFrozenModelV2(model, target).ok()) _exit(7);
      }
    }
    // Parent: play the watcher for a bit, then SIGKILL mid-write.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      if (fs::exists(target)) {
        Result<FrozenModel> seen = LoadFrozenModelAuto(target);
        EXPECT_TRUE(seen.ok())
            << "watcher observed a partial artifact: "
            << seen.status().ToString();
      }
    }
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "writer exited on its own (status " << status
        << ") — the kill never landed mid-write";

    // Post-mortem: whatever the path holds now must be complete.
    if (fs::exists(target)) {
      Result<FrozenModel> survivor = LoadFrozenModelAuto(target);
      EXPECT_TRUE(survivor.ok()) << survivor.status().ToString();
      if (survivor.ok()) {
        EXPECT_EQ(survivor->num_users, model.num_users);
        EXPECT_EQ(survivor->num_items, model.num_items);
      }
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace kgag
