file(REMOVE_RECURSE
  "CMakeFiles/test_kgag_model.dir/test_kgag_model.cc.o"
  "CMakeFiles/test_kgag_model.dir/test_kgag_model.cc.o.d"
  "test_kgag_model"
  "test_kgag_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kgag_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
