# Empty compiler generated dependencies file for test_kgag_model.
# This may be replaced when dependencies are built.
