file(REMOVE_RECURSE
  "CMakeFiles/test_interactions.dir/test_interactions.cc.o"
  "CMakeFiles/test_interactions.dir/test_interactions.cc.o.d"
  "test_interactions"
  "test_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
