# Empty compiler generated dependencies file for test_group_builder.
# This may be replaced when dependencies are built.
