file(REMOVE_RECURSE
  "CMakeFiles/test_group_builder.dir/test_group_builder.cc.o"
  "CMakeFiles/test_group_builder.dir/test_group_builder.cc.o.d"
  "test_group_builder"
  "test_group_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
