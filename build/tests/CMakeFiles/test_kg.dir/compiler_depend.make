# Empty compiler generated dependencies file for test_kg.
# This may be replaced when dependencies are built.
