file(REMOVE_RECURSE
  "CMakeFiles/test_kg.dir/test_kg.cc.o"
  "CMakeFiles/test_kg.dir/test_kg.cc.o.d"
  "test_kg"
  "test_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
