file(REMOVE_RECURSE
  "CMakeFiles/test_batcher.dir/test_batcher.cc.o"
  "CMakeFiles/test_batcher.dir/test_batcher.cc.o.d"
  "test_batcher"
  "test_batcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
