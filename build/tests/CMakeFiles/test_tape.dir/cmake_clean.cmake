file(REMOVE_RECURSE
  "CMakeFiles/test_tape.dir/test_tape.cc.o"
  "CMakeFiles/test_tape.dir/test_tape.cc.o.d"
  "test_tape"
  "test_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
