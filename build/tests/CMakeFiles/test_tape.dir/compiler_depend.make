# Empty compiler generated dependencies file for test_tape.
# This may be replaced when dependencies are built.
