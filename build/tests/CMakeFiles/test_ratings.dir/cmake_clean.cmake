file(REMOVE_RECURSE
  "CMakeFiles/test_ratings.dir/test_ratings.cc.o"
  "CMakeFiles/test_ratings.dir/test_ratings.cc.o.d"
  "test_ratings"
  "test_ratings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ratings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
