# Empty dependencies file for test_ratings.
# This may be replaced when dependencies are built.
