file(REMOVE_RECURSE
  "libkgag_kg.a"
)
