file(REMOVE_RECURSE
  "CMakeFiles/kgag_kg.dir/collaborative_kg.cc.o"
  "CMakeFiles/kgag_kg.dir/collaborative_kg.cc.o.d"
  "CMakeFiles/kgag_kg.dir/graph_stats.cc.o"
  "CMakeFiles/kgag_kg.dir/graph_stats.cc.o.d"
  "CMakeFiles/kgag_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/kgag_kg.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/kgag_kg.dir/neighbor_sampler.cc.o"
  "CMakeFiles/kgag_kg.dir/neighbor_sampler.cc.o.d"
  "libkgag_kg.a"
  "libkgag_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
