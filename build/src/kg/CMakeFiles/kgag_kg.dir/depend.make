# Empty dependencies file for kgag_kg.
# This may be replaced when dependencies are built.
