
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/collaborative_kg.cc" "src/kg/CMakeFiles/kgag_kg.dir/collaborative_kg.cc.o" "gcc" "src/kg/CMakeFiles/kgag_kg.dir/collaborative_kg.cc.o.d"
  "/root/repo/src/kg/graph_stats.cc" "src/kg/CMakeFiles/kgag_kg.dir/graph_stats.cc.o" "gcc" "src/kg/CMakeFiles/kgag_kg.dir/graph_stats.cc.o.d"
  "/root/repo/src/kg/knowledge_graph.cc" "src/kg/CMakeFiles/kgag_kg.dir/knowledge_graph.cc.o" "gcc" "src/kg/CMakeFiles/kgag_kg.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/kg/neighbor_sampler.cc" "src/kg/CMakeFiles/kgag_kg.dir/neighbor_sampler.cc.o" "gcc" "src/kg/CMakeFiles/kgag_kg.dir/neighbor_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
