
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/attention.cc" "src/models/CMakeFiles/kgag_models.dir/attention.cc.o" "gcc" "src/models/CMakeFiles/kgag_models.dir/attention.cc.o.d"
  "/root/repo/src/models/kgag_model.cc" "src/models/CMakeFiles/kgag_models.dir/kgag_model.cc.o" "gcc" "src/models/CMakeFiles/kgag_models.dir/kgag_model.cc.o.d"
  "/root/repo/src/models/losses.cc" "src/models/CMakeFiles/kgag_models.dir/losses.cc.o" "gcc" "src/models/CMakeFiles/kgag_models.dir/losses.cc.o.d"
  "/root/repo/src/models/propagation.cc" "src/models/CMakeFiles/kgag_models.dir/propagation.cc.o" "gcc" "src/models/CMakeFiles/kgag_models.dir/propagation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/kgag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kgag_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kgag_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kgag_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
