file(REMOVE_RECURSE
  "CMakeFiles/kgag_models.dir/attention.cc.o"
  "CMakeFiles/kgag_models.dir/attention.cc.o.d"
  "CMakeFiles/kgag_models.dir/kgag_model.cc.o"
  "CMakeFiles/kgag_models.dir/kgag_model.cc.o.d"
  "CMakeFiles/kgag_models.dir/losses.cc.o"
  "CMakeFiles/kgag_models.dir/losses.cc.o.d"
  "CMakeFiles/kgag_models.dir/propagation.cc.o"
  "CMakeFiles/kgag_models.dir/propagation.cc.o.d"
  "libkgag_models.a"
  "libkgag_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
