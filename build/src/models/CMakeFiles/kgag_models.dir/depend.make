# Empty dependencies file for kgag_models.
# This may be replaced when dependencies are built.
