file(REMOVE_RECURSE
  "libkgag_models.a"
)
