file(REMOVE_RECURSE
  "CMakeFiles/kgag_common.dir/csv_writer.cc.o"
  "CMakeFiles/kgag_common.dir/csv_writer.cc.o.d"
  "CMakeFiles/kgag_common.dir/logging.cc.o"
  "CMakeFiles/kgag_common.dir/logging.cc.o.d"
  "CMakeFiles/kgag_common.dir/rng.cc.o"
  "CMakeFiles/kgag_common.dir/rng.cc.o.d"
  "CMakeFiles/kgag_common.dir/status.cc.o"
  "CMakeFiles/kgag_common.dir/status.cc.o.d"
  "CMakeFiles/kgag_common.dir/table_printer.cc.o"
  "CMakeFiles/kgag_common.dir/table_printer.cc.o.d"
  "CMakeFiles/kgag_common.dir/thread_pool.cc.o"
  "CMakeFiles/kgag_common.dir/thread_pool.cc.o.d"
  "libkgag_common.a"
  "libkgag_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
