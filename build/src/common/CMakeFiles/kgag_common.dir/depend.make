# Empty dependencies file for kgag_common.
# This may be replaced when dependencies are built.
