file(REMOVE_RECURSE
  "libkgag_common.a"
)
