# Empty dependencies file for kgag_eval.
# This may be replaced when dependencies are built.
