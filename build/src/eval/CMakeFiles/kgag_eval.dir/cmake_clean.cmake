file(REMOVE_RECURSE
  "CMakeFiles/kgag_eval.dir/metrics.cc.o"
  "CMakeFiles/kgag_eval.dir/metrics.cc.o.d"
  "CMakeFiles/kgag_eval.dir/ranking_evaluator.cc.o"
  "CMakeFiles/kgag_eval.dir/ranking_evaluator.cc.o.d"
  "CMakeFiles/kgag_eval.dir/statistics.cc.o"
  "CMakeFiles/kgag_eval.dir/statistics.cc.o.d"
  "libkgag_eval.a"
  "libkgag_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
