file(REMOVE_RECURSE
  "libkgag_eval.a"
)
