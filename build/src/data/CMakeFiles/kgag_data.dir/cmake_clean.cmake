file(REMOVE_RECURSE
  "CMakeFiles/kgag_data.dir/batcher.cc.o"
  "CMakeFiles/kgag_data.dir/batcher.cc.o.d"
  "CMakeFiles/kgag_data.dir/dataset.cc.o"
  "CMakeFiles/kgag_data.dir/dataset.cc.o.d"
  "CMakeFiles/kgag_data.dir/interactions.cc.o"
  "CMakeFiles/kgag_data.dir/interactions.cc.o.d"
  "CMakeFiles/kgag_data.dir/synthetic/group_builder.cc.o"
  "CMakeFiles/kgag_data.dir/synthetic/group_builder.cc.o.d"
  "CMakeFiles/kgag_data.dir/synthetic/movielens_gen.cc.o"
  "CMakeFiles/kgag_data.dir/synthetic/movielens_gen.cc.o.d"
  "CMakeFiles/kgag_data.dir/synthetic/ratings.cc.o"
  "CMakeFiles/kgag_data.dir/synthetic/ratings.cc.o.d"
  "CMakeFiles/kgag_data.dir/synthetic/standard_datasets.cc.o"
  "CMakeFiles/kgag_data.dir/synthetic/standard_datasets.cc.o.d"
  "CMakeFiles/kgag_data.dir/synthetic/yelp_gen.cc.o"
  "CMakeFiles/kgag_data.dir/synthetic/yelp_gen.cc.o.d"
  "libkgag_data.a"
  "libkgag_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
