
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/batcher.cc" "src/data/CMakeFiles/kgag_data.dir/batcher.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/batcher.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/kgag_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/interactions.cc" "src/data/CMakeFiles/kgag_data.dir/interactions.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/interactions.cc.o.d"
  "/root/repo/src/data/synthetic/group_builder.cc" "src/data/CMakeFiles/kgag_data.dir/synthetic/group_builder.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/synthetic/group_builder.cc.o.d"
  "/root/repo/src/data/synthetic/movielens_gen.cc" "src/data/CMakeFiles/kgag_data.dir/synthetic/movielens_gen.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/synthetic/movielens_gen.cc.o.d"
  "/root/repo/src/data/synthetic/ratings.cc" "src/data/CMakeFiles/kgag_data.dir/synthetic/ratings.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/synthetic/ratings.cc.o.d"
  "/root/repo/src/data/synthetic/standard_datasets.cc" "src/data/CMakeFiles/kgag_data.dir/synthetic/standard_datasets.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/synthetic/standard_datasets.cc.o.d"
  "/root/repo/src/data/synthetic/yelp_gen.cc" "src/data/CMakeFiles/kgag_data.dir/synthetic/yelp_gen.cc.o" "gcc" "src/data/CMakeFiles/kgag_data.dir/synthetic/yelp_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kgag_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
