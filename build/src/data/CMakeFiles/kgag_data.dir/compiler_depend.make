# Empty compiler generated dependencies file for kgag_data.
# This may be replaced when dependencies are built.
