file(REMOVE_RECURSE
  "libkgag_data.a"
)
