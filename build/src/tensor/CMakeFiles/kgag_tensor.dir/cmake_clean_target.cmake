file(REMOVE_RECURSE
  "libkgag_tensor.a"
)
