file(REMOVE_RECURSE
  "CMakeFiles/kgag_tensor.dir/grad_check.cc.o"
  "CMakeFiles/kgag_tensor.dir/grad_check.cc.o.d"
  "CMakeFiles/kgag_tensor.dir/optimizer.cc.o"
  "CMakeFiles/kgag_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/kgag_tensor.dir/parameter.cc.o"
  "CMakeFiles/kgag_tensor.dir/parameter.cc.o.d"
  "CMakeFiles/kgag_tensor.dir/serialization.cc.o"
  "CMakeFiles/kgag_tensor.dir/serialization.cc.o.d"
  "CMakeFiles/kgag_tensor.dir/tape.cc.o"
  "CMakeFiles/kgag_tensor.dir/tape.cc.o.d"
  "CMakeFiles/kgag_tensor.dir/tensor.cc.o"
  "CMakeFiles/kgag_tensor.dir/tensor.cc.o.d"
  "libkgag_tensor.a"
  "libkgag_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
