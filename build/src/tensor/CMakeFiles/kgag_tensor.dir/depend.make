# Empty dependencies file for kgag_tensor.
# This may be replaced when dependencies are built.
