file(REMOVE_RECURSE
  "CMakeFiles/kgag_baselines.dir/kgcn.cc.o"
  "CMakeFiles/kgag_baselines.dir/kgcn.cc.o.d"
  "CMakeFiles/kgag_baselines.dir/mf.cc.o"
  "CMakeFiles/kgag_baselines.dir/mf.cc.o.d"
  "CMakeFiles/kgag_baselines.dir/mosan.cc.o"
  "CMakeFiles/kgag_baselines.dir/mosan.cc.o.d"
  "CMakeFiles/kgag_baselines.dir/trivial.cc.o"
  "CMakeFiles/kgag_baselines.dir/trivial.cc.o.d"
  "libkgag_baselines.a"
  "libkgag_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgag_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
