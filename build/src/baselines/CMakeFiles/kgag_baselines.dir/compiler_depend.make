# Empty compiler generated dependencies file for kgag_baselines.
# This may be replaced when dependencies are built.
