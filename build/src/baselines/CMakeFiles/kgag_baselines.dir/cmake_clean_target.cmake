file(REMOVE_RECURSE
  "libkgag_baselines.a"
)
