file(REMOVE_RECURSE
  "CMakeFiles/fig5_beta_dim.dir/fig5_beta_dim.cc.o"
  "CMakeFiles/fig5_beta_dim.dir/fig5_beta_dim.cc.o.d"
  "fig5_beta_dim"
  "fig5_beta_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_beta_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
