# Empty dependencies file for fig5_beta_dim.
# This may be replaced when dependencies are built.
