file(REMOVE_RECURSE
  "CMakeFiles/micro_propagation.dir/micro_propagation.cc.o"
  "CMakeFiles/micro_propagation.dir/micro_propagation.cc.o.d"
  "micro_propagation"
  "micro_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
