file(REMOVE_RECURSE
  "CMakeFiles/table4_aggregator.dir/table4_aggregator.cc.o"
  "CMakeFiles/table4_aggregator.dir/table4_aggregator.cc.o.d"
  "table4_aggregator"
  "table4_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
