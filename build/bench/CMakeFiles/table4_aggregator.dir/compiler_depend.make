# Empty compiler generated dependencies file for table4_aggregator.
# This may be replaced when dependencies are built.
