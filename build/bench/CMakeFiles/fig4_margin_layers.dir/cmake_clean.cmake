file(REMOVE_RECURSE
  "CMakeFiles/fig4_margin_layers.dir/fig4_margin_layers.cc.o"
  "CMakeFiles/fig4_margin_layers.dir/fig4_margin_layers.cc.o.d"
  "fig4_margin_layers"
  "fig4_margin_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_margin_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
