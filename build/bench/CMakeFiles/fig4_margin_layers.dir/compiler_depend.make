# Empty compiler generated dependencies file for fig4_margin_layers.
# This may be replaced when dependencies are built.
