# Empty dependencies file for restaurant_groups.
# This may be replaced when dependencies are built.
