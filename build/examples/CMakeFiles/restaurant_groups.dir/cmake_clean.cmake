file(REMOVE_RECURSE
  "CMakeFiles/restaurant_groups.dir/restaurant_groups.cpp.o"
  "CMakeFiles/restaurant_groups.dir/restaurant_groups.cpp.o.d"
  "restaurant_groups"
  "restaurant_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
