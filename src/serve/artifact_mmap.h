// Zero-copy serving artifact (KGAGSRV2, DESIGN.md §14).
//
// The v1 container (frozen_model.h) is a chunk stream: loading it means
// reading the whole file and decoding every payload into heap — fine at
// toy scale, minutes of wasted startup and a duplicated resident copy at
// a million entities. KGAGSRV2 borrows the gguf/ggml idiom instead: a
// small self-describing header + blob index up front, then each tensor's
// raw little-endian bytes at a 64-byte-aligned offset. A server mmap()s
// the file, validates the header, and hands pointers INTO THE MAPPING
// straight to the scoring kernels:
//
//   * startup is O(header): no decode, no copy, time-to-first-query is
//     dominated by faulting in the few pages a query touches;
//   * the page cache backs every process mapping the same artifact, so
//     N servers on one box share one resident copy;
//   * the blob bytes are exactly what the v1 decoder would have produced
//     in heap (same codes, same scales, same doubles), which is why the
//     mmap path scores bit-identically to the heap path.
//
// On-disk layout (all integers little-endian):
//
//   header   := magic "KGAGSRV2" | u32 version
//             | u32 dim | u32 group_size | u8 use_sp | u8 use_pi
//             | u32 num_users | u32 num_items
//             | u8 quant_type | u32 quant_block
//             | u32 blob_count
//   index    := blob_count x ( u32 tag | u8 dtype | u64 rows | u64 cols
//                            | u64 offset | u64 nbytes | u32 crc32 )
//   trailer  := u32 header_crc   (CRC32 of header+index bytes)
//   padding  := zeros to the next 64-byte boundary
//   blobs    := raw bytes at their recorded offsets, each offset 64-byte
//               aligned, zero padding between blobs
//
// CRC policy: the header CRC is always verified at map time (a corrupt
// index must never size a pointer). Blob CRCs cover the raw payload and
// are verified either eagerly at load (verify_crc = true — reads every
// page once) or lazily on demand via VerifyBlobs() — the default, which
// preserves the instant-startup property.
#ifndef KGAG_SERVE_ARTIFACT_MMAP_H_
#define KGAG_SERVE_ARTIFACT_MMAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/file_io.h"
#include "common/result.h"
#include "common/status.h"
#include "tensor/quant.h"

namespace kgag {
namespace serve {

/// 8-byte magic of the mmap-layout serving artifact.
inline constexpr std::string_view kArtifactV2Magic = "KGAGSRV2";
inline constexpr uint32_t kArtifactV2Version = 1;
/// Every blob starts on this boundary (cache line; also satisfies every
/// SIMD alignment the kernels could want).
inline constexpr size_t kArtifactV2Align = 64;

// Blob tags (same four-char little-endian packing as chunk tags).
inline constexpr uint32_t kBlobUserRep = ckpt::MakeTag('U', 'R', 'E', 'P');
inline constexpr uint32_t kBlobItemRep = ckpt::MakeTag('I', 'R', 'E', 'P');
inline constexpr uint32_t kBlobUserScales = ckpt::MakeTag('U', 'S', 'C', 'L');
inline constexpr uint32_t kBlobItemScales = ckpt::MakeTag('I', 'S', 'C', 'L');
inline constexpr uint32_t kBlobAttnW1 = ckpt::MakeTag('A', 'T', 'W', '1');
inline constexpr uint32_t kBlobAttnW2 = ckpt::MakeTag('A', 'T', 'W', '2');
inline constexpr uint32_t kBlobAttnBias = ckpt::MakeTag('A', 'T', 'T', 'B');
inline constexpr uint32_t kBlobAttnVc = ckpt::MakeTag('A', 'T', 'V', 'C');

/// \brief The fixed model description in the v2 header — the same fields
/// the v1 SMTA + QNTM chunks carry.
struct ArtifactV2Meta {
  uint32_t dim = 0;
  uint32_t group_size = 0;
  bool use_sp = true;
  bool use_pi = true;
  uint32_t num_users = 0;
  uint32_t num_items = 0;
  /// QuantType of the rep tables (kFp64 = unquantized).
  uint8_t quant_type = 0;
  uint32_t quant_block = 0;
};

/// \brief One blob's index entry. `dtype` is the QuantType of the stored
/// elements (scale blobs use kFp32, attention blobs kFp64); `nbytes` is
/// always rows * cols * QuantElemBytes(dtype).
struct BlobEntry {
  uint32_t tag = 0;
  uint8_t dtype = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t offset = 0;
  uint64_t nbytes = 0;
  uint32_t crc = 0;
};

/// Shape/type declaration for a blob about to be written; offsets, sizes
/// and CRCs are derived by the writer.
struct BlobSpec {
  uint32_t tag = 0;
  uint8_t dtype = 0;  ///< QuantType of the stored elements
  uint64_t rows = 0;
  uint64_t cols = 0;
};

/// Artifact file size for a given blob set (header + aligned blobs) —
/// lets tools report/pre-check disk cost before writing.
uint64_t ArtifactV2FileBytes(const std::vector<BlobSpec>& blobs);

/// \brief Streams a KGAGSRV2 artifact to disk with O(1) buffering: the
/// whole layout is computed from the declared blob shapes at Open, a
/// zeroed header region is written, blob payloads are appended (in
/// declaration order, any chunk granularity) while per-blob CRCs roll,
/// and Finish back-patches the real header/index and atomically renames
/// the temp file into place. Neither a rep table nor the encoded file
/// ever has to exist in memory — this is what lets freeze_model encode a
/// million-user world row-chunk by row-chunk.
class ArtifactV2Writer {
 public:
  /// Declares the complete blob set (order = file order) and writes the
  /// placeholder header. Zero-sized blobs (rows or cols 0) are legal and
  /// take no payload.
  Status Open(const std::string& path, const ArtifactV2Meta& meta,
              const std::vector<BlobSpec>& blobs,
              const AtomicWriteOptions& options = {});

  /// Starts the next declared blob; `tag` must match the declaration
  /// order from Open.
  Status BeginBlob(uint32_t tag);
  /// Appends payload bytes to the open blob.
  Status Append(const void* data, size_t len);
  /// Closes the blob; the appended bytes must total its declared size.
  Status EndBlob();
  /// BeginBlob + Append + EndBlob for a fully materialized payload.
  Status AddBlob(uint32_t tag, const void* data, size_t len);

  /// Verifies every declared blob was written, back-patches the header
  /// (blob CRCs + header CRC), fsyncs, and renames into place.
  Status Finish();
  /// Drops the temp file; the destination is untouched.
  void Abandon() { file_.Abandon(); }

  /// Total artifact size (known from Open).
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  Status PadTo(uint64_t offset);

  AtomicFileWriter file_;
  ArtifactV2Meta meta_;
  std::vector<BlobEntry> entries_;
  uint64_t file_bytes_ = 0;
  size_t next_blob_ = 0;     ///< index into entries_ of the next BeginBlob
  bool in_blob_ = false;
  uint64_t blob_remaining_ = 0;
  uint32_t blob_crc_ = 0;
};

/// \brief Load-time knobs for MappedArtifact::Map.
struct MmapLoadOptions {
  /// Verify every blob CRC at map time (touches every page). Off by
  /// default: the header CRC is always checked, payloads can be checked
  /// later with VerifyBlobs().
  bool verify_crc = false;
};

/// \brief A validated, read-only mapping of a KGAGSRV2 file. The header
/// and index are parsed and bounds-checked at construction; blob payloads
/// are exposed as raw pointers into the mapping and stay valid for the
/// lifetime of this object (FrozenModel holds it via shared_ptr). On
/// platforms without mmap the file is read into an owned buffer — same
/// interface, no sharing.
class MappedArtifact {
 public:
  using Options = MmapLoadOptions;

  /// Maps and validates `path`. Rejects: short files, bad magic/version,
  /// header CRC mismatch, out-of-bounds or misaligned or overlapping blob
  /// offsets, and blob sizes inconsistent with their declared shapes.
  static Result<std::shared_ptr<MappedArtifact>> Map(
      const std::string& path, const Options& options = {});

  ~MappedArtifact();
  MappedArtifact(const MappedArtifact&) = delete;
  MappedArtifact& operator=(const MappedArtifact&) = delete;

  const ArtifactV2Meta& meta() const { return meta_; }
  const std::vector<BlobEntry>& blobs() const { return blobs_; }

  /// Entry for `tag`, or null when the artifact has no such blob.
  const BlobEntry* Find(uint32_t tag) const;

  /// Payload pointer of an entry returned by Find()/blobs().
  const uint8_t* BlobData(const BlobEntry& e) const { return base_ + e.offset; }

  /// Recomputes every blob CRC against the mapped bytes (the lazy half of
  /// the CRC policy). Reads every page.
  Status VerifyBlobs() const;

  /// Total mapped bytes (the file size).
  uint64_t mapped_bytes() const { return size_; }
  /// Bytes of the mapping currently resident in memory (mincore scan);
  /// returns mapped_bytes() on platforms without mincore.
  uint64_t ResidentBytes() const;
  /// True when the artifact is a real mmap (false = owned-buffer
  /// fallback).
  bool is_mmap() const { return is_mmap_; }

  const std::string& path() const { return path_; }

 private:
  MappedArtifact() = default;

  std::string path_;
  const uint8_t* base_ = nullptr;
  uint64_t size_ = 0;
  bool is_mmap_ = false;
  std::vector<uint8_t> owned_;  ///< fallback storage when !is_mmap_
  ArtifactV2Meta meta_;
  std::vector<BlobEntry> blobs_;
};

/// RepView over a codes blob (+ optional scales blob) of a mapping. The
/// caller keeps the mapping alive.
RepView MakeRepView(const MappedArtifact& m, const BlobEntry& codes,
                    const BlobEntry* scales);

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_ARTIFACT_MMAP_H_
