// Streaming freeze of a synthetic big world (DESIGN.md §14).
//
// At 1M+ users a rep table is hundreds of megabytes, so "generate the
// world, then freeze it" must never hold either the world or the encoded
// artifact in memory. These helpers pump BigWorldGen's chunk-invariant
// row API straight into the artifact writers a fixed-size row chunk at a
// time: generation, quantization (QuantizeRows is row-local, so chunked
// codes are bit-identical to whole-matrix quantization) and encoding all
// run in O(chunk_rows * dim) memory regardless of world size.
//
// Both layouts are supported so the startup benchmark can compare them
// on the SAME model: FreezeBigWorldV2 writes the mmap layout (the
// serving default), FreezeBigWorldV1 the legacy heap-decoded container.
// The two artifacts hold byte-identical rep codes, which is what makes
// the bench's v1-vs-v2 score equality check meaningful.
#ifndef KGAG_SERVE_BIGWORLD_FREEZE_H_
#define KGAG_SERVE_BIGWORLD_FREEZE_H_

#include <string>

#include "common/status.h"
#include "data/synthetic/bigworld.h"
#include "tensor/quant.h"

namespace kgag {
namespace serve {

/// \brief Precision + chunking knobs for a big-world freeze.
struct BigWorldFreezeOptions {
  /// Rep-table storage tier. fp16 is the big-world default: 2 B/elem
  /// keeps a 1M-user artifact around 140 MB with near-fp64 ranking.
  QuantType quant = QuantType::kFp16;
  uint32_t quant_block = 0;  ///< int8 scale-block columns (0 = per-row)
  /// Rows generated/quantized/written per chunk — the memory ceiling.
  uint64_t chunk_rows = 8192;
};

/// Streams the world into a KGAGSRV2 mmap-layout artifact at `path`
/// (atomic write). O(chunk) memory plus the int8 scale accumulator
/// (4 bytes per row-block — ~4 MB at 1M users).
Status FreezeBigWorldV2(const synthetic::BigWorldGen& gen,
                        const BigWorldFreezeOptions& options,
                        const std::string& path);

/// Streams the same model as a legacy KGAGSRV1 container. Quantized int8
/// worlds take two generation passes (the v1 record puts scales before
/// codes); determinism makes the passes agree exactly.
Status FreezeBigWorldV1(const synthetic::BigWorldGen& gen,
                        const BigWorldFreezeOptions& options,
                        const std::string& path);

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_BIGWORLD_FREEZE_H_
