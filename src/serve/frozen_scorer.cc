#include "serve/frozen_scorer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"
#include "tensor/kernels.h"

namespace kgag {
namespace serve {

Result<GroupRep> BuildGroupRep(const FrozenModel& model,
                               std::span<const UserId> members) {
  KGAG_TRACE_SPAN("serve.rep_build.aggregate");
  if (members.empty()) {
    return Status::InvalidArgument("group has no members");
  }
  GroupRep rep;
  rep.members.assign(members.begin(), members.end());
  std::sort(rep.members.begin(), rep.members.end());
  rep.members.erase(std::unique(rep.members.begin(), rep.members.end()),
                    rep.members.end());
  for (UserId u : rep.members) {
    if (u < 0 || u >= model.num_users) {
      return Status::InvalidArgument("member id " + std::to_string(u) +
                                     " outside [0, " +
                                     std::to_string(model.num_users) + ")");
    }
  }

  const size_t l = rep.members.size();
  const size_t d = static_cast<size_t>(model.dim);
  const RepView users = model.UserView();
  rep.member_emb = Tensor(l, d);
  for (size_t i = 0; i < l; ++i) {
    // DequantizeRow on a view handles every tier including fp64 (straight
    // copy) and reads owned and mmap'd storage identically.
    DequantizeRow(users, static_cast<size_t>(rep.members[i]),
                  &rep.member_emb.at(i, 0));
  }

  rep.pi.assign(l, 0.0);
  if (model.use_pi && model.w1.size() != 0) {
    // W2's peer concat is only defined for the trained group size; other
    // (ad-hoc) sizes keep the W1 self path and drop the peer term.
    const bool use_w2 = model.w2.size() != 0 &&
                        l == static_cast<size_t>(model.group_size) && l > 1;
    for (size_t i = 0; i < l; ++i) {
      Tensor pre = MatMul(rep.member_emb.RowAt(i), model.w1);  // (1 x d)
      if (use_w2) {
        Tensor peers(1, d * (l - 1));
        size_t off = 0;
        for (size_t j = 0; j < l; ++j) {
          if (j == i) continue;
          for (size_t c = 0; c < d; ++c) {
            peers.at(0, off + c) = rep.member_emb.at(j, c);
          }
          off += d;
        }
        pre.Add(MatMul(peers, model.w2));
      }
      pre.Add(model.bias);
      pre.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
      rep.pi[i] = MatMul(pre, model.vc).item();
    }
  }
  return rep;
}

void ReduceScores(const FrozenModel& model, const GroupRep& rep,
                  const double* sp_logits, size_t ld, size_t n, double* out) {
  kernels::SoftmaxScoreReduce(rep.members.size(), n, model.use_sp, sp_logits,
                              ld, rep.pi.data(), out);
}

MemberStack::MemberStack(const FrozenModel& model) : model_(&model) {}

size_t MemberStack::Append(const GroupRep& rep) {
  const size_t start = rows_;
  const size_t l = rep.members.size();
  const size_t d = static_cast<size_t>(model_->dim);
  if (model_->quant == QuantType::kFp64) {
    emb_.insert(emb_.end(), rep.member_emb.data(),
                rep.member_emb.data() + l * d);
  } else {
    // Gather the packed code rows (and int8 scales) straight from the
    // artifact — the kernels consume the stored codes, so batching loses
    // nothing to a dequantize round trip. The view reads owned and
    // mmap'd artifacts through the same pointers.
    const RepView q = model_->UserView();
    const size_t rb = q.RowBytes();
    const size_t spr = q.ScalesPerRow();
    for (size_t i = 0; i < l; ++i) {
      const size_t u = static_cast<size_t>(rep.members[i]);
      codes_.insert(codes_.end(), q.RowData(u), q.RowData(u) + rb);
      if (spr != 0) {
        scales_.insert(scales_.end(), q.RowScales(u), q.RowScales(u) + spr);
      }
    }
  }
  rows_ += l;
  return start;
}

namespace {

/// Routes one S = A · B^T block to the precision's kernel. A is the
/// stacked member storage, B the (gathered or whole) item table at the
/// same precision. `c` is m x n row-major, leading dimension n,
/// overwritten.
void QuantSpGemm(QuantType type, uint32_t block, size_t m, size_t n,
                 size_t k, const uint8_t* a_codes, const float* a_scales,
                 const uint8_t* b_codes, const float* b_scales, double* c) {
  switch (type) {
    case QuantType::kInt8:
      kernels::QGemmInt8(m, n, k, block,
                         reinterpret_cast<const int8_t*>(a_codes), a_scales,
                         reinterpret_cast<const int8_t*>(b_codes), b_scales,
                         c, n);
      return;
    case QuantType::kFp16:
      kernels::QGemmFp16(m, n, k,
                         reinterpret_cast<const uint16_t*>(a_codes),
                         reinterpret_cast<const uint16_t*>(b_codes), c, n);
      return;
    case QuantType::kFp32:
      kernels::QGemmFp32(m, n, k, reinterpret_cast<const float*>(a_codes),
                         reinterpret_cast<const float*>(b_codes), c, n);
      return;
    case QuantType::kFp64:
      break;
  }
  KGAG_CHECK(false) << "fp64 model routed to quantized GEMM";
}

}  // namespace

void MemberStack::SpLogitsAllItems(double* out) const {
  KGAG_TRACE_SPAN("serve.score_kernel.gemm");
  const size_t d = static_cast<size_t>(model_->dim);
  const size_t n = static_cast<size_t>(model_->num_items);
  const RepView qi = model_->ItemView();
  if (model_->quant == QuantType::kFp64) {
    std::fill(out, out + rows_ * n, 0.0);  // Gemm accumulates
    kernels::Gemm(/*trans_a=*/false, /*trans_b=*/true, rows_, n, d,
                  emb_.data(), d, qi.F64Data(), d, out, n);
    return;
  }
  QuantSpGemm(model_->quant, model_->quant_block, rows_, n, d, codes_.data(),
              scales_.data(), qi.codes, qi.scales, out);
}

void MemberStack::SpLogits(std::span<const ItemId> items, double* out) const {
  const size_t d = static_cast<size_t>(model_->dim);
  const size_t p = items.size();
  const RepView qi = model_->ItemView();
  if (model_->quant == QuantType::kFp64) {
    Tensor cand(p, d);
    const double* item_rows = qi.F64Data();
    for (size_t i = 0; i < p; ++i) {
      KGAG_CHECK(items[i] >= 0 && items[i] < model_->num_items)
          << "item id out of range: " << items[i];
      const double* row = item_rows + static_cast<size_t>(items[i]) * d;
      for (size_t c = 0; c < d; ++c) cand.at(i, c) = row[c];
    }
    std::fill(out, out + rows_ * p, 0.0);
    kernels::Gemm(/*trans_a=*/false, /*trans_b=*/true, rows_, p, d,
                  emb_.data(), d, cand.data(), d, out, p);
    return;
  }
  const size_t rb = qi.RowBytes();
  const size_t spr = qi.ScalesPerRow();
  std::vector<uint8_t> cand_codes;
  std::vector<float> cand_scales;
  cand_codes.reserve(p * rb);
  cand_scales.reserve(p * spr);
  for (size_t i = 0; i < p; ++i) {
    KGAG_CHECK(items[i] >= 0 && items[i] < model_->num_items)
        << "item id out of range: " << items[i];
    const size_t v = static_cast<size_t>(items[i]);
    cand_codes.insert(cand_codes.end(), qi.RowData(v), qi.RowData(v) + rb);
    if (spr != 0) {
      cand_scales.insert(cand_scales.end(), qi.RowScales(v),
                         qi.RowScales(v) + spr);
    }
  }
  QuantSpGemm(model_->quant, model_->quant_block, rows_, p, d, codes_.data(),
              scales_.data(), cand_codes.data(), cand_scales.data(), out);
}

std::vector<double> ScoreAllItems(const FrozenModel& model,
                                  const GroupRep& rep) {
  const size_t n = static_cast<size_t>(model.num_items);
  MemberStack stack(model);
  stack.Append(rep);
  std::vector<double> sp(rep.members.size() * n);
  stack.SpLogitsAllItems(sp.data());
  std::vector<double> scores(n);
  ReduceScores(model, rep, sp.data(), n, n, scores.data());
  return scores;
}

std::vector<double> ScoreItems(const FrozenModel& model, const GroupRep& rep,
                               std::span<const ItemId> items) {
  const size_t p = items.size();
  MemberStack stack(model);
  stack.Append(rep);
  std::vector<double> sp(rep.members.size() * p);
  stack.SpLogits(items, sp.data());
  std::vector<double> scores(p);
  ReduceScores(model, rep, sp.data(), p, p, scores.data());
  return scores;
}

FrozenGroupScorer::FrozenGroupScorer(const FrozenModel* model,
                                     const GroupTable* groups)
    : model_(model), groups_(groups) {
  KGAG_CHECK(model != nullptr);
  KGAG_CHECK(groups != nullptr);
}

std::vector<double> FrozenGroupScorer::ScoreGroup(
    GroupId g, std::span<const ItemId> items) {
  Result<GroupRep> rep = BuildGroupRep(*model_, groups_->MembersOf(g));
  KGAG_CHECK(rep.ok()) << rep.status().ToString();
  return ScoreItems(*model_, *rep, items);
}

}  // namespace serve
}  // namespace kgag
