#include "serve/frozen_scorer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/kernels.h"

namespace kgag {
namespace serve {

Result<GroupRep> BuildGroupRep(const FrozenModel& model,
                               std::span<const UserId> members) {
  if (members.empty()) {
    return Status::InvalidArgument("group has no members");
  }
  GroupRep rep;
  rep.members.assign(members.begin(), members.end());
  std::sort(rep.members.begin(), rep.members.end());
  rep.members.erase(std::unique(rep.members.begin(), rep.members.end()),
                    rep.members.end());
  for (UserId u : rep.members) {
    if (u < 0 || u >= model.num_users) {
      return Status::InvalidArgument("member id " + std::to_string(u) +
                                     " outside [0, " +
                                     std::to_string(model.num_users) + ")");
    }
  }

  const size_t l = rep.members.size();
  const size_t d = static_cast<size_t>(model.dim);
  rep.member_emb = Tensor(l, d);
  for (size_t i = 0; i < l; ++i) {
    for (size_t c = 0; c < d; ++c) {
      rep.member_emb.at(i, c) =
          model.user_emb.at(static_cast<size_t>(rep.members[i]), c);
    }
  }

  rep.pi.assign(l, 0.0);
  if (model.use_pi && model.w1.size() != 0) {
    // W2's peer concat is only defined for the trained group size; other
    // (ad-hoc) sizes keep the W1 self path and drop the peer term.
    const bool use_w2 = model.w2.size() != 0 &&
                        l == static_cast<size_t>(model.group_size) && l > 1;
    for (size_t i = 0; i < l; ++i) {
      Tensor pre = MatMul(rep.member_emb.RowAt(i), model.w1);  // (1 x d)
      if (use_w2) {
        Tensor peers(1, d * (l - 1));
        size_t off = 0;
        for (size_t j = 0; j < l; ++j) {
          if (j == i) continue;
          for (size_t c = 0; c < d; ++c) {
            peers.at(0, off + c) = rep.member_emb.at(j, c);
          }
          off += d;
        }
        pre.Add(MatMul(peers, model.w2));
      }
      pre.Add(model.bias);
      pre.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
      rep.pi[i] = MatMul(pre, model.vc).item();
    }
  }
  return rep;
}

void ReduceScores(const FrozenModel& model, const GroupRep& rep,
                  const double* sp_logits, size_t ld, size_t n, double* out) {
  const size_t l = rep.members.size();
  std::vector<double> alpha(l);
  for (size_t p = 0; p < n; ++p) {
    // Raw importances, softmax-normalized the way AggregateBatch does it
    // (member 0 seeds the running max).
    for (size_t i = 0; i < l; ++i) {
      alpha[i] = (model.use_sp ? sp_logits[i * ld + p] : 0.0) + rep.pi[i];
    }
    double mx = alpha[0];
    for (size_t i = 1; i < l; ++i) mx = std::max(mx, alpha[i]);
    double sum = 0.0;
    for (size_t i = 0; i < l; ++i) {
      alpha[i] = std::exp(alpha[i] - mx);
      sum += alpha[i];
    }
    // score(v) = <g, v> = Σ_i α̃_i <u_i, v>, and <u_i, v> is sp_logits
    // whether or not it entered the softmax.
    double score = 0.0;
    for (size_t i = 0; i < l; ++i) {
      score += (alpha[i] / sum) * sp_logits[i * ld + p];
    }
    out[p] = score;
  }
}

std::vector<double> ScoreAllItems(const FrozenModel& model,
                                  const GroupRep& rep) {
  const size_t l = rep.members.size();
  const size_t d = static_cast<size_t>(model.dim);
  const size_t n = static_cast<size_t>(model.num_items);
  Tensor sp(l, n);  // zero-initialized; Gemm accumulates
  kernels::Gemm(/*trans_a=*/false, /*trans_b=*/true, l, n, d,
                rep.member_emb.data(), d, model.item_emb.data(), d, sp.data(),
                n);
  std::vector<double> scores(n);
  ReduceScores(model, rep, sp.data(), n, n, scores.data());
  return scores;
}

std::vector<double> ScoreItems(const FrozenModel& model, const GroupRep& rep,
                               std::span<const ItemId> items) {
  const size_t l = rep.members.size();
  const size_t d = static_cast<size_t>(model.dim);
  const size_t p = items.size();
  Tensor cand(p, d);
  for (size_t i = 0; i < p; ++i) {
    KGAG_CHECK(items[i] >= 0 && items[i] < model.num_items)
        << "item id out of range: " << items[i];
    for (size_t c = 0; c < d; ++c) {
      cand.at(i, c) = model.item_emb.at(static_cast<size_t>(items[i]), c);
    }
  }
  Tensor sp(l, p);
  kernels::Gemm(/*trans_a=*/false, /*trans_b=*/true, l, p, d,
                rep.member_emb.data(), d, cand.data(), d, sp.data(), p);
  std::vector<double> scores(p);
  ReduceScores(model, rep, sp.data(), p, p, scores.data());
  return scores;
}

FrozenGroupScorer::FrozenGroupScorer(const FrozenModel* model,
                                     const GroupTable* groups)
    : model_(model), groups_(groups) {
  KGAG_CHECK(model != nullptr);
  KGAG_CHECK(groups != nullptr);
}

std::vector<double> FrozenGroupScorer::ScoreGroup(
    GroupId g, std::span<const ItemId> items) {
  Result<GroupRep> rep = BuildGroupRep(*model_, groups_->MembersOf(g));
  KGAG_CHECK(rep.ok()) << rep.status().ToString();
  return ScoreItems(*model_, *rep, items);
}

}  // namespace serve
}  // namespace kgag
