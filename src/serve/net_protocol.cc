#include "serve/net_protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kgag {
namespace serve {

namespace {

// Little-endian append/read helpers. Byte-by-byte so the wire layout is
// the same regardless of host endianness or alignment rules.

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked sequential reader over a frame payload.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > size_) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t u;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadBytes(std::string* out, size_t n) {
    if (pos_ + n > size_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "Ok";
    case WireStatus::kInvalidArgument: return "InvalidArgument";
    case WireStatus::kDeadlineExceeded: return "DeadlineExceeded";
    case WireStatus::kOverloaded: return "Overloaded";
    case WireStatus::kShuttingDown: return "ShuttingDown";
    case WireStatus::kMalformed: return "Malformed";
    case WireStatus::kInternal: return "Internal";
  }
  return "Unknown";
}

WireStatus WireStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return WireStatus::kInvalidArgument;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case StatusCode::kResourceExhausted:
      return WireStatus::kOverloaded;
    default:
      // Submit-after-Shutdown surfaces as Internal with a recognizable
      // message; everything else genuinely is internal.
      return status.message().find("shut down") != std::string::npos
                 ? WireStatus::kShuttingDown
                 : WireStatus::kInternal;
  }
}

std::vector<uint8_t> EncodeTopKRequest(const TopKRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(20 + 4 * (request.members.size() + request.exclude_seen.size()));
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(request.priority));
  PutU16(&out, 0);  // flags
  PutU32(&out, request.deadline_us > 0
                   ? static_cast<uint32_t>(request.deadline_us)
                   : 0u);
  PutU32(&out, static_cast<uint32_t>(request.k));
  PutU32(&out, static_cast<uint32_t>(request.members.size()));
  PutU32(&out, static_cast<uint32_t>(request.exclude_seen.size()));
  for (UserId id : request.members) PutI32(&out, id);
  for (ItemId id : request.exclude_seen) PutI32(&out, id);
  return out;
}

Result<TopKRequest> DecodeTopKRequest(const uint8_t* data, size_t size) {
  Cursor cur(data, size);
  uint8_t version = 0, priority = 0;
  uint16_t flags = 0;
  uint32_t deadline_us = 0, k = 0, num_members = 0, num_exclude = 0;
  if (!cur.ReadU8(&version) || !cur.ReadU8(&priority) ||
      !cur.ReadU16(&flags) || !cur.ReadU32(&deadline_us) ||
      !cur.ReadU32(&k) || !cur.ReadU32(&num_members) ||
      !cur.ReadU32(&num_exclude)) {
    return Status::InvalidArgument("request frame truncated in header");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  if (flags != 0) {
    return Status::InvalidArgument("reserved flags must be zero");
  }
  if (priority > static_cast<uint8_t>(RequestClass::kBatch)) {
    return Status::InvalidArgument("unknown priority class " +
                                   std::to_string(priority));
  }
  // Array counts are re-validated against the actual payload size, so a
  // lying header can't drive a large allocation.
  const size_t need = 4 * (static_cast<size_t>(num_members) + num_exclude);
  if (size < 20 || size - 20 != need) {
    return Status::InvalidArgument("request frame size mismatch");
  }
  TopKRequest request;
  request.k = k;
  request.priority = static_cast<RequestClass>(priority);
  request.deadline_us = deadline_us;
  request.members.resize(num_members);
  for (uint32_t i = 0; i < num_members; ++i) {
    if (!cur.ReadI32(&request.members[i])) {
      return Status::InvalidArgument("request frame truncated in members");
    }
  }
  request.exclude_seen.resize(num_exclude);
  for (uint32_t i = 0; i < num_exclude; ++i) {
    if (!cur.ReadI32(&request.exclude_seen[i])) {
      return Status::InvalidArgument("request frame truncated in exclusions");
    }
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request frame");
  }
  return request;
}

std::vector<uint8_t> EncodeTopKResponse(const TopKResult& result) {
  std::vector<uint8_t> out;
  out.reserve(8 + 12 * result.items.size());
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(WireStatus::kOk));
  PutU16(&out, 0);
  PutU32(&out, static_cast<uint32_t>(result.items.size()));
  for (size_t i = 0; i < result.items.size(); ++i) {
    PutI32(&out, result.items[i]);
    PutF64(&out, result.scores[i]);
  }
  return out;
}

std::vector<uint8_t> EncodeErrorResponse(WireStatus status,
                                         const std::string& message) {
  std::vector<uint8_t> out;
  out.reserve(8 + message.size());
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(status));
  PutU16(&out, 0);
  PutU32(&out, static_cast<uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

Result<WireResponse> DecodeTopKResponse(const uint8_t* data, size_t size) {
  Cursor cur(data, size);
  uint8_t version = 0, status = 0;
  uint16_t reserved = 0;
  uint32_t count = 0;
  if (!cur.ReadU8(&version) || !cur.ReadU8(&status) ||
      !cur.ReadU16(&reserved) || !cur.ReadU32(&count)) {
    return Status::InvalidArgument("response frame truncated in header");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  if (status > static_cast<uint8_t>(WireStatus::kInternal)) {
    return Status::InvalidArgument("unknown wire status " +
                                   std::to_string(status));
  }
  WireResponse resp;
  resp.status = static_cast<WireStatus>(status);
  if (resp.status == WireStatus::kOk) {
    if (size - 8 != static_cast<size_t>(count) * 12) {
      return Status::InvalidArgument("response frame size mismatch");
    }
    resp.items.resize(count);
    resp.scores.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!cur.ReadI32(&resp.items[i]) || !cur.ReadF64(&resp.scores[i])) {
        return Status::InvalidArgument("response frame truncated in items");
      }
    }
  } else {
    if (!cur.ReadBytes(&resp.message, count)) {
      return Status::InvalidArgument("response frame truncated in message");
    }
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after response frame");
  }
  return resp;
}

bool ReadExact(int fd, void* buf, size_t size) {
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, out + off, size - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const void* data, size_t size) {
  const uint8_t* in = static_cast<const uint8_t*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, in + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool ReadFrame(int fd, std::vector<uint8_t>* payload) {
  uint8_t len_bytes[4];
  if (!ReadExact(fd, len_bytes, sizeof(len_bytes))) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
  if (len > kMaxFrameBytes) return false;
  payload->resize(len);
  return len == 0 || ReadExact(fd, payload->data(), len);
}

bool WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  uint8_t len_bytes[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) len_bytes[i] = static_cast<uint8_t>(len >> (8 * i));
  return WriteAll(fd, len_bytes, sizeof(len_bytes)) &&
         (payload.empty() || WriteAll(fd, payload.data(), payload.size()));
}

Result<int> ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace serve
}  // namespace kgag
