// Frozen serving artifact (DESIGN.md §10).
//
// Training needs the full propagation machinery per score; serving cannot
// afford it. Following the KGCN-style split, FreezeKgagModel runs the
// propagation layers ONCE per entity offline — each user/item entity is
// propagated with its own zero-order embedding as the query, a
// query-independent approximation of the query-conditioned eval path —
// and the resulting user/item representation matrices plus the attention
// weights (W1, W2, b, vc) are written to an immutable artifact. Online,
// a request only needs row gathers, one GEMM against the item matrix and
// a softmax per candidate (see frozen_scorer.h).
//
// The artifact reuses the checkpoint chunk container under its own magic
// "KGAGSRV1" — same framing, per-chunk CRC32 and allocation bounds — with
// chunks:
//   SMTA  u32 dim | u32 group_size | u8 use_sp | u8 use_pi |
//         u32 num_users | u32 num_items
//   UEMB  tensor (num_users x dim)   — serving user representations
//   IEMB  tensor (num_items x dim)   — serving item representations
//   ATTN  4 tensors W1, W2, b, vc    — 0x0 when the model has none
// where "tensor" is WriteTensor's u64 rows | u64 cols | raw doubles.
// Encoding is deterministic: freezing the same model state twice yields
// byte-identical files (eval trees are seeded per node).
//
// Quantized artifacts (DESIGN.md §11) extend the container: when the rep
// tables are stored below full precision the UEMB/IEMB chunks are
// replaced by
//   QNTM  u8 quant_type | u32 quant_block
//   QUSR  quantized matrix (num_users x dim)  — see WriteQuantizedMatrix
//   QITM  quantized matrix (num_items x dim)
// Full-precision (fp64) artifacts carry no QNTM chunk and are encoded
// byte-identically to the pre-quantization format, so old files load
// unchanged and old readers still read new fp64 files. Unknown or
// corrupt quant-type tags are rejected with a clear error.
#ifndef KGAG_SERVE_FROZEN_MODEL_H_
#define KGAG_SERVE_FROZEN_MODEL_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "serve/artifact_mmap.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace kgag {

class KgagModel;

namespace serve {

/// 8-byte container magic for serving artifacts.
inline constexpr std::string_view kArtifactMagic = "KGAGSRV1";

/// \brief Immutable scoring state: everything the online path needs.
struct FrozenModel {
  int dim = 0;
  /// Member count the attention's W2 peer-concat was trained for; groups
  /// of any other size are served without the W2 term (see
  /// frozen_scorer.h).
  int group_size = 0;
  bool use_sp = true;
  bool use_pi = true;
  int32_t num_users = 0;
  int32_t num_items = 0;

  /// Rep-table storage precision. kFp64 (the default and the only value
  /// legacy artifacts decode to) keeps the tables in user_emb/item_emb;
  /// any other tier keeps them in q_user/q_item instead and leaves the
  /// fp64 tensors 0x0.
  QuantType quant = QuantType::kFp64;
  /// Columns per int8 scale block (0 = per-row). Meaningless unless
  /// quant == kInt8.
  uint32_t quant_block = 0;

  Tensor user_emb;  ///< (num_users x dim), row u = user v (kFp64 only)
  Tensor item_emb;  ///< (num_items x dim), row v = item v (kFp64 only)
  QuantizedMatrix q_user;  ///< quantized tiers only
  QuantizedMatrix q_item;  ///< quantized tiers only

  // Attention weights; 0x0 tensors when the model was built without them
  // (ablations, group_size == 1). Always fp64: they are O(dim^2), not
  // O(entities), so quantizing them would save nothing and cost accuracy.
  // On an mmap-backed model these are COPIED out of the mapping at load
  // (O(dim^2) bytes — negligible), so the scorer's MatMul path is
  // identical either way.
  Tensor w1;    ///< (dim x dim)
  Tensor w2;    ///< (dim*(group_size-1) x dim)
  Tensor bias;  ///< (1 x dim)
  Tensor vc;    ///< (dim x 1)

  /// Non-null when the rep tables live inside an mmap'd KGAGSRV2
  /// artifact (LoadFrozenModelMmap). The mapping owns the bytes behind
  /// mapped_user/mapped_item; the owned tables above are then all empty.
  std::shared_ptr<MappedArtifact> mapping;
  RepView mapped_user;  ///< valid iff mapping != nullptr
  RepView mapped_item;  ///< valid iff mapping != nullptr

  bool is_mapped() const { return mapping != nullptr; }

  /// View of the user rep table wherever it lives — owned fp64 tensor,
  /// owned quantized matrix, or the mapping. THE way the scoring path
  /// reads rep rows: because heap- and mmap-backed models expose the same
  /// bytes through the same view, the two paths are bit-identical by
  /// construction.
  RepView UserView() const;
  /// Item-table counterpart of UserView().
  RepView ItemView() const;
};

/// Resident bytes one entity row costs at the model's precision (codes
/// plus int8 scales; 8*dim for fp64). The number freeze_model prints and
/// bench_serve reports per precision.
size_t RepBytesPerEntity(const FrozenModel& model);

/// JSON description of a loaded artifact (precision, shapes, bytes per
/// entity) for /statusz.
std::string ArtifactStatusJson(const FrozenModel& model);

/// Returns a copy of `model` with the user/item rep tables quantized to
/// `type` (block `block` for int8). `model` must be full-precision
/// (quant == kFp64); asking for kFp64 returns an unchanged copy. The
/// attention weights pass through untouched.
Result<FrozenModel> QuantizeFrozenModel(const FrozenModel& model,
                                        QuantType type, uint32_t block = 0);

/// Runs propagation for every user and item entity and captures the
/// attention weights. The model must be constructed (trained or with
/// restored parameters); it is not modified beyond its eval-tree cache.
Result<FrozenModel> FreezeKgagModel(KgagModel* model);

/// Serializes to the KGAGSRV1 container.
Status EncodeFrozenModel(const FrozenModel& model, std::string* out);

/// Parses and validates a KGAGSRV1 container: magic, per-chunk CRCs,
/// shape consistency (embedding/attention dims against the meta chunk).
Result<FrozenModel> DecodeFrozenModel(std::string_view data);

/// Encode + atomic write (temp + fsync + rename). Streams chunk by chunk
/// through ckpt::ContainerFileWriter — the encoded artifact never exists
/// in memory — producing bytes identical to EncodeFrozenModel.
Status SaveFrozenModel(const FrozenModel& model, const std::string& path);

/// Read + decode.
Result<FrozenModel> LoadFrozenModel(const std::string& path);

/// Writes the model as a KGAGSRV2 mmap-layout artifact (atomic, like
/// SaveFrozenModel). Reads the tables through views, so it works from an
/// owned OR an mmap-backed model (which is how freeze_model converts
/// between layouts).
Status SaveFrozenModelV2(const FrozenModel& model, const std::string& path);

/// Maps a KGAGSRV2 artifact: header/index validated (and blob CRCs too
/// when options.verify_crc), rep tables exposed as views into the
/// mapping, attention weights copied into owned tensors. O(header) work —
/// no rep bytes are read until queries touch them.
Result<FrozenModel> LoadFrozenModelMmap(
    const std::string& path, const MappedArtifact::Options& options = {});

/// Sniffs the 8-byte magic and dispatches: KGAGSRV2 -> LoadFrozenModelMmap,
/// KGAGSRV1 -> LoadFrozenModel (heap decode). The one entry point tools
/// use so v1 artifacts keep loading unchanged.
Result<FrozenModel> LoadFrozenModelAuto(
    const std::string& path, const MappedArtifact::Options& options = {});

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_FROZEN_MODEL_H_
