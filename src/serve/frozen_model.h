// Frozen serving artifact (DESIGN.md §10).
//
// Training needs the full propagation machinery per score; serving cannot
// afford it. Following the KGCN-style split, FreezeKgagModel runs the
// propagation layers ONCE per entity offline — each user/item entity is
// propagated with its own zero-order embedding as the query, a
// query-independent approximation of the query-conditioned eval path —
// and the resulting user/item representation matrices plus the attention
// weights (W1, W2, b, vc) are written to an immutable artifact. Online,
// a request only needs row gathers, one GEMM against the item matrix and
// a softmax per candidate (see frozen_scorer.h).
//
// The artifact reuses the checkpoint chunk container under its own magic
// "KGAGSRV1" — same framing, per-chunk CRC32 and allocation bounds — with
// chunks:
//   SMTA  u32 dim | u32 group_size | u8 use_sp | u8 use_pi |
//         u32 num_users | u32 num_items
//   UEMB  tensor (num_users x dim)   — serving user representations
//   IEMB  tensor (num_items x dim)   — serving item representations
//   ATTN  4 tensors W1, W2, b, vc    — 0x0 when the model has none
// where "tensor" is WriteTensor's u64 rows | u64 cols | raw doubles.
// Encoding is deterministic: freezing the same model state twice yields
// byte-identical files (eval trees are seeded per node).
#ifndef KGAG_SERVE_FROZEN_MODEL_H_
#define KGAG_SERVE_FROZEN_MODEL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace kgag {

class KgagModel;

namespace serve {

/// 8-byte container magic for serving artifacts.
inline constexpr std::string_view kArtifactMagic = "KGAGSRV1";

/// \brief Immutable scoring state: everything the online path needs.
struct FrozenModel {
  int dim = 0;
  /// Member count the attention's W2 peer-concat was trained for; groups
  /// of any other size are served without the W2 term (see
  /// frozen_scorer.h).
  int group_size = 0;
  bool use_sp = true;
  bool use_pi = true;
  int32_t num_users = 0;
  int32_t num_items = 0;

  Tensor user_emb;  ///< (num_users x dim), row u = user u
  Tensor item_emb;  ///< (num_items x dim), row v = item v

  // Attention weights; 0x0 tensors when the model was built without them
  // (ablations, group_size == 1).
  Tensor w1;    ///< (dim x dim)
  Tensor w2;    ///< (dim*(group_size-1) x dim)
  Tensor bias;  ///< (1 x dim)
  Tensor vc;    ///< (dim x 1)
};

/// Runs propagation for every user and item entity and captures the
/// attention weights. The model must be constructed (trained or with
/// restored parameters); it is not modified beyond its eval-tree cache.
Result<FrozenModel> FreezeKgagModel(KgagModel* model);

/// Serializes to the KGAGSRV1 container.
Status EncodeFrozenModel(const FrozenModel& model, std::string* out);

/// Parses and validates a KGAGSRV1 container: magic, per-chunk CRCs,
/// shape consistency (embedding/attention dims against the meta chunk).
Result<FrozenModel> DecodeFrozenModel(std::string_view data);

/// Encode + atomic write (temp + fsync + rename).
Status SaveFrozenModel(const FrozenModel& model, const std::string& path);

/// Read + decode.
Result<FrozenModel> LoadFrozenModel(const std::string& path);

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_FROZEN_MODEL_H_
