#include "serve/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>

#include "common/check.h"
#include "obs/obs.h"
#include "serve/net_protocol.h"

namespace kgag {
namespace serve {

namespace {

/// Parses "1,2,3" into ids; false on any non-numeric token.
bool ParseIdList(const std::string& s, std::vector<int32_t>* out) {
  out->clear();
  if (s.empty()) return true;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    if (tok.empty()) return false;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(static_cast<int32_t>(v));
    pos = comma + 1;
    if (comma == s.size()) break;
  }
  return true;
}

/// Splits a form body ("a=1&b=2") into key/value pairs. No URL-decoding
/// beyond what the field grammar needs (ids, integers, keywords).
std::vector<std::pair<std::string, std::string>> ParseForm(
    const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t amp = body.find('&', pos);
    if (amp == std::string::npos) amp = body.size();
    const std::string field = body.substr(pos, amp - pos);
    const size_t eq = field.find('=');
    if (eq != std::string::npos) {
      out.emplace_back(field.substr(0, eq), field.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

int HttpStatusFor(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return 200;
    case WireStatus::kInvalidArgument: return 400;
    case WireStatus::kMalformed: return 400;
    case WireStatus::kDeadlineExceeded: return 504;
    case WireStatus::kOverloaded: return 503;
    case WireStatus::kShuttingDown: return 503;
    case WireStatus::kInternal: return 500;
  }
  return 500;
}

bool WriteHttp(int fd, int status, const std::string& content_type,
               const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 400 ? "Bad Request"
                       : status == 405 ? "Method Not Allowed"
                       : status == 503 ? "Service Unavailable"
                       : status == 504 ? "Gateway Timeout"
                                       : "Internal Server Error";
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason
     << "\r\nContent-Type: " << content_type
     << "\r\nContent-Length: " << body.size()
     << "\r\nConnection: close\r\n\r\n"
     << body;
  const std::string wire = os.str();
  return WriteAll(fd, wire.data(), wire.size());
}

}  // namespace

NetServer::NetServer(ServingEngine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {
  KGAG_CHECK(engine != nullptr);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  KGAG_CHECK(!running()) << "Start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  // Deep backlog: the open-loop bench client opens many connections at
  // once; refusing them at the listen queue would masquerade as shed.
  if (::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&NetServer::AcceptLoop, this);
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Kick every live connection out of its blocking read, then wait for
  // the (detached) connection threads to drain.
  std::unique_lock<std::mutex> lock(conns_mu_);
  for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  conns_cv_.wait(lock, [&] { return active_conns_ == 0; });
}

bool NetServer::RegisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  if (stopping_.load(std::memory_order_acquire)) return false;
  live_fds_.insert(fd);
  ++active_conns_;
  return true;
}

void NetServer::UnregisterConnection(int fd) {
  // notify_all stays under the lock: Stop()'s waiter may be the last
  // reference holder, and ~NetServer destroys conns_cv_ the moment the
  // predicate is observed. Broadcasting before the unlock guarantees
  // the cv is never touched after the waiter can return.
  std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.erase(fd);
  --active_conns_;
  conns_cv_.notify_all();
}

void NetServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!RegisterConnection(fd)) {
      ::close(fd);
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.net.connections", 1);
    // Detached: lifetime is governed by the registration — Stop() shuts
    // the fd down and waits for active_conns_ to hit zero.
    std::thread([this, fd] {
      ServeConnection(fd);
      ::close(fd);
      UnregisterConnection(fd);
    }).detach();
  }
}

void NetServer::ServeConnection(int fd) {
  // Protocol detection: peek the first four bytes. ASCII "POST"/"GET "
  // as a little-endian length decode to > kMaxFrameBytes, so a binary
  // peer can never be mistaken for HTTP or vice versa.
  char peek[4];
  const ssize_t n = ::recv(fd, peek, sizeof(peek), MSG_PEEK | MSG_WAITALL);
  if (n < static_cast<ssize_t>(sizeof(peek))) return;
  if (std::memcmp(peek, "POST", 4) == 0 || std::memcmp(peek, "GET ", 4) == 0) {
    ServeHttp(fd, "");
    return;
  }
  ServeBinary(fd);
}

WireStatus NetServer::HandleRequest(TopKRequest request, TopKResult* result,
                                    std::string* error) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.net.requests", 1);
  Result<TopKResult> outcome = engine_->Submit(std::move(request)).get();
  if (!outcome.ok()) {
    *error = outcome.status().message();
    return WireStatusFromStatus(outcome.status());
  }
  *result = outcome.MoveValueUnsafe();
  return WireStatus::kOk;
}

void NetServer::ServeBinary(int fd) {
  // Pipelined: every frame is submitted to the scheduler the moment it
  // is decoded — a client streaming requests gets ALL of them into the
  // admission queue, where continuous batching, priorities and
  // load-shedding act on them. A writer thread drains the futures in
  // request order, so responses stay in request order per connection.
  struct PendingReply {
    std::future<Result<TopKResult>> future;  // !valid(): use raw instead
    std::vector<uint8_t> raw;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingReply> inflight;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      PendingReply reply;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !inflight.empty(); });
        if (inflight.empty()) return;
        reply = std::move(inflight.front());
        inflight.pop_front();
      }
      std::vector<uint8_t> frame;
      if (reply.future.valid()) {
        Result<TopKResult> outcome = reply.future.get();
        frame = outcome.ok()
                    ? EncodeTopKResponse(*outcome)
                    : EncodeErrorResponse(WireStatusFromStatus(outcome.status()),
                                          outcome.status().message());
      } else {
        frame = std::move(reply.raw);
      }
      if (!WriteFrame(fd, frame)) {
        // Client hung up mid-reply: drain remaining futures without
        // writing (their promises resolve regardless), then exit.
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done; });
        return;
      }
    }
  });

  auto enqueue = [&](PendingReply reply) {
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight.push_back(std::move(reply));
    }
    cv.notify_one();
  };

  std::vector<uint8_t> payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!ReadFrame(fd, &payload)) break;  // EOF, error, or oversized
    Result<TopKRequest> request =
        DecodeTopKRequest(payload.data(), payload.size());
    if (!request.ok()) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      KGAG_COUNTER_ADD("serve.net.malformed_frames", 1);
      PendingReply reply;
      reply.raw = EncodeErrorResponse(WireStatus::kMalformed,
                                      request.status().message());
      enqueue(std::move(reply));
      break;  // framing is suspect; don't try to resync
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.net.requests", 1);
    PendingReply reply;
    reply.future = engine_->Submit(request.MoveValueUnsafe());
    enqueue(std::move(reply));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
}

void NetServer::ServeHttp(int fd, const std::string&) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.net.requests.http", 1);
  // Read headers (bounded), then exactly Content-Length body bytes.
  std::string head;
  char buf[1024];
  size_t header_end = std::string::npos;
  while (head.size() < 16384) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<size_t>(n));
    header_end = head.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) {
    (void)WriteHttp(fd, 400, "text/plain", "bad request\n");
    return;
  }
  std::istringstream line(head.substr(0, head.find('\n')));
  std::string method, target;
  line >> method >> target;
  if (method != "POST") {
    (void)WriteHttp(fd, 405, "text/plain", "only POST is supported\n");
    return;
  }
  // Case-insensitive Content-Length scan over the header block.
  size_t content_length = 0;
  {
    std::string lower = head.substr(0, header_end);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    const size_t at = lower.find("content-length:");
    if (at != std::string::npos) {
      content_length = static_cast<size_t>(
          std::strtoul(lower.c_str() + at + 15, nullptr, 10));
    }
  }
  if (content_length > kMaxFrameBytes) {
    (void)WriteHttp(fd, 400, "text/plain", "body too large\n");
    return;
  }
  std::string body = head.substr(header_end + 4);
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    body.append(buf, static_cast<size_t>(n));
  }
  body.resize(content_length);

  TopKRequest request;
  bool have_members = false, parse_ok = true;
  for (const auto& [key, value] : ParseForm(body)) {
    if (key == "members") {
      parse_ok = ParseIdList(value, &request.members) && parse_ok;
      have_members = true;
    } else if (key == "exclude") {
      parse_ok = ParseIdList(value, &request.exclude_seen) && parse_ok;
    } else if (key == "k") {
      request.k = static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "deadline_us") {
      request.deadline_us =
          static_cast<int64_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "priority") {
      if (value == "batch") {
        request.priority = RequestClass::kBatch;
      } else if (value != "interactive") {
        parse_ok = false;
      }
    } else {
      parse_ok = false;  // unknown field: fail loud, not silent
    }
  }
  if (!parse_ok || !have_members) {
    (void)WriteHttp(fd, 400, "text/plain",
                    "expected members=1,2,3[&k=10][&exclude=4,5]"
                    "[&priority=interactive|batch][&deadline_us=0]\n");
    return;
  }
  TopKResult result;
  std::string error;
  const WireStatus status = HandleRequest(std::move(request), &result, &error);
  if (status != WireStatus::kOk) {
    std::ostringstream os;
    os << "{\"error\":\"" << WireStatusName(status) << "\",\"message\":\""
       << error << "\"}";
    (void)WriteHttp(fd, HttpStatusFor(status), "application/json", os.str());
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << "{\"items\":[";
  for (size_t i = 0; i < result.items.size(); ++i) {
    if (i > 0) os << ",";
    os << result.items[i];
  }
  os << "],\"scores\":[";
  for (size_t i = 0; i < result.scores.size(); ++i) {
    if (i > 0) os << ",";
    os << result.scores[i];
  }
  os << "],\"cache_hit\":" << (result.cache_hit ? "true" : "false") << "}";
  (void)WriteHttp(fd, 200, "application/json", os.str());
}

std::string NetServer::StatusJson() const {
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active = active_conns_;
  }
  std::ostringstream os;
  os << "{\"running\":" << (running() ? "true" : "false")
     << ",\"port\":" << port_
     << ",\"connections_accepted\":"
     << connections_.load(std::memory_order_relaxed)
     << ",\"active_connections\":" << active
     << ",\"requests\":" << requests_.load(std::memory_order_relaxed)
     << ",\"http_requests\":"
     << http_requests_.load(std::memory_order_relaxed)
     << ",\"malformed_frames\":"
     << malformed_.load(std::memory_order_relaxed) << "}";
  return os.str();
}

}  // namespace serve
}  // namespace kgag
