#include "serve/group_cache.h"

#include <utility>

#include "obs/obs.h"

namespace kgag {
namespace serve {

GroupRepCache::GroupRepCache(size_t capacity, size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {}

size_t GroupRepCache::ApproxEntryBytes(const std::vector<UserId>& key,
                                       const GroupRep& rep) {
  // Per-entry bookkeeping: list node + index node + two vector headers +
  // the shared_ptr control block. A round constant keeps the accounting
  // deterministic across allocators.
  constexpr size_t kOverhead = 160;
  return kOverhead + key.size() * sizeof(UserId) +
         rep.members.size() * sizeof(UserId) +
         rep.member_emb.size() * sizeof(double) +
         rep.pi.size() * sizeof(double);
}

std::shared_ptr<const GroupRep> GroupRepCache::Get(
    const std::vector<UserId>& key, uint64_t epoch) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.misses", 1);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.misses", 1);
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    // Built against a different artifact version: a stale rep must never
    // cross a swap, so the entry dies here (lazy invalidation — the swap
    // itself never sweeps the cache).
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    epoch_evictions_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.epoch_evictions", 1);
    misses_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.misses", 1);
    KGAG_GAUGE_SET("serve.cache.size", lru_.size());
    KGAG_GAUGE_SET("serve.cache.bytes", bytes_);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.cache.hits", 1);
  return it->second->rep;
}

void GroupRepCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  KGAG_GAUGE_SET("serve.cache.size", 0);
  KGAG_GAUGE_SET("serve.cache.bytes", 0);
}

void GroupRepCache::EvictLocked() {
  while (!lru_.empty() &&
         (lru_.size() > capacity_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_ && lru_.size() > 1))) {
    // The byte bound never evicts the last (just-inserted) entry: one
    // oversized rep still serves its own request's retries.
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.evictions", 1);
  }
}

void GroupRepCache::Put(const std::vector<UserId>& key,
                        std::shared_ptr<const GroupRep> rep,
                        uint64_t epoch) {
  if (capacity_ == 0 || rep == nullptr) return;
  const size_t entry_bytes = ApproxEntryBytes(key, *rep);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->rep = std::move(rep);
    it->second->epoch = epoch;
    it->second->bytes = entry_bytes;
    bytes_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictLocked();
    KGAG_GAUGE_SET("serve.cache.size", lru_.size());
    KGAG_GAUGE_SET("serve.cache.bytes", bytes_);
    return;
  }
  lru_.push_front(Entry{key, std::move(rep), epoch, entry_bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += entry_bytes;
  EvictLocked();
  KGAG_GAUGE_SET("serve.cache.size", lru_.size());
  KGAG_GAUGE_SET("serve.cache.bytes", bytes_);
}

double GroupRepCache::HitRate() const {
  const uint64_t h = hits();
  const uint64_t m = misses();
  return h + m == 0 ? 0.0 : static_cast<double>(h) /
                                static_cast<double>(h + m);
}

size_t GroupRepCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t GroupRepCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace serve
}  // namespace kgag
