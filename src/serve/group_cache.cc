#include "serve/group_cache.h"

#include <utility>

#include "obs/obs.h"

namespace kgag {
namespace serve {

GroupRepCache::GroupRepCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const GroupRep> GroupRepCache::Get(
    const std::vector<UserId>& key) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.misses", 1);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.cache.misses", 1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.cache.hits", 1);
  return it->second->second;
}

void GroupRepCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  KGAG_GAUGE_SET("serve.cache.size", 0);
}

void GroupRepCache::Put(const std::vector<UserId>& key,
                        std::shared_ptr<const GroupRep> rep) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(rep);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(rep));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    KGAG_COUNTER_ADD("serve.cache.evictions", 1);
  }
  KGAG_GAUGE_SET("serve.cache.size", lru_.size());
}

double GroupRepCache::HitRate() const {
  const uint64_t h = hits();
  const uint64_t m = misses();
  return h + m == 0 ? 0.0 : static_cast<double>(h) /
                                static_cast<double>(h + m);
}

size_t GroupRepCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace serve
}  // namespace kgag
