#include "serve/bigworld_freeze.h"

#include <algorithm>
#include <vector>

#include "ckpt/checkpoint.h"
#include "serve/artifact_mmap.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"

namespace kgag {
namespace serve {

namespace {

using synthetic::BigWorldGen;
using synthetic::BigWorldSpec;

using RowFiller = void (BigWorldGen::*)(uint64_t, uint64_t, double*) const;

/// Deterministic attention tensors at the world's shapes.
struct BigWorldAttention {
  Tensor w1, w2, bias, vc;
};

BigWorldAttention MakeAttention(const BigWorldGen& gen) {
  const BigWorldSpec& spec = gen.spec();
  const size_t d = spec.dim;
  BigWorldAttention a;
  a.w1 = Tensor(d, d);
  a.w2 = Tensor(d * (spec.group_size - 1), d);
  a.bias = Tensor(1, d);
  a.vc = Tensor(d, 1);
  gen.Attention(a.w1.data(), a.w2.data(), a.bias.data(), a.vc.data());
  return a;
}

ArtifactV2Meta MakeMeta(const BigWorldSpec& spec,
                        const BigWorldFreezeOptions& options) {
  ArtifactV2Meta meta;
  meta.dim = spec.dim;
  meta.group_size = spec.group_size;
  meta.use_sp = true;
  meta.use_pi = true;
  meta.num_users = static_cast<uint32_t>(spec.num_users);
  meta.num_items = static_cast<uint32_t>(spec.num_items);
  meta.quant_type = static_cast<uint8_t>(options.quant);
  meta.quant_block = options.quant == QuantType::kInt8 ? options.quant_block : 0;
  return meta;
}

/// Streams one rep table into an open v2 codes blob: generate a chunk of
/// fp64 rows, quantize in place (row-local, so chunking is invisible in
/// the codes), append; int8 scales collect in `scales_out` for the
/// separate scales blob that follows.
Status StreamTableV2(ArtifactV2Writer* w, const BigWorldGen& gen,
                     RowFiller fill, uint64_t rows, uint32_t codes_tag,
                     uint32_t scales_tag, const BigWorldFreezeOptions& opt) {
  const uint64_t d = gen.spec().dim;
  const QuantType q = opt.quant;
  const uint32_t block = q == QuantType::kInt8 ? opt.quant_block : 0;
  const size_t spr = QuantScalesPerRow(q, d, block);
  const uint64_t chunk = std::max<uint64_t>(1, opt.chunk_rows);

  std::vector<double> raw(chunk * d);
  std::vector<uint8_t> codes(q == QuantType::kFp64 ? 0
                                                   : chunk * d * QuantElemBytes(q));
  std::vector<float> scales;
  scales.reserve(rows * spr);

  KGAG_RETURN_NOT_OK(w->BeginBlob(codes_tag));
  for (uint64_t start = 0; start < rows; start += chunk) {
    const uint64_t n = std::min(chunk, rows - start);
    (gen.*fill)(start, n, raw.data());
    if (q == QuantType::kFp64) {
      KGAG_RETURN_NOT_OK(w->Append(raw.data(), n * d * sizeof(double)));
    } else {
      std::vector<float> chunk_scales(n * spr);
      QuantizeRows(q, block, n, d, raw.data(), codes.data(),
                   chunk_scales.data());
      KGAG_RETURN_NOT_OK(w->Append(codes.data(), n * d * QuantElemBytes(q)));
      scales.insert(scales.end(), chunk_scales.begin(), chunk_scales.end());
    }
  }
  KGAG_RETURN_NOT_OK(w->EndBlob());
  return w->AddBlob(scales_tag, scales.data(), scales.size() * sizeof(float));
}

}  // namespace

Status FreezeBigWorldV2(const BigWorldGen& gen,
                        const BigWorldFreezeOptions& options,
                        const std::string& path) {
  const BigWorldSpec& spec = gen.spec();
  const BigWorldAttention attn = MakeAttention(gen);
  const ArtifactV2Meta meta = MakeMeta(spec, options);

  const uint8_t rep_dtype = meta.quant_type;
  const uint8_t f32 = static_cast<uint8_t>(QuantType::kFp32);
  const uint8_t f64 = static_cast<uint8_t>(QuantType::kFp64);
  const size_t spr =
      QuantScalesPerRow(options.quant, spec.dim, meta.quant_block);
  std::vector<BlobSpec> specs;
  specs.push_back({kBlobUserRep, rep_dtype, spec.num_users, spec.dim});
  specs.push_back({kBlobUserScales, f32, spec.num_users, spr});
  specs.push_back({kBlobItemRep, rep_dtype, spec.num_items, spec.dim});
  specs.push_back({kBlobItemScales, f32, spec.num_items, spr});
  specs.push_back({kBlobAttnW1, f64, attn.w1.rows(), attn.w1.cols()});
  specs.push_back({kBlobAttnW2, f64, attn.w2.rows(), attn.w2.cols()});
  specs.push_back({kBlobAttnBias, f64, attn.bias.rows(), attn.bias.cols()});
  specs.push_back({kBlobAttnVc, f64, attn.vc.rows(), attn.vc.cols()});

  ArtifactV2Writer w;
  KGAG_RETURN_NOT_OK(w.Open(path, meta, specs));
  KGAG_RETURN_NOT_OK(StreamTableV2(&w, gen, &BigWorldGen::UserRows,
                                   spec.num_users, kBlobUserRep,
                                   kBlobUserScales, options));
  KGAG_RETURN_NOT_OK(StreamTableV2(&w, gen, &BigWorldGen::ItemRows,
                                   spec.num_items, kBlobItemRep,
                                   kBlobItemScales, options));
  KGAG_RETURN_NOT_OK(
      w.AddBlob(kBlobAttnW1, attn.w1.data(), attn.w1.size() * sizeof(double)));
  KGAG_RETURN_NOT_OK(
      w.AddBlob(kBlobAttnW2, attn.w2.data(), attn.w2.size() * sizeof(double)));
  KGAG_RETURN_NOT_OK(w.AddBlob(kBlobAttnBias, attn.bias.data(),
                               attn.bias.size() * sizeof(double)));
  KGAG_RETURN_NOT_OK(
      w.AddBlob(kBlobAttnVc, attn.vc.data(), attn.vc.size() * sizeof(double)));
  return w.Finish();
}

namespace {

/// v1 WriteTensor record header (u64 rows | u64 cols) into an open chunk.
Status AppendTensorHeader(ckpt::ContainerFileWriter* w, uint64_t rows,
                          uint64_t cols) {
  KGAG_RETURN_NOT_OK(w->Append(&rows, sizeof(rows)));
  return w->Append(&cols, sizeof(cols));
}

Status AppendTensorRecord(ckpt::ContainerFileWriter* w, const Tensor& t) {
  KGAG_RETURN_NOT_OK(AppendTensorHeader(w, t.rows(), t.cols()));
  return w->Append(t.data(), t.size() * sizeof(double));
}

uint64_t TensorRecordBytes(const Tensor& t) {
  return 2 * sizeof(uint64_t) + t.size() * sizeof(double);
}

/// Streams one rep table as a v1 chunk. fp64 tables stream the raw
/// doubles after the WriteTensor header. Quantized tables follow the
/// WriteQuantizedMatrix record — scales precede codes, so int8 runs one
/// extra generation pass to learn the scales before the codes stream.
Status StreamTableV1(ckpt::ContainerFileWriter* w, const BigWorldGen& gen,
                     RowFiller fill, uint64_t rows, uint32_t tag,
                     const BigWorldFreezeOptions& opt) {
  const uint64_t d = gen.spec().dim;
  const QuantType q = opt.quant;
  const uint32_t block = q == QuantType::kInt8 ? opt.quant_block : 0;
  const size_t spr = QuantScalesPerRow(q, d, block);
  const uint64_t chunk = std::max<uint64_t>(1, opt.chunk_rows);
  std::vector<double> raw(chunk * d);

  if (q == QuantType::kFp64) {
    KGAG_RETURN_NOT_OK(
        w->BeginChunk(tag, 2 * sizeof(uint64_t) + rows * d * sizeof(double)));
    KGAG_RETURN_NOT_OK(AppendTensorHeader(w, rows, d));
    for (uint64_t start = 0; start < rows; start += chunk) {
      const uint64_t n = std::min(chunk, rows - start);
      (gen.*fill)(start, n, raw.data());
      KGAG_RETURN_NOT_OK(w->Append(raw.data(), n * d * sizeof(double)));
    }
    return w->EndChunk();
  }

  const uint64_t nbytes = rows * d * QuantElemBytes(q);
  const uint64_t nscales = rows * spr;
  std::vector<uint8_t> codes(chunk * d * QuantElemBytes(q));
  std::vector<float> chunk_scales(chunk * spr);

  std::vector<float> scales;
  if (spr != 0) {
    // Pass 1: quantize every chunk just for its scales (codes discarded).
    scales.reserve(nscales);
    for (uint64_t start = 0; start < rows; start += chunk) {
      const uint64_t n = std::min(chunk, rows - start);
      (gen.*fill)(start, n, raw.data());
      QuantizeRows(q, block, n, d, raw.data(), codes.data(),
                   chunk_scales.data());
      scales.insert(scales.end(), chunk_scales.begin(),
                    chunk_scales.begin() + n * spr);
    }
  }

  // WriteQuantizedMatrix layout: u8 type | u64 rows | u64 cols | u32
  // block | u64 nscales + scales | u64 nbytes + codes.
  const uint64_t payload = 1 + 2 * sizeof(uint64_t) + sizeof(uint32_t) +
                           sizeof(uint64_t) + nscales * sizeof(float) +
                           sizeof(uint64_t) + nbytes;
  KGAG_RETURN_NOT_OK(w->BeginChunk(tag, payload));
  const uint8_t type = static_cast<uint8_t>(q);
  KGAG_RETURN_NOT_OK(w->Append(&type, sizeof(type)));
  KGAG_RETURN_NOT_OK(w->Append(&rows, sizeof(rows)));
  const uint64_t cols = d;
  KGAG_RETURN_NOT_OK(w->Append(&cols, sizeof(cols)));
  KGAG_RETURN_NOT_OK(w->Append(&block, sizeof(block)));
  KGAG_RETURN_NOT_OK(w->Append(&nscales, sizeof(nscales)));
  KGAG_RETURN_NOT_OK(w->Append(scales.data(), scales.size() * sizeof(float)));
  KGAG_RETURN_NOT_OK(w->Append(&nbytes, sizeof(nbytes)));
  for (uint64_t start = 0; start < rows; start += chunk) {  // pass 2: codes
    const uint64_t n = std::min(chunk, rows - start);
    (gen.*fill)(start, n, raw.data());
    QuantizeRows(q, block, n, d, raw.data(), codes.data(),
                 chunk_scales.data());
    KGAG_RETURN_NOT_OK(w->Append(codes.data(), n * d * QuantElemBytes(q)));
  }
  return w->EndChunk();
}

}  // namespace

Status FreezeBigWorldV1(const BigWorldGen& gen,
                        const BigWorldFreezeOptions& options,
                        const std::string& path) {
  const BigWorldSpec& spec = gen.spec();
  const BigWorldAttention attn = MakeAttention(gen);
  const bool fp64 = options.quant == QuantType::kFp64;
  const uint32_t kTagMeta = ckpt::MakeTag('S', 'M', 'T', 'A');
  const uint32_t kTagUserEmb = ckpt::MakeTag('U', 'E', 'M', 'B');
  const uint32_t kTagItemEmb = ckpt::MakeTag('I', 'E', 'M', 'B');
  const uint32_t kTagAttention = ckpt::MakeTag('A', 'T', 'T', 'N');
  const uint32_t kTagQuantMeta = ckpt::MakeTag('Q', 'N', 'T', 'M');
  const uint32_t kTagQuantUser = ckpt::MakeTag('Q', 'U', 'S', 'R');
  const uint32_t kTagQuantItem = ckpt::MakeTag('Q', 'I', 'T', 'M');

  ckpt::ContainerFileWriter w;
  KGAG_RETURN_NOT_OK(
      w.Open(path, kArtifactMagic, /*chunk_count=*/fp64 ? 4 : 5));
  {
    // SMTA payload, field for field what EncodeFrozenModel writes.
    std::string meta;
    const uint32_t dim = spec.dim, gs = spec.group_size;
    const uint32_t nu = static_cast<uint32_t>(spec.num_users);
    const uint32_t ni = static_cast<uint32_t>(spec.num_items);
    const uint8_t on = 1;
    meta.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
    meta.append(reinterpret_cast<const char*>(&gs), sizeof(gs));
    meta.append(reinterpret_cast<const char*>(&on), 1);  // use_sp
    meta.append(reinterpret_cast<const char*>(&on), 1);  // use_pi
    meta.append(reinterpret_cast<const char*>(&nu), sizeof(nu));
    meta.append(reinterpret_cast<const char*>(&ni), sizeof(ni));
    KGAG_RETURN_NOT_OK(w.AddChunk(kTagMeta, meta));
  }
  if (!fp64) {
    std::string qm;
    const uint8_t type = static_cast<uint8_t>(options.quant);
    const uint32_t block =
        options.quant == QuantType::kInt8 ? options.quant_block : 0;
    qm.append(reinterpret_cast<const char*>(&type), 1);
    qm.append(reinterpret_cast<const char*>(&block), sizeof(block));
    KGAG_RETURN_NOT_OK(w.AddChunk(kTagQuantMeta, qm));
  }
  KGAG_RETURN_NOT_OK(StreamTableV1(&w, gen, &BigWorldGen::UserRows,
                                   spec.num_users,
                                   fp64 ? kTagUserEmb : kTagQuantUser,
                                   options));
  KGAG_RETURN_NOT_OK(StreamTableV1(&w, gen, &BigWorldGen::ItemRows,
                                   spec.num_items,
                                   fp64 ? kTagItemEmb : kTagQuantItem,
                                   options));
  {
    const uint64_t attn_len =
        TensorRecordBytes(attn.w1) + TensorRecordBytes(attn.w2) +
        TensorRecordBytes(attn.bias) + TensorRecordBytes(attn.vc);
    KGAG_RETURN_NOT_OK(w.BeginChunk(kTagAttention, attn_len));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, attn.w1));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, attn.w2));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, attn.bias));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, attn.vc));
    KGAG_RETURN_NOT_OK(w.EndChunk());
  }
  return w.Finish();
}

}  // namespace serve
}  // namespace kgag
