// LRU cache of group representations, keyed by the canonical (sorted,
// unique) member set — the same canonicalization BuildGroupRep applies,
// so any member ordering and duplicate ids a client sends hit the same
// entry. Entries are shared_ptr<const GroupRep>: a hit stays valid for
// the full request even if the entry is evicted mid-flight.
#ifndef KGAG_SERVE_GROUP_CACHE_H_
#define KGAG_SERVE_GROUP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/interactions.h"
#include "serve/frozen_scorer.h"

namespace kgag {
namespace serve {

/// \brief Thread-safe LRU map: canonical member set -> GroupRep.
class GroupRepCache {
 public:
  /// `capacity` 0 disables caching (every Get misses, Put is a no-op).
  explicit GroupRepCache(size_t capacity);

  /// The rep for `key` (which must already be sorted and unique — callers
  /// go through BuildGroupRep's canonicalization), or nullptr on a miss.
  /// A hit moves the entry to the front of the LRU order.
  std::shared_ptr<const GroupRep> Get(const std::vector<UserId>& key);

  /// Inserts (or refreshes) an entry, evicting from the LRU tail beyond
  /// capacity.
  void Put(const std::vector<UserId>& key,
           std::shared_ptr<const GroupRep> rep);

  /// Drops every entry and zeroes the hit/miss counters (benchmarks call
  /// this between warmup and the timed window).
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// hits / (hits + misses); 0 before any lookup.
  double HitRate() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    size_t operator()(const std::vector<UserId>& key) const {
      // FNV-1a over the id bytes; ids are canonical so equal sets hash
      // equally.
      uint64_t h = 1469598103934665603ull;
      for (UserId u : key) {
        for (size_t b = 0; b < sizeof(u); ++b) {
          h ^= static_cast<uint64_t>((static_cast<uint32_t>(u) >> (8 * b)) &
                                     0xff);
          h *= 1099511628211ull;
        }
      }
      return static_cast<size_t>(h);
    }
  };

  using LruList =
      std::list<std::pair<std::vector<UserId>,
                          std::shared_ptr<const GroupRep>>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::vector<UserId>, LruList::iterator, KeyHash> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_GROUP_CACHE_H_
