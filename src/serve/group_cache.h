// LRU cache of group representations, keyed by the canonical (sorted,
// unique) member set — the same canonicalization BuildGroupRep applies,
// so any member ordering and duplicate ids a client sends hit the same
// entry. Entries are shared_ptr<const GroupRep>: a hit stays valid for
// the full request even if the entry is evicted mid-flight.
//
// Model-epoch tagging (DESIGN.md §15): every entry carries the artifact
// epoch it was built against. A Get() whose epoch does not match the
// entry's is a miss that also erases the entry — after a hot-swap, a rep
// computed on the old model can never be served against the new one, and
// the cache invalidates itself lazily without the swap ever taking the
// cache lock for a full sweep. Single-model callers pass the default
// epoch 0 everywhere and behave exactly as before.
//
// Bounding: entry count (capacity) AND approximate bytes (max_bytes,
// 0 = unbounded). A group rep's footprint scales with members x dim, so
// a count bound alone lets a few thousand large-group entries dwarf the
// rep tables; the byte bound keeps the cache honest regardless of group
// shape. Evictions from either bound count into serve.cache.evictions.
#ifndef KGAG_SERVE_GROUP_CACHE_H_
#define KGAG_SERVE_GROUP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/interactions.h"
#include "serve/frozen_scorer.h"

namespace kgag {
namespace serve {

/// \brief Thread-safe LRU map: canonical member set -> GroupRep.
class GroupRepCache {
 public:
  /// `capacity` 0 disables caching (every Get misses, Put is a no-op).
  /// `max_bytes` additionally bounds the approximate resident bytes of
  /// the cached reps (0 = no byte bound).
  explicit GroupRepCache(size_t capacity, size_t max_bytes = 0);

  /// The rep for `key` (which must already be sorted and unique — callers
  /// go through BuildGroupRep's canonicalization), or nullptr on a miss.
  /// A hit moves the entry to the front of the LRU order. An entry tagged
  /// with a different `epoch` is erased and reported as a miss (stale
  /// cross-swap rep — see the header comment).
  std::shared_ptr<const GroupRep> Get(const std::vector<UserId>& key,
                                      uint64_t epoch = 0);

  /// Inserts (or refreshes) an entry tagged with `epoch`, evicting from
  /// the LRU tail beyond capacity or the byte bound.
  void Put(const std::vector<UserId>& key,
           std::shared_ptr<const GroupRep> rep, uint64_t epoch = 0);

  /// Drops every entry and zeroes the hit/miss counters (benchmarks call
  /// this between warmup and the timed window).
  void Clear();

  /// Approximate resident bytes of one entry: key + rep members + the
  /// member-embedding and PI tensors + bookkeeping overhead.
  static size_t ApproxEntryBytes(const std::vector<UserId>& key,
                                 const GroupRep& rep);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Entries evicted at the capacity or byte bound (lifetime total).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Entries erased because a Get saw a different model epoch.
  uint64_t epoch_evictions() const {
    return epoch_evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 before any lookup.
  double HitRate() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Approximate bytes currently cached.
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct KeyHash {
    size_t operator()(const std::vector<UserId>& key) const {
      // FNV-1a over the id bytes; ids are canonical so equal sets hash
      // equally.
      uint64_t h = 1469598103934665603ull;
      for (UserId u : key) {
        for (size_t b = 0; b < sizeof(u); ++b) {
          h ^= static_cast<uint64_t>((static_cast<uint32_t>(u) >> (8 * b)) &
                                     0xff);
          h *= 1099511628211ull;
        }
      }
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    std::vector<UserId> key;
    std::shared_ptr<const GroupRep> rep;
    uint64_t epoch = 0;
    size_t bytes = 0;
  };

  using LruList = std::list<Entry>;

  /// Pops LRU-tail entries until both bounds hold; call with mu_ held.
  void EvictLocked();

  const size_t capacity_;
  const size_t max_bytes_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::vector<UserId>, LruList::iterator, KeyHash> index_;
  size_t bytes_ = 0;  ///< sum of Entry::bytes; guarded by mu_
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> epoch_evictions_{0};
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_GROUP_CACHE_H_
