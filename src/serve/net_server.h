// Data-plane network front-end (DESIGN.md §13): accepts TCP
// connections, decodes requests, and feeds them into a ServingEngine's
// continuous-batching scheduler. Dependency-free (raw POSIX sockets),
// same spirit as obs::IntrospectionServer but for the hot path.
//
// Two protocols share one port, detected from the first four bytes of
// the connection:
//   - length-prefixed binary frames (net_protocol.h) — the real data
//     plane. One connection carries a sequence of request/response
//     frame pairs (pipelined clients get responses in request order).
//   - minimal HTTP/1.1 POST fallback — form-encoded body
//     (members=1,2,3&k=10&exclude=4&priority=batch&deadline_us=500),
//     JSON reply. For curl and smoke tests, not for throughput.
//
// Threading: one accept thread plus one thread per live connection.
// Connection concurrency is what drives batch formation — many
// connections blocked in Submit() futures is exactly the concurrent
// submitter pattern the scheduler coalesces. Stop() shuts down the
// listen socket and every live connection fd, then waits for all
// connection threads to finish; it is idempotent.
//
// Metrics: serve.net.connections, serve.net.requests,
// serve.net.requests.http, serve.net.malformed_frames.
#ifndef KGAG_SERVE_NET_SERVER_H_
#define KGAG_SERVE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/result.h"
#include "serve/net_protocol.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace serve {

/// \brief TCP front-end that owns no model state — it borrows a
/// ServingEngine and translates wire traffic into Submit() calls.
class NetServer {
 public:
  struct Options {
    /// 0 = ephemeral; read the bound port back with port().
    int port = 0;
    std::string bind_address = "127.0.0.1";
  };

  /// `engine` is borrowed and must outlive the server.
  NetServer(ServingEngine* engine, Options options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();
  /// Stops accepting, tears down live connections, joins. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (after Start()).
  int port() const { return port_; }

  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t malformed_frames() const {
    return malformed_.load(std::memory_order_relaxed);
  }

  /// Front-end state as JSON for /statusz.
  std::string StatusJson() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Binary frame loop: runs until EOF, error, or Stop().
  void ServeBinary(int fd);
  /// One-shot HTTP/1.1 exchange (Connection: close semantics).
  void ServeHttp(int fd, const std::string& initial);

  /// Submits one decoded request and writes the response frame / body.
  /// Returns the wire status the client saw.
  WireStatus HandleRequest(TopKRequest request, TopKResult* result,
                           std::string* error);

  /// Tracks a live connection fd so Stop() can shut it down. Returns
  /// false when the server is stopping (caller must close the fd).
  bool RegisterConnection(int fd);
  void UnregisterConnection(int fd);

  ServingEngine* engine_;
  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::unordered_set<int> live_fds_;  ///< guarded by conns_mu_
  size_t active_conns_ = 0;           ///< guarded by conns_mu_

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> http_requests_{0};
  std::atomic<uint64_t> malformed_{0};
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_NET_SERVER_H_
