#include "serve/artifact_mmap.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define KGAG_HAVE_MMAP 1
#else
#define KGAG_HAVE_MMAP 0
#endif

namespace kgag {
namespace serve {

namespace {

// Fixed header bytes before the blob index: magic(8) + version(4) +
// meta(4+4+1+1+4+4+1+4 = 23) + blob_count(4).
constexpr size_t kFixedHeaderBytes = 8 + 4 + 23 + 4;
// One index entry: tag(4) + dtype(1) + rows(8) + cols(8) + offset(8) +
// nbytes(8) + crc(4).
constexpr size_t kEntryBytes = 41;
// Far above any real artifact's blob count, far below anything that could
// size a hostile allocation.
constexpr uint32_t kMaxBlobs = 4096;

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }

size_t HeaderBytes(size_t blob_count) {
  return kFixedHeaderBytes + blob_count * kEntryBytes + sizeof(uint32_t);
}

Status FormatError(const std::string& what) {
  return Status::InvalidArgument("KGAGSRV2 artifact: " + what);
}

bool ValidDtype(uint8_t dtype) {
  return dtype <= static_cast<uint8_t>(QuantType::kInt8);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadRaw(const uint8_t* data, size_t size, size_t* pos, void* out,
             size_t len) {
  if (size - *pos < len) return false;
  std::memcpy(out, data + *pos, len);
  *pos += len;
  return true;
}

/// Serializes header + index with the given CRCs, appends the trailing
/// header CRC, and zero-pads to the 64-byte data start. This is the one
/// byte-layout definition: the writer emits it and the loader's parser is
/// tested against it.
std::string BuildHeader(const ArtifactV2Meta& meta,
                        const std::vector<BlobEntry>& entries) {
  std::string h;
  h.reserve(AlignUp(HeaderBytes(entries.size()), kArtifactV2Align));
  h.append(kArtifactV2Magic.data(), kArtifactV2Magic.size());
  AppendPod(&h, kArtifactV2Version);
  AppendPod(&h, meta.dim);
  AppendPod(&h, meta.group_size);
  AppendPod(&h, static_cast<uint8_t>(meta.use_sp ? 1 : 0));
  AppendPod(&h, static_cast<uint8_t>(meta.use_pi ? 1 : 0));
  AppendPod(&h, meta.num_users);
  AppendPod(&h, meta.num_items);
  AppendPod(&h, meta.quant_type);
  AppendPod(&h, meta.quant_block);
  AppendPod(&h, static_cast<uint32_t>(entries.size()));
  for (const BlobEntry& e : entries) {
    AppendPod(&h, e.tag);
    AppendPod(&h, e.dtype);
    AppendPod(&h, e.rows);
    AppendPod(&h, e.cols);
    AppendPod(&h, e.offset);
    AppendPod(&h, e.nbytes);
    AppendPod(&h, e.crc);
  }
  AppendPod(&h, Crc32(h.data(), h.size()));
  h.resize(AlignUp(h.size(), kArtifactV2Align), '\0');
  return h;
}

/// Lays blobs out after the header: every offset 64-byte aligned, file
/// order = declaration order. Returns the total file size.
Status PlanLayout(const std::vector<BlobSpec>& blobs,
                  std::vector<BlobEntry>* entries, uint64_t* file_bytes) {
  if (blobs.size() > kMaxBlobs) return FormatError("too many blobs");
  entries->clear();
  entries->reserve(blobs.size());
  uint64_t off = AlignUp(HeaderBytes(blobs.size()), kArtifactV2Align);
  for (const BlobSpec& s : blobs) {
    if (!ValidDtype(s.dtype)) return FormatError("unknown blob dtype");
    BlobEntry e;
    e.tag = s.tag;
    e.dtype = s.dtype;
    e.rows = s.rows;
    e.cols = s.cols;
    e.nbytes =
        s.rows * s.cols * QuantElemBytes(static_cast<QuantType>(s.dtype));
    e.offset = off;
    off = AlignUp(off + e.nbytes, kArtifactV2Align);
    entries->push_back(e);
  }
  // The file ends exactly where the last blob does — no trailing pad.
  *file_bytes = entries->empty()
                    ? AlignUp(HeaderBytes(0), kArtifactV2Align)
                    : entries->back().offset + entries->back().nbytes;
  return Status::OK();
}

}  // namespace

uint64_t ArtifactV2FileBytes(const std::vector<BlobSpec>& blobs) {
  std::vector<BlobEntry> entries;
  uint64_t bytes = 0;
  if (!PlanLayout(blobs, &entries, &bytes).ok()) return 0;
  return bytes;
}

Status ArtifactV2Writer::Open(const std::string& path,
                              const ArtifactV2Meta& meta,
                              const std::vector<BlobSpec>& blobs,
                              const AtomicWriteOptions& options) {
  meta_ = meta;
  KGAG_RETURN_NOT_OK(PlanLayout(blobs, &entries_, &file_bytes_));
  next_blob_ = 0;
  in_blob_ = false;
  KGAG_RETURN_NOT_OK(file_.Open(path, options));
  // Placeholder header region: all zeros. Finish back-patches the real
  // bytes once every blob CRC is known, so a crash mid-write leaves a
  // temp file that can never parse as a valid artifact.
  const std::string zeros(
      AlignUp(HeaderBytes(entries_.size()), kArtifactV2Align), '\0');
  return file_.Append(zeros);
}

Status ArtifactV2Writer::PadTo(uint64_t offset) {
  if (file_.position() > offset) {
    Abandon();
    return FormatError("writer position past blob offset");
  }
  static constexpr char kZeros[256] = {};
  while (file_.position() < offset) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(sizeof(kZeros), offset - file_.position()));
    KGAG_RETURN_NOT_OK(file_.Append(kZeros, n));
  }
  return Status::OK();
}

Status ArtifactV2Writer::BeginBlob(uint32_t tag) {
  if (in_blob_) return FormatError("blob already open");
  if (next_blob_ >= entries_.size()) {
    return FormatError("more blobs than declared at Open");
  }
  BlobEntry& e = entries_[next_blob_];
  if (e.tag != tag) return FormatError("blob written out of declared order");
  KGAG_RETURN_NOT_OK(PadTo(e.offset));
  in_blob_ = true;
  blob_remaining_ = e.nbytes;
  blob_crc_ = 0;
  return Status::OK();
}

Status ArtifactV2Writer::Append(const void* data, size_t len) {
  if (!in_blob_) return FormatError("no blob open");
  if (len > blob_remaining_) {
    Abandon();
    return FormatError("blob payload overruns declared size");
  }
  blob_crc_ = Crc32(data, len, blob_crc_);
  blob_remaining_ -= len;
  return file_.Append(data, len);
}

Status ArtifactV2Writer::EndBlob() {
  if (!in_blob_) return FormatError("no blob open");
  if (blob_remaining_ != 0) {
    Abandon();
    return FormatError("blob payload shorter than declared");
  }
  entries_[next_blob_].crc = blob_crc_;
  in_blob_ = false;
  ++next_blob_;
  return Status::OK();
}

Status ArtifactV2Writer::AddBlob(uint32_t tag, const void* data, size_t len) {
  KGAG_RETURN_NOT_OK(BeginBlob(tag));
  KGAG_RETURN_NOT_OK(Append(data, len));
  return EndBlob();
}

Status ArtifactV2Writer::Finish() {
  if (in_blob_) {
    Abandon();
    return FormatError("Finish with a blob still open");
  }
  if (next_blob_ != entries_.size()) {
    Abandon();
    return FormatError("fewer blobs written than declared");
  }
  KGAG_RETURN_NOT_OK(file_.Seek(0));
  KGAG_RETURN_NOT_OK(file_.Append(BuildHeader(meta_, entries_)));
  return file_.Finish();
}

Result<std::shared_ptr<MappedArtifact>> MappedArtifact::Map(
    const std::string& path, const Options& options) {
  std::shared_ptr<MappedArtifact> m(new MappedArtifact());
  m->path_ = path;
#if KGAG_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::IoError("stat " + path + ": " + msg);
  }
  m->size_ = static_cast<uint64_t>(st.st_size);
  if (m->size_ < HeaderBytes(0)) {
    ::close(fd);
    return FormatError("file shorter than the fixed header");
  }
  void* base = ::mmap(nullptr, m->size_, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " + std::strerror(errno));
  }
  m->base_ = static_cast<const uint8_t*>(base);
  m->is_mmap_ = true;
#else
  std::string bytes;
  KGAG_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  m->owned_.assign(bytes.begin(), bytes.end());
  m->base_ = m->owned_.data();
  m->size_ = m->owned_.size();
  m->is_mmap_ = false;
  if (m->size_ < HeaderBytes(0)) {
    return FormatError("file shorter than the fixed header");
  }
#endif

  // --- header ---
  size_t pos = 0;
  char magic[8];
  if (!ReadRaw(m->base_, m->size_, &pos, magic, sizeof(magic)) ||
      std::memcmp(magic, kArtifactV2Magic.data(), 8) != 0) {
    return FormatError("bad magic (not a KGAGSRV2 file)");
  }
  uint32_t version = 0;
  ArtifactV2Meta meta;
  uint8_t use_sp = 0, use_pi = 0;
  uint32_t blob_count = 0;
  if (!ReadRaw(m->base_, m->size_, &pos, &version, 4) ||
      !ReadRaw(m->base_, m->size_, &pos, &meta.dim, 4) ||
      !ReadRaw(m->base_, m->size_, &pos, &meta.group_size, 4) ||
      !ReadRaw(m->base_, m->size_, &pos, &use_sp, 1) ||
      !ReadRaw(m->base_, m->size_, &pos, &use_pi, 1) ||
      !ReadRaw(m->base_, m->size_, &pos, &meta.num_users, 4) ||
      !ReadRaw(m->base_, m->size_, &pos, &meta.num_items, 4) ||
      !ReadRaw(m->base_, m->size_, &pos, &meta.quant_type, 1) ||
      !ReadRaw(m->base_, m->size_, &pos, &meta.quant_block, 4) ||
      !ReadRaw(m->base_, m->size_, &pos, &blob_count, 4)) {
    return FormatError("truncated header");
  }
  if (version != kArtifactV2Version) {
    return FormatError("unsupported version " + std::to_string(version));
  }
  meta.use_sp = use_sp != 0;
  meta.use_pi = use_pi != 0;
  if (blob_count > kMaxBlobs) return FormatError("blob count out of range");
  const size_t header_bytes = HeaderBytes(blob_count);
  if (m->size_ < header_bytes) {
    return FormatError("file shorter than header + blob index");
  }

  // --- index + header CRC (always verified: a flipped bit in any offset
  // or size field must never become an out-of-bounds pointer) ---
  std::vector<BlobEntry> blobs(blob_count);
  for (BlobEntry& e : blobs) {
    ReadRaw(m->base_, m->size_, &pos, &e.tag, 4);
    ReadRaw(m->base_, m->size_, &pos, &e.dtype, 1);
    ReadRaw(m->base_, m->size_, &pos, &e.rows, 8);
    ReadRaw(m->base_, m->size_, &pos, &e.cols, 8);
    ReadRaw(m->base_, m->size_, &pos, &e.offset, 8);
    ReadRaw(m->base_, m->size_, &pos, &e.nbytes, 8);
    ReadRaw(m->base_, m->size_, &pos, &e.crc, 4);
  }
  const uint32_t computed = Crc32(m->base_, pos);
  uint32_t header_crc = 0;
  if (!ReadRaw(m->base_, m->size_, &pos, &header_crc, 4)) {
    return FormatError("truncated header checksum");
  }
  if (computed != header_crc) {
    return FormatError("header checksum mismatch");
  }

  // --- blob bounds ---
  const uint64_t data_start = AlignUp(header_bytes, kArtifactV2Align);
  for (size_t i = 0; i < blobs.size(); ++i) {
    const BlobEntry& e = blobs[i];
    if (!ValidDtype(e.dtype)) {
      return FormatError("unknown blob dtype at index " + std::to_string(i));
    }
    if (e.nbytes !=
        e.rows * e.cols * QuantElemBytes(static_cast<QuantType>(e.dtype))) {
      return FormatError("blob size does not match its shape at index " +
                         std::to_string(i));
    }
    if (e.offset % kArtifactV2Align != 0) {
      return FormatError("misaligned blob offset at index " +
                         std::to_string(i));
    }
    if (e.offset < data_start || e.offset > m->size_ ||
        e.nbytes > m->size_ - e.offset) {
      return FormatError("blob out of file bounds at index " +
                         std::to_string(i));
    }
  }
  std::vector<BlobEntry> sorted = blobs;
  std::sort(sorted.begin(), sorted.end(),
            [](const BlobEntry& a, const BlobEntry& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset + sorted[i - 1].nbytes) {
      return FormatError("overlapping blobs");
    }
  }

  m->meta_ = meta;
  m->blobs_ = std::move(blobs);
  if (options.verify_crc) KGAG_RETURN_NOT_OK(m->VerifyBlobs());
  return m;
}

MappedArtifact::~MappedArtifact() {
#if KGAG_HAVE_MMAP
  if (is_mmap_ && base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), size_);
  }
#endif
}

const BlobEntry* MappedArtifact::Find(uint32_t tag) const {
  for (const BlobEntry& e : blobs_) {
    if (e.tag == tag) return &e;
  }
  return nullptr;
}

Status MappedArtifact::VerifyBlobs() const {
  for (size_t i = 0; i < blobs_.size(); ++i) {
    const BlobEntry& e = blobs_[i];
    if (Crc32(BlobData(e), e.nbytes) != e.crc) {
      return FormatError("blob checksum mismatch at index " +
                         std::to_string(i) + " (" + path_ + ")");
    }
  }
  return Status::OK();
}

uint64_t MappedArtifact::ResidentBytes() const {
#if KGAG_HAVE_MMAP
  if (!is_mmap_ || size_ == 0) return size_;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return size_;
  const size_t pages = (size_ + static_cast<uint64_t>(page) - 1) /
                       static_cast<uint64_t>(page);
  std::vector<unsigned char> vec(pages);
#if defined(__APPLE__)
  if (::mincore(const_cast<uint8_t*>(base_), size_,
                reinterpret_cast<char*>(vec.data())) != 0) {
#else
  if (::mincore(const_cast<uint8_t*>(base_), size_, vec.data()) != 0) {
#endif
    return size_;
  }
  uint64_t resident = 0;
  for (unsigned char v : vec) {
    if (v & 1) resident += static_cast<uint64_t>(page);
  }
  return std::min(resident, size_);
#else
  return size_;
#endif
}

RepView MakeRepView(const MappedArtifact& m, const BlobEntry& codes,
                    const BlobEntry* scales) {
  RepView v;
  v.type = static_cast<QuantType>(codes.dtype);
  v.rows = codes.rows;
  v.cols = codes.cols;
  v.block = m.meta().quant_block;
  v.codes = m.BlobData(codes);
  if (scales != nullptr) {
    v.scales = reinterpret_cast<const float*>(m.BlobData(*scales));
  }
  return v;
}

}  // namespace serve
}  // namespace kgag
