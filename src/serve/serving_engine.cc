#include "serve/serving_engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace kgag {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             Clock::now() - start)
      .count();
}

}  // namespace

ServingEngine::ServingEngine(const FrozenModel* model, Options options)
    : model_(model),
      options_(std::move(options)),
      cache_(options_.cache_capacity),
      start_time_(Clock::now()) {
  KGAG_CHECK(model != nullptr);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  if (!options_.slo_objectives.empty()) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo_objectives);
  }
  dispatcher_ = std::thread(&ServingEngine::DispatcherLoop, this);
}

ServingEngine::~ServingEngine() { Shutdown(); }

void ServingEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // already shut down (or shutting down elsewhere)
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::vector<double> ServingEngine::TakeLatencySamples() {
  std::lock_guard<std::mutex> lock(samples_mu_);
  std::vector<double> out;
  out.swap(latency_samples_);
  return out;
}

Result<std::shared_ptr<const GroupRep>> ServingEngine::GetRep(
    std::span<const UserId> members, bool* cache_hit, uint64_t req_id) {
  KGAG_TRACE_SPAN_REQ("serve.rep_build", req_id);
  *cache_hit = false;
  if (members.empty()) {
    return Status::InvalidArgument("group has no members");
  }
  // Canonical cache key = the same sort+unique BuildGroupRep applies, so
  // key and rep members always agree.
  std::vector<UserId> key(members.begin(), members.end());
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());

  if (std::shared_ptr<const GroupRep> rep = cache_.Get(key)) {
    *cache_hit = true;
    return rep;
  }
  KGAG_ASSIGN_OR_RETURN(GroupRep built, BuildGroupRep(*model_, key));
  auto rep = std::make_shared<const GroupRep>(std::move(built));
  cache_.Put(key, rep);
  return std::shared_ptr<const GroupRep>(rep);
}

TopKResult ServingEngine::Rank(const std::vector<double>& scores, size_t k,
                               std::span<const ItemId> exclude_seen) const {
  // Exclusions filter at rank time: the GEMM shape and every surviving
  // item's score bits are unaffected by what a request excludes.
  std::vector<ItemId> excluded(exclude_seen.begin(), exclude_seen.end());
  std::sort(excluded.begin(), excluded.end());
  const std::vector<size_t> top =
      TopKIndicesWhere(scores, k, [&](size_t i) {
        return !std::binary_search(excluded.begin(), excluded.end(),
                                   static_cast<ItemId>(i));
      });
  TopKResult result;
  result.items.reserve(top.size());
  result.scores.reserve(top.size());
  for (size_t i : top) {
    result.items.push_back(static_cast<ItemId>(i));
    result.scores.push_back(scores[i]);
  }
  return result;
}

void ServingEngine::FinishRequest(Clock::time_point start) {
  served_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.requests", 1);
  const double micros = MicrosSince(start);
  KGAG_HDR_OBSERVE("serve.request_latency_us", micros);
  if (slo_) slo_->RecordRequest(micros, /*error=*/false);
  if (options_.record_latency) {
    std::lock_guard<std::mutex> lock(samples_mu_);
    latency_samples_.push_back(micros);
  }
  const double elapsed_s = MicrosSince(start_time_) * 1e-6;
  if (elapsed_s > 0) {
    KGAG_GAUGE_SET("serve.qps",
                   static_cast<double>(
                       served_.load(std::memory_order_relaxed)) /
                       elapsed_s);
  }
  KGAG_GAUGE_SET("serve.cache.hit_rate", cache_.HitRate());
}

void ServingEngine::FailRequest(Clock::time_point start) {
  // Failed requests keep their own counter and are NOT counted into
  // served_ or the latency histogram — an invalid-argument rejection
  // finishing in 2us must not drag p50 down — but they do burn SLO
  // error budget.
  KGAG_COUNTER_ADD("serve.requests.failed", 1);
  if (slo_) slo_->RecordRequest(MicrosSince(start), /*error=*/true);
}

Result<TopKResult> ServingEngine::TopK(std::span<const UserId> members,
                                       size_t k,
                                       std::span<const ItemId> exclude_seen) {
  const uint64_t req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  KGAG_TRACE_SPAN_REQ("serve.request", req_id);
  const Clock::time_point start = Clock::now();
  bool cache_hit = false;
  Result<std::shared_ptr<const GroupRep>> rep =
      GetRep(members, &cache_hit, req_id);
  if (!rep.ok()) {
    FailRequest(start);
    return rep.status();
  }
  std::vector<double> scores;
  {
    KGAG_TRACE_SPAN_REQ("serve.score_kernel", req_id);
    scores = ScoreAllItems(*model_, **rep);
  }
  TopKResult result;
  {
    KGAG_TRACE_SPAN_REQ("serve.topk", req_id);
    result = Rank(scores, k, exclude_seen);
  }
  result.cache_hit = cache_hit;
  batches_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.batches", 1);
  KGAG_HISTOGRAM_OBSERVE("serve.batch_size", 1.0,
                         ::kgag::obs::CountBounds());
  FinishRequest(start);
  return result;
}

std::future<Result<TopKResult>> ServingEngine::Submit(TopKRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  pending.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  KGAG_TRACE_SPAN_REQ("serve.submit", pending.req_id);
  if (obs::TraceRecorder::Global().enabled()) {
    // Trace-epoch timestamp so the dispatcher can emit this request's
    // queue-wait span on the same clock as the submit span.
    pending.submit_ts_us = obs::TraceRecorder::NowUs();
  }
  std::future<Result<TopKResult>> future = pending.promise.get_future();
  bool notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      KGAG_COUNTER_ADD("serve.requests.rejected", 1);
      pending.promise.set_value(
          Status::Internal("serving engine is shut down"));
      return future;
    }
    queue_.push_back(std::move(pending));
    // Wake the dispatcher only on the transitions it can act on: queue
    // went non-empty (it may be idle) or just filled a whole batch (it
    // may be holding one open under the deadline). Intermediate sizes
    // would only make wait_until re-check its predicate and sleep again.
    notify = queue_.size() == 1 || queue_.size() == options_.max_batch;
  }
  if (notify) cv_.notify_all();
  return future;
}

void ServingEngine::DispatcherLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    // Drain queued work even when stopping; exit only once idle.
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    if (options_.max_batch > 1 && options_.batch_deadline_us > 0 &&
        queue_.size() < options_.max_batch) {
      // Hold the batch open briefly so concurrent submitters coalesce;
      // stop_ also wakes us so shutdown never waits the full deadline.
      const Clock::time_point deadline =
          Clock::now() + std::chrono::microseconds(options_.batch_deadline_us);
      cv_.wait_until(lock, deadline, [&] {
        return stop_ || queue_.size() >= options_.max_batch;
      });
    }
    const size_t take = std::min(queue_.size(), options_.max_batch);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();

    if (options_.pool != nullptr) {
      // The batch body (rep building, the stacked GEMM, reduce + rank)
      // runs on the shared compute pool; `batch` outlives the task since
      // we block on its future.
      options_.pool->Submit([this, &batch] { ExecuteBatch(std::move(batch)); })
          .get();
    } else {
      ExecuteBatch(std::move(batch));
    }
  }
}

void ServingEngine::ExecuteBatch(std::vector<Pending> batch) {
  KGAG_TRACE_SPAN("serve.batch");
  const size_t n = static_cast<size_t>(model_->num_items);

  // Close out every request's queue-wait: the span runs on the
  // submitter's trace clock from Submit() to here, and the HDR series
  // feeds the same wall interval into /metrics.
  for (const Pending& p : batch) {
    KGAG_HDR_OBSERVE("serve.queue_wait_us", MicrosSince(p.enqueued));
    if (p.submit_ts_us > 0.0) {
      obs::TraceRecorder::Global().Record(
          "serve.queue_wait", p.submit_ts_us,
          obs::TraceRecorder::NowUs() - p.submit_ts_us, p.req_id);
    }
  }

  // Resolve each request's rep (errors resolve their promises now and
  // drop out of the GEMM).
  struct Live {
    Pending* pending;
    std::shared_ptr<const GroupRep> rep;
    bool cache_hit;
    size_t row_offset;
  };
  std::vector<Live> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    bool hit = false;
    Result<std::shared_ptr<const GroupRep>> rep =
        GetRep(p.request.members, &hit, p.req_id);
    if (!rep.ok()) {
      FailRequest(p.enqueued);
      p.promise.set_value(rep.status());
      continue;
    }
    live.push_back(Live{&p, rep.MoveValueUnsafe(), hit, 0});
  }
  if (live.empty()) return;

  // Coalesce requests for the same canonical group: duplicates share the
  // GEMM rows AND the softmax reduce, and only the final rank (k,
  // exclusions) runs per request. This is the batch-only win — the
  // per-request path cannot share scores even with a warm rep cache,
  // because scores never outlive a batch. Pointer equality catches
  // cache-served duplicates; the member compare catches rebuilt reps
  // (cache disabled or evicted mid-batch). O(batch²) is fine at
  // max_batch <= a few dozen.
  std::vector<size_t> owner(live.size());
  std::vector<size_t> distinct;
  {
    KGAG_TRACE_SPAN("serve.coalesce");
    for (size_t i = 0; i < live.size(); ++i) {
      owner[i] = live.size();
      for (size_t di : distinct) {
        if (live[i].rep == live[di].rep ||
            live[i].rep->members == live[di].rep->members) {
          owner[i] = di;
          break;
        }
      }
      if (owner[i] == live.size()) {
        owner[i] = i;
        distinct.push_back(i);
      }
    }
  }
  const uint64_t coalesced =
      static_cast<uint64_t>(live.size() - distinct.size());
  coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.coalesced_requests", coalesced);

  // One stacked GEMM for the whole batch: the distinct groups' member
  // rows concatenated at the model's precision (MemberStack), scored
  // against the full item table in a single pass — kernels::Gemm for
  // fp64 models, the matching QGemm* kernel for quantized ones. Each
  // output row's k-accumulation order is position-independent, so every
  // request's logits match what a solo GEMM would produce.
  MemberStack stack(*model_);
  for (size_t di : distinct) {
    live[di].row_offset = stack.Append(*live[di].rep);
  }
  std::vector<double> sp(stack.rows() * n);
  {
    KGAG_TRACE_SPAN("serve.score_kernel");
    stack.SpLogitsAllItems(sp.data());
  }

  // Count the batch before fulfilling any promise: a caller that has
  // collected every future must never read a stale batches_run().
  batches_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.batches", 1);
  KGAG_HISTOGRAM_OBSERVE("serve.batch_size", static_cast<double>(live.size()),
                         ::kgag::obs::CountBounds());

  std::vector<double> scores(n);
  for (size_t di : distinct) {
    ReduceScores(*model_, *live[di].rep, sp.data() + live[di].row_offset * n,
                 n, n, scores.data());
    for (size_t i = 0; i < live.size(); ++i) {
      if (owner[i] != di) continue;
      const Live& l = live[i];
      TopKResult result;
      {
        KGAG_TRACE_SPAN_REQ("serve.topk", l.pending->req_id);
        result = Rank(scores, l.pending->request.k,
                      l.pending->request.exclude_seen);
      }
      result.cache_hit = l.cache_hit;
      KGAG_TRACE_SPAN_REQ("serve.reply", l.pending->req_id);
      // Bookkeeping first: once the promise is fulfilled the submitter
      // may read requests_served() and must not see a stale count.
      FinishRequest(l.pending->enqueued);
      l.pending->promise.set_value(std::move(result));
    }
  }
}

std::string ServingEngine::StatusJson() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"requests_served\":" << served_.load(std::memory_order_relaxed)
     << ",\"batches_run\":" << batches_.load(std::memory_order_relaxed)
     << ",\"coalesced_requests\":"
     << coalesced_.load(std::memory_order_relaxed)
     << ",\"options\":{\"max_batch\":" << options_.max_batch
     << ",\"batch_deadline_us\":" << options_.batch_deadline_us
     << ",\"cache_capacity\":" << options_.cache_capacity << "}"
     << ",\"cache\":{\"size\":" << cache_.size()
     << ",\"capacity\":" << cache_.capacity()
     << ",\"hits\":" << cache_.hits() << ",\"misses\":" << cache_.misses()
     << ",\"hit_rate\":" << cache_.HitRate() << "}";
  if (slo_) os << ",\"slo\":" << slo_->StateJson();
  os << "}";
  return os.str();
}

}  // namespace serve
}  // namespace kgag
