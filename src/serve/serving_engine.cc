#include "serve/serving_engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace kgag {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             Clock::now() - start)
      .count();
}

}  // namespace

ServingEngine::ServingEngine(const FrozenModel* model, Options options)
    : ServingEngine(
          // Non-owning handle: the borrowed-pointer contract (model
          // outlives the engine) carries over from before hot-swap.
          std::shared_ptr<const FrozenModel>(model,
                                             [](const FrozenModel*) {}),
          std::move(options)) {}

ServingEngine::ServingEngine(std::shared_ptr<const FrozenModel> model,
                             Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_max_bytes),
      start_time_(Clock::now()) {
  KGAG_CHECK(model != nullptr);
  slot_.model = std::move(model);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.latency_sample_capacity =
      std::max<size_t>(1, options_.latency_sample_capacity);
  if (!options_.slo_objectives.empty()) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo_objectives);
  }
  dispatcher_ = std::thread(&ServingEngine::DispatcherLoop, this);
}

ServingEngine::~ServingEngine() { Shutdown(); }

ServingEngine::ModelSlot ServingEngine::CurrentSlot() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_;
}

const FrozenModel* ServingEngine::model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_.model.get();
}

std::shared_ptr<const FrozenModel> ServingEngine::model_ref() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_.model;
}

uint64_t ServingEngine::model_epoch() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_.epoch;
}

std::string ServingEngine::model_version() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_.version;
}

Status ServingEngine::SwapModel(std::shared_ptr<const FrozenModel> next,
                                std::string version) {
  if (next == nullptr) {
    return Status::InvalidArgument("SwapModel: null model");
  }
  const Clock::time_point start = Clock::now();
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    slot_.model = std::move(next);
    epoch = ++slot_.epoch;
    if (version.empty()) {
      slot_.version = "v";
      slot_.version += std::to_string(slot_.epoch);
    } else {
      slot_.version = std::move(version);
    }
  }
  // No queue lock, no cache sweep: admissions already past their slot
  // capture drain on the old model; the epoch tag retires their cache
  // entries lazily (group_cache.h).
  swaps_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.swap.count", 1);
  KGAG_GAUGE_SET("serve.swap.epoch", static_cast<double>(epoch));
  KGAG_GAUGE_SET("serve.swap.last_duration_us", MicrosSince(start));
  return Status::OK();
}

void ServingEngine::Shutdown() {
  // call_once makes concurrent Shutdown() (destructor vs. a signal
  // handler thread) safe: one caller tears down, the others block here
  // until it finishes; later calls are no-ops.
  std::call_once(shutdown_once_, [&] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();
    // The dispatcher drains the queue before exiting, so nothing should
    // remain — but if a queued request somehow survived, reject it
    // rather than destroying an unfulfilled promise (which would raise
    // std::future_error{broken_promise} in the waiter).
    std::deque<Pending> leftovers[2];
    {
      std::lock_guard<std::mutex> lock(mu_);
      leftovers[0].swap(queues_[0]);
      leftovers[1].swap(queues_[1]);
    }
    for (std::deque<Pending>& q : leftovers) {
      for (Pending& p : q) {
        ShedRequest(std::move(p),
                    Status::Internal("serving engine is shut down"));
      }
    }
  });
}

void ServingEngine::SetBatchHookForTest(BatchHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_hook_ = std::move(hook);
}

std::vector<double> ServingEngine::TakeLatencySamples() {
  std::lock_guard<std::mutex> lock(samples_mu_);
  std::vector<double> out;
  out.swap(latency_samples_);
  return out;
}

Result<std::shared_ptr<const GroupRep>> ServingEngine::GetRep(
    const ModelSlot& slot, std::span<const UserId> members, bool* cache_hit,
    uint64_t req_id) {
  KGAG_TRACE_SPAN_REQ("serve.rep_build", req_id);
  *cache_hit = false;
  if (members.empty()) {
    return Status::InvalidArgument("group has no members");
  }
  // Canonical cache key = the same sort+unique BuildGroupRep applies, so
  // key and rep members always agree.
  std::vector<UserId> key(members.begin(), members.end());
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());

  // Lookup and insert both carry the slot's epoch: a rep built on another
  // model version is a miss (and is erased), never a hit.
  if (std::shared_ptr<const GroupRep> rep = cache_.Get(key, slot.epoch)) {
    *cache_hit = true;
    return rep;
  }
  KGAG_ASSIGN_OR_RETURN(GroupRep built, BuildGroupRep(*slot.model, key));
  auto rep = std::make_shared<const GroupRep>(std::move(built));
  cache_.Put(key, rep, slot.epoch);
  return std::shared_ptr<const GroupRep>(rep);
}

TopKResult ServingEngine::Rank(const std::vector<double>& scores, size_t k,
                               std::span<const ItemId> exclude_seen) const {
  // Exclusions filter at rank time: the GEMM shape and every surviving
  // item's score bits are unaffected by what a request excludes.
  std::vector<ItemId> excluded(exclude_seen.begin(), exclude_seen.end());
  std::sort(excluded.begin(), excluded.end());
  const std::vector<size_t> top =
      TopKIndicesWhere(scores, k, [&](size_t i) {
        return !std::binary_search(excluded.begin(), excluded.end(),
                                   static_cast<ItemId>(i));
      });
  TopKResult result;
  result.items.reserve(top.size());
  result.scores.reserve(top.size());
  for (size_t i : top) {
    result.items.push_back(static_cast<ItemId>(i));
    result.scores.push_back(scores[i]);
  }
  return result;
}

uint64_t ServingEngine::FinishRequest(Clock::time_point start) {
  const uint64_t seq = served_.fetch_add(1, std::memory_order_relaxed) + 1;
  KGAG_COUNTER_ADD("serve.requests", 1);
  const double micros = MicrosSince(start);
  KGAG_HDR_OBSERVE("serve.request_latency_us", micros);
  if (slo_) slo_->RecordRequest(micros, /*error=*/false);
  if (options_.record_latency) {
    std::lock_guard<std::mutex> lock(samples_mu_);
    if (latency_samples_.size() < options_.latency_sample_capacity) {
      latency_samples_.push_back(micros);
    } else {
      // A forgotten TakeLatencySamples() must not grow memory without
      // bound under sustained traffic; drop and count instead.
      latency_dropped_.fetch_add(1, std::memory_order_relaxed);
      KGAG_COUNTER_ADD("serve.latency_samples.dropped", 1);
    }
  }
  const double elapsed_s = MicrosSince(start_time_) * 1e-6;
  if (elapsed_s > 0) {
    KGAG_GAUGE_SET("serve.qps",
                   static_cast<double>(
                       served_.load(std::memory_order_relaxed)) /
                       elapsed_s);
  }
  KGAG_GAUGE_SET("serve.cache.hit_rate", cache_.HitRate());
  return seq;
}

void ServingEngine::FailRequest(Clock::time_point start) {
  // Failed requests keep their own counter and are NOT counted into
  // served_ or the latency histogram — an invalid-argument rejection
  // finishing in 2us must not drag p50 down — but they do burn SLO
  // error budget.
  KGAG_COUNTER_ADD("serve.requests.failed", 1);
  if (slo_) slo_->RecordRequest(MicrosSince(start), /*error=*/true);
}

void ServingEngine::ShedRequest(Pending pending, Status status) {
  KGAG_COUNTER_ADD("serve.requests.rejected", 1);
  if (status.IsDeadlineExceeded()) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.requests.shed.deadline", 1);
  } else if (status.IsResourceExhausted()) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.requests.shed.queue_full", 1);
  }
  if (slo_) slo_->RecordRequest(MicrosSince(pending.enqueued), /*error=*/true);
  pending.promise.set_value(std::move(status));
}

Result<TopKResult> ServingEngine::TopK(std::span<const UserId> members,
                                       size_t k,
                                       std::span<const ItemId> exclude_seen) {
  const uint64_t req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  KGAG_TRACE_SPAN_REQ("serve.request", req_id);
  const Clock::time_point start = Clock::now();
  // One slot snapshot for the whole request: rep build, scoring and the
  // cache epoch all agree even if a swap lands mid-request.
  const ModelSlot slot = CurrentSlot();
  bool cache_hit = false;
  Result<std::shared_ptr<const GroupRep>> rep =
      GetRep(slot, members, &cache_hit, req_id);
  if (!rep.ok()) {
    FailRequest(start);
    return rep.status();
  }
  std::vector<double> scores;
  {
    KGAG_TRACE_SPAN_REQ("serve.score_kernel", req_id);
    scores = ScoreAllItems(*slot.model, **rep);
  }
  TopKResult result;
  {
    KGAG_TRACE_SPAN_REQ("serve.topk", req_id);
    result = Rank(scores, k, exclude_seen);
  }
  result.cache_hit = cache_hit;
  batches_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.batches", 1);
  KGAG_HISTOGRAM_OBSERVE("serve.batch_size", 1.0,
                         ::kgag::obs::CountBounds());
  result.sequence = FinishRequest(start);
  return result;
}

std::future<Result<TopKResult>> ServingEngine::Submit(TopKRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  pending.deadline =
      pending.request.deadline_us > 0
          ? pending.enqueued +
                std::chrono::microseconds(pending.request.deadline_us)
          : Clock::time_point::max();
  pending.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  KGAG_TRACE_SPAN_REQ("serve.submit", pending.req_id);
  if (obs::TraceRecorder::Global().enabled()) {
    // Trace-epoch timestamp so the dispatcher can emit this request's
    // queue-wait span on the same clock as the submit span.
    pending.submit_ts_us = obs::TraceRecorder::NowUs();
  }
  std::future<Result<TopKResult>> future = pending.promise.get_future();
  const size_t cls = static_cast<size_t>(pending.request.priority) & 1;
  bool notify = false;
  Pending displaced;
  bool have_displaced = false;
  bool shed_arrival = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      KGAG_COUNTER_ADD("serve.requests.rejected", 1);
      pending.promise.set_value(
          Status::Internal("serving engine is shut down"));
      return future;
    }
    if (options_.max_queue > 0 &&
        QueueDepthLocked() >= options_.max_queue) {
      // Admission-time load shedding. An interactive arrival displaces
      // the newest queued batch-class request (shed it instead); a
      // batch-class arrival — or an interactive one with no batch-class
      // victim — is shed outright.
      if (pending.request.priority == RequestClass::kInteractive &&
          !queues_[1].empty()) {
        displaced = std::move(queues_[1].back());
        queues_[1].pop_back();
        have_displaced = true;
      } else {
        shed_arrival = true;
      }
    }
    if (!shed_arrival) {
      queues_[cls].push_back(std::move(pending));
      // Wake the dispatcher only on the transitions it can act on: queue
      // went non-empty (it may be idle) or just filled a whole batch (it
      // may be holding one open under the deadline). Intermediate sizes
      // would only make wait_until re-check its predicate and sleep
      // again.
      const size_t depth = QueueDepthLocked();
      notify = depth == 1 || depth == options_.max_batch;
    }
  }
  if (shed_arrival) {
    ShedRequest(std::move(pending),
                Status::ResourceExhausted("serving queue is full"));
    return future;
  }
  if (have_displaced) {
    ShedRequest(std::move(displaced),
                Status::ResourceExhausted(
                    "displaced by an interactive request"));
  }
  if (notify) cv_.notify_all();
  return future;
}

size_t ServingEngine::QueueDepthLocked() const {
  return queues_[0].size() + queues_[1].size();
}

Clock::time_point ServingEngine::OldestEnqueuedLocked() const {
  Clock::time_point oldest = Clock::time_point::max();
  for (const std::deque<Pending>& q : queues_) {
    if (!q.empty()) oldest = std::min(oldest, q.front().enqueued);
  }
  return oldest;
}

void ServingEngine::TakeBatchLocked(size_t max_take,
                                    std::vector<Pending>* taken,
                                    std::vector<Pending>* shed) {
  const Clock::time_point now = Clock::now();
  while (taken->size() < max_take) {
    // Interactive first, always — priority inversion under saturation
    // is exactly what the two classes exist to prevent.
    std::deque<Pending>* q = !queues_[0].empty()   ? &queues_[0]
                             : !queues_[1].empty() ? &queues_[1]
                                                   : nullptr;
    if (q == nullptr) break;
    Pending p = std::move(q->front());
    q->pop_front();
    if (p.deadline < now) {
      // Expired before we could execute it: shed, don't burn a slot.
      shed->push_back(std::move(p));
      continue;
    }
    taken->push_back(std::move(p));
  }
}

void ServingEngine::DispatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> shed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || QueueDepthLocked() > 0; });
      // Drain queued work even when stopping; exit only once idle.
      if (QueueDepthLocked() == 0) {
        if (stop_) return;
        continue;
      }
      if (options_.max_batch > 1 && options_.batch_deadline_us > 0 &&
          QueueDepthLocked() < options_.max_batch && !stop_) {
        // Hold the batch open so concurrent submitters coalesce — but
        // anchor the deadline to the OLDEST pending request's enqueue
        // time, not to this wake-up: under a slow wake the head must
        // not wait ~2x batch_deadline_us. stop_ also wakes us so
        // shutdown never waits the full deadline.
        const Clock::time_point deadline =
            OldestEnqueuedLocked() +
            std::chrono::microseconds(options_.batch_deadline_us);
        cv_.wait_until(lock, deadline, [&] {
          return stop_ || QueueDepthLocked() >= options_.max_batch;
        });
      }
      TakeBatchLocked(options_.max_batch, &batch, &shed);
    }
    for (Pending& p : shed) {
      ShedRequest(std::move(p),
                  Status::DeadlineExceeded("deadline passed in queue"));
    }
    if (batch.empty()) continue;  // everything expired in the queue

    if (options_.pool != nullptr) {
      // The batch body (rep building, in-flight admission, the stacked
      // GEMM, reduce + rank) runs on the shared compute pool; `batch`
      // outlives the task since we block on its future.
      options_.pool->Submit([this, &batch] { ExecuteBatch(std::move(batch)); })
          .get();
    } else {
      ExecuteBatch(std::move(batch));
    }
  }
}

void ServingEngine::ExecuteBatch(std::vector<Pending> batch) {
  KGAG_TRACE_SPAN("serve.batch");
  // The batch binds to ONE model slot for its whole life — late admits
  // included. A SwapModel() racing this batch changes only what the NEXT
  // batch captures; everything below (rep epochs, GEMM, reduce) is
  // computed against this snapshot, so no response can mix versions.
  const ModelSlot slot = CurrentSlot();
  const FrozenModel& model = *slot.model;
  const size_t n = static_cast<size_t>(model.num_items);

  // Stable storage for the whole batch, late admits included: Live
  // holds Pending pointers, so the vector must never reallocate.
  std::vector<Pending> pendings;
  pendings.reserve(options_.max_batch);
  for (Pending& p : batch) pendings.push_back(std::move(p));
  batch.clear();

  BatchHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = batch_hook_;
  }
  auto call_hook = [&](const char* phase) {
    if (!hook) return;
    std::vector<uint64_t> ids;
    ids.reserve(pendings.size());
    for (const Pending& p : pendings) ids.push_back(p.req_id);
    hook(phase, ids);
  };
  call_hook("start");

  // Resolve each request's rep (errors resolve their promises now and
  // drop out of the GEMM). Runs once per admission wave.
  struct Live {
    Pending* pending;
    std::shared_ptr<const GroupRep> rep;
    bool cache_hit;
    size_t row_offset;
  };
  std::vector<Live> live;
  live.reserve(options_.max_batch);
  auto admit = [&](size_t first) {
    for (size_t idx = first; idx < pendings.size(); ++idx) {
      Pending& p = pendings[idx];
      // Close out the request's queue-wait: the span runs on the
      // submitter's trace clock from Submit() to here, and the HDR
      // series feeds the same wall interval into /metrics.
      KGAG_HDR_OBSERVE("serve.queue_wait_us", MicrosSince(p.enqueued));
      if (p.submit_ts_us > 0.0) {
        obs::TraceRecorder::Global().Record(
            "serve.queue_wait", p.submit_ts_us,
            obs::TraceRecorder::NowUs() - p.submit_ts_us, p.req_id);
      }
      bool hit = false;
      Result<std::shared_ptr<const GroupRep>> rep =
          GetRep(slot, p.request.members, &hit, p.req_id);
      if (!rep.ok()) {
        FailRequest(p.enqueued);
        p.promise.set_value(rep.status());
        continue;
      }
      live.push_back(Live{&p, rep.MoveValueUnsafe(), hit, 0});
    }
  };
  admit(0);

  // Continuous admission (the slot model): requests that arrived while
  // the reps above were being built join this in-flight batch until its
  // slots fill. Each wave admits at least one request, so the loop is
  // bounded by max_batch.
  while (options_.continuous_admission &&
         pendings.size() < options_.max_batch) {
    call_hook("late_admit_check");
    const size_t before = pendings.size();
    std::vector<Pending> newcomers;
    std::vector<Pending> shed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TakeBatchLocked(options_.max_batch - pendings.size(), &newcomers,
                      &shed);
    }
    for (Pending& p : shed) {
      ShedRequest(std::move(p),
                  Status::DeadlineExceeded("deadline passed in queue"));
    }
    if (newcomers.empty()) break;
    for (Pending& p : newcomers) pendings.push_back(std::move(p));
    late_admitted_.fetch_add(pendings.size() - before,
                             std::memory_order_relaxed);
    KGAG_COUNTER_ADD("serve.batch.late_admitted",
                     static_cast<uint64_t>(pendings.size() - before));
    admit(before);
  }
  if (live.empty()) return;

  // Coalesce requests for the same canonical group: duplicates share the
  // GEMM rows AND the softmax reduce, and only the final rank (k,
  // exclusions) runs per request. This is the batch-only win — the
  // per-request path cannot share scores even with a warm rep cache,
  // because scores never outlive a batch. Pointer equality catches
  // cache-served duplicates; the member compare catches rebuilt reps
  // (cache disabled or evicted mid-batch). O(batch²) is fine at
  // max_batch <= a few dozen.
  std::vector<size_t> owner(live.size());
  std::vector<size_t> distinct;
  {
    KGAG_TRACE_SPAN("serve.coalesce");
    for (size_t i = 0; i < live.size(); ++i) {
      owner[i] = live.size();
      for (size_t di : distinct) {
        if (live[i].rep == live[di].rep ||
            live[i].rep->members == live[di].rep->members) {
          owner[i] = di;
          break;
        }
      }
      if (owner[i] == live.size()) {
        owner[i] = i;
        distinct.push_back(i);
      }
    }
  }
  const uint64_t coalesced =
      static_cast<uint64_t>(live.size() - distinct.size());
  coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.coalesced_requests", coalesced);

  // One stacked GEMM for the whole batch: the distinct groups' member
  // rows concatenated at the model's precision (MemberStack), scored
  // against the full item table in a single pass — kernels::Gemm for
  // fp64 models, the matching QGemm* kernel for quantized ones. Each
  // output row's k-accumulation order is position-independent, so every
  // request's logits match what a solo GEMM would produce — late admits
  // included.
  MemberStack stack(model);
  for (size_t di : distinct) {
    live[di].row_offset = stack.Append(*live[di].rep);
  }
  std::vector<double> sp(stack.rows() * n);
  {
    KGAG_TRACE_SPAN("serve.score_kernel");
    stack.SpLogitsAllItems(sp.data());
  }

  // Count the batch before fulfilling any promise: a caller that has
  // collected every future must never read a stale batches_run().
  batches_.fetch_add(1, std::memory_order_relaxed);
  KGAG_COUNTER_ADD("serve.batches", 1);
  KGAG_HISTOGRAM_OBSERVE("serve.batch_size", static_cast<double>(live.size()),
                         ::kgag::obs::CountBounds());

  std::vector<double> scores(n);
  for (size_t di : distinct) {
    ReduceScores(model, *live[di].rep, sp.data() + live[di].row_offset * n,
                 n, n, scores.data());
    for (size_t i = 0; i < live.size(); ++i) {
      if (owner[i] != di) continue;
      const Live& l = live[i];
      TopKResult result;
      {
        KGAG_TRACE_SPAN_REQ("serve.topk", l.pending->req_id);
        result = Rank(scores, l.pending->request.k,
                      l.pending->request.exclude_seen);
      }
      result.cache_hit = l.cache_hit;
      KGAG_TRACE_SPAN_REQ("serve.reply", l.pending->req_id);
      // Bookkeeping first: once the promise is fulfilled the submitter
      // may read requests_served() and must not see a stale count.
      result.sequence = FinishRequest(l.pending->enqueued);
      l.pending->promise.set_value(std::move(result));
    }
  }
}

std::string ServingEngine::StatusJson() const {
  size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = QueueDepthLocked();
  }
  const ModelSlot slot = CurrentSlot();
  std::ostringstream os;
  os.precision(12);
  os << "{\"requests_served\":" << served_.load(std::memory_order_relaxed)
     << ",\"batches_run\":" << batches_.load(std::memory_order_relaxed)
     << ",\"coalesced_requests\":"
     << coalesced_.load(std::memory_order_relaxed)
     << ",\"scheduler\":{\"queue_depth\":" << queue_depth
     << ",\"late_admitted\":"
     << late_admitted_.load(std::memory_order_relaxed)
     << ",\"shed_deadline\":"
     << shed_deadline_.load(std::memory_order_relaxed)
     << ",\"shed_queue_full\":"
     << shed_queue_full_.load(std::memory_order_relaxed)
     << ",\"latency_samples_dropped\":"
     << latency_dropped_.load(std::memory_order_relaxed) << "}"
     << ",\"options\":{\"max_batch\":" << options_.max_batch
     << ",\"batch_deadline_us\":" << options_.batch_deadline_us
     << ",\"max_queue\":" << options_.max_queue
     << ",\"continuous_admission\":"
     << (options_.continuous_admission ? "true" : "false")
     << ",\"cache_capacity\":" << options_.cache_capacity
     << ",\"cache_max_bytes\":" << options_.cache_max_bytes << "}"
     << ",\"model\":{\"version\":\"" << slot.version
     << "\",\"epoch\":" << slot.epoch
     << ",\"swaps\":" << swaps_.load(std::memory_order_relaxed)
     << ",\"num_users\":" << slot.model->num_users
     << ",\"num_items\":" << slot.model->num_items
     << ",\"dim\":" << slot.model->dim << "}"
     << ",\"cache\":{\"size\":" << cache_.size()
     << ",\"capacity\":" << cache_.capacity()
     << ",\"bytes\":" << cache_.bytes()
     << ",\"max_bytes\":" << cache_.max_bytes()
     << ",\"hits\":" << cache_.hits() << ",\"misses\":" << cache_.misses()
     << ",\"evictions\":" << cache_.evictions()
     << ",\"epoch_evictions\":" << cache_.epoch_evictions()
     << ",\"hit_rate\":" << cache_.HitRate() << "}";
  if (slo_) os << ",\"slo\":" << slo_->StateJson();
  os << "}";
  return os.str();
}

}  // namespace serve
}  // namespace kgag
