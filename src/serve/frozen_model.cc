#include "serve/frozen_model.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/binary_io.h"
#include "common/file_io.h"
#include "models/kgag_model.h"
#include "tensor/serialization.h"

namespace kgag {
namespace serve {

namespace {

constexpr uint32_t kTagMeta = ckpt::MakeTag('S', 'M', 'T', 'A');
constexpr uint32_t kTagUserEmb = ckpt::MakeTag('U', 'E', 'M', 'B');
constexpr uint32_t kTagItemEmb = ckpt::MakeTag('I', 'E', 'M', 'B');
constexpr uint32_t kTagAttention = ckpt::MakeTag('A', 'T', 'T', 'N');
constexpr uint32_t kTagQuantMeta = ckpt::MakeTag('Q', 'N', 'T', 'M');
constexpr uint32_t kTagQuantUser = ckpt::MakeTag('Q', 'U', 'S', 'R');
constexpr uint32_t kTagQuantItem = ckpt::MakeTag('Q', 'I', 'T', 'M');

/// Finds a parameter's tensor by name, or an empty tensor when the model
/// was built without it (ablations create no attention parameters).
Tensor ParamOrEmpty(const ParameterStore& store, std::string_view name) {
  for (const auto& p : store.params()) {
    if (p->name == name) return p->value;
  }
  return Tensor();
}

Status ShapeError(const std::string& what) {
  return Status::InvalidArgument("frozen model: " + what);
}

/// Checks one quantized rep table against the meta chunk: precision tag,
/// shape, block geometry and code/scale buffer sizes must all agree.
Status ValidateQuantTable(const QuantizedMatrix& q, const FrozenModel& m,
                          size_t rows, const char* what) {
  if (q.type != m.quant) return ShapeError(std::string(what) + " precision tag mismatch");
  if (q.block != m.quant_block) {
    return ShapeError(std::string(what) + " scale-block mismatch");
  }
  if (q.rows != rows || q.cols != static_cast<size_t>(m.dim)) {
    return ShapeError(std::string(what) + " shape mismatch");
  }
  if (q.data.size() != q.rows * q.RowBytes()) {
    return ShapeError(std::string(what) + " code buffer size mismatch");
  }
  if (q.scales.size() != q.rows * q.ScalesPerRow()) {
    return ShapeError(std::string(what) + " scale buffer size mismatch");
  }
  return Status::OK();
}

/// Checks a mapped rep-table view against the meta fields.
Status ValidateMappedView(const RepView& v, const FrozenModel& m, size_t rows,
                          const char* what) {
  if (v.codes == nullptr && rows * static_cast<size_t>(m.dim) != 0) {
    return ShapeError(std::string(what) + " view has no data");
  }
  if (v.type != m.quant) {
    return ShapeError(std::string(what) + " precision tag mismatch");
  }
  if (v.block != m.quant_block) {
    return ShapeError(std::string(what) + " scale-block mismatch");
  }
  if (v.rows != rows || v.cols != static_cast<size_t>(m.dim)) {
    return ShapeError(std::string(what) + " shape mismatch");
  }
  if (v.ScalesPerRow() != 0 && v.scales == nullptr) {
    return ShapeError(std::string(what) + " missing int8 scales");
  }
  return Status::OK();
}

/// Meta-driven shape validation shared by decode (hostile bytes) and
/// encode (programming errors surface before a broken file is written).
Status ValidateShapes(const FrozenModel& m) {
  if (m.dim <= 0) return ShapeError("non-positive dim");
  if (m.group_size <= 0) return ShapeError("non-positive group size");
  if (m.num_users < 0 || m.num_items < 0) {
    return ShapeError("negative entity count");
  }
  const size_t d = static_cast<size_t>(m.dim);
  if (m.is_mapped()) {
    if (m.user_emb.size() != 0 || m.item_emb.size() != 0 ||
        !m.q_user.empty() || !m.q_item.empty()) {
      return ShapeError("mapped model carries owned rep tables");
    }
    KGAG_RETURN_NOT_OK(ValidateMappedView(
        m.mapped_user, m, static_cast<size_t>(m.num_users), "mapped user table"));
    KGAG_RETURN_NOT_OK(ValidateMappedView(
        m.mapped_item, m, static_cast<size_t>(m.num_items), "mapped item table"));
  } else if (m.quant == QuantType::kFp64) {
    if (!m.q_user.empty() || !m.q_item.empty()) {
      return ShapeError("fp64 model carries quantized tables");
    }
    if (m.user_emb.rows() != static_cast<size_t>(m.num_users) ||
        m.user_emb.cols() != d) {
      return ShapeError("user embedding shape mismatch");
    }
    if (m.item_emb.rows() != static_cast<size_t>(m.num_items) ||
        m.item_emb.cols() != d) {
      return ShapeError("item embedding shape mismatch");
    }
  } else {
    if (m.user_emb.size() != 0 || m.item_emb.size() != 0) {
      return ShapeError("quantized model carries fp64 tables");
    }
    KGAG_RETURN_NOT_OK(ValidateQuantTable(
        m.q_user, m, static_cast<size_t>(m.num_users), "quantized user table"));
    KGAG_RETURN_NOT_OK(ValidateQuantTable(
        m.q_item, m, static_cast<size_t>(m.num_items), "quantized item table"));
  }
  if (m.w1.size() != 0 && (m.w1.rows() != d || m.w1.cols() != d)) {
    return ShapeError("W1 shape mismatch");
  }
  if (m.w2.size() != 0 &&
      (m.w2.cols() != d ||
       m.w2.rows() != d * static_cast<size_t>(m.group_size - 1))) {
    return ShapeError("W2 shape mismatch");
  }
  if (m.bias.size() != 0 && (m.bias.rows() != 1 || m.bias.cols() != d)) {
    return ShapeError("bias shape mismatch");
  }
  if (m.vc.size() != 0 && (m.vc.rows() != d || m.vc.cols() != 1)) {
    return ShapeError("vc shape mismatch");
  }
  if (m.use_pi && (m.w1.size() == 0 || m.bias.size() == 0 ||
                   m.vc.size() == 0)) {
    return ShapeError("peer influence enabled but attention weights absent");
  }
  return Status::OK();
}

}  // namespace

RepView FrozenModel::UserView() const {
  if (is_mapped()) return mapped_user;
  if (quant == QuantType::kFp64) return MakeRepView(user_emb);
  return MakeRepView(q_user);
}

RepView FrozenModel::ItemView() const {
  if (is_mapped()) return mapped_item;
  if (quant == QuantType::kFp64) return MakeRepView(item_emb);
  return MakeRepView(q_item);
}

size_t RepBytesPerEntity(const FrozenModel& model) {
  const size_t d = static_cast<size_t>(model.dim);
  return d * QuantElemBytes(model.quant) +
         QuantScalesPerRow(model.quant, d, model.quant_block) * sizeof(float);
}

std::string ArtifactStatusJson(const FrozenModel& model) {
  std::ostringstream os;
  os << "{\"precision\":\"" << QuantTypeName(model.quant) << "\""
     << ",\"dim\":" << model.dim << ",\"group_size\":" << model.group_size
     << ",\"num_users\":" << model.num_users
     << ",\"num_items\":" << model.num_items
     << ",\"use_sp\":" << (model.use_sp ? "true" : "false")
     << ",\"use_pi\":" << (model.use_pi ? "true" : "false")
     << ",\"rep_bytes_per_entity\":" << RepBytesPerEntity(model);
  if (model.quant == QuantType::kInt8) {
    os << ",\"quant_block\":" << model.quant_block;
  }
  os << ",\"layout\":\"" << (model.is_mapped() ? "mmap" : "heap") << "\""
     << ",\"layout_version\":" << (model.is_mapped() ? 2 : 1);
  if (model.is_mapped()) {
    os << ",\"mapped_bytes\":" << model.mapping->mapped_bytes()
       << ",\"resident_bytes\":" << model.mapping->ResidentBytes();
  }
  os << "}";
  return os.str();
}

Result<FrozenModel> QuantizeFrozenModel(const FrozenModel& model,
                                        QuantType type, uint32_t block) {
  KGAG_RETURN_NOT_OK(ValidateShapes(model));
  if (model.is_mapped()) {
    return Status::InvalidArgument(
        "frozen model: cannot quantize an mmap-backed model; re-freeze or "
        "convert via the heap loader first");
  }
  if (model.quant != QuantType::kFp64) {
    return Status::InvalidArgument(
        "frozen model: can only quantize a full-precision model");
  }
  if (type == QuantType::kFp64) return model;
  if (type != QuantType::kInt8) block = 0;
  if (block > static_cast<uint32_t>(model.dim)) {
    return Status::InvalidArgument(
        "frozen model: quant block exceeds rep dim");
  }
  FrozenModel out = model;
  out.quant = type;
  out.quant_block = block;
  out.q_user = QuantizeMatrix(model.user_emb, type, block);
  out.q_item = QuantizeMatrix(model.item_emb, type, block);
  out.user_emb = Tensor();
  out.item_emb = Tensor();
  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

Result<FrozenModel> FreezeKgagModel(KgagModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("null model");
  }
  const KgagConfig& cfg = model->config();
  const GroupRecDataset* ds = model->dataset();

  FrozenModel out;
  out.dim = cfg.propagation.dim;
  out.group_size = ds->group_size;
  out.use_sp = cfg.use_sp;
  out.use_pi = cfg.use_pi;
  out.num_users = ds->num_users;
  out.num_items = ds->num_items;
  out.user_emb = model->ServingUserReps();
  out.item_emb = model->ServingItemReps();

  const ParameterStore& store = *model->params();
  out.w1 = ParamOrEmpty(store, "attn.W1");
  out.w2 = ParamOrEmpty(store, "attn.W2");
  out.bias = ParamOrEmpty(store, "attn.b");
  out.vc = ParamOrEmpty(store, "attn.vc");

  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

Status EncodeFrozenModel(const FrozenModel& model, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (model.is_mapped()) {
    return Status::InvalidArgument(
        "frozen model: mmap-backed models re-save as KGAGSRV2 "
        "(SaveFrozenModelV2), not as a v1 container");
  }
  KGAG_RETURN_NOT_OK(ValidateShapes(model));

  std::vector<ckpt::Chunk> chunks;
  {
    std::ostringstream meta(std::ios::binary);
    bio::WriteU32(&meta, static_cast<uint32_t>(model.dim));
    bio::WriteU32(&meta, static_cast<uint32_t>(model.group_size));
    bio::WriteU8(&meta, model.use_sp ? 1 : 0);
    bio::WriteU8(&meta, model.use_pi ? 1 : 0);
    bio::WriteU32(&meta, static_cast<uint32_t>(model.num_users));
    bio::WriteU32(&meta, static_cast<uint32_t>(model.num_items));
    chunks.push_back(ckpt::Chunk{kTagMeta, meta.str()});
  }
  if (model.quant == QuantType::kFp64) {
    // Byte-identical to the pre-quantization format: no QNTM chunk, so
    // artifacts written before this extension existed re-encode exactly.
    std::ostringstream uemb(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteTensor(&uemb, model.user_emb));
    chunks.push_back(ckpt::Chunk{kTagUserEmb, uemb.str()});
    std::ostringstream iemb(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteTensor(&iemb, model.item_emb));
    chunks.push_back(ckpt::Chunk{kTagItemEmb, iemb.str()});
  } else {
    std::ostringstream qm(std::ios::binary);
    bio::WriteU8(&qm, static_cast<uint8_t>(model.quant));
    bio::WriteU32(&qm, model.quant_block);
    chunks.push_back(ckpt::Chunk{kTagQuantMeta, qm.str()});
    std::ostringstream qu(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteQuantizedMatrix(&qu, model.q_user));
    chunks.push_back(ckpt::Chunk{kTagQuantUser, qu.str()});
    std::ostringstream qi(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteQuantizedMatrix(&qi, model.q_item));
    chunks.push_back(ckpt::Chunk{kTagQuantItem, qi.str()});
  }
  {
    std::ostringstream attn(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.w1));
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.w2));
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.bias));
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.vc));
    chunks.push_back(ckpt::Chunk{kTagAttention, attn.str()});
  }
  return ckpt::EncodeContainer(kArtifactMagic, chunks, out);
}

Result<FrozenModel> DecodeFrozenModel(std::string_view data) {
  std::vector<ckpt::Chunk> chunks;
  KGAG_RETURN_NOT_OK(ckpt::DecodeContainer(kArtifactMagic, data, &chunks));

  FrozenModel out;
  bool have_meta = false, have_users = false, have_items = false,
       have_attn = false, have_qmeta = false, have_quser = false,
       have_qitem = false;
  for (const ckpt::Chunk& c : chunks) {
    std::istringstream in(c.payload, std::ios::binary);
    if (c.tag == kTagMeta) {
      uint32_t dim = 0, group_size = 0, num_users = 0, num_items = 0;
      uint8_t use_sp = 0, use_pi = 0;
      if (!bio::ReadU32(&in, &dim) || !bio::ReadU32(&in, &group_size) ||
          !bio::ReadU8(&in, &use_sp) || !bio::ReadU8(&in, &use_pi) ||
          !bio::ReadU32(&in, &num_users) || !bio::ReadU32(&in, &num_items)) {
        return Status::InvalidArgument("frozen model: truncated meta chunk");
      }
      out.dim = static_cast<int>(dim);
      out.group_size = static_cast<int>(group_size);
      out.use_sp = use_sp != 0;
      out.use_pi = use_pi != 0;
      out.num_users = static_cast<int32_t>(num_users);
      out.num_items = static_cast<int32_t>(num_items);
      have_meta = true;
    } else if (c.tag == kTagUserEmb) {
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.user_emb));
      have_users = true;
    } else if (c.tag == kTagItemEmb) {
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.item_emb));
      have_items = true;
    } else if (c.tag == kTagAttention) {
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.w1));
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.w2));
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.bias));
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.vc));
      have_attn = true;
    } else if (c.tag == kTagQuantMeta) {
      uint8_t type = 0;
      uint32_t block = 0;
      if (!bio::ReadU8(&in, &type) || !bio::ReadU32(&in, &block)) {
        return Status::InvalidArgument("frozen model: truncated quant meta");
      }
      if (type != static_cast<uint8_t>(QuantType::kFp32) &&
          type != static_cast<uint8_t>(QuantType::kFp16) &&
          type != static_cast<uint8_t>(QuantType::kInt8)) {
        return Status::InvalidArgument(
            "frozen model: unknown quantization type tag " +
            std::to_string(static_cast<int>(type)) +
            " (artifact written by a newer build?)");
      }
      out.quant = static_cast<QuantType>(type);
      out.quant_block = block;
      have_qmeta = true;
    } else if (c.tag == kTagQuantUser) {
      KGAG_RETURN_NOT_OK(ReadQuantizedMatrix(&in, &out.q_user));
      have_quser = true;
    } else if (c.tag == kTagQuantItem) {
      KGAG_RETURN_NOT_OK(ReadQuantizedMatrix(&in, &out.q_item));
      have_qitem = true;
    }
    // Unknown tags are ignored (CRC-validated forward compatibility,
    // same policy as the checkpoint container).
  }
  if (!have_meta || !have_attn) {
    return Status::InvalidArgument("frozen model: missing required chunk");
  }
  if (have_qmeta) {
    if (!have_quser || !have_qitem) {
      return Status::InvalidArgument(
          "frozen model: quantized artifact missing a rep table chunk");
    }
  } else if (!have_users || !have_items) {
    return Status::InvalidArgument("frozen model: missing required chunk");
  }
  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

namespace {

/// WriteTensor record size: u64 rows | u64 cols | raw doubles.
uint64_t TensorRecordBytes(const Tensor& t) {
  return 2 * sizeof(uint64_t) + t.size() * sizeof(double);
}

/// Appends the WriteTensor byte layout into the open chunk directly from
/// the tensor's storage (doubles are stored little-endian in memory on
/// every platform this builds for, which is also what WriteTensor and the
/// raw v2 blobs assume).
Status AppendTensorRecord(ckpt::ContainerFileWriter* w, const Tensor& t) {
  const uint64_t rows = t.rows(), cols = t.cols();
  KGAG_RETURN_NOT_OK(w->Append(&rows, sizeof(rows)));
  KGAG_RETURN_NOT_OK(w->Append(&cols, sizeof(cols)));
  return w->Append(t.data(), t.size() * sizeof(double));
}

/// WriteQuantizedMatrix record size: u8 type | u64 rows | u64 cols |
/// u32 block | u64 nscales + scales | u64 nbytes + codes.
uint64_t QuantRecordBytes(const QuantizedMatrix& q) {
  return 1 + 2 * sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint64_t) +
         q.scales.size() * sizeof(float) + sizeof(uint64_t) + q.data.size();
}

Status AppendQuantRecord(ckpt::ContainerFileWriter* w,
                         const QuantizedMatrix& q) {
  const uint8_t type = static_cast<uint8_t>(q.type);
  const uint64_t rows = q.rows, cols = q.cols;
  KGAG_RETURN_NOT_OK(w->Append(&type, sizeof(type)));
  KGAG_RETURN_NOT_OK(w->Append(&rows, sizeof(rows)));
  KGAG_RETURN_NOT_OK(w->Append(&cols, sizeof(cols)));
  KGAG_RETURN_NOT_OK(w->Append(&q.block, sizeof(q.block)));
  const uint64_t nscales = q.scales.size();
  KGAG_RETURN_NOT_OK(w->Append(&nscales, sizeof(nscales)));
  KGAG_RETURN_NOT_OK(
      w->Append(q.scales.data(), q.scales.size() * sizeof(float)));
  const uint64_t nbytes = q.data.size();
  KGAG_RETURN_NOT_OK(w->Append(&nbytes, sizeof(nbytes)));
  return w->Append(q.data.data(), q.data.size());
}

}  // namespace

Status SaveFrozenModel(const FrozenModel& model, const std::string& path) {
  if (model.is_mapped()) {
    return Status::InvalidArgument(
        "frozen model: mmap-backed models re-save as KGAGSRV2 "
        "(SaveFrozenModelV2), not as a v1 container");
  }
  KGAG_RETURN_NOT_OK(ValidateShapes(model));

  // Streamed chunk by chunk: the rep tables go from their in-memory
  // buffers straight into the temp file under ContainerFileWriter's
  // rolling CRC, byte-identical to EncodeFrozenModel + AtomicWriteFile
  // (tests/test_artifact_v2.cc pins the equality) without ever holding
  // the encoded artifact in memory.
  const bool fp64 = model.quant == QuantType::kFp64;
  ckpt::ContainerFileWriter w;
  KGAG_RETURN_NOT_OK(
      w.Open(path, kArtifactMagic, /*chunk_count=*/fp64 ? 4 : 5));
  {
    std::ostringstream meta(std::ios::binary);
    bio::WriteU32(&meta, static_cast<uint32_t>(model.dim));
    bio::WriteU32(&meta, static_cast<uint32_t>(model.group_size));
    bio::WriteU8(&meta, model.use_sp ? 1 : 0);
    bio::WriteU8(&meta, model.use_pi ? 1 : 0);
    bio::WriteU32(&meta, static_cast<uint32_t>(model.num_users));
    bio::WriteU32(&meta, static_cast<uint32_t>(model.num_items));
    KGAG_RETURN_NOT_OK(w.AddChunk(kTagMeta, meta.str()));
  }
  if (fp64) {
    KGAG_RETURN_NOT_OK(
        w.BeginChunk(kTagUserEmb, TensorRecordBytes(model.user_emb)));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, model.user_emb));
    KGAG_RETURN_NOT_OK(w.EndChunk());
    KGAG_RETURN_NOT_OK(
        w.BeginChunk(kTagItemEmb, TensorRecordBytes(model.item_emb)));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, model.item_emb));
    KGAG_RETURN_NOT_OK(w.EndChunk());
  } else {
    std::ostringstream qm(std::ios::binary);
    bio::WriteU8(&qm, static_cast<uint8_t>(model.quant));
    bio::WriteU32(&qm, model.quant_block);
    KGAG_RETURN_NOT_OK(w.AddChunk(kTagQuantMeta, qm.str()));
    KGAG_RETURN_NOT_OK(
        w.BeginChunk(kTagQuantUser, QuantRecordBytes(model.q_user)));
    KGAG_RETURN_NOT_OK(AppendQuantRecord(&w, model.q_user));
    KGAG_RETURN_NOT_OK(w.EndChunk());
    KGAG_RETURN_NOT_OK(
        w.BeginChunk(kTagQuantItem, QuantRecordBytes(model.q_item)));
    KGAG_RETURN_NOT_OK(AppendQuantRecord(&w, model.q_item));
    KGAG_RETURN_NOT_OK(w.EndChunk());
  }
  {
    const uint64_t attn_len =
        TensorRecordBytes(model.w1) + TensorRecordBytes(model.w2) +
        TensorRecordBytes(model.bias) + TensorRecordBytes(model.vc);
    KGAG_RETURN_NOT_OK(w.BeginChunk(kTagAttention, attn_len));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, model.w1));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, model.w2));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, model.bias));
    KGAG_RETURN_NOT_OK(AppendTensorRecord(&w, model.vc));
    KGAG_RETURN_NOT_OK(w.EndChunk());
  }
  return w.Finish();
}

Result<FrozenModel> LoadFrozenModel(const std::string& path) {
  std::string bytes;
  KGAG_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  return DecodeFrozenModel(bytes);
}

namespace {

/// Blob declarations + payload streaming for SaveFrozenModelV2 — reads
/// through views so owned and mapped models encode identically.
struct V2Tables {
  RepView user;
  RepView item;
};

Status AppendAttnBlob(ArtifactV2Writer* w, uint32_t tag, const Tensor& t) {
  return w->AddBlob(tag, t.data(), t.size() * sizeof(double));
}

}  // namespace

Status SaveFrozenModelV2(const FrozenModel& model, const std::string& path) {
  KGAG_RETURN_NOT_OK(ValidateShapes(model));
  const V2Tables tables{model.UserView(), model.ItemView()};

  ArtifactV2Meta meta;
  meta.dim = static_cast<uint32_t>(model.dim);
  meta.group_size = static_cast<uint32_t>(model.group_size);
  meta.use_sp = model.use_sp;
  meta.use_pi = model.use_pi;
  meta.num_users = static_cast<uint32_t>(model.num_users);
  meta.num_items = static_cast<uint32_t>(model.num_items);
  meta.quant_type = static_cast<uint8_t>(model.quant);
  meta.quant_block = model.quant_block;

  const uint8_t rep_dtype = static_cast<uint8_t>(model.quant);
  const uint8_t f32 = static_cast<uint8_t>(QuantType::kFp32);
  const uint8_t f64 = static_cast<uint8_t>(QuantType::kFp64);
  std::vector<BlobSpec> specs;
  specs.push_back({kBlobUserRep, rep_dtype, tables.user.rows, tables.user.cols});
  specs.push_back({kBlobUserScales, f32, tables.user.rows,
                   tables.user.ScalesPerRow()});
  specs.push_back({kBlobItemRep, rep_dtype, tables.item.rows, tables.item.cols});
  specs.push_back({kBlobItemScales, f32, tables.item.rows,
                   tables.item.ScalesPerRow()});
  specs.push_back({kBlobAttnW1, f64, model.w1.rows(), model.w1.cols()});
  specs.push_back({kBlobAttnW2, f64, model.w2.rows(), model.w2.cols()});
  specs.push_back({kBlobAttnBias, f64, model.bias.rows(), model.bias.cols()});
  specs.push_back({kBlobAttnVc, f64, model.vc.rows(), model.vc.cols()});

  ArtifactV2Writer w;
  KGAG_RETURN_NOT_OK(w.Open(path, meta, specs));
  KGAG_RETURN_NOT_OK(w.AddBlob(kBlobUserRep, tables.user.codes,
                               tables.user.rows * tables.user.RowBytes()));
  KGAG_RETURN_NOT_OK(w.AddBlob(
      kBlobUserScales, tables.user.scales,
      tables.user.rows * tables.user.ScalesPerRow() * sizeof(float)));
  KGAG_RETURN_NOT_OK(w.AddBlob(kBlobItemRep, tables.item.codes,
                               tables.item.rows * tables.item.RowBytes()));
  KGAG_RETURN_NOT_OK(w.AddBlob(
      kBlobItemScales, tables.item.scales,
      tables.item.rows * tables.item.ScalesPerRow() * sizeof(float)));
  KGAG_RETURN_NOT_OK(AppendAttnBlob(&w, kBlobAttnW1, model.w1));
  KGAG_RETURN_NOT_OK(AppendAttnBlob(&w, kBlobAttnW2, model.w2));
  KGAG_RETURN_NOT_OK(AppendAttnBlob(&w, kBlobAttnBias, model.bias));
  KGAG_RETURN_NOT_OK(AppendAttnBlob(&w, kBlobAttnVc, model.vc));
  return w.Finish();
}

namespace {

/// Copies an attention blob into an owned Tensor (raw doubles, so the
/// values are bit-identical to what the v1 decoder produces).
Status CopyAttnTensor(const MappedArtifact& m, uint32_t tag, Tensor* out) {
  const BlobEntry* e = m.Find(tag);
  if (e == nullptr) return ShapeError("missing attention blob");
  if (e->dtype != static_cast<uint8_t>(QuantType::kFp64)) {
    return ShapeError("attention blob is not fp64");
  }
  if (e->rows == 0 || e->cols == 0) {
    *out = Tensor();
    return Status::OK();
  }
  *out = Tensor(e->rows, e->cols);
  std::memcpy(out->data(), m.BlobData(*e), e->nbytes);
  return Status::OK();
}

}  // namespace

Result<FrozenModel> LoadFrozenModelMmap(const std::string& path,
                                        const MappedArtifact::Options& options) {
  Result<std::shared_ptr<MappedArtifact>> mapped =
      MappedArtifact::Map(path, options);
  KGAG_RETURN_NOT_OK(mapped.status());
  const std::shared_ptr<MappedArtifact>& m = *mapped;
  const ArtifactV2Meta& meta = m->meta();
  if (meta.quant_type > static_cast<uint8_t>(QuantType::kInt8)) {
    return ShapeError("unknown quantization type tag " +
                      std::to_string(static_cast<int>(meta.quant_type)) +
                      " (artifact written by a newer build?)");
  }

  FrozenModel out;
  out.dim = static_cast<int>(meta.dim);
  out.group_size = static_cast<int>(meta.group_size);
  out.use_sp = meta.use_sp;
  out.use_pi = meta.use_pi;
  out.num_users = static_cast<int32_t>(meta.num_users);
  out.num_items = static_cast<int32_t>(meta.num_items);
  out.quant = static_cast<QuantType>(meta.quant_type);
  out.quant_block = meta.quant_block;

  const BlobEntry* urep = m->Find(kBlobUserRep);
  const BlobEntry* irep = m->Find(kBlobItemRep);
  if (urep == nullptr || irep == nullptr) {
    return ShapeError("missing rep table blob");
  }
  const BlobEntry* uscl = m->Find(kBlobUserScales);
  const BlobEntry* iscl = m->Find(kBlobItemScales);
  out.mapped_user = MakeRepView(*m, *urep, uscl);
  out.mapped_item = MakeRepView(*m, *irep, iscl);

  KGAG_RETURN_NOT_OK(CopyAttnTensor(*m, kBlobAttnW1, &out.w1));
  KGAG_RETURN_NOT_OK(CopyAttnTensor(*m, kBlobAttnW2, &out.w2));
  KGAG_RETURN_NOT_OK(CopyAttnTensor(*m, kBlobAttnBias, &out.bias));
  KGAG_RETURN_NOT_OK(CopyAttnTensor(*m, kBlobAttnVc, &out.vc));

  out.mapping = m;
  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

Result<FrozenModel> LoadFrozenModelAuto(const std::string& path,
                                        const MappedArtifact::Options& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic))) {
    // Empty or truncated-before-the-magic file: say exactly that (and
    // which file), instead of surfacing a raw stream-read failure. An
    // artifact watcher hitting a just-created empty file gets a clear,
    // retryable diagnosis.
    return Status::InvalidArgument(
        "artifact " + path + " is too short to be a KGAGSRV artifact (" +
        std::to_string(in.gcount()) + " of " +
        std::to_string(sizeof(magic)) + " magic bytes)");
  }
  if (!in.good()) {
    return Status::IoError("cannot read artifact magic from " + path);
  }
  in.close();
  if (std::memcmp(magic, kArtifactV2Magic.data(), 8) == 0) {
    return LoadFrozenModelMmap(path, options);
  }
  return LoadFrozenModel(path);
}

}  // namespace serve
}  // namespace kgag
