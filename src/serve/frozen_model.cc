#include "serve/frozen_model.h"

#include <sstream>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/binary_io.h"
#include "common/file_io.h"
#include "models/kgag_model.h"
#include "tensor/serialization.h"

namespace kgag {
namespace serve {

namespace {

constexpr uint32_t kTagMeta = ckpt::MakeTag('S', 'M', 'T', 'A');
constexpr uint32_t kTagUserEmb = ckpt::MakeTag('U', 'E', 'M', 'B');
constexpr uint32_t kTagItemEmb = ckpt::MakeTag('I', 'E', 'M', 'B');
constexpr uint32_t kTagAttention = ckpt::MakeTag('A', 'T', 'T', 'N');
constexpr uint32_t kTagQuantMeta = ckpt::MakeTag('Q', 'N', 'T', 'M');
constexpr uint32_t kTagQuantUser = ckpt::MakeTag('Q', 'U', 'S', 'R');
constexpr uint32_t kTagQuantItem = ckpt::MakeTag('Q', 'I', 'T', 'M');

/// Finds a parameter's tensor by name, or an empty tensor when the model
/// was built without it (ablations create no attention parameters).
Tensor ParamOrEmpty(const ParameterStore& store, std::string_view name) {
  for (const auto& p : store.params()) {
    if (p->name == name) return p->value;
  }
  return Tensor();
}

Status ShapeError(const std::string& what) {
  return Status::InvalidArgument("frozen model: " + what);
}

/// Checks one quantized rep table against the meta chunk: precision tag,
/// shape, block geometry and code/scale buffer sizes must all agree.
Status ValidateQuantTable(const QuantizedMatrix& q, const FrozenModel& m,
                          size_t rows, const char* what) {
  if (q.type != m.quant) return ShapeError(std::string(what) + " precision tag mismatch");
  if (q.block != m.quant_block) {
    return ShapeError(std::string(what) + " scale-block mismatch");
  }
  if (q.rows != rows || q.cols != static_cast<size_t>(m.dim)) {
    return ShapeError(std::string(what) + " shape mismatch");
  }
  if (q.data.size() != q.rows * q.RowBytes()) {
    return ShapeError(std::string(what) + " code buffer size mismatch");
  }
  if (q.scales.size() != q.rows * q.ScalesPerRow()) {
    return ShapeError(std::string(what) + " scale buffer size mismatch");
  }
  return Status::OK();
}

/// Meta-driven shape validation shared by decode (hostile bytes) and
/// encode (programming errors surface before a broken file is written).
Status ValidateShapes(const FrozenModel& m) {
  if (m.dim <= 0) return ShapeError("non-positive dim");
  if (m.group_size <= 0) return ShapeError("non-positive group size");
  if (m.num_users < 0 || m.num_items < 0) {
    return ShapeError("negative entity count");
  }
  const size_t d = static_cast<size_t>(m.dim);
  if (m.quant == QuantType::kFp64) {
    if (!m.q_user.empty() || !m.q_item.empty()) {
      return ShapeError("fp64 model carries quantized tables");
    }
    if (m.user_emb.rows() != static_cast<size_t>(m.num_users) ||
        m.user_emb.cols() != d) {
      return ShapeError("user embedding shape mismatch");
    }
    if (m.item_emb.rows() != static_cast<size_t>(m.num_items) ||
        m.item_emb.cols() != d) {
      return ShapeError("item embedding shape mismatch");
    }
  } else {
    if (m.user_emb.size() != 0 || m.item_emb.size() != 0) {
      return ShapeError("quantized model carries fp64 tables");
    }
    KGAG_RETURN_NOT_OK(ValidateQuantTable(
        m.q_user, m, static_cast<size_t>(m.num_users), "quantized user table"));
    KGAG_RETURN_NOT_OK(ValidateQuantTable(
        m.q_item, m, static_cast<size_t>(m.num_items), "quantized item table"));
  }
  if (m.w1.size() != 0 && (m.w1.rows() != d || m.w1.cols() != d)) {
    return ShapeError("W1 shape mismatch");
  }
  if (m.w2.size() != 0 &&
      (m.w2.cols() != d ||
       m.w2.rows() != d * static_cast<size_t>(m.group_size - 1))) {
    return ShapeError("W2 shape mismatch");
  }
  if (m.bias.size() != 0 && (m.bias.rows() != 1 || m.bias.cols() != d)) {
    return ShapeError("bias shape mismatch");
  }
  if (m.vc.size() != 0 && (m.vc.rows() != d || m.vc.cols() != 1)) {
    return ShapeError("vc shape mismatch");
  }
  if (m.use_pi && (m.w1.size() == 0 || m.bias.size() == 0 ||
                   m.vc.size() == 0)) {
    return ShapeError("peer influence enabled but attention weights absent");
  }
  return Status::OK();
}

}  // namespace

size_t RepBytesPerEntity(const FrozenModel& model) {
  const size_t d = static_cast<size_t>(model.dim);
  if (model.quant == QuantType::kFp64) return d * sizeof(double);
  return model.q_user.RowBytes() +
         model.q_user.ScalesPerRow() * sizeof(float);
}

std::string ArtifactStatusJson(const FrozenModel& model) {
  std::ostringstream os;
  os << "{\"precision\":\"" << QuantTypeName(model.quant) << "\""
     << ",\"dim\":" << model.dim << ",\"group_size\":" << model.group_size
     << ",\"num_users\":" << model.num_users
     << ",\"num_items\":" << model.num_items
     << ",\"use_sp\":" << (model.use_sp ? "true" : "false")
     << ",\"use_pi\":" << (model.use_pi ? "true" : "false")
     << ",\"rep_bytes_per_entity\":" << RepBytesPerEntity(model);
  if (model.quant == QuantType::kInt8) {
    os << ",\"quant_block\":" << model.quant_block;
  }
  os << "}";
  return os.str();
}

Result<FrozenModel> QuantizeFrozenModel(const FrozenModel& model,
                                        QuantType type, uint32_t block) {
  KGAG_RETURN_NOT_OK(ValidateShapes(model));
  if (model.quant != QuantType::kFp64) {
    return Status::InvalidArgument(
        "frozen model: can only quantize a full-precision model");
  }
  if (type == QuantType::kFp64) return model;
  if (type != QuantType::kInt8) block = 0;
  if (block > static_cast<uint32_t>(model.dim)) {
    return Status::InvalidArgument(
        "frozen model: quant block exceeds rep dim");
  }
  FrozenModel out = model;
  out.quant = type;
  out.quant_block = block;
  out.q_user = QuantizeMatrix(model.user_emb, type, block);
  out.q_item = QuantizeMatrix(model.item_emb, type, block);
  out.user_emb = Tensor();
  out.item_emb = Tensor();
  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

Result<FrozenModel> FreezeKgagModel(KgagModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("null model");
  }
  const KgagConfig& cfg = model->config();
  const GroupRecDataset* ds = model->dataset();

  FrozenModel out;
  out.dim = cfg.propagation.dim;
  out.group_size = ds->group_size;
  out.use_sp = cfg.use_sp;
  out.use_pi = cfg.use_pi;
  out.num_users = ds->num_users;
  out.num_items = ds->num_items;
  out.user_emb = model->ServingUserReps();
  out.item_emb = model->ServingItemReps();

  const ParameterStore& store = *model->params();
  out.w1 = ParamOrEmpty(store, "attn.W1");
  out.w2 = ParamOrEmpty(store, "attn.W2");
  out.bias = ParamOrEmpty(store, "attn.b");
  out.vc = ParamOrEmpty(store, "attn.vc");

  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

Status EncodeFrozenModel(const FrozenModel& model, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  KGAG_RETURN_NOT_OK(ValidateShapes(model));

  std::vector<ckpt::Chunk> chunks;
  {
    std::ostringstream meta(std::ios::binary);
    bio::WriteU32(&meta, static_cast<uint32_t>(model.dim));
    bio::WriteU32(&meta, static_cast<uint32_t>(model.group_size));
    bio::WriteU8(&meta, model.use_sp ? 1 : 0);
    bio::WriteU8(&meta, model.use_pi ? 1 : 0);
    bio::WriteU32(&meta, static_cast<uint32_t>(model.num_users));
    bio::WriteU32(&meta, static_cast<uint32_t>(model.num_items));
    chunks.push_back(ckpt::Chunk{kTagMeta, meta.str()});
  }
  if (model.quant == QuantType::kFp64) {
    // Byte-identical to the pre-quantization format: no QNTM chunk, so
    // artifacts written before this extension existed re-encode exactly.
    std::ostringstream uemb(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteTensor(&uemb, model.user_emb));
    chunks.push_back(ckpt::Chunk{kTagUserEmb, uemb.str()});
    std::ostringstream iemb(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteTensor(&iemb, model.item_emb));
    chunks.push_back(ckpt::Chunk{kTagItemEmb, iemb.str()});
  } else {
    std::ostringstream qm(std::ios::binary);
    bio::WriteU8(&qm, static_cast<uint8_t>(model.quant));
    bio::WriteU32(&qm, model.quant_block);
    chunks.push_back(ckpt::Chunk{kTagQuantMeta, qm.str()});
    std::ostringstream qu(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteQuantizedMatrix(&qu, model.q_user));
    chunks.push_back(ckpt::Chunk{kTagQuantUser, qu.str()});
    std::ostringstream qi(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteQuantizedMatrix(&qi, model.q_item));
    chunks.push_back(ckpt::Chunk{kTagQuantItem, qi.str()});
  }
  {
    std::ostringstream attn(std::ios::binary);
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.w1));
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.w2));
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.bias));
    KGAG_RETURN_NOT_OK(WriteTensor(&attn, model.vc));
    chunks.push_back(ckpt::Chunk{kTagAttention, attn.str()});
  }
  return ckpt::EncodeContainer(kArtifactMagic, chunks, out);
}

Result<FrozenModel> DecodeFrozenModel(std::string_view data) {
  std::vector<ckpt::Chunk> chunks;
  KGAG_RETURN_NOT_OK(ckpt::DecodeContainer(kArtifactMagic, data, &chunks));

  FrozenModel out;
  bool have_meta = false, have_users = false, have_items = false,
       have_attn = false, have_qmeta = false, have_quser = false,
       have_qitem = false;
  for (const ckpt::Chunk& c : chunks) {
    std::istringstream in(c.payload, std::ios::binary);
    if (c.tag == kTagMeta) {
      uint32_t dim = 0, group_size = 0, num_users = 0, num_items = 0;
      uint8_t use_sp = 0, use_pi = 0;
      if (!bio::ReadU32(&in, &dim) || !bio::ReadU32(&in, &group_size) ||
          !bio::ReadU8(&in, &use_sp) || !bio::ReadU8(&in, &use_pi) ||
          !bio::ReadU32(&in, &num_users) || !bio::ReadU32(&in, &num_items)) {
        return Status::InvalidArgument("frozen model: truncated meta chunk");
      }
      out.dim = static_cast<int>(dim);
      out.group_size = static_cast<int>(group_size);
      out.use_sp = use_sp != 0;
      out.use_pi = use_pi != 0;
      out.num_users = static_cast<int32_t>(num_users);
      out.num_items = static_cast<int32_t>(num_items);
      have_meta = true;
    } else if (c.tag == kTagUserEmb) {
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.user_emb));
      have_users = true;
    } else if (c.tag == kTagItemEmb) {
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.item_emb));
      have_items = true;
    } else if (c.tag == kTagAttention) {
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.w1));
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.w2));
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.bias));
      KGAG_RETURN_NOT_OK(ReadTensor(&in, &out.vc));
      have_attn = true;
    } else if (c.tag == kTagQuantMeta) {
      uint8_t type = 0;
      uint32_t block = 0;
      if (!bio::ReadU8(&in, &type) || !bio::ReadU32(&in, &block)) {
        return Status::InvalidArgument("frozen model: truncated quant meta");
      }
      if (type != static_cast<uint8_t>(QuantType::kFp32) &&
          type != static_cast<uint8_t>(QuantType::kFp16) &&
          type != static_cast<uint8_t>(QuantType::kInt8)) {
        return Status::InvalidArgument(
            "frozen model: unknown quantization type tag " +
            std::to_string(static_cast<int>(type)) +
            " (artifact written by a newer build?)");
      }
      out.quant = static_cast<QuantType>(type);
      out.quant_block = block;
      have_qmeta = true;
    } else if (c.tag == kTagQuantUser) {
      KGAG_RETURN_NOT_OK(ReadQuantizedMatrix(&in, &out.q_user));
      have_quser = true;
    } else if (c.tag == kTagQuantItem) {
      KGAG_RETURN_NOT_OK(ReadQuantizedMatrix(&in, &out.q_item));
      have_qitem = true;
    }
    // Unknown tags are ignored (CRC-validated forward compatibility,
    // same policy as the checkpoint container).
  }
  if (!have_meta || !have_attn) {
    return Status::InvalidArgument("frozen model: missing required chunk");
  }
  if (have_qmeta) {
    if (!have_quser || !have_qitem) {
      return Status::InvalidArgument(
          "frozen model: quantized artifact missing a rep table chunk");
    }
  } else if (!have_users || !have_items) {
    return Status::InvalidArgument("frozen model: missing required chunk");
  }
  KGAG_RETURN_NOT_OK(ValidateShapes(out));
  return out;
}

Status SaveFrozenModel(const FrozenModel& model, const std::string& path) {
  std::string bytes;
  KGAG_RETURN_NOT_OK(EncodeFrozenModel(model, &bytes));
  return AtomicWriteFile(path, bytes);
}

Result<FrozenModel> LoadFrozenModel(const std::string& path) {
  std::string bytes;
  KGAG_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  return DecodeFrozenModel(bytes);
}

}  // namespace serve
}  // namespace kgag
