// The one scoring path shared by offline evaluation and online serving
// (DESIGN.md §10). Both FrozenGroupScorer (driven by RankingEvaluator)
// and ServingEngine::TopK call BuildGroupRep + the score reduction below,
// so eval and serving cannot drift — the bit-identity test in
// tests/test_serve.cc pins this.
//
// Scoring math on frozen representations: with member reps u_i fixed
// (query-independent), the peer-influence logit
//   pi_i = vc^T ReLU(W1 u_i + W2 concat(peers_i) + b)
// is a per-member constant, and only the self-persistence logit
//   sp_i(v) = <u_i, v>
// depends on the candidate. The group score expands to
//   score(v) = <g, v> = sum_i softmax_i(sp + pi) * sp_i(v)
// so one GEMM S = U_members · V^T provides every sp_i(v), and the rest is
// an O(L) softmax-reduce per candidate. Note sp_i(v) feeds the score even
// when use_sp is off (it is <u_i, v> either way); use_sp only controls
// whether it enters the softmax logit.
//
// Group canonicalization: members are sorted and deduplicated before any
// arithmetic. This is the cache-key rule AND a correctness rule — scores
// become independent of the order a client lists members in (floating
// point would otherwise leak the order through the W2 peer concat).
// Ad-hoc group sizes: W2's peer concat is only defined for the trained
// group size L; for any other member count the W2 term is dropped and the
// W1 path kept (single members additionally reduce to a softmax over one).
#ifndef KGAG_SERVE_FROZEN_SCORER_H_
#define KGAG_SERVE_FROZEN_SCORER_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "data/interactions.h"
#include "eval/group_scorer.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"

namespace kgag {
namespace serve {

/// \brief A group's request-time state: canonical members, their frozen
/// representations and per-member peer-influence logits. Immutable once
/// built; safe to share across threads (cache entries do).
///
/// On a quantized model, member_emb holds the DEQUANTIZED member reps
/// (the values the quantized kernels reconstruct); the peer-influence
/// logits are computed from them with the fp64 attention weights, so pi
/// is deterministic given the artifact regardless of ISA tier.
struct GroupRep {
  std::vector<UserId> members;  ///< sorted, unique — the cache key
  Tensor member_emb;            ///< (|members| x dim), canonical order
  std::vector<double> pi;       ///< raw α_PI per member (0 when PI off)
};

/// Canonicalizes `members` (sort + unique) and builds the rep. Fails on
/// an empty member list or ids outside [0, num_users).
Result<GroupRep> BuildGroupRep(const FrozenModel& model,
                               std::span<const UserId> members);

/// \brief Member rows from one or more reps stacked contiguously at the
/// model's storage precision, so a whole batch of groups shares ONE
/// sp-logit GEMM against the item table. This is the single kernel entry
/// point for S = U_members · V^T — ScoreAllItems/ScoreItems (offline
/// eval) and ServingEngine::ExecuteBatch (online batches) all build one,
/// which is what keeps the fp64 and quantized paths from drifting apart.
///
/// On an fp64 model the rows are the member reps themselves and the GEMM
/// is kernels::Gemm, bit-identical to scoring each rep alone. On a
/// quantized model the rows are the packed user codes (+ int8 scales)
/// gathered straight from the artifact and the GEMM is the matching
/// kernels::QGemm* kernel — also batch-invariant, since every output
/// element accumulates its own dot in a fixed k-order.
class MemberStack {
 public:
  /// The model is borrowed and must outlive the stack.
  explicit MemberStack(const FrozenModel& model);

  /// Appends rep's member rows (canonical order preserved); returns the
  /// row index the rep's block starts at.
  size_t Append(const GroupRep& rep);

  size_t rows() const { return rows_; }

  /// S against every item: out = (rows() x num_items), row-major,
  /// leading dimension num_items, OVERWRITTEN.
  void SpLogitsAllItems(double* out) const;

  /// S against an explicit candidate list (gathers the candidate rows):
  /// out = (rows() x items.size()), leading dimension items.size(),
  /// OVERWRITTEN. Per-item results are bit-identical to SpLogitsAllItems.
  void SpLogits(std::span<const ItemId> items, double* out) const;

 private:
  const FrozenModel* model_;
  size_t rows_ = 0;
  std::vector<double> emb_;     ///< fp64 models: stacked member reps
  std::vector<uint8_t> codes_;  ///< quantized models: packed member codes
  std::vector<float> scales_;   ///< int8 models: per-row/block scales
};

/// Scores every row of `sp_logits` — the S = U_members · V^T block for
/// this rep, `n` candidates wide with leading dimension `ld` — into
/// `out[0..n)`: out[p] = Σ_i softmax_i(sp(:,p)·use_sp + pi) · sp(i,p).
/// The softmax follows PreferenceAggregator::AggregateBatch's scheme
/// (max-subtract over members, member 0 seeding the max) but runs on
/// kernels::SoftmaxScoreReduce — FastExp, one division per candidate,
/// SIMD across candidates under the same bit-identity-across-tiers
/// contract as the QGemm kernels. Every frozen-path consumer (offline
/// FrozenGroupScorer and online ServingEngine) shares this exact code,
/// so eval/serve bit parity is unaffected.
void ReduceScores(const FrozenModel& model, const GroupRep& rep,
                  const double* sp_logits, size_t ld, size_t n, double* out);

/// Scores the rep against every item: one blocked GEMM
/// (|members| x dim)·(dim x num_items) + ReduceScores.
std::vector<double> ScoreAllItems(const FrozenModel& model,
                                  const GroupRep& rep);

/// Scores the rep against an explicit candidate list (the evaluator's
/// pool). Per-item results are bit-identical to ScoreAllItems — each
/// GEMM output element accumulates its dot product in the same fixed
/// k-order regardless of which other rows/columns are in the call.
std::vector<double> ScoreItems(const FrozenModel& model, const GroupRep& rep,
                               std::span<const ItemId> items);

/// \brief GroupScorer adapter: lets RankingEvaluator run the standard
/// offline protocol against a frozen artifact, resolving group ids to
/// members through the dataset's GroupTable.
class FrozenGroupScorer : public GroupScorer {
 public:
  /// Both pointers are borrowed and must outlive the scorer.
  FrozenGroupScorer(const FrozenModel* model, const GroupTable* groups);

  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;

 private:
  const FrozenModel* model_;
  const GroupTable* groups_;
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_FROZEN_SCORER_H_
