// The one scoring path shared by offline evaluation and online serving
// (DESIGN.md §10). Both FrozenGroupScorer (driven by RankingEvaluator)
// and ServingEngine::TopK call BuildGroupRep + the score reduction below,
// so eval and serving cannot drift — the bit-identity test in
// tests/test_serve.cc pins this.
//
// Scoring math on frozen representations: with member reps u_i fixed
// (query-independent), the peer-influence logit
//   pi_i = vc^T ReLU(W1 u_i + W2 concat(peers_i) + b)
// is a per-member constant, and only the self-persistence logit
//   sp_i(v) = <u_i, v>
// depends on the candidate. The group score expands to
//   score(v) = <g, v> = sum_i softmax_i(sp + pi) * sp_i(v)
// so one GEMM S = U_members · V^T provides every sp_i(v), and the rest is
// an O(L) softmax-reduce per candidate. Note sp_i(v) feeds the score even
// when use_sp is off (it is <u_i, v> either way); use_sp only controls
// whether it enters the softmax logit.
//
// Group canonicalization: members are sorted and deduplicated before any
// arithmetic. This is the cache-key rule AND a correctness rule — scores
// become independent of the order a client lists members in (floating
// point would otherwise leak the order through the W2 peer concat).
// Ad-hoc group sizes: W2's peer concat is only defined for the trained
// group size L; for any other member count the W2 term is dropped and the
// W1 path kept (single members additionally reduce to a softmax over one).
#ifndef KGAG_SERVE_FROZEN_SCORER_H_
#define KGAG_SERVE_FROZEN_SCORER_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "data/interactions.h"
#include "eval/group_scorer.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"

namespace kgag {
namespace serve {

/// \brief A group's request-time state: canonical members, their frozen
/// representations and per-member peer-influence logits. Immutable once
/// built; safe to share across threads (cache entries do).
struct GroupRep {
  std::vector<UserId> members;  ///< sorted, unique — the cache key
  Tensor member_emb;            ///< (|members| x dim), canonical order
  std::vector<double> pi;       ///< raw α_PI per member (0 when PI off)
};

/// Canonicalizes `members` (sort + unique) and builds the rep. Fails on
/// an empty member list or ids outside [0, num_users).
Result<GroupRep> BuildGroupRep(const FrozenModel& model,
                               std::span<const UserId> members);

/// Scores every row of `sp_logits` — the S = U_members · V^T block for
/// this rep, `n` candidates wide with leading dimension `ld` — into
/// `out[0..n)`: out[p] = Σ_i softmax_i(sp(:,p)·use_sp + pi) · sp(i,p).
/// The softmax matches PreferenceAggregator::AggregateBatch (max-subtract
/// over members, member 0 seeding the max).
void ReduceScores(const FrozenModel& model, const GroupRep& rep,
                  const double* sp_logits, size_t ld, size_t n, double* out);

/// Scores the rep against every item: one blocked GEMM
/// (|members| x dim)·(dim x num_items) + ReduceScores.
std::vector<double> ScoreAllItems(const FrozenModel& model,
                                  const GroupRep& rep);

/// Scores the rep against an explicit candidate list (the evaluator's
/// pool). Per-item results are bit-identical to ScoreAllItems — each
/// GEMM output element accumulates its dot product in the same fixed
/// k-order regardless of which other rows/columns are in the call.
std::vector<double> ScoreItems(const FrozenModel& model, const GroupRep& rep,
                               std::span<const ItemId> items);

/// \brief GroupScorer adapter: lets RankingEvaluator run the standard
/// offline protocol against a frozen artifact, resolving group ids to
/// members through the dataset's GroupTable.
class FrozenGroupScorer : public GroupScorer {
 public:
  /// Both pointers are borrowed and must outlive the scorer.
  FrozenGroupScorer(const FrozenModel* model, const GroupTable* groups);

  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;

 private:
  const FrozenModel* model_;
  const GroupTable* groups_;
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_FROZEN_SCORER_H_
