// Data-plane wire protocol (DESIGN.md §13): length-prefixed binary
// frames over TCP, little-endian throughout, no dependencies beyond the
// socket API.
//
// Every frame is `u32 payload_length` followed by the payload; frames
// above kMaxFrameBytes are rejected before allocation. The first four
// bytes of a connection double as protocol detection: ASCII "POST" /
// "GET " decode to lengths far above the cap, so an HTTP client on the
// data port is recognized unambiguously and handed to the HTTP
// fallback (net_server.cc).
//
// Request payload:
//   u8  version        (kWireVersion)
//   u8  priority       (RequestClass)
//   u16 flags          (reserved, must be 0)
//   u32 deadline_us    (relative; 0 = none)
//   u32 k
//   u32 num_members
//   u32 num_exclude
//   i32 member_ids[num_members]
//   i32 exclude_ids[num_exclude]
//
// Response payload:
//   u8  version
//   u8  status         (WireStatus)
//   u16 reserved
//   status == kOk:   u32 count, then count x { i32 item, f64 score }
//   status != kOk:   u32 msg_len, then msg_len message bytes
//
// Scores travel as raw IEEE-754 bit patterns, so a client can verify
// the serving bit-identity contract end to end over the wire.
#ifndef KGAG_SERVE_NET_PROTOCOL_H_
#define KGAG_SERVE_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace serve {

inline constexpr uint8_t kWireVersion = 1;

/// Hard bound on a single frame's payload. A ~64k-member request is
/// ~256 KiB; 1 MiB leaves headroom while keeping a hostile length
/// prefix from driving a giant allocation.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// \brief Response status on the wire. A compressed view of StatusCode:
/// the codes a data-plane client can act on, nothing more.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDeadlineExceeded = 2,   ///< shed: deadline passed in queue
  kOverloaded = 3,         ///< shed: queue full (ResourceExhausted)
  kShuttingDown = 4,       ///< engine stopped accepting work
  kMalformed = 5,          ///< frame failed to decode
  kInternal = 6,
};

/// \brief Human-readable name of a WireStatus (e.g. "Overloaded").
const char* WireStatusName(WireStatus status);

/// \brief Maps an engine Status onto the wire vocabulary.
WireStatus WireStatusFromStatus(const Status& status);

/// \brief Decoded form of a response frame.
struct WireResponse {
  WireStatus status = WireStatus::kOk;
  std::vector<ItemId> items;    ///< valid when status == kOk
  std::vector<double> scores;   ///< parallel to items, exact bits
  std::string message;          ///< valid when status != kOk
};

/// Serializes a request into a frame payload (no length prefix).
std::vector<uint8_t> EncodeTopKRequest(const TopKRequest& request);

/// Parses a frame payload into a request. Rejects unknown versions,
/// non-zero flags, truncated arrays, and trailing bytes.
Result<TopKRequest> DecodeTopKRequest(const uint8_t* data, size_t size);

/// Serializes a success / error response into a frame payload.
std::vector<uint8_t> EncodeTopKResponse(const TopKResult& result);
std::vector<uint8_t> EncodeErrorResponse(WireStatus status,
                                         const std::string& message);

/// Parses a frame payload into a response.
Result<WireResponse> DecodeTopKResponse(const uint8_t* data, size_t size);

// -- Blocking socket helpers shared by server, client and tests. -----

/// Reads exactly `size` bytes; false on EOF/error/timeout.
bool ReadExact(int fd, void* buf, size_t size);
/// Writes all of `data`; false on error. Uses MSG_NOSIGNAL.
bool WriteAll(int fd, const void* data, size_t size);

/// Reads one length-prefixed frame into `payload`. Returns false on
/// clean EOF before any byte, error, or a length above kMaxFrameBytes.
bool ReadFrame(int fd, std::vector<uint8_t>* payload);
/// Writes `payload` as one length-prefixed frame.
bool WriteFrame(int fd, const std::vector<uint8_t>& payload);

/// Connects to host:port (numeric IPv4 host). Returns the fd, or a
/// Status on failure.
Result<int> ConnectTcp(const std::string& host, int port);

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_NET_PROTOCOL_H_
