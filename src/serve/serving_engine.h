// Online serving engine (DESIGN.md §10, §13): answers TopK(group_members,
// k, exclude_seen) against a FrozenModel.
//
// Request path:
//   canonicalize members -> GroupRepCache lookup -> (miss: BuildGroupRep,
//   insert) -> SP-logit GEMM against the full item matrix -> per-item
//   softmax-reduce (frozen_scorer.h) -> bounded-heap top-k with the
//   exclusion set filtered at rank time (TopKIndicesWhere), so exclusions
//   never change the GEMM shape or any surviving item's score bits.
//
// Continuous batching: Submit() enqueues the request and returns a
// future. A dispatcher thread coalesces up to max_batch requests —
// holding the batch open at most batch_deadline_us past the OLDEST
// pending request's enqueue time — then executes them slot-style: while
// member reps are being resolved, newly arrived requests are admitted
// into the still-forming in-flight batch until every slot is taken
// (llama.cpp server slot model; Options::continuous_admission). Only
// then does ONE blocked GEMM (Σ|members| x dim)·(dim x num_items) run
// for the whole batch, each request reduced and ranked from its row
// block. Requests for the same canonical group are coalesced first:
// duplicates share both the GEMM rows and the per-item softmax reduce,
// and only the final rank (k, exclusions) runs per request. Each output
// row's accumulation order is independent of the other rows in the
// call, so batched scores are bit-identical to solo scores — late
// admits included (pinned by tests/test_scheduler.cc).
//
// Admission control: every request carries a priority class
// (interactive before batch at every pickup) and an optional relative
// deadline. A request whose deadline has already passed when the
// scheduler reaches it is shed — its future resolves with
// DeadlineExceeded, it never consumes GEMM slots. When
// Options::max_queue is set, arrivals beyond the bound are shed at
// admission with ResourceExhausted; an interactive arrival displaces
// the newest queued batch-class request instead of being dropped.
//
// TopK() is the synchronous path: same scoring code, no queue — batches
// of one, for callers that need plain request/response.
//
// serve.* metrics: requests (plus .failed / .rejected and the shed
// split serve.requests.shed.{deadline,queue_full}), batches,
// batch_size histogram, serve.batch.late_admitted, HDR request-latency
// and queue-wait histograms (submit -> completion, exact-count
// quantiles), qps gauge, cache hit/miss counters and hit-rate/size
// gauges (from GroupRepCache), serve.latency_samples.dropped when the
// raw-sample buffer hits its bound.
//
// Request-scoped tracing: every request gets a monotonic id at
// Submit()/TopK() time; the spans it touches on any thread
// (serve.submit -> serve.queue_wait -> serve.rep_build ->
// serve.score_kernel -> serve.topk -> serve.reply, under the
// batch-level serve.batch/serve.coalesce envelopes) carry that id, so
// one request's life is reconstructable from /tracez or the
// chrome://tracing export even though it crosses the dispatcher thread
// boundary.
//
// SLO tracking: when Options::slo_objectives is non-empty the engine
// owns an obs::SloTracker and classifies every finished request
// (latency, error) against each objective; shed and failed requests
// burn error budget. slo() exposes it for gauge export and /statusz.
//
// Hot-swap (DESIGN.md §15): the engine holds the FrozenModel as a
// versioned shared_ptr slot. SwapModel() publishes a new model + epoch
// atomically; every batch (and every synchronous TopK) captures ONE slot
// snapshot at its start and computes entirely against it, so in-flight
// batches drain on the old version while the next admission binds the
// new one — a swap never fails, sheds or delays a request. Group-rep
// cache entries are tagged with the slot epoch; a rep built on epoch N
// can never be served by a batch bound to epoch M != N (group_cache.h),
// which is what makes the swap coherent, not just lock-free. The old
// model's shared_ptr dies when the last draining batch drops it.
// serve.swap.* metrics: count, epoch gauge, last swap duration.
#ifndef KGAG_SERVE_SERVING_ENGINE_H_
#define KGAG_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/interactions.h"
#include "obs/slo.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "serve/group_cache.h"

namespace kgag {
namespace serve {

/// \brief Scheduling class of a request. Interactive requests are picked
/// before batch-class ones at every admission point, and under queue
/// pressure batch-class requests are shed first.
enum class RequestClass : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

/// \brief One scoring request. Member order and duplicates don't matter
/// (canonicalized); `exclude_seen` items are dropped from the ranking.
struct TopKRequest {
  std::vector<UserId> members;
  size_t k = 10;
  std::vector<ItemId> exclude_seen;
  /// Scheduling class (see RequestClass).
  RequestClass priority = RequestClass::kInteractive;
  /// Relative deadline in micros from Submit(); 0 = none. A request the
  /// scheduler reaches after its deadline is shed (DeadlineExceeded)
  /// without consuming a GEMM slot.
  int64_t deadline_us = 0;
};

/// \brief Ranked recommendation: items[0] is the best candidate.
struct TopKResult {
  std::vector<ItemId> items;    ///< descending score, ties to smaller id
  std::vector<double> scores;   ///< parallel to items
  bool cache_hit = false;       ///< group rep came from the cache
  /// 1-based completion index across the engine (the value of
  /// requests_served() the moment this request finished) — lets tests
  /// and clients observe scheduling order.
  uint64_t sequence = 0;
};

/// \brief Thread-safe serving front-end over a FrozenModel.
class ServingEngine {
 public:
  struct Options {
    /// Most requests one dispatcher batch coalesces (1 = per-request).
    size_t max_batch = 16;
    /// How long the dispatcher holds an open batch waiting for more
    /// requests after the OLDEST pending one arrived. 0 = dispatch
    /// immediately.
    int64_t batch_deadline_us = 200;
    /// Group-representation LRU entries (0 disables the cache).
    size_t cache_capacity = 1024;
    /// Approximate byte bound on the cached group reps (0 = entries
    /// only). Large groups make entry count a poor memory proxy; see
    /// GroupRepCache.
    size_t cache_max_bytes = 0;
    /// Borrowed pool the batch bodies run on; nullptr = dispatcher
    /// thread runs them inline. Must outlive the engine.
    ThreadPool* pool = nullptr;
    /// Record every request's latency in micros for exact percentiles
    /// (TakeLatencySamples). Benchmarks turn this on — histogram-derived
    /// percentiles quantize to bucket bounds; raw samples don't. Off by
    /// default.
    bool record_latency = false;
    /// Bound on the raw latency-sample buffer: once
    /// latency_sample_capacity samples are pending, further ones are
    /// dropped (serve.latency_samples.dropped) until TakeLatencySamples
    /// drains — a forgotten drain can't grow memory without bound.
    size_t latency_sample_capacity = 1 << 18;
    /// Queued-request bound across both priority classes (0 =
    /// unbounded). Arrivals beyond it are shed at admission with
    /// ResourceExhausted; interactive arrivals displace the newest
    /// queued batch-class request instead.
    size_t max_queue = 0;
    /// Admit requests that arrive while a batch is resolving member
    /// reps into that in-flight batch (until its slots fill). On by
    /// default; off restores strict take-then-execute batches.
    bool continuous_admission = true;
    /// SLO objectives every finished request is classified against
    /// (obs::DefaultServingObjectives() for the standard serving pair).
    /// Empty = no tracker; slo() returns nullptr.
    std::vector<obs::SloObjective> slo_objectives = {};
  };

  /// `model` is borrowed and must outlive the engine (the pre-hot-swap
  /// contract, kept for single-artifact callers; wraps the pointer in a
  /// non-owning shared_ptr internally). An engine built this way can
  /// still SwapModel() to an owned model later.
  ServingEngine(const FrozenModel* model, Options options);
  /// Shared-ownership constructor: the engine (and any batch still
  /// draining after a swap) keeps the model alive.
  ServingEngine(std::shared_ptr<const FrozenModel> model, Options options);
  /// Drains already-queued requests, then stops the dispatcher.
  ~ServingEngine();

  /// Drains already-queued requests and stops the dispatcher; later
  /// Submit()s fail fast (counted as serve.requests.rejected). The
  /// synchronous TopK() path keeps working. Idempotent AND safe to race
  /// with itself from multiple threads (destructor vs. signal handler):
  /// exactly one caller runs the teardown, the rest block until it is
  /// done. Every queued request's promise is fulfilled — with its
  /// result or a rejection, never abandoned as a broken promise.
  void Shutdown();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Synchronous scoring: canonicalize, aggregate, score, rank. Fails on
  /// empty/out-of-range members.
  Result<TopKResult> TopK(std::span<const UserId> members, size_t k,
                          std::span<const ItemId> exclude_seen = {});

  /// Queues a request for continuous-batched execution. The request's
  /// priority/deadline_us fields drive admission (see RequestClass).
  std::future<Result<TopKResult>> Submit(TopKRequest request);

  /// Publishes `next` as the serving model under a new epoch and version
  /// label. Zero-downtime: callers keep submitting throughout; batches
  /// already executing finish on the model they captured. Fails only on
  /// a null model. Thread-safe against Submit/TopK and itself.
  Status SwapModel(std::shared_ptr<const FrozenModel> next,
                   std::string version = "");

  GroupRepCache* cache() { return &cache_; }
  /// The CURRENT model (a snapshot — may be superseded by a concurrent
  /// SwapModel; prefer model_ref() when the caller needs it to stay
  /// alive).
  const FrozenModel* model() const;
  /// Shared handle on the current model.
  std::shared_ptr<const FrozenModel> model_ref() const;
  /// Monotonic model epoch: 0 for the constructor model, +1 per swap.
  uint64_t model_epoch() const;
  /// Version label of the current model ("v0" for the constructor model
  /// unless SwapModel relabels it).
  std::string model_version() const;
  /// Completed SwapModel calls.
  uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  uint64_t batches_run() const {
    return batches_.load(std::memory_order_relaxed);
  }
  /// Requests that shared another request's GEMM rows + softmax reduce
  /// because their canonical group already appeared in the same batch.
  uint64_t coalesced_requests() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// Requests admitted into a batch that was already resolving reps
  /// when they arrived (the continuous-batching win).
  uint64_t late_admitted() const {
    return late_admitted_.load(std::memory_order_relaxed);
  }
  /// Requests shed because their deadline passed before execution.
  uint64_t shed_deadline() const {
    return shed_deadline_.load(std::memory_order_relaxed);
  }
  /// Requests shed at admission because the queue was full.
  uint64_t shed_queue_full() const {
    return shed_queue_full_.load(std::memory_order_relaxed);
  }
  /// Raw latency samples dropped at the capacity bound.
  uint64_t latency_samples_dropped() const {
    return latency_dropped_.load(std::memory_order_relaxed);
  }
  /// Drains the per-request latency samples recorded so far (micros, in
  /// completion order). Empty unless Options::record_latency.
  std::vector<double> TakeLatencySamples();

  /// The engine's SLO tracker, or nullptr when Options::slo_objectives
  /// was empty. Borrowed; valid for the engine's lifetime.
  obs::SloTracker* slo() { return slo_.get(); }
  const obs::SloTracker* slo() const { return slo_.get(); }

  /// Engine state as JSON for /statusz: request/batch/coalesce counts,
  /// shed/late-admission counters, queue depth, cache occupancy and hit
  /// rate, batching options, SLO state.
  std::string StatusJson() const;

  /// Test seam: `hook(phase, req_ids)` is invoked on the batch-executing
  /// thread at named points of a batch's life ("start" after the batch
  /// is taken from the queue, "late_admit_check" before each in-flight
  /// admission poll) with the request ids currently in the batch. Lets
  /// tests pause a batch deterministically (e.g. to land a late arrival
  /// or pile up a backlog). Set before the first Submit; never set in
  /// production.
  using BatchHook =
      std::function<void(const char* phase,
                         const std::vector<uint64_t>& req_ids)>;
  void SetBatchHookForTest(BatchHook hook);

 private:
  struct Pending {
    TopKRequest request;
    std::promise<Result<TopKResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute shed deadline (enqueued + request.deadline_us);
    /// time_point::max() when the request carries none.
    std::chrono::steady_clock::time_point deadline;
    uint64_t req_id = 0;
    /// Trace-epoch submit timestamp, recorded only while tracing is
    /// enabled (0 otherwise); lets the dispatcher emit the queue-wait
    /// span against the submitter's clock.
    double submit_ts_us = 0.0;
  };

  /// One published model version. Batches capture a whole slot so the
  /// model pointer and the cache epoch can never disagree.
  struct ModelSlot {
    std::shared_ptr<const FrozenModel> model;
    uint64_t epoch = 0;
    std::string version = "v0";
  };

  /// Copy of the current slot (the capture point of every batch).
  ModelSlot CurrentSlot() const;

  /// Cache-through rep lookup against one captured slot. `members` may
  /// be in any order. `req_id` only labels the trace span.
  Result<std::shared_ptr<const GroupRep>> GetRep(
      const ModelSlot& slot, std::span<const UserId> members,
      bool* cache_hit, uint64_t req_id);

  /// Rank-time filtering + bounded-heap selection over full-catalog
  /// scores (index == item id).
  TopKResult Rank(const std::vector<double>& scores, size_t k,
                  std::span<const ItemId> exclude_seen) const;

  void DispatcherLoop();
  /// Scores a batch with one stacked GEMM and fulfills every promise.
  /// Pulls late arrivals into the batch while reps resolve.
  void ExecuteBatch(std::vector<Pending> batch);

  size_t QueueDepthLocked() const;
  /// Oldest enqueue time across both priority queues; call with a
  /// non-empty queue only.
  std::chrono::steady_clock::time_point OldestEnqueuedLocked() const;
  /// Pops up to `max_take` requests in priority order into `taken`,
  /// moving deadline-expired ones into `shed` instead (they don't count
  /// against max_take). Caller resolves `shed` outside the lock.
  void TakeBatchLocked(size_t max_take, std::vector<Pending>* taken,
                       std::vector<Pending>* shed);
  /// Resolves one shed request: promise, counters, SLO error budget.
  void ShedRequest(Pending pending, Status status);

  /// Bookkeeping common to both paths, called once per successfully
  /// finished request. Returns the request's 1-based completion index.
  uint64_t FinishRequest(std::chrono::steady_clock::time_point start);
  /// Bookkeeping for a request that resolved with an error.
  void FailRequest(std::chrono::steady_clock::time_point start);

  /// Current model slot; guarded by model_mu_ (a copy is cheap — one
  /// shared_ptr bump — and taken once per batch, not per request).
  mutable std::mutex model_mu_;
  ModelSlot slot_;
  std::atomic<uint64_t> swaps_{0};

  Options options_;
  GroupRepCache cache_;
  std::unique_ptr<obs::SloTracker> slo_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// One FIFO per RequestClass; index = static_cast<size_t>(class).
  std::deque<Pending> queues_[2];
  bool stop_ = false;
  std::thread dispatcher_;
  std::once_flag shutdown_once_;
  BatchHook batch_hook_;  ///< guarded by mu_; copied at batch start

  std::mutex samples_mu_;
  std::vector<double> latency_samples_;

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> late_admitted_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> latency_dropped_{0};
  std::atomic<uint64_t> next_req_{1};  ///< request-id allocator (0 = none)
  const std::chrono::steady_clock::time_point start_time_;
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_SERVING_ENGINE_H_
