// Online serving engine (DESIGN.md §10): answers TopK(group_members, k,
// exclude_seen) against a FrozenModel.
//
// Request path:
//   canonicalize members -> GroupRepCache lookup -> (miss: BuildGroupRep,
//   insert) -> SP-logit GEMM against the full item matrix -> per-item
//   softmax-reduce (frozen_scorer.h) -> bounded-heap top-k with the
//   exclusion set filtered at rank time (TopKIndicesWhere), so exclusions
//   never change the GEMM shape or any surviving item's score bits.
//
// Micro-batching: Submit() enqueues the request and returns a future. A
// dispatcher thread coalesces up to max_batch requests — waiting at most
// batch_deadline_us after the first — stacks their member matrices and
// runs ONE blocked GEMM (Σ|members| x dim)·(dim x num_items) for the
// whole batch, then reduces and ranks each request from its row block.
// Requests for the same canonical group are coalesced first: duplicates
// share both the GEMM rows and the per-item softmax reduce, and only the
// final rank (k, exclusions) runs per request. That sharing is the
// structural win of batching — the per-request path pays the full reduce
// every time even with a warm rep cache, because scores never outlive a
// batch. The stacked GEMM also streams the item matrix once per batch
// instead of once per request. Each output row's accumulation order is
// independent of the other rows in the call, so batched scores are
// bit-identical to solo scores (pinned by tests/test_serve.cc). The
// batch body runs on the borrowed ThreadPool when one is configured.
//
// TopK() is the synchronous path: same scoring code, no queue — batches
// of one, for callers that need plain request/response.
//
// serve.* metrics: requests (plus .failed / .rejected), batches,
// batch_size histogram, HDR request-latency and queue-wait histograms
// (submit -> completion, exact-count quantiles), qps gauge, cache
// hit/miss counters and hit-rate/size gauges (from GroupRepCache).
//
// Request-scoped tracing: every request gets a monotonic id at
// Submit()/TopK() time; the spans it touches on any thread
// (serve.submit -> serve.queue_wait -> serve.rep_build ->
// serve.score_kernel -> serve.topk -> serve.reply, under the
// batch-level serve.batch/serve.coalesce envelopes) carry that id, so
// one request's life is reconstructable from /tracez or the
// chrome://tracing export even though it crosses the dispatcher thread
// boundary.
//
// SLO tracking: when Options::slo_objectives is non-empty the engine
// owns an obs::SloTracker and classifies every finished request
// (latency, error) against each objective; slo() exposes it for gauge
// export and /statusz.
#ifndef KGAG_SERVE_SERVING_ENGINE_H_
#define KGAG_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/interactions.h"
#include "obs/slo.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "serve/group_cache.h"

namespace kgag {
namespace serve {

/// \brief One scoring request. Member order and duplicates don't matter
/// (canonicalized); `exclude_seen` items are dropped from the ranking.
struct TopKRequest {
  std::vector<UserId> members;
  size_t k = 10;
  std::vector<ItemId> exclude_seen;
};

/// \brief Ranked recommendation: items[0] is the best candidate.
struct TopKResult {
  std::vector<ItemId> items;    ///< descending score, ties to smaller id
  std::vector<double> scores;   ///< parallel to items
  bool cache_hit = false;       ///< group rep came from the cache
};

/// \brief Thread-safe serving front-end over a FrozenModel.
class ServingEngine {
 public:
  struct Options {
    /// Most requests one dispatcher batch coalesces (1 = per-request).
    size_t max_batch = 16;
    /// How long the dispatcher holds an open batch waiting for more
    /// requests after the first arrives. 0 = dispatch immediately.
    int64_t batch_deadline_us = 200;
    /// Group-representation LRU entries (0 disables the cache).
    size_t cache_capacity = 1024;
    /// Borrowed pool the batch bodies run on; nullptr = dispatcher
    /// thread runs them inline. Must outlive the engine.
    ThreadPool* pool = nullptr;
    /// Record every request's latency in micros for exact percentiles
    /// (TakeLatencySamples). Benchmarks turn this on — histogram-derived
    /// percentiles quantize to bucket bounds; raw samples don't. Off by
    /// default: one double per request, unbounded until taken.
    bool record_latency = false;
    /// SLO objectives every finished request is classified against
    /// (obs::DefaultServingObjectives() for the standard serving pair).
    /// Empty = no tracker; slo() returns nullptr.
    std::vector<obs::SloObjective> slo_objectives = {};
  };

  /// `model` is borrowed and must outlive the engine.
  ServingEngine(const FrozenModel* model, Options options);
  /// Drains already-queued requests, then stops the dispatcher.
  ~ServingEngine();

  /// Drains already-queued requests and stops the dispatcher; later
  /// Submit()s fail fast (counted as serve.requests.rejected). The
  /// synchronous TopK() path keeps working. Idempotent; the destructor
  /// calls it. Not safe to race with itself from multiple threads.
  void Shutdown();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Synchronous scoring: canonicalize, aggregate, score, rank. Fails on
  /// empty/out-of-range members.
  Result<TopKResult> TopK(std::span<const UserId> members, size_t k,
                          std::span<const ItemId> exclude_seen = {});

  /// Queues a request for micro-batched execution.
  std::future<Result<TopKResult>> Submit(TopKRequest request);

  GroupRepCache* cache() { return &cache_; }
  const FrozenModel* model() const { return model_; }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  uint64_t batches_run() const {
    return batches_.load(std::memory_order_relaxed);
  }
  /// Requests that shared another request's GEMM rows + softmax reduce
  /// because their canonical group already appeared in the same batch.
  uint64_t coalesced_requests() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// Drains the per-request latency samples recorded so far (micros, in
  /// completion order). Empty unless Options::record_latency.
  std::vector<double> TakeLatencySamples();

  /// The engine's SLO tracker, or nullptr when Options::slo_objectives
  /// was empty. Borrowed; valid for the engine's lifetime.
  obs::SloTracker* slo() { return slo_.get(); }
  const obs::SloTracker* slo() const { return slo_.get(); }

  /// Engine state as JSON for /statusz: request/batch/coalesce counts,
  /// cache occupancy and hit rate, batching options, SLO state.
  std::string StatusJson() const;

 private:
  struct Pending {
    TopKRequest request;
    std::promise<Result<TopKResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t req_id = 0;
    /// Trace-epoch submit timestamp, recorded only while tracing is
    /// enabled (0 otherwise); lets the dispatcher emit the queue-wait
    /// span against the submitter's clock.
    double submit_ts_us = 0.0;
  };

  /// Cache-through rep lookup. `members` may be in any order. `req_id`
  /// only labels the trace span.
  Result<std::shared_ptr<const GroupRep>> GetRep(
      std::span<const UserId> members, bool* cache_hit, uint64_t req_id);

  /// Rank-time filtering + bounded-heap selection over full-catalog
  /// scores (index == item id).
  TopKResult Rank(const std::vector<double>& scores, size_t k,
                  std::span<const ItemId> exclude_seen) const;

  void DispatcherLoop();
  /// Scores a batch with one stacked GEMM and fulfills every promise.
  void ExecuteBatch(std::vector<Pending> batch);
  /// Bookkeeping common to both paths, called once per successfully
  /// finished request.
  void FinishRequest(std::chrono::steady_clock::time_point start);
  /// Bookkeeping for a request that resolved with an error.
  void FailRequest(std::chrono::steady_clock::time_point start);

  const FrozenModel* model_;
  Options options_;
  GroupRepCache cache_;
  std::unique_ptr<obs::SloTracker> slo_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::thread dispatcher_;

  std::mutex samples_mu_;
  std::vector<double> latency_samples_;

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> next_req_{1};  ///< request-id allocator (0 = none)
  const std::chrono::steady_clock::time_point start_time_;
};

}  // namespace serve
}  // namespace kgag

#endif  // KGAG_SERVE_SERVING_ENGINE_H_
