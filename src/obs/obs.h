// Umbrella header for the observability layer: the instrumentation macros
// every hot path uses, the process-wide JSONL metrics sink, and the glue
// that feeds ThreadPool and logging activity into the metrics registry.
//
// Build gating: the KGAG_OBS_ENABLED CMake option (default ON) defines
// KGAG_OBS_ENABLED for the whole build. When it is off, every macro below
// compiles to nothing — arguments are not evaluated, no registry is
// touched, no clocks are read — so instrumented hot paths carry zero
// overhead. The obs classes themselves (MetricsRegistry, TraceRecorder,
// the JSONL sink) stay available in both modes so drivers and tests can
// always use the direct API. A TU can force the no-op expansion under an
// enabled build by defining KGAG_OBS_FORCE_OFF before including this
// header (see tests/test_obs_noop.cc).
//
// Conventions:
//  * metric names are dotted lowercase ("gemm.flops", "train.loss");
//  * KGAG_TRACE_SPAN takes a string literal and traces the enclosing
//    scope; spans nest by scope, which Perfetto renders as a flame graph;
//  * histograms observing latencies use obs::LatencyBoundsUs() so plots
//    are comparable across subsystems;
//  * wrap obs-only setup statements (extra stopwatches etc.) in
//    KGAG_OBS_ONLY(...) so the disabled build drops them too.
#ifndef KGAG_OBS_OBS_H_
#define KGAG_OBS_OBS_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(KGAG_OBS_ENABLED) && !defined(KGAG_OBS_FORCE_OFF)
#define KGAG_OBS_ACTIVE 1
#else
#define KGAG_OBS_ACTIVE 0
#endif

namespace kgag {
namespace obs {

/// Opens (truncating) a JSONL metrics sink at `path`; SnapshotMetrics()
/// appends one JSON line per call until CloseMetricsJsonl(). Process-wide,
/// thread-safe.
Status OpenMetricsJsonl(const std::string& path);
void CloseMetricsJsonl();
bool MetricsJsonlOpen();

/// Writes one snapshot line of MetricsRegistry::Global() to the sink.
/// No-op when no sink is open, so library code may call this (via
/// KGAG_OBS_SNAPSHOT) unconditionally.
void SnapshotMetrics(std::string_view label);

/// Installs the ThreadPoolObserver that publishes task wait/run latency
/// histograms and the queue-depth gauge, and the log sink wrapper that
/// counts KGAG_LOG lines per level (forwarding them to the previous
/// sink). Idempotent; called automatically by instrumented entry points
/// when the obs build is active.
void InstallDefaultInstrumentation();

}  // namespace obs
}  // namespace kgag

#if KGAG_OBS_ACTIVE

#define KGAG_OBS_CONCAT_INNER(a, b) a##b
#define KGAG_OBS_CONCAT(a, b) KGAG_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as one span. `name` must be a string
/// literal.
#define KGAG_TRACE_SPAN(name)                                 \
  ::kgag::obs::TraceSpan KGAG_OBS_CONCAT(kgag_obs_span_,      \
                                         __LINE__)(name)

/// Traces the enclosing scope as one request-linked span: `req` (a
/// uint64 request id) is recorded on the event and exported as a
/// chrome://tracing args annotation, linking spans across threads.
#define KGAG_TRACE_SPAN_REQ(name, req)                        \
  ::kgag::obs::TraceSpan KGAG_OBS_CONCAT(kgag_obs_span_,      \
                                         __LINE__)(name, (req))

/// Adds `n` to the named process-wide counter. The registry lookup runs
/// once per call site (function-local static), the increment is a relaxed
/// atomic on a per-thread shard.
#define KGAG_COUNTER_ADD(name, n)                                     \
  do {                                                                \
    static ::kgag::obs::Counter* kgag_obs_counter =                   \
        ::kgag::obs::MetricsRegistry::Global().GetCounter(name);      \
    kgag_obs_counter->Add(static_cast<uint64_t>(n));                  \
  } while (0)

/// Sets the named gauge to `v` (last write wins).
#define KGAG_GAUGE_SET(name, v)                                       \
  do {                                                                \
    static ::kgag::obs::Gauge* kgag_obs_gauge =                       \
        ::kgag::obs::MetricsRegistry::Global().GetGauge(name);        \
    kgag_obs_gauge->Set(static_cast<double>(v));                      \
  } while (0)

/// Observes `v` into the named fixed-bucket histogram; `bounds` is an
/// expression yielding std::vector<double>, evaluated once per call site.
#define KGAG_HISTOGRAM_OBSERVE(name, v, bounds)                       \
  do {                                                                \
    static ::kgag::obs::Histogram* kgag_obs_hist =                    \
        ::kgag::obs::MetricsRegistry::Global().GetHistogram(name,     \
                                                            bounds);  \
    kgag_obs_hist->Observe(static_cast<double>(v));                   \
  } while (0)

/// Observes `v` into the named HDR log-bucketed histogram (no bounds:
/// the ~3%-wide base-2 grid covers the full range). Latency series that
/// feed quantile gates use this, not KGAG_HISTOGRAM_OBSERVE.
#define KGAG_HDR_OBSERVE(name, v)                                     \
  do {                                                                \
    static ::kgag::obs::HdrHistogram* kgag_obs_hdr =                  \
        ::kgag::obs::MetricsRegistry::Global().GetHdrHistogram(name); \
    kgag_obs_hdr->Observe(static_cast<double>(v));                    \
  } while (0)

/// Appends one labelled snapshot line to the JSONL sink (if one is open).
#define KGAG_OBS_SNAPSHOT(label) ::kgag::obs::SnapshotMetrics(label)

/// Emits the wrapped statements only in obs-enabled builds.
#define KGAG_OBS_ONLY(...) __VA_ARGS__

#else  // !KGAG_OBS_ACTIVE

#define KGAG_TRACE_SPAN(name) \
  do {                        \
  } while (0)
#define KGAG_TRACE_SPAN_REQ(name, req) \
  do {                                 \
  } while (0)
#define KGAG_COUNTER_ADD(name, n) \
  do {                            \
  } while (0)
#define KGAG_GAUGE_SET(name, v) \
  do {                          \
  } while (0)
#define KGAG_HISTOGRAM_OBSERVE(name, v, bounds) \
  do {                                          \
  } while (0)
#define KGAG_HDR_OBSERVE(name, v) \
  do {                            \
  } while (0)
#define KGAG_OBS_SNAPSHOT(label) \
  do {                           \
  } while (0)
#define KGAG_OBS_ONLY(...)

#endif  // KGAG_OBS_ACTIVE

#endif  // KGAG_OBS_OBS_H_
