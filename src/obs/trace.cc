#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace kgag {
namespace obs {

namespace {

/// Per-(thread, recorder) ring handle. The shared_ptr keeps a ring alive
/// inside the recorder after its thread exits, so no events are lost.
thread_local std::shared_ptr<void> t_ring_owner;
thread_local void* t_ring = nullptr;

}  // namespace

TraceRecorder::TraceRecorder() {
  const char* env = std::getenv("KGAG_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    SetEnabled(true);
  }
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder;  // leaked on exit
  return *recorder;
}

double TraceRecorder::NowUs() {
  // One process-wide stopwatch started on first use; its lap/micro API is
  // the span clock (steady, monotonic).
  static const Stopwatch* epoch = new Stopwatch;
  return epoch->ElapsedMicros();
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  if (t_ring == nullptr) {
    auto ring = std::make_shared<Ring>(ObsThreadId());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      rings_.push_back(ring);
    }
    t_ring_owner = ring;
    t_ring = ring.get();
  }
  return static_cast<Ring*>(t_ring);
}

void TraceRecorder::Record(const char* name, double ts_us, double dur_us,
                           uint64_t req) {
  Ring* ring = RingForThisThread();
  const uint64_t idx = ring->count.load(std::memory_order_relaxed);
  if (idx >= kRingCapacity) {
    // The slot we are about to write holds a surviving span: the wrap is
    // a silent data loss unless counted. dropped() derives the same total
    // from ring counts; this counter surfaces it on /metrics alongside
    // every other series.
    static Counter* dropped_spans =
        MetricsRegistry::Global().GetCounter("obs.trace.dropped_spans");
    dropped_spans->Increment();
  }
  ring->events[idx % kRingCapacity] = TraceEvent{name, ts_us, dur_us,
                                                 ring->tid, req};
  // Publish after the event body so Collect() never reads a half-written
  // slot below the published count.
  ring->count.store(idx + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    const uint64_t n = ring->count.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(n, kRingCapacity);
    for (uint64_t i = n - kept; i < n; ++i) {
      out.push_back(ring->events[i % kRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    const uint64_t n = ring->count.load(std::memory_order_acquire);
    total += n > kRingCapacity ? n - kRingCapacity : 0;
  }
  return total;
}

uint64_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += std::min<uint64_t>(ring->count.load(std::memory_order_acquire),
                                kRingCapacity);
  }
  return total;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
  }
}

std::string TraceRecorder::ChromeTracingJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::ostringstream os;
  os.precision(12);
  // otherData surfaces ring wrap-around in the trace viewer's metadata
  // panel: a trace with dropped spans is a partial trace and must say so.
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":\""
     << dropped() << "\"},\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "\n{\"name\":\"" << e.name
       << "\",\"cat\":\"kgag\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us;
    if (e.req != 0) os << ",\"args\":{\"req\":" << e.req << "}";
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

Status TraceRecorder::ExportChromeTracing(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace output: " + path);
  }
  out << ChromeTracingJson();
  if (!out) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace kgag
