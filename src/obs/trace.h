// RAII trace spans with thread-local ring buffers and a chrome://tracing
// exporter. A span records (name, start, duration, thread) on destruction
// into the calling thread's ring; TraceRecorder::ExportChromeTracing
// merges every ring into Trace Event Format JSON that loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing, where spans nest by
// time containment per thread.
//
// Recording is off by default: a disabled TraceSpan costs one relaxed
// atomic load. Enable programmatically (TraceRecorder::Global()
// .SetEnabled(true)) or by setting KGAG_TRACE=1 in the environment.
// Export after the traced region is quiescent (spans still being written
// concurrently with an export may be missed).
#ifndef KGAG_OBS_TRACE_H_
#define KGAG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace kgag {
namespace obs {

/// \brief One completed span. `name` must point at storage that outlives
/// the recorder — the KGAG_TRACE_SPAN macro only passes string literals.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;   ///< start, microseconds since process trace epoch
  double dur_us = 0.0;  ///< duration in microseconds
  uint32_t tid = 0;     ///< ObsThreadId() of the recording thread
  uint64_t req = 0;     ///< request id linking spans across threads; 0 = none
};

/// \brief Collects spans from all threads into per-thread ring buffers.
class TraceRecorder {
 public:
  /// Events kept per thread; older events are dropped once a ring wraps
  /// (dropped() reports how many).
  static constexpr size_t kRingCapacity = size_t{1} << 15;

  /// Process-wide recorder (leaked singleton). Honours KGAG_TRACE=1 on
  /// first touch.
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one completed span to the calling thread's ring. `req` links
  /// the span to a request id (0 = not request-scoped); linked spans from
  /// any thread carry the same id, which the chrome://tracing export
  /// emits as an args annotation and /tracez emits per span.
  void Record(const char* name, double ts_us, double dur_us,
              uint64_t req = 0);

  /// Merged copy of every ring's surviving events, sorted by start time.
  std::vector<TraceEvent> Collect() const;

  /// Events recorded but overwritten by ring wrap-around, summed over all
  /// threads. Also published as the `obs.trace.dropped_spans` counter so
  /// silent wrap is visible on /metrics and /tracez.
  uint64_t dropped() const;

  /// Total surviving events across all rings.
  uint64_t size() const;

  /// Drops all recorded events (rings stay allocated).
  void Clear();

  /// Trace Event Format JSON ({"traceEvents":[...]}).
  std::string ChromeTracingJson() const;

  /// Writes ChromeTracingJson() to `path`.
  Status ExportChromeTracing(const std::string& path) const;

  /// Microseconds since the process trace epoch (steady clock).
  static double NowUs();

 private:
  struct Ring {
    explicit Ring(uint32_t tid_in) : events(kRingCapacity), tid(tid_in) {}
    std::vector<TraceEvent> events;
    std::atomic<uint64_t> count{0};  ///< total ever recorded
    uint32_t tid;
  };

  TraceRecorder();
  Ring* RingForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // guards rings_ registration only
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// \brief RAII span: records [construction, destruction) when tracing is
/// enabled at construction time. `name` must be a string literal (stored
/// by pointer). Pass a request id to link the span to a request across
/// threads (KGAG_TRACE_SPAN_REQ does).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t req = 0)
      : name_(name),
        req_(req),
        start_us_(TraceRecorder::Global().enabled() ? TraceRecorder::NowUs()
                                                    : -1.0) {}

  ~TraceSpan() {
    if (start_us_ >= 0.0) {
      TraceRecorder::Global().Record(
          name_, start_us_, TraceRecorder::NowUs() - start_us_, req_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t req_;
  double start_us_;
};

}  // namespace obs
}  // namespace kgag

#endif  // KGAG_OBS_TRACE_H_
