// Live introspection endpoint (DESIGN.md §12): a dependency-free
// HTTP/1.0 server exposing the observability state of a running process.
//
// Deliberately minimal — one blocking accept loop on its own thread, one
// request per connection, GET/HEAD only, Connection: close — because its
// job is `curl` and a Prometheus scraper, not traffic. Handlers run on
// the server thread; they only read lock-free metric state, so a slow
// scrape never blocks the serving path.
//
// Endpoints installed by RegisterDefaultIntrospection:
//   /metrics  Prometheus text exposition of MetricsRegistry::Global()
//   /healthz  "ok" (200) while the process is up
//   /tracez   recent completed spans as JSON (name/ts/dur/tid/req),
//             plus the dropped-span count from ring wrap-around
//   /statusz  JSON assembled from registered status sources (build info
//             is built in; servers add artifact/engine/SLO state)
#ifndef KGAG_OBS_INTROSPECT_H_
#define KGAG_OBS_INTROSPECT_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kgag {
namespace obs {

/// \brief One handler's reply.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \brief Blocking-accept HTTP/1.0 server for pull-based introspection.
class IntrospectionServer {
 public:
  struct Options {
    /// Loopback by default: introspection is an operator surface, not a
    /// public one.
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; port() reports the bound port after Start().
    int port = 0;
  };

  using Handler = std::function<HttpResponse()>;

  explicit IntrospectionServer(Options options);
  ~IntrospectionServer();  ///< Stop()s if still running.

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Registers `handler` for exact-match GET/HEAD `path` (must start with
  /// '/'). Call before Start(); later registration is rejected (checked).
  void Handle(std::string path, Handler handler);

  /// Adds a named JSON fragment to /statusz: the page renders as
  /// {"<key>": <json_fn()>, ...}. `json_fn` must return valid JSON.
  void AddStatusSource(std::string key, std::function<std::string()> json_fn);

  /// Invoked at the start of every request, before the handler — the
  /// place to refresh derived gauges (SLO burn rates, cache sizes) so
  /// scrapes always see current values.
  void SetRefresh(std::function<void()> refresh);

  /// Binds, listens and spawns the accept thread. Fails on bind errors
  /// (port taken, bad address).
  Status Start();

  /// Stops accepting, joins the thread, closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (the ephemeral one when Options::port was 0); -1 before
  /// Start().
  int port() const { return port_; }

  /// Registered /statusz fragments, in registration order (read by the
  /// default /statusz handler at request time, so sources added after
  /// RegisterDefaultIntrospection still render).
  const std::vector<std::pair<std::string, std::function<std::string()>>>&
  status_sources() const {
    return status_sources_;
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  std::map<std::string, Handler> handlers_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      status_sources_;
  std::function<void()> refresh_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Installs /metrics, /healthz, /tracez and /statusz on `server` (call
/// before Start). Idempotent per server.
void RegisterDefaultIntrospection(IntrospectionServer* server);

}  // namespace obs
}  // namespace kgag

#endif  // KGAG_OBS_INTROSPECT_H_
