#include "obs/obs.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace kgag {
namespace obs {

namespace {

std::mutex g_jsonl_mutex;
std::ofstream* g_jsonl = nullptr;  // guarded by g_jsonl_mutex

/// Publishes pool activity into the global registry. Histogram/gauge
/// handles are resolved once at construction; updates are lock-free.
class PoolMetricsObserver : public ThreadPoolObserver {
 public:
  PoolMetricsObserver()
      : wait_(MetricsRegistry::Global().GetHistogram(
            "threadpool.task_wait_us", LatencyBoundsUs())),
        run_(MetricsRegistry::Global().GetHistogram("threadpool.task_run_us",
                                                    LatencyBoundsUs())),
        depth_(MetricsRegistry::Global().GetGauge("threadpool.queue_depth")),
        parallel_fors_(MetricsRegistry::Global().GetCounter(
            "threadpool.parallel_for.calls")),
        parallel_items_(MetricsRegistry::Global().GetCounter(
            "threadpool.parallel_for.items")) {}

  void OnTaskQueued(size_t queue_depth) override {
    depth_->Set(static_cast<double>(queue_depth));
  }

  void OnTaskDone(double wait_us, double run_us) override {
    wait_->Observe(wait_us);
    run_->Observe(run_us);
  }

  void OnParallelFor(size_t n, size_t grain) override {
    (void)grain;
    parallel_fors_->Increment();
    parallel_items_->Add(n);
  }

 private:
  Histogram* wait_;
  Histogram* run_;
  Gauge* depth_;
  Counter* parallel_fors_;
  Counter* parallel_items_;
};

}  // namespace

Status OpenMetricsJsonl(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) {
    return Status::IoError("cannot open metrics sink: " + path);
  }
  std::lock_guard<std::mutex> lock(g_jsonl_mutex);
  delete g_jsonl;
  g_jsonl = file.release();
  return Status::OK();
}

void CloseMetricsJsonl() {
  std::lock_guard<std::mutex> lock(g_jsonl_mutex);
  delete g_jsonl;
  g_jsonl = nullptr;
}

bool MetricsJsonlOpen() {
  std::lock_guard<std::mutex> lock(g_jsonl_mutex);
  return g_jsonl != nullptr;
}

void SnapshotMetrics(std::string_view label) {
  if (!MetricsJsonlOpen()) return;
  // Merge outside the sink lock: snapshotting walks every metric stripe.
  const std::string line = MetricsRegistry::Global().JsonSnapshot(label);
  std::lock_guard<std::mutex> lock(g_jsonl_mutex);
  if (g_jsonl == nullptr) return;
  *g_jsonl << line << "\n";
  g_jsonl->flush();
}

void InstallDefaultInstrumentation() {
  static const bool installed = [] {
    SetThreadPoolObserver(new PoolMetricsObserver);  // leaked: outlives pools

    // Count log lines per level, then forward to whatever sink (or
    // stderr) was active before.
    LogSink previous = SetLogSink({});
    Counter* lines[4] = {
        MetricsRegistry::Global().GetCounter("log.lines.debug"),
        MetricsRegistry::Global().GetCounter("log.lines.info"),
        MetricsRegistry::Global().GetCounter("log.lines.warning"),
        MetricsRegistry::Global().GetCounter("log.lines.error"),
    };
    SetLogSink([previous = std::move(previous), lines](
                   LogLevel level, const std::string& line) {
      const int idx = static_cast<int>(level);
      if (idx >= 0 && idx < 4) lines[idx]->Increment();
      if (previous) {
        previous(level, line);
      } else {
        std::cerr << line << "\n";
      }
    });

    // KGAG_METRICS_JSONL=path auto-opens the sink, so any instrumented
    // binary can emit snapshots without code changes.
    if (const char* path = std::getenv("KGAG_METRICS_JSONL")) {
      if (path[0] != '\0') (void)OpenMetricsJsonl(path);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace obs
}  // namespace kgag
