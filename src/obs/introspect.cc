#include "obs/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kgag {
namespace obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    default: return "Internal Server Error";
  }
}

/// Reads until the end of the request headers (blank line), a size cap,
/// EOF or the socket timeout. Introspection requests are tiny; anything
/// that does not fit in 8 KiB is not one of ours.
bool ReadRequestHead(int fd, std::string* out) {
  char buf[1024];
  while (out->size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    out->append(buf, static_cast<size_t>(n));
    if (out->find("\r\n\r\n") != std::string::npos ||
        out->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Most recent completed spans as JSON, newest last; `limit` bounds the
/// page size so /tracez stays curl-able even with full rings.
std::string TracezJson(size_t limit) {
  TraceRecorder& rec = TraceRecorder::Global();
  std::vector<TraceEvent> events = rec.Collect();
  const size_t start = events.size() > limit ? events.size() - limit : 0;
  std::ostringstream os;
  os.precision(12);
  os << "{\"enabled\":" << (rec.enabled() ? "true" : "false")
     << ",\"span_count\":" << events.size()
     << ",\"dropped_spans\":" << rec.dropped() << ",\"spans\":[";
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > start) os << ",";
    os << "{\"name\":\"" << e.name << "\",\"ts_us\":" << e.ts_us
       << ",\"dur_us\":" << e.dur_us << ",\"tid\":" << e.tid;
    if (e.req != 0) os << ",\"req\":" << e.req;
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

IntrospectionServer::IntrospectionServer(Options options)
    : options_(std::move(options)) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Handle(std::string path, Handler handler) {
  KGAG_CHECK(!running()) << "Handle() after Start()";
  KGAG_CHECK(!path.empty() && path[0] == '/') << "path must start with /";
  handlers_[std::move(path)] = std::move(handler);
}

void IntrospectionServer::AddStatusSource(
    std::string key, std::function<std::string()> json_fn) {
  KGAG_CHECK(!running()) << "AddStatusSource() after Start()";
  status_sources_.emplace_back(std::move(key), std::move(json_fn));
}

void IntrospectionServer::SetRefresh(std::function<void()> refresh) {
  KGAG_CHECK(!running()) << "SetRefresh() after Start()";
  refresh_ = std::move(refresh);
}

Status IntrospectionServer::Start() {
  KGAG_CHECK(!running()) << "Start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&IntrospectionServer::AcceptLoop, this);
  return Status::OK();
}

void IntrospectionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Unblock accept(): shutdown makes the blocked call return on Linux;
  // close alone can leave it stuck.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void IntrospectionServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket is gone; nothing to serve
    }
    // A stuck client must not wedge the loop: bound both directions.
    timeval tv{.tv_sec = 2, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(fd);
    ::close(fd);
  }
}

void IntrospectionServer::ServeConnection(int fd) {
  std::string head;
  HttpResponse resp;
  bool head_only = false;
  if (!ReadRequestHead(fd, &head)) {
    resp = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    // Request line: METHOD SP PATH SP VERSION. Query strings are ignored
    // (every endpoint is parameterless).
    std::istringstream line(head.substr(0, head.find('\n')));
    std::string method, target;
    line >> method >> target;
    const size_t query = target.find('?');
    if (query != std::string::npos) target.resize(query);
    head_only = method == "HEAD";
    if (method != "GET" && method != "HEAD") {
      resp = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
    } else {
      auto it = handlers_.find(target);
      if (it == handlers_.end()) {
        std::ostringstream os;
        os << "not found; endpoints:\n";
        for (const auto& [path, unused] : handlers_) os << "  " << path << "\n";
        resp = {404, "text/plain; charset=utf-8", os.str()};
      } else {
        if (refresh_) refresh_();
        resp = it->second();
      }
    }
  }
  std::ostringstream os;
  os << "HTTP/1.0 " << resp.status << " " << ReasonPhrase(resp.status)
     << "\r\nContent-Type: " << resp.content_type
     << "\r\nContent-Length: " << resp.body.size()
     << "\r\nConnection: close\r\n\r\n";
  if (!head_only) os << resp.body;
  // A failed write means the client hung up mid-reply; nothing to do.
  (void)WriteAll(fd, os.str());
}

void RegisterDefaultIntrospection(IntrospectionServer* server) {
  server->Handle("/metrics", [] {
    return HttpResponse{
        200, "text/plain; version=0.0.4; charset=utf-8",
        MetricsRegistry::Global().PrometheusText()};
  });
  server->Handle("/healthz", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server->Handle("/tracez", [] {
    return HttpResponse{200, "application/json", TracezJson(256)};
  });
  server->Handle("/statusz", [server] {
    std::ostringstream os;
    os << "{\"build\":{\"project\":\"kgag\",\"compiler\":\"" << __VERSION__
       << "\",\"obs_enabled\":"
#ifdef KGAG_OBS_ENABLED
       << "true"
#else
       << "false"
#endif
       << "}";
    for (const auto& [key, fn] : server->status_sources()) {
      os << ",\"" << key << "\":" << fn();
    }
    os << "}";
    return HttpResponse{200, "application/json", os.str()};
  });
}

}  // namespace obs
}  // namespace kgag
