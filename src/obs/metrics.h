// Process-wide metrics: lock-free counters, gauges and fixed-bucket
// histograms. Hot-path writes go to per-thread shards (each thread owns a
// stripe of relaxed atomics, so increments never contend in the common
// case); readers merge all stripes on demand. Snapshots are exported as
// JSONL (one JSON object per line, one line per epoch/eval) and as a
// Prometheus-style text dump.
//
// Call sites normally go through the KGAG_COUNTER_ADD / KGAG_GAUGE_SET /
// KGAG_HISTOGRAM_OBSERVE macros in obs/obs.h, which cache the metric
// pointer in a function-local static and compile to nothing when
// KGAG_OBS_ENABLED is off. The classes here are always available, so
// drivers and tests can use the registry directly in either build mode.
#ifndef KGAG_OBS_METRICS_H_
#define KGAG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr_histogram.h"

namespace kgag {
namespace obs {

/// Number of shard stripes per metric. Each thread is assigned one stripe
/// (round-robin at first use); with more live threads than stripes two
/// threads may share one, which stays correct because all shard writes are
/// atomic read-modify-writes.
inline constexpr size_t kMetricStripes = 64;

/// Stable per-thread stripe index in [0, kMetricStripes).
size_t ThreadStripe();

/// Small sequential id of the calling thread (0 for the first thread that
/// asks, 1 for the second, ...). Shared by trace events and log lines.
uint32_t ObsThreadId();

/// \brief Monotonic counter, sharded per thread.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged value across all stripes.
  uint64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name);

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  std::string name_;
  std::unique_ptr<Shard[]> shards_;  // kMetricStripes entries
};

/// \brief Last-write-wins instantaneous value (doubles stored as bits so
/// the update is a single relaxed store).
class Gauge {
 public:
  void Set(double v);
  double Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name);

  std::string name_;
  std::atomic<uint64_t> bits_{0};
};

/// \brief Fixed-bucket histogram, sharded per thread like Counter.
///
/// Bucket i counts observations v <= bounds[i] (first matching bound); one
/// extra overflow bucket catches v > bounds.back(). Bounds are fixed at
/// registration, so merging shards is a plain per-bucket sum.
class Histogram {
 public:
  void Observe(double v);

  /// Merged per-bucket counts; size() == bounds().size() + 1 (overflow
  /// bucket last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;
  double Mean() const;
  /// Upper bound of the bucket holding the p-quantile (p in [0, 1]);
  /// returns 0 when empty. A coarse estimate, good enough for latency
  /// regression checks.
  double ApproxQuantile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  size_t BucketIndex(double v) const;

  std::string name_;
  std::vector<double> bounds_;  // ascending upper bounds
  size_t stride_;               // cells per stripe row, 64-byte aligned
  // Row layout per stripe: [bucket 0 .. bucket B] [sum-of-values bits].
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

/// \brief Owns all metrics; creation is mutex-guarded, updates are
/// lock-free through the returned handles (stable addresses for the
/// registry's lifetime).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (leaked singleton: safe to touch from static
  /// destructors and late-exiting worker threads).
  static MetricsRegistry& Global();

  /// Returns the named metric, creating it on first use. The pointer is
  /// stable; hot paths should cache it (the obs.h macros do).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` must be ascending; they are consumed on first registration
  /// and must match on later calls (checked).
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);
  /// Log-bucketed histogram with exact-count quantiles (hdr_histogram.h);
  /// needs no bounds — every series shares the same ~3% grid.
  HdrHistogram* GetHdrHistogram(std::string_view name);

  /// nullptr when the metric was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;
  const HdrHistogram* FindHdrHistogram(std::string_view name) const;

  size_t NumMetrics() const;

  /// One JSON object (single line, no trailing newline) with every metric
  /// merged: {"label":..,"seq":..,"counters":{..},"gauges":{..},
  /// "histograms":{..}}. `seq` increments per call.
  std::string JsonSnapshot(std::string_view label) const;

  /// Prometheus text exposition of every metric (kgag_ prefix, dots
  /// mapped to underscores, histogram with cumulative le buckets).
  std::string PrometheusText() const;

 private:
  mutable std::mutex mutex_;  // guards the maps, never the shard writes
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogram>, std::less<>>
      hdr_histograms_;
  mutable std::atomic<uint64_t> snapshot_seq_{0};
};

/// Shared latency bucket bounds in microseconds: 1-2-5 decades from 1us to
/// 10s. Used by the evaluator and thread-pool instrumentation so their
/// histograms are directly comparable.
const std::vector<double>& LatencyBoundsUs();

/// Small-count bucket bounds (1, 2, 4, ... 1024): batch sizes, group
/// sizes — anything whose interesting range is a few powers of two.
const std::vector<double>& CountBounds();

}  // namespace obs
}  // namespace kgag

#endif  // KGAG_OBS_METRICS_H_
