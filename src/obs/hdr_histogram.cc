#include "obs/hdr_histogram.h"

#include <bit>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace kgag {
namespace obs {

namespace {

constexpr uint64_t kMaxValue =
    (uint64_t{1} << HdrHistogram::kMaxExponent) - 1;

/// Integer magnitude the bucket grid is defined over: floor of the value,
/// clamped to the representable range.
uint64_t ClampToGrid(double v) {
  if (!(v > 0.0)) return 0;  // negatives and NaN land in bucket 0
  if (v >= static_cast<double>(kMaxValue)) return kMaxValue;
  return static_cast<uint64_t>(v);
}

}  // namespace

size_t HdrHistogram::BucketFor(double v) {
  const uint64_t n = ClampToGrid(v);
  if (n < kSubCount) return static_cast<size_t>(n);  // exact unit buckets
  const int msb = 63 - std::countl_zero(n);
  const int shift = msb - kSubBits;
  const size_t base = static_cast<size_t>(msb - kSubBits + 1) * kSubCount;
  return base + static_cast<size_t>((n >> shift) - kSubCount);
}

double HdrHistogram::BucketLowerEdge(size_t idx) {
  KGAG_CHECK(idx < kNumBuckets);
  const size_t octave = idx >> kSubBits;
  if (octave == 0) return static_cast<double>(idx);
  const int shift = static_cast<int>(octave) - 1;
  const uint64_t mantissa = (idx & (kSubCount - 1)) + kSubCount;
  return static_cast<double>(mantissa << shift);
}

double HdrHistogram::BucketUpperEdge(size_t idx) {
  KGAG_CHECK(idx < kNumBuckets);
  const size_t octave = idx >> kSubBits;
  if (octave == 0) return static_cast<double>(idx);
  const int shift = static_cast<int>(octave) - 1;
  const uint64_t mantissa = (idx & (kSubCount - 1)) + kSubCount;
  return static_cast<double>((mantissa << shift) + ((uint64_t{1} << shift) - 1));
}

HdrHistogram::HdrHistogram(std::string name) : name_(std::move(name)) {
  const size_t cells = kNumBuckets + 2;  // buckets + sum bits + count
  stride_ = (cells + 7) / 8 * 8;
  cells_.reset(new std::atomic<uint64_t>[kStripes * stride_]);
  for (size_t i = 0; i < kStripes * stride_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

void HdrHistogram::Observe(double v) {
  std::atomic<uint64_t>* row =
      cells_.get() + (ThreadStripe() % kStripes) * stride_;
  row[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  row[kNumBuckets + 1].fetch_add(1, std::memory_order_relaxed);
  // Sum-of-values: CAS on the double bits; stripes are effectively
  // single-writer so the loop almost never retries.
  std::atomic<uint64_t>& sum = row[kNumBuckets];
  uint64_t old = sum.load(std::memory_order_relaxed);
  const double add = std::isfinite(v) && v > 0.0 ? v : 0.0;
  while (!sum.compare_exchange_weak(
      old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + add),
      std::memory_order_relaxed)) {
  }
}

HdrSnapshot HdrHistogram::Snapshot() const {
  HdrSnapshot snap;
  snap.counts.assign(kNumBuckets, 0);
  for (size_t s = 0; s < kStripes; ++s) {
    const std::atomic<uint64_t>* row = cells_.get() + s * stride_;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.counts[b] += row[b].load(std::memory_order_relaxed);
    }
    snap.sum +=
        std::bit_cast<double>(row[kNumBuckets].load(std::memory_order_relaxed));
    snap.total += row[kNumBuckets + 1].load(std::memory_order_relaxed);
  }
  return snap;
}

double HdrSnapshot::Quantile(double p) const {
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Zero-based nearest rank, matching Percentile() over sorted raw
  // samples: the round(p * (n-1))-th smallest observation.
  const uint64_t rank = static_cast<uint64_t>(
      std::llround(p * static_cast<double>(total - 1)));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen > rank) return HdrHistogram::BucketUpperEdge(b);
  }
  // Unreachable when counts are consistent with total; be safe anyway.
  return HdrHistogram::BucketUpperEdge(counts.size() - 1);
}

HdrSnapshot& HdrSnapshot::Merge(const HdrSnapshot& other) {
  if (counts.empty()) counts.assign(HdrHistogram::kNumBuckets, 0);
  KGAG_CHECK(counts.size() == other.counts.size() || other.counts.empty());
  for (size_t b = 0; b < other.counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  sum += other.sum;
  total += other.total;
  return *this;
}

HdrSnapshot& HdrSnapshot::Subtract(const HdrSnapshot& earlier) {
  if (counts.empty()) counts.assign(HdrHistogram::kNumBuckets, 0);
  KGAG_CHECK(counts.size() == earlier.counts.size() ||
             earlier.counts.empty());
  for (size_t b = 0; b < earlier.counts.size(); ++b) {
    KGAG_CHECK(counts[b] >= earlier.counts[b])
        << "HdrSnapshot::Subtract would underflow bucket " << b;
    counts[b] -= earlier.counts[b];
  }
  sum -= earlier.sum;
  KGAG_CHECK(total >= earlier.total);
  total -= earlier.total;
  return *this;
}

}  // namespace obs
}  // namespace kgag
