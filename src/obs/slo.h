// SLO burn-rate tracking (DESIGN.md §12).
//
// Objectives are declarative good/bad classifications of requests — "p99
// latency <= T" becomes "at least 99% of requests finish within T", and
// "error rate <= eps" becomes "at least 1-eps of requests succeed". Each
// request is classified once against every objective and counted into a
// ring of one-second time buckets; sliding-window evaluation then gives,
// per objective and per window,
//   bad_rate  = bad / total              (the measured SLI complement)
//   burn_rate = bad_rate / error_budget  (error_budget = 1 - target)
// A burn rate of 1.0 means the error budget is being consumed exactly as
// fast as the objective allows; the standard multi-window alert fires
// when BOTH the short and the long window burn faster than the alert
// threshold (the short window confirms the problem is current, the long
// window that it is material). Results export as slo.* gauges for
// /metrics and as JSON for /statusz.
//
// Time is injectable (the *AtTime variants) so window arithmetic is unit
// testable without sleeping; production callers use the steady-clock
// default.
#ifndef KGAG_OBS_SLO_H_
#define KGAG_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kgag {
namespace obs {

/// \brief One objective: a request is BAD when it errors (and
/// count_errors is set) or exceeds the latency threshold (when one is
/// set); the objective holds while good/total >= target.
struct SloObjective {
  std::string name;                  ///< gauge suffix, e.g. "latency_p99"
  double target = 0.99;              ///< required good fraction, in (0, 1)
  double latency_threshold_us = 0;   ///< 0 = latency never makes a request bad
  bool count_errors = true;          ///< errored requests are bad
};

/// Default serving objectives: 99% of requests under 50ms, 99.9% of
/// requests succeed.
std::vector<SloObjective> DefaultServingObjectives();

/// \brief Sliding-window burn-rate evaluation over a bucketed ring.
class SloTracker {
 public:
  struct Options {
    double bucket_seconds = 1.0;        ///< ring granularity
    double short_window_seconds = 60;   ///< fast-burn confirmation window
    double long_window_seconds = 600;   ///< budget-materiality window
    /// Multi-window alert threshold: burning when BOTH windows exceed it.
    double alert_burn_rate = 2.0;
  };

  struct WindowState {
    uint64_t total = 0;
    uint64_t bad = 0;
    double bad_rate = 0.0;
    double burn_rate = 0.0;
  };

  struct ObjectiveState {
    std::string name;
    double target = 0.0;
    WindowState short_window;
    WindowState long_window;
    bool burning = false;  ///< both windows over alert_burn_rate
  };

  /// Default Options (1s buckets, 60s/600s windows, alert at 2x burn).
  explicit SloTracker(std::vector<SloObjective> objectives);
  SloTracker(std::vector<SloObjective> objectives, Options options);

  /// Classifies and counts one finished request (now = steady clock).
  void RecordRequest(double latency_us, bool error);
  /// Test seam: explicit time in seconds (monotonic, same epoch per
  /// tracker instance).
  void RecordRequestAtTime(double latency_us, bool error, double now_s);

  /// Evaluates every objective over both windows ending now.
  std::vector<ObjectiveState> Evaluate() const;
  std::vector<ObjectiveState> EvaluateAtTime(double now_s) const;

  /// Publishes slo.<name>.{bad_rate,burn_rate_short,burn_rate_long,
  /// burning} gauges to MetricsRegistry::Global(). Call before scraping.
  void ExportGauges() const;

  /// JSON array of per-objective state, for /statusz.
  std::string StateJson() const;

  const std::vector<SloObjective>& objectives() const { return objectives_; }
  const Options& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  ///< bucket index since tracker epoch; -1 = empty
    uint64_t total = 0;
    std::vector<uint64_t> bad;  ///< one cell per objective
  };

  WindowState WindowSum(int64_t now_idx, int64_t window_buckets,
                        size_t objective, double budget) const;

  const std::vector<SloObjective> objectives_;
  const Options options_;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
};

}  // namespace obs
}  // namespace kgag

#endif  // KGAG_OBS_SLO_H_
