#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace kgag {
namespace obs {

namespace {

/// Monotonic seconds shared by every tracker's default-clock path.
double NowSeconds() {
  static const Stopwatch* epoch = new Stopwatch;
  return epoch->ElapsedMicros() * 1e-6;
}

}  // namespace

std::vector<SloObjective> DefaultServingObjectives() {
  return {
      {.name = "latency_p99",
       .target = 0.99,
       .latency_threshold_us = 50e3,
       .count_errors = true},
      {.name = "availability",
       .target = 0.999,
       .latency_threshold_us = 0,
       .count_errors = true},
  };
}

SloTracker::SloTracker(std::vector<SloObjective> objectives)
    : SloTracker(std::move(objectives), Options()) {}

SloTracker::SloTracker(std::vector<SloObjective> objectives, Options options)
    : objectives_(std::move(objectives)), options_(options) {
  KGAG_CHECK(!objectives_.empty()) << "SloTracker needs >= 1 objective";
  KGAG_CHECK(options_.bucket_seconds > 0);
  KGAG_CHECK(options_.short_window_seconds >= options_.bucket_seconds);
  KGAG_CHECK(options_.long_window_seconds >= options_.short_window_seconds);
  for (const SloObjective& o : objectives_) {
    KGAG_CHECK(o.target > 0.0 && o.target < 1.0)
        << "objective target must be in (0,1): " << o.name;
  }
  const size_t buckets = static_cast<size_t>(
      std::ceil(options_.long_window_seconds / options_.bucket_seconds));
  ring_.resize(buckets);
  for (Bucket& b : ring_) b.bad.assign(objectives_.size(), 0);
}

void SloTracker::RecordRequest(double latency_us, bool error) {
  RecordRequestAtTime(latency_us, error, NowSeconds());
}

void SloTracker::RecordRequestAtTime(double latency_us, bool error,
                                     double now_s) {
  const int64_t idx =
      static_cast<int64_t>(std::floor(now_s / options_.bucket_seconds));
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = ring_[static_cast<size_t>(idx) % ring_.size()];
  if (b.epoch != idx) {
    // The ring wrapped past this slot's previous window: recycle it.
    b.epoch = idx;
    b.total = 0;
    std::fill(b.bad.begin(), b.bad.end(), 0);
  }
  b.total += 1;
  for (size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    const bool bad = (o.count_errors && error) ||
                     (o.latency_threshold_us > 0 &&
                      latency_us > o.latency_threshold_us);
    if (bad) b.bad[i] += 1;
  }
}

SloTracker::WindowState SloTracker::WindowSum(int64_t now_idx,
                                              int64_t window_buckets,
                                              size_t objective,
                                              double budget) const {
  WindowState w;
  for (const Bucket& b : ring_) {
    if (b.epoch < 0) continue;
    if (b.epoch > now_idx || b.epoch <= now_idx - window_buckets) continue;
    w.total += b.total;
    w.bad += b.bad[objective];
  }
  if (w.total > 0) {
    w.bad_rate = static_cast<double>(w.bad) / static_cast<double>(w.total);
    w.burn_rate = budget > 0 ? w.bad_rate / budget
                             : (w.bad > 0 ? 1e9 : 0.0);
  }
  return w;
}

std::vector<SloTracker::ObjectiveState> SloTracker::Evaluate() const {
  return EvaluateAtTime(NowSeconds());
}

std::vector<SloTracker::ObjectiveState> SloTracker::EvaluateAtTime(
    double now_s) const {
  const int64_t now_idx =
      static_cast<int64_t>(std::floor(now_s / options_.bucket_seconds));
  const int64_t short_buckets = static_cast<int64_t>(
      std::ceil(options_.short_window_seconds / options_.bucket_seconds));
  const int64_t long_buckets = static_cast<int64_t>(
      std::ceil(options_.long_window_seconds / options_.bucket_seconds));

  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectiveState> out;
  out.reserve(objectives_.size());
  for (size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    ObjectiveState state;
    state.name = o.name;
    state.target = o.target;
    const double budget = 1.0 - o.target;
    state.short_window = WindowSum(now_idx, short_buckets, i, budget);
    state.long_window = WindowSum(now_idx, long_buckets, i, budget);
    state.burning =
        state.short_window.burn_rate >= options_.alert_burn_rate &&
        state.long_window.burn_rate >= options_.alert_burn_rate;
    out.push_back(std::move(state));
  }
  return out;
}

void SloTracker::ExportGauges() const {
  for (const ObjectiveState& s : Evaluate()) {
    const std::string prefix = "slo." + s.name;
    MetricsRegistry::Global()
        .GetGauge(prefix + ".bad_rate")
        ->Set(s.long_window.bad_rate);
    MetricsRegistry::Global()
        .GetGauge(prefix + ".burn_rate_short")
        ->Set(s.short_window.burn_rate);
    MetricsRegistry::Global()
        .GetGauge(prefix + ".burn_rate_long")
        ->Set(s.long_window.burn_rate);
    MetricsRegistry::Global()
        .GetGauge(prefix + ".burning")
        ->Set(s.burning ? 1.0 : 0.0);
  }
}

std::string SloTracker::StateJson() const {
  std::ostringstream os;
  os.precision(12);
  os << "[";
  bool first = true;
  for (const ObjectiveState& s : Evaluate()) {
    os << (first ? "" : ",") << "{\"name\":\"" << s.name
       << "\",\"target\":" << s.target << ",\"burning\":"
       << (s.burning ? "true" : "false");
    const auto window = [&os](const char* key, const WindowState& w) {
      os << ",\"" << key << "\":{\"total\":" << w.total << ",\"bad\":"
         << w.bad << ",\"bad_rate\":" << w.bad_rate
         << ",\"burn_rate\":" << w.burn_rate << "}";
    };
    window("short_window", s.short_window);
    window("long_window", s.long_window);
    os << "}";
    first = false;
  }
  os << "]";
  return os.str();
}

}  // namespace obs
}  // namespace kgag
