#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace kgag {
namespace obs {

namespace {

std::atomic<uint32_t> g_next_thread_id{0};

struct ThreadIds {
  uint32_t id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  size_t stripe = id % kMetricStripes;
};

thread_local ThreadIds t_ids;

/// JSON-safe number: NaN/Inf are not valid JSON literals.
void AppendDouble(std::ostringstream* os, double v) {
  if (std::isfinite(v)) {
    *os << v;
  } else {
    *os << "null";
  }
}

/// Metric names here are dotted lowercase identifiers; Prometheus wants
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& name) {
  std::string out = "kgag_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

size_t ThreadStripe() { return t_ids.stripe; }

uint32_t ObsThreadId() { return t_ids.id; }

Counter::Counter(std::string name)
    : name_(std::move(name)), shards_(new Shard[kMetricStripes]) {}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (size_t s = 0; s < kMetricStripes; ++s) {
    total += shards_[s].v.load(std::memory_order_relaxed);
  }
  return total;
}

Gauge::Gauge(std::string name) : name_(std::move(name)) {
  bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
}

void Gauge::Set(double v) {
  bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  KGAG_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  KGAG_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  // buckets + overflow + sum cell, rounded up to a cache line of cells so
  // stripe rows never share a line (each row has a single writer).
  const size_t cells = bounds_.size() + 2;
  stride_ = (cells + 7) / 8 * 8;
  cells_.reset(new std::atomic<uint64_t>[kMetricStripes * stride_]);
  for (size_t i = 0; i < kMetricStripes * stride_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketIndex(double v) const {
  // First bound >= v, i.e. bucket i holds v <= bounds[i] (Prometheus `le`
  // semantics); everything above the last bound lands in the overflow.
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::Observe(double v) {
  std::atomic<uint64_t>* row = cells_.get() + ThreadStripe() * stride_;
  row[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  // Sum-of-values: CAS on the double bits. Stripes are effectively
  // single-writer, so the loop almost never retries.
  std::atomic<uint64_t>& sum = row[bounds_.size() + 1];
  uint64_t old = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(
      old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + v),
      std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (size_t s = 0; s < kMetricStripes; ++s) {
    const std::atomic<uint64_t>* row = cells_.get() + s * stride_;
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += row[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (size_t s = 0; s < kMetricStripes; ++s) {
    total += std::bit_cast<double>(
        cells_[s * stride_ + bounds_.size() + 1].load(
            std::memory_order_relaxed));
  }
  return total;
}

double Histogram::Mean() const {
  const uint64_t n = TotalCount();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::ApproxQuantile(double p) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = p * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (static_cast<double>(seen) >= target) {
      return b < bounds_.size() ? bounds_[b] : bounds_.back();
    }
  }
  return bounds_.back();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // leaked on exit
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  } else {
    KGAG_CHECK(it->second->bounds() == bounds)
        << "histogram re-registered with different bounds: " << name;
  }
  return it->second.get();
}

HdrHistogram* MetricsRegistry::GetHdrHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = hdr_histograms_.find(name);
  if (it == hdr_histograms_.end()) {
    it = hdr_histograms_
             .emplace(std::string(name), std::unique_ptr<HdrHistogram>(
                                             new HdrHistogram(std::string(name))))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const HdrHistogram* MetricsRegistry::FindHdrHistogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = hdr_histograms_.find(name);
  return it == hdr_histograms_.end() ? nullptr : it->second.get();
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         hdr_histograms_.size();
}

std::string MetricsRegistry::JsonSnapshot(std::string_view label) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(12);
  os << "{\"label\":\"" << label << "\",\"seq\":"
     << snapshot_seq_.fetch_add(1, std::memory_order_relaxed)
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->Value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":";
    AppendDouble(&os, g->Value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":"
       << h->TotalCount() << ",\"sum\":";
    AppendDouble(&os, h->Sum());
    os << ",\"bounds\":[";
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) os << ",";
      AppendDouble(&os, bounds[i]);
    }
    os << "],\"buckets\":[";
    const std::vector<uint64_t> counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ",";
      os << counts[i];
    }
    os << "]}";
    first = false;
  }
  // HDR series: quantiles, not raw buckets — ~1.2K cells per series would
  // swamp the line; the quantiles are exact-count (one bucket width).
  os << "},\"hdr_histograms\":{";
  first = true;
  for (const auto& [name, h] : hdr_histograms_) {
    const HdrSnapshot snap = h->Snapshot();
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << snap.total
       << ",\"sum\":";
    AppendDouble(&os, snap.sum);
    for (const auto& [qkey, p] :
         {std::pair<const char*, double>{"p50", 0.50},
          {"p90", 0.90},
          {"p99", 0.99},
          {"p999", 0.999}}) {
      os << ",\"" << qkey << "\":";
      AppendDouble(&os, snap.Quantile(p));
    }
    os << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(12);
  for (const auto& [name, c] : counters_) {
    const std::string pn = PrometheusName(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << c->Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = PrometheusName(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << g->Value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = PrometheusName(name);
    os << "# TYPE " << pn << " histogram\n";
    const std::vector<double>& bounds = h->bounds();
    const std::vector<uint64_t> counts = h->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < bounds.size(); ++b) {
      cumulative += counts[b];
      os << pn << "_bucket{le=\"" << bounds[b] << "\"} " << cumulative
         << "\n";
    }
    cumulative += counts.back();
    os << pn << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << pn << "_sum " << h->Sum() << "\n";
    os << pn << "_count " << cumulative << "\n";
  }
  // HDR histograms export as summaries: precomputed quantile samples are
  // what dashboards want, and the dense log grid would be an unreadable
  // wall of _bucket lines.
  for (const auto& [name, h] : hdr_histograms_) {
    const std::string pn = PrometheusName(name);
    const HdrSnapshot snap = h->Snapshot();
    os << "# TYPE " << pn << " summary\n";
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"0.5", 0.50},
          {"0.9", 0.90},
          {"0.99", 0.99},
          {"0.999", 0.999}}) {
      os << pn << "{quantile=\"" << label << "\"} " << snap.Quantile(p)
         << "\n";
    }
    os << pn << "_sum " << snap.sum << "\n";
    os << pn << "_count " << snap.total << "\n";
  }
  return os.str();
}

const std::vector<double>& LatencyBoundsUs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1,     2,     5,     10,    20,    50,    100,   200,   500,
      1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5,
      1e6,   2e6,   5e6,   1e7};
  return *bounds;
}

const std::vector<double>& CountBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  return *bounds;
}

}  // namespace obs
}  // namespace kgag
