// HDR-style log-bucketed histogram for latency series (DESIGN.md §12).
//
// The fixed-bucket Histogram in metrics.h needs its bounds chosen per
// series and quantizes quantiles to whatever grid the author picked; at
// serving scale that is too coarse for p99/p999 regression gates. This
// histogram needs no configuration: values are bucketed on a base-2
// logarithmic grid with 32 sub-buckets per octave, so every bucket is at
// most ~3.1% wide relative to its value, across the whole range
// [0, 2^42) (in microseconds: sub-nanosecond granularity near zero up to
// ~52 days). Quantile extraction is exact counting — the returned value
// is the upper edge of the bucket holding the nearest-rank observation,
// guaranteed within one bucket width of the true sample quantile.
//
// Writes are lock-free: each thread owns a stripe of relaxed atomics
// (same discipline as Counter/Histogram); readers merge stripes into an
// HdrSnapshot, and snapshots merge/subtract bucket-wise, so deltas over
// a window and shard aggregation across processes are plain vector sums.
#ifndef KGAG_OBS_HDR_HISTOGRAM_H_
#define KGAG_OBS_HDR_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace kgag {
namespace obs {

/// \brief Mergeable point-in-time view of an HdrHistogram (or of a delta
/// between two views). Plain data: copy, subtract and merge freely.
struct HdrSnapshot {
  std::vector<uint64_t> counts;  ///< one cell per log bucket
  double sum = 0.0;              ///< sum of observed values
  uint64_t total = 0;            ///< number of observations

  /// Nearest-rank quantile, p in [0, 1]: the upper edge of the bucket
  /// holding the round(p * (total - 1))-th smallest observation (the same
  /// rank rule bench_serve applies to raw samples). 0 when empty.
  double Quantile(double p) const;

  double Mean() const {
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
  }

  /// Bucket-wise accumulate (associative and commutative).
  HdrSnapshot& Merge(const HdrSnapshot& other);

  /// Bucket-wise subtract `earlier` from this snapshot — the window delta
  /// between two reads of the same histogram. Counts must not underflow
  /// (checked).
  HdrSnapshot& Subtract(const HdrSnapshot& earlier);
};

/// \brief Lock-free log-bucketed histogram. Create through
/// MetricsRegistry::GetHdrHistogram; addresses are stable for the
/// registry's lifetime.
class HdrHistogram {
 public:
  /// Sub-buckets per octave (2^5 = 32): relative bucket width <= 2^-5.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;
  /// Values are clamped to [0, 2^42): at microsecond units that is ~52
  /// days, far beyond any latency this process can observe.
  static constexpr int kMaxExponent = 42;
  /// Dense bucket count for the full clamped range.
  static constexpr size_t kNumBuckets =
      (kMaxExponent - kSubBits) * kSubCount + kSubCount;
  /// Writer stripes. Fewer than kMetricStripes: an HDR histogram carries
  /// ~1.2K cells per stripe, and serve paths have few concurrent writers.
  static constexpr size_t kStripes = 16;

  /// Dense bucket index for a value (negatives clamp to 0).
  static size_t BucketFor(double v);
  /// Smallest / largest value mapping to bucket `idx`.
  static double BucketLowerEdge(size_t idx);
  static double BucketUpperEdge(size_t idx);

  void Observe(double v);

  /// Merged view across all stripes.
  HdrSnapshot Snapshot() const;

  uint64_t TotalCount() const { return Snapshot().total; }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit HdrHistogram(std::string name);

  std::string name_;
  // Row layout per stripe: [bucket 0 .. kNumBuckets-1] [sum bits]
  // [observation count]. Rows are cache-line padded via stride_.
  size_t stride_;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

}  // namespace obs
}  // namespace kgag

#endif  // KGAG_OBS_HDR_HISTOGRAM_H_
