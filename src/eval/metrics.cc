#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace kgag {

std::vector<size_t> TopKIndices(std::span<const double> scores, size_t k) {
  return TopKIndicesWhere(scores, k, [](size_t) { return true; });
}

std::vector<ItemId> TopKItems(std::span<const double> scores,
                              std::span<const ItemId> pool, size_t k) {
  KGAG_CHECK_EQ(scores.size(), pool.size());
  const std::vector<size_t> top = TopKIndices(scores, k);
  std::vector<ItemId> ranked;
  ranked.reserve(top.size());
  for (size_t i : top) ranked.push_back(pool[i]);
  return ranked;
}

double HitAtK(std::span<const ItemId> ranked_items,
              const std::unordered_set<ItemId>& positives, size_t k) {
  const size_t n = std::min(k, ranked_items.size());
  for (size_t i = 0; i < n; ++i) {
    if (positives.count(ranked_items[i])) return 1.0;
  }
  return 0.0;
}

double RecallAtK(std::span<const ItemId> ranked_items,
                 const std::unordered_set<ItemId>& positives, size_t k) {
  if (positives.empty()) return 0.0;
  const size_t n = std::min(k, ranked_items.size());
  size_t found = 0;
  for (size_t i = 0; i < n; ++i) {
    if (positives.count(ranked_items[i])) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(positives.size());
}

double NdcgAtK(std::span<const ItemId> ranked_items,
               const std::unordered_set<ItemId>& positives, size_t k) {
  if (positives.empty()) return 0.0;
  const size_t n = std::min(k, ranked_items.size());
  double dcg = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (positives.count(ranked_items[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double idcg = 0.0;
  const size_t ideal = std::min(k, positives.size());
  for (size_t i = 0; i < ideal; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg == 0.0 ? 0.0 : dcg / idcg;
}

}  // namespace kgag
