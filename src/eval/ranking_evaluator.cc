#include "eval/ranking_evaluator.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "obs/obs.h"

namespace kgag {

std::string EvalResult::ToString() const {
  std::ostringstream os;
  os << "hit@" << k << "=" << hit_at_k << " rec@" << k << "=" << recall_at_k
     << " ndcg@" << k << "=" << ndcg_at_k << " (" << num_groups << " groups)";
  return os.str();
}

RankingEvaluator::RankingEvaluator(const GroupRecDataset* dataset, size_t k)
    : dataset_(dataset), k_(k) {
  KGAG_CHECK(dataset != nullptr);
  KGAG_CHECK_GT(k, 0u);
}

EvalResult RankingEvaluator::Evaluate(
    GroupScorer* scorer, const std::vector<Interaction>& interactions) const {
  KGAG_TRACE_SPAN("eval.evaluate");
  // Candidate pool + per-group positive sets from the held-out slice.
  std::unordered_set<ItemId> pool_set;
  std::unordered_map<GroupId, std::unordered_set<ItemId>> positives;
  for (const Interaction& it : interactions) {
    pool_set.insert(it.item);
    positives[it.row].insert(it.item);
  }
  std::vector<ItemId> pool(pool_set.begin(), pool_set.end());
  std::sort(pool.begin(), pool.end());

  EvalResult result;
  result.k = k_;
  if (pool.empty() || positives.empty()) return result;

  // Fixed group order: keeps the reduction deterministic (unordered_map
  // iteration order is not) and gives the parallel path stable slots.
  std::vector<std::pair<GroupId, const std::unordered_set<ItemId>*>> groups;
  groups.reserve(positives.size());
  for (const auto& [group, pos] : positives) groups.emplace_back(group, &pos);
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  struct GroupMetrics {
    double hit = 0.0;
    double recall = 0.0;
    double ndcg = 0.0;
  };
  std::vector<GroupMetrics> slots(groups.size());
  auto eval_group = [&](size_t i) {
    KGAG_TRACE_SPAN("eval.group");
    KGAG_OBS_ONLY(Stopwatch group_watch;)
    const auto& [group, pos] = groups[i];
    const std::vector<double> scores = scorer->ScoreGroup(group, pool);
    KGAG_CHECK_EQ(scores.size(), pool.size())
        << "scorer returned wrong-size vector";
    const std::vector<ItemId> ranked = TopKItems(scores, pool, k_);
    slots[i] = {HitAtK(ranked, *pos, k_), RecallAtK(ranked, *pos, k_),
                NdcgAtK(ranked, *pos, k_)};
    KGAG_HISTOGRAM_OBSERVE("eval.group_latency_us",
                           group_watch.ElapsedMicros(),
                           ::kgag::obs::LatencyBoundsUs());
  };

  if (pool_ != nullptr && groups.size() > 1) {
    // Auto-derived grain: each item is a full ranking pass (far larger
    // than one atomic fetch), but per-task queue latency still adds up
    // when groups vastly outnumber threads — chunking keeps ~8 chunks
    // per executor, which also bounds load imbalance to ~1/8 of a share.
    const size_t grain =
        ThreadPool::RecommendedGrain(groups.size(), pool_->num_threads());
    pool_->ParallelFor(groups.size(), grain, eval_group);
  } else {
    for (size_t i = 0; i < groups.size(); ++i) eval_group(i);
  }

  // Serial reduction in group order: identical for both paths above.
  for (const GroupMetrics& m : slots) {
    result.hit_at_k += m.hit;
    result.recall_at_k += m.recall;
    result.ndcg_at_k += m.ndcg;
    ++result.num_groups;
  }
  const double n = static_cast<double>(result.num_groups);
  result.hit_at_k /= n;
  result.recall_at_k /= n;
  result.ndcg_at_k /= n;
  KGAG_COUNTER_ADD("eval.evaluations", 1);
  KGAG_COUNTER_ADD("eval.groups", result.num_groups);
  KGAG_GAUGE_SET("eval.hit_at_k", result.hit_at_k);
  KGAG_GAUGE_SET("eval.recall_at_k", result.recall_at_k);
  KGAG_GAUGE_SET("eval.ndcg_at_k", result.ndcg_at_k);
  KGAG_GAUGE_SET("eval.num_groups", result.num_groups);
  return result;
}

}  // namespace kgag
