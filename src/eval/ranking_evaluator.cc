#include "eval/ranking_evaluator.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "eval/metrics.h"

namespace kgag {

std::string EvalResult::ToString() const {
  std::ostringstream os;
  os << "hit@" << k << "=" << hit_at_k << " rec@" << k << "=" << recall_at_k
     << " ndcg@" << k << "=" << ndcg_at_k << " (" << num_groups << " groups)";
  return os.str();
}

RankingEvaluator::RankingEvaluator(const GroupRecDataset* dataset, size_t k)
    : dataset_(dataset), k_(k) {
  KGAG_CHECK(dataset != nullptr);
  KGAG_CHECK_GT(k, 0u);
}

EvalResult RankingEvaluator::Evaluate(
    GroupScorer* scorer, const std::vector<Interaction>& interactions) const {
  // Candidate pool + per-group positive sets from the held-out slice.
  std::unordered_set<ItemId> pool_set;
  std::unordered_map<GroupId, std::unordered_set<ItemId>> positives;
  for (const Interaction& it : interactions) {
    pool_set.insert(it.item);
    positives[it.row].insert(it.item);
  }
  std::vector<ItemId> pool(pool_set.begin(), pool_set.end());
  std::sort(pool.begin(), pool.end());

  EvalResult result;
  result.k = k_;
  if (pool.empty() || positives.empty()) return result;

  for (const auto& [group, pos] : positives) {
    const std::vector<double> scores = scorer->ScoreGroup(group, pool);
    KGAG_CHECK_EQ(scores.size(), pool.size())
        << "scorer returned wrong-size vector";
    const std::vector<size_t> top = TopKIndices(scores, k_);
    std::vector<ItemId> ranked;
    ranked.reserve(top.size());
    for (size_t i : top) ranked.push_back(pool[i]);
    result.hit_at_k += HitAtK(ranked, pos, k_);
    result.recall_at_k += RecallAtK(ranked, pos, k_);
    result.ndcg_at_k += NdcgAtK(ranked, pos, k_);
    ++result.num_groups;
  }
  const double n = static_cast<double>(result.num_groups);
  result.hit_at_k /= n;
  result.recall_at_k /= n;
  result.ndcg_at_k /= n;
  return result;
}

}  // namespace kgag
