// Scoring interfaces that decouple the evaluator from concrete models.
#ifndef KGAG_EVAL_GROUP_SCORER_H_
#define KGAG_EVAL_GROUP_SCORER_H_

#include <span>
#include <vector>

#include "data/interactions.h"

namespace kgag {

/// \brief Anything that can score candidate items for a group; the
/// prediction function F(g, v | Θ) of §III-A.
class GroupScorer {
 public:
  virtual ~GroupScorer() = default;

  /// Prediction scores for group g over `items`; higher = more preferred.
  /// Returned vector is parallel to `items`.
  virtual std::vector<double> ScoreGroup(GroupId g,
                                         std::span<const ItemId> items) = 0;
};

/// \brief Individual (per-user) scoring, used by score-aggregation
/// baselines (CF+X, KGCN+X) and by the user-item loss term.
class IndividualScorer {
 public:
  virtual ~IndividualScorer() = default;

  /// Prediction scores for user u over `items`.
  virtual std::vector<double> ScoreUser(UserId u,
                                        std::span<const ItemId> items) = 0;
};

}  // namespace kgag

#endif  // KGAG_EVAL_GROUP_SCORER_H_
