#include "eval/statistics.h"

#include <limits>
#include <sstream>
#include <vector>

namespace kgag {

std::string SummaryStats::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << mean << " +/- " << stderr_mean << " (n=" << n << ")";
  return os.str();
}

SummaryStats Summarize(std::span<const double> values) {
  SummaryStats s;
  s.n = values.size();
  if (s.n == 0) return s;
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double sq = 0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    s.stderr_mean = s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

PairedComparison ComparePaired(std::span<const double> a,
                               std::span<const double> b) {
  KGAG_CHECK_EQ(a.size(), b.size()) << "paired samples must align";
  PairedComparison cmp;
  cmp.n = a.size();
  if (cmp.n == 0) return cmp;
  std::vector<double> diffs(cmp.n);
  for (size_t i = 0; i < cmp.n; ++i) {
    diffs[i] = a[i] - b[i];
    if (a[i] > b[i]) ++cmp.wins;
  }
  SummaryStats s = Summarize(diffs);
  cmp.mean_diff = s.mean;
  cmp.stderr_diff = s.stderr_mean;
  cmp.t_statistic =
      s.stderr_mean > 0 ? s.mean / s.stderr_mean
                        : (s.mean == 0 ? 0.0
                                       : std::numeric_limits<double>::infinity());
  return cmp;
}

}  // namespace kgag
