// Small statistics helpers for multi-seed experiment reporting: means,
// standard errors and paired comparisons between two methods evaluated on
// the same seeds.
#ifndef KGAG_EVAL_STATISTICS_H_
#define KGAG_EVAL_STATISTICS_H_

#include <cmath>
#include <span>
#include <string>

#include "common/check.h"

namespace kgag {

/// \brief Mean and standard error of a sample.
struct SummaryStats {
  double mean = 0.0;
  double stddev = 0.0;
  double stderr_mean = 0.0;  ///< stddev / sqrt(n)
  size_t n = 0;

  std::string ToString(int precision = 4) const;
};

SummaryStats Summarize(std::span<const double> values);

/// \brief Paired comparison of two methods run on the same seeds.
struct PairedComparison {
  double mean_diff = 0.0;    ///< mean(a - b)
  double stderr_diff = 0.0;  ///< standard error of the differences
  /// mean_diff / stderr_diff; |t| > ~2 suggests a real difference for
  /// small samples (not a calibrated p-value — a reporting aid).
  double t_statistic = 0.0;
  size_t wins = 0;  ///< count of seeds where a > b
  size_t n = 0;
};

/// a[i] and b[i] must come from the same seed/world.
PairedComparison ComparePaired(std::span<const double> a,
                               std::span<const double> b);

}  // namespace kgag

#endif  // KGAG_EVAL_STATISTICS_H_
