// Ranking metrics of §IV-C: hit@k and rec@k, plus ndcg@k as an extra.
#ifndef KGAG_EVAL_METRICS_H_
#define KGAG_EVAL_METRICS_H_

#include <span>
#include <unordered_set>
#include <vector>

#include "data/interactions.h"

namespace kgag {

/// Indices of the k largest scores, in descending score order. Ties break
/// towards the smaller index for determinism.
std::vector<size_t> TopKIndices(std::span<const double> scores, size_t k);

/// 1.0 if any of the top-k ranked items is a positive, else 0.0 (Eq. 21's
/// per-group indicator).
double HitAtK(std::span<const ItemId> ranked_items,
              const std::unordered_set<ItemId>& positives, size_t k);

/// |top-k ∩ positives| / |positives| for one group.
double RecallAtK(std::span<const ItemId> ranked_items,
                 const std::unordered_set<ItemId>& positives, size_t k);

/// DCG@k / IDCG@k with binary relevance.
double NdcgAtK(std::span<const ItemId> ranked_items,
               const std::unordered_set<ItemId>& positives, size_t k);

}  // namespace kgag

#endif  // KGAG_EVAL_METRICS_H_
