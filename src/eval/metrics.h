// Ranking metrics of §IV-C: hit@k and rec@k, plus ndcg@k as an extra —
// and the top-k selection that evaluation and serving share, so a ranking
// produced offline and one produced at request time cannot drift.
#ifndef KGAG_EVAL_METRICS_H_
#define KGAG_EVAL_METRICS_H_

#include <algorithm>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/interactions.h"

namespace kgag {

/// Indices of the k largest scores among those `keep` admits, in
/// descending score order; ties break towards the smaller index. A
/// bounded max-selection: memory is O(k), one pass over the scores, so
/// serving can rank a full item catalog without materializing an
/// index array per request. `keep` is a callable (size_t) -> bool.
template <typename Keep>
std::vector<size_t> TopKIndicesWhere(std::span<const double> scores, size_t k,
                                     Keep&& keep) {
  // `heap` is a min-heap on (score, index-reversed): the root is the
  // weakest survivor, evicted whenever a strictly better candidate
  // arrives. "Better" = higher score, or equal score and smaller index,
  // which reproduces std::partial_sort with the same comparator exactly.
  std::vector<std::pair<double, size_t>> heap;
  if (k == 0) return {};
  heap.reserve(k);
  const auto weaker = [](const std::pair<double, size_t>& a,
                         const std::pair<double, size_t>& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!keep(i)) continue;
    const std::pair<double, size_t> cand{scores[i], i};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), weaker);
    } else if (weaker(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), weaker);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), weaker);
    }
  }
  std::sort(heap.begin(), heap.end(), weaker);
  std::vector<size_t> idx;
  idx.reserve(heap.size());
  for (const auto& [score, i] : heap) idx.push_back(i);
  return idx;
}

/// Indices of the k largest scores, in descending score order. Ties break
/// towards the smaller index for determinism.
std::vector<size_t> TopKIndices(std::span<const double> scores, size_t k);

/// The ranked item list the evaluator scores metrics on and the serving
/// engine returns: `pool[i]` labels `scores[i]`. One definition for both.
std::vector<ItemId> TopKItems(std::span<const double> scores,
                              std::span<const ItemId> pool, size_t k);

/// 1.0 if any of the top-k ranked items is a positive, else 0.0 (Eq. 21's
/// per-group indicator).
double HitAtK(std::span<const ItemId> ranked_items,
              const std::unordered_set<ItemId>& positives, size_t k);

/// |top-k ∩ positives| / |positives| for one group.
double RecallAtK(std::span<const ItemId> ranked_items,
                 const std::unordered_set<ItemId>& positives, size_t k);

/// DCG@k / IDCG@k with binary relevance.
double NdcgAtK(std::span<const ItemId> ranked_items,
               const std::unordered_set<ItemId>& positives, size_t k);

}  // namespace kgag

#endif  // KGAG_EVAL_METRICS_H_
