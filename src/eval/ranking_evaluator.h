// Full-ranking evaluation protocol of §IV-C: for every group with test
// positives, score every item in the test pool, rank descending, and
// average hit@k / rec@k (and ndcg@k) across groups.
#ifndef KGAG_EVAL_RANKING_EVALUATOR_H_
#define KGAG_EVAL_RANKING_EVALUATOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/group_scorer.h"

namespace kgag {

class ThreadPool;

/// \brief Averaged ranking metrics over the evaluated groups.
struct EvalResult {
  double hit_at_k = 0.0;
  double recall_at_k = 0.0;
  double ndcg_at_k = 0.0;
  size_t num_groups = 0;
  size_t k = 0;

  std::string ToString() const;
};

/// \brief Runs the ranking protocol against a GroupScorer.
class RankingEvaluator {
 public:
  /// \param dataset corpus; must outlive the evaluator
  /// \param k cutoff (the paper reports k = 5)
  explicit RankingEvaluator(const GroupRecDataset* dataset, size_t k = 5);

  /// Installs a borrowed pool (nullptr restores the serial path). With a
  /// pool set, groups are scored concurrently into preallocated per-group
  /// slots and reduced in a fixed group order, so the metrics are
  /// bit-identical to the serial path. The scorer must then be safe to
  /// call from multiple threads (the model scorers here are read-only at
  /// evaluation time; anything stateful needs its own synchronization).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Evaluates over the held-out `interactions` (test or validation
  /// split). The candidate pool is the union of items in `interactions`,
  /// matching "prediction scores to each item in test set".
  EvalResult Evaluate(GroupScorer* scorer,
                      const std::vector<Interaction>& interactions) const;

  /// Convenience: evaluates on the dataset's test split.
  EvalResult EvaluateTest(GroupScorer* scorer) const {
    return Evaluate(scorer, dataset_->split.test);
  }
  /// Convenience: evaluates on the validation split.
  EvalResult EvaluateValid(GroupScorer* scorer) const {
    return Evaluate(scorer, dataset_->split.valid);
  }

 private:
  const GroupRecDataset* dataset_;
  size_t k_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace kgag

#endif  // KGAG_EVAL_RANKING_EVALUATOR_H_
