// Deterministic interaction stream for the online world (DESIGN.md §15).
//
// Production interactions arrive from the outside; reproducing "the
// outside" in tests and benchmarks needs the same trick the bigworld
// generator uses (data/synthetic/bigworld.h): make every event a pure
// function of (seed, index) via counter-based SplitMix64 streams. Event i
// is the same whether it is read first, last, from another thread or from
// another process — which is what lets a trainer, a serving process and a
// test agree on "what happened online" without sharing any state, and
// lets a warm-start run be replayed bit-identically from (spec, cursor).
//
// Cold-start shape: a configurable fraction of events is directed at the
// COLD TAIL of the user space — ids in [cold_user_begin, num_users) —
// which MakeOnlineWorld reserves with zero base interactions. Those users
// exist as isolated nodes in the collaborative KG until stream events
// attach their first `Interact` edges, exactly the unseen-user regime the
// cold-start evaluation (cold_start.h) measures.
#ifndef KGAG_ONLINE_STREAM_H_
#define KGAG_ONLINE_STREAM_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/interactions.h"

namespace kgag {
namespace online {

/// \brief Identity of one deterministic interaction stream. Same spec =
/// same events, forever.
struct StreamSpec {
  uint64_t seed = 20260809;
  int32_t num_users = 0;  ///< user ids drawn from [0, num_users)
  int32_t num_items = 0;  ///< item ids drawn from [0, num_items)
  /// First id of the reserved cold-user tail; events hit it with
  /// probability cold_fraction. Set to num_users (with cold_fraction 0)
  /// for a stream with no cold-start component.
  int32_t cold_user_begin = 0;
  /// Fraction of events whose user is drawn from the cold tail.
  double cold_fraction = 0.25;
};

/// \brief One streamed interaction: at index `index`, `user` engaged with
/// `item`.
struct StreamEvent {
  uint64_t index = 0;
  UserId user = -1;
  ItemId item = -1;
};

/// \brief Stateless counter-based event generator. Cheap to copy; safe to
/// read from any number of threads concurrently.
class InteractionStream {
 public:
  explicit InteractionStream(const StreamSpec& spec);

  const StreamSpec& spec() const { return spec_; }

  /// Event `i` — pure function of (spec, i); random access and
  /// sequential reads agree by construction.
  StreamEvent Event(uint64_t i) const;

  /// True when Event(i) targets a cold-tail user.
  bool IsColdEvent(uint64_t i) const {
    return Event(i).user >= spec_.cold_user_begin;
  }

 private:
  StreamSpec spec_;
};

/// Builds the online-world corpus: the MovieLens-shaped synthetic dataset
/// at `scale`, extended with `reserved_cold_users` additional users that
/// have NO interactions and belong to NO group. They are real nodes of
/// the collaborative KG (isolated until the stream reaches them) and real
/// rows of every frozen rep table, so a serving process can score ad-hoc
/// groups containing them from day one — with representations that only
/// become informed once online refreshes propagate their first edges.
GroupRecDataset MakeOnlineWorld(uint64_t seed, double scale,
                                int32_t reserved_cold_users);

/// The stream matching MakeOnlineWorld(seed, ...): same seed, ids drawn
/// from the world's user/item spaces, cold tail = the reserved users.
StreamSpec StreamForWorld(const GroupRecDataset& world, uint64_t seed,
                          int32_t reserved_cold_users,
                          double cold_fraction = 0.25);

}  // namespace online
}  // namespace kgag

#endif  // KGAG_ONLINE_STREAM_H_
