// Append-only Interact-edge overlay on an immutable collaborative KG
// (DESIGN.md §15).
//
// The CSR KnowledgeGraph is the right serving/training structure — dense
// offsets, cache-friendly adjacency spans — and exactly the wrong
// structure for per-event mutation: inserting one edge moves every later
// offset. DeltaKg keeps the base CSR frozen and accumulates new
// (user, Interact, item-entity) facts in a small hash-map overlay; reads
// merge base adjacency with overlay edges on the fly, and a periodic
// deterministic Compact() folds everything into a fresh CSR through the
// SAME canonicalization a from-scratch dataset rebuild uses, so an
// incrementally-maintained graph and a cold rebuild are bit-identical
// (pinned by tests/test_online.cc). No event ever triggers a full
// rebuild; no reader ever sees a half-inserted edge (the overlay is
// guarded, and compaction swaps whole graphs).
//
// Only the `Interact` relation streams online — the item knowledge graph
// (genres, attributes) is curated offline and ships with the artifact,
// which is why the overlay stores (user, item) pairs rather than
// arbitrary triples. Inverse edges mirror the base graph's convention:
// each accepted pair contributes user_node -(r_i)-> f(item) AND
// f(item) -(r_i + R')-> user_node.
#ifndef KGAG_ONLINE_DELTA_KG_H_
#define KGAG_ONLINE_DELTA_KG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/interactions.h"
#include "kg/collaborative_kg.h"

namespace kgag {
namespace online {

/// \brief Thread-safe Interact-edge overlay over one CollaborativeKg.
class DeltaKg {
 public:
  /// `base` is borrowed and must outlive the overlay (or be replaced via
  /// Rebase before it dies).
  explicit DeltaKg(const CollaborativeKg* base);

  /// Appends (user, Interact, f(item)) and its inverse to the overlay.
  /// Returns true when the edge is new; duplicates of base edges or of
  /// earlier overlay additions are rejected (false). Out-of-range ids
  /// are rejected with false as well — a stream must not crash the
  /// trainer.
  bool AddInteraction(UserId user, ItemId item);

  /// Accepted (user, item) pairs in insertion order (a copy — safe to
  /// hold across further AddInteraction calls).
  std::vector<std::pair<UserId, ItemId>> added() const;
  /// Directed overlay edges (2x accepted pairs: forward + inverse).
  size_t overlay_edges() const;

  // ---- Merged reads: base CSR + overlay, no rebuild ----

  /// Base degree plus overlay edges of `e`.
  size_t Degree(EntityId e) const;
  /// True if the merged graph holds e -(r)-> t.
  bool HasEdge(EntityId e, RelationId r, EntityId t) const;
  /// Visits every merged outgoing edge of `e`: base adjacency first (CSR
  /// order), then overlay additions in insertion order.
  void ForEachNeighbor(EntityId e,
                       const std::function<void(const Edge&)>& fn) const;

  /// Deterministic compaction: the base interactions plus every overlay
  /// pair, canonicalized through InteractionMatrix::FromPairs exactly as
  /// a cold dataset rebuild would, then rebuilt into a fresh CSR
  /// collaborative KG. `base_interactions` are the (user, item) pairs
  /// the CURRENT base graph was built from; the kg-side inputs are the
  /// immutable item-KG facts. Does not modify the overlay — call Rebase
  /// with the new graph once the caller has installed it.
  Result<CollaborativeKg> Compact(
      const std::vector<Triple>& kg_triples, int32_t num_entities,
      int32_t num_relations,
      const std::vector<std::pair<int32_t, int32_t>>& base_interactions)
      const;

  /// Points the overlay at a freshly compacted base and clears it.
  void Rebase(const CollaborativeKg* base);

  const CollaborativeKg* base() const;

 private:
  struct PairHash {
    size_t operator()(const std::pair<UserId, ItemId>& p) const {
      return std::hash<uint64_t>()(
          (static_cast<uint64_t>(static_cast<uint32_t>(p.first)) << 32) |
          static_cast<uint32_t>(p.second));
    }
  };

  const CollaborativeKg* base_;
  mutable std::mutex mu_;
  /// node -> overlay edges in insertion order.
  std::unordered_map<EntityId, std::vector<Edge>> overlay_;
  std::vector<std::pair<UserId, ItemId>> added_;
  std::unordered_set<std::pair<UserId, ItemId>, PairHash> added_set_;
  size_t overlay_edge_count_ = 0;
};

}  // namespace online
}  // namespace kgag

#endif  // KGAG_ONLINE_DELTA_KG_H_
