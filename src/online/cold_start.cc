#include "online/cold_start.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/rng.h"
#include "serve/frozen_scorer.h"

namespace kgag {
namespace online {
namespace {

// Stream ids for scenario construction, disjoint from training (0x51/0x52),
// bigworld (0xB*) and the interaction stream itself (0xE0-0xE2).
constexpr uint64_t kHostGroupStream = 0xE3;
constexpr uint64_t kWarmMemberStream = 0xE4;

}  // namespace

ColdStartScenarios BuildColdStartScenarios(const GroupRecDataset& world,
                                           const InteractionStream& stream,
                                           uint64_t first_event,
                                           uint64_t num_events,
                                           size_t max_cases) {
  ColdStartScenarios out;
  const uint64_t seed = stream.spec().seed;
  const int32_t warm_users = stream.spec().cold_user_begin;
  std::unordered_set<UserId> seen_cold;
  for (uint64_t i = first_event; i < first_event + num_events; ++i) {
    if (out.unseen_member.size() >= max_cases &&
        out.adhoc_group.size() >= max_cases) {
      break;
    }
    if (!stream.IsColdEvent(i)) continue;
    const StreamEvent ev = stream.Event(i);
    // One case per cold user: their FIRST streamed interaction is the
    // evidence a refresh gets to absorb, and its item is the target.
    if (!seen_cold.insert(ev.user).second) continue;

    if (out.unseen_member.size() < max_cases && world.groups.num_groups() > 0) {
      // Unseen-user-in-group: a deterministic existing (warm) group
      // gains the cold member.
      const GroupId host = static_cast<GroupId>(
          DeriveStreamSeed(seed, 0, kHostGroupStream, i) %
          static_cast<uint64_t>(world.groups.num_groups()));
      ColdStartCase c;
      const std::span<const UserId> members = world.groups.MembersOf(host);
      c.members.assign(members.begin(), members.end());
      c.members.push_back(ev.user);
      c.cold_user = ev.user;
      c.target = ev.item;
      out.unseen_member.push_back(std::move(c));
    }

    if (out.adhoc_group.size() < max_cases && warm_users > 0) {
      // Brand-new ad-hoc group: the cold user plus (group_size - 1)
      // counter-derived warm companions, a member set no GroupTable row
      // ever held.
      ColdStartCase c;
      c.members.push_back(ev.user);
      const size_t want =
          world.group_size > 1 ? static_cast<size_t>(world.group_size) : 2;
      for (uint64_t j = 0; c.members.size() < want; ++j) {
        const UserId warm = static_cast<UserId>(
            DeriveStreamSeed(seed, i, kWarmMemberStream, j) %
            static_cast<uint64_t>(warm_users));
        if (std::find(c.members.begin(), c.members.end(), warm) ==
            c.members.end()) {
          c.members.push_back(warm);
        }
        if (j > 64) break;  // degenerate tiny worlds: accept a short group
      }
      c.cold_user = ev.user;
      c.target = ev.item;
      out.adhoc_group.push_back(std::move(c));
    }
  }
  return out;
}

ColdStartReport EvaluateColdStart(const serve::FrozenModel& model,
                                  const std::vector<ColdStartCase>& cases,
                                  size_t k) {
  ColdStartReport report;
  for (const ColdStartCase& c : cases) {
    Result<serve::GroupRep> rep = serve::BuildGroupRep(model, c.members);
    if (!rep.ok()) continue;  // members outside this artifact's user space
    const std::vector<double> scores = serve::ScoreAllItems(model, *rep);
    if (c.target < 0 || c.target >= static_cast<ItemId>(scores.size())) {
      continue;
    }
    // 1-based rank of the target: 1 + |items scoring strictly higher|.
    // Ties resolve in the target's favor, matching TopK's stable order.
    const double target_score = scores[c.target];
    size_t rank = 1;
    for (size_t v = 0; v < scores.size(); ++v) {
      if (scores[v] > target_score) ++rank;
    }
    ++report.cases;
    report.mean_rank += static_cast<double>(rank);
    if (rank <= k) {
      report.hit_at_k += 1.0;
      report.ndcg_at_k += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
    }
  }
  if (report.cases > 0) {
    const double n = static_cast<double>(report.cases);
    report.hit_at_k /= n;
    report.ndcg_at_k /= n;
    report.mean_rank /= n;
  }
  return report;
}

std::string ColdStartReportJson(const ColdStartReport& report, size_t k) {
  std::ostringstream os;
  os << "{\"cases\": " << report.cases << ", \"k\": " << k
     << ", \"hit_at_k\": " << report.hit_at_k
     << ", \"ndcg_at_k\": " << report.ndcg_at_k
     << ", \"mean_rank\": " << report.mean_rank << "}";
  return os.str();
}

}  // namespace online
}  // namespace kgag
