#include "online/delta_kg.h"

#include <algorithm>

#include "common/check.h"
#include "data/interactions.h"
#include "obs/obs.h"

namespace kgag {
namespace online {

DeltaKg::DeltaKg(const CollaborativeKg* base) : base_(base) {
  KGAG_CHECK(base != nullptr);
  KGAG_CHECK(base->interact_relation != kInvalidRelation);
}

bool DeltaKg::AddInteraction(UserId user, ItemId item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (user < 0 || user >= base_->num_users || item < 0 ||
      item >= static_cast<ItemId>(base_->item_to_entity.size())) {
    KGAG_COUNTER_ADD("online.delta.rejected", 1);
    return false;
  }
  const EntityId user_node = base_->UserNode(user);
  const EntityId item_entity = base_->ItemEntity(item);
  const RelationId r = base_->interact_relation;
  // Inverse edges mirror KnowledgeGraph::Build's convention: inverse of
  // r is r + R' where R' is the graph's forward relation count.
  const RelationId r_inv = r + base_->graph.num_relations();

  const std::pair<UserId, ItemId> pair{user, item};
  if (added_set_.count(pair) > 0 ||
      base_->graph.HasEdge(user_node, r, item_entity)) {
    KGAG_COUNTER_ADD("online.delta.duplicates", 1);
    return false;
  }
  added_set_.insert(pair);
  added_.push_back(pair);
  overlay_[user_node].push_back(Edge{item_entity, r});
  overlay_[item_entity].push_back(Edge{user_node, r_inv});
  overlay_edge_count_ += 2;
  KGAG_COUNTER_ADD("online.delta.edges", 2);
  KGAG_GAUGE_SET("online.delta.pending_pairs",
                 static_cast<double>(added_.size()));
  return true;
}

std::vector<std::pair<UserId, ItemId>> DeltaKg::added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return added_;
}

size_t DeltaKg::overlay_edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_edge_count_;
}

size_t DeltaKg::Degree(EntityId e) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t d = base_->graph.Degree(e);
  auto it = overlay_.find(e);
  if (it != overlay_.end()) d += it->second.size();
  return d;
}

bool DeltaKg::HasEdge(EntityId e, RelationId r, EntityId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (base_->graph.HasEdge(e, r, t)) return true;
  auto it = overlay_.find(e);
  if (it == overlay_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), Edge{t, r}) !=
         it->second.end();
}

void DeltaKg::ForEachNeighbor(
    EntityId e, const std::function<void(const Edge&)>& fn) const {
  // Snapshot both sides under the lock (the base span stays valid — the
  // CSR is immutable and outlives the overlay), then visit outside it so
  // `fn` may call back into the overlay: base adjacency first, then
  // overlay additions in insertion order.
  std::span<const Edge> base_edges;
  std::vector<Edge> extra;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base_edges = base_->graph.Neighbors(e);
    auto it = overlay_.find(e);
    if (it != overlay_.end()) extra = it->second;
  }
  for (const Edge& edge : base_edges) fn(edge);
  for (const Edge& edge : extra) fn(edge);
}

Result<CollaborativeKg> DeltaKg::Compact(
    const std::vector<Triple>& kg_triples, int32_t num_entities,
    int32_t num_relations,
    const std::vector<std::pair<int32_t, int32_t>>& base_interactions)
    const {
  // Canonicalize through InteractionMatrix exactly like a cold dataset
  // rebuild: FromPairs dedups and sorts row-major, ToPairs re-emits that
  // canonical order, so the compacted CSR is bit-identical to one built
  // from a dataset that always contained the streamed pairs.
  std::vector<Interaction> merged;
  const CollaborativeKg* base = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = base_;
    merged.reserve(base_interactions.size() + added_.size());
    for (const auto& [u, v] : base_interactions) {
      merged.push_back(Interaction{u, v});
    }
    for (const auto& [u, v] : added_) merged.push_back(Interaction{u, v});
  }
  const InteractionMatrix canonical = InteractionMatrix::FromPairs(
      base->num_users, static_cast<int32_t>(base->item_to_entity.size()),
      std::move(merged));
  std::vector<std::pair<int32_t, int32_t>> pairs;
  pairs.reserve(canonical.num_interactions());
  for (const Interaction& it : canonical.ToPairs()) {
    pairs.emplace_back(it.row, it.item);
  }
  return BuildCollaborativeKg(kg_triples, num_entities, num_relations,
                              base->num_users, base->item_to_entity, pairs);
}

const CollaborativeKg* DeltaKg::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

void DeltaKg::Rebase(const CollaborativeKg* base) {
  KGAG_CHECK(base != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  base_ = base;
  overlay_.clear();
  added_.clear();
  added_set_.clear();
  overlay_edge_count_ = 0;
  KGAG_GAUGE_SET("online.delta.pending_pairs", 0);
}

}  // namespace online
}  // namespace kgag
