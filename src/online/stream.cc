#include "online/stream.h"

#include "common/check.h"
#include "common/rng.h"
#include "data/synthetic/standard_datasets.h"

namespace kgag {
namespace online {

namespace {
// Stream ids namespacing the per-event draws (one constant per column,
// the bigworld convention — common/rng.h).
constexpr uint64_t kColdGateStream = 0xE0;
constexpr uint64_t kUserStream = 0xE1;
constexpr uint64_t kItemStream = 0xE2;

// Uniform draw in [0, n) from one derived stream value.
int32_t DrawMod(uint64_t seed, uint64_t stream, uint64_t index, int32_t n) {
  KGAG_CHECK_GT(n, 0);
  return static_cast<int32_t>(DeriveStreamSeed(seed, 0, stream, index) %
                              static_cast<uint64_t>(n));
}
}  // namespace

InteractionStream::InteractionStream(const StreamSpec& spec) : spec_(spec) {
  KGAG_CHECK_GT(spec_.num_users, 0);
  KGAG_CHECK_GT(spec_.num_items, 0);
  KGAG_CHECK(spec_.cold_user_begin >= 0 &&
             spec_.cold_user_begin <= spec_.num_users);
}

StreamEvent InteractionStream::Event(uint64_t i) const {
  StreamEvent ev;
  ev.index = i;
  const int32_t cold_span = spec_.num_users - spec_.cold_user_begin;
  // Cold gate: a per-event uniform in [0,1) against cold_fraction, drawn
  // from its own stream so toggling the fraction never perturbs which
  // user/item an event would otherwise pick.
  const bool cold =
      cold_span > 0 && spec_.cold_fraction > 0.0 &&
      (DeriveStreamSeed(spec_.seed, 0, kColdGateStream, i) >> 11) *
              0x1.0p-53 <
          spec_.cold_fraction;
  ev.user = cold ? spec_.cold_user_begin +
                       DrawMod(spec_.seed, kUserStream, i, cold_span)
                 : DrawMod(spec_.seed, kUserStream, i,
                           spec_.cold_user_begin > 0 ? spec_.cold_user_begin
                                                     : spec_.num_users);
  ev.item = DrawMod(spec_.seed, kItemStream, i, spec_.num_items);
  return ev;
}

GroupRecDataset MakeOnlineWorld(uint64_t seed, double scale,
                                int32_t reserved_cold_users) {
  GroupRecDataset world = MakeMovieLensRandDataset(seed, scale);
  KGAG_CHECK_GE(reserved_cold_users, 0);
  // Extending num_users only: the reserved users join no group and hold
  // no interactions, so every matrix keyed by user id stays valid — the
  // user_item matrix just needs its row space widened.
  world.user_item = InteractionMatrix::FromPairs(
      world.num_users + reserved_cold_users, world.num_items,
      world.user_item.ToPairs());
  world.num_users += reserved_cold_users;
  world.name += "+cold" + std::to_string(reserved_cold_users);
  return world;
}

StreamSpec StreamForWorld(const GroupRecDataset& world, uint64_t seed,
                          int32_t reserved_cold_users,
                          double cold_fraction) {
  StreamSpec spec;
  spec.seed = seed;
  spec.num_users = world.num_users;
  spec.num_items = world.num_items;
  spec.cold_user_begin = world.num_users - reserved_cold_users;
  spec.cold_fraction = cold_fraction;
  return spec;
}

}  // namespace online
}  // namespace kgag
