#include "online/online_trainer.h"

#include <utility>

#include "ckpt/checkpoint.h"
#include "common/stopwatch.h"
#include "obs/obs.h"
#include "serve/frozen_model.h"

namespace kgag {
namespace online {

OnlineTrainer::OnlineTrainer(std::unique_ptr<GroupRecDataset> dataset,
                             const InteractionStream& stream,
                             Options options)
    : options_(std::move(options)),
      dataset_(std::move(dataset)),
      stream_(stream) {}

Result<std::unique_ptr<OnlineTrainer>> OnlineTrainer::Create(
    GroupRecDataset dataset, const InteractionStream& stream,
    Options options) {
  auto trainer = std::unique_ptr<OnlineTrainer>(new OnlineTrainer(
      std::make_unique<GroupRecDataset>(std::move(dataset)), stream,
      std::move(options)));
  KGAG_ASSIGN_OR_RETURN(
      trainer->model_,
      KgagModel::Create(trainer->dataset_.get(), trainer->options_.config));
  for (const Interaction& it : trainer->dataset_->user_item.ToPairs()) {
    trainer->base_pairs_.emplace_back(it.row, it.item);
  }
  trainer->delta_ = std::make_unique<DeltaKg>(&trainer->model_->ckg());

  if (!trainer->options_.checkpoint_dir.empty()) {
    ckpt::CheckpointManager mgr({.dir = trainer->options_.checkpoint_dir});
    Result<ckpt::TrainingState> state = mgr.LoadLatest();
    if (state.ok()) {
      // Warm start: parameters, Adam moments, both RNG engines and the
      // batcher trajectory resume exactly where offline training (or the
      // previous refresh loop) checkpointed.
      KGAG_RETURN_NOT_OK(trainer->model_->RestoreTrainingState(
          *state, /*selector=*/nullptr));
      trainer->resumed_ = true;
    } else if (!state.status().IsNotFound()) {
      return state.status();
    }
    // NotFound = cold start on fresh parameters; refreshes will create
    // the first checkpoint.
  }
  return trainer;
}

size_t OnlineTrainer::ApplyEvents(size_t n) {
  size_t accepted = 0;
  for (size_t i = 0; i < n; ++i) {
    const StreamEvent ev = stream_.Event(next_event_++);
    if (delta_->AddInteraction(ev.user, ev.item)) ++accepted;
  }
  events_since_refresh_ += n;
  KGAG_COUNTER_ADD("online.stream.events", static_cast<uint64_t>(n));
  return accepted;
}

Result<RefreshReport> OnlineTrainer::Refresh() {
  RefreshReport report;
  report.events_applied = events_since_refresh_;
  report.new_edges = delta_->overlay_edges();

  // (1) Compaction: fold base pairs + overlay through the canonical
  // interaction-matrix rebuild. The model's RefreshInteractions performs
  // the identical BuildCollaborativeKg the standalone DeltaKg::Compact
  // does (pinned bit-identical by tests/test_online.cc), installing the
  // fresh CSR without touching the fixed node universe.
  std::vector<std::pair<int32_t, int32_t>> merged = base_pairs_;
  for (const auto& [u, v] : delta_->added()) merged.emplace_back(u, v);
  std::vector<Interaction> merged_inter;
  merged_inter.reserve(merged.size());
  for (const auto& [u, v] : merged) merged_inter.push_back(Interaction{u, v});
  dataset_->user_item = InteractionMatrix::FromPairs(
      dataset_->num_users, dataset_->num_items, std::move(merged_inter));
  std::vector<std::pair<int32_t, int32_t>> canonical;
  canonical.reserve(dataset_->user_item.num_interactions());
  for (const Interaction& it : dataset_->user_item.ToPairs()) {
    canonical.emplace_back(it.row, it.item);
  }
  KGAG_RETURN_NOT_OK(model_->RefreshInteractions(canonical));

  // (2) Fine-tune: continue the restored optimizer/RNG trajectory for a
  // few micro-epochs over the refreshed graph and interaction orders.
  Stopwatch train_watch;
  for (int e = 0; e < options_.micro_epochs; ++e) {
    report.micro_epoch_losses.push_back(model_->FineTuneEpoch());
  }
  report.train_micros = train_watch.ElapsedMicros();

  // (3) Durable state: the next process (or the determinism test) can
  // resume this exact trajectory.
  if (options_.save_checkpoints && !options_.checkpoint_dir.empty()) {
    ckpt::CheckpointManager mgr({.dir = options_.checkpoint_dir});
    KGAG_RETURN_NOT_OK(mgr.Save(model_->CaptureTrainingState(
        model_->epoch_losses().size(), /*mid_epoch=*/false,
        /*batches_done=*/0, /*partial_loss=*/0.0, /*selector=*/nullptr)));
  }

  // (4) Publish: freeze, optionally quantize, atomically rename into the
  // watched path. A serving process polling that path either sees the
  // old complete artifact or the new complete artifact, never bytes in
  // between.
  Stopwatch freeze_watch;
  KGAG_ASSIGN_OR_RETURN(serve::FrozenModel frozen,
                        serve::FreezeKgagModel(model_.get()));
  if (options_.precision != QuantType::kFp64) {
    KGAG_ASSIGN_OR_RETURN(
        frozen, serve::QuantizeFrozenModel(frozen, options_.precision));
  }
  if (!options_.artifact_path.empty()) {
    KGAG_RETURN_NOT_OK(
        options_.mmap_layout
            ? serve::SaveFrozenModelV2(frozen, options_.artifact_path)
            : serve::SaveFrozenModel(frozen, options_.artifact_path));
    report.artifact_path = options_.artifact_path;
  }
  report.freeze_micros = freeze_watch.ElapsedMicros();

  // (5) Rebase the overlay on the installed graph; the compacted pairs
  // become the next refresh's base.
  base_pairs_ = std::move(canonical);
  delta_->Rebase(&model_->ckg());
  events_since_refresh_ = 0;
  report.version = ++version_;

  KGAG_COUNTER_ADD("online.refresh.count", 1);
  KGAG_GAUGE_SET("online.artifact.version", static_cast<double>(version_));
  KGAG_GAUGE_SET("online.refresh.train_micros",
                 static_cast<double>(report.train_micros));
  KGAG_GAUGE_SET("online.refresh.freeze_micros",
                 static_cast<double>(report.freeze_micros));
  return report;
}

}  // namespace online
}  // namespace kgag
