// Cold-start evaluation scenarios (DESIGN.md §15).
//
// The online world makes two request shapes first-class that a static
// train/test split cannot express:
//
//   * unseen-user-in-group — an established group gains a member who had
//     ZERO interactions at training time (a reserved cold-tail user).
//     The group's rep must absorb an uninformed member gracefully, and
//     refreshes that propagate the member's first streamed interactions
//     should recover ranking quality.
//   * brand-new ad-hoc group — a member set that never existed as a
//     group: cold users mixed with warm ones, the "occasional group"
//     regime of the data-sparsity literature (PAPERS.md).
//
// Both are materialized deterministically from the interaction stream:
// a cold event (user u, item v) becomes a case whose TARGET is v — the
// thing u just told the system it likes — so "after refresh" artifacts
// have genuinely seen the evidence while "before" artifacts have not.
// Evaluation ranks the target among all items with the same frozen
// scoring path serving uses, reporting hit@k / ndcg@k / mean rank.
#ifndef KGAG_ONLINE_COLD_START_H_
#define KGAG_ONLINE_COLD_START_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "online/stream.h"
#include "serve/frozen_model.h"

namespace kgag {
namespace online {

/// \brief One cold-start request: score `members`, look for `target`.
struct ColdStartCase {
  std::vector<UserId> members;  ///< contains >=1 cold-tail user
  UserId cold_user = -1;        ///< the unseen member
  ItemId target = -1;           ///< the item their stream event touched
};

/// \brief The two scenario families, built from one stream window.
struct ColdStartScenarios {
  std::vector<ColdStartCase> unseen_member;  ///< existing group + cold user
  std::vector<ColdStartCase> adhoc_group;    ///< fresh member set
};

/// \brief Ranking quality of one scenario family on one artifact.
struct ColdStartReport {
  size_t cases = 0;
  double hit_at_k = 0.0;
  double ndcg_at_k = 0.0;
  double mean_rank = 0.0;  ///< 1-based rank of the target, averaged
};

/// Walks stream events [first_event, first_event + num_events) and turns
/// each distinct cold-tail user's FIRST event into one case per family:
/// unseen_member appends the cold user to a deterministic existing group
/// of `world`; adhoc_group pairs the cold user with counter-derived warm
/// users (group-size members total). At most `max_cases` cases per
/// family.
ColdStartScenarios BuildColdStartScenarios(const GroupRecDataset& world,
                                           const InteractionStream& stream,
                                           uint64_t first_event,
                                           uint64_t num_events,
                                           size_t max_cases);

/// Scores every case against `model` (the frozen serving path:
/// BuildGroupRep + ScoreAllItems) and ranks the case's target among all
/// items. Deterministic; safe on any artifact whose user space covers
/// the members.
ColdStartReport EvaluateColdStart(const serve::FrozenModel& model,
                                  const std::vector<ColdStartCase>& cases,
                                  size_t k);

/// JSON fragment for benches: {"cases":N,"hit_at_k":..,...}.
std::string ColdStartReportJson(const ColdStartReport& report, size_t k);

}  // namespace online
}  // namespace kgag

#endif  // KGAG_ONLINE_COLD_START_H_
