// Warm-start fine-tuning loop for the online world (DESIGN.md §15).
//
// The live pipeline this drives:
//
//   KGAGCKP1 checkpoint ──resume──▶ KgagModel (full optimizer/RNG state)
//            ▲                         │
//            └──save per refresh       │ micro-epochs on the refreshed CKG
//   stream events ──▶ DeltaKg overlay ─┤
//                     (no rebuild)     ▼
//                      compaction ─▶ frozen artifact ──atomic rename──▶
//                                    watched path (serve_model --watch
//                                    hot-swaps it in; serving_engine.h)
//
// ApplyEvents() consumes the deterministic InteractionStream: each event
// lands in the Interact-edge overlay and the owned dataset's pair log —
// O(1) per event, the base CSR untouched. Refresh() then (1) compacts the
// overlay into a fresh CSR and installs it in the model (fixed node
// universe, so every embedding row stays meaningful), (2) runs a few
// fine-tuning micro-epochs continuing the checkpointed optimizer/RNG
// trajectory, (3) saves a new checkpoint, and (4) freezes + atomically
// publishes a new versioned artifact. Everything is deterministic: two
// trainers resumed from the same checkpoint and fed the same stream
// window publish byte-identical artifacts (tests/test_online.cc).
#ifndef KGAG_ONLINE_ONLINE_TRAINER_H_
#define KGAG_ONLINE_ONLINE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "models/kgag_model.h"
#include "online/delta_kg.h"
#include "online/stream.h"
#include "tensor/quant.h"

namespace kgag {
namespace online {

/// \brief One Refresh() outcome.
struct RefreshReport {
  uint64_t version = 0;          ///< monotonic artifact version (v1, v2, …)
  uint64_t events_applied = 0;   ///< stream events consumed since last refresh
  uint64_t new_edges = 0;        ///< directed Interact edges compacted in
  std::vector<double> micro_epoch_losses;
  std::string artifact_path;     ///< where the artifact was published
  uint64_t train_micros = 0;
  uint64_t freeze_micros = 0;
};

/// \brief Owns the online fine-tuning loop: dataset copy, model, overlay,
/// stream cursor, artifact versioning. Single-threaded by design — run it
/// on one refresh thread; the serving side stays concurrent via hot-swap.
class OnlineTrainer {
 public:
  struct Options {
    /// Model/training config; must match the checkpoint being resumed
    /// (same seed and architecture). pairs_per_epoch bounds a
    /// micro-epoch's cost — online refreshes want hundreds of pairs, not
    /// the full corpus.
    KgagConfig config;
    /// Checkpoint directory to warm-start from and to keep saving into.
    /// Empty = cold start (fresh parameters) and no checkpoint saves.
    std::string checkpoint_dir;
    /// Watched artifact path each refresh publishes to (atomic rename —
    /// a watcher never sees a partial file). Empty = don't publish.
    std::string artifact_path;
    /// Fine-tuning epochs per refresh.
    int micro_epochs = 1;
    /// Rep-table precision of published artifacts.
    QuantType precision = QuantType::kFp64;
    /// Publish KGAGSRV2 (mmap) instead of KGAGSRV1.
    bool mmap_layout = false;
    /// Save a checkpoint after each refresh (needs checkpoint_dir).
    bool save_checkpoints = true;
  };

  /// Builds the model over an OWNED copy of `dataset` and warm-starts
  /// from the newest checkpoint in options.checkpoint_dir when one
  /// exists. `stream` defines the event source; consumption starts at
  /// index 0.
  static Result<std::unique_ptr<OnlineTrainer>> Create(
      GroupRecDataset dataset, const InteractionStream& stream,
      Options options);

  /// Consumes the next `n` stream events into the overlay + pair log.
  /// Returns how many were new edges (duplicates are absorbed silently —
  /// a user re-watching an item is not a new fact).
  size_t ApplyEvents(size_t n);

  /// Compact → install → fine-tune → checkpoint → freeze → publish.
  /// Cheap no-op-ish when no events arrived (still retrains/publishes,
  /// callers gate on pending_events() if they want to skip).
  Result<RefreshReport> Refresh();

  /// True when Create() found and restored a checkpoint.
  bool resumed_from_checkpoint() const { return resumed_; }
  /// Artifact versions published so far.
  uint64_t version() const { return version_; }
  /// Next stream index ApplyEvents will read.
  uint64_t next_event() const { return next_event_; }
  /// Events applied (new edges) since the last Refresh.
  size_t pending_events() const { return delta_->added().size(); }

  const DeltaKg& delta() const { return *delta_; }
  const KgagModel& model() const { return *model_; }
  KgagModel* mutable_model() { return model_.get(); }
  const GroupRecDataset& dataset() const { return *dataset_; }
  const InteractionStream& stream() const { return stream_; }

 private:
  OnlineTrainer(std::unique_ptr<GroupRecDataset> dataset,
                const InteractionStream& stream, Options options);

  Options options_;
  /// Owned, mutable: stream events append to its user_item matrix. Heap
  /// allocated so the model's borrowed pointer survives moves.
  std::unique_ptr<GroupRecDataset> dataset_;
  InteractionStream stream_;
  std::unique_ptr<KgagModel> model_;
  std::unique_ptr<DeltaKg> delta_;
  /// (user, item) pair log the current model CKG was built from.
  std::vector<std::pair<int32_t, int32_t>> base_pairs_;
  uint64_t next_event_ = 0;
  uint64_t events_since_refresh_ = 0;
  uint64_t version_ = 0;
  bool resumed_ = false;
};

}  // namespace online
}  // namespace kgag

#endif  // KGAG_ONLINE_ONLINE_TRAINER_H_
