// CF baseline: matrix factorization [35] combined with a predefined score
// aggregation strategy (CF+AVG / CF+LM / CF+MP of Table II). Trained, like
// every method compared in the paper, on both interaction kinds with the
// combined loss of Eq. 20 — the group ranking term uses the aggregated
// member score.
#ifndef KGAG_BASELINES_MF_H_
#define KGAG_BASELINES_MF_H_

#include <memory>
#include <vector>

#include "baselines/aggregation.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "models/config.h"
#include "models/recommender.h"
#include "tensor/optimizer.h"

namespace kgag {

/// \brief Configuration shared by the embedding-only baselines.
struct MfConfig {
  int dim = 16;
  double learning_rate = 5e-3;
  double l2 = 1e-5;
  double beta = 0.7;    ///< group-loss weight (Eq. 20)
  double margin = 0.4;  ///< margin M of the pairwise loss
  GroupLossKind group_loss = GroupLossKind::kMargin;
  int epochs = 10;
  size_t batch_size = 32;
  /// Group-item pairs per epoch (0 = the full training split).
  size_t pairs_per_epoch = 0;
  double user_ratio = 1.0;
  /// Keep the weights of the epoch with the best validation hit@5.
  bool select_by_validation = true;
  uint64_t seed = 42;
  bool verbose = false;
};

/// \brief MF + static score aggregation for group recommendation.
class MfGroupRecommender : public TrainableGroupRecommender,
                           public IndividualScorer {
 public:
  MfGroupRecommender(const GroupRecDataset* dataset, MfConfig config,
                     ScoreAggregation aggregation);

  void Fit() override;
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;
  std::vector<double> ScoreUser(UserId u,
                                std::span<const ItemId> items) override;
  std::string name() const override;

  double TrainEpoch(Rng* rng);
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }
  ParameterStore* params() { return &store_; }

 private:
  double Score(UserId u, ItemId v) const;

  const GroupRecDataset* dataset_;
  MfConfig config_;
  ScoreAggregation aggregation_;
  Rng init_rng_;
  ParameterStore store_;
  Parameter* user_table_;
  Parameter* item_table_;
  std::unique_ptr<Optimizer> optimizer_;
  Batcher batcher_;
  Rng train_rng_;
  std::vector<double> epoch_losses_;
};

}  // namespace kgag

#endif  // KGAG_BASELINES_MF_H_
