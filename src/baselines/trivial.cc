#include "baselines/trivial.h"

namespace kgag {

void PopularityRecommender::Fit() {
  item_score_.assign(static_cast<size_t>(dataset_->num_items), 0.0);
  for (const Interaction& it : dataset_->split.train) {
    item_score_[static_cast<size_t>(it.item)] += 1.0;
  }
  // Tie-break by overall user engagement.
  for (UserId u = 0; u < dataset_->num_users; ++u) {
    for (ItemId v : dataset_->user_item.ItemsOf(u)) {
      item_score_[static_cast<size_t>(v)] += 1e-3;
    }
  }
}

std::vector<double> PopularityRecommender::ScoreGroup(
    GroupId /*g*/, std::span<const ItemId> items) {
  std::vector<double> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = item_score_[static_cast<size_t>(items[i])];
  }
  return out;
}

std::vector<double> RandomRecommender::ScoreGroup(
    GroupId g, std::span<const ItemId> items) {
  std::vector<double> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    // SplitMix64-style hash of (seed, group, item) for stable pseudo-random
    // scores.
    uint64_t x = seed_ ^ (static_cast<uint64_t>(g) << 32) ^
                 static_cast<uint64_t>(items[i]);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    out[i] = static_cast<double>(x) / static_cast<double>(UINT64_MAX);
  }
  return out;
}

}  // namespace kgag
