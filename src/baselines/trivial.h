// Non-learning reference scorers: popularity and random ranking. Not part
// of Table II, but useful floors for tests and sanity checks (every
// trained model should beat Random; Popularity is a strong naive floor).
#ifndef KGAG_BASELINES_TRIVIAL_H_
#define KGAG_BASELINES_TRIVIAL_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "models/recommender.h"

namespace kgag {

/// \brief Ranks items by their training-split group-interaction count
/// (ties broken by user-item interaction count).
class PopularityRecommender : public TrainableGroupRecommender {
 public:
  explicit PopularityRecommender(const GroupRecDataset* dataset)
      : dataset_(dataset) {}

  void Fit() override;
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;
  std::string name() const override { return "Popularity"; }

 private:
  const GroupRecDataset* dataset_;
  std::vector<double> item_score_;
};

/// \brief Uniform random scores (deterministic per (group, item) via
/// hashing, so evaluation is reproducible).
class RandomRecommender : public TrainableGroupRecommender {
 public:
  explicit RandomRecommender(uint64_t seed) : seed_(seed) {}

  void Fit() override {}
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;
  std::string name() const override { return "Random"; }

 private:
  uint64_t seed_;
};

}  // namespace kgag

#endif  // KGAG_BASELINES_TRIVIAL_H_
