// KGCN baseline [25]: knowledge graph convolutional network for
// *individual* recommendation, extended to groups with a static score
// aggregation (KGCN+AVG / +LM / +MP of Table II). The item representation
// is propagated over the item knowledge graph (not the collaborative KG)
// with the user embedding as the query, and the prediction is
// ⟨u, item_rep⟩. Training uses the same combined loss as the other
// methods (Eq. 20), with the group term applied to the aggregated member
// score.
#ifndef KGAG_BASELINES_KGCN_H_
#define KGAG_BASELINES_KGCN_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baselines/aggregation.h"
#include "baselines/mf.h"
#include "common/result.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "kg/neighbor_sampler.h"
#include "models/propagation.h"
#include "models/recommender.h"
#include "tensor/optimizer.h"

namespace kgag {

/// \brief KGCN configuration: MF knobs plus the propagation block.
struct KgcnConfig {
  MfConfig base;
  PropagationConfig propagation;
  /// Eval-time Monte-Carlo receptive-field samples (averaged), matching
  /// the KGAG evaluator for a fair comparison.
  int eval_tree_samples = 3;
};

/// \brief KGCN + static score aggregation for group recommendation.
class KgcnGroupRecommender : public TrainableGroupRecommender,
                             public IndividualScorer {
 public:
  static Result<std::unique_ptr<KgcnGroupRecommender>> Create(
      const GroupRecDataset* dataset, KgcnConfig config,
      ScoreAggregation aggregation);

  void Fit() override;
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;
  std::vector<double> ScoreUser(UserId u,
                                std::span<const ItemId> items) override;
  std::string name() const override;

  double TrainEpoch(Rng* rng);
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

 private:
  KgcnGroupRecommender(const GroupRecDataset* dataset, KgcnConfig config,
                       ScoreAggregation aggregation);

  /// Differentiable ⟨u, item_rep(query = u)⟩ for one pair.
  Var ScorePairOnTape(Tape* tape, UserId u, ItemId v, Rng* rng);

  const std::vector<SampledTree>& EvalTrees(EntityId item_entity);

  /// All-user scores for one item (lazy cache; queries = user table).
  const std::vector<double>& AllUserScores(ItemId v);

  const GroupRecDataset* dataset_;
  KgcnConfig config_;
  ScoreAggregation aggregation_;
  Rng init_rng_;
  ParameterStore store_;
  Parameter* user_table_;
  Parameter* entity_table_;
  KnowledgeGraph item_kg_;
  std::optional<PropagationEngine> propagation_;
  std::unique_ptr<Optimizer> optimizer_;
  Batcher batcher_;
  Rng train_rng_;
  std::unordered_map<EntityId, std::vector<SampledTree>> eval_trees_;
  std::unordered_map<ItemId, std::vector<double>> score_cache_;
  bool cache_valid_ = false;
  std::vector<double> epoch_losses_;
};

}  // namespace kgag

#endif  // KGAG_BASELINES_KGCN_H_
