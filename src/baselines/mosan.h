// MoSAN baseline [16]: medley of sub-attention networks. Each member runs
// a sub-attention over their peers to build a context vector; member
// vectors are combined by a second attention into the group preference.
// Notably the group representation does NOT depend on the candidate item —
// the limitation the paper's PI/SP design addresses — so MoSAN is expected
// to trail KGAG. Trained with the same combined loss (Eq. 20).
#ifndef KGAG_BASELINES_MOSAN_H_
#define KGAG_BASELINES_MOSAN_H_

#include <memory>
#include <vector>

#include "data/batcher.h"
#include "data/dataset.h"
#include "baselines/mf.h"
#include "models/recommender.h"
#include "tensor/optimizer.h"

namespace kgag {

/// \brief MoSAN group recommender.
class MosanGroupRecommender : public TrainableGroupRecommender {
 public:
  MosanGroupRecommender(const GroupRecDataset* dataset, MfConfig config);

  void Fit() override;
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;
  std::string name() const override { return "MoSAN"; }

  double TrainEpoch(Rng* rng);
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

 private:
  /// Differentiable group representation (1 x d).
  Var GroupRepOnTape(Tape* tape, GroupId g);

  /// Inference-path group representation.
  Tensor GroupRep(GroupId g) const;

  const GroupRecDataset* dataset_;
  MfConfig config_;
  Rng init_rng_;
  ParameterStore store_;
  Parameter* target_table_;   // t_u (m x d)
  Parameter* context_table_;  // c_u (m x d)
  Parameter* item_table_;     // q_v (n x d)
  Parameter* w_member_;       // (2d x d) member MLP
  Parameter* b_member_;       // (1 x d)
  Parameter* w_att_;          // (d x 1) member-level attention
  std::unique_ptr<Optimizer> optimizer_;
  Batcher batcher_;
  Rng train_rng_;
  std::vector<double> epoch_losses_;
};

}  // namespace kgag

#endif  // KGAG_BASELINES_MOSAN_H_
