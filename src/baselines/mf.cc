#include "baselines/mf.h"

#include "common/logging.h"
#include "models/losses.h"
#include "models/validation.h"

namespace kgag {

MfGroupRecommender::MfGroupRecommender(const GroupRecDataset* dataset,
                                       MfConfig config,
                                       ScoreAggregation aggregation)
    : dataset_(dataset),
      config_(config),
      aggregation_(aggregation),
      init_rng_(config.seed),
      batcher_(dataset,
               Batcher::Options{config.batch_size, config.user_ratio,
                                config.pairs_per_epoch}),
      train_rng_(config.seed + 1) {
  KGAG_CHECK(dataset != nullptr);
  user_table_ = store_.Create("mf.users", dataset->num_users, config_.dim,
                              Init::kNormal01, &init_rng_);
  item_table_ = store_.Create("mf.items", dataset->num_items, config_.dim,
                              Init::kNormal01, &init_rng_);
  optimizer_ = std::make_unique<Adam>(config_.learning_rate);
}

std::string MfGroupRecommender::name() const {
  return std::string("CF+") + AggregationName(aggregation_);
}

double MfGroupRecommender::Score(UserId u, ItemId v) const {
  Scalar s = 0;
  for (int c = 0; c < config_.dim; ++c) {
    s += user_table_->value.at(static_cast<size_t>(u),
                               static_cast<size_t>(c)) *
         item_table_->value.at(static_cast<size_t>(v),
                               static_cast<size_t>(c));
  }
  return s;
}

double MfGroupRecommender::TrainEpoch(Rng* rng) {
  batcher_.BeginEpoch(rng);
  MiniBatch batch;
  double total = 0.0;
  size_t num_batches = 0;
  Tape tape;
  while (batcher_.NextBatch(rng, &batch)) {
    double batch_loss = 0.0;
    const double group_scale =
        batch.group_triplets.empty()
            ? 0.0
            : config_.beta / static_cast<double>(batch.group_triplets.size());
    const double user_scale =
        batch.user_instances.empty()
            ? 0.0
            : (1.0 - config_.beta) /
                  static_cast<double>(batch.user_instances.size());

    for (const GroupTriplet& t : batch.group_triplets) {
      tape.Clear();
      const auto members = dataset_->groups.MembersOf(t.group);
      std::vector<size_t> member_ids(members.begin(), members.end());
      Var users = tape.Gather(user_table_, member_ids);  // (L x d)
      auto score_for = [&](ItemId v) {
        Var item = tape.Gather(item_table_, {static_cast<size_t>(v)});
        Var member_scores =
            tape.RowDot(users, tape.RepeatRows(item, member_ids.size()));
        return AggregateScoresOnTape(&tape, member_scores, aggregation_);
      };
      Var pos = score_for(t.positive);
      Var neg = score_for(t.negative);
      Var loss = config_.group_loss == GroupLossKind::kMargin
                     ? MarginPairLoss(&tape, pos, neg, config_.margin)
                     : BprPairLoss(&tape, pos, neg);
      Var scaled = tape.ScalarMul(loss, group_scale);
      tape.Backward(scaled);
      batch_loss += tape.value(scaled).item();
    }
    for (const UserInstance& ui : batch.user_instances) {
      tape.Clear();
      Var u = tape.Gather(user_table_, {static_cast<size_t>(ui.user)});
      Var v = tape.Gather(item_table_, {static_cast<size_t>(ui.item)});
      Var logit = tape.DotAll(u, v);
      Var scaled =
          tape.ScalarMul(LogisticLoss(&tape, logit, ui.label), user_scale);
      tape.Backward(scaled);
      batch_loss += tape.value(scaled).item();
    }
    optimizer_->Step(&store_, config_.l2);
    total += batch_loss;
    ++num_batches;
  }
  return num_batches == 0 ? 0.0 : total / num_batches;
}

void MfGroupRecommender::Fit() {
  ValidationSelector selector(dataset_, &store_);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double loss = TrainEpoch(&train_rng_);
    epoch_losses_.push_back(loss);
    if (config_.select_by_validation) selector.Observe(this);
    if (config_.verbose) {
      KGAG_LOG(Info) << name() << " epoch " << epoch + 1 << " loss=" << loss;
    }
  }
  if (config_.select_by_validation) selector.RestoreBest();
}

std::vector<double> MfGroupRecommender::ScoreGroup(
    GroupId g, std::span<const ItemId> items) {
  const auto members = dataset_->groups.MembersOf(g);
  std::vector<double> out(items.size());
  std::vector<double> member_scores(members.size());
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t m = 0; m < members.size(); ++m) {
      member_scores[m] = Score(members[m], items[i]);
    }
    out[i] = AggregateScores(member_scores, aggregation_);
  }
  return out;
}

std::vector<double> MfGroupRecommender::ScoreUser(
    UserId u, std::span<const ItemId> items) {
  std::vector<double> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) out[i] = Score(u, items[i]);
  return out;
}

}  // namespace kgag
