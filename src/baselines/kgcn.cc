#include "baselines/kgcn.h"

#include "common/logging.h"
#include "models/losses.h"
#include "models/validation.h"

namespace kgag {

KgcnGroupRecommender::KgcnGroupRecommender(const GroupRecDataset* dataset,
                                           KgcnConfig config,
                                           ScoreAggregation aggregation)
    : dataset_(dataset),
      config_(config),
      aggregation_(aggregation),
      init_rng_(config.base.seed),
      batcher_(dataset,
               Batcher::Options{config.base.batch_size,
                                config.base.user_ratio,
                                config.base.pairs_per_epoch}),
      train_rng_(config.base.seed + 1) {}

Result<std::unique_ptr<KgcnGroupRecommender>> KgcnGroupRecommender::Create(
    const GroupRecDataset* dataset, KgcnConfig config,
    ScoreAggregation aggregation) {
  if (dataset == nullptr) return Status::InvalidArgument("null dataset");
  auto model = std::unique_ptr<KgcnGroupRecommender>(
      new KgcnGroupRecommender(dataset, config, aggregation));
  KGAG_ASSIGN_OR_RETURN(
      model->item_kg_,
      KnowledgeGraph::Build(dataset->num_entities, dataset->num_relations,
                            dataset->kg_triples));
  const int d = config.propagation.dim;
  model->user_table_ = model->store_.Create(
      "kgcn.users", dataset->num_users, d, Init::kNormal01, &model->init_rng_);
  model->entity_table_ = model->store_.Create(
      "kgcn.entities", dataset->num_entities, d, Init::kNormal01,
      &model->init_rng_);
  model->propagation_.emplace(&model->item_kg_, model->entity_table_,
                              &model->store_, config.propagation,
                              &model->init_rng_);
  model->optimizer_ = std::make_unique<Adam>(config.base.learning_rate);
  return model;
}

std::string KgcnGroupRecommender::name() const {
  return std::string("KGCN+") + AggregationName(aggregation_);
}

Var KgcnGroupRecommender::ScorePairOnTape(Tape* tape, UserId u, ItemId v,
                                          Rng* rng) {
  Var user = tape->Gather(user_table_, {static_cast<size_t>(u)});
  SampledTree tree =
      propagation_->SampleTree(dataset_->item_to_entity[v], rng);
  Var item_rep = propagation_->PropagateOnTape(tape, tree, user);
  return tape->DotAll(user, item_rep);
}

double KgcnGroupRecommender::TrainEpoch(Rng* rng) {
  cache_valid_ = false;
  batcher_.BeginEpoch(rng);
  MiniBatch batch;
  double total = 0.0;
  size_t num_batches = 0;
  Tape tape;
  while (batcher_.NextBatch(rng, &batch)) {
    double batch_loss = 0.0;
    const double group_scale =
        batch.group_triplets.empty()
            ? 0.0
            : config_.base.beta /
                  static_cast<double>(batch.group_triplets.size());
    const double user_scale =
        batch.user_instances.empty()
            ? 0.0
            : (1.0 - config_.base.beta) /
                  static_cast<double>(batch.user_instances.size());

    for (const GroupTriplet& t : batch.group_triplets) {
      tape.Clear();
      const auto members = dataset_->groups.MembersOf(t.group);
      auto group_score = [&](ItemId v) {
        std::vector<Var> scores;
        scores.reserve(members.size());
        for (UserId u : members) {
          scores.push_back(ScorePairOnTape(&tape, u, v, rng));
        }
        return AggregateScoresOnTape(&tape, tape.ConcatRows(scores),
                                     aggregation_);
      };
      Var pos = group_score(t.positive);
      Var neg = group_score(t.negative);
      Var loss = config_.base.group_loss == GroupLossKind::kMargin
                     ? MarginPairLoss(&tape, pos, neg, config_.base.margin)
                     : BprPairLoss(&tape, pos, neg);
      Var scaled = tape.ScalarMul(loss, group_scale);
      tape.Backward(scaled);
      batch_loss += tape.value(scaled).item();
    }
    for (const UserInstance& ui : batch.user_instances) {
      tape.Clear();
      Var logit = ScorePairOnTape(&tape, ui.user, ui.item, rng);
      Var scaled =
          tape.ScalarMul(LogisticLoss(&tape, logit, ui.label), user_scale);
      tape.Backward(scaled);
      batch_loss += tape.value(scaled).item();
    }
    optimizer_->Step(&store_, config_.base.l2);
    total += batch_loss;
    ++num_batches;
  }
  return num_batches == 0 ? 0.0 : total / num_batches;
}

void KgcnGroupRecommender::Fit() {
  ValidationSelector selector(dataset_, &store_);
  for (int epoch = 0; epoch < config_.base.epochs; ++epoch) {
    const double loss = TrainEpoch(&train_rng_);
    epoch_losses_.push_back(loss);
    if (config_.base.select_by_validation) {
      cache_valid_ = false;  // scores depend on the updated weights
      selector.Observe(this);
    }
    if (config_.base.verbose) {
      KGAG_LOG(Info) << name() << " epoch " << epoch + 1 << " loss=" << loss;
    }
  }
  if (config_.base.select_by_validation) {
    selector.RestoreBest();
    cache_valid_ = false;
  }
}

const std::vector<SampledTree>& KgcnGroupRecommender::EvalTrees(
    EntityId item_entity) {
  auto it = eval_trees_.find(item_entity);
  if (it == eval_trees_.end()) {
    // Per-node seed: order-independent eval trees (see KgagModel).
    Rng node_rng(config_.base.seed * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(item_entity) * 0x2545f4914f6cdd1dULL +
                 2);
    std::vector<SampledTree> trees;
    trees.reserve(config_.eval_tree_samples);
    for (int s = 0; s < config_.eval_tree_samples; ++s) {
      trees.push_back(propagation_->SampleTree(item_entity, &node_rng));
    }
    it = eval_trees_.emplace(item_entity, std::move(trees)).first;
  }
  return it->second;
}

const std::vector<double>& KgcnGroupRecommender::AllUserScores(ItemId v) {
  if (!cache_valid_) {
    score_cache_.clear();
    cache_valid_ = true;
  }
  auto it = score_cache_.find(v);
  if (it != score_cache_.end()) return it->second;

  // One batched propagation with every user embedding as a query,
  // averaged over the eval receptive-field samples.
  const Tensor& queries = user_table_->value;  // (m x d)
  const std::vector<SampledTree>& trees =
      EvalTrees(dataset_->item_to_entity[v]);
  Tensor reps = propagation_->PropagateBatch(trees[0], queries);
  for (size_t s = 1; s < trees.size(); ++s) {
    reps.Add(propagation_->PropagateBatch(trees[s], queries));
  }
  reps.Scale(1.0 / static_cast<double>(trees.size()));
  std::vector<double> scores(static_cast<size_t>(dataset_->num_users));
  for (size_t u = 0; u < scores.size(); ++u) {
    Scalar s = 0;
    for (size_t c = 0; c < reps.cols(); ++c) {
      s += queries.at(u, c) * reps.at(u, c);
    }
    scores[u] = s;
  }
  return score_cache_.emplace(v, std::move(scores)).first->second;
}

std::vector<double> KgcnGroupRecommender::ScoreGroup(
    GroupId g, std::span<const ItemId> items) {
  const auto members = dataset_->groups.MembersOf(g);
  std::vector<double> out(items.size());
  std::vector<double> member_scores(members.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const std::vector<double>& all = AllUserScores(items[i]);
    for (size_t m = 0; m < members.size(); ++m) {
      member_scores[m] = all[static_cast<size_t>(members[m])];
    }
    out[i] = AggregateScores(member_scores, aggregation_);
  }
  return out;
}

std::vector<double> KgcnGroupRecommender::ScoreUser(
    UserId u, std::span<const ItemId> items) {
  std::vector<double> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = AllUserScores(items[i])[static_cast<size_t>(u)];
  }
  return out;
}

}  // namespace kgag
