#include "baselines/mosan.h"

#include <cmath>

#include "common/logging.h"
#include "models/losses.h"
#include "models/validation.h"

namespace kgag {

MosanGroupRecommender::MosanGroupRecommender(const GroupRecDataset* dataset,
                                             MfConfig config)
    : dataset_(dataset),
      config_(config),
      init_rng_(config.seed),
      batcher_(dataset,
               Batcher::Options{config.batch_size, config.user_ratio,
                                config.pairs_per_epoch}),
      train_rng_(config.seed + 1) {
  KGAG_CHECK(dataset != nullptr);
  const int d = config_.dim;
  target_table_ = store_.Create("mosan.target", dataset->num_users, d,
                                Init::kNormal01, &init_rng_);
  context_table_ = store_.Create("mosan.context", dataset->num_users, d,
                                 Init::kNormal01, &init_rng_);
  item_table_ = store_.Create("mosan.items", dataset->num_items, d,
                              Init::kNormal01, &init_rng_);
  w_member_ = store_.Create("mosan.Wm", 2 * d, d, Init::kXavierUniform,
                            &init_rng_);
  b_member_ = store_.CreateZeros("mosan.bm", 1, d);
  w_att_ = store_.Create("mosan.watt", d, 1, Init::kXavierUniform,
                         &init_rng_);
  optimizer_ = std::make_unique<Adam>(config_.learning_rate);
}

Var MosanGroupRecommender::GroupRepOnTape(Tape* tape, GroupId g) {
  const auto members = dataset_->groups.MembersOf(g);
  const size_t l = members.size();
  std::vector<size_t> ids(members.begin(), members.end());
  Var targets = tape->Gather(target_table_, ids);   // (L x d)
  Var contexts = tape->Gather(context_table_, ids); // (L x d)
  Var wm = tape->Leaf(w_member_);
  Var bm = tape->Leaf(b_member_);
  Var watt = tape->Leaf(w_att_);

  std::vector<Var> member_vecs;
  member_vecs.reserve(l);
  for (size_t i = 0; i < l; ++i) {
    Var t_i = tape->SliceRow(targets, i);
    Var ctx;
    if (l > 1) {
      // Sub-attention of member i over peers: γ_ij = softmax_j(t_i · c_j).
      std::vector<Var> peer_rows;
      peer_rows.reserve(l - 1);
      for (size_t j = 0; j < l; ++j) {
        if (j != i) peer_rows.push_back(tape->SliceRow(contexts, j));
      }
      Var peers = tape->ConcatRows(peer_rows);  // (L-1 x d)
      Var scores = tape->RowDot(peers, tape->RepeatRows(t_i, l - 1));
      Var gamma = tape->SoftmaxRows(tape->Reshape(scores, 1, l - 1));
      ctx = tape->MatMul(gamma, peers);  // (1 x d)
    } else {
      ctx = tape->SliceRow(contexts, 0);
    }
    Var pre = tape->MatMul(tape->ConcatCols({t_i, ctx}), wm);
    member_vecs.push_back(tape->Relu(tape->AddRowBroadcast(pre, bm)));
  }
  Var m = tape->ConcatRows(member_vecs);  // (L x d)
  // Member-level attention a_i = softmax(w_att · m_i).
  Var a = tape->SoftmaxRows(tape->Reshape(tape->MatMul(m, watt), 1, l));
  return tape->MatMul(a, m);  // (1 x d)
}

Tensor MosanGroupRecommender::GroupRep(GroupId g) const {
  const auto members = dataset_->groups.MembersOf(g);
  const size_t l = members.size();
  const size_t d = static_cast<size_t>(config_.dim);

  Tensor m(l, d);
  for (size_t i = 0; i < l; ++i) {
    Tensor t_i = target_table_->value.RowAt(static_cast<size_t>(members[i]));
    Tensor ctx(1, d);
    if (l > 1) {
      std::vector<double> scores;
      scores.reserve(l - 1);
      double mx = -1e300;
      std::vector<Tensor> peers;
      for (size_t j = 0; j < l; ++j) {
        if (j == i) continue;
        peers.push_back(
            context_table_->value.RowAt(static_cast<size_t>(members[j])));
        scores.push_back(Dot(t_i, peers.back()));
        mx = std::max(mx, scores.back());
      }
      double sum = 0;
      for (double& s : scores) {
        s = std::exp(s - mx);
        sum += s;
      }
      for (size_t j = 0; j < peers.size(); ++j) {
        ctx.Axpy(scores[j] / sum, peers[j]);
      }
    } else {
      ctx = context_table_->value.RowAt(static_cast<size_t>(members[0]));
    }
    Tensor cat(1, 2 * d);
    for (size_t c = 0; c < d; ++c) {
      cat.at(0, c) = t_i.at(0, c);
      cat.at(0, d + c) = ctx.at(0, c);
    }
    Tensor vec = MatMul(cat, w_member_->value);
    vec.Add(b_member_->value);
    vec.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
    m.SetRow(i, vec);
  }
  // Member attention.
  Tensor raw = MatMul(m, w_att_->value);  // (L x 1)
  double mx = raw.at(0, 0);
  for (size_t i = 1; i < l; ++i) mx = std::max(mx, raw.at(i, 0));
  double sum = 0;
  for (size_t i = 0; i < l; ++i) {
    raw.at(i, 0) = std::exp(raw.at(i, 0) - mx);
    sum += raw.at(i, 0);
  }
  Tensor g_rep(1, d);
  for (size_t i = 0; i < l; ++i) {
    g_rep.Axpy(raw.at(i, 0) / sum, m.RowAt(i));
  }
  return g_rep;
}

double MosanGroupRecommender::TrainEpoch(Rng* rng) {
  batcher_.BeginEpoch(rng);
  MiniBatch batch;
  double total = 0.0;
  size_t num_batches = 0;
  Tape tape;
  while (batcher_.NextBatch(rng, &batch)) {
    double batch_loss = 0.0;
    const double group_scale =
        batch.group_triplets.empty()
            ? 0.0
            : config_.beta / static_cast<double>(batch.group_triplets.size());
    const double user_scale =
        batch.user_instances.empty()
            ? 0.0
            : (1.0 - config_.beta) /
                  static_cast<double>(batch.user_instances.size());

    for (const GroupTriplet& t : batch.group_triplets) {
      tape.Clear();
      Var g_rep = GroupRepOnTape(&tape, t.group);
      Var q_pos =
          tape.Gather(item_table_, {static_cast<size_t>(t.positive)});
      Var q_neg =
          tape.Gather(item_table_, {static_cast<size_t>(t.negative)});
      Var pos = tape.DotAll(g_rep, q_pos);
      Var neg = tape.DotAll(g_rep, q_neg);
      Var loss = config_.group_loss == GroupLossKind::kMargin
                     ? MarginPairLoss(&tape, pos, neg, config_.margin)
                     : BprPairLoss(&tape, pos, neg);
      Var scaled = tape.ScalarMul(loss, group_scale);
      tape.Backward(scaled);
      batch_loss += tape.value(scaled).item();
    }
    for (const UserInstance& ui : batch.user_instances) {
      tape.Clear();
      Var u = tape.Gather(target_table_, {static_cast<size_t>(ui.user)});
      Var v = tape.Gather(item_table_, {static_cast<size_t>(ui.item)});
      Var logit = tape.DotAll(u, v);
      Var scaled =
          tape.ScalarMul(LogisticLoss(&tape, logit, ui.label), user_scale);
      tape.Backward(scaled);
      batch_loss += tape.value(scaled).item();
    }
    optimizer_->Step(&store_, config_.l2);
    total += batch_loss;
    ++num_batches;
  }
  return num_batches == 0 ? 0.0 : total / num_batches;
}

void MosanGroupRecommender::Fit() {
  ValidationSelector selector(dataset_, &store_);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double loss = TrainEpoch(&train_rng_);
    epoch_losses_.push_back(loss);
    if (config_.select_by_validation) selector.Observe(this);
    if (config_.verbose) {
      KGAG_LOG(Info) << name() << " epoch " << epoch + 1 << " loss=" << loss;
    }
  }
  if (config_.select_by_validation) selector.RestoreBest();
}

std::vector<double> MosanGroupRecommender::ScoreGroup(
    GroupId g, std::span<const ItemId> items) {
  const Tensor g_rep = GroupRep(g);
  std::vector<double> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] =
        Dot(g_rep, item_table_->value.RowAt(static_cast<size_t>(items[i])));
  }
  return out;
}

}  // namespace kgag
