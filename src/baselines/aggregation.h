// Predefined score-aggregation strategies used by the memory-based
// baselines of Table II: average satisfaction (AVG), least misery (LM) and
// maximum pleasure (MP) over member prediction scores.
#ifndef KGAG_BASELINES_AGGREGATION_H_
#define KGAG_BASELINES_AGGREGATION_H_

#include <algorithm>
#include <numeric>
#include <span>
#include <string>

#include "common/check.h"
#include "tensor/tape.h"

namespace kgag {

/// \brief The three classic aggregation strategies.
enum class ScoreAggregation {
  kAverage,      ///< mean member score (average satisfaction [4])
  kLeastMisery,  ///< min member score (least misery [5])
  kMaxPleasure,  ///< max member score (maximum pleasure [4])
};

inline const char* AggregationName(ScoreAggregation agg) {
  switch (agg) {
    case ScoreAggregation::kAverage:
      return "AVG";
    case ScoreAggregation::kLeastMisery:
      return "LM";
    case ScoreAggregation::kMaxPleasure:
      return "MP";
  }
  return "?";
}

/// Aggregates member scores into a group score.
inline double AggregateScores(std::span<const double> scores,
                              ScoreAggregation agg) {
  KGAG_CHECK(!scores.empty());
  switch (agg) {
    case ScoreAggregation::kAverage:
      return std::accumulate(scores.begin(), scores.end(), 0.0) /
             static_cast<double>(scores.size());
    case ScoreAggregation::kLeastMisery:
      return *std::min_element(scores.begin(), scores.end());
    case ScoreAggregation::kMaxPleasure:
      return *std::max_element(scores.begin(), scores.end());
  }
  return 0.0;
}

/// Differentiable aggregation of an (L x 1) member-score node. Min/max
/// route the gradient to the arg extremum (subgradient).
inline Var AggregateScoresOnTape(Tape* tape, Var member_scores,
                                 ScoreAggregation agg) {
  switch (agg) {
    case ScoreAggregation::kAverage:
      return tape->Mean(member_scores);
    case ScoreAggregation::kLeastMisery:
      return tape->MinAll(member_scores);
    case ScoreAggregation::kMaxPleasure:
      return tape->MaxAll(member_scores);
  }
  return tape->Mean(member_scores);
}

}  // namespace kgag

#endif  // KGAG_BASELINES_AGGREGATION_H_
