#include "kg/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace kgag {

DegreeStats ComputeDegreeStats(const KnowledgeGraph& graph) {
  DegreeStats stats;
  const int32_t n = graph.num_entities();
  if (n == 0) return stats;
  std::vector<size_t> degrees(static_cast<size_t>(n));
  size_t total = 0;
  stats.min = SIZE_MAX;
  for (int32_t e = 0; e < n; ++e) {
    const size_t d = graph.Degree(e);
    degrees[static_cast<size_t>(e)] = d;
    total += d;
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    if (d == 0) ++stats.isolated;
  }
  stats.mean = static_cast<double>(total) / n;
  std::sort(degrees.begin(), degrees.end());
  auto quantile = [&](double q) {
    const size_t idx = std::min(
        degrees.size() - 1, static_cast<size_t>(q * (degrees.size() - 1)));
    return degrees[idx];
  };
  stats.p50 = quantile(0.5);
  stats.p90 = quantile(0.9);
  stats.p99 = quantile(0.99);
  return stats;
}

std::vector<size_t> RelationUsage(const KnowledgeGraph& graph) {
  std::vector<size_t> counts(
      static_cast<size_t>(graph.relation_vocab_size()), 0);
  for (int32_t e = 0; e < graph.num_entities(); ++e) {
    for (const Edge& edge : graph.Neighbors(e)) {
      ++counts[static_cast<size_t>(edge.relation)];
    }
  }
  return counts;
}

UserProximityStats EstimateUserProximity(const CollaborativeKg& ckg,
                                         int max_depth, size_t num_pairs,
                                         Rng* rng) {
  UserProximityStats stats;
  if (ckg.num_users < 2) return stats;
  double total_distance = 0.0;
  size_t reachable = 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    const int32_t a =
        static_cast<int32_t>(rng->UniformInt(0, ckg.num_users - 1));
    int32_t b = a;
    while (b == a) {
      b = static_cast<int32_t>(rng->UniformInt(0, ckg.num_users - 1));
    }
    const int d =
        ckg.graph.BfsDistance(ckg.UserNode(a), ckg.UserNode(b), max_depth);
    if (d >= 0) {
      total_distance += d;
      ++reachable;
    }
  }
  stats.pairs_sampled = num_pairs;
  stats.unreachable_fraction =
      1.0 - static_cast<double>(reachable) / static_cast<double>(num_pairs);
  stats.mean_distance =
      reachable == 0 ? 0.0 : total_distance / static_cast<double>(reachable);
  return stats;
}

std::string DescribeGraph(const KnowledgeGraph& graph) {
  const DegreeStats deg = ComputeDegreeStats(graph);
  std::ostringstream os;
  os << graph.num_entities() << " entities, " << graph.num_relations()
     << " relations, " << graph.num_triples() << " triples ("
     << graph.num_edges() << " directed edges); degree mean " << deg.mean
     << " p50 " << deg.p50 << " p99 " << deg.p99 << ", " << deg.isolated
     << " isolated";
  return os.str();
}

}  // namespace kgag
