#include "kg/knowledge_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace kgag {

Result<KnowledgeGraph> KnowledgeGraph::Build(int32_t num_entities,
                                             int32_t num_relations,
                                             const std::vector<Triple>& triples,
                                             Options options) {
  if (num_entities < 0 || num_relations < 0) {
    return Status::InvalidArgument("negative entity/relation count");
  }
  for (const Triple& t : triples) {
    if (t.head < 0 || t.head >= num_entities || t.tail < 0 ||
        t.tail >= num_entities) {
      return Status::OutOfRange("triple entity id out of range");
    }
    if (t.relation < 0 || t.relation >= num_relations) {
      return Status::OutOfRange("triple relation id out of range");
    }
  }

  KnowledgeGraph g;
  g.num_entities_ = num_entities;
  g.num_relations_ = num_relations;
  g.has_inverse_ = options.add_inverse_edges;
  g.num_triples_ = triples.size();

  // Counting sort into CSR.
  std::vector<size_t> degree(static_cast<size_t>(num_entities) + 1, 0);
  for (const Triple& t : triples) {
    ++degree[t.head];
    if (options.add_inverse_edges) ++degree[t.tail];
  }
  g.offsets_.assign(static_cast<size_t>(num_entities) + 1, 0);
  for (int32_t e = 0; e < num_entities; ++e) {
    g.offsets_[e + 1] = g.offsets_[e] + degree[e];
  }
  g.edges_.resize(g.offsets_[num_entities]);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Triple& t : triples) {
    g.edges_[cursor[t.head]++] = Edge{t.tail, t.relation};
    if (options.add_inverse_edges) {
      g.edges_[cursor[t.tail]++] =
          Edge{t.head, static_cast<RelationId>(t.relation + num_relations)};
    }
  }
  // Sort each adjacency list for deterministic iteration and binary search.
  for (int32_t e = 0; e < num_entities; ++e) {
    std::sort(g.edges_.begin() + g.offsets_[e],
              g.edges_.begin() + g.offsets_[e + 1],
              [](const Edge& a, const Edge& b) {
                return a.neighbor != b.neighbor ? a.neighbor < b.neighbor
                                                : a.relation < b.relation;
              });
  }
  return g;
}

bool KnowledgeGraph::HasEdge(EntityId e, RelationId r, EntityId t) const {
  for (const Edge& edge : Neighbors(e)) {
    if (edge.neighbor == t && edge.relation == r) return true;
    if (edge.neighbor > t) break;  // sorted by neighbor
  }
  return false;
}

int KnowledgeGraph::BfsDistance(EntityId from, EntityId to,
                                int max_depth) const {
  if (from == to) return 0;
  std::unordered_map<EntityId, int> dist;
  dist[from] = 0;
  std::deque<EntityId> queue{from};
  while (!queue.empty()) {
    EntityId cur = queue.front();
    queue.pop_front();
    const int d = dist[cur];
    if (d >= max_depth) continue;
    for (const Edge& edge : Neighbors(cur)) {
      if (dist.count(edge.neighbor)) continue;
      if (edge.neighbor == to) return d + 1;
      dist[edge.neighbor] = d + 1;
      queue.push_back(edge.neighbor);
    }
  }
  return -1;
}

std::vector<EntityId> KnowledgeGraph::Neighborhood(EntityId from,
                                                   int depth) const {
  std::unordered_map<EntityId, int> dist;
  dist[from] = 0;
  std::deque<EntityId> queue{from};
  std::vector<EntityId> out{from};
  while (!queue.empty()) {
    EntityId cur = queue.front();
    queue.pop_front();
    const int d = dist[cur];
    if (d >= depth) continue;
    for (const Edge& edge : Neighbors(cur)) {
      if (dist.count(edge.neighbor)) continue;
      dist[edge.neighbor] = d + 1;
      out.push_back(edge.neighbor);
      queue.push_back(edge.neighbor);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kgag
