// Collaborative knowledge graph (§III-A): the item knowledge graph plus
// user nodes connected by an `Interact` relation to the entities of the
// items they engaged with — E' = E ∪ U, R' = R ∪ {Interact}.
#ifndef KGAG_KG_COLLABORATIVE_KG_H_
#define KGAG_KG_COLLABORATIVE_KG_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "kg/knowledge_graph.h"

namespace kgag {

/// \brief The merged graph and the id arithmetic around it.
///
/// Node layout: base entities keep their ids [0, E); user u becomes node
/// E + u. The Interact relation gets the first id after the base
/// relations.
struct CollaborativeKg {
  KnowledgeGraph graph;
  int32_t num_base_entities = 0;
  int32_t num_users = 0;
  RelationId interact_relation = kInvalidRelation;
  /// f: item id -> entity node id.
  std::vector<EntityId> item_to_entity;

  EntityId UserNode(int32_t user) const {
    KGAG_DCHECK(user >= 0 && user < num_users);
    return num_base_entities + user;
  }
  EntityId ItemEntity(int32_t item) const {
    KGAG_DCHECK(item >= 0 &&
                item < static_cast<int32_t>(item_to_entity.size()));
    return item_to_entity[item];
  }
  bool IsUserNode(EntityId e) const { return e >= num_base_entities; }
  int32_t NodeToUser(EntityId e) const {
    KGAG_DCHECK(IsUserNode(e));
    return e - num_base_entities;
  }
};

/// Builds the collaborative KG.
///
/// \param kg_triples facts of the item knowledge graph
/// \param num_entities entity count of the item KG (E)
/// \param num_relations relation count of the item KG (R)
/// \param num_users number of users to add as nodes
/// \param item_to_entity mapping f from item id to entity id (injective)
/// \param user_item_interactions observed (user, item) pairs; each becomes
///        a (user_node, Interact, f(item)) fact
Result<CollaborativeKg> BuildCollaborativeKg(
    const std::vector<Triple>& kg_triples, int32_t num_entities,
    int32_t num_relations, int32_t num_users,
    const std::vector<EntityId>& item_to_entity,
    const std::vector<std::pair<int32_t, int32_t>>& user_item_interactions);

}  // namespace kgag

#endif  // KGAG_KG_COLLABORATIVE_KG_H_
