// Immutable knowledge graph in CSR (compressed sparse row) layout.
//
// Built once from a triple list, then queried by the neighbor sampler and
// the propagation engine. Edges are stored bidirectionally by default:
// for a fact (h, r, t) the graph holds h -(r)-> t and t -(r + R)-> h where
// R is the number of forward relations, so information can propagate
// against edge direction with a distinct (trainable) inverse relation
// embedding — the construction used by KGAT/KGCN-style models.
#ifndef KGAG_KG_KNOWLEDGE_GRAPH_H_
#define KGAG_KG_KNOWLEDGE_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kg/triple.h"

namespace kgag {

/// \brief Construction options for KnowledgeGraph::Build.
struct KnowledgeGraphOptions {
  /// Adds t -(r+R)-> h for every fact; doubles the relation vocabulary.
  bool add_inverse_edges = true;
};

/// \brief CSR adjacency over entities with relation-typed edges.
class KnowledgeGraph {
 public:
  using Options = KnowledgeGraphOptions;

  /// An empty graph; Build() is the real constructor.
  KnowledgeGraph() = default;

  /// Validates ids and builds the CSR index.
  ///
  /// \param num_entities entity ids must lie in [0, num_entities)
  /// \param num_relations forward relation ids must lie in [0, num_relations)
  static Result<KnowledgeGraph> Build(int32_t num_entities,
                                      int32_t num_relations,
                                      const std::vector<Triple>& triples,
                                      Options options = {});

  int32_t num_entities() const { return num_entities_; }
  /// Forward relations only (as given to Build).
  int32_t num_relations() const { return num_relations_; }
  /// Size of the relation vocabulary including inverses if enabled.
  int32_t relation_vocab_size() const {
    return has_inverse_ ? 2 * num_relations_ : num_relations_;
  }
  /// Number of forward facts.
  size_t num_triples() const { return num_triples_; }
  /// Number of stored directed edges (2x triples with inverses).
  size_t num_edges() const { return edges_.size(); }

  /// Outgoing edges of entity e.
  std::span<const Edge> Neighbors(EntityId e) const {
    KGAG_DCHECK(e >= 0 && e < num_entities_);
    return std::span<const Edge>(edges_.data() + offsets_[e],
                                 offsets_[e + 1] - offsets_[e]);
  }

  size_t Degree(EntityId e) const {
    KGAG_DCHECK(e >= 0 && e < num_entities_);
    return offsets_[e + 1] - offsets_[e];
  }

  /// True if e has an edge to t labelled r.
  bool HasEdge(EntityId e, RelationId r, EntityId t) const;

  /// Breadth-first hop distance from `from` to `to`, or -1 if unreachable
  /// within max_depth. Used for connectivity analysis and tests.
  int BfsDistance(EntityId from, EntityId to, int max_depth) const;

  /// All entities within `depth` hops of `from` (including itself).
  std::vector<EntityId> Neighborhood(EntityId from, int depth) const;

  /// Mean degree over all entities.
  double MeanDegree() const {
    return num_entities_ == 0
               ? 0.0
               : static_cast<double>(edges_.size()) / num_entities_;
  }

 private:
  int32_t num_entities_ = 0;
  int32_t num_relations_ = 0;
  bool has_inverse_ = false;
  size_t num_triples_ = 0;
  std::vector<size_t> offsets_;  // size num_entities_ + 1
  std::vector<Edge> edges_;
};

}  // namespace kgag

#endif  // KGAG_KG_KNOWLEDGE_GRAPH_H_
