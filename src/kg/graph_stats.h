// Structural diagnostics over (collaborative) knowledge graphs: degree
// distributions, relation usage and user-user proximity — the statistics
// behind the paper's §IV-E explanations ("members in Yelp are more
// centralized", "high-order connectivities between users").
#ifndef KGAG_KG_GRAPH_STATS_H_
#define KGAG_KG_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "kg/collaborative_kg.h"
#include "kg/knowledge_graph.h"

namespace kgag {

/// \brief Degree distribution summary.
struct DegreeStats {
  double mean = 0.0;
  size_t min = 0;
  size_t max = 0;
  size_t isolated = 0;  ///< nodes with no edges
  /// Degree quantiles at 50/90/99%.
  size_t p50 = 0, p90 = 0, p99 = 0;
};

DegreeStats ComputeDegreeStats(const KnowledgeGraph& graph);

/// Count of stored directed edges per relation id (vocab-size entries,
/// inverses included when present).
std::vector<size_t> RelationUsage(const KnowledgeGraph& graph);

/// \brief Distribution of pairwise hop distances between user nodes in a
/// collaborative KG, estimated on sampled pairs.
struct UserProximityStats {
  double mean_distance = 0.0;       ///< over reachable sampled pairs
  double unreachable_fraction = 0.0;
  size_t pairs_sampled = 0;
};

/// \param max_depth distances above this count as unreachable
/// \param num_pairs sampled user pairs
UserProximityStats EstimateUserProximity(const CollaborativeKg& ckg,
                                         int max_depth, size_t num_pairs,
                                         Rng* rng);

/// One-line human-readable summary of a graph.
std::string DescribeGraph(const KnowledgeGraph& graph);

}  // namespace kgag

#endif  // KGAG_KG_GRAPH_STATS_H_
