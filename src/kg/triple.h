// Basic vocabulary types for the knowledge graph substrate.
#ifndef KGAG_KG_TRIPLE_H_
#define KGAG_KG_TRIPLE_H_

#include <cstdint>
#include <functional>

namespace kgag {

/// Node identifier in a (collaborative) knowledge graph.
using EntityId = int32_t;
/// Relation identifier. Inverse relations occupy ids [R, 2R) when a graph
/// is built with inverse edges (the default).
using RelationId = int32_t;

constexpr EntityId kInvalidEntity = -1;
constexpr RelationId kInvalidRelation = -1;

/// \brief One fact (h, r, t): head entity, relation, tail entity.
struct Triple {
  EntityId head = kInvalidEntity;
  RelationId relation = kInvalidRelation;
  EntityId tail = kInvalidEntity;

  bool operator==(const Triple& o) const {
    return head == o.head && relation == o.relation && tail == o.tail;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t h = std::hash<int64_t>()(
        (static_cast<int64_t>(t.head) << 32) ^ static_cast<int64_t>(t.tail));
    return h ^ (std::hash<int32_t>()(t.relation) * 0x9e3779b97f4a7c15ULL);
  }
};

/// \brief Outgoing edge as stored in adjacency: the neighbor and the
/// relation that connects to it.
struct Edge {
  EntityId neighbor = kInvalidEntity;
  RelationId relation = kInvalidRelation;

  bool operator==(const Edge& o) const {
    return neighbor == o.neighbor && relation == o.relation;
  }
};

}  // namespace kgag

#endif  // KGAG_KG_TRIPLE_H_
