// Fixed-size neighborhood sampling (the receptive-field construction used
// by KGCN-style propagation, §III-C2). Each propagation layer looks at
// exactly K sampled neighbors per node, so the depth-H receptive field of
// a node is a K-ary tree with K^h nodes at layer h.
#ifndef KGAG_KG_NEIGHBOR_SAMPLER_H_
#define KGAG_KG_NEIGHBOR_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "kg/knowledge_graph.h"

namespace kgag {

/// \brief Depth-H sampled receptive field rooted at one node.
///
/// entities[0] = {root}; entities[h] has K^h nodes, where
/// entities[h+1][i] is a sampled neighbor of its parent
/// entities[h][i / K], connected by relations[h][i].
/// Nodes with no edges are padded with self-loops labelled
/// `self_loop_relation`.
struct SampledTree {
  std::vector<std::vector<EntityId>> entities;
  std::vector<std::vector<RelationId>> relations;

  int depth() const { return static_cast<int>(relations.size()); }
  EntityId root() const { return entities[0][0]; }
};

/// \brief Samples K-neighbor sets and receptive-field trees from a graph.
class NeighborSampler {
 public:
  /// \param graph must outlive the sampler
  /// \param sample_size K, the fixed neighborhood size per node
  NeighborSampler(const KnowledgeGraph* graph, int sample_size);

  /// Relation id used for self-loop padding; one past the graph's relation
  /// vocabulary, so embedding tables must reserve relation_vocab_size()+1
  /// rows.
  RelationId self_loop_relation() const { return self_loop_relation_; }

  int sample_size() const { return sample_size_; }

  /// Exactly K edges of e: a uniform sample without replacement when
  /// degree >= K, otherwise all edges plus uniform re-draws (with
  /// replacement), matching KGCN's fixed-size receptive field.
  ///
  /// The number of engine draws varies with the node's degree, which is
  /// why training hands each example its own counter-derived Rng (see
  /// EpochStreams): on a shared engine, one node's degree would shift
  /// every later example's randomness and break thread-independence.
  void SampleNeighbors(EntityId e, Rng* rng, std::vector<Edge>* out) const;

  /// Materializes the depth-H receptive field of `root`. Stateless apart
  /// from `rng`: concurrent calls with distinct generators are safe.
  SampledTree SampleTree(EntityId root, int depth, Rng* rng) const;

 private:
  const KnowledgeGraph* graph_;
  int sample_size_;
  RelationId self_loop_relation_;
};

}  // namespace kgag

#endif  // KGAG_KG_NEIGHBOR_SAMPLER_H_
