#include "kg/collaborative_kg.h"

#include <unordered_set>

namespace kgag {

Result<CollaborativeKg> BuildCollaborativeKg(
    const std::vector<Triple>& kg_triples, int32_t num_entities,
    int32_t num_relations, int32_t num_users,
    const std::vector<EntityId>& item_to_entity,
    const std::vector<std::pair<int32_t, int32_t>>& user_item_interactions) {
  if (num_users < 0) {
    return Status::InvalidArgument("negative user count");
  }
  std::unordered_set<EntityId> seen_entities;
  for (EntityId e : item_to_entity) {
    if (e < 0 || e >= num_entities) {
      return Status::OutOfRange("item_to_entity id out of range");
    }
    if (!seen_entities.insert(e).second) {
      return Status::InvalidArgument(
          "item_to_entity must be injective (items with multiple matched "
          "entities are removed upstream, as in the paper)");
    }
  }

  CollaborativeKg ckg;
  ckg.num_base_entities = num_entities;
  ckg.num_users = num_users;
  ckg.interact_relation = num_relations;
  ckg.item_to_entity = item_to_entity;

  std::vector<Triple> all = kg_triples;
  all.reserve(kg_triples.size() + user_item_interactions.size());
  for (const auto& [user, item] : user_item_interactions) {
    if (user < 0 || user >= num_users) {
      return Status::OutOfRange("interaction user id out of range");
    }
    if (item < 0 || item >= static_cast<int32_t>(item_to_entity.size())) {
      return Status::OutOfRange("interaction item id out of range");
    }
    all.push_back(Triple{ckg.UserNode(user), ckg.interact_relation,
                         item_to_entity[item]});
  }

  KGAG_ASSIGN_OR_RETURN(
      ckg.graph,
      KnowledgeGraph::Build(num_entities + num_users, num_relations + 1, all));
  return ckg;
}

}  // namespace kgag
