#include "kg/neighbor_sampler.h"

namespace kgag {

NeighborSampler::NeighborSampler(const KnowledgeGraph* graph, int sample_size)
    : graph_(graph),
      sample_size_(sample_size),
      self_loop_relation_(graph->relation_vocab_size()) {
  KGAG_CHECK(graph != nullptr);
  KGAG_CHECK_GT(sample_size, 0);
}

void NeighborSampler::SampleNeighbors(EntityId e, Rng* rng,
                                      std::vector<Edge>* out) const {
  out->clear();
  out->reserve(sample_size_);
  const auto neighbors = graph_->Neighbors(e);
  const size_t degree = neighbors.size();
  const size_t k = static_cast<size_t>(sample_size_);
  if (degree == 0) {
    out->assign(k, Edge{e, self_loop_relation_});
    return;
  }
  if (degree >= k) {
    std::vector<size_t> idx = rng->SampleWithoutReplacement(degree, k);
    for (size_t i : idx) out->push_back(neighbors[i]);
    return;
  }
  // All edges once, then uniform re-draws to pad to K.
  for (const Edge& edge : neighbors) out->push_back(edge);
  while (out->size() < k) {
    const size_t i = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(degree) - 1));
    out->push_back(neighbors[i]);
  }
}

SampledTree NeighborSampler::SampleTree(EntityId root, int depth,
                                        Rng* rng) const {
  KGAG_CHECK_GE(depth, 0);
  SampledTree tree;
  tree.entities.resize(depth + 1);
  tree.relations.resize(depth);
  tree.entities[0] = {root};
  std::vector<Edge> scratch;
  for (int h = 0; h < depth; ++h) {
    const auto& parents = tree.entities[h];
    auto& children = tree.entities[h + 1];
    auto& rels = tree.relations[h];
    children.reserve(parents.size() * sample_size_);
    rels.reserve(parents.size() * sample_size_);
    for (EntityId parent : parents) {
      SampleNeighbors(parent, rng, &scratch);
      for (const Edge& edge : scratch) {
        children.push_back(edge.neighbor);
        rels.push_back(edge.relation);
      }
    }
  }
  return tree;
}

}  // namespace kgag
