// KGAG: knowledge graph-based attentive group recommendation — the paper's
// primary contribution, wiring together the collaborative KG, the
// information propagation block, the SP/PI preference aggregation block
// and the margin-loss optimization block into one end-to-end trainable
// model.
#ifndef KGAG_MODELS_KGAG_MODEL_H_
#define KGAG_MODELS_KGAG_MODEL_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "kg/collaborative_kg.h"
#include "models/attention.h"
#include "models/config.h"
#include "common/thread_pool.h"
#include "models/propagation.h"
#include "models/recommender.h"
#include "tensor/grad_buffer.h"
#include "tensor/optimizer.h"
#include "tensor/tape.h"

namespace kgag {

class ValidationSelector;

/// \brief Interpretability output for one (group, item) pair (RQ4).
struct GroupExplanation {
  std::vector<UserId> members;
  AttentionBreakdown attention;
  double prediction = 0.0;  ///< σ(⟨g, v⟩)
};

/// \brief The KGAG model. Construct via Create(), then Fit(), then score.
class KgagModel : public TrainableGroupRecommender {
 public:
  /// Builds the collaborative KG and initializes all parameters.
  static Result<std::unique_ptr<KgagModel>> Create(
      const GroupRecDataset* dataset, const KgagConfig& config);

  // TrainableGroupRecommender:
  void Fit() override;
  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override;
  std::string name() const override;

  /// Runs one epoch over the training split; returns the mean batch loss.
  double TrainEpoch(Rng* rng);

  /// One online fine-tuning micro-epoch (DESIGN.md §15): TrainEpoch
  /// driven by the model's own training RNG — the stream Fit advances
  /// and checkpoints restore — so a warm-started run continues the
  /// checkpointed randomness instead of forking a new one.
  double FineTuneEpoch() { return TrainEpoch(&train_rng_); }

  /// Rebuilds the collaborative KG from `interactions` (the updated
  /// (user, item) pair list) and re-derives the batcher orders — the
  /// online-world refresh hook. The node universe must stay fixed: the
  /// dataset's entity/user/relation counts are reused, so the rebuilt
  /// graph has the same node ids and relation vocabulary and the entity
  /// embedding table stays valid row-for-row. New interactions only add
  /// `Interact` edges. Clears the eval-tree cache (receptive fields
  /// sampled on the old graph are stale). The caller must have already
  /// updated the dataset's user_item matrix to match `interactions`.
  Status RefreshInteractions(
      const std::vector<std::pair<int32_t, int32_t>>& interactions);

  /// Captures the full training state — parameters, optimizer moments,
  /// RNG streams, batcher orders/cursors, validation selection and epoch
  /// bookkeeping — for a checkpoint. `selector` may be null (state saved
  /// without the selection snapshot).
  ckpt::TrainingState CaptureTrainingState(
      uint64_t epoch, bool mid_epoch, uint64_t batches_done,
      double partial_loss, const ValidationSelector* selector) const;

  /// Restores a CaptureTrainingState snapshot into this model (and the
  /// selector, when given). The model must have been constructed with the
  /// same dataset and architecture config.
  Status RestoreTrainingState(const ckpt::TrainingState& state,
                              ValidationSelector* selector);

  /// Attention-based explanation for a (group, candidate item) pair.
  GroupExplanation ExplainGroup(GroupId g, ItemId v);

  /// σ(⟨g, v⟩) for a single pair.
  double PredictGroupItem(GroupId g, ItemId v);

  /// Query-independent user representations for serving, one row per
  /// user id: the user's entity propagated with its own zero-order
  /// embedding as the query (KGCN-style offline precomputation; the
  /// online path cannot know the candidate item ahead of the request, so
  /// the query-conditioned eval propagation is approximated by the
  /// self-query — see DESIGN.md §10). Deterministic for a given model
  /// state: eval trees are seeded per node.
  Tensor ServingUserReps();

  /// Same, one row per item id, propagated from the item's entity.
  Tensor ServingItemReps();

  const std::vector<double>& epoch_losses() const { return epoch_losses_; }
  ParameterStore* params() { return &store_; }
  const KgagConfig& config() const { return config_; }
  const CollaborativeKg& ckg() const { return ckg_; }
  const GroupRecDataset* dataset() const { return dataset_; }

 private:
  KgagModel(const GroupRecDataset* dataset, const KgagConfig& config);

  /// TrainEpoch body with checkpoint plumbing: `mgr` (nullable) receives a
  /// mid-epoch snapshot every config_.checkpoint_every_batches batches;
  /// `resume_batches`/`resume_loss` seed the counters when re-entering an
  /// epoch restored mid-flight (the batcher skips its reshuffle then).
  double TrainEpochCheckpointed(Rng* rng, int epoch,
                                ckpt::CheckpointManager* mgr,
                                const ValidationSelector* selector,
                                uint64_t resume_batches, double resume_loss);

  /// Per-shard training context: a reusable tape plus a gradient
  /// accumulation buffer the tape's backward pass writes into. One per
  /// concurrent shard; reused across batches/epochs so tape node storage
  /// and arena capacity stay warm.
  struct ShardContext {
    std::unique_ptr<Tape> tape;
    std::unique_ptr<GradBuffer> grads;
    double loss = 0.0;
  };

  /// Grows shard_contexts_ to n entries (tapes wired to their buffers).
  void EnsureShardContexts(size_t n);

  /// Member reps (L x d) and item rep (1 x d) for one candidate on tape;
  /// returns the 1x1 score node.
  Var ScoreGroupItemOnTape(Tape* tape, GroupId g, ItemId v, Rng* rng);

  /// User-item logit on tape (KGCN-style: item propagated with the user
  /// embedding as query).
  Var ScoreUserItemOnTape(Tape* tape, UserId u, ItemId v, Rng* rng);

  /// Fixed eval-time receptive fields for a node (sampled once, cached).
  /// Several trees are kept and their propagated representations averaged:
  /// training optimizes an expectation over resampled neighborhoods, so a
  /// Monte-Carlo average is the right eval-time estimator.
  const std::vector<SampledTree>& EvalTrees(EntityId node);

  /// Average of PropagateBatch over the node's eval trees.
  Tensor PropagateEval(EntityId node, const Tensor& queries);

  /// Member representations for P candidate queries: (P x d) per member.
  std::vector<Tensor> MemberRepsBatch(GroupId g, const Tensor& queries);

  /// Item representation rows for the given items with the group's query.
  Tensor ItemRepsBatch(GroupId g, std::span<const ItemId> items);

  /// Mean zero-order member embedding of group g (the item-side query).
  Tensor GroupQuery(GroupId g) const;

  const GroupRecDataset* dataset_;
  KgagConfig config_;
  CollaborativeKg ckg_;
  Rng init_rng_;
  ParameterStore store_;
  Parameter* entity_table_ = nullptr;
  std::optional<PropagationEngine> propagation_;
  std::optional<PreferenceAggregator> aggregator_;
  std::unique_ptr<Optimizer> optimizer_;
  Batcher batcher_;
  Rng train_rng_;
  /// Shard contexts indexed by the slot a shard runs in; sized to the
  /// concurrency level (1 when serial). Gradients always flow through
  /// these buffers — also at 1 thread — so the reduction tree is
  /// identical for every train_threads value.
  std::vector<ShardContext> shard_contexts_;
  /// Worker pool for sharded training; created lazily on the first epoch
  /// with config_.train_threads > 1.
  std::unique_ptr<ThreadPool> train_pool_;
  std::unordered_map<EntityId, std::vector<SampledTree>> eval_trees_;
  /// Trees averaged per PropagateEval call; lowered during per-epoch
  /// validation scoring, restored for final evaluation.
  int eval_samples_in_use_ = 0;
  std::vector<double> epoch_losses_;
};

}  // namespace kgag

#endif  // KGAG_MODELS_KGAG_MODEL_H_
