// Hyper-parameters and ablation switches of KGAG (§III, §IV-F/G).
#ifndef KGAG_MODELS_CONFIG_H_
#define KGAG_MODELS_CONFIG_H_

#include <cstdint>
#include <functional>
#include <string>

namespace kgag {

/// \brief Representation-update function of Eq. (5)/(6).
enum class AggregatorKind {
  kGcn,        ///< σ(W(e + e_N) + b)
  kGraphSage,  ///< σ(W concat(e, e_N) + b)
};

/// \brief Group ranking loss of the optimization block.
enum class GroupLossKind {
  kMargin,  ///< Eq. (17): max(σ(ŷ_n) − σ(ŷ_p) + M, 0)
  kBpr,     ///< −log σ(ŷ_p − ŷ_n), the KGAG(BPR) ablation
};

/// \brief Information-propagation block parameters (§III-C).
struct PropagationConfig {
  int depth = 2;        ///< H, number of stacked propagation layers
  int sample_size = 4;  ///< K, fixed sampled neighborhood size
  int dim = 16;         ///< d, representation dimension
  AggregatorKind aggregator = AggregatorKind::kGcn;
  /// Nonlinearity of the last propagation layer: tanh (the KGCN
  /// convention) or identity (unbounded representations; helps when both
  /// sides of the final inner product are propagated, as in KGAG).
  bool final_tanh = true;
};

/// \brief Full KGAG configuration.
struct KgagConfig {
  PropagationConfig propagation;

  // Ablation switches (Table III).
  bool use_kg = true;  ///< false = KGAG-KG: skip the propagation block
  bool use_sp = true;  ///< false = KGAG-SP: drop self-persistence attention
  bool use_pi = true;  ///< false = KGAG-PI: drop peer-influence attention
  GroupLossKind group_loss = GroupLossKind::kMargin;

  // Optimization block (§III-E).
  double margin = 0.4;        ///< M
  double beta = 0.7;          ///< β, weight of the group ranking loss
  double l2 = 1e-5;           ///< λ, L2 regularization
  double learning_rate = 5e-3;
  int epochs = 10;
  size_t batch_size = 32;
  /// Group-item pairs per epoch (0 = the full training split).
  size_t pairs_per_epoch = 0;
  double user_ratio = 1.0;    ///< user-item instances per group triplet
  /// Eval-time Monte-Carlo samples of the receptive field per node
  /// (training resamples per instance; eval averages this many trees).
  int eval_tree_samples = 3;
  /// Keep the weights of the epoch with the best validation hit@5
  /// (the paper's protocol holds out a 20% validation split).
  bool select_by_validation = true;
  /// Receptive-field samples used for the cheap per-epoch validation
  /// scoring (final test evaluation uses eval_tree_samples).
  int valid_tree_samples = 1;
  /// Cap on validation interactions scored per epoch.
  size_t valid_max_interactions = 250;
  uint64_t seed = 42;
  bool verbose = false;

  // Data-parallel training (DESIGN.md §9). Batches are split into fixed
  // example shards processed on per-thread tapes; gradients accumulate
  // into per-shard buffers and reduce in shard order before the single
  // optimizer step. The shard structure — and therefore every floating
  // point summation tree — depends only on train_shard_size, never on
  // train_threads, so results are bit-identical across thread counts.
  int train_threads = 1;        ///< worker threads for TrainEpoch (>=1)
  /// Examples per shard: part of the numeric contract (like batch_size).
  /// Smaller shards = finer load balancing, more reduction overhead.
  size_t train_shard_size = 8;
  /// Arena-backed tape allocation (off = per-node heap allocation; kept
  /// as a benchmark baseline and ASan-friendly fallback).
  bool tape_arena = true;

  // Crash-safe training checkpoints (DESIGN.md §8). With a directory set,
  // Fit() snapshots the full training state (parameters, Adam moments,
  // RNG streams, batcher cursors, validation selection) after every epoch
  // — and also mid-epoch every `checkpoint_every_batches` batches — so a
  // killed run resumes bit-identically.
  std::string checkpoint_dir;        ///< empty = checkpointing off
  int checkpoint_every_batches = 0;  ///< extra mid-epoch cadence (0 = off)
  int checkpoint_keep_last = 3;      ///< retention: newest N snapshots
  /// Resume from the newest intact snapshot in checkpoint_dir before
  /// training (fresh start when the directory holds none).
  bool resume = false;
  /// Test/ops hook invoked after each optimizer step with (epoch,
  /// batches_done); used by the crash-injection tests to kill the process
  /// at a precise point. Leave unset in normal runs.
  std::function<void(int, uint64_t)> after_batch_hook;

  std::string Describe() const;
};

}  // namespace kgag

#endif  // KGAG_MODELS_CONFIG_H_
