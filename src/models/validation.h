// Validation-based model selection: the paper holds out 20% of the
// group-item interactions as a validation set (§IV-B); every trainable
// model here checks validation hit@k after each epoch and restores the
// best-epoch weights when training ends.
#ifndef KGAG_MODELS_VALIDATION_H_
#define KGAG_MODELS_VALIDATION_H_

#include <istream>
#include <ostream>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "eval/ranking_evaluator.h"
#include "tensor/parameter.h"

namespace kgag {

/// \brief Tracks the best validation score and snapshots parameters.
class ValidationSelector {
 public:
  /// \param dataset provides the validation split; must outlive this
  /// \param store parameters to snapshot/restore; must outlive this
  /// \param max_interactions caps the per-epoch validation slice (a
  ///        deterministic subsample) so that epoch-wise selection stays
  ///        cheap on models with expensive scoring.
  ValidationSelector(const GroupRecDataset* dataset, ParameterStore* store,
                     size_t k = 5, size_t max_interactions = 250)
      : dataset_(dataset), store_(store), evaluator_(dataset, k) {
    valid_slice_ = dataset->split.valid;
    if (valid_slice_.size() > max_interactions) {
      Rng rng(0x5eed);  // fixed: the slice must be stable across epochs
      rng.Shuffle(&valid_slice_);
      valid_slice_.resize(max_interactions);
    }
  }

  /// Evaluates the scorer on the (capped) validation slice; snapshots the
  /// current parameter values if this is the best epoch so far. Returns
  /// the validation hit@k.
  double Observe(GroupScorer* scorer) {
    const EvalResult r = evaluator_.Evaluate(scorer, valid_slice_);
    // Tie-break toward later epochs only on strict improvement, so runs
    // are reproducible.
    if (!has_best_ || r.hit_at_k > best_hit_) {
      has_best_ = true;
      best_hit_ = r.hit_at_k;
      snapshot_.clear();
      snapshot_.reserve(store_->size());
      for (const auto& p : store_->params()) snapshot_.push_back(p->value);
    }
    history_.push_back(r.hit_at_k);
    return r.hit_at_k;
  }

  /// Restores the best-epoch weights (no-op if Observe was never called).
  void RestoreBest() {
    if (!has_best_) return;
    for (size_t i = 0; i < store_->size(); ++i) {
      store_->at(i)->value = snapshot_[i];
    }
  }

  double best_hit() const { return best_hit_; }
  const std::vector<double>& history() const { return history_; }

  /// Serializes the selection state (best hit, per-epoch history and the
  /// best-epoch parameter snapshot) so a resumed run restores the same
  /// weights at RestoreBest() as an uninterrupted one.
  Status SaveState(std::ostream* out) const {
    if (out == nullptr) return Status::InvalidArgument("null stream");
    bio::WriteU8(out, has_best_ ? 1 : 0);
    bio::WriteDouble(out, best_hit_);
    bio::WritePodVector(out, history_);
    bio::WriteU64(out, snapshot_.size());
    for (const Tensor& t : snapshot_) {
      bio::WriteU64(out, t.rows());
      bio::WriteU64(out, t.cols());
      out->write(reinterpret_cast<const char*>(t.data()),
                 static_cast<std::streamsize>(t.size() * sizeof(Scalar)));
    }
    if (!out->good()) return Status::IoError("selector state write failed");
    return Status::OK();
  }

  /// Restores a SaveState snapshot; tensor shapes are validated against
  /// the store before any bulk read is trusted.
  Status LoadState(std::istream* in) {
    if (in == nullptr) return Status::InvalidArgument("null stream");
    uint8_t has_best = 0;
    double best_hit = 0.0;
    std::vector<double> history;
    uint64_t count = 0;
    if (!bio::ReadU8(in, &has_best) || !bio::ReadDouble(in, &best_hit) ||
        !bio::ReadPodVector(in, &history) || !bio::ReadU64(in, &count)) {
      return Status::IoError("truncated selector state");
    }
    if (count != 0 && count != store_->size()) {
      return Status::InvalidArgument("selector snapshot count mismatch");
    }
    std::vector<Tensor> snapshot;
    snapshot.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const Parameter* p = store_->params()[i].get();
      uint64_t rows = 0, cols = 0;
      if (!bio::ReadU64(in, &rows) || !bio::ReadU64(in, &cols)) {
        return Status::IoError("truncated selector snapshot shape");
      }
      if (rows != p->value.rows() || cols != p->value.cols()) {
        return Status::InvalidArgument("selector snapshot shape mismatch");
      }
      Tensor t(rows, cols);
      in->read(reinterpret_cast<char*>(t.data()),
               static_cast<std::streamsize>(t.size() * sizeof(Scalar)));
      if (!in->good()) return Status::IoError("truncated selector snapshot");
      snapshot.push_back(std::move(t));
    }
    has_best_ = has_best != 0;
    best_hit_ = best_hit;
    history_ = std::move(history);
    snapshot_ = std::move(snapshot);
    return Status::OK();
  }

 private:
  const GroupRecDataset* dataset_;
  ParameterStore* store_;
  RankingEvaluator evaluator_;
  std::vector<Interaction> valid_slice_;
  bool has_best_ = false;
  double best_hit_ = 0.0;
  std::vector<Tensor> snapshot_;
  std::vector<double> history_;
};

}  // namespace kgag

#endif  // KGAG_MODELS_VALIDATION_H_
