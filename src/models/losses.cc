#include "models/losses.h"

namespace kgag {

Var MarginPairLoss(Tape* tape, Var pos_score, Var neg_score, double margin) {
  Var diff = tape->Sub(tape->Sigmoid(neg_score), tape->Sigmoid(pos_score));
  return tape->Relu(tape->AddScalar(diff, margin));
}

Var BprPairLoss(Tape* tape, Var pos_score, Var neg_score) {
  // −log σ(p − n) = softplus(n − p)
  return tape->Softplus(tape->Sub(neg_score, pos_score));
}

Var LogisticLoss(Tape* tape, Var logit, double label) {
  Var loss = tape->Softplus(logit);
  if (label != 0.0) {
    loss = tape->Sub(loss, tape->ScalarMul(logit, label));
  }
  return loss;
}

}  // namespace kgag
