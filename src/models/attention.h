// Preference aggregation block (§III-D): combines member representations
// into a group representation with a two-part attention —
//   α_SP(g,i,v) = ⟨u_i, v⟩                         (self persistence, Eq. 9)
//   α_PI(g,i)   = v_cᵀ ReLU(W₁u_i + W₂·concat(peers) + b)   (peer influence, Eq. 10)
//   α = softmax(α_SP + α_PI);  g = Σ α̃_i u_i       (Eq. 11–13)
// The concat in PI fixes the group size at construction (the paper's
// datasets have uniform group sizes: 8/5/3).
#ifndef KGAG_MODELS_ATTENTION_H_
#define KGAG_MODELS_ATTENTION_H_

#include <vector>

#include "tensor/parameter.h"
#include "tensor/tape.h"

namespace kgag {

/// \brief Per-member attention values for explanations (Fig. 6 / RQ4).
struct AttentionBreakdown {
  std::vector<double> sp;     ///< α_SP per member (0 if SP disabled)
  std::vector<double> pi;     ///< α_PI per member (0 if PI disabled)
  std::vector<double> alpha;  ///< softmax-normalized overall influence
};

/// \brief Learns member influences and aggregates preferences.
class PreferenceAggregator {
 public:
  /// \param dim representation dimension d
  /// \param group_size fixed member count L (peer concat is d·(L−1) wide)
  /// \param use_sp include the self-persistence term (KGAG-SP ablation)
  /// \param use_pi include the peer-influence term (KGAG-PI ablation)
  PreferenceAggregator(int dim, int group_size, bool use_sp, bool use_pi,
                       ParameterStore* store, Rng* init_rng);

  /// Differentiable aggregation: member_reps (L x d), item_rep (1 x d)
  /// -> group representation (1 x d).
  Var AggregateOnTape(Tape* tape, Var member_reps, Var item_rep) const;

  /// Inference aggregation for P candidate items at once: member_reps[i]
  /// is (P x d) for member i, item_reps is (P x d); returns group reps
  /// (P x d).
  Tensor AggregateBatch(const std::vector<Tensor>& member_reps,
                        const Tensor& item_reps) const;

  /// Attention values for one (group, item): member_reps (L x d),
  /// item_rep (1 x d).
  AttentionBreakdown Explain(const Tensor& member_reps,
                             const Tensor& item_rep) const;

  int group_size() const { return group_size_; }

 private:
  /// Raw (pre-softmax) α_PI for all members; tensor-math path.
  std::vector<double> PeerInfluenceRaw(const Tensor& member_reps) const;

  int dim_;
  int group_size_;
  bool use_sp_;
  bool use_pi_;
  Parameter* w1_ = nullptr;   // (d x d)
  Parameter* w2_ = nullptr;   // (d(L-1) x d)
  Parameter* bias_ = nullptr; // (1 x d)
  Parameter* vc_ = nullptr;   // (d x 1)
};

}  // namespace kgag

#endif  // KGAG_MODELS_ATTENTION_H_
