#include "models/kgag_model.h"

#include <cmath>
#include <sstream>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "models/losses.h"
#include "models/validation.h"
#include "obs/obs.h"
#include "tensor/serialization.h"

namespace kgag {

namespace {
Scalar SigmoidScalar(Scalar x) {
  if (x >= 0) return 1.0 / (1.0 + std::exp(-x));
  const Scalar z = std::exp(x);
  return z / (1.0 + z);
}

// Counter-based RNG stream ids for receptive-field sampling during
// training (negative sampling owns kGroupNegativeStream /
// kUserNegativeStream in data/batcher.h).
constexpr uint64_t kGroupTreeStream = 0xA1;
constexpr uint64_t kUserTreeStream = 0xA2;

// Tag marking the stream-seed record appended to the checkpoint rng blob
// (after the two engine states); ASCII "STREAM01". Its absence marks a
// pre-stream checkpoint, which still restores fine: the seed lives in the
// config, the tag only guards against resuming with a different one.
constexpr uint64_t kRngStreamTag = 0x53545245414d3031ULL;
}  // namespace

std::string KgagConfig::Describe() const {
  std::string s = "KGAG";
  if (!use_kg) s += "-KG";
  if (!use_sp) s += "-SP";
  if (!use_pi) s += "-PI";
  if (group_loss == GroupLossKind::kBpr) s += " (BPR)";
  if (propagation.aggregator == AggregatorKind::kGraphSage) {
    s += " [GraphSage]";
  }
  return s;
}

KgagModel::KgagModel(const GroupRecDataset* dataset, const KgagConfig& config)
    : dataset_(dataset),
      config_(config),
      init_rng_(config.seed),
      batcher_(dataset,
               Batcher::Options{config.batch_size, config.user_ratio,
                                config.pairs_per_epoch}),
      train_rng_(config.seed + 1),
      eval_samples_in_use_(config.eval_tree_samples) {}

Result<std::unique_ptr<KgagModel>> KgagModel::Create(
    const GroupRecDataset* dataset, const KgagConfig& config) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("null dataset");
  }
  auto model =
      std::unique_ptr<KgagModel>(new KgagModel(dataset, config));

  std::vector<std::pair<int32_t, int32_t>> interactions;
  for (const Interaction& it : dataset->user_item.ToPairs()) {
    interactions.emplace_back(it.row, it.item);
  }
  KGAG_ASSIGN_OR_RETURN(
      model->ckg_,
      BuildCollaborativeKg(dataset->kg_triples, dataset->num_entities,
                           dataset->num_relations, dataset->num_users,
                           dataset->item_to_entity, interactions));

  const int d = config.propagation.dim;
  model->entity_table_ = model->store_.Create(
      "entity_emb", model->ckg_.graph.num_entities(), d, Init::kNormal01,
      &model->init_rng_);
  if (config.use_kg) {
    model->propagation_.emplace(&model->ckg_.graph, model->entity_table_,
                                &model->store_, config.propagation,
                                &model->init_rng_);
  }
  model->aggregator_.emplace(d, dataset->group_size, config.use_sp,
                             config.use_pi, &model->store_,
                             &model->init_rng_);
  model->optimizer_ = std::make_unique<Adam>(config.learning_rate);
  return model;
}

std::string KgagModel::name() const { return config_.Describe(); }

Var KgagModel::ScoreGroupItemOnTape(Tape* tape, GroupId g, ItemId v,
                                    Rng* rng) {
  const auto members = dataset_->groups.MembersOf(g);
  const EntityId item_entity = ckg_.ItemEntity(v);

  // Query for member propagation: the candidate item's zero-order
  // embedding (§III-C1: i_e for a group member is the item the group
  // interacts with).
  Var member_query = tape->Gather(
      entity_table_, {static_cast<size_t>(item_entity)});

  std::vector<Var> member_rows;
  member_rows.reserve(members.size());
  std::vector<size_t> member_nodes;
  member_nodes.reserve(members.size());
  for (UserId u : members) {
    member_nodes.push_back(static_cast<size_t>(ckg_.UserNode(u)));
  }
  if (config_.use_kg) {
    for (size_t i = 0; i < members.size(); ++i) {
      SampledTree tree = propagation_->SampleTree(
          static_cast<EntityId>(member_nodes[i]), rng);
      member_rows.push_back(
          propagation_->PropagateOnTape(tape, tree, member_query));
    }
  }
  Var member_reps = config_.use_kg
                        ? tape->ConcatRows(member_rows)
                        : tape->Gather(entity_table_, member_nodes);

  // Query for item propagation: mean zero-order member embedding.
  Var item_query =
      tape->MeanRows(tape->Gather(entity_table_, member_nodes));
  Var item_rep;
  if (config_.use_kg) {
    SampledTree tree = propagation_->SampleTree(item_entity, rng);
    item_rep = propagation_->PropagateOnTape(tape, tree, item_query);
  } else {
    item_rep = tape->Gather(entity_table_,
                            {static_cast<size_t>(item_entity)});
  }

  Var group_rep = aggregator_->AggregateOnTape(tape, member_reps, item_rep);
  return tape->DotAll(group_rep, item_rep);  // Eq. (14)/(15)
}

Var KgagModel::ScoreUserItemOnTape(Tape* tape, UserId u, ItemId v, Rng* rng) {
  // Eq. (19) with knowledge-aware representations on both sides, so the
  // user-item loss trains the same propagated path the group scorer uses:
  // the user is propagated with the item embedding as its interaction
  // object and vice versa.
  const size_t user_node = static_cast<size_t>(ckg_.UserNode(u));
  const size_t item_node = static_cast<size_t>(ckg_.ItemEntity(v));
  Var user_emb = tape->Gather(entity_table_, {user_node});
  Var item_emb = tape->Gather(entity_table_, {item_node});
  if (!config_.use_kg) {
    return tape->DotAll(user_emb, item_emb);
  }
  SampledTree user_tree =
      propagation_->SampleTree(static_cast<EntityId>(user_node), rng);
  Var user_rep = propagation_->PropagateOnTape(tape, user_tree, item_emb);
  SampledTree item_tree = propagation_->SampleTree(ckg_.ItemEntity(v), rng);
  Var item_rep = propagation_->PropagateOnTape(tape, item_tree, user_emb);
  return tape->DotAll(user_rep, item_rep);
}

Status KgagModel::RefreshInteractions(
    const std::vector<std::pair<int32_t, int32_t>>& interactions) {
  KGAG_ASSIGN_OR_RETURN(
      CollaborativeKg next,
      BuildCollaborativeKg(dataset_->kg_triples, dataset_->num_entities,
                           dataset_->num_relations, dataset_->num_users,
                           dataset_->item_to_entity, interactions));
  if (next.graph.num_entities() != ckg_.graph.num_entities()) {
    return Status::InvalidArgument(
        "online refresh must keep the node universe fixed: " +
        std::to_string(ckg_.graph.num_entities()) + " entities before, " +
        std::to_string(next.graph.num_entities()) + " after");
  }
  if (next.graph.relation_vocab_size() != ckg_.graph.relation_vocab_size()) {
    return Status::InvalidArgument(
        "online refresh changed the relation vocabulary");
  }
  // ckg_ is a member object: move-assignment replaces its contents in
  // place, so the &ckg_.graph pointer held by the propagation engine and
  // its sampler stays valid and now sees the refreshed adjacency.
  ckg_ = std::move(next);
  // Receptive fields cached for eval/freeze were sampled on the old
  // adjacency; drop them so the next freeze sees the new edges.
  eval_trees_.clear();
  batcher_.RefreshFromDataset();
  return Status::OK();
}

double KgagModel::TrainEpoch(Rng* rng) {
  return TrainEpochCheckpointed(rng,
                                static_cast<int>(epoch_losses_.size()),
                                /*mgr=*/nullptr, /*selector=*/nullptr,
                                /*resume_batches=*/0, /*resume_loss=*/0.0);
}

void KgagModel::EnsureShardContexts(size_t n) {
  while (shard_contexts_.size() < n) {
    ShardContext ctx;
    ctx.tape = std::make_unique<Tape>(config_.tape_arena);
    ctx.tape->ReserveNodes(512);
    ctx.grads = std::make_unique<GradBuffer>(&store_);
    ctx.tape->set_grad_sink(ctx.grads.get());
    shard_contexts_.push_back(std::move(ctx));
  }
}

double KgagModel::TrainEpochCheckpointed(Rng* rng, int epoch,
                                         ckpt::CheckpointManager* mgr,
                                         const ValidationSelector* selector,
                                         uint64_t resume_batches,
                                         double resume_loss) {
  KGAG_TRACE_SPAN("train.epoch");
  KGAG_OBS_ONLY(Stopwatch epoch_watch; size_t epoch_examples = 0;
                double grad_sq_sum = 0.0;)
  batcher_.BeginEpoch(rng);  // no-op when resuming an epoch mid-flight
  if (config_.train_threads > 1 && train_pool_ == nullptr) {
    train_pool_ =
        std::make_unique<ThreadPool>(static_cast<size_t>(config_.train_threads));
  }
  // All per-example randomness (negatives, receptive-field trees) is
  // addressed by (seed, epoch, stream, example index): any shard can draw
  // example i's stream without touching shared engine state, so batch
  // content and sampled trees are identical for every train_threads value.
  const EpochStreams streams{config_.seed, static_cast<uint64_t>(epoch)};
  const size_t shard_size = std::max<size_t>(1, config_.train_shard_size);
  MiniBatch batch;
  double total_loss = resume_loss;
  size_t num_batches = static_cast<size_t>(resume_batches);
  while (batcher_.NextBatch(streams, &batch)) {
    KGAG_TRACE_SPAN("train.batch");
    double batch_loss = 0.0;
    const size_t n_group = batch.group_triplets.size();
    const size_t n_user = batch.user_instances.size();
    const size_t n_total = n_group + n_user;
    const double group_scale =
        n_group == 0 ? 0.0
                     : config_.beta / static_cast<double>(n_group);
    const double user_scale =
        n_user == 0 ? 0.0
                    : (1.0 - config_.beta) / static_cast<double>(n_user);

    // Fixed shard structure: examples [s*shard_size, (s+1)*shard_size)
    // regardless of thread count. Each shard owns its tape and gradient
    // buffer, so worker scheduling can interleave shards freely; the
    // shard-ordered reduction below rebuilds one fixed FP summation tree.
    const size_t num_shards = (n_total + shard_size - 1) / shard_size;
    EnsureShardContexts(num_shards);
    const auto run_shard = [&](size_t s) {
      KGAG_TRACE_SPAN("train.shard");
      ShardContext& ctx = shard_contexts_[s];
      Tape& tape = *ctx.tape;
      ctx.loss = 0.0;
      const size_t begin = s * shard_size;
      const size_t end = std::min(begin + shard_size, n_total);
      for (size_t e = begin; e < end; ++e) {
        tape.Clear();
        Var scaled;
        if (e < n_group) {
          const GroupTriplet& t = batch.group_triplets[e];
          Rng ex_rng = streams.For(kGroupTreeStream,
                                   batch.group_index_base + e);
          Var pos = ScoreGroupItemOnTape(&tape, t.group, t.positive, &ex_rng);
          Var neg = ScoreGroupItemOnTape(&tape, t.group, t.negative, &ex_rng);
          Var loss = config_.group_loss == GroupLossKind::kMargin
                         ? MarginPairLoss(&tape, pos, neg, config_.margin)
                         : BprPairLoss(&tape, pos, neg);
          scaled = tape.ScalarMul(loss, group_scale);
        } else {
          const size_t j = e - n_group;
          const UserInstance& ui = batch.user_instances[j];
          Rng ex_rng = streams.For(kUserTreeStream,
                                   batch.user_instance_base + j);
          Var logit = ScoreUserItemOnTape(&tape, ui.user, ui.item, &ex_rng);
          Var loss = LogisticLoss(&tape, logit, ui.label);
          scaled = tape.ScalarMul(loss, user_scale);
        }
        {
          KGAG_TRACE_SPAN("train.backward");
          tape.Backward(scaled);
        }
        ctx.loss += tape.value(scaled).item();
      }
    };
    if (train_pool_ != nullptr && num_shards > 1) {
      train_pool_->ParallelFor(num_shards, /*grain=*/1, run_shard);
    } else {
      for (size_t s = 0; s < num_shards; ++s) run_shard(s);
    }
    {
      // Deterministic reduction: shard buffers flush into Parameter::grad
      // in shard order; rows within a buffer flush in first-touch order.
      // Identical no matter which threads ran which shards.
      KGAG_TRACE_SPAN("train.reduce");
      for (size_t s = 0; s < num_shards; ++s) {
        ShardContext& ctx = shard_contexts_[s];
        ctx.grads->FlushInto();
        ctx.grads->Reset();
        batch_loss += ctx.loss;
      }
    }
    KGAG_OBS_ONLY(grad_sq_sum += store_.GradSquaredNorm();
                  epoch_examples += n_total;)
    {
      KGAG_TRACE_SPAN("train.optimizer_step");
      optimizer_->Step(&store_, config_.l2);
    }
    total_loss += batch_loss;
    ++num_batches;
    if (mgr != nullptr && config_.checkpoint_every_batches > 0 &&
        num_batches % static_cast<size_t>(config_.checkpoint_every_batches) ==
            0) {
      KGAG_TRACE_SPAN("train.checkpoint");
      const Status saved = mgr->Save(CaptureTrainingState(
          static_cast<uint64_t>(epoch), /*mid_epoch=*/true, num_batches,
          total_loss, selector));
      if (!saved.ok()) {
        // Training proceeds (durability degraded, correctness intact);
        // the manager already bumped ckpt.save_failures.
        KGAG_LOG(Warning) << "mid-epoch checkpoint failed: "
                          << saved.ToString();
      }
    }
    if (config_.after_batch_hook) {
      config_.after_batch_hook(epoch, num_batches);
    }
  }
  const double mean_loss =
      num_batches == 0 ? 0.0 : total_loss / num_batches;
#if KGAG_OBS_ACTIVE
  // Per-epoch training health, snapshotted to the JSONL sink by Fit().
  // grad_norm is the RMS-over-batches L2 norm of the pre-step gradients.
  const double secs = epoch_watch.ElapsedSeconds();
  KGAG_COUNTER_ADD("train.examples", epoch_examples);
  KGAG_COUNTER_ADD("train.batches", num_batches);
  KGAG_GAUGE_SET("train.loss", mean_loss);
  KGAG_GAUGE_SET("train.grad_norm",
                 num_batches == 0
                     ? 0.0
                     : std::sqrt(grad_sq_sum /
                                 static_cast<double>(num_batches)));
  KGAG_GAUGE_SET("train.examples_per_sec",
                 secs > 0.0 ? static_cast<double>(epoch_examples) / secs
                            : 0.0);
#endif
  return mean_loss;
}

void KgagModel::Fit() {
  KGAG_OBS_ONLY(obs::InstallDefaultInstrumentation();)
  KGAG_TRACE_SPAN("train.fit");
  ValidationSelector selector(dataset_, &store_, /*k=*/5,
                              config_.valid_max_interactions);
  eval_samples_in_use_ = config_.valid_tree_samples;

  std::unique_ptr<ckpt::CheckpointManager> ckpt_mgr;
  int start_epoch = 0;
  uint64_t resume_batches = 0;
  double resume_loss = 0.0;
  if (!config_.checkpoint_dir.empty()) {
    ckpt::CheckpointManager::Options opts;
    opts.dir = config_.checkpoint_dir;
    opts.keep_last = config_.checkpoint_keep_last;
    ckpt_mgr = std::make_unique<ckpt::CheckpointManager>(opts);
    if (config_.resume) {
      Result<ckpt::TrainingState> latest = ckpt_mgr->LoadLatest();
      if (latest.ok()) {
        const Status restored = RestoreTrainingState(*latest, &selector);
        KGAG_CHECK(restored.ok())
            << "checkpoint restore failed: " << restored.ToString();
        start_epoch = static_cast<int>(latest->epoch);
        if (latest->mid_epoch) {
          resume_batches = latest->batches_done;
          resume_loss = latest->partial_loss;
        }
        KGAG_LOG(Info) << name() << " resumed from "
                       << config_.checkpoint_dir << " at epoch "
                       << start_epoch
                       << (latest->mid_epoch ? " (mid-epoch)" : "");
      } else {
        // NotFound = first run with --resume: start fresh. Anything else
        // (unreadable dir, all snapshots corrupt) is worth a warning but
        // not fatal — training from scratch is the safe fallback.
        if (!latest.status().IsNotFound()) {
          KGAG_LOG(Warning) << "checkpoint resume unavailable: "
                            << latest.status().ToString();
        }
      }
    }
  }

  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    const double loss = TrainEpochCheckpointed(
        &train_rng_, epoch, ckpt_mgr.get(), &selector, resume_batches,
        resume_loss);
    resume_batches = 0;
    resume_loss = 0.0;
    epoch_losses_.push_back(loss);
    double valid_hit = 0.0;
    if (config_.select_by_validation) {
      KGAG_TRACE_SPAN("train.validation");
      valid_hit = selector.Observe(this);
    }
    if (ckpt_mgr != nullptr) {
      KGAG_TRACE_SPAN("train.checkpoint");
      const Status saved = ckpt_mgr->Save(CaptureTrainingState(
          static_cast<uint64_t>(epoch) + 1, /*mid_epoch=*/false,
          /*batches_done=*/0, /*partial_loss=*/0.0, &selector));
      if (!saved.ok()) {
        KGAG_LOG(Warning) << "epoch checkpoint failed: " << saved.ToString();
      }
    }
    KGAG_GAUGE_SET("train.epoch", epoch + 1);
    KGAG_GAUGE_SET("train.valid_hit_at_5", valid_hit);
    KGAG_OBS_SNAPSHOT("epoch");
    if (config_.verbose) {
      KGAG_LOG(Info) << name() << " epoch " << epoch + 1 << "/"
                     << config_.epochs << " loss=" << loss
                     << " valid_hit@5=" << valid_hit;
    }
  }
  if (config_.select_by_validation) selector.RestoreBest();
  eval_samples_in_use_ = config_.eval_tree_samples;
}

ckpt::TrainingState KgagModel::CaptureTrainingState(
    uint64_t epoch, bool mid_epoch, uint64_t batches_done,
    double partial_loss, const ValidationSelector* selector) const {
  ckpt::TrainingState state;
  state.epoch = epoch;
  state.mid_epoch = mid_epoch;
  state.batches_done = batches_done;
  state.partial_loss = partial_loss;
  state.epoch_losses = epoch_losses_;
  {
    std::ostringstream out(std::ios::binary);
    const Status st = SaveParameters(store_, &out);
    KGAG_CHECK(st.ok()) << st.ToString();
    state.params = out.str();
  }
  {
    std::ostringstream out(std::ios::binary);
    const Status st = optimizer_->SaveState(&out);
    KGAG_CHECK(st.ok()) << st.ToString();
    state.optimizer = out.str();
  }
  {
    std::ostringstream out(std::ios::binary);
    bio::WriteString(&out, init_rng_.SaveState());
    bio::WriteString(&out, train_rng_.SaveState());
    // Counter-based stream record: the derivation is stateless, so the
    // base seed is the entire stream state (epoch/example coordinates are
    // re-derived from the batcher cursors on resume).
    bio::WriteU64(&out, kRngStreamTag);
    bio::WriteU64(&out, config_.seed);
    state.rng = out.str();
  }
  {
    std::ostringstream out(std::ios::binary);
    const Status st = batcher_.SaveState(&out);
    KGAG_CHECK(st.ok()) << st.ToString();
    state.batcher = out.str();
  }
  if (selector != nullptr) {
    std::ostringstream out(std::ios::binary);
    const Status st = selector->SaveState(&out);
    KGAG_CHECK(st.ok()) << st.ToString();
    state.selector = out.str();
  }
  return state;
}

Status KgagModel::RestoreTrainingState(const ckpt::TrainingState& state,
                                       ValidationSelector* selector) {
  {
    std::istringstream in(state.params, std::ios::binary);
    KGAG_RETURN_NOT_OK(LoadParameters(&in, &store_));
  }
  {
    std::istringstream in(state.optimizer, std::ios::binary);
    KGAG_RETURN_NOT_OK(optimizer_->LoadState(&in, store_));
  }
  {
    std::istringstream in(state.rng, std::ios::binary);
    std::string init_state, train_state;
    if (!bio::ReadString(&in, &init_state) ||
        !bio::ReadString(&in, &train_state)) {
      return Status::IoError("truncated rng state");
    }
    if (!init_rng_.LoadState(init_state) ||
        !train_rng_.LoadState(train_state)) {
      return Status::InvalidArgument("malformed rng engine state");
    }
    uint64_t tag = 0;
    if (bio::ReadU64(&in, &tag)) {  // absent in pre-stream checkpoints
      if (tag != kRngStreamTag) {
        return Status::InvalidArgument("unrecognized rng stream record");
      }
      uint64_t stream_seed = 0;
      if (!bio::ReadU64(&in, &stream_seed)) {
        return Status::IoError("truncated rng stream record");
      }
      if (stream_seed != config_.seed) {
        // Streams are derived from the config seed at every draw; a
        // mismatch would silently diverge from the checkpointed run.
        return Status::InvalidArgument(
            "checkpoint rng stream seed does not match config seed");
      }
    }
  }
  {
    std::istringstream in(state.batcher, std::ios::binary);
    KGAG_RETURN_NOT_OK(batcher_.LoadState(&in, state.mid_epoch));
  }
  if (selector != nullptr && !state.selector.empty()) {
    std::istringstream in(state.selector, std::ios::binary);
    KGAG_RETURN_NOT_OK(selector->LoadState(&in));
  }
  epoch_losses_ = state.epoch_losses;
  return Status::OK();
}

const std::vector<SampledTree>& KgagModel::EvalTrees(EntityId node) {
  auto it = eval_trees_.find(node);
  if (it == eval_trees_.end()) {
    // Per-node seed: eval trees must not depend on the order nodes are
    // first scored in, so a reloaded model reproduces scores exactly.
    Rng node_rng(config_.seed * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(node) * 0x2545f4914f6cdd1dULL + 2);
    std::vector<SampledTree> trees;
    trees.reserve(config_.eval_tree_samples);
    for (int s = 0; s < config_.eval_tree_samples; ++s) {
      trees.push_back(propagation_->SampleTree(node, &node_rng));
    }
    it = eval_trees_.emplace(node, std::move(trees)).first;
  }
  return it->second;
}

Tensor KgagModel::PropagateEval(EntityId node, const Tensor& queries) {
  const std::vector<SampledTree>& trees = EvalTrees(node);
  const size_t use = std::min<size_t>(
      trees.size(), static_cast<size_t>(std::max(1, eval_samples_in_use_)));
  Tensor acc = propagation_->PropagateBatch(trees[0], queries);
  for (size_t s = 1; s < use; ++s) {
    acc.Add(propagation_->PropagateBatch(trees[s], queries));
  }
  acc.Scale(1.0 / static_cast<double>(use));
  return acc;
}

Tensor KgagModel::GroupQuery(GroupId g) const {
  const auto members = dataset_->groups.MembersOf(g);
  const int d = config_.propagation.dim;
  Tensor q(1, d);
  for (UserId u : members) {
    const size_t node = static_cast<size_t>(ckg_.UserNode(u));
    for (int c = 0; c < d; ++c) {
      q.at(0, c) += entity_table_->value.at(node, static_cast<size_t>(c));
    }
  }
  q.Scale(1.0 / static_cast<double>(members.size()));
  return q;
}

std::vector<Tensor> KgagModel::MemberRepsBatch(GroupId g,
                                               const Tensor& queries) {
  const auto members = dataset_->groups.MembersOf(g);
  const size_t p = queries.rows();
  std::vector<Tensor> reps;
  reps.reserve(members.size());
  for (UserId u : members) {
    const EntityId node = ckg_.UserNode(u);
    if (config_.use_kg) {
      reps.push_back(PropagateEval(node, queries));
    } else {
      Tensor rep(p, queries.cols());
      for (size_t r = 0; r < p; ++r) {
        for (size_t c = 0; c < queries.cols(); ++c) {
          rep.at(r, c) =
              entity_table_->value.at(static_cast<size_t>(node), c);
        }
      }
      reps.push_back(std::move(rep));
    }
  }
  return reps;
}

Tensor KgagModel::ItemRepsBatch(GroupId g, std::span<const ItemId> items) {
  const int d = config_.propagation.dim;
  Tensor out(items.size(), d);
  const Tensor query = GroupQuery(g);
  for (size_t i = 0; i < items.size(); ++i) {
    const EntityId e = ckg_.ItemEntity(items[i]);
    if (config_.use_kg) {
      Tensor rep = PropagateEval(e, query);
      out.SetRow(i, rep);
    } else {
      for (int c = 0; c < d; ++c) {
        out.at(i, static_cast<size_t>(c)) =
            entity_table_->value.at(static_cast<size_t>(e),
                                    static_cast<size_t>(c));
      }
    }
  }
  return out;
}

namespace {

/// Copies one entity-table row into a 1 x d query tensor.
Tensor ZeroOrderRow(const Tensor& table, EntityId node, int d) {
  Tensor q(1, static_cast<size_t>(d));
  for (int c = 0; c < d; ++c) {
    q.at(0, static_cast<size_t>(c)) =
        table.at(static_cast<size_t>(node), static_cast<size_t>(c));
  }
  return q;
}

}  // namespace

Tensor KgagModel::ServingUserReps() {
  const int d = config_.propagation.dim;
  Tensor out(static_cast<size_t>(dataset_->num_users),
             static_cast<size_t>(d));
  for (UserId u = 0; u < dataset_->num_users; ++u) {
    const EntityId node = ckg_.UserNode(u);
    const Tensor q = ZeroOrderRow(entity_table_->value, node, d);
    out.SetRow(static_cast<size_t>(u),
               config_.use_kg ? PropagateEval(node, q) : q);
  }
  return out;
}

Tensor KgagModel::ServingItemReps() {
  const int d = config_.propagation.dim;
  Tensor out(static_cast<size_t>(dataset_->num_items),
             static_cast<size_t>(d));
  for (ItemId v = 0; v < dataset_->num_items; ++v) {
    const EntityId e = ckg_.ItemEntity(v);
    const Tensor q = ZeroOrderRow(entity_table_->value, e, d);
    out.SetRow(static_cast<size_t>(v),
               config_.use_kg ? PropagateEval(e, q) : q);
  }
  return out;
}

std::vector<double> KgagModel::ScoreGroup(GroupId g,
                                          std::span<const ItemId> items) {
  const size_t p = items.size();
  const int d = config_.propagation.dim;

  // Per-candidate queries for member propagation: the items' zero-order
  // embeddings.
  Tensor queries(p, d);
  for (size_t i = 0; i < p; ++i) {
    const size_t e = static_cast<size_t>(ckg_.ItemEntity(items[i]));
    for (int c = 0; c < d; ++c) {
      queries.at(i, static_cast<size_t>(c)) =
          entity_table_->value.at(e, static_cast<size_t>(c));
    }
  }

  const std::vector<Tensor> member_reps = MemberRepsBatch(g, queries);
  const Tensor item_reps = ItemRepsBatch(g, items);
  const Tensor group_reps = aggregator_->AggregateBatch(member_reps,
                                                        item_reps);

  std::vector<double> scores(p);
  for (size_t i = 0; i < p; ++i) {
    Scalar s = 0;
    for (int c = 0; c < d; ++c) {
      s += group_reps.at(i, static_cast<size_t>(c)) *
           item_reps.at(i, static_cast<size_t>(c));
    }
    scores[i] = s;
  }
  return scores;
}

GroupExplanation KgagModel::ExplainGroup(GroupId g, ItemId v) {
  const auto members = dataset_->groups.MembersOf(g);
  const int d = config_.propagation.dim;
  const ItemId items[1] = {v};

  Tensor query(1, d);
  {
    const size_t e = static_cast<size_t>(ckg_.ItemEntity(v));
    for (int c = 0; c < d; ++c) {
      query.at(0, static_cast<size_t>(c)) =
          entity_table_->value.at(e, static_cast<size_t>(c));
    }
  }
  const std::vector<Tensor> member_reps_v = MemberRepsBatch(g, query);
  Tensor member_reps(members.size(), d);
  for (size_t i = 0; i < members.size(); ++i) {
    member_reps.SetRow(i, member_reps_v[i]);
  }
  const Tensor item_rep = ItemRepsBatch(g, items);

  GroupExplanation out;
  out.members.assign(members.begin(), members.end());
  out.attention = aggregator_->Explain(member_reps, item_rep);

  // Group representation and prediction from the attention weights.
  Tensor group_rep(1, d);
  for (size_t i = 0; i < members.size(); ++i) {
    for (int c = 0; c < d; ++c) {
      group_rep.at(0, static_cast<size_t>(c)) +=
          out.attention.alpha[i] *
          member_reps.at(i, static_cast<size_t>(c));
    }
  }
  Scalar score = 0;
  for (int c = 0; c < d; ++c) {
    score += group_rep.at(0, static_cast<size_t>(c)) *
             item_rep.at(0, static_cast<size_t>(c));
  }
  out.prediction = SigmoidScalar(score);
  return out;
}

double KgagModel::PredictGroupItem(GroupId g, ItemId v) {
  const ItemId items[1] = {v};
  return SigmoidScalar(ScoreGroup(g, items)[0]);
}

}  // namespace kgag
