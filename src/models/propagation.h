// Information propagation block (§III-C): query-conditioned graph
// convolution over a (collaborative) knowledge graph.
//
// For one training instance a depth-H receptive-field tree is sampled per
// needed node (NeighborSampler) and representations are refined bottom-up
// H times. Neighbor weights π(e, r, e_t) = ⟨i_e, r⟩ are conditioned on the
// instance's "interaction object" embedding i_e (the query), softmax-
// normalized per node (Eq. 2–3). Two update functions are supported:
// GCN σ(W(e + e_N) + b) and GraphSage σ(W·concat(e, e_N) + b) (Eq. 5–6),
// with ReLU on inner iterations and tanh on the last (the KGCN
// convention).
//
// Two execution paths share the same parameters:
//  * PropagateOnTape — differentiable, one query, used for training;
//  * PropagateBatch  — inference-only, P queries at once, used by the
//    ranking evaluator where every candidate item induces its own query.
#ifndef KGAG_MODELS_PROPAGATION_H_
#define KGAG_MODELS_PROPAGATION_H_

#include <vector>

#include "kg/neighbor_sampler.h"
#include "models/config.h"
#include "tensor/parameter.h"
#include "tensor/tape.h"

namespace kgag {

/// \brief Owns the propagation parameters (relation embeddings and
/// per-iteration aggregator weights) and runs the convolution.
class PropagationEngine {
 public:
  /// \param graph collaborative KG; must outlive the engine
  /// \param entity_table (num_nodes x d) zero-order embeddings, owned by
  ///        the caller and shared with other model components
  /// \param store parameter store the engine adds its weights to
  /// \param init_rng initializer randomness
  PropagationEngine(const KnowledgeGraph* graph, Parameter* entity_table,
                    ParameterStore* store, const PropagationConfig& config,
                    Rng* init_rng);

  const PropagationConfig& config() const { return config_; }
  const NeighborSampler& sampler() const { return sampler_; }

  /// Samples the receptive field of `root` for this instance.
  SampledTree SampleTree(EntityId root, Rng* rng) const {
    return sampler_.SampleTree(root, config_.depth, rng);
  }

  /// Differentiable root representation (1 x d) for one query (1 x d).
  Var PropagateOnTape(Tape* tape, const SampledTree& tree, Var query) const;

  /// Inference-only root representations for P queries: returns (P x d).
  Tensor PropagateBatch(const SampledTree& tree, const Tensor& queries) const;

  Parameter* relation_table() { return relation_table_; }

 private:
  Var AggregateOnTape(Tape* tape, Var self, Var neigh, int iteration) const;
  Tensor AggregateBatch(const Tensor& self, const Tensor& neigh,
                        int iteration) const;

  const KnowledgeGraph* graph_;
  Parameter* entity_table_;
  PropagationConfig config_;
  NeighborSampler sampler_;
  Parameter* relation_table_;               // (vocab + 1 self-loop) x d
  std::vector<Parameter*> layer_weights_;   // H matrices
  std::vector<Parameter*> layer_biases_;    // H biases
};

}  // namespace kgag

#endif  // KGAG_MODELS_PROPAGATION_H_
