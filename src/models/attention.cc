#include "models/attention.h"

#include <cmath>

#include "obs/obs.h"

namespace kgag {

PreferenceAggregator::PreferenceAggregator(int dim, int group_size,
                                           bool use_sp, bool use_pi,
                                           ParameterStore* store,
                                           Rng* init_rng)
    : dim_(dim), group_size_(group_size), use_sp_(use_sp), use_pi_(use_pi) {
  KGAG_CHECK_GT(dim, 0);
  KGAG_CHECK_GT(group_size, 0);
  if (use_pi_) {
    w1_ = store->Create("attn.W1", dim, dim, Init::kXavierUniform, init_rng);
    if (group_size_ > 1) {
      w2_ = store->Create("attn.W2", dim * (group_size_ - 1), dim,
                          Init::kXavierUniform, init_rng);
    }
    bias_ = store->CreateZeros("attn.b", 1, dim);
    vc_ = store->Create("attn.vc", dim, 1, Init::kXavierUniform, init_rng);
  }
}

Var PreferenceAggregator::AggregateOnTape(Tape* tape, Var member_reps,
                                          Var item_rep) const {
  KGAG_TRACE_SPAN("attention.aggregate");
  KGAG_COUNTER_ADD("attention.aggregate.calls", 1);
  const size_t l = static_cast<size_t>(group_size_);
  KGAG_CHECK_EQ(tape->value(member_reps).rows(), l);

  Var alpha;  // (L x 1) raw importances
  bool have_alpha = false;
  if (use_sp_) {
    alpha = tape->RowDot(member_reps, tape->RepeatRows(item_rep, l));
    have_alpha = true;
  }
  if (use_pi_) {
    Var w1 = tape->Leaf(w1_);
    Var b = tape->Leaf(bias_);
    Var vc = tape->Leaf(vc_);
    Var w2;
    if (w2_ != nullptr) w2 = tape->Leaf(w2_);
    std::vector<Var> pi_rows;
    pi_rows.reserve(l);
    for (size_t i = 0; i < l; ++i) {
      Var u = tape->SliceRow(member_reps, i);
      Var pre = tape->MatMul(u, w1);
      if (w2_ != nullptr) {
        std::vector<Var> peers;
        peers.reserve(l - 1);
        for (size_t j = 0; j < l; ++j) {
          if (j != i) peers.push_back(tape->SliceRow(member_reps, j));
        }
        Var peer_cat = tape->ConcatCols(peers);  // (1 x d(L-1))
        pre = tape->Add(pre, tape->MatMul(peer_cat, w2));
      }
      Var hidden = tape->Relu(tape->Add(pre, b));
      pi_rows.push_back(tape->MatMul(hidden, vc));  // (1 x 1)
    }
    Var pi = tape->ConcatRows(pi_rows);  // (L x 1)
    alpha = have_alpha ? tape->Add(alpha, pi) : pi;
    have_alpha = true;
  }
  if (!have_alpha) {
    // Both attention parts ablated: uniform aggregation.
    alpha = tape->Constant(Tensor(l, 1, 0.0));
  }

  Var norm = tape->SoftmaxRows(tape->Reshape(alpha, 1, l));  // (1 x L)
  return tape->MatMul(norm, member_reps);                    // (1 x d)
}

std::vector<double> PreferenceAggregator::PeerInfluenceRaw(
    const Tensor& member_reps) const {
  const size_t l = member_reps.rows();
  std::vector<double> pi(l, 0.0);
  if (!use_pi_) return pi;
  for (size_t i = 0; i < l; ++i) {
    Tensor u = member_reps.RowAt(i);
    Tensor pre = MatMul(u, w1_->value);  // (1 x d)
    if (w2_ != nullptr) {
      Tensor peers(1, static_cast<size_t>(dim_) * (l - 1));
      size_t off = 0;
      for (size_t j = 0; j < l; ++j) {
        if (j == i) continue;
        for (int c = 0; c < dim_; ++c) {
          peers.at(0, off + c) = member_reps.at(j, static_cast<size_t>(c));
        }
        off += static_cast<size_t>(dim_);
      }
      pre.Add(MatMul(peers, w2_->value));
    }
    pre.Add(bias_->value);
    pre.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
    pi[i] = MatMul(pre, vc_->value).item();
  }
  return pi;
}

Tensor PreferenceAggregator::AggregateBatch(
    const std::vector<Tensor>& member_reps, const Tensor& item_reps) const {
  KGAG_TRACE_SPAN("attention.batch");
  KGAG_COUNTER_ADD("attention.batch.calls", 1);
  const size_t l = member_reps.size();
  KGAG_CHECK_EQ(l, static_cast<size_t>(group_size_));
  const size_t p = item_reps.rows();
  const size_t d = static_cast<size_t>(dim_);

  Tensor alpha(p, l);  // raw importances per candidate item
  if (use_sp_) {
    for (size_t i = 0; i < l; ++i) {
      const Tensor& u = member_reps[i];
      for (size_t r = 0; r < p; ++r) {
        Scalar s = 0;
        for (size_t c = 0; c < d; ++c) s += u.at(r, c) * item_reps.at(r, c);
        alpha.at(r, i) += s;
      }
    }
  }
  if (use_pi_) {
    for (size_t i = 0; i < l; ++i) {
      Tensor pre = MatMul(member_reps[i], w1_->value);  // (P x d)
      if (w2_ != nullptr) {
        Tensor peers(p, d * (l - 1));
        size_t off = 0;
        for (size_t j = 0; j < l; ++j) {
          if (j == i) continue;
          for (size_t r = 0; r < p; ++r) {
            for (size_t c = 0; c < d; ++c) {
              peers.at(r, off + c) = member_reps[j].at(r, c);
            }
          }
          off += d;
        }
        pre.Add(MatMul(peers, w2_->value));
      }
      for (size_t r = 0; r < p; ++r) pre.AddToRow(r, bias_->value);
      pre.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
      Tensor pi = MatMul(pre, vc_->value);  // (P x 1)
      for (size_t r = 0; r < p; ++r) alpha.at(r, i) += pi.at(r, 0);
    }
  }

  // Row-wise softmax over members.
  for (size_t r = 0; r < p; ++r) {
    Scalar mx = alpha.at(r, 0);
    for (size_t c = 1; c < l; ++c) mx = std::max(mx, alpha.at(r, c));
    Scalar sum = 0;
    for (size_t c = 0; c < l; ++c) {
      alpha.at(r, c) = std::exp(alpha.at(r, c) - mx);
      sum += alpha.at(r, c);
    }
    for (size_t c = 0; c < l; ++c) alpha.at(r, c) /= sum;
  }

  Tensor group(p, d);
  for (size_t i = 0; i < l; ++i) {
    const Tensor& u = member_reps[i];
    for (size_t r = 0; r < p; ++r) {
      const Scalar a = alpha.at(r, i);
      for (size_t c = 0; c < d; ++c) group.at(r, c) += a * u.at(r, c);
    }
  }
  return group;
}

AttentionBreakdown PreferenceAggregator::Explain(const Tensor& member_reps,
                                                 const Tensor& item_rep) const {
  const size_t l = member_reps.rows();
  AttentionBreakdown out;
  out.sp.assign(l, 0.0);
  if (use_sp_) {
    for (size_t i = 0; i < l; ++i) {
      Scalar s = 0;
      for (size_t c = 0; c < member_reps.cols(); ++c) {
        s += member_reps.at(i, c) * item_rep.at(0, c);
      }
      out.sp[i] = s;
    }
  }
  out.pi = PeerInfluenceRaw(member_reps);
  out.alpha.assign(l, 0.0);
  Scalar mx = -1e300;
  for (size_t i = 0; i < l; ++i) {
    out.alpha[i] = out.sp[i] + out.pi[i];
    mx = std::max(mx, Scalar(out.alpha[i]));
  }
  Scalar sum = 0;
  for (size_t i = 0; i < l; ++i) {
    out.alpha[i] = std::exp(out.alpha[i] - mx);
    sum += out.alpha[i];
  }
  for (size_t i = 0; i < l; ++i) out.alpha[i] /= sum;
  return out;
}

}  // namespace kgag
