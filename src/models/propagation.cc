#include "models/propagation.h"

#include <cmath>

#include "obs/obs.h"

namespace kgag {

namespace {

#if KGAG_OBS_ACTIVE
// TraceSpan keeps the name pointer, so per-iteration spans need literals
// with static lifetime; depths beyond the table share a catch-all name.
constexpr const char* kIterationSpanName[] = {
    "propagation.iter0", "propagation.iter1", "propagation.iter2",
    "propagation.iter3"};
const char* IterationSpanName(int iter) {
  return iter < 4 ? kIterationSpanName[iter] : "propagation.iterN";
}
#endif

Tensor BroadcastRow(const Tensor& table, size_t row, size_t n) {
  Tensor out(n, table.cols());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < table.cols(); ++c) {
      out.at(r, c) = table.at(row, c);
    }
  }
  return out;
}

}  // namespace

PropagationEngine::PropagationEngine(const KnowledgeGraph* graph,
                                     Parameter* entity_table,
                                     ParameterStore* store,
                                     const PropagationConfig& config,
                                     Rng* init_rng)
    : graph_(graph),
      entity_table_(entity_table),
      config_(config),
      sampler_(graph, config.sample_size) {
  KGAG_CHECK(graph != nullptr && entity_table != nullptr && store != nullptr);
  KGAG_CHECK_GE(config.depth, 1);
  KGAG_CHECK_EQ(static_cast<size_t>(graph->num_entities()),
                entity_table->value.rows());
  KGAG_CHECK_EQ(static_cast<size_t>(config.dim), entity_table->value.cols());

  const int d = config_.dim;
  // +1 row for the sampler's self-loop padding relation.
  relation_table_ = store->Create(
      "prop.relations", graph->relation_vocab_size() + 1, d, Init::kNormal01,
      init_rng);
  const int in_dim =
      config_.aggregator == AggregatorKind::kGraphSage ? 2 * d : d;
  for (int h = 0; h < config_.depth; ++h) {
    layer_weights_.push_back(store->Create(
        "prop.W" + std::to_string(h), in_dim, d, Init::kXavierUniform,
        init_rng));
    layer_biases_.push_back(
        store->CreateZeros("prop.b" + std::to_string(h), 1, d));
  }
}

Var PropagationEngine::AggregateOnTape(Tape* tape, Var self, Var neigh,
                                       int iteration) const {
  Var w = tape->Leaf(layer_weights_[iteration]);
  Var b = tape->Leaf(layer_biases_[iteration]);
  Var pre;
  if (config_.aggregator == AggregatorKind::kGcn) {
    pre = tape->MatMul(tape->Add(self, neigh), w);
  } else {
    pre = tape->MatMul(tape->ConcatCols({self, neigh}), w);
  }
  pre = tape->AddRowBroadcast(pre, b);
  const bool last = iteration + 1 == config_.depth;
  if (!last) return tape->Relu(pre);
  return config_.final_tanh ? tape->Tanh(pre) : pre;
}

Var PropagationEngine::PropagateOnTape(Tape* tape, const SampledTree& tree,
                                       Var query) const {
  KGAG_TRACE_SPAN("propagation.forward");
  KGAG_COUNTER_ADD("propagation.forward.calls", 1);
  const int depth = tree.depth();
  KGAG_CHECK_EQ(depth, config_.depth) << "tree depth != engine depth";
  const int k = config_.sample_size;

  // Zero-order representations per tree layer.
  // The int32 span overload widens indices straight onto the tape's
  // arena — no per-call index vector on the training hot path.
  std::vector<Var> vec(depth + 1);
  for (int h = 0; h <= depth; ++h) {
    vec[h] = tape->Gather(entity_table_,
                          std::span<const EntityId>(tree.entities[h]));
  }

  // Query-conditioned, softmax-normalized neighbor weights per layer
  // (Eq. 2–3). They depend only on (query, relation) so compute once.
  std::vector<Var> pi(depth);
  for (int h = 0; h < depth; ++h) {
    const size_t n = tree.entities[h].size();
    Var rel = tape->Gather(relation_table_,
                           std::span<const RelationId>(tree.relations[h]));
    Var q = tape->RepeatRows(query, n * k);
    Var scores = tape->RowDot(rel, q);                          // (nK x 1)
    pi[h] = tape->SoftmaxRows(tape->Reshape(scores, n, k));     // (n x K)
  }

  // H refinement iterations (Eq. 7–8), shrinking the active prefix.
  for (int iter = 0; iter < depth; ++iter) {
    KGAG_OBS_ONLY(obs::TraceSpan iter_span(IterationSpanName(iter));)
    std::vector<Var> next(depth - iter);
    for (int h = 0; h < depth - iter; ++h) {
      Var neigh = tape->SegmentWeightedSumRows(pi[h], vec[h + 1]);
      next[h] = AggregateOnTape(tape, vec[h], neigh, iter);
    }
    for (int h = 0; h < depth - iter; ++h) vec[h] = next[h];
  }
  return vec[0];  // (1 x d)
}

Tensor PropagationEngine::AggregateBatch(const Tensor& self,
                                         const Tensor& neigh,
                                         int iteration) const {
  Tensor pre;
  if (config_.aggregator == AggregatorKind::kGcn) {
    pre = MatMul(Add(self, neigh), layer_weights_[iteration]->value);
  } else {
    Tensor cat(self.rows(), self.cols() + neigh.cols());
    for (size_t r = 0; r < self.rows(); ++r) {
      for (size_t c = 0; c < self.cols(); ++c) cat.at(r, c) = self.at(r, c);
      for (size_t c = 0; c < neigh.cols(); ++c) {
        cat.at(r, self.cols() + c) = neigh.at(r, c);
      }
    }
    pre = MatMul(cat, layer_weights_[iteration]->value);
  }
  const Tensor& b = layer_biases_[iteration]->value;
  for (size_t r = 0; r < pre.rows(); ++r) pre.AddToRow(r, b);
  const bool last = iteration + 1 == config_.depth;
  if (!last) {
    pre.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
  } else if (config_.final_tanh) {
    pre.Apply([](Scalar x) { return std::tanh(x); });
  }
  return pre;
}

Tensor PropagationEngine::PropagateBatch(const SampledTree& tree,
                                         const Tensor& queries) const {
  KGAG_TRACE_SPAN("propagation.batch");
  KGAG_COUNTER_ADD("propagation.batch.calls", 1);
  const int depth = tree.depth();
  KGAG_CHECK_EQ(depth, config_.depth) << "tree depth != engine depth";
  const size_t p = queries.rows();
  const int k = config_.sample_size;

  // Per-node (P x d) representations, initialized from zero-order rows.
  std::vector<std::vector<Tensor>> vec(depth + 1);
  for (int h = 0; h <= depth; ++h) {
    vec[h].reserve(tree.entities[h].size());
    for (EntityId e : tree.entities[h]) {
      vec[h].push_back(
          BroadcastRow(entity_table_->value, static_cast<size_t>(e), p));
    }
  }

  // π per parent: (P x K) = softmax over queries·relᵀ.
  std::vector<std::vector<Tensor>> pi(depth);
  for (int h = 0; h < depth; ++h) {
    const size_t n = tree.entities[h].size();
    pi[h].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Tensor rel(static_cast<size_t>(k), queries.cols());
      for (int j = 0; j < k; ++j) {
        const RelationId r = tree.relations[h][i * k + j];
        for (size_t c = 0; c < queries.cols(); ++c) {
          rel.at(j, c) = relation_table_->value.at(static_cast<size_t>(r), c);
        }
      }
      Tensor scores = MatMulTransB(queries, rel);  // (P x K)
      // Row-wise softmax.
      for (size_t r = 0; r < scores.rows(); ++r) {
        Scalar mx = scores.at(r, 0);
        for (size_t c = 1; c < scores.cols(); ++c) {
          mx = std::max(mx, scores.at(r, c));
        }
        Scalar sum = 0;
        for (size_t c = 0; c < scores.cols(); ++c) {
          scores.at(r, c) = std::exp(scores.at(r, c) - mx);
          sum += scores.at(r, c);
        }
        for (size_t c = 0; c < scores.cols(); ++c) scores.at(r, c) /= sum;
      }
      pi[h].push_back(std::move(scores));
    }
  }

  for (int iter = 0; iter < depth; ++iter) {
    for (int h = 0; h < depth - iter; ++h) {
      std::vector<Tensor> next;
      next.reserve(vec[h].size());
      for (size_t i = 0; i < vec[h].size(); ++i) {
        Tensor neigh(p, queries.cols());
        const Tensor& w = pi[h][i];
        for (int j = 0; j < k; ++j) {
          const Tensor& child = vec[h + 1][i * k + j];
          for (size_t r = 0; r < p; ++r) {
            const Scalar wj = w.at(r, static_cast<size_t>(j));
            for (size_t c = 0; c < child.cols(); ++c) {
              neigh.at(r, c) += wj * child.at(r, c);
            }
          }
        }
        next.push_back(AggregateBatch(vec[h][i], neigh, iter));
      }
      vec[h] = std::move(next);
    }
  }
  return vec[0][0];  // (P x d)
}

}  // namespace kgag
