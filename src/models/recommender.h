// Common interface for trainable group recommenders, so the bench grid and
// the evaluator can treat KGAG and every baseline uniformly.
#ifndef KGAG_MODELS_RECOMMENDER_H_
#define KGAG_MODELS_RECOMMENDER_H_

#include <string>

#include "eval/group_scorer.h"

namespace kgag {

/// \brief A group recommender that can be fit on its dataset then scored.
class TrainableGroupRecommender : public GroupScorer {
 public:
  /// Runs the full training loop (deterministic given the model's seed).
  virtual void Fit() = 0;

  /// Display name used in result tables (e.g. "KGAG", "CF+LM").
  virtual std::string name() const = 0;
};

}  // namespace kgag

#endif  // KGAG_MODELS_RECOMMENDER_H_
