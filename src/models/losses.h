// Optimization block losses (§III-E), built as tape sub-graphs.
#ifndef KGAG_MODELS_LOSSES_H_
#define KGAG_MODELS_LOSSES_H_

#include "tensor/tape.h"

namespace kgag {

/// Sigmoid-margin pairwise loss, Eq. (17):
/// max(σ(ŷ_neg) − σ(ŷ_pos) + M, 0) for 1x1 score nodes.
Var MarginPairLoss(Tape* tape, Var pos_score, Var neg_score, double margin);

/// Bayesian personalized ranking loss: −log σ(ŷ_pos − ŷ_neg), the
/// KGAG(BPR) ablation baseline.
Var BprPairLoss(Tape* tape, Var pos_score, Var neg_score);

/// Binary cross-entropy with logits, Eq. (18) for one instance:
/// softplus(x) − y·x (numerically stable form of −y log σ(x) −
/// (1−y) log(1−σ(x))).
Var LogisticLoss(Tape* tape, Var logit, double label);

}  // namespace kgag

#endif  // KGAG_MODELS_LOSSES_H_
