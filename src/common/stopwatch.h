// Wall-clock stopwatch for coarse timing in trainers and benches, plus a
// monotonic lap API for the obs span recorder.
#ifndef KGAG_COMMON_STOPWATCH_H_
#define KGAG_COMMON_STOPWATCH_H_

#include <chrono>

namespace kgag {

/// \brief Starts on construction; ElapsedSeconds() reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  void Restart() {
    start_ = Clock::now();
    lap_ = start_;
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Lap timer: microseconds since construction, Restart(), or the last
  /// Tick(), whichever is latest; then starts a new lap. Monotonic
  /// (steady_clock), so consecutive Tick() values are always >= 0 and the
  /// laps sum to the total elapsed time.
  double Tick() {
    const Clock::time_point now = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(now - lap_).count();
    lap_ = now;
    return us;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace kgag

#endif  // KGAG_COMMON_STOPWATCH_H_
