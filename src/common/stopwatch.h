// Wall-clock stopwatch for coarse timing in trainers and benches.
#ifndef KGAG_COMMON_STOPWATCH_H_
#define KGAG_COMMON_STOPWATCH_H_

#include <chrono>

namespace kgag {

/// \brief Starts on construction; ElapsedSeconds() reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kgag

#endif  // KGAG_COMMON_STOPWATCH_H_
