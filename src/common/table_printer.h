// ASCII table rendering for the bench binaries that regenerate the paper's
// tables and figure series.
#ifndef KGAG_COMMON_TABLE_PRINTER_H_
#define KGAG_COMMON_TABLE_PRINTER_H_

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace kgag {

/// \brief Accumulates rows of string cells and prints them with aligned,
/// pipe-separated columns plus a header rule.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds one row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> row) {
    row.resize(header_.size());
    rows_.push_back(std::move(row));
  }

  /// Formats a double with fixed precision, the convention used by the
  /// paper's tables (4 decimals).
  static std::string Num(double v, int precision = 4) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Renders the table to the stream.
  void Print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string ToString() const {
    std::ostringstream os;
    Print(os);
    return os.str();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kgag

#endif  // KGAG_COMMON_TABLE_PRINTER_H_
