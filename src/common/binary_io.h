// Little-endian binary stream helpers shared by the parameter serializer,
// the optimizer/batcher state exporters and the checkpoint container.
// Readers return false on short reads and bound every length they allocate
// from, so corrupt or truncated inputs fail cleanly instead of requesting
// multi-GiB buffers.
#ifndef KGAG_COMMON_BINARY_IO_H_
#define KGAG_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace kgag {
namespace bio {

/// Longest string (names, opaque sub-blobs) a reader will allocate.
inline constexpr uint64_t kMaxStringLen = 1ull << 33;  // 8 GiB hard stop
/// Longest element count a reader will allocate for a POD vector.
inline constexpr uint64_t kMaxVectorElems = 1ull << 32;

template <typename T>
void WritePod(std::ostream* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream* in, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

inline void WriteU32(std::ostream* out, uint32_t v) { WritePod(out, v); }
inline void WriteU64(std::ostream* out, uint64_t v) { WritePod(out, v); }
inline void WriteI64(std::ostream* out, int64_t v) { WritePod(out, v); }
inline void WriteDouble(std::ostream* out, double v) { WritePod(out, v); }
inline void WriteU8(std::ostream* out, uint8_t v) { WritePod(out, v); }

inline bool ReadU32(std::istream* in, uint32_t* v) { return ReadPod(in, v); }
inline bool ReadU64(std::istream* in, uint64_t* v) { return ReadPod(in, v); }
inline bool ReadI64(std::istream* in, int64_t* v) { return ReadPod(in, v); }
inline bool ReadDouble(std::istream* in, double* v) { return ReadPod(in, v); }
inline bool ReadU8(std::istream* in, uint8_t* v) { return ReadPod(in, v); }

/// u64 length prefix followed by the raw bytes.
inline void WriteString(std::ostream* out, std::string_view s) {
  WriteU64(out, s.size());
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Reads a length-prefixed string; fails (without allocating) when the
/// prefix exceeds `max_len`.
inline bool ReadString(std::istream* in, std::string* s,
                       uint64_t max_len = kMaxStringLen) {
  uint64_t len = 0;
  if (!ReadU64(in, &len) || len > max_len) return false;
  s->resize(len);
  in->read(s->data(), static_cast<std::streamsize>(len));
  return in->good() || (len == 0 && !in->bad());
}

/// u64 element count followed by the elements' raw bytes (POD only).
template <typename T>
void WritePodVector(std::ostream* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteU64(out, v.size());
  out->write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadPodVector(std::istream* in, std::vector<T>* v,
                   uint64_t max_elems = kMaxVectorElems) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t count = 0;
  if (!ReadU64(in, &count) || count > max_elems) return false;
  v->resize(count);
  in->read(reinterpret_cast<char*>(v->data()),
           static_cast<std::streamsize>(count * sizeof(T)));
  return in->good() || (count == 0 && !in->bad());
}

}  // namespace bio
}  // namespace kgag

#endif  // KGAG_COMMON_BINARY_IO_H_
