#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace kgag {

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  return true;
}

size_t Rng::Zipf(size_t n, double alpha) {
  KGAG_CHECK(n > 0);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return Discrete(w);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  KGAG_CHECK(k <= n) << "cannot sample " << k << " of " << n;
  if (k == 0) return {};
  // For small k relative to n, rejection sampling; otherwise shuffle prefix.
  if (k * 3 < n) {
    std::unordered_set<size_t> seen;
    std::vector<size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      size_t x = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
      if (seen.insert(x).second) out.push_back(x);
    }
    return out;
  }
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i),
                                              static_cast<int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

ZipfSampler::ZipfSampler(size_t n, double alpha) {
  KGAG_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace kgag
