#include "common/status.h"

namespace kgag {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace kgag
