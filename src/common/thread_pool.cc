#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"

namespace kgag {
namespace {

thread_local bool t_in_pool_worker = false;

std::atomic<ThreadPoolObserver*> g_pool_observer{nullptr};

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

void SetThreadPoolObserver(ThreadPoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

ThreadPoolObserver* GetThreadPoolObserver() {
  return g_pool_observer.load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  ThreadPoolObserver* observer = GetThreadPoolObserver();
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    KGAG_CHECK(!stop_) << "submit on stopped pool";
    tasks_.push(QueuedTask{std::move(pt),
                           observer != nullptr
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{}});
    depth = tasks_.size();
  }
  cv_.notify_one();
  if (observer != nullptr) observer->OnTaskQueued(depth);
  return fut;
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(n, /*grain=*/1, fn);
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  KGAG_CHECK_GT(grain, 0u);
  // A worker blocking on futures of tasks no free worker can ever pick up
  // would deadlock the pool, so nested calls run inline instead.
  if (t_in_pool_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (ThreadPoolObserver* observer = GetThreadPoolObserver()) {
    observer->OnParallelFor(n, grain);
  }
  // Chunked dynamic scheduling: threads atomically claim `grain` indices
  // at a time. The caller drains chunks too, so queue latency (or a fully
  // busy pool) never stalls the loop.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto drain = [next, n, grain, &fn] {
    while (true) {
      const size_t begin = next->fetch_add(grain);
      if (begin >= n) break;
      const size_t end = std::min(begin + grain, n);
      for (size_t i = begin; i < end; ++i) fn(i);
    }
  };
  const size_t chunks = (n + grain - 1) / grain;
  const size_t helpers = std::min(chunks - 1, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(helpers);
  for (size_t t = 0; t < helpers; ++t) futs.push_back(Submit(drain));
  drain();
  for (auto& f : futs) f.get();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    ThreadPoolObserver* observer = GetThreadPoolObserver();
    if (observer != nullptr &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      const auto start = std::chrono::steady_clock::now();
      task.fn();
      const auto done = std::chrono::steady_clock::now();
      observer->OnTaskDone(MicrosBetween(task.enqueued, start),
                           MicrosBetween(start, done));
    } else {
      task.fn();
    }
  }
}

}  // namespace kgag
