#include "common/thread_pool.h"

#include <atomic>

#include "common/check.h"

namespace kgag {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    KGAG_CHECK(!stop_) << "submit on stopped pool";
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling: workers pull the next index atomically.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t parallelism = std::min(n, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(parallelism);
  for (size_t t = 0; t < parallelism; ++t) {
    futs.push_back(Submit([next, n, &fn] {
      while (true) {
        size_t i = next->fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace kgag
