// Deterministic random number generation. Every stochastic component in the
// library takes an explicit Rng (or a seed) so experiments are reproducible
// bit-for-bit across runs.
#ifndef KGAG_COMMON_RNG_H_
#define KGAG_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"

namespace kgag {

/// \brief Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// sampling helpers the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KGAG_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to the given stddev and mean.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index sampled proportionally to `weights` (all non-negative, not all 0).
  size_t Discrete(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Zipf-like draw over [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^alpha. Used to give items/users realistic
  /// popularity skew. O(n) setup per call is avoided by the caller caching
  /// the weights; this helper is for small n.
  size_t Zipf(size_t n, double alpha);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// k distinct values uniformly sampled from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each worker or
  /// epoch its own stream without correlation.
  Rng Fork() { return Rng(engine_()); }

  /// Serializes the full engine state (the standard's textual mt19937_64
  /// representation) so a checkpointed run resumes the exact stream.
  std::string SaveState() const;

  /// Restores a state produced by SaveState(); false on malformed input
  /// (the engine is left unchanged in that case).
  bool LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
/// number generators", OOPSLA 2014). Bijective on uint64_t with strong
/// avalanche behaviour; the building block for counter-based stream
/// derivation below.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Counter-based stream seed: a stateless hash of
/// (seed, epoch, stream_id, index) that yields an independent seed per
/// (purpose, example). Unlike a shared sequential engine — where a
/// rejection sampler's variable draw count makes every later example's
/// randomness depend on every earlier one — derived streams depend only
/// on the example's own coordinates, so sampled trees and negatives are
/// identical no matter how examples are sharded across threads.
///
/// `stream_id` namespaces consumers (e.g. negative sampling vs tree
/// sampling); each call site owns a distinct constant. Chained SplitMix64
/// rounds (rather than one xor-fold) keep structured inputs like
/// (epoch, epoch+1) from producing correlated seeds.
inline uint64_t DeriveStreamSeed(uint64_t seed, uint64_t epoch,
                                 uint64_t stream_id, uint64_t index) {
  uint64_t h = SplitMix64(seed ^ 0x8f1bbcdc9abcdef1ULL);
  h = SplitMix64(h ^ epoch);
  h = SplitMix64(h ^ stream_id);
  h = SplitMix64(h ^ index);
  return h;
}

/// \brief Counter-based RNG stream coordinates for one training epoch.
///
/// `For(stream_id, index)` hands out an independent generator for one
/// (consumer, example) pair; each consumer (negative sampling, tree
/// sampling, ...) owns a distinct stream_id constant and indexes by its
/// epoch-global example counter. Because derivation is stateless, any
/// thread can draw example i's stream without coordination and a resumed
/// run re-derives the exact streams from (seed, epoch, cursor) alone.
struct EpochStreams {
  uint64_t seed = 0;
  uint64_t epoch = 0;

  Rng For(uint64_t stream_id, uint64_t index) const {
    return Rng(DeriveStreamSeed(seed, epoch, stream_id, index));
  }
};

/// \brief Precomputed Zipf sampler for repeated draws over a fixed domain.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha);

  /// A rank in [0, n), lower ranks more likely.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace kgag

#endif  // KGAG_COMMON_RNG_H_
