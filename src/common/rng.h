// Deterministic random number generation. Every stochastic component in the
// library takes an explicit Rng (or a seed) so experiments are reproducible
// bit-for-bit across runs.
#ifndef KGAG_COMMON_RNG_H_
#define KGAG_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"

namespace kgag {

/// \brief Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// sampling helpers the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KGAG_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to the given stddev and mean.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index sampled proportionally to `weights` (all non-negative, not all 0).
  size_t Discrete(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Zipf-like draw over [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^alpha. Used to give items/users realistic
  /// popularity skew. O(n) setup per call is avoided by the caller caching
  /// the weights; this helper is for small n.
  size_t Zipf(size_t n, double alpha);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// k distinct values uniformly sampled from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each worker or
  /// epoch its own stream without correlation.
  Rng Fork() { return Rng(engine_()); }

  /// Serializes the full engine state (the standard's textual mt19937_64
  /// representation) so a checkpointed run resumes the exact stream.
  std::string SaveState() const;

  /// Restores a state produced by SaveState(); false on malformed input
  /// (the engine is left unchanged in that case).
  bool LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Precomputed Zipf sampler for repeated draws over a fixed domain.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha);

  /// A rank in [0, n), lower ranks more likely.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace kgag

#endif  // KGAG_COMMON_RNG_H_
