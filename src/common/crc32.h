// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum the
// checkpoint container uses to validate every chunk before trusting its
// payload. Table-driven, one table shared process-wide.
#ifndef KGAG_COMMON_CRC32_H_
#define KGAG_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kgag {

/// CRC-32 of `len` bytes at `data`, seeded with `seed` (pass the previous
/// result to checksum data incrementally; 0 starts a fresh checksum).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace kgag

#endif  // KGAG_COMMON_CRC32_H_
