// Result<T>: value-or-Status, the return type for fallible factories.
#ifndef KGAG_COMMON_RESULT_H_
#define KGAG_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace kgag {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Access the value with ValueOrDie() / operator*
/// only after checking ok(); use KGAG_ASSIGN_OR_RETURN to propagate errors.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    KGAG_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& ValueOrDie() {
    KGAG_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  const T& ValueOrDie() const {
    KGAG_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }

  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Moves the value out (undefined if !ok()).
  T MoveValueUnsafe() { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace kgag

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define KGAG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.MoveValueUnsafe()

#define KGAG_ASSIGN_OR_RETURN(lhs, rexpr) \
  KGAG_ASSIGN_OR_RETURN_IMPL(             \
      KGAG_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define KGAG_CONCAT_INNER_(a, b) a##b
#define KGAG_CONCAT_(a, b) KGAG_CONCAT_INNER_(a, b)

#endif  // KGAG_COMMON_RESULT_H_
