#include "common/file_io.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define KGAG_HAVE_POSIX_IO 1
#else
#define KGAG_HAVE_POSIX_IO 0
#endif

namespace kgag {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#if KGAG_HAVE_POSIX_IO

Status WriteAndSyncOnce(const std::string& tmp, const std::string& path,
                        std::string_view data, bool fsync_data) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string msg = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("write " + tmp + ": " + msg);
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_data && ::fsync(fd) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("fsync " + tmp + ": " + msg);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("close " + tmp + ": " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string msg = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + ": " + msg);
  }
  if (fsync_data) {
    // Persist the rename itself: fsync the containing directory.
    const int dfd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      (void)::fsync(dfd);  // best effort; data is already safe in the file
      ::close(dfd);
    }
  }
  return Status::OK();
}

#else  // !KGAG_HAVE_POSIX_IO

Status WriteAndSyncOnce(const std::string& tmp, const std::string& path,
                        std::string_view data, bool /*fsync_data*/) {
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
  }
  std::remove(path.c_str());  // std::rename may not replace on all platforms
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

#endif  // KGAG_HAVE_POSIX_IO

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view data,
                       const AtomicWriteOptions& options) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  // Same directory as the target so the rename cannot cross filesystems;
  // pid-tagged so concurrent writers never collide on the temp name.
#if KGAG_HAVE_POSIX_IO
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tmp = path + ".tmp";
#endif
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = WriteAndSyncOnce(tmp, path, data, options.fsync_data);
    if (last.ok()) return last;
    if (attempt < attempts && options.retry_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms * attempt));
    }
  }
  return last;
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

Status AtomicFileWriter::Open(const std::string& path,
                              const AtomicWriteOptions& options) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  path_ = path;
  fsync_data_ = options.fsync_data;
  // Same naming scheme as AtomicWriteFile: same directory (so the rename
  // cannot cross filesystems), pid-tagged against concurrent writers.
#if KGAG_HAVE_POSIX_IO
  tmp_ = path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  tmp_ = path + ".tmp";
#endif
  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("open " + tmp_ + ": " + std::strerror(errno));
  }
  position_ = 0;
  return Status::OK();
}

Status AtomicFileWriter::Append(const void* data, size_t len) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  if (len == 0) return Status::OK();
  if (std::fwrite(data, 1, len, file_) != len) {
    const std::string msg = std::strerror(errno);
    Abandon();
    return Status::IoError("write " + tmp_ + ": " + msg);
  }
  position_ += len;
  return Status::OK();
}

Status AtomicFileWriter::Seek(uint64_t offset) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
#if KGAG_HAVE_POSIX_IO
  const int rc = ::fseeko(file_, static_cast<off_t>(offset), SEEK_SET);
#else
  const int rc = std::fseek(file_, static_cast<long>(offset), SEEK_SET);
#endif
  if (rc != 0) {
    const std::string msg = std::strerror(errno);
    Abandon();
    return Status::IoError("seek " + tmp_ + ": " + msg);
  }
  position_ = offset;
  return Status::OK();
}

Status AtomicFileWriter::Finish() {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  if (std::fflush(file_) != 0) {
    const std::string msg = std::strerror(errno);
    Abandon();
    return Status::IoError("flush " + tmp_ + ": " + msg);
  }
#if KGAG_HAVE_POSIX_IO
  if (fsync_data_ && ::fsync(::fileno(file_)) != 0) {
    const std::string msg = std::strerror(errno);
    Abandon();
    return Status::IoError("fsync " + tmp_ + ": " + msg);
  }
#endif
  if (std::fclose(file_) != 0) {
    const std::string msg = std::strerror(errno);
    file_ = nullptr;
    std::remove(tmp_.c_str());
    return Status::IoError("close " + tmp_ + ": " + msg);
  }
  file_ = nullptr;
#if KGAG_HAVE_POSIX_IO
  if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
    const std::string msg = std::strerror(errno);
    ::unlink(tmp_.c_str());
    return Status::IoError("rename " + tmp_ + " -> " + path_ + ": " + msg);
  }
  if (fsync_data_) {
    const int dfd = ::open(ParentDir(path_).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      (void)::fsync(dfd);  // best effort; data is already safe in the file
      ::close(dfd);
    }
  }
#else
  std::remove(path_.c_str());  // std::rename may not replace on all platforms
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    return Status::IoError("rename failed: " + tmp_ + " -> " + path_);
  }
#endif
  return Status::OK();
}

void AtomicFileWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_.c_str());
  }
}

Status ReadFileToString(const std::string& path, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) return Status::IoError("cannot stat " + path);
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  in.read(out->data(), size);
  if (!in.good() && size > 0) return Status::IoError("short read: " + path);
  return Status::OK();
}

}  // namespace kgag
