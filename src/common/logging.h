// Minimal leveled logging: KGAG_LOG(Info) << "...";
//
// Each line is formatted as
//   [2026-08-05T12:34:56.789Z INFO  t0 file.cc:42] message
// (ISO-8601 UTC timestamp, level, small sequential thread id, call site)
// and written to stderr by default. SetLogSink replaces the writer so
// tests and the obs metrics layer can capture log output.
#ifndef KGAG_COMMON_LOGGING_H_
#define KGAG_COMMON_LOGGING_H_

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace kgag {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are swallowed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives each fully formatted line (no trailing newline). Called under
/// the logging mutex, so implementations must not log themselves.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the default stderr writer; an empty sink restores it. Returns
/// the previous sink (empty when stderr was active) so wrappers can
/// chain.
LogSink SetLogSink(LogSink sink);

/// Small sequential id of the calling thread, stable for its lifetime
/// (the id printed in log lines).
int LogThreadId();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kgag

#define KGAG_LOG(level)                                     \
  ::kgag::internal::LogMessage(::kgag::LogLevel::k##level, \
                               __FILE__, __LINE__)

#endif  // KGAG_COMMON_LOGGING_H_
