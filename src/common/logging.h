// Minimal leveled logging to stderr: KGAG_LOG(INFO) << "...";
#ifndef KGAG_COMMON_LOGGING_H_
#define KGAG_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace kgag {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are swallowed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kgag

#define KGAG_LOG(level)                                     \
  ::kgag::internal::LogMessage(::kgag::LogLevel::k##level, \
                               __FILE__, __LINE__)

#endif  // KGAG_COMMON_LOGGING_H_
