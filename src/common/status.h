// Status: lightweight error signalling for library code (Arrow/RocksDB
// style). Library entry points that can fail return Status or Result<T>
// instead of throwing; exceptions are reserved for programming errors
// surfaced through KGAG_CHECK.
#ifndef KGAG_COMMON_STATUS_H_
#define KGAG_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace kgag {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIoError = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus message.
///
/// OK status carries no allocation; error states allocate a small state
/// block. Copyable and cheap to move.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(state_->code);
    s += ": ";
    s += state_->msg;
    return s;
  }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // nullptr means OK
};

}  // namespace kgag

/// Propagates a non-OK Status from the enclosing function.
#define KGAG_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::kgag::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // KGAG_COMMON_STATUS_H_
