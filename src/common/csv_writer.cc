#include "common/csv_writer.h"

namespace kgag {

std::string CsvWriter::EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  out_.open(path, std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("cannot open CSV file: " + path);
  }
  return WriteRow(header);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& row) {
  if (!out_.is_open()) return Status::Internal("CSV writer not open");
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << EscapeCell(row[i]);
  }
  out_ << "\n";
  if (!out_.good()) return Status::IoError("CSV write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (out_.fail()) return Status::IoError("CSV close failed");
  }
  return Status::OK();
}

}  // namespace kgag
